package chronicledb

import (
	"context"
	"fmt"

	"chronicledb/internal/feed"
)

// WatchEventKind tags a WatchEvent.
type WatchEventKind uint8

// The watch event kinds.
const (
	// WatchSnapshot carries the view's full contents as of Event.LSN. It is
	// delivered once, first, when the subscription could not resume from
	// the in-memory tail (no cursor, or a cursor older than the resume
	// horizon); deltas then follow from LSN+1 with no gap or duplicate.
	WatchSnapshot WatchEventKind = iota
	// WatchDelta carries the expression delta rows of one committed
	// mutation, stamped with its LSN.
	WatchDelta
	// WatchEnd is the terminal event: the subscription was shed as too
	// slow, the view was dropped, or the watch was closed. Event.LSN is the
	// last position delivered — the cursor to resume from.
	WatchEnd
)

// WatchRow is one delta row: the chronicle-algebra expression output that
// maintenance folded into the view, in caller-owned memory.
type WatchRow struct {
	SN      int64
	Chronon int64
	Vals    Row
}

// WatchEvent is one changefeed delivery.
type WatchEvent struct {
	Kind   WatchEventKind
	LSN    uint64
	Rows   []Row      // WatchSnapshot: the view rows
	Deltas []WatchRow // WatchDelta: the delta rows
	Reason string     // WatchEnd: "slow", "dropped", or "closed"
}

// Watch subscribes to a persistent view's changefeed and streams events to
// fn until fn returns false, ctx is done, or the subscription ends (shed
// as slow, or the view dropped — fn then receives a terminal WatchEnd).
//
// With hasFrom, fromLSN is a resume cursor: the LSN of the last delta the
// caller already has. If it is inside the in-memory resume window the
// stream continues exactly at fromLSN+1; otherwise — and always without a
// cursor — fn first receives a WatchSnapshot of the view at some LSN S,
// then deltas from S+1 on. Either way the delivered LSN sequence is
// gapless and duplicate-free, and every delta delivered is durable
// (published only after its WAL commit).
//
// Requires Options.Feed.
func (db *DB) Watch(ctx context.Context, viewName string, fromLSN uint64, hasFrom bool, fn func(WatchEvent) bool) error {
	if db.hub == nil {
		return fmt.Errorf("chronicledb: changefeeds are disabled (set Options.Feed)")
	}
	if _, ok := db.eng.View(viewName); !ok {
		return fmt.Errorf("chronicledb: unknown view %q", viewName)
	}
	// Register first, then read the snapshot: a delta applied after the
	// snapshot is loaded has LSN > the snapshot's LSN and is already being
	// enqueued to the live subscription, so filtering frames ≤ S below
	// makes the splice exact.
	sub, kind := db.hub.Subscribe(viewName, fromLSN, hasFrom)
	defer sub.Close()

	cursor := fromLSN
	if !hasFrom {
		cursor = 0
	}
	var filter uint64
	if kind == feed.ResumeSnapshot {
		var rows []Row
		lsn, err := db.eng.ViewScanAt(viewName, func(t Row) bool {
			rows = append(rows, t)
			return true
		})
		if err != nil {
			return err
		}
		if !fn(WatchEvent{Kind: WatchSnapshot, LSN: lsn, Rows: rows}) {
			return nil
		}
		cursor, filter = lsn, lsn
	}

	var frames []*feed.Frame
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-sub.C():
		}
		frames = sub.Drain(frames[:0])
		stop := false
		for i, f := range frames {
			if stop || f.LSN <= filter {
				f.Release()
				continue
			}
			ev := WatchEvent{Kind: WatchDelta, LSN: f.LSN, Deltas: make([]WatchRow, len(f.Rows))}
			for j, r := range f.Rows {
				ev.Deltas[j] = WatchRow{SN: r.SN, Chronon: r.Chronon, Vals: r.Vals.Clone()}
			}
			f.Release()
			frames[i] = nil
			cursor = ev.LSN
			if !fn(ev) {
				stop = true
			}
		}
		if stop {
			return nil
		}
		if closed, reason := sub.Closed(); closed {
			fn(WatchEvent{Kind: WatchEnd, LSN: cursor, Reason: reason.String()})
			return nil
		}
	}
}
