// Command chronicled serves a chronicle database over HTTP.
//
// Usage:
//
//	chronicled [-addr :7457] [-dir /var/lib/chronicledb] [-sync]
//	           [-retain all|none|N] [-checkpoint-every N] [-shards N]
//
// With -dir, the database is durable: appends hit the WAL before views are
// maintained, and every N appends (default 10000) the server checkpoints
// and truncates the log. Without -dir, the database is in-memory.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"time"

	chronicledb "chronicledb"
	"chronicledb/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":7457", "listen address")
		dir       = flag.String("dir", "", "data directory (empty = in-memory)")
		sync      = flag.Bool("sync", false, "fsync every WAL record")
		retain    = flag.String("retain", "none", "default chronicle retention: all, none, or a row count")
		ckptEvery = flag.Duration("checkpoint-every", time.Minute, "checkpoint interval (0 disables; durable mode only)")
		initFile  = flag.String("init", "", "SQL file executed at startup (idempotence is the caller's concern)")
		shards    = flag.Int("shards", runtime.GOMAXPROCS(0), "single-writer shards (0 = classic single-engine kernel)")
	)
	flag.Parse()

	retention, err := parseRetention(*retain)
	if err != nil {
		log.Fatal(err)
	}
	db, err := chronicledb.Open(chronicledb.Options{
		Dir:              *dir,
		SyncWAL:          *sync,
		Shards:           *shards,
		DefaultRetention: retention,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if *initFile != "" {
		src, err := os.ReadFile(*initFile)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := db.Exec(string(src)); err != nil {
			log.Fatalf("init script: %v", err)
		}
		log.Printf("executed init script %s", *initFile)
	}

	if *dir != "" && *ckptEvery > 0 {
		go func() {
			for range time.Tick(*ckptEvery) {
				if err := db.Checkpoint(); err != nil {
					log.Printf("checkpoint: %v", err)
				}
			}
		}()
	}

	log.Printf("chronicled listening on %s (dir=%q retain=%s shards=%d)", *addr, *dir, *retain, *shards)
	log.Fatal(http.ListenAndServe(*addr, server.New(db)))
}

func parseRetention(s string) (chronicledb.Retention, error) {
	switch s {
	case "all":
		return chronicledb.RetainAll, nil
	case "none":
		return chronicledb.RetainNone, nil
	default:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("chronicled: -retain must be all, none, or a non-negative count")
		}
		return chronicledb.Retention(n), nil
	}
}
