// Command chronicled serves a chronicle database over HTTP.
//
// Usage:
//
//	chronicled [-addr :7457] [-dir /var/lib/chronicledb] [-sync]
//	           [-retain all|none|N] [-checkpoint-every 1m] [-shards N]
//	           [-wal-segment-bytes N] [-checkpoint-full-every N] [-compact]
//	           [-request-timeout 30s] [-max-body 8388608] [-drain-timeout 10s]
//	           [-max-inflight N] [-max-queue N] [-retry-after 1s]
//	           [-dedup-cap N] [-dedup-disabled]
//	           [-feed] [-feed-tail N] [-max-subscribers N] [-heartbeat 10s]
//	           [-view-cache-bytes N] [-view-block-bytes N]
//	           [-replica-of URL] [-follower-id ID] [-ack async|sync]
//	           [-ack-timeout 2s] [-max-staleness D] [-repl-heartbeat 500ms]
//
// With -dir, the database is durable: appends hit a rotated, size-capped
// WAL (segment cap -wal-segment-bytes, default 16 MiB; negative = legacy
// single grow-until-checkpoint file) and the -checkpoint-every ticker cuts
// incremental checkpoints, so recovery time and disk footprint are bounded
// by write rate since the last checkpoint, not by uptime. Each checkpoint
// also compacts: sealed segments wholly below the checkpoint LSN are
// deleted (disable with -compact=false to keep every segment for external
// archiving). Without -dir, the database is in-memory.
//
// With -replica-of, the process starts as a read-only follower of the
// named primary: it streams committed WAL frames, applies them through
// the recovery path, serves reads and /watch with an advertised staleness
// bound (-max-staleness turns lag past the bound into 503s), and becomes
// a writable primary on POST /promote. On a primary, -ack sync holds each
// append ack until some follower confirms the LSN durable (bounded by
// -ack-timeout, after which the write acks anyway and the degraded-ack
// counter ticks).
//
// On SIGINT/SIGTERM the server shuts down gracefully: it stops accepting,
// drains in-flight requests (bounded by -drain-timeout), flushes and syncs
// the WAL, and — in durable mode — cuts a final checkpoint so the next
// start replays an empty log tail.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"syscall"
	"time"

	chronicledb "chronicledb"
	"chronicledb/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":7457", "listen address")
		dir        = flag.String("dir", "", "data directory (empty = in-memory)")
		sync       = flag.Bool("sync", false, "durable WAL: group-commit fsync acks every append")
		retain     = flag.String("retain", "none", "default chronicle retention: all, none, or a row count")
		ckptEvery  = flag.Duration("checkpoint-every", time.Minute, "checkpoint interval (0 disables; durable mode only)")
		segBytes   = flag.Int64("wal-segment-bytes", 0, "WAL segment rotation cap in bytes (0 = default 16MiB, negative = legacy single-file WAL)")
		ckptFull   = flag.Int("checkpoint-full-every", 0, "fold the incremental chain into a full checkpoint every N checkpoints (0 = default 8)")
		compact    = flag.Bool("compact", true, "delete WAL segments and checkpoints superseded by the chain (false keeps every file)")
		initFile   = flag.String("init", "", "SQL file executed at startup (idempotence is the caller's concern)")
		shards     = flag.Int("shards", runtime.GOMAXPROCS(0), "single-writer shards (0 = classic single-engine kernel)")
		reqTimeout = flag.Duration("request-timeout", 30*time.Second, "per-request handling timeout")
		maxBody    = flag.Int64("max-body", 8<<20, "maximum request body bytes")
		drain      = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain bound")
		maxInFl    = flag.Int("max-inflight", 0, "concurrent writes admitted before queueing (0 = default 64)")
		maxQueue   = flag.Int("max-queue", 0, "writes queued beyond in-flight before 429 shedding (0 = default 128)")
		retryAfter = flag.Duration("retry-after", 0, "Retry-After hint on shed requests (0 = default 1s)")
		dedupCap   = flag.Int("dedup-cap", 0, "idempotency dedup entries retained per shard (0 = default 65536)")
		dedupOff   = flag.Bool("dedup-disabled", false, "disable idempotent-append dedup (at-least-once ingestion)")
		cacheBytes = flag.Int64("view-cache-bytes", 0, "resident-byte budget for blocked B-tree view stores (0 = unbounded; durable mode only)")
		blockBytes = flag.Int64("view-block-bytes", 0, "blocked view store block size (0 = default 8KiB, negative = whole-image checkpoints)")
		maintWk    = flag.Int("maint-workers", 0, "view-maintenance fold goroutines per shard engine (0 = GOMAXPROCS, 1 = serial)")
		feed       = flag.Bool("feed", true, "changefeeds: capture view deltas for /watch subscribers")
		feedTail   = flag.Int("feed-tail", 0, "per-view resume window in frames (0 = default 1024)")
		maxSubs    = flag.Int("max-subscribers", 0, "concurrent /watch subscribers before 429 shedding (0 = default 4096)")
		heartbeat  = flag.Duration("heartbeat", 0, "keep-alive cadence on idle /watch streams (0 = default 10s)")
		replicaOf  = flag.String("replica-of", "", "primary base URL; start as a read-only follower (e.g. http://primary:7457)")
		followerID = flag.String("follower-id", "", "stable follower identity for ack tracking (default: generated)")
		ackMode    = flag.String("ack", "async", "replication ack mode on the primary: async or sync")
		ackTimeout = flag.Duration("ack-timeout", 0, "sync-ack wait bound before degrading to async (0 = default 2s)")
		maxStale   = flag.Duration("max-staleness", 0, "advertised replica staleness bound; reads past it answer 503 (0 = never stale)")
		replHB     = flag.Duration("repl-heartbeat", 0, "cursor heartbeat cadence on idle /repl/stream connections (0 = default 500ms)")
	)
	flag.Parse()

	retention, err := parseRetention(*retain)
	if err != nil {
		log.Fatal(err)
	}
	db, err := chronicledb.Open(chronicledb.Options{
		Dir:                 *dir,
		SyncWAL:             *sync,
		Shards:              *shards,
		DefaultRetention:    retention,
		WALSegmentBytes:     *segBytes,
		CheckpointFullEvery: *ckptFull,
		NoCompact:           !*compact,
		DedupCap:            *dedupCap,
		DedupDisabled:       *dedupOff,
		Feed:                *feed,
		FeedTailFrames:      *feedTail,
		ViewCacheBytes:      *cacheBytes,
		ViewBlockBytes:      *blockBytes,
		MaintWorkers:        *maintWk,
		ReplicaOf:           *replicaOf,
		FollowerID:          *followerID,
		AckMode:             *ackMode,
		SyncAckTimeout:      *ackTimeout,
		MaxStaleness:        *maxStale,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if *initFile != "" {
		src, err := os.ReadFile(*initFile)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := db.Exec(string(src)); err != nil {
			log.Fatalf("init script: %v", err)
		}
		log.Printf("executed init script %s", *initFile)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *dir != "" && *ckptEvery > 0 {
		go func() {
			t := time.NewTicker(*ckptEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := db.Checkpoint(); err != nil {
						log.Printf("checkpoint: %v", err)
					}
				}
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("chronicled listening on %s (dir=%q retain=%s shards=%d role=%s)", *addr, *dir, *retain, *shards, db.Role())
	srv := server.NewWith(db, server.Config{
		MaxBodyBytes:   *maxBody,
		RequestTimeout: *reqTimeout,
		MaxInFlight:    *maxInFl,
		MaxQueue:       *maxQueue,
		RetryAfter:     *retryAfter,
		MaxSubscribers: *maxSubs,
		Heartbeat:      *heartbeat,
		ReplHeartbeat:  *replHB,
	})
	err = server.Serve(ctx, ln, srv, *reqTimeout, *drain)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Printf("chronicled: drained, WAL flushed")
	if *dir != "" {
		// Final checkpoint: best-effort (a degraded DB refuses it), but on a
		// healthy exit the next start replays an empty tail.
		if err := db.Checkpoint(); err != nil {
			log.Printf("final checkpoint: %v", err)
		}
	}
}

func parseRetention(s string) (chronicledb.Retention, error) {
	switch s {
	case "all":
		return chronicledb.RetainAll, nil
	case "none":
		return chronicledb.RetainNone, nil
	default:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("chronicled: -retain must be all, none, or a non-negative count")
		}
		return chronicledb.Retention(n), nil
	}
}
