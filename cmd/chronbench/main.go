// Command chronbench runs the experiment suite that reproduces the
// chronicle paper's quantitative claims (DESIGN.md experiments E1–E13) and
// prints one measured table per experiment.
//
// Usage:
//
//	chronbench            # full sweeps (minutes)
//	chronbench -quick     # reduced sweeps (seconds)
//	chronbench -run E1,E4 # selected experiments
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"chronicledb/internal/bench"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "reduced sweep sizes")
		run   = flag.String("run", "", "comma-separated experiment IDs (default: all)")
	)
	flag.Parse()

	selected := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			selected[id] = true
		}
	}

	cfg := bench.Config{Quick: *quick}
	fmt.Printf("chronbench — chronicle data model experiment suite (quick=%v)\n", *quick)
	fmt.Printf("paper: Jagadish, Mumick, Silberschatz — View Maintenance Issues for the Chronicle Data Model, PODS 1995\n\n")

	failed := 0
	for _, exp := range bench.All() {
		if len(selected) > 0 && !selected[exp.ID] {
			continue
		}
		start := time.Now()
		tbl, err := exp.Run(cfg)
		if err != nil {
			log.Printf("%s failed: %v", exp.ID, err)
			failed++
			continue
		}
		fmt.Print(tbl.Format())
		fmt.Printf("  (%s in %.1fs)\n\n", exp.ID, time.Since(start).Seconds())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
