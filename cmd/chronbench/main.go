// Command chronbench runs the experiment suite that reproduces the
// chronicle paper's quantitative claims (DESIGN.md experiments E1–E17) and
// prints one measured table per experiment.
//
// Usage:
//
//	chronbench            # full sweeps (minutes)
//	chronbench -quick     # reduced sweeps (seconds)
//	chronbench -run E1,E4 # selected experiments
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"chronicledb/internal/bench"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "reduced sweep sizes")
		run        = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile (after the run) to this file")
	)
	flag.Parse()

	stopProfiles := startProfiles(*cpuProfile, *memProfile)

	selected := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			selected[id] = true
		}
	}

	cfg := bench.Config{Quick: *quick}
	fmt.Printf("chronbench — chronicle data model experiment suite (quick=%v)\n", *quick)
	fmt.Printf("paper: Jagadish, Mumick, Silberschatz — View Maintenance Issues for the Chronicle Data Model, PODS 1995\n\n")

	failed := 0
	for _, exp := range bench.All() {
		if len(selected) > 0 && !selected[exp.ID] {
			continue
		}
		start := time.Now()
		tbl, err := exp.Run(cfg)
		if err != nil {
			log.Printf("%s failed: %v", exp.ID, err)
			failed++
			continue
		}
		fmt.Print(tbl.Format())
		fmt.Printf("  (%s in %.1fs)\n\n", exp.ID, time.Since(start).Seconds())
	}
	stopProfiles()
	if failed > 0 {
		os.Exit(1)
	}
}

// startProfiles starts the requested pprof captures and returns the
// finalizer that flushes them. It is called before the experiments and the
// finalizer is invoked explicitly (not deferred) because a failed run exits
// through os.Exit.
func startProfiles(cpuPath, memPath string) func() {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				log.Printf("-memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush final allocation stats into the profile
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				log.Printf("-memprofile: %v", err)
			}
		}
	}
}
