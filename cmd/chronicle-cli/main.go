// Command chronicle-cli is an interactive shell (and batch runner) for a
// chronicle database — either an embedded one or a remote chronicled.
//
// Usage:
//
//	chronicle-cli                     # in-memory, interactive
//	chronicle-cli -dir ./data         # embedded, durable
//	chronicle-cli -remote http://host:7457
//	chronicle-cli -e "SHOW VIEWS"     # one-shot
//	chronicle-cli < script.sql        # batch
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	chronicledb "chronicledb"
	"chronicledb/internal/cli"
	"chronicledb/internal/server"
)

// executor abstracts local vs remote execution.
type executor func(stmt string) (columns []string, rows [][]string, message string, err error)

func main() {
	var (
		dir    = flag.String("dir", "", "embedded data directory (empty = in-memory)")
		remote = flag.String("remote", "", "URL of a chronicled server (overrides -dir)")
		oneOff = flag.String("e", "", "execute this statement and exit")
	)
	flag.Parse()

	exec, closeFn, err := buildExecutor(*remote, *dir)
	if err != nil {
		log.Fatal(err)
	}
	defer closeFn()

	if *oneOff != "" {
		if err := runStatement(exec, *oneOff); err != nil {
			log.Fatal(err)
		}
		return
	}

	interactive := isTerminal()
	if interactive {
		fmt.Println("chronicledb shell — statements end with ';', 'quit' exits")
	}
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var split cli.Splitter
	prompt(interactive, false)
	for scanner.Scan() {
		line := scanner.Text()
		if !split.Pending() {
			switch strings.TrimSpace(line) {
			case "quit", "exit":
				return
			case "":
				prompt(interactive, false)
				continue
			}
		}
		for _, stmt := range split.Feed(line) {
			if err := runStatement(exec, stmt); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				if !interactive {
					os.Exit(1)
				}
			}
		}
		prompt(interactive, split.Pending())
	}
	if err := scanner.Err(); err != nil {
		log.Fatal(err)
	}
}

func prompt(interactive, continued bool) {
	if !interactive {
		return
	}
	if continued {
		fmt.Print("   ...> ")
	} else {
		fmt.Print("chron> ")
	}
}

func isTerminal() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

func buildExecutor(remote, dir string) (executor, func(), error) {
	if remote != "" {
		c := server.NewClient(remote)
		if !c.Healthy() {
			return nil, nil, fmt.Errorf("chronicle-cli: no healthy server at %s", remote)
		}
		return func(stmt string) ([]string, [][]string, string, error) {
			res, err := c.Exec(stmt)
			if err != nil {
				return nil, nil, "", err
			}
			rows := make([][]string, len(res.Rows))
			for i, r := range res.Rows {
				rows[i] = make([]string, len(r))
				for j, v := range r {
					rows[i][j] = fmt.Sprint(v)
				}
			}
			return res.Columns, rows, res.Message, nil
		}, func() {}, nil
	}
	db, err := chronicledb.Open(chronicledb.Options{Dir: dir})
	if err != nil {
		return nil, nil, err
	}
	return func(stmt string) ([]string, [][]string, string, error) {
		res, err := db.Exec(stmt)
		if err != nil {
			return nil, nil, "", err
		}
		rows := make([][]string, len(res.Rows))
		for i, r := range res.Rows {
			rows[i] = make([]string, len(r))
			for j, v := range r {
				rows[i][j] = v.String()
			}
		}
		return res.Columns, rows, res.Message, nil
	}, func() { db.Close() }, nil
}

func runStatement(exec executor, stmt string) error {
	columns, rows, message, err := exec(stmt)
	if err != nil {
		return err
	}
	if message != "" {
		fmt.Println(message)
		return nil
	}
	cli.RenderTable(os.Stdout, columns, rows)
	return nil
}
