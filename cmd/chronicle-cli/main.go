// Command chronicle-cli is an interactive shell (and batch runner) for a
// chronicle database — either an embedded one or a remote chronicled.
//
// Usage:
//
//	chronicle-cli                     # in-memory, interactive
//	chronicle-cli -dir ./data         # embedded, durable
//	chronicle-cli -remote http://host:7457
//	chronicle-cli -e "SHOW VIEWS"     # one-shot
//	chronicle-cli < script.sql        # batch
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	chronicledb "chronicledb"
	"chronicledb/internal/cli"
	"chronicledb/internal/server"
	"chronicledb/internal/sqlparse"
)

// executor abstracts local vs remote execution.
type executor func(stmt string) (columns []string, rows [][]string, message string, err error)

// watcher runs a WATCH statement: a stream, not a request, so it gets its
// own surface beside the request-shaped executor.
type watcher func(w *sqlparse.Watch) error

func main() {
	var (
		dir    = flag.String("dir", "", "embedded data directory (empty = in-memory)")
		remote = flag.String("remote", "", "URL of a chronicled server (overrides -dir)")
		oneOff = flag.String("e", "", "execute this statement and exit")
	)
	flag.Parse()

	exec, watch, closeFn, err := buildExecutor(*remote, *dir)
	if err != nil {
		log.Fatal(err)
	}
	defer closeFn()

	if *oneOff != "" {
		if err := runStatement(exec, watch, *oneOff); err != nil {
			log.Fatal(err)
		}
		return
	}

	interactive := isTerminal()
	if interactive {
		fmt.Println("chronicledb shell — statements end with ';', 'quit' exits")
	}
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var split cli.Splitter
	prompt(interactive, false)
	for scanner.Scan() {
		line := scanner.Text()
		if !split.Pending() {
			switch strings.TrimSpace(line) {
			case "quit", "exit":
				return
			case "":
				prompt(interactive, false)
				continue
			}
		}
		for _, stmt := range split.Feed(line) {
			if err := runStatement(exec, watch, stmt); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				if !interactive {
					os.Exit(1)
				}
			}
		}
		prompt(interactive, split.Pending())
	}
	if err := scanner.Err(); err != nil {
		log.Fatal(err)
	}
}

func prompt(interactive, continued bool) {
	if !interactive {
		return
	}
	if continued {
		fmt.Print("   ...> ")
	} else {
		fmt.Print("chron> ")
	}
}

func isTerminal() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

func buildExecutor(remote, dir string) (executor, watcher, func(), error) {
	if remote != "" {
		c := server.NewClient(remote)
		if !c.Healthy() {
			return nil, nil, nil, fmt.Errorf("chronicle-cli: no healthy server at %s", remote)
		}
		exec := func(stmt string) ([]string, [][]string, string, error) {
			res, err := c.Exec(stmt)
			if err != nil {
				return nil, nil, "", err
			}
			rows := make([][]string, len(res.Rows))
			for i, r := range res.Rows {
				rows[i] = make([]string, len(r))
				for j, v := range r {
					rows[i][j] = fmt.Sprint(v)
				}
			}
			return res.Columns, rows, res.Message, nil
		}
		return exec, remoteWatch(c), func() {}, nil
	}
	db, err := chronicledb.Open(chronicledb.Options{Dir: dir, Feed: true})
	if err != nil {
		return nil, nil, nil, err
	}
	exec := func(stmt string) ([]string, [][]string, string, error) {
		res, err := db.Exec(stmt)
		if err != nil {
			return nil, nil, "", err
		}
		rows := make([][]string, len(res.Rows))
		for i, r := range res.Rows {
			rows[i] = make([]string, len(r))
			for j, v := range r {
				rows[i][j] = v.String()
			}
		}
		return res.Columns, rows, res.Message, nil
	}
	return exec, embeddedWatch(db), func() { db.Close() }, nil
}

// embeddedWatch streams a local database's changefeed until Ctrl-C or the
// statement's LIMIT is reached.
func embeddedWatch(db *chronicledb.DB) watcher {
	return func(w *sqlparse.Watch) error {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		seen := 0
		err := db.Watch(ctx, w.View, w.FromLSN, w.HasFrom, func(ev chronicledb.WatchEvent) bool {
			switch ev.Kind {
			case chronicledb.WatchSnapshot:
				fmt.Printf("-- snapshot of %s at lsn %d (%d rows)\n", w.View, ev.LSN, len(ev.Rows))
				for _, r := range ev.Rows {
					fmt.Printf("  %s\n", rowText(r))
				}
			case chronicledb.WatchDelta:
				for _, d := range ev.Deltas {
					fmt.Printf("[lsn %d] sn=%d chronon=%d %s\n", ev.LSN, d.SN, d.Chronon, rowText(d.Vals))
				}
				seen++
				if w.Limit > 0 && seen >= w.Limit {
					return false
				}
			case chronicledb.WatchEnd:
				fmt.Printf("-- watch ended (%s) at lsn %d\n", ev.Reason, ev.LSN)
			}
			return true
		})
		if err == context.Canceled {
			return nil // Ctrl-C ends the watch, not the shell
		}
		return err
	}
}

// remoteWatch streams a server's changefeed over SSE with automatic
// resume; the client reconnects with its LSN cursor on any interruption.
func remoteWatch(c *server.Client) watcher {
	return func(w *sqlparse.Watch) error {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		seen := 0
		err := c.Watch(ctx, w.View, w.FromLSN, w.HasFrom, func(ev server.WatchEvent) bool {
			switch ev.Kind {
			case server.WatchInfo:
				fmt.Printf("-- watching %s (resume: %s, from lsn %d)\n", ev.View, ev.Resume, ev.LSN)
			case server.WatchSnapshot:
				fmt.Printf("-- snapshot of %s at lsn %d (%d rows)\n", ev.View, ev.LSN, len(ev.Rows))
				for _, r := range ev.Rows {
					fmt.Printf("  %s\n", anyRowText(r))
				}
			case server.WatchDelta:
				for _, d := range ev.Deltas {
					fmt.Printf("[lsn %d] sn=%d chronon=%d %s\n", ev.LSN, d.SN, d.Chronon, anyRowText(d.Vals))
				}
				seen++
				if w.Limit > 0 && seen >= w.Limit {
					return false
				}
			case server.WatchBye:
				fmt.Printf("-- watch ended (%s) at lsn %d\n", ev.Reason, ev.LSN)
			}
			return true
		})
		if err == context.Canceled {
			return nil
		}
		return err
	}
}

func rowText(r chronicledb.Row) string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func anyRowText(r []any) string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = fmt.Sprint(v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func runStatement(exec executor, watch watcher, stmt string) error {
	// WATCH is a stream, not a request: intercept it before the executor.
	if strings.HasPrefix(strings.ToUpper(strings.TrimSpace(stmt)), "WATCH") {
		s, err := sqlparse.ParseOne(stmt)
		if err != nil {
			return err
		}
		if w, ok := s.(*sqlparse.Watch); ok {
			return watch(w)
		}
	}
	columns, rows, message, err := exec(stmt)
	if err != nil {
		return err
	}
	if message != "" {
		fmt.Println(message)
		return nil
	}
	cli.RenderTable(os.Stdout, columns, rows)
	return nil
}
