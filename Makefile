# chronicledb — build and verification targets

GO ?= go

.PHONY: all build test race vet check cover bench bench-allocs bench-reads bench-ckpt bench-maint maint-stress experiments fuzz examples torture chaos repl-chaos watch-stress clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# torture enumerates every crash point of the scripted workload on the
# simulated disk (internal/fault) and verifies exact recovery, under the
# race detector. -count=1 defeats test caching: the harness is the gate
# for durability changes and must actually run.
torture:
	$(GO) test -race -count=1 -run 'TestCrashTorture' -v .

# chaos is the network-torture gate: concurrent retrying clients push
# idempotent appends through a fault-injecting transport and a chaos TCP
# proxy (dropped requests, responses lost after apply, duplicated
# deliveries, connections reset mid-body) across a mid-run power cut, and
# the harness asserts exactly-once totals — plus the dedup-disabled
# ablation over-applying. -count=1 defeats caching: this is the gate for
# ingestion-reliability changes and must actually run.
chaos:
	$(GO) test -race -count=1 -run 'TestNetworkChaos' -v .

# repl-chaos is the replication failover gate: the E18 harness pointed at
# a sync-ack primary + follower pair — concurrent retrying clients through
# the chaos proxy and fault-injecting transport, a mid-run primary
# power-cut, POST /promote on the follower, proxy retarget — asserting the
# acked SN ranges tile exactly on the promoted database (zero lost, zero
# duplicated acks), plus the stream/bootstrap/sync-ack/staleness suite.
# -count=1 defeats caching: this is the gate for replication changes and
# must actually run.
repl-chaos:
	$(GO) test -race -count=1 -run 'TestReplChaosFailover|TestReplBasic|TestReplSnapshotBootstrap|TestReplSyncAck|TestReplStaleReads|TestReplPromoteFailover|TestRetryable503Codes' -v .

# watch-stress is the changefeed fan-out gate: many SSE subscribers and
# concurrent appenders race under the race detector while every delivered
# stream must conserve the append total with strictly increasing LSNs,
# plus the network-chaos run that kills and resumes subscribers mid-stream
# across a power cut. -count=1 defeats caching: this is the gate for
# changefeed changes and must actually run.
watch-stress:
	$(GO) test -race -count=1 -run 'TestWatchStress|TestWatchNetworkChaos' -v .

# bench-allocs is the allocation-regression gate: the AllocsPerRun guards
# pin the hot path's steady-state allocation counts (zero for the micro
# paths, a small fixed budget end-to-end), and the append benchmarks print
# the allocs/op trend. -count=1 defeats caching — the guards must run.
bench-allocs:
	$(GO) test -count=1 -run 'TestAllocGuards|TestReplAllocGuards' -v .
	$(GO) test -run=NONE -bench 'BenchmarkAppendHotPath' -benchmem -benchtime 200x .

# bench-reads is the read-path regression gate: the alloc guards pin the
# lock-free lookup and latest-N allocation counts, and the read hot-path
# benchmarks print ns/op for the snapshot traversal. -count=1 defeats
# caching — the guards must run.
bench-reads:
	$(GO) test -count=1 -run 'TestReadAllocGuards' -v .
	$(GO) test -run=NONE -bench 'BenchmarkReadHotPath' -benchmem -benchtime 200x .

# bench-ckpt is the blocked-checkpoint regression gate: the structural
# guards pin that an incremental cut re-serializes the dirty block set,
# not the view (same dirty blocks at 4x the cardinality) and that paged
# hot-key lookups stay on the lock-free snapshot path's allocation budget;
# the benchmark prints one incremental cut's wall time with its
# dirty/total block counts. -count=1 defeats caching — the guards must run.
bench-ckpt:
	$(GO) test -count=1 -run 'TestCheckpointBlockGuards' -v .
	$(GO) test -run=NONE -bench 'BenchmarkBlockedCheckpoint' -benchmem -benchtime 5x .

# maint-stress is the shared-delta pipeline gate: concurrent appenders
# race parallel per-view folds (MaintWorkers > 1) and WATCH subscribers
# with mid-run checkpoints, asserting per-view delta conservation and
# strictly increasing feed LSNs — a fold that dropped, duplicated, or
# reordered a task would break either. -count=1 defeats caching: this is
# the gate for maintenance-pipeline changes and must actually run.
maint-stress:
	$(GO) test -race -count=1 -run 'TestMaintParallelStress' -v .

# bench-maint is the maintenance fan-out regression gate: the alloc guard
# pins that appending with 64 views sharing one σ prefix stays on the
# single-view allocation budget (the shared-delta fan-out adds zero
# allocs/op) and that the shared plan's hit counter grows ≥ V-1 per
# batch; the benchmark prints maint-ns/append across view counts for the
# shared vs duplicated shapes. -count=1 defeats caching — the guard must run.
bench-maint:
	$(GO) test -count=1 -run 'TestMaintAllocGuards' -v .
	$(GO) test -run=NONE -bench 'BenchmarkMaintainFanout' -benchmem -benchtime 50x .

# check is the gate for every change: static analysis plus the full suite
# under the race detector (the sharded kernel is concurrent by design),
# plus the crash-torture enumeration, the network-torture harness, the
# replication failover harness, the changefeed fan-out stress, the
# parallel-maintenance stress, and the allocation-regression guards for
# the append, read, and follower-apply hot paths, the blocked-checkpoint
# guards, and the shared-delta maintenance guards.
check: build vet race torture chaos repl-chaos watch-stress maint-stress bench-allocs bench-reads bench-ckpt bench-maint

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

experiments:
	$(GO) run ./cmd/chronbench

experiments-quick:
	$(GO) run ./cmd/chronbench -quick

fuzz:
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=30s ./internal/sqlparse/
	$(GO) test -run=NONE -fuzz=FuzzDecodeValue -fuzztime=30s ./internal/value/
	$(GO) test -run=NONE -fuzz=FuzzDecodeRecord -fuzztime=30s ./internal/wal/
	$(GO) test -run=NONE -fuzz=FuzzManifest -fuzztime=30s ./internal/wal/
	$(GO) test -run=NONE -fuzz=FuzzBlock -fuzztime=30s ./internal/view/
	$(GO) test -run=NONE -fuzz=FuzzReplFrame -fuzztime=30s ./internal/repl/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/frequentflyer
	$(GO) run ./examples/telecom
	$(GO) run ./examples/banking
	$(GO) run ./examples/stocktrading
	$(GO) run ./examples/eventmonitor
	$(GO) run ./examples/livewatch

clean:
	$(GO) clean ./...
