package chronicledb

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"chronicledb/internal/wal"
)

func shardedDB(t testing.TB, n int) *DB {
	t.Helper()
	db, err := Open(Options{Shards: n, RelationHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// TestShardedEndToEnd runs the canonical telecom scenario through the
// sharded router: DDL places objects on home shards, appends flow through
// the single-writer queues, and scatter/gather queries agree with the
// single-engine answers.
func TestShardedEndToEnd(t *testing.T) {
	db := shardedDB(t, 4)
	if db.Shards() != 4 || db.Router() == nil {
		t.Fatalf("Shards() = %d", db.Shards())
	}
	mustExec(t, db, telecomDDL)
	mustExec(t, db, `UPSERT INTO customers VALUES ('alice', 'nj'), ('bob', 'ny')`)
	mustExec(t, db, `APPEND INTO calls VALUES ('alice', 12, 1.5)`)
	mustExec(t, db, `APPEND INTO calls VALUES ('alice', 8, 0.5), ('bob', 3, 0.25)`)

	res := mustExec(t, db, `SELECT * FROM usage WHERE acct = 'alice'`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	r := res.Rows[0]
	if r[1].AsInt() != 20 || r[2].AsFloat() != 2.0 || r[3].AsInt() != 2 {
		t.Errorf("usage(alice) = %v", r)
	}

	mustExec(t, db, `CREATE VIEW by_state AS
		SELECT state, SUM(cost) AS revenue FROM calls
		JOIN customers ON calls.acct = customers.acct
		GROUP BY state`)
	mustExec(t, db, `UPSERT INTO customers VALUES ('bob', 'nj')`)
	mustExec(t, db, `APPEND INTO calls VALUES ('bob', 1, 1.0)`)
	row, ok, err := db.Lookup("by_state", Str("nj"))
	if err != nil || !ok || row[1].AsFloat() != 1.0 {
		t.Errorf("by_state(nj) = %v %v %v", row, ok, err)
	}

	// Scatter/gather surfaces: stats sum and merged latency histogram.
	if st := db.Stats(); st.Appends != 3 {
		t.Errorf("Stats().Appends = %d", st.Appends)
	}
	if db.MaintenanceLatency().Count == 0 {
		t.Error("merged latency histogram empty")
	}
	if _, err := db.Exec(`SHOW STATS`); err != nil {
		t.Errorf("SHOW STATS: %v", err)
	}
}

// TestShardedGroupsSpreadShards checks that distinct groups actually land
// on distinct shards (with 8 groups over 4 shards a single-shard hash
// would be a routing bug) and stay independent.
func TestShardedGroupsSpreadShards(t *testing.T) {
	db := shardedDB(t, 4)
	used := map[int]bool{}
	for i := 0; i < 8; i++ {
		mustExec(t, db, fmt.Sprintf(`CREATE CHRONICLE c%d (acct STRING, n INT) IN GROUP g%d RETAIN ALL`, i, i))
		used[db.Router().ShardOfGroup(fmt.Sprintf("g%d", i))] = true
		mustExec(t, db, fmt.Sprintf(`APPEND INTO c%d VALUES ('a', %d)`, i, i))
	}
	if len(used) < 2 {
		t.Errorf("8 groups landed on %d shard(s)", len(used))
	}
	for i := 0; i < 8; i++ {
		rows, err := db.Engine().ChronicleRows(fmt.Sprintf("c%d", i))
		if err != nil || len(rows) != 1 || rows[0].Vals[1].AsInt() != int64(i) {
			t.Errorf("c%d rows = %v, %v", i, rows, err)
		}
	}
}

// TestShardedDurability exercises the per-shard WAL segments + manifest:
// mutations recover after a reopen, a checkpoint truncates every segment,
// and the WAL tail replays merged in LSN order so relation updates land
// between exactly the appends they originally separated.
func TestShardedDurability(t *testing.T) {
	dir := t.TempDir()
	open := func(n int) *DB {
		db, err := Open(Options{Dir: dir, Shards: n, RelationHistory: true})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	db := open(2)
	mustExec(t, db, telecomDDL)
	mustExec(t, db, `CREATE VIEW by_state AS
		SELECT state, SUM(cost) AS revenue FROM calls
		JOIN customers ON calls.acct = customers.acct
		GROUP BY state`)
	mustExec(t, db, `UPSERT INTO customers VALUES ('alice', 'nj')`)
	mustExec(t, db, `APPEND INTO calls VALUES ('alice', 10, 2.0)`)
	// The move to ny must replay between the two appends: 2.0 stays nj,
	// 5.0 lands ny.
	mustExec(t, db, `UPSERT INTO customers VALUES ('alice', 'ny')`)
	mustExec(t, db, `APPEND INTO calls VALUES ('alice', 10, 5.0)`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{
		"wal.manifest",
		wal.SegmentFileName(wal.StreamName(0), 1),
		wal.SegmentFileName(wal.StreamName(1), 1),
		wal.SegmentFileName(wal.RelationStream, 1),
	} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s after sharded run: %v", f, err)
		}
	}

	check := func(db *DB) {
		t.Helper()
		row, ok, err := db.Lookup("by_state", Str("nj"))
		if err != nil || !ok || row[1].AsFloat() != 2.0 {
			t.Errorf("by_state(nj) = %v %v %v", row, ok, err)
		}
		row, ok, err = db.Lookup("by_state", Str("ny"))
		if err != nil || !ok || row[1].AsFloat() != 5.0 {
			t.Errorf("by_state(ny) = %v %v %v", row, ok, err)
		}
	}

	db = open(2) // same layout: WAL tail replay
	check(db)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `APPEND INTO calls VALUES ('alice', 1, 1.0)`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db = open(2) // checkpoint + tail
	row, ok, err := db.Lookup("by_state", Str("ny"))
	if err != nil || !ok || row[1].AsFloat() != 6.0 {
		t.Errorf("after checkpoint+tail: by_state(ny) = %v %v %v", row, ok, err)
	}
	db.Close()
}

// TestShardedReshard reopens the same directory under different shard
// counts — 2 → 3 → unsharded → 4 — and the data must survive every
// transition (recover old layout, checkpoint, rewrite the manifest).
func TestShardedReshard(t *testing.T) {
	dir := t.TempDir()
	open := func(n int) *DB {
		db, err := Open(Options{Dir: dir, Shards: n, RelationHistory: true})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	db := open(2)
	mustExec(t, db, telecomDDL)
	mustExec(t, db, `UPSERT INTO customers VALUES ('alice', 'nj')`)
	mustExec(t, db, `APPEND INTO calls VALUES ('alice', 12, 1.5)`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	check := func(db *DB, wantMinutes int64) {
		t.Helper()
		row, ok, err := db.Lookup("usage", Str("alice"))
		if err != nil || !ok || row[1].AsInt() != wantMinutes {
			t.Errorf("usage(alice) = %v %v %v, want minutes %d", row, ok, err, wantMinutes)
		}
	}

	db = open(3)
	check(db, 12)
	mustExec(t, db, `APPEND INTO calls VALUES ('alice', 3, 0.5)`)
	db.Close()

	db = open(0) // back to the single-engine kernel
	check(db, 15)
	if db.Shards() != 0 {
		t.Errorf("Shards() = %d", db.Shards())
	}
	if m, ok, err := wal.ReadManifest(dir); err != nil || !ok || m.Version != 2 || m.Shards != 0 {
		t.Errorf("manifest after unsharded reopen = %+v %v %v (want v2, 0 shards)", m, ok, err)
	}
	mustExec(t, db, `APPEND INTO calls VALUES ('alice', 5, 0.5)`)
	db.Close()

	db = open(4)
	check(db, 20)
	if _, err := os.Stat(filepath.Join(dir, "chronicle.wal")); !os.IsNotExist(err) {
		t.Errorf("legacy WAL still present after sharded reopen: %v", err)
	}
	db.Close()
}

// TestShardedBulkAppendRows covers the facade bulk path the HTTP /append
// handler uses: every row its own transaction, one kernel crossing.
func TestShardedBulkAppendRows(t *testing.T) {
	db := shardedDB(t, 2)
	mustExec(t, db, telecomDDL)
	rows := make([]Row, 50)
	for i := range rows {
		rows[i] = Row{Str("alice"), Int(1), Float(0.5)}
	}
	first, last, err := db.AppendRows("calls", rows)
	if err != nil || last-first != 49 {
		t.Fatalf("AppendRows = %d..%d, %v", first, last, err)
	}
	row, ok, err := db.Lookup("usage", Str("alice"))
	if err != nil || !ok || row[3].AsInt() != 50 {
		t.Errorf("usage(alice) = %v %v %v", row, ok, err)
	}
}
