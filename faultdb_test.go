package chronicledb

import (
	"errors"
	"testing"

	"chronicledb/internal/fault"
)

// durableFaultDB opens a durable DB on a simulated disk and seeds one
// chronicle with an acked row.
func durableFaultDB(t *testing.T) (*DB, *fault.Disk) {
	t.Helper()
	disk := fault.NewDisk()
	db, err := Open(Options{Dir: "/data", SyncWAL: true, FS: disk})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	mustExec(t, db, `CREATE CHRONICLE calls (acct STRING, minutes INT) RETAIN ALL`)
	mustExec(t, db, `APPEND INTO calls VALUES ('alice', 10)`)
	return db, disk
}

// A full disk degrades the database to read-only without losing any acked
// row: the failed append is rejected, later writes fail fast with
// ErrReadOnly, reads keep serving, and after the disk grows the acked
// state reopens intact.
func TestDiskFullDegradesToReadOnly(t *testing.T) {
	db, disk := durableFaultDB(t)

	disk.SetCapacity(disk.BytesWritten()) // no room for the next WAL frame
	if _, err := db.Exec(`APPEND INTO calls VALUES ('bob', 5)`); err == nil {
		t.Fatal("append on a full disk acked")
	}
	ro, cause := db.ReadOnly()
	if !ro || !errors.Is(cause, fault.ErrDiskFull) {
		t.Fatalf("ReadOnly() = %v, %v; want disk-full degradation", ro, cause)
	}
	if _, err := db.Exec(`APPEND INTO calls VALUES ('carol', 1)`); !errors.Is(err, ErrReadOnly) {
		t.Errorf("write after degradation: %v, want ErrReadOnly", err)
	}
	// Reads still serve the acked row.
	if res := mustExec(t, db, `SELECT * FROM calls`); len(res.Rows) != 1 {
		t.Errorf("read while degraded: %v", res.Rows)
	}

	// Grow the disk and restart: only the acked row is there.
	db.Close()
	disk.SetCapacity(0)
	disk.PowerCut()
	disk.Heal()
	db2, err := Open(Options{Dir: "/data", SyncWAL: true, FS: disk})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Exec(`SELECT * FROM calls`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("rows after reopen = %v, want only the acked append", res.Rows)
	}
}

// A failed fsync poisons the WAL (fsyncgate semantics): the append whose
// sync failed is not acked, the DB latches read-only, and the acked prefix
// survives a power cut.
func TestFsyncFailureDegradesToReadOnly(t *testing.T) {
	db, disk := durableFaultDB(t)

	disk.FailNthSync(disk.Syncs())
	if _, err := db.Exec(`APPEND INTO calls VALUES ('bob', 5)`); err == nil {
		t.Fatal("append with failing WAL sync acked")
	}
	if ro, _ := db.ReadOnly(); !ro {
		t.Fatal("fsync failure did not latch read-only")
	}
	if err := db.Checkpoint(); !errors.Is(err, ErrReadOnly) {
		t.Errorf("checkpoint while degraded: %v, want ErrReadOnly", err)
	}

	db.Close()
	disk.PowerCut()
	disk.Heal()
	db2, err := Open(Options{Dir: "/data", SyncWAL: true, FS: disk})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Exec(`SELECT * FROM calls`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("rows after reopen = %v, want only the acked append", res.Rows)
	}
}
