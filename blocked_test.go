package chronicledb

import (
	"fmt"
	"testing"
)

// blockedDDL pins the view store to BTREE: only B-tree views page.
const blockedDDL = `
	CREATE CHRONICLE items (k STRING, n INT);
	CREATE VIEW totals AS SELECT k, SUM(n) AS total, COUNT(*) AS cnt FROM items GROUP BY k WITH STORE BTREE;
`

func blockedKey(i int) string { return fmt.Sprintf("key%05d", i) }

// TestBlockedViewCheckpointAndReopen: the tentpole end-to-end. A B-tree
// view under the segmented layout checkpoints in blocks (only dirty blocks
// re-serialize), recovers lazily through the block index, and pages cold
// blocks back in under a bounded cache.
func TestBlockedViewCheckpointAndReopen(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, WALSegmentBytes: 4096, ViewBlockBytes: 256, ViewCacheBytes: 8 << 10}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, blockedDDL)
	const groups = 400
	for i := 0; i < groups; i++ {
		if _, err := db.Append("items", Tuple{Str(blockedKey(i)), Int(int64(i%7 + 1))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	w := db.WALStats()
	if !w.ViewCacheEnabled || w.ViewCacheBudget != 8<<10 {
		t.Fatalf("view cache gauges off: %+v", w)
	}
	if w.CkptTotalBlocks < 8 {
		t.Fatalf("400 groups at 256B blocks yielded %d blocks", w.CkptTotalBlocks)
	}
	if w.CkptDirtyBlocks == 0 {
		t.Fatal("first checkpoint saw no dirty blocks")
	}

	// A single-group write dirties at most one block; the next incremental
	// checkpoint must re-serialize only that.
	if _, err := db.Append("items", Tuple{Str(blockedKey(3)), Int(100)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	w = db.WALStats()
	if w.CkptDirtyBlocks != 1 {
		t.Fatalf("incremental cut re-serialized %d blocks, want 1", w.CkptDirtyBlocks)
	}
	if w.CkptTotalBlocks < 8 {
		t.Fatalf("incremental cut reports %d total blocks", w.CkptTotalBlocks)
	}

	// The view exceeds the cache budget; the resident set must stay within
	// it while every key remains readable.
	for i := 0; i < groups; i++ {
		want := int64(i%7 + 1)
		if i == 3 {
			want += 100
		}
		row, ok, err := db.Lookup("totals", Str(blockedKey(i)))
		if err != nil || !ok || row[1].AsInt() != want {
			t.Fatalf("key %d: %v %v %v, want total %d", i, row, ok, err, want)
		}
	}
	w = db.WALStats()
	if w.ViewCacheBytes > w.ViewCacheBudget {
		t.Fatalf("resident %d bytes exceeds budget %d", w.ViewCacheBytes, w.ViewCacheBudget)
	}
	if w.ViewCacheEvictions == 0 {
		t.Fatal("no evictions despite view exceeding the budget")
	}
	// The gauges surface through SHOW STATS too.
	res := mustExec(t, db, `SHOW STATS`)
	stats := map[string]int64{}
	for _, r := range res.Rows {
		stats[r[0].AsString()] = r[1].AsInt()
	}
	for _, name := range []string{"view_cache_hits", "view_cache_misses", "view_cache_evictions", "view_cache_bytes", "view_cache_budget", "ckpt_dirty_blocks", "ckpt_total_blocks"} {
		if _, ok := stats[name]; !ok {
			t.Fatalf("SHOW STATS missing %s", name)
		}
	}
	if stats["view_cache_evictions"] == 0 || stats["ckpt_total_blocks"] < 8 {
		t.Fatalf("SHOW STATS gauges stale: %v", stats)
	}
	db.Close()

	// Reopen: recovery restores the block index lazily, then reads fault
	// blocks back from the chain.
	db2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < groups; i++ {
		want := int64(i%7 + 1)
		if i == 3 {
			want += 100
		}
		row, ok, err := db2.Lookup("totals", Str(blockedKey(i)))
		if err != nil || !ok || row[1].AsInt() != want {
			t.Fatalf("reopened key %d: %v %v %v, want total %d", i, row, ok, err, want)
		}
	}
	if w := db2.WALStats(); w.ViewCacheMisses == 0 {
		t.Fatal("reopened reads never faulted a block — lazy restore did not happen")
	}
	// Range scans over a recovered paged view stay ordered and complete.
	rows, err := db2.LookupRange("totals", Tuple{Str(blockedKey(10))}, Tuple{Str(blockedKey(20))})
	if err != nil || len(rows) != 10 {
		t.Fatalf("LookupRange = %d rows, %v; want 10", len(rows), err)
	}
	for j, r := range rows {
		if r[0].AsString() != blockedKey(10+j) {
			t.Fatalf("range row %d = %v", j, r)
		}
	}
	// Writes continue post-recovery (faulting their covering block).
	if _, err := db2.Append("items", Tuple{Str(blockedKey(0)), Int(50)}); err != nil {
		t.Fatal(err)
	}
	if row, ok, _ := db2.Lookup("totals", Str(blockedKey(0))); !ok || row[1].AsInt() != int64(0%7+1)+50 {
		t.Fatalf("post-recovery write: %v %v", row, ok)
	}
	db2.Close()

	// Reopen with blocked stores disabled: the v4 blocked image must
	// restore eagerly into a fully-resident view (compat/ablation path).
	optsOff := opts
	optsOff.ViewBlockBytes = -1
	db3, err := Open(optsOff)
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if w := db3.WALStats(); w.ViewCacheEnabled {
		t.Fatal("ViewBlockBytes=-1 still enabled the cache")
	}
	row, ok, err := db3.Lookup("totals", Str(blockedKey(0)))
	if err != nil || !ok || row[1].AsInt() != int64(0%7+1)+50 {
		t.Fatalf("unpaged reopen: %v %v %v", row, ok, err)
	}
}

// TestBlockedViewSharded: shards share one cache budget; blocked
// checkpoints and lazy recovery work through the router barrier.
func TestBlockedViewSharded(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Shards: 2, WALSegmentBytes: 4096, ViewBlockBytes: 256, ViewCacheBytes: 16 << 10}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, blockedDDL)
	const groups = 200
	for i := 0; i < groups; i++ {
		if _, err := db.Append("items", Tuple{Str(blockedKey(i)), Int(2)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if w := db.WALStats(); w.CkptTotalBlocks == 0 {
		t.Fatalf("sharded checkpoint reported no blocks: %+v", w)
	}
	db.Close()

	db2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < groups; i++ {
		row, ok, err := db2.Lookup("totals", Str(blockedKey(i)))
		if err != nil || !ok || row[1].AsInt() != 2 {
			t.Fatalf("sharded reopen key %d: %v %v %v", i, row, ok, err)
		}
	}
}

// TestCheckpointV3StillLoads: a chain written in the pre-blocked v3 format
// must keep restoring (forward compatibility of old data directories).
func TestCheckpointV3StillLoads(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, WALSegmentBytes: 4096, ViewBlockBytes: 256}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, blockedDDL)
	for i := 0; i < 50; i++ {
		if _, err := db.Append("items", Tuple{Str(blockedKey(i)), Int(3)}); err != nil {
			t.Fatal(err)
		}
	}
	data, lsn, _, _, commits, err := db.buildCheckpointImage(3, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(commits) != 0 {
		t.Fatalf("a v3 image produced %d block commits", len(commits))
	}
	if lsn == 0 {
		t.Fatal("v3 image cut at LSN 0")
	}
	img := append([]byte(nil), data...)

	// Restore the v3 image into a second database with the same schema.
	dir2 := t.TempDir()
	db2, err := Open(Options{Dir: dir2, WALSegmentBytes: 4096, ViewBlockBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	mustExec(t, db2, blockedDDL)
	if _, err := db2.restoreCheckpoint(img, "checkpoint-00000001.bin"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		row, ok, err := db2.Lookup("totals", Str(blockedKey(i)))
		if err != nil || !ok || row[1].AsInt() != 3 {
			t.Fatalf("v3 restore key %d: %v %v %v", i, row, ok, err)
		}
	}
}
