package chronicledb

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"chronicledb/internal/wal"
)

// Segmented storage layout (DESIGN.md §4f). The default layout replaces
// the single grow-until-checkpoint WAL per shard with a chain of
// size-capped segment files per stream, tracked by a version-2 manifest:
//
//   - Append rotates to a fresh segment when the active one would exceed
//     Options.WALSegmentBytes. Rotation is crash-atomic: the old segment
//     is fsynced, the new file is created, truncated, and fsynced, and
//     only then does the manifest flip (atomic replace + dirsync) seal the
//     old entry and register the new one. A failure anywhere latches the
//     log's sticky error — the DB degrades read-only rather than stranding
//     a half-registered segment.
//   - Checkpoints append (usually incremental) images to a checkpoint
//     chain instead of rewriting one full image, and never truncate logs;
//     replay skips records at or below the chain tip's LSN.
//   - The compactor runs inside each checkpoint: sealed segments whose
//     MaxLSN is at or below the new tip are deleted, and a full image
//     folds (deletes) the chain entries it supersedes.
//
// The manifest invariant that makes every flip safe: a file is created
// and fsynced before the flip that references it, and deleted only after
// the flip that drops it. A referenced file therefore always exists, and
// anything unreferenced is a crash leftover that sweepOrphans deletes at
// the next open.

// DefaultSegmentBytes is the segment cap when Options.WALSegmentBytes is 0.
const DefaultSegmentBytes int64 = 16 << 20

// DefaultCheckpointFullEvery is the chain-fold period when
// Options.CheckpointFullEvery is 0: every Nth checkpoint is full.
const DefaultCheckpointFullEvery = 8

// segmented reports whether the DB uses the rotated segment layout.
func (db *DB) segmented() bool {
	return db.opts.Dir != "" && db.opts.WALSegmentBytes >= 0
}

// segmentCap returns the active segment byte cap.
func (db *DB) segmentCap() int64 {
	if db.opts.WALSegmentBytes > 0 {
		return db.opts.WALSegmentBytes
	}
	return DefaultSegmentBytes
}

// fullEvery returns the checkpoint-chain fold period.
func (db *DB) fullEvery() int {
	if db.opts.CheckpointFullEvery > 0 {
		return db.opts.CheckpointFullEvery
	}
	return DefaultCheckpointFullEvery
}

// streams returns the kernel's WAL stream names, in log-open order: one
// per shard plus the relation stream when sharded, the single chronicle
// stream otherwise.
func (db *DB) streams() []string {
	if db.router != nil {
		n := db.router.NumShards()
		s := make([]string, 0, n+1)
		for i := 0; i < n; i++ {
			s = append(s, wal.StreamName(i))
		}
		return append(s, wal.RelationStream)
	}
	return []string{wal.ChronicleStream}
}

// syncPolicy maps Options to the WAL sync policy.
func (db *DB) syncPolicy() wal.SyncPolicy {
	policy := wal.SyncNone
	if db.opts.SyncWAL {
		policy = wal.SyncGroup
		if db.opts.SyncPerAppend {
			policy = wal.SyncEach
		}
	}
	return policy
}

// openSegmented establishes the rotated layout after recovery: it opens
// (or creates) the active segment of every stream, converts foreign
// layouts — legacy single-file, v1 sharded, or a v2 manifest with a
// different shard count — by folding everything recovered into a full
// chain checkpoint and flipping to a fresh manifest, and sweeps any crash
// leftovers. Replaces openLogs in segmented mode.
func (db *DB) openSegmented(old wal.Manifest, hadManifest bool) error {
	dir := db.opts.Dir
	nshards := 0
	if db.router != nil {
		nshards = db.router.NumShards()
	}
	convert := !hadManifest || old.Version != 2 || old.Shards != nshards
	var man wal.Manifest
	if convert {
		man = wal.Manifest{Version: 2, Shards: nshards}
	} else {
		man = old.Clone()
	}

	// Deferred from the conversion checkpoint below: blocked view refs may
	// only be committed once the manifest flip references their file.
	var ckptCommits []blockCommit
	var ckptName string

	// Create the active segment of any stream that lacks one, durably,
	// BEFORE the manifest flip that will reference it. Truncation clears a
	// leftover with the same name (a conversion can reuse a file name from
	// the old layout; its records were recovered above and are preserved
	// by the conversion checkpoint below).
	var created []wal.Segment
	for _, stream := range db.streams() {
		if man.Active(stream) >= 0 {
			continue
		}
		seq := man.MaxSeq(stream) + 1
		seg := wal.Segment{Name: wal.SegmentFileName(stream, seq), Stream: stream, Seq: seq}
		f, err := db.fs.OpenFile(filepath.Join(dir, seg.Name), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("chronicledb: creating segment %s: %w", seg.Name, err)
		}
		if err := f.Truncate(0); err == nil {
			err = f.Sync()
		} else {
			f.Close()
			return fmt.Errorf("chronicledb: creating segment %s: %w", seg.Name, err)
		}
		if err != nil {
			f.Close()
			return fmt.Errorf("chronicledb: creating segment %s: %w", seg.Name, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("chronicledb: creating segment %s: %w", seg.Name, err)
		}
		man.Live = append(man.Live, seg)
		created = append(created, seg)
	}

	if convert {
		// Fold everything just recovered into a full chain checkpoint, so
		// the old layout's files stop being needed the instant the flip
		// lands. A brand-new directory (nothing recovered) skips this and
		// starts with an empty chain. Open is single-threaded, so no
		// barrier or quiesce is needed for an exact cut.
		if db.catalogSynced || hadManifest || db.eng.LSN() > 0 {
			data, lsn, marks, _, commits, err := db.buildCheckpointImage(4, true)
			if err != nil {
				return fmt.Errorf("chronicledb: conversion checkpoint: %w", err)
			}
			name := wal.CheckpointFileName(1)
			if err := wal.WriteFileAtomicFS(db.fs, filepath.Join(dir, name), data); err != nil {
				return fmt.Errorf("chronicledb: conversion checkpoint: %w", err)
			}
			man.Checkpoints = append(man.Checkpoints, wal.CheckpointRef{Name: name, Seq: 1, LSN: lsn, Full: true})
			db.ckptMarks = marks
			db.lastCkptLSN.Store(lsn)
			db.ckptFull.Add(1)
			ckptCommits = commits
			ckptName = name
			// Catalog replay runs through ddlDone, which flags DDL; this
			// full image just captured all of it.
			db.ddlDirty.Store(false)
		}
	}

	if convert || len(created) > 0 {
		// The flip. Its atomic replace ends with a dirsync, which also
		// makes the just-created segments' directory entries durable.
		if err := wal.WriteManifestFS(db.fs, dir, man); err != nil {
			return fmt.Errorf("chronicledb: %w", err)
		}
	}
	db.man = man
	db.commitBlockRefs(ckptName, ckptCommits)

	if convert {
		// The flip dropped the old layout; its files are now unreferenced.
		keep := make(map[string]bool, len(man.Live)+len(man.Checkpoints))
		for _, s := range man.Live {
			keep[s.Name] = true
		}
		for _, c := range man.Checkpoints {
			keep[c.Name] = true
		}
		stale := []string{"chronicle.wal", "checkpoint.bin"}
		if hadManifest {
			stale = append(stale, old.Segments...)
			for _, s := range old.Live {
				stale = append(stale, s.Name)
			}
			for _, c := range old.Checkpoints {
				stale = append(stale, c.Name)
			}
		}
		removed := false
		for _, name := range stale {
			if keep[name] {
				continue
			}
			if db.fs.Remove(filepath.Join(dir, name)) == nil {
				removed = true
			}
		}
		if removed {
			// Best-effort: a failed dirsync leaves orphans for the sweep.
			db.fs.SyncDir(dir)
		}
	}
	db.sweepOrphans()

	// Open the active segment of every stream, in the same order
	// installRecorders expects the logs.
	policy := db.syncPolicy()
	for _, stream := range db.streams() {
		i := man.Active(stream)
		if i < 0 {
			db.closeLogs()
			return fmt.Errorf("chronicledb: manifest has no active segment for stream %s", stream)
		}
		seg := man.Live[i]
		var start int64
		if fi, err := db.fs.Stat(filepath.Join(dir, seg.Name)); err == nil {
			start = fi.Size()
		}
		log, err := wal.OpenSegmentFS(db.fs, dir, stream, seg.Seq, start, db.segmentCap(), policy, db.rotateManifest)
		if err != nil {
			db.closeLogs()
			return fmt.Errorf("chronicledb: %w", err)
		}
		db.logs = append(db.logs, log)
	}
	return nil
}

// commitBlockRefs applies the pending block-ref commits of a just-flipped
// checkpoint and records the cut's block counts for stats. A nil/empty
// commits list (no paged views, or a legacy-format image) resets nothing.
func (db *DB) commitBlockRefs(file string, commits []blockCommit) {
	if len(commits) == 0 {
		return
	}
	var dirty, total int64
	for _, bc := range commits {
		bc.v.CommitBlockRefs(file, bc.base, bc.pend)
		dirty += int64(bc.dirty)
		total += int64(bc.total)
	}
	db.ckptDirtyBlocks.Store(dirty)
	db.ckptTotalBlocks.Store(total)
	// The cut just turned the write burst's dirty blocks clean (hence
	// evictable); shed to budget now instead of waiting for a read fault.
	if db.viewCache != nil {
		db.viewCache.Maintain()
	}
}

// rotateManifest is the segment-rotation hook: called by a log, under its
// own lock, after the sealed segment's content and the next segment's
// empty file are both durable. It flips the manifest to seal the old entry
// (recording its final size and MaxLSN) and register the new one. An error
// aborts the rotation — the log latches it sticky and the DB degrades
// read-only. Lock order: l.mu → manMu; checkpoint takes manMu without any
// log lock, so there is no inversion.
func (db *DB) rotateManifest(sealed, next wal.Segment) error {
	db.manMu.Lock()
	defer db.manMu.Unlock()
	newMan := db.man.Clone()
	replaced := false
	for i := range newMan.Live {
		if newMan.Live[i].Stream == sealed.Stream && newMan.Live[i].Seq == sealed.Seq {
			newMan.Live[i] = sealed
			replaced = true
			break
		}
	}
	if !replaced {
		newMan.Live = append(newMan.Live, sealed)
	}
	newMan.Live = append(newMan.Live, next)
	if err := wal.WriteManifestFS(db.fs, db.opts.Dir, newMan); err != nil {
		return err
	}
	db.man = newMan
	return nil
}

// sweepOrphans deletes storage files in the data directory that the
// current manifest does not reference: segments or checkpoints created
// just before a crash that never got their flip, atomic-write temp files,
// and layout leftovers whose deletion did not complete. Skipped under
// NoCompact, whose whole point is keeping superseded files around.
func (db *DB) sweepOrphans() {
	if db.opts.NoCompact {
		return
	}
	names, err := db.fs.ReadDir(db.opts.Dir)
	if err != nil {
		return
	}
	ref := map[string]bool{wal.ManifestName: true, "catalog.sql": true}
	for _, s := range db.man.Live {
		ref[s.Name] = true
	}
	for _, c := range db.man.Checkpoints {
		ref[c.Name] = true
	}
	removed := false
	for _, name := range names {
		if ref[name] {
			continue
		}
		storage := strings.HasSuffix(name, ".wal") ||
			(strings.HasPrefix(name, "checkpoint") && strings.HasSuffix(name, ".bin")) ||
			strings.Contains(name, ".tmp")
		if !storage {
			continue
		}
		if db.fs.Remove(filepath.Join(db.opts.Dir, name)) == nil {
			removed = true
		}
	}
	if removed {
		db.fs.SyncDir(db.opts.Dir)
	}
}

// writeSegmentedCheckpoint cuts a checkpoint image, appends it to the
// chain, flips the manifest, and compacts. The caller must have quiesced
// mutations (router barrier, engine quiesce, or single-threaded Open) and
// hold db.mu.
//
// Full-vs-incremental policy: the first checkpoint after open is full (no
// marks yet), DDL since the last cut forces full (a dropped — or dropped
// and recreated — object is invisible to the monotonic markers), and every
// fullEvery'th checkpoint is full so the chain folds. A full image
// supersedes the whole chain: the flip removes the old entries and the
// compactor deletes their files. Segments are reclaimed on every
// checkpoint: a sealed segment whose MaxLSN is at or below the new tip LSN
// holds only records the chain already covers.
func (db *DB) writeSegmentedCheckpoint() error {
	wasDDL := db.ddlDirty.Swap(false)
	full := db.ckptMarks == nil || wasDDL || db.incrSinceFull+1 >= db.fullEvery()
	restoreDDL := func() {
		if wasDDL {
			db.ddlDirty.Store(true)
		}
	}
	data, lsn, marks, dirty, commits, err := db.buildCheckpointImage(4, full)
	if err != nil {
		restoreDDL()
		return err
	}
	if !full && dirty == 0 && lsn == db.lastCkptLSN.Load() {
		// Nothing moved since the last cut; skip the no-op chain entry
		// (periodic checkpoint tickers on idle databases hit this).
		return nil
	}

	db.manMu.Lock()
	defer db.manMu.Unlock()
	seq := db.man.NextCheckpointSeq()
	name := wal.CheckpointFileName(seq)
	if err := wal.WriteFileAtomicFS(db.fs, filepath.Join(db.opts.Dir, name), data); err != nil {
		restoreDDL()
		return fmt.Errorf("chronicledb: checkpoint: %w", err)
	}

	newMan := db.man.Clone()
	var drop []string
	var folded int64
	if full {
		for _, c := range newMan.Checkpoints {
			drop = append(drop, c.Name)
			folded++
		}
		newMan.Checkpoints = newMan.Checkpoints[:0]
	}
	newMan.Checkpoints = append(newMan.Checkpoints, wal.CheckpointRef{Name: name, Seq: seq, LSN: lsn, Full: full})
	var reclaimedBytes, reclaimedSegs int64
	if !db.opts.NoCompact {
		live := newMan.Live[:0]
		for _, s := range newMan.Live {
			// Conservative: legacy zero-LSN records leave MaxLSN 0, which
			// only an empty segment may match — never reclaim those.
			if s.Sealed && (s.Bytes == 0 || (s.MaxLSN > 0 && s.MaxLSN <= lsn)) {
				drop = append(drop, s.Name)
				reclaimedBytes += s.Bytes
				reclaimedSegs++
				continue
			}
			live = append(live, s)
		}
		newMan.Live = live
	}

	if err := wal.WriteManifestFS(db.fs, db.opts.Dir, newMan); err != nil {
		restoreDDL()
		// The chain file just written is unreferenced; the next open's
		// sweep collects it.
		return fmt.Errorf("chronicledb: checkpoint: %w", err)
	}
	db.man = newMan
	// The flip made the new image authoritative: install the blocked views'
	// durable refs now, before the compactor deletes any superseded chain
	// file a pre-commit ref might still point at.
	db.commitBlockRefs(name, commits)

	if !db.opts.NoCompact && len(drop) > 0 {
		removed := false
		for _, n := range drop {
			if db.fs.Remove(filepath.Join(db.opts.Dir, n)) == nil {
				removed = true
			}
		}
		if removed {
			// Best-effort: failures leave orphans for the next open's sweep.
			db.fs.SyncDir(db.opts.Dir)
		}
	}

	db.ckptMarks = marks
	db.lastCkptLSN.Store(lsn)
	if full {
		db.ckptFull.Add(1)
		db.ckptsFolded.Add(folded)
		db.incrSinceFull = 0
	} else {
		db.ckptIncr.Add(1)
		db.incrSinceFull++
	}
	db.reclaimedBytes.Add(reclaimedBytes)
	db.segsReclaimed.Add(reclaimedSegs)
	return nil
}
