package chronicledb

// Log-shipping replication glue. The chronicle model makes this unusually
// clean: state is a pure function of the totally-ordered WAL, and recovery
// re-assigns identical LSNs on replay — so a follower that applies the
// primary's committed records in LSN order through the recovery apply paths
// reproduces the primary's exact state, LSN for LSN, views included.
//
// The primary side (internal/repl.Source, wired in Open) releases frames
// only after their fsync, in global LSN order. Followers tail the stream
// (internal/repl.Replica), apply frames into the live engine, write them to
// their own WAL through the normal recorders, and serve lock-free snapshot
// reads. Catch-up from any LSN is served from the v2 manifest's segment set
// (ReplBacklog); anything compacted below the checkpoint chain resyncs from
// a full snapshot image (ReplSnapshot).

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"chronicledb/internal/engine"
	"chronicledb/internal/repl"
	"chronicledb/internal/sqlparse"
	"chronicledb/internal/wal"
)

// ErrReplGone reports that the requested replication start LSN has been
// compacted below the checkpoint chain: the follower must resync from a
// full snapshot (the server maps this to 410 Gone).
var ErrReplGone = errors.New("chronicledb: requested LSN compacted away; snapshot resync required")

// errStopReplay stops ReplayMergedFS once the backlog upper bound is
// reached; it never escapes ReplBacklog.
var errStopReplay = errors.New("stop replay")

// roleGate rejects writes on a replica.
func (db *DB) roleGate() error {
	if db.replicaMode.Load() {
		return ErrNotPrimary
	}
	return nil
}

// ackWait implements the "sync" ack mode: after a local-durable write, wait
// (bounded) until some follower has acknowledged the engine's LSN frontier,
// so the acked write survives the loss of the primary. Timeout or zero
// followers degrades — the write is still acked and the counter moves —
// rather than wedging the write path on a dead follower.
func (db *DB) ackWait() {
	if db.opts.AckMode != "sync" || db.replSrc == nil || db.replicaMode.Load() {
		return
	}
	timeout := db.opts.SyncAckTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	if !db.replSrc.WaitAcked(db.eng.LSN(), timeout) {
		db.degradedAcks.Add(1)
	}
}

// Role reports "primary" or "replica".
func (db *DB) Role() string {
	if db.replicaMode.Load() {
		return "replica"
	}
	return "primary"
}

// DegradedAcks counts sync-mode writes acked without a follower ack.
func (db *DB) DegradedAcks() int64 { return db.degradedAcks.Load() }

// ReplSource exposes the primary-side stream source (nil unless the layout
// is durable and segmented).
func (db *DB) ReplSource() *repl.Source { return db.replSrc }

// ReplState snapshots follower progress; ok is false on a primary.
func (db *DB) ReplState() (st repl.State, ok bool) {
	db.replMu.Lock()
	r := db.replica
	db.replMu.Unlock()
	if r == nil {
		return repl.State{}, false
	}
	return r.State(), true
}

// Stale reports whether follower reads have exceeded Options.MaxStaleness:
// the replica has not observed itself caught up to the primary's advertised
// cursor within that duration (disconnection counts — the caught-up stamp
// stops advancing). Always false on a primary or without a bound.
func (db *DB) Stale() bool {
	if !db.replicaMode.Load() || db.opts.MaxStaleness <= 0 {
		return false
	}
	st, ok := db.ReplState()
	if !ok {
		// Replica mode with no loop running (stopped mid-close): stale.
		return true
	}
	return time.Since(st.CaughtUpAt) > db.opts.MaxStaleness
}

// ReplErr returns the follower loop's most recent stream error (nil when
// healthy or on a primary).
func (db *DB) ReplErr() error {
	db.replMu.Lock()
	r := db.replica
	db.replMu.Unlock()
	if r == nil {
		return nil
	}
	return r.Err()
}

// ReplLag reports the follower's staleness as (LSN distance, wall-clock
// duration); both zero when caught up or on a primary.
func (db *DB) ReplLag() (lsn uint64, age time.Duration) {
	st, ok := db.ReplState()
	if !ok {
		return 0, 0
	}
	if st.PrimaryLSN > st.AppliedLSN {
		lsn = st.PrimaryLSN - st.AppliedLSN
	}
	if age = time.Since(st.CaughtUpAt); age < 0 {
		age = 0
	}
	return lsn, age
}

// Promote turns a replica into a writable primary: stop applying the
// stream, seal the WAL at the last applied LSN, then open the write gate.
// Safe to call on a primary (no-op). The promoted database keeps serving
// the replication stream from the LSNs it inherited, so surviving
// followers re-target and continue.
func (db *DB) Promote() error {
	if !db.replicaMode.Load() {
		return nil
	}
	db.stopReplica()
	if err := db.Flush(); err != nil {
		return fmt.Errorf("chronicledb: promote: sealing WAL: %w", err)
	}
	db.replicaMode.Store(false)
	return nil
}

// startReplica launches the follower loop (Open, after recovery: the
// engine's LSN frontier is the resume cursor).
func (db *DB) startReplica() {
	r := repl.Start(repl.Config{
		Primary:    db.opts.ReplicaOf,
		FollowerID: db.opts.FollowerID,
		From:       db.eng.LSN(),
	}, repl.Callbacks{
		ApplyRecord: db.applyReplRecord,
		ApplyDDL:    db.applyReplDDL,
		DDLCount:    db.ddlSeq.Load,
		Snapshot:    db.replSnapshotResync,
	})
	db.replMu.Lock()
	db.replica = r
	db.replMu.Unlock()
}

// stopReplica quiesces the follower loop (idempotent; used by Close and
// Promote). Must not be called under db.mu: the apply goroutine may be
// inside a DDL apply that needs it.
func (db *DB) stopReplica() {
	db.replMu.Lock()
	r := db.replica
	db.replica = nil
	db.replMu.Unlock()
	if r != nil {
		r.Stop()
	}
}

// applyReplRecord applies one replicated WAL record through the same
// at-coordinates kernel paths recovery uses, so the follower re-acquires
// the primary's exact SNs and LSNs. Unlike recovery, the recorders are
// installed: the applied record lands in the follower's own WAL, making it
// locally durable and re-servable after promotion.
func (db *DB) applyReplRecord(r wal.Record) error {
	switch r.Kind {
	case wal.RecAppend:
		parts := make([]engine.MutationPart, len(r.Parts))
		for i, p := range r.Parts {
			parts[i] = engine.MutationPart{Chronicle: p.Chronicle, Tuples: p.Tuples}
		}
		_, err := db.eng.AppendBatchAt(parts, r.SN, r.Chronon)
		return err
	case wal.RecAppendEach:
		if len(r.Parts) != 1 {
			return fmt.Errorf("idempotent append record with %d parts", len(r.Parts))
		}
		p := r.Parts[0]
		// Re-inserting the dedup entry replicates the idempotency table:
		// after a failover, a client retrying an acked-but-lost request
		// against the new primary gets its original ack, not a double apply.
		return db.eng.AppendEachAt(p.Chronicle, r.SN, r.Chronon, p.Tuples, r.ClientID, r.RequestID)
	case wal.RecUpsert:
		return db.eng.Upsert(r.Relation, r.Tuple)
	case wal.RecDelete:
		_, err := db.eng.DeleteKey(r.Relation, r.Tuple)
		return err
	default:
		return fmt.Errorf("unexpected replicated record kind %d", r.Kind)
	}
}

// applyReplDDL applies catalog statement idx from the stream. The index
// check makes redelivery (stream reconnect overlap) idempotent and turns a
// gap into a loud error instead of a silently divergent catalog.
func (db *DB) applyReplDDL(idx uint64, stmt string) error {
	cur := db.ddlSeq.Load()
	if idx < cur {
		return nil // already applied; redelivered after reconnect
	}
	if idx > cur {
		return fmt.Errorf("ddl gap: stream has statement %d, follower applied %d", idx, cur)
	}
	s, err := sqlparse.ParseOne(stmt)
	if err != nil {
		return fmt.Errorf("replicated ddl %d: %w", idx, err)
	}
	_, err = db.execOne(s, execReplica)
	return err
}

// replSnapshotResync bootstraps an empty follower from the primary's full
// snapshot after the stream start LSN was compacted away (410 Gone). A
// non-empty follower cannot resync in place — its state diverged from the
// primary's retained log — and fails loudly instead.
func (db *DB) replSnapshotResync() (uint64, error) {
	if db.eng.LSN() != 0 || db.ddlSeq.Load() != 0 {
		return 0, fmt.Errorf("chronicledb: replica diverged from the primary's retained log; wipe the data directory and restart")
	}
	resp, err := http.Get(strings.TrimRight(db.opts.ReplicaOf, "/") + "/repl/snapshot")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return 0, fmt.Errorf("chronicledb: snapshot fetch: primary returned %s", resp.Status)
	}
	catBytes, err := strconv.Atoi(resp.Header.Get("X-Repl-Catalog-Bytes"))
	if err != nil || catBytes < 0 {
		return 0, fmt.Errorf("chronicledb: snapshot fetch: bad X-Repl-Catalog-Bytes")
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if len(body) < catBytes {
		return 0, fmt.Errorf("chronicledb: snapshot fetch: truncated body")
	}
	catalog, image := body[:catBytes], body[catBytes:]

	// Replay the primary's catalog through the replica path: it lands in
	// the follower's own catalog file and DDL counter, so the stream's
	// ddl= handshake and a later restart both line up.
	if len(strings.TrimSpace(string(catalog))) > 0 {
		stmts, err := sqlparse.Parse(string(catalog))
		if err != nil {
			return 0, fmt.Errorf("chronicledb: snapshot catalog: %w", err)
		}
		for _, s := range stmts {
			if _, err := db.execOne(s, execReplica); err != nil {
				return 0, fmt.Errorf("chronicledb: snapshot catalog: %w", err)
			}
		}
	}

	var lsn uint64
	db.mu.Lock()
	restore := func() error {
		l, err := db.restoreCheckpoint(image, "")
		if err != nil {
			return err
		}
		lsn = l
		return nil
	}
	if db.router != nil {
		err = db.router.Barrier(restore)
	} else if db.uno != nil {
		err = db.uno.Quiesce(restore)
	} else {
		err = restore()
	}
	if err == nil {
		// Rebase the changefeed world at the restored frontier: view
		// deltas inside the snapshot are not individually replayable, so
		// Watch subscribers resume (or snapshot-splice) from lsn exactly
		// like after a checkpoint restore.
		for _, name := range db.eng.ViewNames() {
			if v, ok := db.eng.View(name); ok {
				v.SetAppliedLSN(lsn)
			}
		}
		if db.hub != nil {
			db.hub.SetBase(lsn)
		}
		db.ddlDirty.Store(true)
	}
	db.mu.Unlock()
	if err != nil {
		return 0, fmt.Errorf("chronicledb: snapshot restore: %w", err)
	}
	// Cut a local checkpoint so a follower restart recovers to lsn instead
	// of finding an empty WAL and needing the snapshot again.
	if db.opts.Dir != "" {
		if err := db.Checkpoint(); err != nil {
			return 0, fmt.Errorf("chronicledb: snapshot restore: %w", err)
		}
	}
	return lsn, nil
}

// ReplGone reports whether a stream from LSN `from` can no longer be
// served from the segment set (records at or below the checkpoint LSN may
// be compacted away). Checked before the stream handler commits to a 200.
func (db *DB) ReplGone(from uint64) bool {
	return from < db.lastCkptLSN.Load()
}

// ReplBacklog streams the encoded record payloads in (from, upTo] from the
// manifest's live segment set, in LSN order, to fn. The payload buffer is
// reused across calls — fn must consume it before returning. LSN
// contiguity is verified as the replay runs: a segment compacted away
// mid-read surfaces as a gap error (the stream handler closes and the
// follower re-dials into the Gone check), never as silent record loss.
func (db *DB) ReplBacklog(from, upTo uint64, fn func(payload []byte, lsn, span uint64) error) error {
	if from >= upTo {
		return nil
	}
	if !db.segmented() {
		return fmt.Errorf("chronicledb: replication needs the segmented WAL layout")
	}
	db.manMu.Lock()
	ckpt := db.lastCkptLSN.Load()
	live := append([]wal.Segment(nil), db.man.Live...)
	db.manMu.Unlock()
	if from < ckpt {
		return ErrReplGone
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].Stream != live[j].Stream {
			return live[i].Stream < live[j].Stream
		}
		return live[i].Seq < live[j].Seq
	})
	segments := make([]string, len(live))
	for i, s := range live {
		segments[i] = s.Name
	}
	var buf []byte
	want := from + 1
	_, err := wal.ReplayMergedFS(db.fs, db.opts.Dir, segments, func(r wal.Record) error {
		span := wal.RecordSpan(r)
		if r.LSN == 0 || span == 0 {
			return nil // legacy unstamped record or DDL annotation
		}
		top := r.LSN + span - 1
		if top <= from {
			return nil
		}
		if r.LSN > upTo {
			return errStopReplay
		}
		if r.LSN != want {
			return fmt.Errorf("chronicledb: replication backlog gap at lsn %d (want %d): segment compacted mid-read", r.LSN, want)
		}
		want = top + 1
		buf = wal.EncodeRecord(buf[:0], r)
		return fn(buf, r.LSN, span)
	})
	if errors.Is(err, errStopReplay) {
		err = nil
	}
	if err == nil && want <= upTo {
		return fmt.Errorf("chronicledb: replication backlog ends at lsn %d (want through %d): segment compacted mid-read", want-1, upTo)
	}
	return err
}

// ReplSnapshot builds the full-resync payload: the catalog text plus a
// self-contained full checkpoint image (version 2: every view inlined,
// dedup table included — exactly-once survives the resync) cut under a
// write quiesce, and the image's LSN. Holding db.mu across both keeps the
// catalog and the image mutually consistent (DDL commits under db.mu too).
func (db *DB) ReplSnapshot() (catalog, image []byte, lsn uint64, err error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.catalogPath != "" {
		catalog, err = db.fs.ReadFile(db.catalogPath)
		if err != nil && !os.IsNotExist(err) {
			return nil, nil, 0, err
		}
		err = nil
	}
	build := func() error {
		data, l, _, _, _, berr := db.buildCheckpointImage(2, true)
		if berr != nil {
			return berr
		}
		// buildCheckpointImage reuses db.ckptBuf; copy out before the next
		// checkpoint overwrites it.
		image = append([]byte(nil), data...)
		lsn = l
		return nil
	}
	if db.router != nil {
		err = db.router.Barrier(build)
	} else if db.uno != nil {
		err = db.uno.Quiesce(build)
	} else {
		err = build()
	}
	if err != nil {
		return nil, nil, 0, fmt.Errorf("chronicledb: snapshot: %w", err)
	}
	return catalog, image, lsn, nil
}

// ReplCatalogTail returns the catalog statements from index n on (0-based),
// rendered without trailing semicolons — the form StageDDL ships and
// ParseOne accepts. The stream handler replays these to a follower whose
// ddl= handshake reported fewer applied statements than the primary has.
func (db *DB) ReplCatalogTail(n uint64) ([]string, error) {
	if db.catalogPath == "" {
		return nil, nil
	}
	db.mu.Lock()
	src, err := db.fs.ReadFile(db.catalogPath)
	db.mu.Unlock()
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	text := string(src)
	if i := strings.LastIndex(text, ";"); i >= 0 {
		text = text[:i+1]
	}
	var stmts []string
	for _, piece := range strings.Split(text, ";\n") {
		if s := strings.TrimSpace(strings.TrimSuffix(piece, ";")); s != "" {
			stmts = append(stmts, s)
		}
	}
	if n >= uint64(len(stmts)) {
		return nil, nil
	}
	return stmts[n:], nil
}

// DDLCount reports how many catalog statements this database has applied —
// the shared index space of the replication stream's DDL frames.
func (db *DB) DDLCount() uint64 { return db.ddlSeq.Load() }

// ReplBufferFrames reports Options.ReplBuffer (the per-follower live
// fan-out buffer, in frames; 0 selects the source default).
func (db *DB) ReplBufferFrames() int { return db.opts.ReplBuffer }
