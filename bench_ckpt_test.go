package chronicledb

import "testing"

// ckptGuardDB opens a durable DB with small blocks and loads a B-tree view
// of n groups, then cuts a full baseline checkpoint so every block is
// clean. dirtySet re-appends the same contiguous key range.
func ckptGuardDB(tb testing.TB, n int, cacheBytes int64) *DB {
	tb.Helper()
	db, err := Open(Options{Dir: tb.TempDir(), ViewBlockBytes: 1024, ViewCacheBytes: cacheBytes})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { db.Close() })
	if _, err := db.Exec(blockedDDL); err != nil {
		tb.Fatal(err)
	}
	tuples := make([]Tuple, n)
	for i := range tuples {
		tuples[i] = Tuple{Str(blockedKey(i)), Int(1)}
	}
	if _, _, err := db.AppendRows("items", tuples); err != nil {
		tb.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		tb.Fatal(err)
	}
	return db
}

func dirtySet(tb testing.TB, db *DB, n int) {
	tb.Helper()
	tuples := make([]Tuple, n)
	for i := range tuples {
		tuples[i] = Tuple{Str(blockedKey(i)), Int(1)}
	}
	if _, _, err := db.AppendRows("items", tuples); err != nil {
		tb.Fatal(err)
	}
}

// TestCheckpointBlockGuards pins the structural claims behind E21 without
// timing flakiness (`make bench-ckpt`):
//
//   - an incremental cut after a fixed-size clustered dirty set
//     re-serializes the same small block count at 4x the cardinality —
//     checkpoint cost tracks the dirty set, not the view;
//   - a hot-key lookup on a paged view stays on the lock-free snapshot
//     path: same allocation budget as the unpaged read guard.
func TestCheckpointBlockGuards(t *testing.T) {
	const dirtyN = 64
	var dirtyAt [2]int64
	for i, n := range []int{2_000, 8_000} {
		db := ckptGuardDB(t, n, 0)
		base := db.WALStats()
		dirtySet(t, db, dirtyN)
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		w := db.WALStats()
		if w.CkptTotalBlocks <= base.CkptTotalBlocks/2 || w.CkptTotalBlocks < int64(n)/100 {
			t.Fatalf("n=%d: implausible total blocks %d (baseline %d)", n, w.CkptTotalBlocks, base.CkptTotalBlocks)
		}
		dirtyAt[i] = w.CkptDirtyBlocks
		t.Logf("n=%d: incremental cut re-serialized %d of %d blocks", n, w.CkptDirtyBlocks, w.CkptTotalBlocks)
	}
	if dirtyAt[0] == 0 || dirtyAt[1] == 0 {
		t.Fatalf("dirty set produced no dirty blocks: %v", dirtyAt)
	}
	// The same dirty key range must cost the same blocks at 4x the rows
	// (+1 tolerates a boundary straddle after different split histories).
	if dirtyAt[1] > dirtyAt[0]+1 {
		t.Errorf("dirty blocks grew with cardinality: %d @2k vs %d @8k — checkpoint cost is no longer ∝ dirty set", dirtyAt[0], dirtyAt[1])
	}

	t.Run("paged-hot-lookup-allocs", func(t *testing.T) {
		if raceEnabledInternal {
			t.Skip("allocation counts are not meaningful under -race")
		}
		db := ckptGuardDB(t, 2_000, 64<<10)
		key := Str(blockedKey(7))
		if _, ok, err := db.Lookup("totals", key); err != nil || !ok {
			t.Fatal(ok, err) // fault the covering block in once
		}
		got := testing.AllocsPerRun(1000, func() {
			if _, ok, err := db.Lookup("totals", key); err != nil || !ok {
				t.Fatal(ok, err)
			}
		})
		// Same budget as the unpaged lock-free lookup guard
		// (TestReadAllocGuards): residency checks must not add allocations.
		if got > 6 {
			t.Errorf("paged hot lookup: %.1f allocs/op, budget 6 — the cache check left the lock-free path", got)
		} else {
			t.Logf("paged hot lookup: %.1f allocs/op (budget 6)", got)
		}
	})
}

// BenchmarkBlockedCheckpoint times one incremental cut after a fixed
// 64-group dirty set on an 8k-group blocked view (`make bench-ckpt`) —
// the E21 fast path: dirty blocks re-encode, clean blocks write refs.
func BenchmarkBlockedCheckpoint(b *testing.B) {
	db := ckptGuardDB(b, 8_000, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dirtySet(b, db, 64)
		b.StartTimer()
		if err := db.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
	w := db.WALStats()
	b.ReportMetric(float64(w.CkptDirtyBlocks), "dirty-blocks")
	b.ReportMetric(float64(w.CkptTotalBlocks), "total-blocks")
	if w.CkptDirtyBlocks == 0 {
		b.Fatal("incremental cut saw no dirty blocks")
	}
}
