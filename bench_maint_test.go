// Maintenance fan-out benchmarks and guards for the shared-delta pipeline.
// The claim under test (E22): when V views share expression structure, the
// per-append maintenance cost of computing their deltas is the cost of the
// DISTINCT subexpressions, not Σ(per-view tree cost) — the shared plan
// computes each common prefix once per batch and fans the rows out. The
// alloc guard pins the second half of the claim: the shared-delta path adds
// zero steady-state allocations over the classic per-view apply.
// `make bench-maint` (wired into `make check`) runs both.
package chronicledb_test

import (
	"fmt"
	"testing"

	chronicledb "chronicledb"
)

// fanoutDB builds an in-memory DB with V summary views over one chronicle.
// shape "shared" gives every view the identical σ prefix (one plan node
// serves all V); shape "duplicated" gives each view its own constant, so
// every view evaluates its own σ — same fold work per view (the probe
// tuple passes every filter), different delta-computation sharing.
func fanoutDB(tb testing.TB, shape string, V int) *chronicledb.DB {
	tb.Helper()
	db, err := chronicledb.Open(chronicledb.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT)`); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < V; i++ {
		where := "minutes >= 0"
		if shape == "duplicated" {
			where = fmt.Sprintf("minutes >= %d", i)
		}
		stmt := fmt.Sprintf(`CREATE VIEW v%d AS SELECT acct, SUM(minutes) AS m
			FROM calls WHERE %s GROUP BY acct`, i, where)
		if _, err := db.Exec(stmt); err != nil {
			tb.Fatal(err)
		}
	}
	return db
}

// fanoutTuple passes every filter of both shapes (minutes = 1000 ≥ 255), so
// shared and duplicated runs fold identical rows into identical view states
// and differ only in delta computation.
var fanoutTuple = chronicledb.Tuple{chronicledb.Str("acct-fan"), chronicledb.Int(1000)}

func BenchmarkMaintainFanout(b *testing.B) {
	for _, shape := range []string{"shared", "duplicated"} {
		for _, V := range []int{1, 4, 16, 64, 256} {
			b.Run(fmt.Sprintf("%s/views=%d", shape, V), func(b *testing.B) {
				db := fanoutDB(b, shape, V)
				defer db.Close()
				for i := 0; i < 50; i++ { // warm scratch, plan buffers, stores
					if _, err := db.Append("calls", fanoutTuple); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := db.Append("calls", fanoutTuple); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				st := db.Stats()
				b.ReportMetric(float64(st.MaintenanceNs)/float64(st.Appends), "maint-ns/append")
				b.ReportMetric(float64(st.SharedHits)/float64(st.Appends), "shared-hits/append")
			})
		}
	}
}

// TestMaintAllocGuards pins the allocation behavior of the shared-delta
// fan-out: appending with 64 views sharing one σ prefix stays on the same
// fixed budget as the single-view append — sharing adds nothing — and the
// shared plan's hit counter proves the prefix was computed once per batch.
func TestMaintAllocGuards(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	measure := func(V int) (allocs float64, db *chronicledb.DB) {
		db = fanoutDB(t, "shared", V)
		for i := 0; i < 200; i++ {
			if _, err := db.Append("calls", fanoutTuple); err != nil {
				t.Fatal(err)
			}
		}
		allocs = testing.AllocsPerRun(500, func() {
			if _, err := db.Append("calls", fanoutTuple); err != nil {
				t.Fatal(err)
			}
		})
		return allocs, db
	}

	one, db1 := measure(1)
	defer db1.Close()
	many, db64 := measure(64)
	defer db64.Close()
	t.Logf("allocs/append: 1 view = %.1f, 64 shared views = %.1f", one, many)
	// Same end-to-end budget as the engine-append guard: the fan-out path
	// must not allocate per view.
	if many > 2 {
		t.Errorf("64-view shared append: %.1f allocs/op, budget 2", many)
	}
	if many-one > 0.5 {
		t.Errorf("shared fan-out adds %.1f allocs/op over a single view, want 0", many-one)
	}

	// Shared-hit accounting: every batch evaluates the common σ prefix once
	// and serves the other 63 views (plus the scan leaf) from the cache, so
	// hits grow by ≥ V-1 per append.
	st := db64.Stats()
	if min := st.Appends * 63; st.SharedHits < min {
		t.Errorf("SharedHits = %d over %d appends, want ≥ %d", st.SharedHits, st.Appends, min)
	}
}
