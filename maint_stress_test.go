// Race stress for the shared-delta maintenance pipeline: concurrent
// appenders drive parallel per-view folds (MaintWorkers > 1) while WATCH
// subscribers consume the changefeed and checkpoints cut mid-run. The
// assertions are the pipeline's two ordering invariants: per-view delta
// conservation (every appended row shows up exactly once in every view
// that selects it — a parallel fold that dropped, duplicated, or
// misordered a task would break the count) and strictly increasing feed
// LSNs (capture order is fixed under the engine lock before hand-off, so
// fold scheduling must not be observable). `make maint-stress` is part of
// `make check` via the watch-stress pattern; this file extends it with the
// parallel-fold dimension.
package chronicledb_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	chronicledb "chronicledb"
)

func TestMaintParallelStress(t *testing.T) {
	const (
		subscribers = 8
		appenders   = 4
		appendsEach = 120
	)
	for _, shards := range []int{0, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db, err := chronicledb.Open(chronicledb.Options{
				Dir:          t.TempDir(),
				Feed:         true,
				FeedRing:     4096,
				Shards:       shards,
				MaintWorkers: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			if db.MaintWorkers() != 4 {
				t.Fatalf("MaintWorkers = %d, want 4", db.MaintWorkers())
			}
			if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT)`); err != nil {
				t.Fatal(err)
			}
			// usage sees every append; the big_* twins share a σ prefix
			// (minutes >= 100) so their deltas come off one shared plan node
			// — and every appended row passes the filter (minutes = 200), so
			// all three views must conserve the same per-account counts.
			for _, stmt := range []string{
				`CREATE VIEW usage AS SELECT acct, COUNT(*) AS n FROM calls GROUP BY acct`,
				`CREATE VIEW big_sum AS SELECT acct, SUM(minutes) AS total FROM calls WHERE minutes >= 100 GROUP BY acct`,
				`CREATE VIEW big_n AS SELECT acct, COUNT(*) AS n FROM calls WHERE minutes >= 100 GROUP BY acct`,
			} {
				if _, err := db.Exec(stmt); err != nil {
					t.Fatal(err)
				}
			}

			total := int64(appenders * appendsEach)
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()

			var wg sync.WaitGroup
			errs := make(chan error, subscribers+appenders+1)
			// Subscribers split across the unfiltered view and the shared-
			// prefix twin: both must conserve exactly.
			for s := 0; s < subscribers; s++ {
				view := "usage"
				if s%2 == 1 {
					view = "big_n"
				}
				wg.Add(1)
				go func(s int, view string) {
					defer wg.Done()
					acctN := map[string]int64{}
					var lastLSN uint64
					seen := int64(0)
					err := db.Watch(ctx, view, 0, false, func(ev chronicledb.WatchEvent) bool {
						switch ev.Kind {
						case chronicledb.WatchSnapshot:
							lastLSN = ev.LSN
							for _, r := range ev.Rows {
								acctN[r[0].AsString()] = r[1].AsInt()
								seen += r[1].AsInt()
							}
						case chronicledb.WatchDelta:
							if ev.LSN <= lastLSN {
								errs <- fmt.Errorf("subscriber %d (%s): LSN %d after %d", s, view, ev.LSN, lastLSN)
								return false
							}
							lastLSN = ev.LSN
							for _, d := range ev.Deltas {
								acctN[d.Vals[0].AsString()]++
								seen++
							}
						case chronicledb.WatchEnd:
							errs <- fmt.Errorf("subscriber %d (%s): shed (%s)", s, view, ev.Reason)
							return false
						}
						return seen < total
					})
					if err != nil && ctx.Err() == nil {
						errs <- fmt.Errorf("subscriber %d (%s): %v", s, view, err)
						return
					}
					if ctx.Err() != nil {
						return // timeout reported once below
					}
					if seen != total {
						errs <- fmt.Errorf("subscriber %d (%s): saw %d rows, want %d", s, view, seen, total)
					}
					for a := 0; a < appenders; a++ {
						acct := fmt.Sprintf("acct-%d", a)
						if acctN[acct] != appendsEach {
							errs <- fmt.Errorf("subscriber %d (%s): %s total %d, want %d", s, view, acct, acctN[acct], appendsEach)
						}
					}
				}(s, view)
			}
			for a := 0; a < appenders; a++ {
				wg.Add(1)
				go func(a int) {
					defer wg.Done()
					stmt := fmt.Sprintf(`APPEND INTO calls VALUES ('acct-%d', 200)`, a)
					for i := 0; i < appendsEach; i++ {
						if _, err := db.Exec(stmt); err != nil {
							errs <- fmt.Errorf("appender %d: %v", a, err)
							return
						}
					}
				}(a)
			}
			// Mid-run checkpoints race the parallel folds: Barrier/engine
			// locking must quiesce in-flight batches, and the views a cut
			// serializes must be batch-consistent.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 3; i++ {
					time.Sleep(30 * time.Millisecond)
					if err := db.Checkpoint(); err != nil {
						errs <- fmt.Errorf("checkpoint %d: %v", i, err)
						return
					}
				}
			}()
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			if ctx.Err() != nil {
				t.Fatal("stress run timed out before every subscriber caught up")
			}

			// The twins' materializations agree with the source exactly, and
			// the shared plan actually served the twin prefix from cache.
			for a := 0; a < appenders; a++ {
				acct := fmt.Sprintf("acct-%d", a)
				res, err := db.Exec(fmt.Sprintf(`SELECT * FROM big_sum WHERE acct = '%s'`, acct))
				if err != nil {
					t.Fatalf("big_sum[%s]: %v", acct, err)
				}
				if len(res.Rows) != 1 || res.Rows[0][1].AsInt() != 200*appendsEach {
					t.Errorf("big_sum[%s] = %v, want %d", acct, res.Rows, 200*appendsEach)
				}
			}
			if st := db.Stats(); st.SharedHits == 0 {
				t.Error("SharedHits = 0: the twin σ prefix never hit the shared plan cache")
			}
		})
	}
}
