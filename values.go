package chronicledb

import "chronicledb/internal/value"

// Value is a typed scalar: the cell type of chronicles, relations, and
// views. Values are immutable.
type Value = value.Value

// Tuple is an ordered list of values.
type Tuple = value.Tuple

// Int returns an integer value.
func Int(v int64) Value { return value.Int(v) }

// Float returns a floating-point value.
func Float(v float64) Value { return value.Float(v) }

// Str returns a string value.
func Str(v string) Value { return value.Str(v) }

// Bool returns a boolean value.
func Bool(v bool) Value { return value.Bool(v) }

// Chronon returns a time value from nanoseconds since the Unix epoch.
func Chronon(ns int64) Value { return value.Chronon(ns) }

// Null returns the null value.
func Null() Value { return value.Null() }
