// Benchmarks, one per experiment in DESIGN.md (E1–E14). The paper has no
// measured tables or figures of its own — it is a theory extended abstract —
// so these benchmarks regenerate its quantitative *claims*: the IM
// complexity-class separations (Theorems 4.2/4.4/4.5, Proposition 3.1) and
// the Section-5 design arguments. cmd/chronbench prints the same
// experiments as formatted sweep tables; EXPERIMENTS.md records the
// claim-vs-measured comparison.
package chronicledb_test

import (
	"fmt"
	"sync"
	"testing"

	chronicledb "chronicledb"
	"chronicledb/internal/aggregate"
	"chronicledb/internal/algebra"
	"chronicledb/internal/baseline"
	"chronicledb/internal/bench"
	"chronicledb/internal/calendar"
	"chronicledb/internal/chronicle"
	"chronicledb/internal/dispatch"
	"chronicledb/internal/pred"
	"chronicledb/internal/tiers"
	"chronicledb/internal/value"
	"chronicledb/internal/view"
)

func mustTelecom(b *testing.B, nAccts int, retain chronicle.Retention, history bool) *bench.Telecom {
	b.Helper()
	w, err := bench.NewTelecom(nAccts, retain, history)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func feed(b *testing.B, w *bench.Telecom, v *view.View, n int) {
	b.Helper()
	for i := 0; i < n; i++ {
		d, _, err := w.NextCall()
		if err != nil {
			b.Fatal(err)
		}
		if v != nil {
			v.Apply(d)
		}
	}
}

// BenchmarkE1_MaintenanceVsChronicleSize — Thm 4.4/4.5 vs Prop 3.1.
func BenchmarkE1_MaintenanceVsChronicleSize(b *testing.B) {
	for _, size := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("C=%d/sca1-incremental", size), func(b *testing.B) {
			w := mustTelecom(b, 1024, chronicle.RetainAll, false)
			v := bench.MustView(w.UsageDef("usage"), view.StoreHash)
			feed(b, w, v, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, _, err := w.NextCall()
				if err != nil {
					b.Fatal(err)
				}
				v.Apply(d)
			}
		})
		b.Run(fmt.Sprintf("C=%d/recompute", size), func(b *testing.B) {
			w := mustTelecom(b, 1024, chronicle.RetainAll, false)
			feed(b, w, nil, size)
			rc, err := baseline.NewRecompute(w.UsageDef("usage"))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rc.Refresh(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2_MaintenanceVsRelationSize — Thm 4.5 class separation in |R|.
func BenchmarkE2_MaintenanceVsRelationSize(b *testing.B) {
	for _, size := range []int{1_000, 64_000} {
		build := func(b *testing.B, class string) (*bench.Telecom, *view.View) {
			w := mustTelecom(b, size, chronicle.RetainNone, false)
			if err := w.FillCustomers(size); err != nil {
				b.Fatal(err)
			}
			var def view.Def
			var err error
			switch class {
			case "sca1":
				def = w.UsageDef("v")
			case "scakey":
				def, err = w.KeyJoinDef("v")
			case "scacross":
				def, err = w.CrossDef("v")
			}
			if err != nil {
				b.Fatal(err)
			}
			return w, bench.MustView(def, view.StoreHash)
		}
		for _, class := range []string{"sca1", "scakey", "scacross"} {
			b.Run(fmt.Sprintf("R=%d/%s", size, class), func(b *testing.B) {
				w, v := build(b, class)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					d, _, err := w.NextCall()
					if err != nil {
						b.Fatal(err)
					}
					v.Apply(d)
				}
			})
		}
	}
}

// BenchmarkE3_Throughput — Sec. 3: appends/sec with k views per class.
func BenchmarkE3_Throughput(b *testing.B) {
	for _, k := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("sca1-views=%d", k), func(b *testing.B) {
			w := mustTelecom(b, 1024, chronicle.RetainNone, false)
			var views []*view.View
			for i := 0; i < k; i++ {
				views = append(views, bench.MustView(w.UsageDef(fmt.Sprintf("v%d", i)), view.StoreHash))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, _, err := w.NextCall()
				if err != nil {
					b.Fatal(err)
				}
				for _, v := range views {
					v.Apply(d)
				}
			}
		})
	}
	b.Run("engine-dispatch-sca1-views=64", func(b *testing.B) {
		// The full engine path: WAL-less append → dispatch → maintenance.
		db, err := chronicledb.Open(chronicledb.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT)`); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			stmt := fmt.Sprintf(`CREATE VIEW v%d AS SELECT acct, SUM(minutes) AS total
				FROM calls WHERE acct = '%s' GROUP BY acct`, i, bench.Acct(i))
			if _, err := db.Exec(stmt); err != nil {
				b.Fatal(err)
			}
		}
		tuple := chronicledb.Tuple{chronicledb.Str(bench.Acct(7)), chronicledb.Int(3)}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Append("calls", tuple); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE4_QueryLatency — Sec. 1: view lookup vs chronicle scan.
func BenchmarkE4_QueryLatency(b *testing.B) {
	for _, size := range []int{10_000, 100_000} {
		w := mustTelecom(b, 1024, chronicle.RetainAll, false)
		v := bench.MustView(w.UsageDef("usage"), view.StoreHash)
		feed(b, w, v, size)
		key := value.Tuple{value.Str(bench.Acct(7))}
		b.Run(fmt.Sprintf("C=%d/view-lookup", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := v.Lookup(key); !ok {
					b.Fatal("miss")
				}
			}
		})
		b.Run(fmt.Sprintf("C=%d/chronicle-scan", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.ScanQuery(w.Calls, 0, key[0], aggregate.Sum, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5_DeltaVsExprShape — Thm 4.2: delta cost for (u, j) shapes.
func BenchmarkE5_DeltaVsExprShape(b *testing.B) {
	const relSize = 64
	shapes := []struct {
		u, j int
		key  bool
	}{
		{0, 0, false}, {2, 0, false}, {0, 2, false}, {2, 2, false}, {2, 2, true},
	}
	for _, s := range shapes {
		kind := "cross"
		if s.key {
			kind = "keyjoin"
		}
		b.Run(fmt.Sprintf("u=%d/j=%d/%s", s.u, s.j, kind), func(b *testing.B) {
			w := mustTelecom(b, 64, chronicle.RetainNone, false)
			if err := w.FillCustomers(relSize); err != nil {
				b.Fatal(err)
			}
			var expr algebra.Node = algebra.NewScan(w.Calls)
			for i := 0; i < s.u; i++ {
				sel, err := algebra.NewSelect(algebra.NewScan(w.Calls),
					pred.Or(pred.ColConst(1, pred.Ge, value.Int(0))))
				if err != nil {
					b.Fatal(err)
				}
				un, err := algebra.NewUnion(expr, sel)
				if err != nil {
					b.Fatal(err)
				}
				expr = un
			}
			for i := 0; i < s.j; i++ {
				if s.key {
					je, err := algebra.NewJoinRel(expr, w.Cust, []int{0}, []int{0})
					if err != nil {
						b.Fatal(err)
					}
					expr = je
				} else {
					ce, err := algebra.NewCrossRel(expr, w.Cust)
					if err != nil {
						b.Fatal(err)
					}
					expr = ce
				}
			}
			d, _, err := w.NextCall()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				algebra.Delta(expr, d)
			}
		})
	}
}

// BenchmarkE6_MovingWindow — Sec. 5.1: cyclic buffer vs re-aggregation.
func BenchmarkE6_MovingWindow(b *testing.B) {
	for _, buckets := range []int{32, 512} {
		b.Run(fmt.Sprintf("W=%d/ring", buckets), func(b *testing.B) {
			ring, _ := calendar.NewMovingWindow(aggregate.Sum, 1, buckets)
			for i := 0; i < b.N; i++ {
				ch := int64(i / 16)
				ring.Add("k", ch, value.Int(3))
				ring.Value("k", ch)
			}
		})
		b.Run(fmt.Sprintf("W=%d/fast-sum", buckets), func(b *testing.B) {
			fast, _ := calendar.NewMovingSum(1, buckets)
			for i := 0; i < b.N; i++ {
				ch := int64(i / 16)
				fast.Add("k", ch, 3)
				fast.Value("k", ch)
			}
		})
		b.Run(fmt.Sprintf("W=%d/naive", buckets), func(b *testing.B) {
			naive, _ := calendar.NewNaiveWindow(aggregate.Sum, int64(buckets))
			for i := 0; i < b.N; i++ {
				ch := int64(i / 16)
				naive.Add("k", ch, value.Int(3))
				naive.Value("k", ch)
			}
		})
	}
}

// BenchmarkE7_DispatchVsViewCount — Sec. 5.2: predicate-indexed dispatch.
func BenchmarkE7_DispatchVsViewCount(b *testing.B) {
	for _, n := range []int{256, 16384} {
		g := chronicle.NewGroup("g")
		c, err := g.NewChronicle("calls", value.NewSchema(
			value.Column{Name: "acct", Kind: value.KindString},
			value.Column{Name: "minutes", Kind: value.KindInt},
		), chronicle.RetainNone)
		if err != nil {
			b.Fatal(err)
		}
		register := func(d *dispatch.Dispatcher) {
			for i := 0; i < n; i++ {
				d.Register(&dispatch.Target{
					ID:              fmt.Sprintf("t%d", i),
					Chronicles:      []*chronicle.Chronicle{c},
					Filter:          pred.Or(pred.ColConst(0, pred.Eq, value.Str(bench.Acct(i)))),
					FilterChronicle: c,
				})
			}
		}
		rows := []chronicle.Row{{SN: 1, Vals: value.Tuple{value.Str(bench.Acct(3)), value.Int(7)}}}
		b.Run(fmt.Sprintf("N=%d/indexed", n), func(b *testing.B) {
			d := dispatch.New(true)
			register(d)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Affected(c, rows, 0)
			}
		})
		b.Run(fmt.Sprintf("N=%d/linear", n), func(b *testing.B) {
			d := dispatch.New(false)
			register(d)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Affected(c, rows, 0)
			}
		})
	}
}

// BenchmarkE8_PeriodicLifecycle — Sec. 5.1: appends across billing periods.
func BenchmarkE8_PeriodicLifecycle(b *testing.B) {
	for _, policy := range []struct {
		name   string
		expire int64
	}{{"expire", 1000}, {"keep-forever", -1}} {
		b.Run(policy.name, func(b *testing.B) {
			w := mustTelecom(b, 64, chronicle.RetainNone, false)
			cal, _ := calendar.NewPeriodic(0, 1000, 1000)
			pv, err := calendar.NewPeriodicView("m", w.UsageDef("m"), cal, policy.expire, view.StoreHash)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, _, err := w.NextCall()
				if err != nil {
					b.Fatal(err)
				}
				if err := pv.Apply(d, int64(i/200*1000)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9_TiersIncrementalVsBatch — Sec. 5.3.
func BenchmarkE9_TiersIncrementalVsBatch(b *testing.B) {
	sched, err := tiers.NewSchedule(tiers.AllUnits,
		tiers.Tier{Threshold: 10, Rate: 0.10}, tiers.Tier{Threshold: 25, Rate: 0.20})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("incremental-per-record", func(b *testing.B) {
		tr := tiers.NewTracker(sched)
		for i := 0; i < b.N; i++ {
			tr.Add("k", 0.42)
		}
	})
	b.Run("batch-period=10000", func(b *testing.B) {
		amounts := make([]float64, 10_000)
		for i := range amounts {
			amounts[i] = 0.42
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tiers.BatchCompute(sched, amounts)
		}
	})
}

// BenchmarkE10_ViewStoreAblation — Thm 4.4: hash vs B-tree group stores.
func BenchmarkE10_ViewStoreAblation(b *testing.B) {
	for _, size := range []int{10_000, 1_000_000} {
		for _, kind := range []view.StoreKind{view.StoreHash, view.StoreBTree} {
			b.Run(fmt.Sprintf("V=%d/%s", size, kind), func(b *testing.B) {
				w := mustTelecom(b, size, chronicle.RetainNone, false)
				v := bench.MustView(w.UsageDef("usage"), kind)
				for i := 0; i < size; i++ {
					v.ApplyRows([]chronicle.Row{{SN: int64(i), Vals: value.Tuple{
						value.Str(bench.Acct(i)), value.Int(1), value.Float(0.1)}}})
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					d, _, err := w.NextCall()
					if err != nil {
						b.Fatal(err)
					}
					v.Apply(d)
				}
			})
		}
	}
}

// BenchmarkE11_ProactiveUpdates — Sec. 2.3: relation updates under a
// temporal-join view.
func BenchmarkE11_ProactiveUpdates(b *testing.B) {
	w := mustTelecom(b, 256, chronicle.RetainNone, false)
	if err := w.FillCustomers(256); err != nil {
		b.Fatal(err)
	}
	kd, err := w.KeyJoinDef("by_state")
	if err != nil {
		b.Fatal(err)
	}
	v := bench.MustView(kd, view.StoreHash)
	b.Run("append-under-join-view", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d, _, err := w.NextCall()
			if err != nil {
				b.Fatal(err)
			}
			v.Apply(d)
		}
	})
	b.Run("proactive-update", func(b *testing.B) {
		tup := value.Tuple{value.Str(bench.Acct(1)), value.Str("nj"), value.Int(0)}
		lsn := uint64(1 << 30)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lsn++
			if err := w.Cust.Upsert(lsn, tup); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE12_Recovery — checkpoint + WAL tail vs full replay.
func BenchmarkE12_Recovery(b *testing.B) {
	const appends = 2_000
	for _, mode := range []struct {
		name       string
		checkpoint bool
	}{{"full-replay", false}, {"checkpoint90+tail", true}} {
		b.Run(fmt.Sprintf("appends=%d/%s", appends, mode.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := b.TempDir()
				db, err := chronicledb.Open(chronicledb.Options{Dir: dir})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT);
					CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total FROM calls GROUP BY acct`); err != nil {
					b.Fatal(err)
				}
				for j := 0; j < appends; j++ {
					if _, err := db.Append("calls", chronicledb.Tuple{
						chronicledb.Str(bench.Acct(j % 128)), chronicledb.Int(1)}); err != nil {
						b.Fatal(err)
					}
					if mode.checkpoint && j == appends*9/10 {
						if err := db.Checkpoint(); err != nil {
							b.Fatal(err)
						}
					}
				}
				if err := db.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				db2, err := chronicledb.Open(chronicledb.Options{Dir: dir})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				db2.Close()
			}
		})
	}
}

// BenchmarkE13_EndToEndAppend — the full engine path (append → dispatch →
// delta → maintenance) under per-account views, with and without the
// Section 5.2 predicate index.
func BenchmarkE13_EndToEndAppend(b *testing.B) {
	for _, mode := range []struct {
		name    string
		noIndex bool
	}{{"indexed-dispatch", false}, {"linear-dispatch", true}} {
		b.Run(mode.name, func(b *testing.B) {
			db, err := chronicledb.Open(chronicledb.Options{NoDispatchIndex: mode.noIndex})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT)`); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 64; i++ {
				stmt := fmt.Sprintf(`CREATE VIEW v%d AS SELECT acct, SUM(minutes) AS m
					FROM calls WHERE acct = '%s' GROUP BY acct`, i, bench.Acct(i))
				if _, err := db.Exec(stmt); err != nil {
					b.Fatal(err)
				}
			}
			tuple := chronicledb.Tuple{chronicledb.Str(bench.Acct(7)), chronicledb.Int(3)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Append("calls", tuple); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE14_ShardScaling — the sharded execution layer: concurrent
// clients on disjoint chronicle groups, routed to single-writer shards.
// Throughput should grow with the shard count up to the host's core count
// (on a single-core host the curve is flat by design).
func BenchmarkE14_ShardScaling(b *testing.B) {
	const clients = 8
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			db, err := chronicledb.Open(chronicledb.Options{Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			for c := 0; c < clients; c++ {
				stmts := fmt.Sprintf(`CREATE CHRONICLE calls%[1]d (acct STRING, minutes INT) IN GROUP g%[1]d;
					CREATE VIEW usage%[1]d AS SELECT acct, SUM(minutes) AS total FROM calls%[1]d GROUP BY acct`, c)
				if _, err := db.Exec(stmts); err != nil {
					b.Fatal(err)
				}
			}
			batch := make([]chronicledb.Tuple, 64)
			for i := range batch {
				batch[i] = chronicledb.Tuple{chronicledb.Str(bench.Acct(i % 64)), chronicledb.Int(3)}
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					name := fmt.Sprintf("calls%d", c)
					for done := 0; done < b.N/clients; done += len(batch) {
						n := len(batch)
						if b.N/clients-done < n {
							n = b.N/clients - done
						}
						if _, _, err := db.AppendRows(name, batch[:n]); err != nil {
							b.Error(err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
		})
	}
}
