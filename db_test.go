package chronicledb

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chronicledb/internal/wal"
)

func memDB(t testing.TB) *DB {
	t.Helper()
	db, err := Open(Options{RelationHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func mustExec(t testing.TB, db *DB, stmt string) *Result {
	t.Helper()
	res, err := db.Exec(stmt)
	if err != nil {
		t.Fatalf("Exec(%q): %v", stmt, err)
	}
	return res
}

func expectExecError(t testing.TB, db *DB, stmt, fragment string) {
	t.Helper()
	if _, err := db.Exec(stmt); err == nil {
		t.Fatalf("Exec(%q) succeeded, want error about %q", stmt, fragment)
	} else if !strings.Contains(err.Error(), fragment) {
		t.Errorf("Exec(%q) error %q does not mention %q", stmt, err, fragment)
	}
}

const telecomDDL = `
CREATE GROUP telecom;
CREATE CHRONICLE calls (acct STRING, minutes INT, cost FLOAT) IN GROUP telecom;
CREATE RELATION customers (acct STRING, state STRING, KEY(acct));
CREATE VIEW usage AS
  SELECT calls.acct, SUM(minutes) AS total_minutes, SUM(cost) AS total_cost, COUNT(*) AS n
  FROM calls GROUP BY calls.acct;
`

func TestExecEndToEnd(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, telecomDDL)
	mustExec(t, db, `UPSERT INTO customers VALUES ('alice', 'nj'), ('bob', 'ny')`)
	mustExec(t, db, `APPEND INTO calls VALUES ('alice', 12, 1.5)`)
	mustExec(t, db, `APPEND INTO calls VALUES ('alice', 8, 0.5), ('bob', 3, 0.25)`)

	res := mustExec(t, db, `SELECT * FROM usage WHERE acct = 'alice'`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	r := res.Rows[0]
	if r[1].AsInt() != 20 || r[2].AsFloat() != 2.0 || r[3].AsInt() != 2 {
		t.Errorf("usage(alice) = %v", r)
	}
	if res.Columns[0] != "acct" || res.Columns[1] != "total_minutes" {
		t.Errorf("columns = %v", res.Columns)
	}

	// Programmatic API agrees.
	row, ok, err := db.Lookup("usage", Str("bob"))
	if err != nil || !ok || row[1].AsInt() != 3 {
		t.Errorf("Lookup(bob) = %v, %v, %v", row, ok, err)
	}
	if _, _, err := db.Lookup("ghost"); err == nil {
		t.Error("Lookup of unknown view succeeded")
	}
}

func TestQueryRelationAndChronicle(t *testing.T) {
	db, err := Open(Options{DefaultRetention: RetainAll})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, telecomDDL)
	mustExec(t, db, `UPSERT INTO customers VALUES ('alice', 'nj'), ('bob', 'ny')`)
	mustExec(t, db, `APPEND INTO calls VALUES ('alice', 12, 1.5)`)

	res := mustExec(t, db, `SELECT * FROM customers WHERE state = 'nj'`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "alice" {
		t.Errorf("relation query = %v", res.Rows)
	}
	res = mustExec(t, db, `SELECT * FROM calls`)
	if len(res.Rows) != 1 || res.Columns[0] != "_sn" {
		t.Errorf("chronicle query = %v %v", res.Columns, res.Rows)
	}
	res = mustExec(t, db, `SELECT * FROM customers LIMIT 1`)
	if len(res.Rows) != 1 {
		t.Errorf("limit query = %v", res.Rows)
	}
	expectExecError(t, db, `SELECT * FROM nothing`, "unknown")
	mustExec(t, db, `DELETE FROM customers KEY ('bob')`)
	res = mustExec(t, db, `SELECT * FROM customers`)
	if len(res.Rows) != 1 {
		t.Errorf("after delete = %v", res.Rows)
	}
	res = mustExec(t, db, `DELETE FROM customers KEY ('bob')`)
	if res.Message != "no such key" {
		t.Errorf("double delete message = %q", res.Message)
	}
}

func TestExplainAndShow(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, telecomDDL)
	res := mustExec(t, db, `EXPLAIN VIEW usage`)
	text := dumpResult(res)
	if !strings.Contains(text, "CA1") || !strings.Contains(text, "IM-Constant") {
		t.Errorf("EXPLAIN = %s", text)
	}
	res = mustExec(t, db, `SHOW VIEWS`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "usage" {
		t.Errorf("SHOW VIEWS = %v", res.Rows)
	}
	res = mustExec(t, db, `SHOW CHRONICLES`)
	if len(res.Rows) != 1 {
		t.Errorf("SHOW CHRONICLES = %v", res.Rows)
	}
	res = mustExec(t, db, `SHOW RELATIONS`)
	if len(res.Rows) != 1 {
		t.Errorf("SHOW RELATIONS = %v", res.Rows)
	}
	res = mustExec(t, db, `SHOW STATS`)
	if len(res.Rows) == 0 {
		t.Error("SHOW STATS empty")
	}
	expectExecError(t, db, `EXPLAIN VIEW ghost`, "unknown view")
}

func dumpResult(res *Result) string {
	var b strings.Builder
	for _, r := range res.Rows {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestJoinViewClassification(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, telecomDDL)
	res := mustExec(t, db, `CREATE VIEW by_state AS
		SELECT state, SUM(cost) AS revenue FROM calls
		JOIN customers ON calls.acct = customers.acct
		GROUP BY state`)
	if !strings.Contains(res.Message, "CA⋈") || !strings.Contains(res.Message, "IM-log(R)") {
		t.Errorf("message = %q", res.Message)
	}
	mustExec(t, db, `UPSERT INTO customers VALUES ('alice', 'nj')`)
	mustExec(t, db, `APPEND INTO calls VALUES ('alice', 10, 2.5)`)
	row, ok, err := db.Lookup("by_state", Str("nj"))
	if err != nil || !ok || row[1].AsFloat() != 2.5 {
		t.Errorf("by_state(nj) = %v %v %v", row, ok, err)
	}
}

func TestTheorem43Rejections(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, telecomDDL)
	mustExec(t, db, `CREATE CHRONICLE payments (acct STRING, amount FLOAT) IN GROUP telecom`)
	expectExecError(t, db, `CREATE VIEW bad AS
		SELECT calls.acct, COUNT(*) AS n FROM calls
		JOIN payments ON calls.acct = payments.acct GROUP BY calls.acct`,
		"Theorem 4.3")
	expectExecError(t, db, `CREATE VIEW bad2 AS
		SELECT calls.acct, COUNT(*) AS n FROM calls
		JOIN customers ON calls.minutes >= customers.acct GROUP BY calls.acct`,
		"equijoin")
}

func TestPeriodicViewSQL(t *testing.T) {
	now := int64(0)
	db, err := Open(Options{Clock: func() int64 { return now }})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE CHRONICLE calls (acct STRING, minutes INT)`)
	mustExec(t, db, `CREATE PERIODIC VIEW monthly AS
		SELECT acct, SUM(minutes) AS total FROM calls GROUP BY acct
		EVERY 100`)
	now = 10
	mustExec(t, db, `APPEND INTO calls VALUES ('a', 5)`)
	now = 150
	mustExec(t, db, `APPEND INTO calls VALUES ('a', 7)`)
	res := mustExec(t, db, `EXPLAIN VIEW monthly`)
	if !strings.Contains(dumpResult(res), "periodic") {
		t.Errorf("EXPLAIN periodic = %s", dumpResult(res))
	}
	pv, ok := db.Engine().PeriodicView("monthly")
	if !ok || pv.Live() != 2 {
		t.Fatalf("Live = %d", pv.Live())
	}
	res = mustExec(t, db, `SHOW VIEWS`)
	if !strings.Contains(dumpResult(res), "monthly (periodic)") {
		t.Errorf("SHOW VIEWS = %s", dumpResult(res))
	}
}

func TestDurableReopenWALOnly(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, telecomDDL)
	mustExec(t, db, `UPSERT INTO customers VALUES ('alice', 'nj')`)
	mustExec(t, db, `APPEND INTO calls VALUES ('alice', 12, 1.5)`)
	mustExec(t, db, `APPEND INTO calls VALUES ('alice', 8, 0.5)`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	row, ok, err := db2.Lookup("usage", Str("alice"))
	if err != nil || !ok || row[1].AsInt() != 20 {
		t.Fatalf("after reopen: %v %v %v", row, ok, err)
	}
	// Relation state also recovered.
	res := mustExec(t, db2, `SELECT * FROM customers`)
	if len(res.Rows) != 1 || res.Rows[0][1].AsString() != "nj" {
		t.Errorf("customers after reopen = %v", res.Rows)
	}
	// Sequence numbers continue, and new appends work.
	mustExec(t, db2, `APPEND INTO calls VALUES ('alice', 1, 0.1)`)
	row, _, _ = db2.Lookup("usage", Str("alice"))
	if row[1].AsInt() != 21 {
		t.Errorf("post-recovery append: %v", row)
	}
}

func TestDurableCheckpointTruncatesWAL(t *testing.T) {
	// Legacy single-file layout (WALSegmentBytes < 0): a checkpoint writes
	// one full image to checkpoint.bin and truncates the WAL outright. The
	// segmented default never truncates — TestSegmentedCheckpointChain
	// covers its replay-skip + compaction equivalent.
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, DefaultRetention: Retention(2), WALSegmentBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, telecomDDL)
	mustExec(t, db, `UPSERT INTO customers VALUES ('alice', 'nj')`)
	for i := 0; i < 10; i++ {
		mustExec(t, db, `APPEND INTO calls VALUES ('alice', 1, 0.5)`)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	walInfo, err := os.Stat(filepath.Join(dir, "chronicle.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if walInfo.Size() != 0 {
		t.Errorf("WAL size after checkpoint = %d", walInfo.Size())
	}
	// Post-checkpoint appends land in the WAL tail.
	mustExec(t, db, `APPEND INTO calls VALUES ('alice', 2, 1.0)`)
	db.Close()

	db2, err := Open(Options{Dir: dir, DefaultRetention: Retention(2), WALSegmentBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	row, ok, _ := db2.Lookup("usage", Str("alice"))
	if !ok || row[1].AsInt() != 12 || row[3].AsInt() != 11 {
		t.Fatalf("after checkpointed reopen: %v %v", row, ok)
	}
	// Retained window (retention 2) also restored, and group SN continues.
	res := mustExec(t, db2, `SELECT * FROM calls`)
	if len(res.Rows) != 2 {
		t.Errorf("retained window = %v", res.Rows)
	}
	if _, err := db2.Exec(`APPEND INTO calls VALUES ('alice', 1, 0.5)`); err != nil {
		t.Errorf("post-recovery append: %v", err)
	}
}

func TestDurablePeriodicViewsSurviveCheckpoint(t *testing.T) {
	dir := t.TempDir()
	now := int64(10)
	db, err := Open(Options{Dir: dir, Clock: func() int64 { return now }})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE CHRONICLE calls (acct STRING, minutes INT)`)
	mustExec(t, db, `CREATE PERIODIC VIEW monthly AS
		SELECT acct, SUM(minutes) AS total FROM calls GROUP BY acct EVERY 100`)
	mustExec(t, db, `APPEND INTO calls VALUES ('a', 5)`)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	now = 50
	mustExec(t, db, `APPEND INTO calls VALUES ('a', 6)`)
	db.Close()

	db2, err := Open(Options{Dir: dir, Clock: func() int64 { return now }})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	pv, ok := db2.Engine().PeriodicView("monthly")
	if !ok {
		t.Fatal("periodic view missing after recovery")
	}
	insts := pv.Instances()
	if len(insts) != 1 {
		t.Fatalf("instances = %d", len(insts))
	}
	got, _ := insts[0].View.Lookup(Tuple{Str("a")})
	if got[1].AsInt() != 11 {
		t.Errorf("month total = %v (checkpoint 5 + WAL tail 6)", got)
	}
}

func TestTornWALTailRecovers(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, telecomDDL)
	mustExec(t, db, `APPEND INTO calls VALUES ('alice', 12, 1.5)`)
	mustExec(t, db, `APPEND INTO calls VALUES ('alice', 8, 0.5)`)
	db.Close()

	// Simulate a crash mid-write: chop the last few bytes of the active
	// WAL segment (the chronicle stream's first segment — nothing here
	// rotates).
	walPath := filepath.Join(dir, wal.SegmentFileName(wal.ChronicleStream, 1))
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	row, ok, _ := db2.Lookup("usage", Str("alice"))
	if !ok || row[1].AsInt() != 12 {
		t.Fatalf("after torn tail: %v %v (only the first append survives)", row, ok)
	}
}

func TestCheckpointRequiresDir(t *testing.T) {
	db := memDB(t)
	if err := db.Checkpoint(); err == nil {
		t.Error("in-memory checkpoint succeeded")
	}
	if err := db.Flush(); err != nil {
		t.Errorf("in-memory Flush: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Errorf("in-memory Close: %v", err)
	}
}

func TestExecErrors(t *testing.T) {
	db := memDB(t)
	expectExecError(t, db, ``, "empty")
	expectExecError(t, db, `NONSENSE`, "expected a statement")
	expectExecError(t, db, `APPEND INTO ghost VALUES (1)`, "unknown chronicle")
	expectExecError(t, db, `CREATE CHRONICLE c (x INT, x INT)`, "duplicate column")
	mustExec(t, db, `CREATE CHRONICLE c (x INT)`)
	expectExecError(t, db, `CREATE RELATION r (a STRING, KEY(nope))`, "key column")
	expectExecError(t, db, `APPEND INTO c VALUES ('wrong-type')`, "expects int")
}

func TestCatalogRendersAndReplays(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE GROUP g`)
	mustExec(t, db, `CREATE CHRONICLE c (acct STRING, n INT) IN GROUP g RETAIN 5`)
	mustExec(t, db, `CREATE RELATION r (k STRING, v INT, KEY(k))`)
	mustExec(t, db, `CREATE VIEW v AS
		SELECT c.acct, SUM(n) AS total FROM c
		JOIN r ON c.acct = r.k
		WHERE n > 0 AND (acct = 'a' OR acct = 'b')
		GROUP BY c.acct WITH STORE BTREE`)
	mustExec(t, db, `CREATE PERIODIC VIEW pv AS
		SELECT acct, COUNT(*) AS n2 FROM c GROUP BY acct
		EVERY 100 WIDTH 200 OFFSET 7 EXPIRE 50`)
	db.Close()

	catalog, err := os.ReadFile(filepath.Join(dir, "catalog.sql"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(catalog)
	for _, want := range []string{"RETAIN 5", "KEY(k)", "WITH STORE BTREE", "EVERY 100 WIDTH 200 OFFSET 7 EXPIRE 50", "WHERE n > 0 AND (acct = 'a' OR acct = 'b')"} {
		if !strings.Contains(text, want) {
			t.Errorf("catalog missing %q:\n%s", want, text)
		}
	}

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("catalog replay: %v", err)
	}
	defer db2.Close()
	if _, ok := db2.View("v"); !ok {
		t.Error("view v missing after catalog replay")
	}
	if _, ok := db2.Engine().PeriodicView("pv"); !ok {
		t.Error("periodic view pv missing after catalog replay")
	}
}

func TestSNJoinAndAtomicAppend(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `
		CREATE GROUP orders;
		CREATE CHRONICLE placed (acct STRING, item STRING) IN GROUP orders;
		CREATE CHRONICLE charged (acct STRING, amount FLOAT) IN GROUP orders;
		CREATE VIEW spend AS
			SELECT placed.acct, SUM(amount) AS total, COUNT(*) AS n
			FROM placed JOIN charged ON SN
			GROUP BY placed.acct;
	`)
	// Atomic multi-chronicle append: both tuples share one sequence number,
	// so the SN-join view sees the pair.
	mustExec(t, db, `APPEND INTO placed VALUES ('a', 'book') ALSO INTO charged VALUES ('a', 12.5)`)
	mustExec(t, db, `APPEND INTO placed VALUES ('a', 'pen') ALSO INTO charged VALUES ('a', 2.5)`)
	// A solo append joins with nothing.
	mustExec(t, db, `APPEND INTO placed VALUES ('a', 'unbilled')`)

	row, ok, err := db.Lookup("spend", Str("a"))
	if err != nil || !ok {
		t.Fatalf("lookup: %v %v", ok, err)
	}
	if row[1].AsFloat() != 15.0 || row[2].AsInt() != 2 {
		t.Errorf("spend(a) = %v", row)
	}
}

func TestDropView(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, telecomDDL)
	mustExec(t, db, `APPEND INTO calls VALUES ('alice', 12, 1.5)`)
	res := mustExec(t, db, `DROP VIEW usage`)
	if !strings.Contains(res.Message, "dropped") {
		t.Errorf("message = %q", res.Message)
	}
	expectExecError(t, db, `SELECT * FROM usage`, "unknown")
	expectExecError(t, db, `DROP VIEW usage`, "no view")
	// Appends keep working, and the dropped view is no longer maintained.
	before := db.Stats().ViewsMaintained
	mustExec(t, db, `APPEND INTO calls VALUES ('alice', 1, 0.1)`)
	if db.Stats().ViewsMaintained != before {
		t.Error("dropped view still maintained")
	}
	// The name can be reused.
	mustExec(t, db, `CREATE VIEW usage AS SELECT acct, COUNT(*) AS n FROM calls GROUP BY acct`)
	// Periodic views drop too.
	mustExec(t, db, `CREATE PERIODIC VIEW p AS SELECT acct, COUNT(*) AS n FROM calls GROUP BY acct EVERY 100`)
	mustExec(t, db, `DROP VIEW p`)
	if _, ok := db.Engine().PeriodicView("p"); ok {
		t.Error("periodic view still present")
	}
}

func TestDropViewDurable(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, telecomDDL)
	mustExec(t, db, `DROP VIEW usage`)
	db.Close()
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, ok := db2.View("usage"); ok {
		t.Error("dropped view resurrected by recovery")
	}
}

func TestCorruptCheckpointRejected(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, telecomDDL)
	mustExec(t, db, `APPEND INTO calls VALUES ('alice', 12, 1.5)`)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	path := filepath.Join(dir, wal.CheckpointFileName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the header magic.
	bad := append([]byte("XXXX"), data[4:]...)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
	// Truncated checkpoint also rejected.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Error("truncated checkpoint accepted")
	}
	// Restoring the original brings the database back.
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if row, ok, _ := db2.Lookup("usage", Str("alice")); !ok || row[1].AsInt() != 12 {
		t.Errorf("restored checkpoint: %v %v", row, ok)
	}
}

func TestCorruptCatalogRejected(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE CHRONICLE c (x INT)`)
	db.Close()
	if err := os.WriteFile(filepath.Join(dir, "catalog.sql"), []byte("NOT SQL AT ALL"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Error("corrupt catalog accepted")
	}
}

func TestLookupRange(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE CHRONICLE calls (acct STRING, minutes INT)`)
	mustExec(t, db, `CREATE VIEW usage AS
		SELECT acct, SUM(minutes) AS total FROM calls GROUP BY acct WITH STORE BTREE`)
	for _, acct := range []string{"carol", "alice", "dave", "bob"} {
		mustExec(t, db, `APPEND INTO calls VALUES ('`+acct+`', 1)`)
	}
	rows, err := db.LookupRange("usage", Tuple{Str("b")}, Tuple{Str("d")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].AsString() != "bob" || rows[1][0].AsString() != "carol" {
		t.Errorf("LookupRange = %v", rows)
	}
	if _, err := db.LookupRange("ghost", nil, nil); err == nil {
		t.Error("unknown view accepted")
	}
}

func TestStddevViaSQL(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE CHRONICLE readings (sensor STRING, temp FLOAT)`)
	mustExec(t, db, `CREATE VIEW spread AS
		SELECT sensor, AVG(temp) AS mean, VAR(temp) AS variance, STDDEV(temp) AS sd
		FROM readings GROUP BY sensor`)
	for _, v := range []string{"2", "4", "4", "4", "5", "5", "7", "9"} {
		mustExec(t, db, `APPEND INTO readings VALUES ('s1', `+v+`)`)
	}
	row, ok, err := db.Lookup("spread", Str("s1"))
	if err != nil || !ok {
		t.Fatalf("lookup: %v %v", ok, err)
	}
	if row[1].AsFloat() != 5.0 || row[2].AsFloat() != 4.0 || row[3].AsFloat() != 2.0 {
		t.Errorf("spread = %v", row)
	}
}

func TestRetainWindowSQL(t *testing.T) {
	now := int64(0)
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, Clock: func() int64 { return now }})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE CHRONICLE calls (acct STRING, minutes INT) RETAIN ALL WINDOW 100`)
	for _, ch := range []int64{0, 50, 120, 250} {
		now = ch
		mustExec(t, db, `APPEND INTO calls VALUES ('a', 1)`)
	}
	res := mustExec(t, db, `SELECT * FROM calls`)
	if len(res.Rows) != 1 {
		t.Errorf("retained = %v (span 100, newest 250)", res.Rows)
	}
	// The WINDOW clause survives the catalog round trip.
	db.Close()
	db2, err := Open(Options{Dir: dir, Clock: func() int64 { return now }})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	c, ok := db2.Chronicle("calls")
	if !ok || c.RetainSpan() != 100 {
		t.Errorf("RetainSpan after replay = %d", c.RetainSpan())
	}
	expectExecError(t, db2, `CREATE CHRONICLE bad (x INT) WINDOW 0`, "positive")
}

func TestOrderByLimit(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE CHRONICLE calls (acct STRING, minutes INT)`)
	mustExec(t, db, `CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total FROM calls GROUP BY acct`)
	for acct, m := range map[string]int{"alice": 30, "bob": 10, "carol": 50, "dave": 20} {
		mustExec(t, db, fmt.Sprintf(`APPEND INTO calls VALUES ('%s', %d)`, acct, m))
	}
	// Top-2 accounts by minutes: the top-k summary query.
	res := mustExec(t, db, `SELECT * FROM usage ORDER BY total DESC LIMIT 2`)
	if len(res.Rows) != 2 || res.Rows[0][0].AsString() != "carol" || res.Rows[1][0].AsString() != "alice" {
		t.Errorf("top-2 = %v", res.Rows)
	}
	res = mustExec(t, db, `SELECT * FROM usage ORDER BY total ASC LIMIT 1`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "bob" {
		t.Errorf("bottom-1 = %v", res.Rows)
	}
	// ORDER BY composes with WHERE.
	res = mustExec(t, db, `SELECT * FROM usage WHERE total > 15 ORDER BY acct`)
	if len(res.Rows) != 3 || res.Rows[0][0].AsString() != "alice" || res.Rows[2][0].AsString() != "dave" {
		t.Errorf("filtered+ordered = %v", res.Rows)
	}
	expectExecError(t, db, `SELECT * FROM usage ORDER BY nope`, "ORDER BY")
}

func TestShowStatsIncludesLatency(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE CHRONICLE calls (acct STRING, minutes INT)`)
	mustExec(t, db, `CREATE VIEW usage AS SELECT acct, SUM(minutes) AS m FROM calls GROUP BY acct`)
	mustExec(t, db, `APPEND INTO calls VALUES ('a', 1)`)
	res := mustExec(t, db, `SHOW STATS`)
	found := false
	for _, r := range res.Rows {
		if r[0].AsString() == "maintenance_latency" && strings.Contains(r[1].AsString(), "n=1") {
			found = true
		}
	}
	if !found {
		t.Errorf("maintenance_latency missing or empty: %s", dumpResult(res))
	}
}

func TestChronicleQueryOrderBySN(t *testing.T) {
	db, err := Open(Options{DefaultRetention: RetainAll})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE CHRONICLE calls (acct STRING, minutes INT)`)
	for i := 0; i < 5; i++ {
		mustExec(t, db, fmt.Sprintf(`APPEND INTO calls VALUES ('a', %d)`, i))
	}
	// The latest record: detailed query over the retained window.
	res := mustExec(t, db, `SELECT * FROM calls ORDER BY _sn DESC LIMIT 1`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 4 || res.Rows[0][3].AsInt() != 4 {
		t.Errorf("latest record = %v", res.Rows)
	}
}

func TestShowGroups(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, telecomDDL)
	mustExec(t, db, `CREATE CHRONICLE payments (acct STRING, amount FLOAT) IN GROUP telecom`)
	mustExec(t, db, `APPEND INTO calls VALUES ('a', 1, 0.5)`)
	res := mustExec(t, db, `SHOW GROUPS`)
	if len(res.Rows) != 1 {
		t.Fatalf("SHOW GROUPS = %v", res.Rows)
	}
	r := res.Rows[0]
	if r[0].AsString() != "telecom" || r[1].AsInt() != 2 || r[2].AsInt() != 0 {
		t.Errorf("group row = %v", r)
	}
}
