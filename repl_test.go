// End-to-end log-shipping replication tests: a primary serving the
// /repl/* surface over httptest, real followers applying the stream into
// live engines, and clients exercising the typed-503 failover contract.
package chronicledb_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	chronicledb "chronicledb"
	"chronicledb/internal/server"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func openPrimary(t *testing.T, opts chronicledb.Options) (*chronicledb.DB, *httptest.Server) {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	opts.SyncWAL = true
	db, err := chronicledb.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.NewWith(db, server.Config{ReplHeartbeat: 20 * time.Millisecond}))
	return db, ts
}

func openFollower(t *testing.T, primaryURL, dir string, opts chronicledb.Options) *chronicledb.DB {
	t.Helper()
	opts.Dir = dir
	opts.SyncWAL = true
	opts.ReplicaOf = primaryURL
	if opts.FollowerID == "" {
		opts.FollowerID = "f-" + t.Name()
	}
	db, err := chronicledb.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// usageTotal reads the usage view total for acct on db; -1 when absent.
func usageTotal(t *testing.T, db *chronicledb.DB, acct string) int64 {
	t.Helper()
	row, ok, err := db.Lookup("usage", chronicledb.Str(acct))
	if err != nil || !ok {
		return -1
	}
	return row[1].AsInt()
}

// TestReplBasic: a follower converges to the primary's exact state —
// pre-existing rows served from the disk backlog, live rows from the
// fan-out, DDL created both before and after the follower attached — and
// a follower restart resumes from its own recovered LSN frontier.
func TestReplBasic(t *testing.T) {
	db, ts := openPrimary(t, chronicledb.Options{Shards: 2, Feed: true})
	defer ts.Close()
	defer db.Close()
	mustExec(t, db, `CREATE CHRONICLE calls (acct STRING, minutes INT) RETAIN ALL`)
	mustExec(t, db, `CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total FROM calls GROUP BY acct`)
	for i := 0; i < 10; i++ {
		if _, err := db.Append("calls", chronicledb.Tuple{chronicledb.Str("a"), chronicledb.Int(1)}); err != nil {
			t.Fatal(err)
		}
	}

	fdir := t.TempDir()
	f := openFollower(t, ts.URL, fdir, chronicledb.Options{Shards: 2, Feed: true})
	defer f.Close()
	if got := f.Role(); got != "replica" {
		t.Fatalf("follower role = %q", got)
	}
	waitUntil(t, 10*time.Second, "backlog catch-up", func() bool {
		return usageTotal(t, f, "a") == 10
	})

	// Writes on a replica are refused with the typed sentinel.
	if _, err := f.Append("calls", chronicledb.Tuple{chronicledb.Str("a"), chronicledb.Int(1)}); !errors.Is(err, chronicledb.ErrNotPrimary) {
		t.Fatalf("replica append err = %v, want ErrNotPrimary", err)
	}
	if _, err := f.Exec(`CREATE CHRONICLE nope (x INT)`); !errors.Is(err, chronicledb.ErrNotPrimary) {
		t.Fatalf("replica ddl err = %v, want ErrNotPrimary", err)
	}

	// Live DDL + appends replicate in order.
	mustExec(t, db, `CREATE VIEW peak AS SELECT acct, MAX(minutes) AS peak FROM calls GROUP BY acct`)
	for i := 0; i < 5; i++ {
		if _, err := db.Append("calls", chronicledb.Tuple{chronicledb.Str("b"), chronicledb.Int(int64(i + 1))}); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, 10*time.Second, "live convergence", func() bool {
		if usageTotal(t, f, "b") != 15 {
			return false
		}
		row, ok, err := f.Lookup("peak", chronicledb.Str("b"))
		return err == nil && ok && row[1].AsInt() == 5
	})
	st, ok := f.ReplState()
	if !ok || st.AppliedLSN == 0 {
		t.Fatalf("repl state: %+v ok=%v", st, ok)
	}

	// Restart the follower: it recovers its own WAL, then resumes the
	// stream from the recovered frontier and picks up what it missed.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := db.Append("calls", chronicledb.Tuple{chronicledb.Str("c"), chronicledb.Int(2)}); err != nil {
			t.Fatal(err)
		}
	}
	f2 := openFollower(t, ts.URL, fdir, chronicledb.Options{Shards: 2, Feed: true})
	defer f2.Close()
	waitUntil(t, 10*time.Second, "post-restart catch-up", func() bool {
		return usageTotal(t, f2, "a") == 10 && usageTotal(t, f2, "c") == 10
	})
}

// TestReplSnapshotBootstrap: a follower whose start LSN was compacted
// below the primary's checkpoint chain bootstraps from the full snapshot
// image (410 Gone → /repl/snapshot) — and the follower's changefeed is
// rebased at the restored frontier, so db.Watch serves a snapshot at the
// restore LSN followed by gapless live deltas (the feed-rebase
// regression).
func TestReplSnapshotBootstrap(t *testing.T) {
	db, ts := openPrimary(t, chronicledb.Options{Shards: 2, Feed: true})
	defer ts.Close()
	defer db.Close()
	mustExec(t, db, `CREATE CHRONICLE calls (acct STRING, minutes INT) RETAIN ALL`)
	mustExec(t, db, `CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total FROM calls GROUP BY acct`)
	for i := 0; i < 20; i++ {
		if _, err := db.Append("calls", chronicledb.Tuple{chronicledb.Str("a"), chronicledb.Int(1)}); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint + compaction: LSN 0 is now below the chain, so a fresh
	// follower cannot be served from the segment set.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	f := openFollower(t, ts.URL, t.TempDir(), chronicledb.Options{Shards: 2, Feed: true})
	defer f.Close()
	// The view converges inside the resync callback, before the replica
	// loop stamps its counters — wait for the resync count too.
	waitUntil(t, 10*time.Second, "snapshot bootstrap", func() bool {
		st, ok := f.ReplState()
		return ok && st.Resyncs > 0 && usageTotal(t, f, "a") == 20
	})

	// Watch on the follower: the subscription predates any replicated
	// frame it will observe, so the stream must open with a snapshot at
	// the rebased frontier and then deliver live replicated deltas with
	// strictly increasing LSNs.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	events := make(chan chronicledb.WatchEvent, 64)
	done := make(chan error, 1)
	go func() {
		done <- f.Watch(ctx, "usage", 0, false, func(ev chronicledb.WatchEvent) bool {
			select {
			case events <- ev:
			case <-ctx.Done():
				return false
			}
			return true
		})
	}()
	var snapLSN uint64
	select {
	case ev := <-events:
		if ev.Kind != chronicledb.WatchSnapshot {
			t.Fatalf("first watch event = %v, want snapshot", ev.Kind)
		}
		if ev.LSN == 0 {
			t.Fatal("snapshot at LSN 0: feed was not rebased at the restored frontier")
		}
		snapLSN = ev.LSN
	case <-ctx.Done():
		t.Fatal("no snapshot event")
	}
	if _, err := db.Append("calls", chronicledb.Tuple{chronicledb.Str("a"), chronicledb.Int(1)}); err != nil {
		t.Fatal(err)
	}
	for {
		select {
		case ev := <-events:
			if ev.Kind != chronicledb.WatchDelta {
				continue
			}
			if ev.LSN <= snapLSN {
				t.Fatalf("delta LSN %d not past snapshot LSN %d", ev.LSN, snapLSN)
			}
			cancel()
			<-done
			return
		case <-ctx.Done():
			t.Fatal("no replicated delta reached the follower watch")
		}
	}
}

// TestReplSyncAck: in sync ack mode an append ack waits for a follower
// acknowledgement; with no follower attached it degrades (counter moves)
// instead of blocking the write path.
func TestReplSyncAck(t *testing.T) {
	db, ts := openPrimary(t, chronicledb.Options{
		Shards: 2, AckMode: "sync", SyncAckTimeout: 2 * time.Second,
	})
	defer ts.Close()
	defer db.Close()
	mustExec(t, db, `CREATE CHRONICLE calls (acct STRING, minutes INT) RETAIN ALL`)

	// No follower: the write still acks, degraded.
	if _, err := db.Append("calls", chronicledb.Tuple{chronicledb.Str("a"), chronicledb.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if db.DegradedAcks() == 0 {
		t.Fatal("no-follower sync append did not degrade")
	}

	f := openFollower(t, ts.URL, t.TempDir(), chronicledb.Options{Shards: 2})
	defer f.Close()
	waitUntil(t, 10*time.Second, "follower attach", func() bool {
		return len(db.ReplSource().Followers()) == 1
	})
	waitUntil(t, 10*time.Second, "follower caught up", func() bool {
		return usageRows(t, f) == 1
	})
	base := db.DegradedAcks()
	for i := 0; i < 5; i++ {
		if _, err := db.Append("calls", chronicledb.Tuple{chronicledb.Str("a"), chronicledb.Int(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.DegradedAcks(); got != base {
		t.Fatalf("degraded acks moved %d -> %d with a live follower", base, got)
	}
	// The acked writes are on the follower by construction.
	if n := usageRows(t, f); n != 6 {
		t.Fatalf("follower rows = %d, want 6 (sync ack returned before apply)", n)
	}
}

// usageRows counts the calls chronicle's rows on db.
func usageRows(t *testing.T, db *chronicledb.DB) int {
	t.Helper()
	res, err := db.Exec(`SELECT * FROM calls`)
	if err != nil {
		return -1
	}
	return len(res.Rows)
}

// TestReplStaleReads: a follower past its staleness bound answers reads
// and watches with the typed stale-replica 503, and a multi-endpoint
// client rotates to a healthy member while a single-endpoint client gets
// the sentinel without burning retries.
func TestReplStaleReads(t *testing.T) {
	// Healthy primary for the rotation target.
	db, ts := openPrimary(t, chronicledb.Options{Shards: 2})
	defer ts.Close()
	defer db.Close()
	mustExec(t, db, `CREATE CHRONICLE calls (acct STRING, minutes INT) RETAIN ALL`)

	// Follower of an unreachable primary with a tiny staleness bound: it
	// can never observe itself caught up, so it goes stale almost at once.
	f := openFollower(t, "http://127.0.0.1:9", t.TempDir(), chronicledb.Options{
		Shards: 2, MaxStaleness: 30 * time.Millisecond,
	})
	defer f.Close()
	tsf := httptest.NewServer(server.NewWith(f, server.Config{}))
	defer tsf.Close()
	waitUntil(t, 5*time.Second, "follower staleness", f.Stale)

	// Single endpoint: the typed sentinel, one attempt, no blind retries.
	c1 := server.NewClientWith(tsf.URL, server.ClientConfig{MaxAttempts: 4, BaseBackoff: time.Millisecond})
	if _, err := c1.Exec(`SELECT * FROM calls`); !errors.Is(err, server.ErrStaleReplica) {
		t.Fatalf("stale read err = %v, want ErrStaleReplica", err)
	}

	// /healthz advertises the staleness with figures.
	hr, err := http.Get(tsf.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(hr.Body).Decode(&health)
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable || health["status"] != "stale" {
		t.Fatalf("healthz = %d %v, want 503 stale", hr.StatusCode, health)
	}

	// Two endpoints: the stale 503 rotates to the healthy primary.
	c2 := server.NewClientWith(tsf.URL, server.ClientConfig{
		Endpoints: []string{ts.URL}, MaxAttempts: 4, BaseBackoff: time.Millisecond,
	})
	if _, err := c2.Exec(`SELECT * FROM calls`); err != nil {
		t.Fatalf("rotation failed: %v", err)
	}
}

// TestRetryable503Codes pins the client-side contract for each 503
// flavor: read-only is permanent (no blind retry, no rotation),
// stale-replica and not-primary rotate to the next endpoint.
func TestRetryable503Codes(t *testing.T) {
	serve503 := func(code string, hits *atomic.Int64) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, `{"error":"synthetic","code":%q}`, code)
		}))
	}
	okBody := `{"columns":["n"],"rows":[[1]]}`
	var okHits atomic.Int64
	tsOK := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		okHits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, okBody)
	}))
	defer tsOK.Close()

	t.Run("read-only-permanent", func(t *testing.T) {
		var hits atomic.Int64
		ts := serve503("read-only", &hits)
		defer ts.Close()
		before := okHits.Load()
		c := server.NewClientWith(ts.URL, server.ClientConfig{
			Endpoints: []string{tsOK.URL}, MaxAttempts: 5, BaseBackoff: time.Millisecond,
		})
		if _, err := c.Exec(`SELECT 1`); !errors.Is(err, server.ErrReadOnly) {
			t.Fatalf("err = %v, want ErrReadOnly", err)
		}
		if hits.Load() != 1 || okHits.Load() != before {
			t.Fatalf("read-only 503 retried: degraded=%d healthy=%d", hits.Load(), okHits.Load()-before)
		}
	})
	for _, code := range []string{"stale-replica", "not-primary"} {
		t.Run(code+"-rotates", func(t *testing.T) {
			var hits atomic.Int64
			ts := serve503(code, &hits)
			defer ts.Close()
			c := server.NewClientWith(ts.URL, server.ClientConfig{
				Endpoints: []string{tsOK.URL}, MaxAttempts: 5, BaseBackoff: time.Millisecond,
			})
			resp, err := c.Exec(`SELECT 1`)
			if err != nil || len(resp.Rows) != 1 {
				t.Fatalf("rotation: resp=%+v err=%v", resp, err)
			}
			if hits.Load() != 1 {
				t.Fatalf("wrong-member endpoint hit %d times", hits.Load())
			}
		})
	}
}

// TestReplPromoteFailover: explicit failover. A sync-acked write is on
// the follower before its ack returns; after the primary dies and the
// follower is promoted via POST /promote, a client retrying the same
// idempotent request against the rotated endpoint receives the original
// ack out of the replicated dedup table — not a double apply.
func TestReplPromoteFailover(t *testing.T) {
	db, ts := openPrimary(t, chronicledb.Options{
		Shards: 2, AckMode: "sync", SyncAckTimeout: 10 * time.Second,
	})
	defer ts.Close()
	defer db.Close()
	mustExec(t, db, `CREATE CHRONICLE calls (acct STRING, minutes INT) RETAIN ALL`)
	mustExec(t, db, `CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total FROM calls GROUP BY acct`)

	f := openFollower(t, ts.URL, t.TempDir(), chronicledb.Options{Shards: 2, FollowerID: "standby"})
	defer f.Close()
	tsf := httptest.NewServer(server.NewWith(f, server.Config{}))
	defer tsf.Close()
	waitUntil(t, 10*time.Second, "follower attach", func() bool {
		return len(db.ReplSource().Followers()) == 1
	})

	c := server.NewClientWith(ts.URL, server.ClientConfig{
		ClientID:  "failover",
		Endpoints: []string{tsf.URL},
		Timeout:   2 * time.Second, MaxAttempts: 3, BaseBackoff: time.Millisecond,
	})
	ack1, err := c.AppendRowsIdem("calls", [][]any{{"a", 7}}, "r1")
	if err != nil || ack1.Deduped {
		t.Fatalf("first append: %+v err=%v", ack1, err)
	}

	// The primary dies; the follower is promoted over HTTP.
	ts.CloseClientConnections()
	ts.Close()
	pr, err := http.Post(tsf.URL+"/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var promoted server.PromoteResponse
	json.NewDecoder(pr.Body).Decode(&promoted)
	pr.Body.Close()
	if pr.StatusCode != http.StatusOK || promoted.Role != "primary" {
		t.Fatalf("promote = %d %+v", pr.StatusCode, promoted)
	}
	if f.Role() != "primary" {
		t.Fatalf("promoted role = %q", f.Role())
	}

	// Ambiguous retry of the acked request: the rotation lands it on the
	// promoted follower, whose replicated dedup table returns the original
	// SN range.
	var ack2 *server.AppendResponse
	deadline := time.Now().Add(20 * time.Second)
	for {
		ack2, err = c.AppendRowsIdem("calls", [][]any{{"a", 7}}, "r1")
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retry never succeeded: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !ack2.Deduped || ack2.FirstSN != ack1.FirstSN || ack2.LastSN != ack1.LastSN {
		t.Fatalf("failover retry = %+v, want deduped echo of %+v", ack2, ack1)
	}
	// Fresh writes append normally on the new primary.
	ack3, err := c.AppendRowsIdem("calls", [][]any{{"a", 3}}, "r2")
	if err != nil || ack3.Deduped {
		t.Fatalf("post-failover append: %+v err=%v", ack3, err)
	}
	if got := usageTotal(t, f, "a"); got != 10 {
		t.Fatalf("promoted usage total = %d, want 10", got)
	}
}

func mustExec(t *testing.T, db *chronicledb.DB, stmt string) {
	t.Helper()
	if _, err := db.Exec(stmt); err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
}
