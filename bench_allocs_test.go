// End-to-end append benchmarks with allocation reporting — the measured
// side of the E16 experiment. `make bench-allocs` runs these with
// -benchmem so the allocs/op column is tracked alongside the AllocsPerRun
// guards.
package chronicledb_test

import (
	"fmt"
	"testing"

	chronicledb "chronicledb"
	"chronicledb/internal/bench"
)

// BenchmarkAppendHotPath measures the full engine append path. The mem
// cases run the in-memory kernel (one maintained SUM view) at batch sizes
// 1 and 64; the durable cases run against a real directory with SyncWAL,
// comparing group commit (default) with fsync-per-append.
func BenchmarkAppendHotPath(b *testing.B) {
	for _, batch := range []int{1, 64} {
		b.Run(fmt.Sprintf("mem/batch=%d", batch), func(b *testing.B) {
			db, err := chronicledb.Open(chronicledb.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT);
				CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total FROM calls GROUP BY acct`); err != nil {
				b.Fatal(err)
			}
			tuples := make([]chronicledb.Tuple, batch)
			for i := range tuples {
				tuples[i] = chronicledb.Tuple{chronicledb.Str(bench.Acct(i % 64)), chronicledb.Int(3)}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; done += batch {
				if _, _, err := db.AppendRows("calls", tuples); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, mode := range []struct {
		name      string
		perAppend bool
	}{{"durable/group-commit", false}, {"durable/fsync-each", true}} {
		b.Run(mode.name, func(b *testing.B) {
			db, err := chronicledb.Open(chronicledb.Options{
				Dir:           b.TempDir(),
				SyncWAL:       true,
				SyncPerAppend: mode.perAppend,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT);
				CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total FROM calls GROUP BY acct`); err != nil {
				b.Fatal(err)
			}
			tuple := chronicledb.Tuple{chronicledb.Str(bench.Acct(7)), chronicledb.Int(3)}
			b.ReportAllocs()
			b.SetParallelism(4) // concurrent appenders even on one core: the commit door needs queued callers to coalesce
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := db.Append("calls", tuple); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
