// Replication failover under network torture: the E18 harness pointed at
// a replicated pair. Concurrent retrying clients push idempotent appends
// through a chaos TCP proxy and a fault-injecting transport at a
// sync-ack primary; mid-run the primary's disk power-cuts and its server
// dies, the follower is promoted, and the proxy is repointed at it.
// Exactly-once must hold across the failover: sync ack means every acked
// write was already applied (and dedup-recorded) on the follower before
// its ack returned, so the acked SN ranges tile [0, K·M·R) on the
// promoted database with zero lost and zero duplicated acks.
package chronicledb_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	chronicledb "chronicledb"
	"chronicledb/internal/fault"
	"chronicledb/internal/server"
)

func TestReplChaosFailover(t *testing.T) {
	diskA := fault.NewDisk()
	db, err := chronicledb.Open(chronicledb.Options{
		Dir: "/data", SyncWAL: true, FS: diskA, Shards: 4,
		AckMode: "sync", SyncAckTimeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT) RETAIN ALL`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total FROM calls GROUP BY acct`); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.NewWith(db, server.Config{ReplHeartbeat: 20 * time.Millisecond}))

	// The standby replicates over a clean direct connection (chaos torments
	// the client path, not the replication link) and already runs its own
	// server — promotion just opens its write gate.
	diskB := fault.NewDisk()
	db2, err := chronicledb.Open(chronicledb.Options{
		Dir: "/data", SyncWAL: true, FS: diskB, Shards: 4,
		ReplicaOf: ts.URL, FollowerID: "standby",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	ts2 := httptest.NewServer(server.NewWith(db2, server.Config{}))
	defer ts2.Close()
	waitUntil(t, 10*time.Second, "standby attach", func() bool {
		return len(db.ReplSource().Followers()) == 1
	})

	chaos := fault.NewNetChaos(42)
	chaos.DropRequest = 0.05
	chaos.DropResponse = 0.10 // the ambiguous failure: applied, ack lost
	chaos.Duplicate = 0.05
	chaos.DropConn = 0.08
	chaos.ResetProb = 0.08
	chaos.ResetAfter = 32

	proxy, err := fault.NewProxy(strings.TrimPrefix(ts.URL, "http://"), chaos)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Failover: once a third of the requests are acked, power-cut the
	// primary's disk, kill its server, promote the standby over HTTP, and
	// repoint the proxy. Clients never change the address they dial.
	var acked atomic.Int64
	failoverDone := make(chan struct{})
	go func() {
		defer close(failoverDone)
		for acked.Load() < chaosClients*chaosRequests/3 {
			time.Sleep(time.Millisecond)
		}
		// Power-cut the disk first: from here no write on the old primary
		// can commit, so promoting the standby cannot lose an ack. Then
		// promote (which also tears down the standby's stream connection),
		// repoint the proxy, and only then kill the old server — its
		// remaining handlers fail fast on the dead disk, and the sync-ack
		// waiters wake as the standby detaches.
		diskA.PowerCut()
		resp, err := http.Post(ts2.URL+"/promote", "application/json", nil)
		if err != nil {
			t.Errorf("promote: %v", err)
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || db2.Role() != "primary" {
			t.Errorf("promote: status %d role %q", resp.StatusCode, db2.Role())
			return
		}
		proxy.SetTarget(strings.TrimPrefix(ts2.URL, "http://"))
		ts.CloseClientConnections()
		ts.Close()
		db.Close()
	}()

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		acks    []ackRange
		deduped int64
		failed  []string
	)
	for k := 0; k < chaosClients; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c := server.NewClientWith("http://"+proxy.Addr(), server.ClientConfig{
				ClientID:         fmt.Sprintf("chaos-%d", k),
				Timeout:          2 * time.Second,
				MaxAttempts:      5,
				BaseBackoff:      2 * time.Millisecond,
				MaxBackoff:       20 * time.Millisecond,
				RetryBudget:      5 * time.Second,
				BreakerThreshold: 20,
				BreakerCooldown:  20 * time.Millisecond,
				// Fresh TCP connection per request so connection-level
				// faults roll per request, not per pooled connection.
				Transport: &fault.ChaosTransport{
					Chaos: chaos,
					Base:  &http.Transport{DisableKeepAlives: true},
				},
			})
			rows := make([][]any, chaosRows)
			for i := range rows {
				rows[i] = []any{fmt.Sprintf("chaos-%d", k), 1}
			}
			for m := 0; m < chaosRequests; m++ {
				rid := fmt.Sprintf("m%d", m)
				deadline := time.Now().Add(60 * time.Second)
				for {
					// The reused request id makes every delivery of this
					// request — client retries, network duplicates,
					// post-failover resends against the promoted standby's
					// replicated dedup table — apply at most once.
					resp, err := c.AppendRowsIdem("calls", rows, rid)
					if err == nil {
						mu.Lock()
						acks = append(acks, ackRange{resp.FirstSN, resp.LastSN})
						if resp.Deduped {
							deduped++
						}
						mu.Unlock()
						acked.Add(1)
						break
					}
					if time.Now().After(deadline) {
						mu.Lock()
						failed = append(failed, fmt.Sprintf("client %d req %s: %v", k, rid, err))
						mu.Unlock()
						return
					}
					// ErrNotPrimary in the promote window, breaker
					// cooldowns, shed 429s, torn connections: wait, retry.
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(k)
	}
	wg.Wait()
	<-failoverDone

	if len(failed) > 0 {
		t.Fatalf("requests never acked: %v", failed)
	}
	counts := chaos.Counts()
	t.Logf("chaos: %+v, harness acks deduped=%d", counts, deduped)
	if counts.DroppedResponses == 0 && counts.Duplicates == 0 {
		t.Fatal("chaos injected no ambiguous faults; raise probabilities")
	}

	// Exactly-once, client view: the K·M acked SN ranges are disjoint and
	// tile [0, K·M·R) — no lost acks (an acked write missing from the
	// promoted database would leave a hole) and no duplicated acks (a
	// double apply would overlap).
	const want = chaosClients * chaosRequests * chaosRows
	if len(acks) != chaosClients*chaosRequests {
		t.Fatalf("acks = %d, want %d", len(acks), chaosClients*chaosRequests)
	}
	sort.Slice(acks, func(i, j int) bool { return acks[i].first < acks[j].first })
	var next int64
	for _, a := range acks {
		if a.first != next || a.last != a.first+chaosRows-1 {
			t.Fatalf("SN ranges do not tile: got [%d,%d] at offset %d", a.first, a.last, next)
		}
		next = a.last + 1
	}
	if next != want {
		t.Fatalf("SN coverage = %d, want %d", next, want)
	}

	// Exactly-once, durable view: the promoted database agrees.
	res, err := db2.Exec(`SELECT * FROM calls`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != want {
		t.Fatalf("promoted rows = %d, want %d", len(res.Rows), want)
	}
	for k := 0; k < chaosClients; k++ {
		row, ok, err := db2.Lookup("usage", chronicledb.Str(fmt.Sprintf("chaos-%d", k)))
		if err != nil || !ok || row[1].AsInt() != chaosRequests*chaosRows {
			t.Errorf("usage(chaos-%d) = %v %v %v, want %d", k, row, ok, err, chaosRequests*chaosRows)
		}
	}
}
