package chronicledb

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"chronicledb/internal/chronicle"
	"chronicledb/internal/dedup"
	"chronicledb/internal/engine"
	"chronicledb/internal/sqlparse"
	"chronicledb/internal/value"
	"chronicledb/internal/view"
	"chronicledb/internal/wal"
)

// Durability layout under Options.Dir (segmented, the default):
//
//	catalog.sql          — every DDL statement, in order (schema is replayed
//	                       through the normal planner at recovery)
//	wal.manifest         — version-2 manifest: the live WAL segments of every
//	                       stream plus the checkpoint chain; the single source
//	                       of truth for which files recovery reads
//	<stream>-NNNNNNNN.wal — size-capped WAL segments; appends rotate to a
//	                       fresh segment at the cap
//	checkpoint-NNNNNNNN.bin — checkpoint chain: a full image followed by
//	                       incremental images holding only objects dirtied
//	                       since the previous cut
//
// The legacy layout (Options.WALSegmentBytes < 0) keeps one
// grow-until-checkpoint WAL per shard (chronicle.wal unsharded, a v1
// manifest's shard segments sharded) and full checkpoints in the
// fixed-name checkpoint.bin, truncating the logs after each one.
//
// Recovery order: catalog → checkpoint (chain) → WAL tail. Checkpoint and
// manifest files are only ever replaced atomically (write-temp, fsync,
// rename, dirsync), so a crash mid-flip leaves the previous complete
// image. In the segmented layout the logs are never truncated; instead
// replay skips records at or below the chain's tip LSN, and the compactor
// deletes segments wholly below it — recovery work and disk stay
// proportional to the write rate since the last checkpoint (E12, E20).

const ckptMagic = "CDBC"

// recover rebuilds in-memory state from disk. Called by Open before the
// WAL is reopened for appending. It replays every WAL segment present —
// the legacy single log and/or the manifest's shard segments — merged into
// global LSN order, so the layout on disk need not match the kernel being
// opened (shard counts may change across restarts).
func (db *DB) recover(m wal.Manifest, hadManifest bool) error {
	// 1. Catalog: replay DDL. A power cut can tear the final statement
	// mid-write; every *acked* statement was fully written and fsynced, so
	// trimming to the last statement terminator drops only unacked bytes.
	// A catalog with no terminator at all is corruption, not a torn tail
	// (the file's dir entry only becomes durable after the first acked
	// statement), and still fails the parse below.
	if src, err := db.fs.ReadFile(db.catalogPath); err == nil && len(src) > 0 {
		text := string(src)
		if i := strings.LastIndex(text, ";"); i >= 0 {
			text = text[:i+1]
		}
		stmts, err := sqlparse.Parse(text)
		if err != nil {
			return fmt.Errorf("chronicledb: corrupt catalog: %w", err)
		}
		if len(text) < len(src) {
			// Repair the torn tail now: the file is opened in append
			// mode for future DDL, which must land after the last valid
			// statement, not after the garbage.
			if err := wal.WriteFileAtomicFS(db.fs, db.catalogPath, []byte(text)); err != nil {
				return fmt.Errorf("chronicledb: repairing torn catalog: %w", err)
			}
		}
		for _, s := range stmts {
			if _, err := db.execOne(s, execRecovery); err != nil {
				return fmt.Errorf("chronicledb: replaying catalog: %w", err)
			}
		}
	} else if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("chronicledb: catalog: %w", err)
	}

	// 2. Checkpoint. A version-2 manifest carries a checkpoint chain: a
	// full image plus incremental images holding only the objects dirtied
	// since the previous cut. The chain restores in ascending sequence
	// order — each file *replaces* the state of the objects it contains —
	// and the tip's LSN is the replay skip threshold. The manifest
	// invariant (files are fsynced before the flip that references them,
	// deleted only after the flip that drops them) makes a referenced-but-
	// missing chain file genuine corruption, not a crash artifact.
	// Otherwise the legacy fixed-name checkpoint.bin holds one full image.
	var ckptLSN uint64
	restored := false
	if hadManifest && m.Version == 2 {
		refs := append([]wal.CheckpointRef(nil), m.Checkpoints...)
		sort.Slice(refs, func(i, j int) bool { return refs[i].Seq < refs[j].Seq })
		for _, c := range refs {
			data, err := db.fs.ReadFile(filepath.Join(db.opts.Dir, c.Name))
			if err != nil {
				return fmt.Errorf("chronicledb: checkpoint chain %s: %w", c.Name, err)
			}
			lsn, err := db.restoreCheckpoint(data, c.Name)
			if err != nil {
				return fmt.Errorf("chronicledb: checkpoint chain %s: %w", c.Name, err)
			}
			ckptLSN = lsn
			restored = true
		}
	} else {
		ckptPath := filepath.Join(db.opts.Dir, "checkpoint.bin")
		if data, err := db.fs.ReadFile(ckptPath); err == nil {
			lsn, err := db.restoreCheckpoint(data, "checkpoint.bin")
			if err != nil {
				return err
			}
			ckptLSN = lsn
			restored = true
		} else if !os.IsNotExist(err) {
			return fmt.Errorf("chronicledb: checkpoint: %w", err)
		}
	}
	if restored {
		// Every restored view reflects exactly the mutations at or below
		// the checkpoint LSN; stamp that cursor so changefeed snapshot
		// splices anchor correctly, and raise the feed horizon — deltas
		// inside the checkpoint are not individually replayable.
		for _, name := range db.eng.ViewNames() {
			if v, ok := db.eng.View(name); ok {
				v.SetAppliedLSN(ckptLSN)
			}
		}
		if db.hub != nil {
			db.hub.SetBase(ckptLSN)
		}
	}

	// 3. WAL tail: every segment on disk, merged by global LSN so
	// relation updates interleave with appends exactly as they did live
	// (§2.3 proactive ordering). Records at or below the checkpoint LSN
	// are already inside the checkpoint — a crash between the checkpoint
	// replace and the WAL truncation leaves them in the log, and applying
	// them twice would double-count appends and resurrect stale relation
	// versions. Skipping them also keeps the LSN allocator aligned: replay
	// re-assigns LSNs starting from the checkpoint LSN, so each surviving
	// record re-acquires exactly the LSN it carried live.
	var segments []string
	if hadManifest && m.Version == 2 {
		// Rotated layout: replay every live segment the manifest lists, in
		// (stream, seq) order so the stable LSN sort keeps intra-stream
		// file order for any legacy zero-LSN records.
		live := append([]wal.Segment(nil), m.Live...)
		sort.Slice(live, func(i, j int) bool {
			if live[i].Stream != live[j].Stream {
				return live[i].Stream < live[j].Stream
			}
			return live[i].Seq < live[j].Seq
		})
		for _, s := range live {
			segments = append(segments, s.Name)
		}
	} else {
		segments = []string{"chronicle.wal"}
		if hadManifest {
			segments = append(segments, m.Segments...)
		}
	}
	_, err := wal.ReplayMergedFS(db.fs, db.opts.Dir, segments, func(r wal.Record) error {
		if r.LSN != 0 && r.LSN <= ckptLSN {
			return nil
		}
		switch r.Kind {
		case wal.RecDDL:
			s, err := sqlparse.ParseOne(r.Stmt)
			if err != nil {
				return err
			}
			_, err = db.execOne(s, execRecovery)
			return err
		case wal.RecAppend:
			parts := make([]engine.MutationPart, len(r.Parts))
			for i, p := range r.Parts {
				parts[i] = engine.MutationPart{Chronicle: p.Chronicle, Tuples: p.Tuples}
			}
			_, err := db.eng.AppendBatchAt(parts, r.SN, r.Chronon)
			return err
		case wal.RecAppendEach:
			// An idempotent bulk run: re-apply the tuples with their original
			// consecutive SNs and re-insert the dedup entry, so a client
			// retry after this recovery still gets the original ack.
			if len(r.Parts) != 1 {
				return fmt.Errorf("idempotent append record with %d parts", len(r.Parts))
			}
			p := r.Parts[0]
			return db.eng.AppendEachAt(p.Chronicle, r.SN, r.Chronon, p.Tuples, r.ClientID, r.RequestID)
		case wal.RecUpsert:
			return db.eng.Upsert(r.Relation, r.Tuple)
		case wal.RecDelete:
			_, err := db.eng.DeleteKey(r.Relation, r.Tuple)
			return err
		default:
			return fmt.Errorf("unknown WAL record kind %d", r.Kind)
		}
	})
	if err != nil {
		return fmt.Errorf("chronicledb: WAL replay: %w", err)
	}
	return nil
}

// Checkpoint atomically persists the database state. In the segmented
// layout it appends a (usually incremental) image to the checkpoint chain
// and flips the manifest; the logs are never truncated — replay skips
// records at or below the chain tip, and the compactor reclaims segments
// wholly below it. In the legacy layout it writes one full image to
// checkpoint.bin and truncates the logs. Either way the snapshot is cut
// with mutations quiesced — under the router's epoch barrier when sharded,
// under the engine's mutation lock otherwise — so the image is exactly the
// state at its header LSN. It is a no-op (with an error) for in-memory
// databases.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.opts.Dir == "" {
		return fmt.Errorf("chronicledb: checkpoint requires a durable database (Options.Dir)")
	}
	if err := db.writeGate(); err != nil {
		return err
	}
	write := func() error {
		if db.segmented() {
			return db.writeSegmentedCheckpoint()
		}
		data, _, _, _, _, err := db.buildCheckpointImage(2, true)
		if err != nil {
			return fmt.Errorf("chronicledb: checkpoint: %w", err)
		}
		final := filepath.Join(db.opts.Dir, "checkpoint.bin")
		if err := wal.WriteFileAtomicFS(db.fs, final, data); err != nil {
			return fmt.Errorf("chronicledb: checkpoint: %w", err)
		}
		for _, l := range db.logs {
			if err := l.Reset(); err != nil {
				return fmt.Errorf("chronicledb: truncating WAL after checkpoint: %w", err)
			}
		}
		return nil
	}
	if db.router != nil {
		return db.router.Barrier(write)
	}
	if db.uno != nil {
		// Quiesce the engine for an exact cut. buildCheckpointImage only
		// uses lock-free accessors (published catalog, atomic LSN,
		// per-object locks), as Quiesce requires.
		return db.uno.Quiesce(write)
	}
	return write()
}

// blockCommit carries one paged view's pending block refs out of
// buildCheckpointImage: once the image's chain file is durable and the
// manifest flip has made it authoritative, the storage layer calls
// CommitBlockRefs so the blocks' durable locations (and clean marks) point
// at the new file. base is the view's blocked image offset within the
// checkpoint image (== within the chain file, which holds the image at
// offset 0). dirty/total are the block counts at the cut, for stats.
type blockCommit struct {
	v     *view.View
	base  int64
	pend  []view.PendingBlock
	dirty int
	total int
}

// buildCheckpointImage serializes database state into db.ckptBuf, which it
// reuses across checkpoints (callers hold db.mu, and the image is fully
// consumed — written to disk — before the next checkpoint starts).
//
// version 2 is the legacy format: always a full image. version 3 prefixes
// a flags byte (bit 0 = full) and supports incremental images: when full
// is false, chronicles, relations, views, and periodic views are included
// only if their dirty marker moved since db.ckptMarks was captured (an
// absent marker means dirty, which covers objects created since the last
// cut). Groups (8 bytes each) and the dedup table (bounded by capacity)
// are always included. The returned marks are the markers observed at this
// cut; the caller installs them as db.ckptMarks only once the image is
// durably referenced. dirty counts the objects an incremental image
// includes, so an unchanged database can skip the chain entry entirely.
//
// version 4 keeps v3's framing and changes only the view payloads: each is
// prefixed by a subformat byte — 0 for a v1 whole image (unpaged views), 1
// for a self-contained blocked image (full cuts inline every block so the
// chain can fold), 2 for a blocked delta (incremental cuts carry only the
// dirty block runs; restore merges them into the index from earlier chain
// images, so incremental cost is flat in view cardinality). The returned
// commits must be applied after the manifest flip that makes the image
// authoritative.
//
// The markers are monotonic mutation counters, recomputed from the objects
// themselves: chronicle Total+Dropped (either moves on any append or
// retention drop), relation Updates, view Applies, periodic-view Applies.
// DDL (drop, or drop-and-recreate, which could leave a fresh object behind
// an unchanged marker) is handled by the caller forcing a full image via
// db.ddlDirty instead.
func (db *DB) buildCheckpointImage(version byte, full bool) (data []byte, lsn uint64, marks map[string]uint64, dirty int, commits []blockCommit, err error) {
	old := db.ckptMarks
	marks = make(map[string]uint64)
	include := func(key string, cur uint64) bool {
		marks[key] = cur
		if full {
			return true
		}
		prev, ok := old[key]
		if !ok || prev != cur {
			dirty++
			return true
		}
		return false
	}

	lsn = db.eng.LSN()
	b := db.ckptBuf[:0]
	b = append(b, ckptMagic...)
	b = append(b, version)
	if version >= 3 {
		var flags byte
		if full {
			flags = 1
		}
		b = append(b, flags)
	}
	b = binary.LittleEndian.AppendUint64(b, lsn)

	groups := db.eng.GroupNames()
	b = binary.AppendUvarint(b, uint64(len(groups)))
	for _, name := range groups {
		g, _ := db.eng.Group(name)
		b = appendName(b, name)
		b = binary.LittleEndian.AppendUint64(b, uint64(g.LastSN()))
	}

	var incl []string
	chrons := db.eng.ChronicleNames()
	for _, name := range chrons {
		c, _ := db.eng.Chronicle(name)
		if include("c:"+name, uint64(c.Total()+c.Dropped())) {
			incl = append(incl, name)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(incl)))
	for _, name := range incl {
		c, _ := db.eng.Chronicle(name)
		b = appendName(b, name)
		b = binary.LittleEndian.AppendUint64(b, uint64(c.Dropped()))
		rows := c.Rows()
		b = binary.AppendUvarint(b, uint64(len(rows)))
		for _, r := range rows {
			b = binary.LittleEndian.AppendUint64(b, uint64(r.SN))
			b = binary.LittleEndian.AppendUint64(b, uint64(r.Chronon))
			b = binary.LittleEndian.AppendUint64(b, r.LSN)
			b = value.AppendTuple(b, r.Vals)
		}
	}

	incl = incl[:0]
	rels := db.eng.RelationNames()
	for _, name := range rels {
		r, _ := db.eng.Relation(name)
		if include("r:"+name, uint64(r.Updates())) {
			incl = append(incl, name)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(incl)))
	for _, name := range incl {
		r, _ := db.eng.Relation(name)
		b = appendName(b, name)
		var tuples []value.Tuple
		r.Scan(func(t value.Tuple) bool {
			tuples = append(tuples, t)
			return true
		})
		b = binary.AppendUvarint(b, uint64(len(tuples)))
		for _, t := range tuples {
			b = value.AppendTuple(b, t)
		}
	}

	incl = incl[:0]
	views := db.eng.ViewNames()
	for _, name := range views {
		v, _ := db.eng.View(name)
		if include("v:"+name, uint64(v.Stats().Applies)) {
			incl = append(incl, name)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(incl)))
	for _, name := range incl {
		v, _ := db.eng.View(name)
		b = appendName(b, name)
		if version >= 4 && v.Paged() {
			var (
				snap           []byte
				pend           []view.PendingBlock
				dirtyB, totalB int
				cerr           error
				sub            byte
			)
			if full {
				sub = 1 // self-contained blocked image: the chain can fold
				snap, pend, dirtyB, totalB, cerr = v.CheckpointBlocked(true)
			} else {
				sub = 2 // blocked delta: dirty runs only, merged at restore
				snap, pend, dirtyB, totalB, cerr = v.CheckpointBlockedDelta()
			}
			if cerr != nil {
				db.ckptBuf = b
				return nil, 0, nil, 0, nil, fmt.Errorf("chronicledb: checkpoint view %s: %w", name, cerr)
			}
			b = binary.AppendUvarint(b, uint64(len(snap)+1))
			b = append(b, sub)
			commits = append(commits, blockCommit{
				v: v, base: int64(len(b)), pend: pend, dirty: dirtyB, total: totalB,
			})
			b = append(b, snap...)
			continue
		}
		snap := v.Checkpoint()
		if version >= 4 {
			b = binary.AppendUvarint(b, uint64(len(snap)+1))
			b = append(b, 0) // subformat: v1 whole image
		} else {
			b = binary.AppendUvarint(b, uint64(len(snap)))
		}
		b = append(b, snap...)
	}

	incl = incl[:0]
	pviews := db.eng.PeriodicViewNames()
	for _, name := range pviews {
		pv, _ := db.eng.PeriodicView(name)
		if include("p:"+name, uint64(pv.Applies())) {
			incl = append(incl, name)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(incl)))
	for _, name := range incl {
		pv, _ := db.eng.PeriodicView(name)
		snap := pv.Checkpoint()
		b = appendName(b, name)
		b = binary.AppendUvarint(b, uint64(len(snap)))
		b = append(b, snap...)
	}

	// Dedup table (since v2): the idempotency entries live inside the
	// checkpoint because replay skips records at or below its LSN (and the
	// legacy layout truncates the log outright) — without this section a
	// retry arriving after checkpoint-and-crash would re-apply. The section
	// is bounded by the table capacity, so checkpoint size does not grow
	// with total request count. Restoring a chain re-Puts entries; Put
	// refreshes duplicates in place, so later chain files win.
	b = dedup.AppendEntries(b, db.eng.DedupEntries())
	db.ckptBuf = b
	return b, lsn, marks, dirty, commits, nil
}

// restoreCheckpoint rebuilds state from a checkpoint image and returns
// the LSN the checkpoint was cut at (the replay skip threshold). fileName
// is the chain file holding the image; version-4 blocked view sections
// resolve their inline block payloads relative to it.
func (db *DB) restoreCheckpoint(data []byte, fileName string) (uint64, error) {
	bad := func(what string) error {
		return fmt.Errorf("chronicledb: corrupt checkpoint (%s)", what)
	}
	if len(data) < 13 || string(data[:4]) != ckptMagic {
		return 0, bad("header")
	}
	version := data[4]
	if version < 1 || version > 4 {
		return 0, fmt.Errorf("chronicledb: unsupported checkpoint version %d", version)
	}
	off := 5
	if version >= 3 {
		// v3 (chain images) adds a flags byte: bit 0 marks a full image.
		// Decoding doesn't branch on it — every section carries its own
		// object count, and an incremental image simply lists fewer — but
		// the byte keeps full/incremental distinguishable for tooling.
		if len(data) < 14 {
			return 0, bad("header")
		}
		off++
	}
	lsn := binary.LittleEndian.Uint64(data[off:])
	off += 8
	db.eng.RestoreLSN(lsn)

	// Groups.
	nGroups, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return 0, bad("group count")
	}
	off += n
	for i := uint64(0); i < nGroups; i++ {
		name, used, err := readName(data[off:])
		if err != nil {
			return 0, bad("group name")
		}
		off += used
		if len(data)-off < 8 {
			return 0, bad("group sn")
		}
		lastSN := int64(binary.LittleEndian.Uint64(data[off:]))
		off += 8
		if g, ok := db.eng.Group(name); ok && lastSN >= 0 {
			g.RestoreLastSN(lastSN)
		}
	}

	// Chronicles.
	nChron, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return 0, bad("chronicle count")
	}
	off += n
	for i := uint64(0); i < nChron; i++ {
		name, used, err := readName(data[off:])
		if err != nil {
			return 0, bad("chronicle name")
		}
		off += used
		if len(data)-off < 8 {
			return 0, bad("chronicle dropped")
		}
		dropped := int64(binary.LittleEndian.Uint64(data[off:]))
		off += 8
		nRows, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, bad("chronicle rows")
		}
		off += n
		rows := make([]chronicle.Row, nRows)
		for j := range rows {
			if len(data)-off < 24 {
				return 0, bad("chronicle row header")
			}
			rows[j].SN = int64(binary.LittleEndian.Uint64(data[off:]))
			rows[j].Chronon = int64(binary.LittleEndian.Uint64(data[off+8:]))
			rows[j].LSN = binary.LittleEndian.Uint64(data[off+16:])
			off += 24
			t, used, err := value.DecodeTuple(data[off:])
			if err != nil {
				return 0, bad("chronicle row tuple")
			}
			rows[j].Vals = t
			off += used
		}
		c, ok := db.eng.Chronicle(name)
		if !ok {
			return 0, fmt.Errorf("chronicledb: checkpoint references unknown chronicle %q", name)
		}
		if err := c.Restore(rows, dropped); err != nil {
			return 0, err
		}
	}

	// Relations.
	nRels, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return 0, bad("relation count")
	}
	off += n
	for i := uint64(0); i < nRels; i++ {
		name, used, err := readName(data[off:])
		if err != nil {
			return 0, bad("relation name")
		}
		off += used
		nTuples, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, bad("relation tuples")
		}
		off += n
		r, ok := db.eng.Relation(name)
		if !ok {
			return 0, fmt.Errorf("chronicledb: checkpoint references unknown relation %q", name)
		}
		// A chain restore can hit the same relation more than once; each
		// image's tuple set must replace the previous one, not merge in.
		r.Reset()
		for j := uint64(0); j < nTuples; j++ {
			t, used, err := value.DecodeTuple(data[off:])
			if err != nil {
				return 0, bad("relation tuple")
			}
			off += used
			if err := r.Upsert(lsn, t); err != nil {
				return 0, err
			}
		}
	}

	// Views.
	nViews, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return 0, bad("view count")
	}
	off += n
	for i := uint64(0); i < nViews; i++ {
		name, used, err := readName(data[off:])
		if err != nil {
			return 0, bad("view name")
		}
		off += used
		snapLen, n := binary.Uvarint(data[off:])
		if n <= 0 || uint64(len(data)-off-n) < snapLen {
			return 0, bad("view snapshot")
		}
		off += n
		v, ok := db.eng.View(name)
		if !ok {
			return 0, fmt.Errorf("chronicledb: checkpoint references unknown view %q", name)
		}
		payload := data[off : off+int(snapLen)]
		if version >= 4 {
			// v4 view payloads carry a subformat byte: 0 = v1 whole image,
			// 1 = blocked image (lazy block index for paged views, eager
			// fetch-and-decode for views reopened unpaged), 2 = blocked
			// delta (dirty runs merged into the index restored from earlier
			// chain images).
			if snapLen == 0 {
				return 0, bad("view subformat")
			}
			sub, body := payload[0], payload[1:]
			switch sub {
			case 0:
				if err := v.RestoreCheckpoint(body); err != nil {
					return 0, err
				}
			case 1:
				base := int64(off) + 1 // body's offset within the chain file
				if err := v.RestoreBlocked(body, fileName, base, db.blockFetch); err != nil {
					return 0, err
				}
			case 2:
				base := int64(off) + 1
				if err := v.RestoreBlockedDelta(body, fileName, base); err != nil {
					return 0, err
				}
			default:
				return 0, bad("view subformat")
			}
		} else if err := v.RestoreCheckpoint(payload); err != nil {
			return 0, err
		}
		off += int(snapLen)
	}

	// Periodic views.
	nPViews, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return 0, bad("periodic view count")
	}
	off += n
	for i := uint64(0); i < nPViews; i++ {
		name, used, err := readName(data[off:])
		if err != nil {
			return 0, bad("periodic view name")
		}
		off += used
		snapLen, n := binary.Uvarint(data[off:])
		if n <= 0 || uint64(len(data)-off-n) < snapLen {
			return 0, bad("periodic view snapshot")
		}
		off += n
		pv, ok := db.eng.PeriodicView(name)
		if !ok {
			return 0, fmt.Errorf("chronicledb: checkpoint references unknown periodic view %q", name)
		}
		if err := pv.RestoreCheckpoint(data[off : off+int(snapLen)]); err != nil {
			return 0, err
		}
		off += int(snapLen)
	}

	// Dedup table (absent in v1 checkpoints, which predate idempotency).
	if version >= 2 {
		used, err := dedup.DecodeSnapshot(data[off:], func(e dedup.Entry) error {
			db.eng.RestoreDedupEntry(e)
			return nil
		})
		if err != nil {
			return 0, bad("dedup section")
		}
		off += used
	}
	if off != len(data) {
		return 0, bad("trailing bytes")
	}
	return lsn, nil
}

func appendName(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readName(b []byte) (string, int, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return "", 0, fmt.Errorf("bad name")
	}
	return string(b[sz : sz+int(n)]), sz + int(n), nil
}
