package chronicledb

import (
	"fmt"
	"sort"
	"sync/atomic"
	"testing"

	"chronicledb/internal/fault"
)

// Crash-torture harness: run a scripted workload (appends across two
// groups, relation upserts, checkpoints) on a simulated disk, crash the
// disk at every possible mutating-operation index, reopen — possibly with
// a different shard count, exercising reshard-on-reopen — and assert the
// durability contract:
//
//   - reopen after a power cut never fails (torn tails are tolerated),
//   - every acked operation survives,
//   - no operation is applied twice (LSN-idempotent replay),
//   - materialized views exactly equal a pure-Go reference evaluator.
//
// The one permitted ambiguity: the operation in flight at the instant of
// the crash may or may not have committed, so the recovered state must
// equal the reference after k or k+1 operations, where k is the acked
// count.

// tortureOp is one scripted workload step.
type tortureOp struct {
	kind  string // "append", "upsert", "checkpoint"
	chron string // append target
	acct  string
	amt   int64  // append payload
	state string // upsert payload
}

var tortureOps = []tortureOp{
	{kind: "upsert", acct: "a", state: "ny"},
	{kind: "upsert", acct: "b", state: "nj"},
	{kind: "append", chron: "ledger", acct: "a", amt: 5},
	{kind: "append", chron: "events", acct: "a", amt: 1},
	{kind: "append", chron: "ledger", acct: "b", amt: 7},
	{kind: "upsert", acct: "a", state: "ca"}, // state change mid-stream
	{kind: "append", chron: "ledger", acct: "a", amt: 3},
	{kind: "checkpoint"},
	{kind: "append", chron: "ledger", acct: "c", amt: 11}, // no customer row yet
	{kind: "upsert", acct: "c", state: "ca"},
	{kind: "append", chron: "ledger", acct: "c", amt: 2},
	{kind: "append", chron: "events", acct: "b", amt: 4},
	{kind: "upsert", acct: "a", state: "nj"},
	{kind: "append", chron: "ledger", acct: "a", amt: 9},
	{kind: "checkpoint"},
	{kind: "append", chron: "ledger", acct: "b", amt: 6},
	{kind: "append", chron: "events", acct: "c", amt: 8},
	{kind: "append", chron: "ledger", acct: "a", amt: 1},
	{kind: "append", chron: "ledger", acct: "c", amt: 4},
	{kind: "append", chron: "events", acct: "a", amt: 2},
	{kind: "append", chron: "ledger", acct: "b", amt: 3},
	{kind: "append", chron: "ledger", acct: "a", amt: 7},
	// Third checkpoint: with CheckpointFullEvery=2 this one folds the
	// chain (full image, superseded entries deleted) and compacts sealed
	// segments below the tip — crash points land inside fold + reclaim.
	{kind: "checkpoint"},
	{kind: "append", chron: "events", acct: "b", amt: 9},
	{kind: "upsert", acct: "b", state: "ca"},
	{kind: "append", chron: "ledger", acct: "b", amt: 2},
	{kind: "append", chron: "ledger", acct: "c", amt: 6},
}

// tortureDDL pairs each schema statement with an existence probe so a
// post-crash reopen can tell which statements were acked (those MUST have
// survived) and recreate only the missing tail.
var tortureDDL = []struct {
	stmt   string
	exists func(db *DB) bool
}{
	{`CREATE GROUP ga`, func(db *DB) bool { _, ok := db.Engine().Group("ga"); return ok }},
	{`CREATE CHRONICLE ledger (acct STRING, amt INT) IN GROUP ga RETAIN ALL`,
		func(db *DB) bool { _, ok := db.Chronicle("ledger"); return ok }},
	{`CREATE GROUP gb`, func(db *DB) bool { _, ok := db.Engine().Group("gb"); return ok }},
	{`CREATE CHRONICLE events (acct STRING, amt INT) IN GROUP gb RETAIN ALL`,
		func(db *DB) bool { _, ok := db.Chronicle("events"); return ok }},
	{`CREATE RELATION customers (acct STRING, state STRING, KEY(acct))`,
		func(db *DB) bool { _, ok := db.Relation("customers"); return ok }},
	{`CREATE VIEW balance AS SELECT acct, SUM(amt) AS total, COUNT(*) AS n FROM ledger GROUP BY acct`,
		func(db *DB) bool { _, ok := db.View("balance"); return ok }},
	{`CREATE VIEW by_state AS SELECT state, SUM(amt) AS total FROM ledger JOIN customers ON ledger.acct = customers.acct GROUP BY state`,
		func(db *DB) bool { _, ok := db.View("by_state"); return ok }},
	// A B-tree twin of balance: B-tree views checkpoint in blocks (dirty
	// tracking, per-block CRCs, refs into prior chain files), so the crash
	// enumeration lands inside block writes, between the image write and the
	// manifest flip, and across copy-forward during chain folds.
	{`CREATE VIEW balance_bt AS SELECT acct, SUM(amt) AS total, COUNT(*) AS n FROM ledger GROUP BY acct WITH STORE BTREE`,
		func(db *DB) bool { _, ok := db.View("balance_bt"); return ok }},
	// A twin pair sharing a σ prefix (amt >= 5): the shared-delta plan
	// computes the filter once per batch and fans the rows into both views,
	// so the crash enumeration covers recovery rebuilding the sharing DAG
	// and replay re-folding through it.
	{`CREATE VIEW big_credit AS SELECT acct, SUM(amt) AS total FROM ledger WHERE amt >= 5 GROUP BY acct`,
		func(db *DB) bool { _, ok := db.View("big_credit"); return ok }},
	{`CREATE VIEW big_credit_n AS SELECT acct, COUNT(*) AS n FROM ledger WHERE amt >= 5 GROUP BY acct`,
		func(db *DB) bool { _, ok := db.View("big_credit_n"); return ok }},
}

// snapshot is a canonical rendering of all durable state: chronicle
// contents in sequence order, the relation, and both views.
type snapshot struct {
	Ledger    []string // ordered "acct/amt"
	Events    []string
	Cust      []string // sorted "acct=state"
	Balance   []string // sorted "acct:total:n"
	ByState   []string // sorted "state:total"
	BalanceBT []string // balance via the blocked B-tree store; must match Balance
	BigCredit []string // sorted "acct:total" over amt >= 5 (shared σ prefix)
	BigCredN  []string // sorted "acct:n" over the same shared prefix
}

// refSim replays ops[:k] through a pure-Go model of the schema. Join-view
// contributions are fixed at append time from the relation version at that
// instant (the engine's temporal-join semantics: JoinRel resolves matches
// with GetAsOf at the row's LSN), so a later upsert never re-attributes an
// earlier append.
func refSim(k int) snapshot {
	type bal struct{ total, n int64 }
	var (
		ledger, events []string
		cust           = map[string]string{}
		balance        = map[string]*bal{}
		byState        = map[string]int64{}
		bigCredit      = map[string]*bal{}
	)
	for _, o := range tortureOps[:k] {
		switch o.kind {
		case "upsert":
			cust[o.acct] = o.state
		case "append":
			row := fmt.Sprintf("%s/%d", o.acct, o.amt)
			if o.chron == "ledger" {
				ledger = append(ledger, row)
				b := balance[o.acct]
				if b == nil {
					b = &bal{}
					balance[o.acct] = b
				}
				b.total += o.amt
				b.n++
				if st, ok := cust[o.acct]; ok {
					byState[st] += o.amt
				}
				if o.amt >= 5 {
					bc := bigCredit[o.acct]
					if bc == nil {
						bc = &bal{}
						bigCredit[o.acct] = bc
					}
					bc.total += o.amt
					bc.n++
				}
			} else {
				events = append(events, row)
			}
		}
	}
	s := snapshot{Ledger: ledger, Events: events}
	for a, st := range cust {
		s.Cust = append(s.Cust, a+"="+st)
	}
	for a, b := range balance {
		s.Balance = append(s.Balance, fmt.Sprintf("%s:%d:%d", a, b.total, b.n))
	}
	for st, tot := range byState {
		s.ByState = append(s.ByState, fmt.Sprintf("%s:%d", st, tot))
	}
	for a, b := range bigCredit {
		s.BigCredit = append(s.BigCredit, fmt.Sprintf("%s:%d", a, b.total))
		s.BigCredN = append(s.BigCredN, fmt.Sprintf("%s:%d", a, b.n))
	}
	sort.Strings(s.Cust)
	sort.Strings(s.Balance)
	sort.Strings(s.ByState)
	sort.Strings(s.BigCredit)
	sort.Strings(s.BigCredN)
	s.BalanceBT = s.Balance
	return s
}

// selCols runs a SELECT * and renders the named columns of each row.
func selCols(t *testing.T, db *DB, from, sep string, cols ...string) []string {
	t.Helper()
	res, err := db.Exec(`SELECT * FROM ` + from)
	if err != nil {
		t.Fatalf("SELECT * FROM %s: %v", from, err)
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = -1
		for j, n := range res.Columns {
			if n == c {
				idx[i] = j
			}
		}
		if idx[i] < 0 {
			t.Fatalf("SELECT * FROM %s: no column %q in %v", from, c, res.Columns)
		}
	}
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		parts := make([]string, len(idx))
		for i, j := range idx {
			parts[i] = fmt.Sprintf("%v", r[j])
		}
		out = append(out, joinParts(parts, sep))
	}
	return out
}

func joinParts(parts []string, sep string) string {
	s := parts[0]
	for _, p := range parts[1:] {
		s += sep + p
	}
	return s
}

// dbSnapshot reads the live database into the canonical rendering.
func dbSnapshot(t *testing.T, db *DB) snapshot {
	t.Helper()
	s := snapshot{
		Ledger:    selCols(t, db, "ledger", "/", "acct", "amt"),
		Events:    selCols(t, db, "events", "/", "acct", "amt"),
		Cust:      selCols(t, db, "customers", "=", "acct", "state"),
		Balance:   selCols(t, db, "balance", ":", "acct", "total", "n"),
		ByState:   selCols(t, db, "by_state", ":", "state", "total"),
		BalanceBT: selCols(t, db, "balance_bt", ":", "acct", "total", "n"),
		BigCredit: selCols(t, db, "big_credit", ":", "acct", "total"),
		BigCredN:  selCols(t, db, "big_credit_n", ":", "acct", "n"),
	}
	sort.Strings(s.Cust)
	sort.Strings(s.Balance)
	sort.Strings(s.ByState)
	sort.Strings(s.BalanceBT)
	sort.Strings(s.BigCredit)
	sort.Strings(s.BigCredN)
	return s
}

func tortureOptions(disk *fault.Disk, shards int) Options {
	var chronon int64
	return Options{
		Dir:             "/data",
		SyncWAL:         true,
		Shards:          shards,
		RelationHistory: true,
		FS:              disk,
		Clock:           func() int64 { chronon++; return chronon },
		// A tiny segment cap forces rotations every few records, and a
		// fold period of 2 makes the third scripted checkpoint a full one,
		// so the enumeration crashes inside segment rotation (seal, create,
		// manifest flip), incremental checkpoint writes, chain folds, and
		// segment compaction — every fsync/write/rename/remove the rotated
		// layout added. Disk ops are counted dynamically (clean.Ops()), so
		// new crash sites are covered automatically.
		WALSegmentBytes:     512,
		CheckpointFullEvery: 2,
		// Tiny blocks split the B-tree view's image into several blocks per
		// checkpoint, and a tight cache budget forces the recovered reads in
		// verifyRecovered to fault blocks back through the healed disk.
		ViewBlockBytes: 64,
		ViewCacheBytes: 512,
	}
}

func applyTortureOp(db *DB, o tortureOp) error {
	switch o.kind {
	case "append":
		_, err := db.Append(o.chron, Tuple{Str(o.acct), Int(o.amt)})
		return err
	case "upsert":
		return db.Upsert("customers", Tuple{Str(o.acct), Str(o.state)})
	case "checkpoint":
		return db.Checkpoint()
	default:
		panic("unknown op " + o.kind)
	}
}

// runTortureWorkload executes the scripted workload until the disk crashes
// (or to completion), returning how many DDL statements and data ops were
// acked. Errors after the crash point are expected, not test failures.
func runTortureWorkload(disk *fault.Disk, shards int) (ackedDDL, ackedOps int) {
	db, err := Open(tortureOptions(disk, shards))
	if err != nil {
		return 0, 0 // crashed during Open
	}
	defer db.Close() // post-crash close errors are fine
	for _, d := range tortureDDL {
		if _, err := db.Exec(d.stmt); err != nil {
			return ackedDDL, 0
		}
		ackedDDL++
	}
	for _, o := range tortureOps {
		if err := applyTortureOp(db, o); err != nil {
			return ackedDDL, ackedOps
		}
		ackedOps++
	}
	return ackedDDL, ackedOps
}

// verifyRecovered opens the healed disk with a (possibly different) shard
// count and checks the durability contract against the reference.
func verifyRecovered(t *testing.T, disk *fault.Disk, shards, ackedDDL, ackedOps int, tag string) {
	t.Helper()
	db, err := Open(tortureOptions(disk, shards))
	if err != nil {
		t.Fatalf("%s: reopen after crash failed: %v", tag, err)
	}
	defer db.Close()

	// Every acked DDL statement must have survived; the unacked tail may
	// or may not exist (the in-flight statement can commit). Recreate
	// whatever is missing so the data checks below always have the schema.
	for j, d := range tortureDDL {
		if d.exists(db) {
			continue
		}
		if j < ackedDDL {
			t.Fatalf("%s: acked DDL %q lost in crash", tag, d.stmt)
		}
		if _, err := db.Exec(d.stmt); err != nil {
			t.Fatalf("%s: recreating %q: %v", tag, d.stmt, err)
		}
	}

	// Compare rendered forms: nil and empty slices are the same state.
	got := fmt.Sprintf("%+v", dbSnapshot(t, db))
	want := fmt.Sprintf("%+v", refSim(ackedOps))
	if got == want {
		return
	}
	if ackedOps < len(tortureOps) {
		// The in-flight op may have committed before the crash.
		if next := fmt.Sprintf("%+v", refSim(ackedOps+1)); got == next {
			return
		}
	}
	t.Errorf("%s: recovered state diverges after %d acked ops\n got: %s\nwant: %s",
		tag, ackedOps, got, want)
}

// TestCrashTorture enumerates every crash point of the workload for each
// shard count, with torn final writes on odd crash indices, and verifies
// recovery twice: once at the same shard count and once after a reshard.
func TestCrashTorture(t *testing.T) {
	reshard := map[int]int{0: 4, 1: 4, 4: 0}
	var totalPoints atomic.Int64
	for _, shards := range []int{0, 1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			t.Parallel()
			// Clean run: count the workload's mutating disk operations
			// and sanity-check the no-crash state against the reference.
			clean := fault.NewDisk()
			if ddl, ops := runTortureWorkload(clean, shards); ddl != len(tortureDDL) || ops != len(tortureOps) {
				t.Fatalf("clean run stopped early: ddl=%d ops=%d", ddl, ops)
			}
			writeOps := clean.Ops()
			verifyRecovered(t, clean, shards, len(tortureDDL), len(tortureOps), "clean")
			t.Logf("shards=%d: %d crash points", shards, writeOps)
			totalPoints.Add(int64(writeOps))

			for i := 0; i < writeOps; i++ {
				disk := fault.NewDisk()
				disk.SetCrashAt(i)
				disk.SetTorn(i%2 == 1)
				ackedDDL, ackedOps := runTortureWorkload(disk, shards)
				if !disk.Crashed() {
					t.Fatalf("crash %d: disk did not crash (ops=%d)", i, disk.Ops())
				}
				disk.Heal()
				verifyRecovered(t, disk, shards, ackedDDL, ackedOps,
					fmt.Sprintf("crash@%d", i))
				// Reshard-on-reopen: recover the same image into a
				// different shard layout and re-verify.
				verifyRecovered(t, disk, reshard[shards], ackedDDL, ackedOps,
					fmt.Sprintf("crash@%d/reshard", i))
			}
		})
	}
	// Runs after the parallel subtests complete.
	t.Cleanup(func() {
		if n := totalPoints.Load(); n > 0 && n < 100 {
			t.Errorf("only %d crash points enumerated across shard counts, want >= 100", n)
		}
	})
}
