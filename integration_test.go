package chronicledb

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentAppends drives the engine from many goroutines; the single
// engine mutex must serialize appends so that sequence numbers stay unique
// and the views end exactly consistent.
func TestConcurrentAppends(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE CHRONICLE calls (acct STRING, minutes INT)`)
	mustExec(t, db, `CREATE VIEW usage AS
		SELECT acct, SUM(minutes) AS total, COUNT(*) AS n FROM calls GROUP BY acct`)

	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acct := fmt.Sprintf("acct%d", w)
			for i := 0; i < perWorker; i++ {
				if _, err := db.Append("calls", Tuple{Str(acct), Int(1)}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := db.Stats()
	if st.Appends != workers*perWorker {
		t.Errorf("Appends = %d", st.Appends)
	}
	for w := 0; w < workers; w++ {
		row, ok, err := db.Lookup("usage", Str(fmt.Sprintf("acct%d", w)))
		if err != nil || !ok {
			t.Fatalf("worker %d: %v %v", w, ok, err)
		}
		if row[1].AsInt() != perWorker || row[2].AsInt() != perWorker {
			t.Errorf("worker %d: %v", w, row)
		}
	}
	// Sequence numbers are dense and unique under concurrency.
	c, _ := db.Chronicle("calls")
	if c.LastSN() != int64(workers*perWorker-1) {
		t.Errorf("LastSN = %d", c.LastSN())
	}
}

// TestConcurrentAppendsDurable repeats the concurrency check with the WAL
// attached, then recovers and compares.
func TestConcurrentAppendsDurable(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE CHRONICLE calls (acct STRING, minutes INT)`)
	mustExec(t, db, `CREATE VIEW usage AS
		SELECT acct, SUM(minutes) AS total FROM calls GROUP BY acct`)

	const workers = 4
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				db.Append("calls", Tuple{Str(fmt.Sprintf("acct%d", w)), Int(2)})
			}
		}(w)
	}
	wg.Wait()
	want := map[string]int64{}
	for w := 0; w < workers; w++ {
		acct := fmt.Sprintf("acct%d", w)
		row, _, _ := db.Lookup("usage", Str(acct))
		want[acct] = row[1].AsInt()
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for acct, total := range want {
		row, ok, err := db2.Lookup("usage", Str(acct))
		if err != nil || !ok || row[1].AsInt() != total {
			t.Errorf("%s after recovery: %v %v %v (want %d)", acct, row, ok, err, total)
		}
	}
}

// TestFullScenario is the end-to-end paper walkthrough: frequent flyer
// semantics (temporal joins + proactive updates), periodic billing, a
// checkpoint mid-stream, and recovery — all through the public API.
func TestFullScenario(t *testing.T) {
	dir := t.TempDir()
	now := int64(0)
	db, err := Open(Options{Dir: dir, Clock: func() int64 { return now }})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `
		CREATE GROUP airline;
		CREATE CHRONICLE mileage (acct STRING, miles INT) IN GROUP airline;
		CREATE RELATION customers (acct STRING, state STRING, KEY(acct));
		CREATE VIEW balance AS SELECT acct, SUM(miles) AS miles FROM mileage GROUP BY acct;
		CREATE VIEW nj_miles AS
			SELECT mileage.acct, SUM(miles) AS miles FROM mileage
			JOIN customers ON mileage.acct = customers.acct
			WHERE state = 'NJ'
			GROUP BY mileage.acct;
		CREATE PERIODIC VIEW quarterly AS
			SELECT acct, SUM(miles) AS miles FROM mileage GROUP BY acct
			EVERY 100;
	`)
	mustExec(t, db, `UPSERT INTO customers VALUES ('p1', 'NJ')`)
	now = 10
	mustExec(t, db, `APPEND INTO mileage VALUES ('p1', 1000)`)
	mustExec(t, db, `UPSERT INTO customers VALUES ('p1', 'CA')`) // proactive move
	now = 50
	mustExec(t, db, `APPEND INTO mileage VALUES ('p1', 2000)`)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	now = 150 // next quarter
	mustExec(t, db, `APPEND INTO mileage VALUES ('p1', 400)`)
	db.Close()

	db2, err := Open(Options{Dir: dir, Clock: func() int64 { return now }})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()

	row, _, _ := db2.Lookup("balance", Str("p1"))
	if row[1].AsInt() != 3400 {
		t.Errorf("balance = %v", row)
	}
	row, _, _ = db2.Lookup("nj_miles", Str("p1"))
	if row[1].AsInt() != 1000 {
		t.Errorf("nj_miles = %v (only the pre-move flight qualifies)", row)
	}
	pv, ok := db2.Engine().PeriodicView("quarterly")
	if !ok {
		t.Fatal("quarterly missing")
	}
	insts := pv.Instances()
	if len(insts) != 2 {
		t.Fatalf("quarters = %d", len(insts))
	}
	q0, _ := insts[0].View.Lookup(Tuple{Str("p1")})
	q1, _ := insts[1].View.Lookup(Tuple{Str("p1")})
	if q0[1].AsInt() != 3000 || q1[1].AsInt() != 400 {
		t.Errorf("quarters = %v / %v", q0, q1)
	}
}

// TestConcurrentReadsDuringAppends exercises the read path (Lookup, range
// scans, SQL queries) while appenders run — the engine must serialize view
// access so readers never observe torn state (validated under -race).
func TestConcurrentReadsDuringAppends(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE CHRONICLE calls (acct STRING, minutes INT)`)
	mustExec(t, db, `CREATE VIEW usage AS
		SELECT acct, SUM(minutes) AS total, COUNT(*) AS n FROM calls GROUP BY acct WITH STORE BTREE`)

	done := make(chan struct{})
	var appenders, readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		appenders.Add(1)
		go func(w int) {
			defer appenders.Done()
			for i := 0; i < 400; i++ {
				if _, err := db.Append("calls", Tuple{Str(fmt.Sprintf("acct%d", i%16)), Int(1)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if row, ok, err := db.Lookup("usage", Str("acct3")); err != nil {
				t.Error(err)
				return
			} else if ok {
				// The invariant visible mid-stream: total == n (all minutes are 1).
				if row[1].AsInt() != row[2].AsInt() {
					t.Errorf("torn read: %v", row)
					return
				}
			}
			if _, err := db.LookupRange("usage", Tuple{Str("acct0")}, Tuple{Str("acct9")}); err != nil {
				t.Error(err)
				return
			}
			if _, err := db.Exec(`SELECT * FROM usage ORDER BY total DESC LIMIT 3`); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	appenders.Wait()
	close(done)
	readers.Wait()
	row, ok, err := db.Lookup("usage", Str("acct3"))
	if err != nil || !ok || row[2].AsInt() != 100 {
		t.Errorf("final usage(acct3) = %v %v %v", row, ok, err)
	}
}
