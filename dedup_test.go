package chronicledb

import (
	"errors"
	"fmt"
	"testing"

	"chronicledb/internal/fault"
)

// Exactly-once ingestion: the dedup entry is written in the same WAL frame
// as the rows it acknowledges, so a crash either persists both or neither,
// and a client retry after reopen gets the original ack back instead of a
// second application.

func idemTestDB(t *testing.T, disk *fault.Disk, opts ...func(*Options)) *DB {
	t.Helper()
	o := Options{Dir: "/data", SyncWAL: true, FS: disk}
	for _, f := range opts {
		f(&o)
	}
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestIdemAppendDedupsLive(t *testing.T) {
	disk := fault.NewDisk()
	db := idemTestDB(t, disk)
	mustExec(t, db, `CREATE CHRONICLE calls (acct STRING, minutes INT) RETAIN ALL`)
	mustExec(t, db, `CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total FROM calls GROUP BY acct`)

	rows := []Row{{Str("alice"), Int(10)}, {Str("alice"), Int(5)}}
	first, last, deduped, err := db.AppendRowsIdem("calls", rows, "client-A", "req-1")
	if err != nil || deduped {
		t.Fatalf("first delivery = %d..%d deduped=%v err=%v", first, last, deduped, err)
	}
	if last != first+1 {
		t.Fatalf("SN range = %d..%d", first, last)
	}
	// Network-level duplicate: same ids, same ack, no re-application.
	f2, l2, deduped, err := db.AppendRowsIdem("calls", rows, "client-A", "req-1")
	if err != nil || !deduped || f2 != first || l2 != last {
		t.Fatalf("duplicate delivery = %d..%d deduped=%v err=%v", f2, l2, deduped, err)
	}
	if row, ok, err := db.Lookup("usage", Str("alice")); err != nil || !ok || row[1].AsInt() != 15 {
		t.Errorf("usage(alice) = %v %v %v, want 15", row, ok, err)
	}
	if entries, hits, _ := db.DedupStats(); entries != 1 || hits != 1 {
		t.Errorf("dedup stats = %d entries, %d hits", entries, hits)
	}
	// A different request id from the same client applies normally.
	f3, _, deduped, err := db.AppendRowsIdem("calls", []Row{{Str("bob"), Int(1)}}, "client-A", "req-2")
	if err != nil || deduped || f3 <= last {
		t.Fatalf("fresh request = %d deduped=%v err=%v", f3, deduped, err)
	}
}

func TestIdemAppendRetryAfterCrash(t *testing.T) {
	disk := fault.NewDisk()
	db := idemTestDB(t, disk)
	mustExec(t, db, `CREATE CHRONICLE calls (acct STRING, minutes INT) RETAIN ALL`)
	mustExec(t, db, `CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total FROM calls GROUP BY acct`)

	rows := []Row{{Str("alice"), Int(10)}, {Str("bob"), Int(5)}}
	first, last, _, err := db.AppendRowsIdem("calls", rows, "client-A", "req-1")
	if err != nil {
		t.Fatal(err)
	}

	// Power-cut after the ack: the retry arrives at a freshly recovered DB.
	db.Close()
	disk.PowerCut()
	disk.Heal()
	db2 := idemTestDB(t, disk)

	f2, l2, deduped, err := db2.AppendRowsIdem("calls", rows, "client-A", "req-1")
	if err != nil || !deduped || f2 != first || l2 != last {
		t.Fatalf("retry after crash = %d..%d deduped=%v err=%v, want original ack %d..%d",
			f2, l2, deduped, err, first, last)
	}
	if res := mustExec(t, db2, `SELECT * FROM calls`); len(res.Rows) != 2 {
		t.Errorf("rows after crash+retry = %d, want 2 (exactly-once)", len(res.Rows))
	}
	if row, ok, err := db2.Lookup("usage", Str("alice")); err != nil || !ok || row[1].AsInt() != 10 {
		t.Errorf("usage(alice) after crash+retry = %v %v %v, want 10", row, ok, err)
	}
}

func TestIdemDedupSurvivesCheckpoint(t *testing.T) {
	disk := fault.NewDisk()
	db := idemTestDB(t, disk)
	mustExec(t, db, `CREATE CHRONICLE calls (acct STRING, minutes INT) RETAIN ALL`)

	first, last, _, err := db.AppendRowsIdem("calls", []Row{{Str("alice"), Int(10)}}, "client-A", "req-1")
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoint truncates the WAL: the only durable copy of the dedup
	// entry is now the checkpoint's dedup section.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	disk.PowerCut()
	disk.Heal()
	db2 := idemTestDB(t, disk)

	f2, l2, deduped, err := db2.AppendRowsIdem("calls", []Row{{Str("alice"), Int(10)}}, "client-A", "req-1")
	if err != nil || !deduped || f2 != first || l2 != last {
		t.Fatalf("retry after checkpoint+crash = %d..%d deduped=%v err=%v", f2, l2, deduped, err)
	}
	if res := mustExec(t, db2, `SELECT * FROM calls`); len(res.Rows) != 1 {
		t.Errorf("rows = %d, want 1", len(res.Rows))
	}
}

func TestIdemAppendReadOnlyNoFalseAck(t *testing.T) {
	disk := fault.NewDisk()
	db := idemTestDB(t, disk)
	mustExec(t, db, `CREATE CHRONICLE calls (acct STRING, minutes INT) RETAIN ALL`)

	if _, _, _, err := db.AppendRowsIdem("calls", []Row{{Str("alice"), Int(10)}}, "client-A", "req-1"); err != nil {
		t.Fatal(err)
	}
	// Degrade to read-only via a failed WAL sync.
	disk.FailNthSync(disk.Syncs())
	if _, _, _, err := db.AppendRowsIdem("calls", []Row{{Str("bob"), Int(5)}}, "client-A", "req-2"); err == nil {
		t.Fatal("append with failing WAL sync acked")
	}
	if ro, _ := db.ReadOnly(); !ro {
		t.Fatal("fsync failure did not latch read-only")
	}
	// Even a retry of the already-applied request must NOT be answered from
	// the dedup table while degraded: the write gate runs first, so a
	// degraded node never hands out acks.
	if _, _, _, err := db.AppendRowsIdem("calls", []Row{{Str("alice"), Int(10)}}, "client-A", "req-1"); !errors.Is(err, ErrReadOnly) {
		t.Errorf("retry while read-only: %v, want ErrReadOnly", err)
	}
}

func TestIdemRequiresIDs(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE CHRONICLE calls (acct STRING, minutes INT)`)
	if _, _, _, err := db.AppendRowsIdem("calls", []Row{{Str("a"), Int(1)}}, "", "req"); err == nil {
		t.Error("empty client id accepted")
	}
	if _, _, _, err := db.AppendRowsIdem("calls", []Row{{Str("a"), Int(1)}}, "client", ""); err == nil {
		t.Error("empty request id accepted")
	}
}

func TestDedupCapBoundsMemory(t *testing.T) {
	db, err := Open(Options{DedupCap: 8, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE CHRONICLE calls (acct STRING, minutes INT)`)

	for i := 0; i < 40; i++ {
		rid := fmt.Sprintf("req-%d", i)
		if _, _, _, err := db.AppendRowsIdem("calls", []Row{{Str("a"), Int(1)}}, "client-A", rid); err != nil {
			t.Fatal(err)
		}
	}
	entries, _, evictions := db.DedupStats()
	if entries > 8 {
		t.Errorf("dedup entries = %d, want ≤ cap 8", entries)
	}
	if evictions < 32 {
		t.Errorf("evictions = %d, want ≥ 32", evictions)
	}
	// Oldest ids were evicted: a very late retry re-applies (the documented
	// cap trade-off); recent ids still dedup.
	_, _, deduped, err := db.AppendRowsIdem("calls", []Row{{Str("a"), Int(1)}}, "client-A", "req-39")
	if err != nil || !deduped {
		t.Errorf("recent id deduped=%v err=%v, want dedup hit", deduped, err)
	}
}

func TestDedupDisabledAblation(t *testing.T) {
	db, err := Open(Options{DedupDisabled: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE CHRONICLE calls (acct STRING, minutes INT) RETAIN ALL`)

	rows := []Row{{Str("alice"), Int(10)}}
	if _, _, _, err := db.AppendRowsIdem("calls", rows, "client-A", "req-1"); err != nil {
		t.Fatal(err)
	}
	// With dedup off the duplicate applies again — at-least-once semantics.
	_, _, deduped, err := db.AppendRowsIdem("calls", rows, "client-A", "req-1")
	if err != nil || deduped {
		t.Fatalf("ablation duplicate deduped=%v err=%v", deduped, err)
	}
	if res := mustExec(t, db, `SELECT * FROM calls`); len(res.Rows) != 2 {
		t.Errorf("rows = %d, want 2 (duplicate applied)", len(res.Rows))
	}
}
