package chronicledb_test

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	chronicledb "chronicledb"
	"chronicledb/internal/fault"
	"chronicledb/internal/server"
)

// TestNetworkChaos is the network-torture harness (E18): concurrent
// retrying clients push appends through a chaos TCP proxy and a
// fault-injecting transport — dropped requests, responses lost after the
// server applied them, duplicated deliveries, connections reset
// mid-response-body — while the server suffers a mid-run power cut and is
// reopened behind the same proxy address. The exactly-once contract: after
// every client's every request is acked, the chronicle holds exactly
// K·M·R rows and the acked SN ranges tile [0, K·M·R) with no overlap. The
// ablation subtest turns the dedup table off and shows the same retry
// discipline over-applies.
func TestNetworkChaos(t *testing.T) {
	t.Run("exactly-once", testChaosExactlyOnce)
	t.Run("at-least-once-ablation", testChaosAblation)
}

const (
	chaosClients  = 4 // K concurrent clients
	chaosRequests = 25

	// M requests per client
	chaosRows = 2 // R rows per request
)

type ackRange struct{ first, last int64 }

func testChaosExactlyOnce(t *testing.T) {
	disk := fault.NewDisk()
	open := func() *chronicledb.DB {
		db, err := chronicledb.Open(chronicledb.Options{
			Dir: "/data", SyncWAL: true, FS: disk, Shards: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	db := open()
	if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT) RETAIN ALL`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total FROM calls GROUP BY acct`); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.NewWith(db, server.Config{}))

	chaos := fault.NewNetChaos(42)
	chaos.DropRequest = 0.05
	chaos.DropResponse = 0.10 // the ambiguous failure: applied, ack lost
	chaos.Duplicate = 0.05
	chaos.DropConn = 0.08
	chaos.ResetProb = 0.08
	chaos.ResetAfter = 32

	proxy, err := fault.NewProxy(strings.TrimPrefix(ts.URL, "http://"), chaos)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Mid-run power cut and failover: once a third of the requests are
	// acked, cut power to the disk, tear down the server, heal, reopen,
	// and repoint the proxy. Clients never change the address they dial.
	var acked atomic.Int64
	var db2 *chronicledb.DB
	var ts2 *httptest.Server
	failoverDone := make(chan struct{})
	go func() {
		defer close(failoverDone)
		for acked.Load() < chaosClients*chaosRequests/3 {
			time.Sleep(time.Millisecond)
		}
		disk.PowerCut()
		ts.CloseClientConnections()
		ts.Close()
		db.Close()
		disk.Heal()
		db2 = open()
		ts2 = httptest.NewServer(server.NewWith(db2, server.Config{}))
		proxy.SetTarget(strings.TrimPrefix(ts2.URL, "http://"))
	}()

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		acks    []ackRange
		deduped int64
		failed  []string
	)
	for k := 0; k < chaosClients; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c := server.NewClientWith("http://"+proxy.Addr(), server.ClientConfig{
				ClientID:         fmt.Sprintf("chaos-%d", k),
				Timeout:          2 * time.Second,
				MaxAttempts:      5,
				BaseBackoff:      2 * time.Millisecond,
				MaxBackoff:       20 * time.Millisecond,
				RetryBudget:      5 * time.Second,
				BreakerThreshold: 20,
				BreakerCooldown:  20 * time.Millisecond,
				// Keep-alives off: every request opens a fresh TCP
				// connection through the proxy, so the connection-level
				// faults (drops on accept, resets mid-body) get a roll
				// per request rather than one per pooled connection.
				Transport: &fault.ChaosTransport{
					Chaos: chaos,
					Base:  &http.Transport{DisableKeepAlives: true},
				},
			})
			rows := make([][]any, chaosRows)
			for i := range rows {
				rows[i] = []any{fmt.Sprintf("chaos-%d", k), 1}
			}
			for m := 0; m < chaosRequests; m++ {
				rid := fmt.Sprintf("m%d", m)
				deadline := time.Now().Add(60 * time.Second)
				for {
					// The harness-level retry reuses the request id, so
					// however many times this request is delivered —
					// client retries, network duplicates, post-failover
					// resends — it applies at most once.
					resp, err := c.AppendRowsIdem("calls", rows, rid)
					if err == nil {
						mu.Lock()
						acks = append(acks, ackRange{resp.FirstSN, resp.LastSN})
						if resp.Deduped {
							deduped++
						}
						mu.Unlock()
						acked.Add(1)
						break
					}
					if time.Now().After(deadline) {
						mu.Lock()
						failed = append(failed, fmt.Sprintf("client %d req %s: %v", k, rid, err))
						mu.Unlock()
						return
					}
					// ErrReadOnly during the failover window, breaker
					// cooldowns, shed 429s, torn connections: wait and retry.
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(k)
	}
	wg.Wait()
	<-failoverDone
	defer db2.Close()
	defer ts2.Close()

	if len(failed) > 0 {
		t.Fatalf("requests never acked: %v", failed)
	}

	// The chaos actually fired; otherwise this run proved nothing.
	counts := chaos.Counts()
	t.Logf("chaos: %+v, harness acks deduped=%d", counts, deduped)
	if counts.DroppedResponses == 0 && counts.Duplicates == 0 {
		t.Fatal("chaos injected no ambiguous faults; raise probabilities")
	}

	// Exactly-once, client view: the K·M acked SN ranges are disjoint and
	// tile [0, K·M·R) — every row acked exactly once, none lost, none
	// double-applied, across a power cut and a server failover.
	const want = chaosClients * chaosRequests * chaosRows
	if len(acks) != chaosClients*chaosRequests {
		t.Fatalf("acks = %d, want %d", len(acks), chaosClients*chaosRequests)
	}
	sort.Slice(acks, func(i, j int) bool { return acks[i].first < acks[j].first })
	var next int64
	for _, a := range acks {
		if a.first != next || a.last != a.first+chaosRows-1 {
			t.Fatalf("SN ranges do not tile: got [%d,%d] at offset %d", a.first, a.last, next)
		}
		next = a.last + 1
	}
	if next != want {
		t.Fatalf("SN coverage = %d, want %d", next, want)
	}

	// Exactly-once, durable view: the reopened database agrees.
	res, err := db2.Exec(`SELECT * FROM calls`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != want {
		t.Fatalf("durable rows = %d, want %d", len(res.Rows), want)
	}
	for k := 0; k < chaosClients; k++ {
		row, ok, err := db2.Lookup("usage", chronicledb.Str(fmt.Sprintf("chaos-%d", k)))
		if err != nil || !ok || row[1].AsInt() != chaosRequests*chaosRows {
			t.Errorf("usage(chaos-%d) = %v %v %v, want %d", k, row, ok, err, chaosRequests*chaosRows)
		}
	}
}

// testChaosAblation runs the same retry discipline with the dedup table
// disabled: lost responses and duplicated deliveries now re-apply, so the
// row count exceeds the number of logical requests — the measurable
// difference between exactly-once and at-least-once.
func testChaosAblation(t *testing.T) {
	db, err := chronicledb.Open(chronicledb.Options{DedupDisabled: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT) RETAIN ALL`); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(db))
	defer ts.Close()

	chaos := fault.NewNetChaos(7)
	chaos.DropResponse = 0.25
	chaos.Duplicate = 0.15

	c := server.NewClientWith(ts.URL, server.ClientConfig{
		ClientID:         "ablation",
		MaxAttempts:      6,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       5 * time.Millisecond,
		BreakerThreshold: -1,
		Transport:        &fault.ChaosTransport{Chaos: chaos},
	})
	const requests = 50
	for m := 0; m < requests; m++ {
		rid := fmt.Sprintf("m%d", m)
		for {
			if _, err := c.AppendRowsIdem("calls", [][]any{{"a", 1}}, rid); err == nil {
				break
			} else if errors.Is(err, server.ErrReadOnly) {
				t.Fatal(err)
			}
		}
	}
	counts := chaos.Counts()
	if counts.DroppedResponses == 0 && counts.Duplicates == 0 {
		t.Fatal("chaos injected nothing; raise probabilities")
	}
	res, err := db.Exec(`SELECT * FROM calls`)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ablation: %d logical requests applied as %d rows (%+v)", requests, len(res.Rows), counts)
	if len(res.Rows) <= requests {
		t.Errorf("dedup-disabled run applied %d rows for %d requests; expected over-application", len(res.Rows), requests)
	}
}
