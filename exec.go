package chronicledb

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"chronicledb/internal/chronicle"
	"chronicledb/internal/engine"
	"chronicledb/internal/pred"
	"chronicledb/internal/sqlparse"
	"chronicledb/internal/stats"
	"chronicledb/internal/value"
	"chronicledb/internal/view"
)

// Exec parses and executes one or more semicolon-separated statements,
// returning the result of the last one.
func (db *DB) Exec(src string) (*Result, error) {
	stmts, err := sqlparse.Parse(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("chronicledb: empty statement")
	}
	var res *Result
	for _, s := range stmts {
		res, err = db.execOne(s, execLive)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// execMode distinguishes the three statement execution contexts.
type execMode uint8

const (
	// execLive is normal client execution: writes are gated (read-only
	// latch and replica role), DDL is persisted to the catalog and staged
	// for replication.
	execLive execMode = iota
	// execRecovery replays the catalog and WAL tail at open: no gates, no
	// catalog writes (the statement came from the catalog), but the DDL
	// counter still advances so it ends equal to the catalog length.
	execRecovery
	// execReplica applies a replicated DDL frame on a follower: the role
	// gate is skipped (the stream is the follower's only writer) but the
	// statement is appended to the follower's own catalog — and staged to
	// its own source, for cascading followers and post-promotion serving.
	execReplica
)

// execOne executes one statement in the given mode.
func (db *DB) execOne(s sqlparse.Statement, mode execMode) (*Result, error) {
	if mode != execRecovery { // reject writes once degraded
		switch s.(type) {
		case *sqlparse.CreateGroup, *sqlparse.CreateChronicle, *sqlparse.CreateRelation,
			*sqlparse.CreateView, *sqlparse.DropView, *sqlparse.Append,
			*sqlparse.Upsert, *sqlparse.Delete:
			if err := db.writeGate(); err != nil {
				return nil, err
			}
			if mode == execLive {
				if err := db.roleGate(); err != nil {
					return nil, err
				}
			}
		}
	}
	switch s := s.(type) {
	case *sqlparse.CreateGroup:
		if _, err := db.eng.CreateGroup(s.Name); err != nil {
			return nil, err
		}
		return db.ddlDone(s, mode, "group %s created", s.Name)

	case *sqlparse.CreateChronicle:
		schema, err := schemaOf(s.Cols)
		if err != nil {
			return nil, err
		}
		var retain *chronicle.Retention
		if s.Retain != nil {
			r := chronicle.Retention(*s.Retain)
			retain = &r
		}
		c, err := db.eng.CreateChronicle(s.Name, s.Group, schema, retain)
		if err != nil {
			return nil, err
		}
		if s.Window != nil {
			if err := c.SetRetainSpan(*s.Window); err != nil {
				return nil, err
			}
		}
		return db.ddlDone(s, mode, "chronicle %s created", s.Name)

	case *sqlparse.CreateRelation:
		schema, err := schemaOf(s.Cols)
		if err != nil {
			return nil, err
		}
		keyCols := make([]int, len(s.Keys))
		for i, k := range s.Keys {
			idx, ok := schema.Index(k)
			if !ok {
				return nil, fmt.Errorf("chronicledb: key column %q not in relation %s", k, s.Name)
			}
			keyCols[i] = idx
		}
		if _, err := db.eng.CreateRelation(s.Name, schema, keyCols); err != nil {
			return nil, err
		}
		return db.ddlDone(s, mode, "relation %s created", s.Name)

	case *sqlparse.CreateView:
		plan, err := sqlparse.PlanView(db, s)
		if err != nil {
			return nil, err
		}
		if plan.Periodic != nil {
			_, err = db.eng.CreatePeriodicView(s.Name, plan.Def, plan.Periodic.Calendar,
				plan.Periodic.ExpireAfter, plan.Store)
			if err != nil {
				return nil, err
			}
			return db.ddlDone(s, mode, "periodic view %s created (%s, %s)",
				s.Name, plan.Info.Lang, plan.Info.IMClass())
		}
		if _, err := db.eng.CreateView(plan.Def, plan.Store, plan.Filter, plan.FilterChronicle); err != nil {
			return nil, err
		}
		return db.ddlDone(s, mode, "view %s created (%s, %s)", s.Name, plan.Info.Lang, plan.Info.IMClass())

	case *sqlparse.Append:
		total := 0
		if len(s.Parts) == 1 {
			part := s.Parts[0]
			tuples := make([]value.Tuple, len(part.Rows))
			for i, r := range part.Rows {
				tuples[i] = value.Tuple(r)
			}
			sn, err := db.eng.Append(part.Chronicle, tuples)
			if err != nil {
				return nil, err
			}
			if mode == execLive {
				db.ackWait()
			}
			return &Result{Message: fmt.Sprintf("appended %d tuple(s) at sequence number %d", len(tuples), sn)}, nil
		}
		parts := make([]engine.MutationPart, len(s.Parts))
		for i, p := range s.Parts {
			tuples := make([]value.Tuple, len(p.Rows))
			for j, r := range p.Rows {
				tuples[j] = value.Tuple(r)
			}
			parts[i] = engine.MutationPart{Chronicle: p.Chronicle, Tuples: tuples}
			total += len(tuples)
		}
		sn, err := db.eng.AppendBatch(parts)
		if err != nil {
			return nil, err
		}
		if mode == execLive {
			db.ackWait()
		}
		return &Result{Message: fmt.Sprintf("appended %d tuple(s) across %d chronicles at sequence number %d",
			total, len(parts), sn)}, nil

	case *sqlparse.DropView:
		if err := db.eng.DropView(s.Name); err != nil {
			return nil, err
		}
		db.ddlDirty.Store(true) // force the next checkpoint full (see ddlDone)
		if mode == execRecovery {
			db.ddlSeq.Add(1)
		} else if err := db.commitDDL(fmt.Sprintf("DROP VIEW %s", s.Name)); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("view %s dropped", s.Name)}, nil

	case *sqlparse.Upsert:
		for _, r := range s.Rows {
			if err := db.eng.Upsert(s.Relation, value.Tuple(r)); err != nil {
				return nil, err
			}
		}
		if mode == execLive {
			db.ackWait()
		}
		return &Result{Message: fmt.Sprintf("upserted %d tuple(s)", len(s.Rows))}, nil

	case *sqlparse.Delete:
		deleted, err := db.eng.DeleteKey(s.Relation, value.Tuple(s.Key))
		if err != nil {
			return nil, err
		}
		if !deleted {
			return &Result{Message: "no such key"}, nil
		}
		if mode == execLive {
			db.ackWait()
		}
		return &Result{Message: "deleted 1 tuple"}, nil

	case *sqlparse.Query:
		return db.query(s)

	case *sqlparse.Explain:
		return db.explain(s.View)

	case *sqlparse.Show:
		return db.show(s.What)

	case *sqlparse.Watch:
		// Exec is request/response; a changefeed needs a stream. Point the
		// caller at the surfaces that can hold one open.
		return nil, fmt.Errorf("chronicledb: WATCH streams continuously and cannot run through Exec; use the CLI, DB.Watch, or GET /watch")

	default:
		return nil, fmt.Errorf("chronicledb: unsupported statement %T", s)
	}
}

// ddlDone persists a DDL statement to the catalog and acknowledges it. It
// also flags the DDL for the incremental checkpointer: the monotonic dirty
// markers cannot see a drop (or a drop-and-recreate that resets a counter
// behind an unchanged name), so the next checkpoint after any DDL is
// written full.
func (db *DB) ddlDone(s sqlparse.Statement, mode execMode, format string, args ...any) (*Result, error) {
	db.ddlDirty.Store(true)
	if mode == execRecovery {
		// The statement came from the catalog (or a legacy WAL DDL record);
		// count it so ddlSeq ends equal to the catalog length without
		// rewriting the file it was read from.
		db.ddlSeq.Add(1)
	} else if err := db.commitDDL(renderDDL(s)); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf(format, args...)}, nil
}

// commitDDL makes one DDL statement durable and replicable: it appends the
// statement to catalog.sql (fsynced), assigns it the next catalog index,
// and stages it for the replication stream stamped with the engine's
// current LSN frontier — the record order it must follow on a follower.
// Index assignment, the catalog append, and staging all happen under db.mu
// so concurrent DDL cannot interleave catalog order and stream order
// differently.
func (db *DB) commitDDL(stmt string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.catalogPath != "" {
		f, err := db.fs.OpenFile(db.catalogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("chronicledb: catalog: %w", err)
		}
		defer f.Close()
		if _, err := fmt.Fprintf(f, "%s;\n", stmt); err != nil {
			return fmt.Errorf("chronicledb: catalog: %w", err)
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("chronicledb: catalog: %w", err)
		}
		// The first append creates catalog.sql; sync its directory entry so
		// the schema cannot vanish in a power cut after the DDL was acked.
		if !db.catalogSynced {
			if err := db.fs.SyncDir(db.opts.Dir); err != nil {
				return fmt.Errorf("chronicledb: catalog: %w", err)
			}
			db.catalogSynced = true
		}
	}
	idx := db.ddlSeq.Add(1) - 1
	if db.replSrc != nil {
		db.replSrc.StageDDL(idx, db.eng.LSN(), stmt)
	}
	return nil
}

// query answers SELECT * FROM <view|relation|chronicle>.
func (db *DB) query(q *sqlparse.Query) (*Result, error) {
	if v, ok := db.eng.View(q.From); ok {
		return db.queryView(v, q)
	}
	if r, ok := db.eng.Relation(q.From); ok {
		rows, err := db.eng.RelationRows(q.From)
		if err != nil {
			return nil, err
		}
		return filterRows(r.Schema().Names(), rows, q)
	}
	if c, ok := db.eng.Chronicle(q.From); ok {
		// Detailed queries over the retained window: SN and chronon are
		// exposed as leading pseudo-columns.
		names := append([]string{"_sn", "_chronon"}, c.Schema().Names()...)
		crows, err := db.eng.ChronicleRows(q.From)
		if err != nil {
			return nil, err
		}
		rows := make([]Row, 0, len(crows))
		for _, r := range crows {
			row := make(Row, 0, len(r.Vals)+2)
			row = append(row, value.Int(r.SN), value.Chronon(r.Chronon))
			row = append(row, r.Vals...)
			rows = append(rows, row)
		}
		return filterRows(names, rows, q)
	}
	return nil, fmt.Errorf("chronicledb: unknown view, relation, or chronicle %q", q.From)
}

// queryView answers a SELECT over a persistent view by streaming off the
// view's snapshot instead of materializing it first. Three shapes stream
// with early stop at LIMIT:
//
//   - no ORDER BY: snapshot iteration order (ascending group key);
//   - ORDER BY the leading group-key column ASC: the snapshot's B-tree
//     already yields rows in composite-key order, and sorting by a prefix
//     of that key preserves it;
//   - ORDER BY the leading group-key column DESC LIMIT n: the "latest n
//     groups" query — a descending snapshot walk stops after n matches
//     without touching the rest of the view.
//
// Any other ORDER BY column falls back to materialize-and-sort.
func (db *DB) queryView(v *view.View, q *sqlparse.Query) (*Result, error) {
	names := v.Schema().Names()
	preds, err := sqlparse.LowerWhere(names, q.Where)
	if err != nil {
		return nil, err
	}
	orderCol, err := resolveOrder(names, q)
	if err != nil {
		return nil, err
	}
	if q.OrderBy == nil || orderCol == 0 {
		var out []Row
		collect := func(t value.Tuple) bool {
			if !matchesAll(preds, t) {
				return true
			}
			out = append(out, t)
			return q.Limit <= 0 || len(out) < q.Limit
		}
		if q.OrderBy != nil && q.OrderDesc {
			err = db.eng.ViewScanDescFunc(q.From, collect)
		} else {
			err = db.eng.ViewScanFunc(q.From, collect)
		}
		if err != nil {
			return nil, err
		}
		return &Result{Columns: names, Rows: out}, nil
	}
	rows, err := db.eng.ViewRows(q.From)
	if err != nil {
		return nil, err
	}
	return filterRows(names, rows, q)
}

// resolveOrder maps ORDER BY onto a column index (-1 without ORDER BY),
// erroring on unknown columns even when results would be empty.
func resolveOrder(names []string, q *sqlparse.Query) (int, error) {
	if q.OrderBy == nil {
		return -1, nil
	}
	for i, n := range names {
		if n == q.OrderBy.Name {
			return i, nil
		}
	}
	return -1, fmt.Errorf("chronicledb: unknown ORDER BY column %q", q.OrderBy.Name)
}

func filterRows(names []string, rows []Row, q *sqlparse.Query) (*Result, error) {
	preds, err := sqlparse.LowerWhere(names, q.Where)
	if err != nil {
		return nil, err
	}
	orderCol, err := resolveOrder(names, q)
	if err != nil {
		return nil, err
	}
	out := rows[:0:0]
	for _, r := range rows {
		if matchesAll(preds, r) {
			out = append(out, r)
			if orderCol < 0 && q.Limit > 0 && len(out) >= q.Limit {
				break // without ORDER BY, LIMIT can stop the scan early
			}
		}
	}
	if orderCol >= 0 {
		sort.SliceStable(out, func(i, j int) bool {
			c := value.Compare(out[i][orderCol], out[j][orderCol])
			if q.OrderDesc {
				return c > 0
			}
			return c < 0
		})
		if q.Limit > 0 && len(out) > q.Limit {
			out = out[:q.Limit]
		}
	}
	return &Result{Columns: names, Rows: out}, nil
}

func matchesAll(preds []pred.Predicate, r Row) bool {
	for _, p := range preds {
		if !p.Eval(r) {
			return false
		}
	}
	return true
}

// explain describes a persistent or periodic view.
func (db *DB) explain(name string) (*Result, error) {
	if v, ok := db.eng.View(name); ok {
		info := v.Info()
		res := &Result{
			Columns: []string{"property", "value"},
			Rows: []Row{
				{value.Str("expression"), value.Str(v.Def().Expr.String())},
				{value.Str("summarize"), value.Str(v.Def().Mode.String())},
				{value.Str("language"), value.Str(info.Lang.String())},
				{value.Str("maintenance_class"), value.Str(info.IMClass().String())},
				{value.Str("unions_u"), value.Int(int64(info.Unions))},
				{value.Str("joins_j"), value.Int(int64(info.Joins))},
				{value.Str("rows"), value.Int(int64(v.Len()))},
			},
		}
		// Shared-delta plan: the view's interned node ids (post-order, root
		// last) with each node's cross-view consumer count, so CSE grouping
		// is inspectable from SQL — two views listing the same node id share
		// that subexpression's delta.
		if nodes, ok := db.eng.ViewSharedPlan(name); ok {
			for _, n := range nodes {
				res.Rows = append(res.Rows, Row{
					value.Str(fmt.Sprintf("plan_node_%d", n.ID)),
					value.Str(fmt.Sprintf("consumers=%d %s", n.Consumers, n.Expr)),
				})
			}
		}
		return res, nil
	}
	if pv, ok := db.eng.PeriodicView(name); ok {
		return &Result{
			Columns: []string{"property", "value"},
			Rows: []Row{
				{value.Str("calendar"), value.Str(pv.Calendar().String())},
				{value.Str("live_instances"), value.Int(int64(pv.Live()))},
				{value.Str("created"), value.Int(pv.Created())},
				{value.Str("expired"), value.Int(pv.Expired())},
			},
		}, nil
	}
	return nil, fmt.Errorf("chronicledb: unknown view %q", name)
}

// show lists catalog objects or engine statistics.
func (db *DB) show(what string) (*Result, error) {
	switch what {
	case "VIEWS":
		res := &Result{Columns: []string{"name", "language", "class", "rows"}}
		for _, n := range db.eng.ViewNames() {
			v, _ := db.eng.View(n)
			res.Rows = append(res.Rows, Row{
				value.Str(n), value.Str(v.Lang().String()),
				value.Str(v.IMClass().String()), value.Int(int64(v.Len())),
			})
		}
		for _, n := range db.eng.PeriodicViewNames() {
			pv, _ := db.eng.PeriodicView(n)
			res.Rows = append(res.Rows, Row{
				value.Str(n + " (periodic)"), value.Str(pv.Calendar().String()),
				value.Str(""), value.Int(int64(pv.Live())),
			})
		}
		return res, nil
	case "CHRONICLES":
		res := &Result{Columns: []string{"name", "group", "retained", "total", "last_sn"}}
		for _, n := range db.eng.ChronicleNames() {
			c, _ := db.eng.Chronicle(n)
			res.Rows = append(res.Rows, Row{
				value.Str(n), value.Str(c.Group().Name()),
				value.Int(int64(c.Len())), value.Int(c.Total()), value.Int(c.LastSN()),
			})
		}
		return res, nil
	case "RELATIONS":
		res := &Result{Columns: []string{"name", "rows", "updates"}}
		for _, n := range db.eng.RelationNames() {
			r, _ := db.eng.Relation(n)
			res.Rows = append(res.Rows, Row{value.Str(n), value.Int(int64(r.Len())), value.Int(r.Updates())})
		}
		return res, nil
	case "GROUPS":
		res := &Result{Columns: []string{"name", "chronicles", "last_sn"}}
		for _, n := range db.eng.GroupNames() {
			g, _ := db.eng.Group(n)
			res.Rows = append(res.Rows, Row{
				value.Str(n), value.Int(int64(len(g.Members()))), value.Int(g.LastSN()),
			})
		}
		return res, nil
	case "STATS":
		st := db.eng.Stats()
		lat := db.eng.MaintenanceLatency()
		ws := db.WALStats()
		rs := db.ReadStats()
		dedupEntries, dedupHits, dedupEvictions := db.DedupStats()
		fs := db.FeedStats()
		snapAge := "no snapshots"
		if age := db.SnapshotAge(); age > 0 {
			snapAge = fmt.Sprintf("%.1fms", float64(age)/1e6)
		}
		res := &Result{
			Columns: []string{"stat", "value"},
			Rows: []Row{
				{value.Str("appends"), value.Int(st.Appends)},
				{value.Str("tuples_appended"), value.Int(st.TuplesAppended)},
				{value.Str("relation_updates"), value.Int(st.RelationUpdates)},
				{value.Str("views_maintained"), value.Int(st.ViewsMaintained)},
				{value.Str("maintenance_ns"), value.Int(st.MaintenanceNs)},
				{value.Str("maintenance_latency"), value.Str(lat.String())},
				{value.Str("maint_shared_hits"), value.Int(st.SharedHits)},
				{value.Str("maint_workers"), value.Int(int64(db.eng.MaintWorkers()))},
				{value.Str("read_lookups"), value.Int(rs.Lookups)},
				{value.Str("read_scans"), value.Int(rs.Scans)},
				{value.Str("read_latency"), value.Str(rs.Latency.String())},
				{value.Str("snapshot_age"), value.Str(snapAge)},
				{value.Str("allocs_per_append"), value.Str(fmt.Sprintf("%.1f", ws.AllocsPerOp))},
				{value.Str("wal_records"), value.Int(ws.Records)},
				{value.Str("wal_fsyncs"), value.Int(ws.Fsyncs)},
				{value.Str("fsyncs_per_sec"), value.Str(fmt.Sprintf("%.1f", ws.FsyncsPerSec))},
				{value.Str("commit_batch_records"), value.Str(formatBatchSnapshot(ws.Batches))},
				{value.Str("wal_segments"), value.Int(int64(ws.Segments))},
				{value.Str("wal_sealed_segments"), value.Int(int64(ws.SealedSegments))},
				{value.Str("wal_segment_cap"), value.Int(ws.SegmentCap)},
				{value.Str("wal_live_bytes"), value.Int(ws.LiveBytes)},
				{value.Str("wal_rotations"), value.Int(ws.Rotations)},
				{value.Str("wal_reclaimed_bytes"), value.Int(ws.ReclaimedBytes)},
				{value.Str("wal_segments_reclaimed"), value.Int(ws.SegmentsReclaimed)},
				{value.Str("checkpoint_chain_len"), value.Int(int64(ws.Checkpoints))},
				{value.Str("checkpoint_full_total"), value.Int(ws.CheckpointsFull)},
				{value.Str("checkpoint_incremental_total"), value.Int(ws.CheckpointsIncremental)},
				{value.Str("checkpoints_folded"), value.Int(ws.CheckpointsFolded)},
				{value.Str("last_checkpoint_lsn"), value.Int(int64(ws.LastCheckpointLSN))},
				{value.Str("view_cache_hits"), value.Int(ws.ViewCacheHits)},
				{value.Str("view_cache_misses"), value.Int(ws.ViewCacheMisses)},
				{value.Str("view_cache_evictions"), value.Int(ws.ViewCacheEvictions)},
				{value.Str("view_cache_bytes"), value.Int(ws.ViewCacheBytes)},
				{value.Str("view_cache_budget"), value.Int(ws.ViewCacheBudget)},
				{value.Str("ckpt_dirty_blocks"), value.Int(ws.CkptDirtyBlocks)},
				{value.Str("ckpt_total_blocks"), value.Int(ws.CkptTotalBlocks)},
				{value.Str("dedup_entries"), value.Int(int64(dedupEntries))},
				{value.Str("dedup_hits"), value.Int(dedupHits)},
				{value.Str("dedup_evictions"), value.Int(dedupEvictions)},
				{value.Str("feed_subscribers"), value.Int(fs.Subscribers)},
				{value.Str("feed_subscribed_total"), value.Int(int64(fs.SubscribedTotal))},
				{value.Str("feed_published"), value.Int(int64(fs.Published))},
				{value.Str("feed_rows_published"), value.Int(int64(fs.RowsPublished))},
				{value.Str("feed_dropped_slow"), value.Int(int64(fs.DroppedSlow))},
				{value.Str("feed_catchups_tail"), value.Int(int64(fs.CatchupsTail))},
				{value.Str("feed_catchups_snapshot"), value.Int(int64(fs.CatchupsSnapshot))},
				{value.Str("feed_evicted"), value.Int(int64(fs.Evicted))},
			},
		}
		// Per-view maintenance attribution: the top-5 slowest views by
		// accumulated fold time, so "where does maintenance_ns go" is
		// answerable without profiling.
		for i, vs := range db.MaintAttribution(5) {
			res.Rows = append(res.Rows, Row{
				value.Str(fmt.Sprintf("maint_top_%d", i+1)),
				value.Str(fmt.Sprintf("%s apply_ns=%d delta_rows=%d applies=%d", vs.Name, vs.ApplyNs, vs.DeltaRows, vs.Applies)),
			})
		}
		return res, nil
	default:
		return nil, fmt.Errorf("chronicledb: cannot SHOW %s", what)
	}
}

func schemaOf(cols []sqlparse.ColumnDef) (*value.Schema, error) {
	vcols := make([]value.Column, len(cols))
	seen := map[string]bool{}
	for i, c := range cols {
		if seen[c.Name] {
			return nil, fmt.Errorf("chronicledb: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
		vcols[i] = value.Column{Name: c.Name, Kind: c.Kind}
	}
	return value.NewSchema(vcols...), nil
}

// renderDDL reconstructs statement text for the catalog. Rather than
// re-printing the AST, the executor records the original statements; this
// helper renders the subset of statements that reach it.
func renderDDL(s sqlparse.Statement) string {
	switch s := s.(type) {
	case *sqlparse.CreateGroup:
		return fmt.Sprintf("CREATE GROUP %s", s.Name)
	case *sqlparse.CreateChronicle:
		var b strings.Builder
		fmt.Fprintf(&b, "CREATE CHRONICLE %s (", s.Name)
		for i, c := range s.Cols {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %s", c.Name, strings.ToUpper(c.Kind.String()))
		}
		b.WriteString(")")
		if s.Group != "" {
			fmt.Fprintf(&b, " IN GROUP %s", s.Group)
		}
		if s.Retain != nil {
			switch *s.Retain {
			case -1:
				b.WriteString(" RETAIN ALL")
			case 0:
				b.WriteString(" RETAIN NONE")
			default:
				fmt.Fprintf(&b, " RETAIN %d", *s.Retain)
			}
		}
		if s.Window != nil {
			fmt.Fprintf(&b, " WINDOW %d", *s.Window)
		}
		return b.String()
	case *sqlparse.CreateRelation:
		var b strings.Builder
		fmt.Fprintf(&b, "CREATE RELATION %s (", s.Name)
		for i, c := range s.Cols {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %s", c.Name, strings.ToUpper(c.Kind.String()))
		}
		fmt.Fprintf(&b, ", KEY(%s))", strings.Join(s.Keys, ", "))
		return b.String()
	case *sqlparse.CreateView:
		return renderCreateView(s)
	default:
		panic(fmt.Sprintf("chronicledb: renderDDL(%T)", s))
	}
}

func renderCreateView(s *sqlparse.CreateView) string {
	var b strings.Builder
	if s.Periodic != nil {
		fmt.Fprintf(&b, "CREATE PERIODIC VIEW %s AS SELECT ", s.Name)
	} else {
		fmt.Fprintf(&b, "CREATE VIEW %s AS SELECT ", s.Name)
	}
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	if s.Star {
		b.WriteString("*")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Agg != "" && it.Star:
			fmt.Fprintf(&b, "%s(*)", it.Agg)
		case it.Agg != "":
			fmt.Fprintf(&b, "%s(%s)", it.Agg, refText(it.Col))
		default:
			b.WriteString(refText(it.Col))
		}
		if it.As != "" {
			fmt.Fprintf(&b, " AS %s", it.As)
		}
	}
	fmt.Fprintf(&b, " FROM %s", s.From)
	for _, j := range s.Joins {
		if j.Cross {
			fmt.Fprintf(&b, " CROSS JOIN %s", j.Relation)
			continue
		}
		if j.OnSN {
			fmt.Fprintf(&b, " JOIN %s ON SN", j.Relation)
			continue
		}
		fmt.Fprintf(&b, " JOIN %s ON ", j.Relation)
		for i, c := range j.On {
			if i > 0 {
				b.WriteString(" AND ")
			}
			fmt.Fprintf(&b, "%s %s %s", refText(c.Left), c.Op, refText(*c.RightCol))
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		for gi, group := range s.Where.Conj {
			if gi > 0 {
				b.WriteString(" AND ")
			}
			if len(group) > 1 {
				b.WriteString("(")
			}
			for ci, c := range group {
				if ci > 0 {
					b.WriteString(" OR ")
				}
				b.WriteString(condText(c))
			}
			if len(group) > 1 {
				b.WriteString(")")
			}
		}
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(refText(g))
		}
	}
	if s.Periodic != nil {
		fmt.Fprintf(&b, " EVERY %d", s.Periodic.Period)
		if s.Periodic.Width != 0 && s.Periodic.Width != s.Periodic.Period {
			fmt.Fprintf(&b, " WIDTH %d", s.Periodic.Width)
		}
		if s.Periodic.Offset != 0 {
			fmt.Fprintf(&b, " OFFSET %d", s.Periodic.Offset)
		}
		if s.Periodic.Expire != nil {
			fmt.Fprintf(&b, " EXPIRE %d", *s.Periodic.Expire)
		}
	}
	if s.Store != "" {
		fmt.Fprintf(&b, " WITH STORE %s", s.Store)
	}
	return b.String()
}

func refText(c sqlparse.ColRef) string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// formatBatchSnapshot renders the group-commit batch-size distribution.
// The histogram reuses the duration machinery to count records per fsync,
// so the fields are rendered as plain integers, not durations.
func formatBatchSnapshot(s stats.Snapshot) string {
	if s.Count == 0 {
		return "no commits"
	}
	return fmt.Sprintf("n=%d mean=%.1f min=%d p50≤%d p95≤%d max=%d",
		s.Count, float64(s.Mean), int64(s.Min), int64(s.P50), int64(s.P95), int64(s.Max))
}

func condText(c sqlparse.Cond) string {
	if c.RightCol != nil {
		return fmt.Sprintf("%s %s %s", refText(c.Left), c.Op, refText(*c.RightCol))
	}
	if c.Right.Kind() == value.KindString {
		return fmt.Sprintf("%s %s '%s'", refText(c.Left), c.Op,
			strings.ReplaceAll(c.Right.AsString(), "'", "''"))
	}
	return fmt.Sprintf("%s %s %s", refText(c.Left), c.Op, c.Right)
}
