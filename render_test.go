package chronicledb

import (
	"reflect"
	"testing"

	"chronicledb/internal/sqlparse"
)

// TestRenderDDLRoundTrip: every DDL statement the executor accepts must
// survive render → reparse → replan with an identical plan. The catalog
// file is exactly these rendered statements, so this is the recovery
// correctness property for schemas.
func TestRenderDDLRoundTrip(t *testing.T) {
	ddl := []string{
		`CREATE GROUP g`,
		`CREATE CHRONICLE calls (acct STRING, minutes INT, cost FLOAT, ok BOOL, at TIME) IN GROUP g RETAIN 100 WINDOW 5000`,
		`CREATE CHRONICLE payments (acct STRING, amount FLOAT) IN GROUP g RETAIN NONE`,
		`CREATE CHRONICLE audit (who STRING, what STRING) RETAIN ALL`,
		`CREATE RELATION customers (acct STRING, state STRING, tier INT, KEY(acct))`,
		`CREATE VIEW v1 AS SELECT calls.acct, SUM(minutes) AS m, COUNT(*) AS n, AVG(cost) AS mean,
			MIN(cost) AS lo, MAX(cost) AS hi, STDDEV(cost) AS sd
			FROM calls GROUP BY calls.acct WITH STORE BTREE`,
		`CREATE VIEW v2 AS SELECT state, SUM(cost) AS revenue FROM calls
			JOIN customers ON calls.acct = customers.acct
			WHERE minutes > 0 AND (state = 'nj' OR state = 'n''y')
			GROUP BY state`,
		`CREATE VIEW v3 AS SELECT DISTINCT calls.acct FROM calls CROSS JOIN customers`,
		`CREATE VIEW v4 AS SELECT calls.acct, SUM(amount) AS paid FROM calls
			JOIN payments ON SN GROUP BY calls.acct`,
		`CREATE PERIODIC VIEW v5 AS SELECT acct, SUM(minutes) AS m FROM calls GROUP BY acct
			EVERY 100 WIDTH 300 OFFSET 7 EXPIRE 50`,
		`CREATE VIEW v6 AS SELECT acct, COUNT(*) AS n FROM calls WHERE cost >= 1.5 AND at != NULL GROUP BY acct`,
	}

	// Execute the originals in one database.
	db1 := memDB(t)
	for _, stmt := range ddl {
		mustExec(t, db1, stmt)
	}

	// Render each statement and execute the rendered text in a second
	// database; the catalogs must agree statement by statement.
	db2 := memDB(t)
	for _, stmt := range ddl {
		parsed, err := sqlparse.ParseOne(stmt)
		if err != nil {
			t.Fatalf("parse %q: %v", stmt, err)
		}
		rendered := renderDDL(parsed)
		reparsed, err := sqlparse.ParseOne(rendered)
		if err != nil {
			t.Fatalf("reparse %q: %v", rendered, err)
		}
		if !reflect.DeepEqual(parsed, reparsed) {
			t.Errorf("render round trip changed the AST:\n  original: %q\n  rendered: %q\n  %#v\n  vs\n  %#v",
				stmt, rendered, parsed, reparsed)
		}
		mustExec(t, db2, rendered)
	}

	// The two databases end with identical schemas and view classifications.
	for _, viewName := range db1.Engine().ViewNames() {
		v1, _ := db1.View(viewName)
		v2, ok := db2.View(viewName)
		if !ok {
			t.Fatalf("view %s missing after rendered DDL", viewName)
		}
		if !v1.Schema().Equal(v2.Schema()) {
			t.Errorf("view %s schema drift: %s vs %s", viewName, v1.Schema(), v2.Schema())
		}
		if v1.Lang() != v2.Lang() || v1.IMClass() != v2.IMClass() {
			t.Errorf("view %s classification drift", viewName)
		}
		if v1.Def().Expr.String() != v2.Def().Expr.String() {
			t.Errorf("view %s expression drift:\n  %s\n  vs\n  %s",
				viewName, v1.Def().Expr, v2.Def().Expr)
		}
	}
	// Both databases behave identically on the same appends.
	for _, db := range []*DB{db1, db2} {
		mustExec(t, db, `UPSERT INTO customers VALUES ('a', 'nj', 1)`)
		mustExec(t, db, `APPEND INTO calls VALUES ('a', 10, 2.5, TRUE, NULL)`)
	}
	r1, ok1, _ := db1.Lookup("v2", Str("nj"))
	r2, ok2, _ := db2.Lookup("v2", Str("nj"))
	if !ok1 || !ok2 || r1.String() != r2.String() {
		t.Errorf("post-replay behavior drift: %v/%v vs %v/%v", r1, ok1, r2, ok2)
	}
}
