module chronicledb

go 1.24
