// Allocation-regression guards for the append hot path. The paper's
// constant-per-append maintenance claim (Theorem 4.2) only shows up at
// hardware speed if the append→dispatch→delta→maintain path stops
// allocating once warm, so these guards pin the steady-state allocation
// counts measured after the zero-allocation pass: the micro paths are
// exactly zero, the end-to-end engine append is allowed a small fixed
// budget. `make bench-allocs` (wired into `make check`) fails the build if
// any of them regress.
package chronicledb_test

import (
	"fmt"
	"testing"

	chronicledb "chronicledb"
	"chronicledb/internal/aggregate"
	"chronicledb/internal/bench"
	"chronicledb/internal/chronicle"
	feedpkg "chronicledb/internal/feed"
	"chronicledb/internal/keyenc"
	"chronicledb/internal/value"
	"chronicledb/internal/view"
)

// allocGuard asserts the steady-state allocation count of fn.
func allocGuard(t *testing.T, name string, max float64, fn func()) {
	t.Helper()
	got := testing.AllocsPerRun(1000, fn)
	if got > max {
		t.Errorf("%s: %.1f allocs/op, budget %.1f — the hot path regressed", name, got, max)
	} else {
		t.Logf("%s: %.1f allocs/op (budget %.1f)", name, got, max)
	}
}

func TestAllocGuards(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}

	t.Run("keyenc", func(t *testing.T) {
		// Key build into a reused buffer: the view store's per-apply path.
		tup := value.Tuple{value.Str("acct-0007"), value.Int(42)}
		cols := []int{0}
		var buf []byte
		allocGuard(t, "keyenc.AppendCols", 0, func() {
			buf = keyenc.AppendCols(buf[:0], tup, cols)
		})
	})

	t.Run("aggregate-step", func(t *testing.T) {
		st := aggregate.NewState(aggregate.Sum)
		v := value.Int(3)
		allocGuard(t, "sum.Step", 0, func() { st.Step(v) })
	})

	t.Run("view-apply", func(t *testing.T) {
		// Warm view, existing group: the per-append maintenance step.
		w, err := bench.NewTelecom(64, chronicle.RetainNone, false)
		if err != nil {
			t.Fatal(err)
		}
		vw := bench.MustView(w.UsageDef("usage"), view.StoreHash)
		rows := []chronicle.Row{{SN: 1, Vals: value.Tuple{
			value.Str(bench.Acct(3)), value.Int(7), value.Float(0.1)}}}
		for i := 0; i < 100; i++ {
			vw.ApplyRows(rows)
		}
		allocGuard(t, "view.ApplyRows", 0, func() { vw.ApplyRows(rows) })
	})

	t.Run("feed-fanout", func(t *testing.T) {
		// The changefeed publish path: one committed delta fanned out to 8
		// subscribers. Frames are pooled and rings preallocated, so the
		// budget is ≤1 alloc per delta per subscriber.
		h := feedpkg.NewHub(feedpkg.Config{Ring: 64, TailFrames: 64})
		d := feedpkg.NewDoor()
		const subs = 8
		subscribers := make([]*feedpkg.Subscription, subs)
		for i := range subscribers {
			sub, _ := h.Subscribe("v", 0, false)
			defer sub.Close()
			subscribers[i] = sub
		}
		rows := []chronicle.Row{{SN: 1, Chronon: 1, Vals: value.Tuple{value.Str("a"), value.Int(1)}}}
		frames := make([][]*feedpkg.Frame, subs)
		lsn := uint64(0)
		step := func() {
			lsn++
			rows[0].LSN = lsn
			b := h.Begin(d)
			b.Capture("v", lsn, rows)
			b.Publish()
			for i, sub := range subscribers {
				frames[i] = sub.Drain(frames[i][:0])
				for _, f := range frames[i] {
					f.Release()
				}
			}
		}
		for i := 0; i < 200; i++ {
			step() // warm the frame pool and the tail ring
		}
		allocGuard(t, "feed.Publish fan-out (8 subscribers)", subs, step)
	})

	t.Run("engine-append", func(t *testing.T) {
		// The full kernel path with 64 per-account filtered views (the E13
		// workload): append → WAL-less record → dispatch → delta → maintain.
		db, err := chronicledb.Open(chronicledb.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT)`); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			stmt := fmt.Sprintf(`CREATE VIEW v%d AS SELECT acct, SUM(minutes) AS m
				FROM calls WHERE acct = '%s' GROUP BY acct`, i, bench.Acct(i))
			if _, err := db.Exec(stmt); err != nil {
				t.Fatal(err)
			}
		}
		tuple := chronicledb.Tuple{chronicledb.Str(bench.Acct(7)), chronicledb.Int(3)}
		for i := 0; i < 200; i++ {
			if _, err := db.Append("calls", tuple); err != nil {
				t.Fatal(err)
			}
		}
		// Measured steady state is 1 alloc/op (was 11 before the
		// zero-allocation pass); 2 leaves headroom for runtime changes
		// while still catching any real regression.
		allocGuard(t, "db.Append", 2, func() {
			if _, err := db.Append("calls", tuple); err != nil {
				t.Fatal(err)
			}
		})
	})
}
