// Tests for the embedded changefeed API: DB.Watch streaming snapshot
// catch-up and live deltas with gapless, duplicate-free LSN cursors, in
// both the single-engine and sharded kernels, plus the fan-out stress run
// `make watch-stress` executes under -race.
package chronicledb_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	chronicledb "chronicledb"
)

// openFeedDB opens an in-memory database with changefeeds on.
func openFeedDB(t *testing.T, shards int) *chronicledb.DB {
	t.Helper()
	db, err := chronicledb.Open(chronicledb.Options{Feed: true, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE VIEW usage AS SELECT acct, COUNT(*) AS n, SUM(minutes) AS total FROM calls GROUP BY acct`); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestWatchRequiresFeedOption(t *testing.T) {
	db, err := chronicledb.Open(chronicledb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	err = db.Watch(context.Background(), "v", 0, false, func(chronicledb.WatchEvent) bool { return true })
	if err == nil {
		t.Fatal("Watch without Options.Feed must error")
	}
}

func TestWatchUnknownView(t *testing.T) {
	db := openFeedDB(t, 0)
	err := db.Watch(context.Background(), "nope", 0, false, func(chronicledb.WatchEvent) bool { return true })
	if err == nil {
		t.Fatal("Watch of an unknown view must error")
	}
}

// TestWatchSnapshotThenDeltas is the core splice contract: a fresh watch
// first sees the view's contents at some LSN S, then every delta with
// LSN > S, strictly increasing, none missing, none repeated. An aggregate
// view's delta rows are the projected source rows (one per appended row;
// maintenance folds them into the groups), so the snapshot's count plus
// the number of delta rows received must land exactly on the final total:
// a gap undercounts, a duplicate overcounts.
func TestWatchSnapshotThenDeltas(t *testing.T) {
	for _, shards := range []int{0, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db := openFeedDB(t, shards)
			// Pre-watch history: the snapshot must cover it.
			for i := 0; i < 5; i++ {
				if _, err := db.Exec(`APPEND INTO calls VALUES ('a', 1)`); err != nil {
					t.Fatal(err)
				}
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()

			const liveAppends = 20
			type got struct {
				snapshotN int64 // count column in the snapshot row
				snapLSN   uint64
				deltas    []uint64 // LSNs
				sum       int64    // delta rows received (one per append)
			}
			var g got
			done := make(chan error, 1)
			started := make(chan struct{})
			go func() {
				first := true
				done <- db.Watch(ctx, "usage", 0, false, func(ev chronicledb.WatchEvent) bool {
					if first {
						close(started)
						first = false
					}
					switch ev.Kind {
					case chronicledb.WatchSnapshot:
						g.snapLSN = ev.LSN
						for _, r := range ev.Rows {
							g.snapshotN = r[1].AsInt()
						}
					case chronicledb.WatchDelta:
						g.deltas = append(g.deltas, ev.LSN)
						g.sum += int64(len(ev.Deltas))
					}
					return g.snapshotN+g.sum < 5+liveAppends
				})
			}()
			<-started
			for i := 0; i < liveAppends; i++ {
				if _, err := db.Exec(`APPEND INTO calls VALUES ('a', 1)`); err != nil {
					t.Fatal(err)
				}
			}
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("watch did not finish; got %d deltas (snapshot %d + sum %d)",
					len(g.deltas), g.snapshotN, g.sum)
			}

			if g.snapshotN != 5 {
				t.Fatalf("snapshot count = %d, want 5", g.snapshotN)
			}
			last := g.snapLSN
			for _, lsn := range g.deltas {
				if lsn <= last {
					t.Fatalf("delta LSN %d not above previous %d", lsn, last)
				}
				last = lsn
			}
			// Every live append contributed exactly once past the snapshot.
			if g.sum != liveAppends {
				t.Fatalf("delta rows = %d, want %d (gap or duplicate)", g.sum, liveAppends)
			}
		})
	}
}

// TestWatchResumeCursor stops a watch mid-stream and resumes with the last
// delivered LSN: the continuation starts exactly one past the cursor.
func TestWatchResumeCursor(t *testing.T) {
	db := openFeedDB(t, 0)
	for i := 0; i < 10; i++ {
		if _, err := db.Exec(`APPEND INTO calls VALUES ('a', 1)`); err != nil {
			t.Fatal(err)
		}
	}
	// First leg: snapshot resume, stop after 0 deltas (snapshot only).
	var cursor uint64
	err := db.Watch(context.Background(), "usage", 0, false, func(ev chronicledb.WatchEvent) bool {
		cursor = ev.LSN
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if cursor == 0 {
		t.Fatal("snapshot carried no LSN")
	}
	for i := 0; i < 5; i++ {
		if _, err := db.Exec(`APPEND INTO calls VALUES ('a', 1)`); err != nil {
			t.Fatal(err)
		}
	}
	// Second leg: resume from the cursor; exactly the 5 new deltas arrive
	// (one source row each), with LSNs strictly above the cursor.
	var sum int64
	var lsns []uint64
	err = db.Watch(context.Background(), "usage", cursor, true, func(ev chronicledb.WatchEvent) bool {
		if ev.Kind == chronicledb.WatchSnapshot {
			t.Error("cursor within the tail window must not replay a snapshot")
		}
		if ev.Kind == chronicledb.WatchDelta {
			lsns = append(lsns, ev.LSN)
			sum += int64(len(ev.Deltas))
		}
		return sum < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 5 {
		t.Fatalf("resumed delta rows = %d, want 5 (gap or duplicate)", sum)
	}
	last := cursor
	for _, lsn := range lsns {
		if lsn <= last {
			t.Fatalf("resumed LSNs = %v, want strictly increasing above cursor %d", lsns, cursor)
		}
		last = lsn
	}
}

// TestWatchSlowConsumerShed wedges a subscriber behind a tiny ring: the
// hub must shed it with a terminal "slow" event instead of stalling the
// append path.
func TestWatchSlowConsumerShed(t *testing.T) {
	db, err := chronicledb.Open(chronicledb.Options{Feed: true, FeedRing: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE VIEW usage AS SELECT acct, COUNT(*) AS n FROM calls GROUP BY acct`); err != nil {
		t.Fatal(err)
	}

	block := make(chan struct{})
	var end chronicledb.WatchEvent
	done := make(chan error, 1)
	started := make(chan struct{})
	var startOnce sync.Once
	go func() {
		done <- db.Watch(context.Background(), "usage", 0, false, func(ev chronicledb.WatchEvent) bool {
			startOnce.Do(func() { close(started) })
			if ev.Kind == chronicledb.WatchEnd {
				end = ev
				return true
			}
			<-block // wedge: never drain while appends flood in
			return true
		})
	}()
	<-started
	for i := 0; i < 10; i++ {
		if _, err := db.Exec(`APPEND INTO calls VALUES ('a', 1)`); err != nil {
			t.Fatal(err)
		}
	}
	close(block)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shed subscriber's watch never terminated")
	}
	if end.Reason != "slow" {
		t.Fatalf("terminal reason = %q, want slow", end.Reason)
	}
	if st := db.FeedStats(); st.DroppedSlow != 1 {
		t.Fatalf("DroppedSlow = %d, want 1", st.DroppedSlow)
	}
}

// TestWatchStress is the fan-out race test `make watch-stress` runs under
// -race: many subscribers watch two views while concurrent appenders
// write to both chronicles; every subscriber must observe a strictly
// increasing, gapless per-account count sequence from its snapshot on.
func TestWatchStress(t *testing.T) {
	const (
		subscribers = 12
		appenders   = 4
		appendsEach = 150
	)
	for _, shards := range []int{0, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db, err := chronicledb.Open(chronicledb.Options{Feed: true, Shards: shards, FeedRing: 4096})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT)`); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Exec(`CREATE VIEW usage AS SELECT acct, COUNT(*) AS n FROM calls GROUP BY acct`); err != nil {
				t.Fatal(err)
			}

			total := int64(appenders * appendsEach)
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()

			var wg sync.WaitGroup
			errs := make(chan error, subscribers+appenders)
			for s := 0; s < subscribers; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					// Conservation per account: the snapshot count plus the
					// number of delta rows must land exactly on appendsEach
					// (each delta row is one appended source row). A gap
					// leaves the total short (the watch never finishes); a
					// duplicate overshoots it.
					acctN := map[string]int64{}
					var lastLSN uint64
					seen := int64(0)
					err := db.Watch(ctx, "usage", 0, false, func(ev chronicledb.WatchEvent) bool {
						switch ev.Kind {
						case chronicledb.WatchSnapshot:
							lastLSN = ev.LSN
							for _, r := range ev.Rows {
								acctN[r[0].AsString()] = r[1].AsInt()
								seen += r[1].AsInt()
							}
						case chronicledb.WatchDelta:
							if ev.LSN <= lastLSN {
								errs <- fmt.Errorf("subscriber %d: LSN %d after %d", s, ev.LSN, lastLSN)
								return false
							}
							lastLSN = ev.LSN
							for _, d := range ev.Deltas {
								acctN[d.Vals[0].AsString()]++
								seen++
							}
						case chronicledb.WatchEnd:
							errs <- fmt.Errorf("subscriber %d: shed (%s)", s, ev.Reason)
							return false
						}
						return seen < total
					})
					if err != nil && ctx.Err() == nil {
						errs <- fmt.Errorf("subscriber %d: %v", s, err)
						return
					}
					if ctx.Err() != nil {
						return // timeout reported once below
					}
					if seen != total {
						errs <- fmt.Errorf("subscriber %d: saw %d rows, want %d (duplicate delivery)", s, seen, total)
					}
					for a := 0; a < appenders; a++ {
						acct := fmt.Sprintf("acct-%d", a)
						if acctN[acct] != appendsEach {
							errs <- fmt.Errorf("subscriber %d: %s total %d, want %d", s, acct, acctN[acct], appendsEach)
						}
					}
				}(s)
			}
			for a := 0; a < appenders; a++ {
				wg.Add(1)
				go func(a int) {
					defer wg.Done()
					stmt := fmt.Sprintf(`APPEND INTO calls VALUES ('acct-%d', 1)`, a)
					for i := 0; i < appendsEach; i++ {
						if _, err := db.Exec(stmt); err != nil {
							errs <- fmt.Errorf("appender %d: %v", a, err)
							return
						}
					}
				}(a)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			if ctx.Err() != nil {
				t.Fatal("stress run timed out before every subscriber caught up")
			}
		})
	}
}
