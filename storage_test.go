package chronicledb

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chronicledb/internal/fault"
	"chronicledb/internal/wal"
)

// storageDDL is the small schema the segmented-layout tests share.
const storageDDL = `
	CREATE CHRONICLE items (k STRING, n INT);
	CREATE VIEW totals AS SELECT k, SUM(n) AS total, COUNT(*) AS cnt FROM items GROUP BY k;
`

func lookupTotals(t *testing.T, db *DB, key string) (total, cnt int64) {
	t.Helper()
	row, ok, err := db.Lookup("totals", Str(key))
	if err != nil || !ok {
		t.Fatalf("totals(%s) = %v %v %v", key, row, ok, err)
	}
	return row[1].AsInt(), row[2].AsInt()
}

// TestSegmentRotationAndReopen: a small cap forces rotations mid-stream;
// every segment must land in the manifest and recovery must replay the
// whole chain back into the exact view state.
func TestSegmentRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, WALSegmentBytes: 256}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, storageDDL)
	var want int64
	for i := int64(1); i <= 100; i++ {
		if _, err := db.Append("items", Tuple{Str("a"), Int(i)}); err != nil {
			t.Fatal(err)
		}
		want += i
	}
	w := db.WALStats()
	if !w.Segmented || w.SegmentCap != 256 {
		t.Fatalf("WALStats segmented gauges = %+v", w)
	}
	if w.Rotations == 0 || w.Segments < 2 || w.SealedSegments == 0 {
		t.Errorf("expected rotations under a 256-byte cap: %+v", w)
	}
	if total, cnt := lookupTotals(t, db, "a"); total != want || cnt != 100 {
		t.Errorf("live totals = %d/%d, want %d/100", total, cnt, want)
	}
	db.Close()

	// The manifest must reference exactly the .wal files on disk.
	m, ok, err := wal.ReadManifest(dir)
	if err != nil || !ok || m.Version != 2 {
		t.Fatalf("manifest = %+v %v %v", m, ok, err)
	}
	onDisk := map[string]bool{}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".wal") {
			onDisk[e.Name()] = true
		}
	}
	if len(onDisk) != len(m.Live) {
		t.Errorf("%d .wal files on disk, manifest lists %d", len(onDisk), len(m.Live))
	}
	for _, s := range m.Live {
		if !onDisk[s.Name] {
			t.Errorf("manifest references missing segment %s", s.Name)
		}
	}

	db2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if total, cnt := lookupTotals(t, db2, "a"); total != want || cnt != 100 {
		t.Errorf("recovered totals = %d/%d, want %d/100", total, cnt, want)
	}
	// Appends continue on the recovered active segment.
	if _, err := db2.Append("items", Tuple{Str("a"), Int(1)}); err != nil {
		t.Fatal(err)
	}
	if total, _ := lookupTotals(t, db2, "a"); total != want+1 {
		t.Errorf("post-recovery append: total = %d", total)
	}
}

// TestSegmentedCheckpointChain: incremental checkpoints chain between full
// folds, the compactor reclaims sealed segments below the tip, and both
// the chain and the live segment set stay bounded as the workload runs.
func TestSegmentedCheckpointChain(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, WALSegmentBytes: 256, CheckpointFullEvery: 3}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, storageDDL)
	var want int64
	var n int64
	for round := 0; round < 8; round++ {
		for i := int64(1); i <= 20; i++ {
			if _, err := db.Append("items", Tuple{Str("a"), Int(i)}); err != nil {
				t.Fatal(err)
			}
			want += i
			n++
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	w := db.WALStats()
	if w.CheckpointsFull < 2 {
		t.Errorf("CheckpointsFull = %d, want >= 2 (first + folds)", w.CheckpointsFull)
	}
	if w.CheckpointsIncremental < 2 {
		t.Errorf("CheckpointsIncremental = %d, want >= 2", w.CheckpointsIncremental)
	}
	if w.CheckpointsFolded == 0 {
		t.Error("no chain entries folded")
	}
	if w.SegmentsReclaimed == 0 || w.ReclaimedBytes == 0 {
		t.Errorf("compaction reclaimed nothing: %+v", w)
	}
	if w.Checkpoints > 3 {
		t.Errorf("chain length %d not bounded by fold period 3", w.Checkpoints)
	}
	// Every record up to the last checkpoint is covered by the chain, so
	// the live set is only the checkpoint-to-now tail: far fewer segments
	// than were ever created.
	created := int(w.Rotations) + 1
	if w.Segments >= created {
		t.Errorf("live segments %d not reclaimed (created %d)", w.Segments, created)
	}
	if w.LastCheckpointLSN == 0 {
		t.Error("LastCheckpointLSN = 0 after checkpoints")
	}
	db.Close()

	db2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if total, cnt := lookupTotals(t, db2, "a"); total != want || cnt != n {
		t.Errorf("recovered totals = %d/%d, want %d/%d", total, cnt, want, n)
	}
	// Incremental images restore chained: another write/checkpoint cycle
	// on the recovered DB stays consistent.
	if _, err := db2.Append("items", Tuple{Str("a"), Int(5)}); err != nil {
		t.Fatal(err)
	}
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if total, _ := lookupTotals(t, db2, "a"); total != want+5 {
		t.Errorf("post-recovery totals = %d, want %d", total, want+5)
	}
}

// TestCheckpointSkipsWhenIdle: an incremental checkpoint with nothing
// dirty writes no chain entry (the periodic ticker on an idle DB must not
// grow the chain).
func TestCheckpointSkipsWhenIdle(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, CheckpointFullEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, storageDDL)
	if _, err := db.Append("items", Tuple{Str("a"), Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil { // full (first)
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := db.Checkpoint(); err != nil { // idle: must be a no-op
			t.Fatal(err)
		}
	}
	w := db.WALStats()
	if w.Checkpoints != 1 || w.CheckpointsIncremental != 0 {
		t.Errorf("idle checkpoints not skipped: %+v", w)
	}
}

// TestLayoutConversions reopens one directory across legacy unsharded,
// segmented, legacy sharded (v1), and back, checking data survival and
// that each layout's files fully replace the previous one's.
func TestLayoutConversions(t *testing.T) {
	dir := t.TempDir()
	open := func(shards int, segBytes int64) *DB {
		t.Helper()
		db, err := Open(Options{Dir: dir, Shards: shards, WALSegmentBytes: segBytes})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	exists := func(name string) bool {
		_, err := os.Stat(filepath.Join(dir, name))
		return err == nil
	}

	// Legacy unsharded: classic chronicle.wal, no manifest.
	db := open(0, -1)
	mustExec(t, db, storageDDL)
	var want int64
	for i := int64(1); i <= 30; i++ {
		if _, err := db.Append("items", Tuple{Str("a"), Int(i)}); err != nil {
			t.Fatal(err)
		}
		want += i
	}
	db.Close()
	if !exists("chronicle.wal") || exists(wal.ManifestName) {
		t.Fatal("legacy layout not established")
	}

	// → segmented: conversion folds everything into a chain checkpoint and
	// removes the legacy files.
	db = open(0, 512)
	if total, cnt := lookupTotals(t, db, "a"); total != want || cnt != 30 {
		t.Fatalf("after legacy→segmented: %d/%d, want %d/30", total, cnt, want)
	}
	if _, err := db.Append("items", Tuple{Str("a"), Int(7)}); err != nil {
		t.Fatal(err)
	}
	want += 7
	db.Close()
	if exists("chronicle.wal") || exists("checkpoint.bin") {
		t.Error("legacy files survived conversion to segmented")
	}
	if m, ok, _ := wal.ReadManifest(dir); !ok || m.Version != 2 || len(m.Checkpoints) == 0 {
		t.Errorf("segmented manifest after conversion = %+v %v", m, ok)
	}

	// → legacy sharded (v1): conversion checkpoints into checkpoint.bin
	// and replaces the v2 manifest with a v1 one.
	db = open(2, -1)
	if total, cnt := lookupTotals(t, db, "a"); total != want || cnt != 31 {
		t.Fatalf("after segmented→v1: %d/%d, want %d/31", total, cnt, want)
	}
	if _, err := db.Append("items", Tuple{Str("a"), Int(3)}); err != nil {
		t.Fatal(err)
	}
	want += 3
	db.Close()
	if m, ok, _ := wal.ReadManifest(dir); !ok || m.Version != 1 || m.Shards != 2 {
		t.Errorf("v1 manifest after conversion = %+v %v", m, ok)
	}
	if !exists("checkpoint.bin") {
		t.Error("no checkpoint.bin after conversion to legacy sharded")
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.Contains(e.Name(), "-0000000") {
			t.Errorf("segmented file %s survived conversion to v1", e.Name())
		}
	}

	// → segmented sharded: v1 folds into a fresh chain.
	db = open(2, 512)
	if total, cnt := lookupTotals(t, db, "a"); total != want || cnt != 32 {
		t.Fatalf("after v1→segmented: %d/%d, want %d/32", total, cnt, want)
	}
	db.Close()
	if exists(wal.SegmentName(0)) || exists(wal.RelationSegment) || exists("checkpoint.bin") {
		t.Error("v1 files survived conversion to segmented")
	}
}

// TestDiskFullDuringRotation (satellite 5): sweep disk capacities so the
// workload dies at every stage — including inside segment rotation — and
// assert the degradation contract each time: the first failed append
// latches the DB read-only with the cause, reads keep serving, no
// half-registered segment exists (every manifest reference resolves), and
// a reopen on the recovered disk comes back with all acked appends.
func TestDiskFullDuringRotation(t *testing.T) {
	run := func(capacity int64) (acked int64, failure error, disk *fault.Disk) {
		disk = fault.NewDisk()
		db, err := Open(Options{Dir: "/data", FS: disk, SyncWAL: true, WALSegmentBytes: 256})
		if err != nil {
			t.Fatalf("cap=%d: open: %v", capacity, err)
		}
		defer db.Close()
		if _, err := db.Exec(storageDDL); err != nil {
			t.Fatalf("cap=%d: ddl: %v", capacity, err)
		}
		disk.SetCapacity(capacity) // schema is in; the data phase hits the wall
		for i := int64(1); i <= 60; i++ {
			if _, err := db.Append("items", Tuple{Str("a"), Int(i)}); err != nil {
				failure = err
				break
			}
			acked++
		}
		if failure == nil {
			return acked, nil, disk
		}

		// Sticky read-only degradation with the original cause.
		ro, cause := db.ReadOnly()
		if !ro || cause == nil {
			t.Errorf("cap=%d: not read-only after disk full (cause %v)", capacity, cause)
		}
		if _, err := db.Append("items", Tuple{Str("a"), Int(1)}); err == nil {
			t.Errorf("cap=%d: append accepted after degradation", capacity)
		}
		// Reads keep working.
		if _, ok, err := db.Lookup("totals", Str("a")); !ok || err != nil {
			t.Errorf("cap=%d: read failed after degradation: %v", capacity, err)
		}
		// No half-registered segment: every manifest reference must exist.
		m, ok, err := wal.ReadManifestFS(disk, "/data")
		if err != nil || !ok {
			t.Fatalf("cap=%d: manifest unreadable after disk full: %v", capacity, err)
		}
		for _, s := range m.Live {
			if _, err := disk.Stat(filepath.Join("/data", s.Name)); err != nil {
				t.Errorf("cap=%d: manifest references missing segment %s: %v", capacity, s.Name, err)
			}
		}
		return acked, failure, disk
	}

	sawRotationFailure := false
	for capacity := int64(600); capacity <= 4000; capacity += 128 {
		acked, failure, disk := run(capacity)
		if failure == nil {
			continue // capacity large enough for the whole workload
		}
		if strings.Contains(failure.Error(), "wal: rotate:") {
			sawRotationFailure = true
		}
		// Space freed: reopen must recover every acked append.
		disk.SetCapacity(0)
		db, err := Open(Options{Dir: "/data", FS: disk, SyncWAL: true, WALSegmentBytes: 256})
		if err != nil {
			t.Fatalf("cap=%d: reopen after disk full: %v", capacity, err)
		}
		var cnt int64
		if acked > 0 {
			_, cnt = lookupTotals(t, db, "a")
		}
		if cnt < acked || cnt > acked+1 {
			t.Errorf("cap=%d: recovered %d appends, acked %d", capacity, cnt, acked)
		}
		if _, err := db.Append("items", Tuple{Str("a"), Int(1)}); err != nil {
			t.Errorf("cap=%d: append after recovery: %v", capacity, err)
		}
		db.Close()
	}
	if !sawRotationFailure {
		t.Error("capacity sweep never failed inside a rotation (fmt: 'wal: rotate:'); widen the sweep")
	}
}
