// Banking: the ATM scenario from the paper's introduction — the Chemical
// Bank incident of February 1994 was a procedural balance-update bug; the
// chronicle model replaces that hand-written code with a declaratively
// defined persistent view.
//
// dollar_balance is an SCA₁ view (IM-Constant maintenance): every deposit
// and withdrawal updates it before the append returns, so the balance check
// that gates the *next* withdrawal always sees current state. The example
// also runs durable, with a WAL and a checkpoint, and proves the balance
// survives a restart.
package main

import (
	"fmt"
	"log"
	"os"

	chronicledb "chronicledb"
)

func main() {
	dir, err := os.MkdirTemp("", "chronicledb-banking-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := chronicledb.Open(chronicledb.Options{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}

	must(db, `CREATE CHRONICLE ledger (acct STRING, kind STRING, amount FLOAT)`)
	must(db, `CREATE RELATION accounts (acct STRING, holder STRING, KEY(acct))`)
	must(db, `CREATE VIEW dollar_balance AS
		SELECT acct, SUM(amount) AS balance, COUNT(*) AS txns
		FROM ledger GROUP BY acct WITH STORE BTREE`)
	must(db, `UPSERT INTO accounts VALUES ('chk-001', 'R. Customer')`)

	deposit(db, "chk-001", 500)
	if err := withdraw(db, "chk-001", 120); err != nil {
		log.Fatal(err)
	}
	if err := withdraw(db, "chk-001", 60); err != nil {
		log.Fatal(err)
	}
	// An overdraft attempt is rejected *by consulting the view*, which is
	// current as of the previous transaction.
	if err := withdraw(db, "chk-001", 1000); err != nil {
		fmt.Println("declined:", err)
	} else {
		log.Fatal("overdraft was allowed")
	}
	fmt.Printf("balance after session: $%.2f\n", balance(db, "chk-001"))

	// Durability: checkpoint, another withdrawal (lands in the WAL tail),
	// then a simulated restart.
	if err := db.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	if err := withdraw(db, "chk-001", 20); err != nil {
		log.Fatal(err)
	}
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}

	db2, err := chronicledb.Open(chronicledb.Options{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	got := balance(db2, "chk-001")
	fmt.Printf("balance after restart: $%.2f\n", got)
	if got != 300 {
		log.Fatalf("recovery lost money: $%.2f, want $300.00", got)
	}
}

func deposit(db *chronicledb.DB, acct string, amount float64) {
	must(db, fmt.Sprintf(`APPEND INTO ledger VALUES ('%s', 'deposit', %g)`, acct, amount))
	fmt.Printf("deposit  $%7.2f → balance $%.2f\n", amount, balance(db, acct))
}

// withdraw checks the persistent balance view before dispensing — the
// summary query "must be made before the next ATM withdrawal".
func withdraw(db *chronicledb.DB, acct string, amount float64) error {
	if b := balance(db, acct); b < amount {
		return fmt.Errorf("insufficient funds: balance $%.2f < $%.2f", b, amount)
	}
	must(db, fmt.Sprintf(`APPEND INTO ledger VALUES ('%s', 'withdrawal', %g)`, acct, -amount))
	fmt.Printf("withdraw $%7.2f → balance $%.2f\n", amount, balance(db, acct))
	return nil
}

func balance(db *chronicledb.DB, acct string) float64 {
	row, ok, err := db.Lookup("dollar_balance", chronicledb.Str(acct))
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		return 0
	}
	return row[1].AsFloat()
}

func must(db *chronicledb.DB, stmt string) {
	if _, err := db.Exec(stmt); err != nil {
		log.Fatalf("%s: %v", stmt, err)
	}
}
