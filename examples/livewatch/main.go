// Live watch: the changefeed face of the paper's always-current views.
// The maintenance step computes, for every append, exactly the delta the
// view folds in; WATCH delivers that same delta to subscribers the moment
// its batch commits, stamped with the committed LSN.
//
// The example runs the telecom workload twice over one subscription
// contract: a fresh watch first receives a snapshot of the view at some
// LSN S, then every delta strictly above S — no gaps, no duplicates —
// and a second watch resumes from the first one's cursor, receiving only
// what happened after it. The same stream is available over the wire as
// `WATCH usage` in the CLI or `GET /watch?view=usage` (SSE) against
// chronicled started with -feed.
package main

import (
	"context"
	"fmt"
	"log"

	chronicledb "chronicledb"
)

func main() {
	// Changefeeds are opt-in: Feed reserves the hub and the per-view
	// delta capture on the commit path.
	db, err := chronicledb.Open(chronicledb.Options{Feed: true})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db, `
		CREATE CHRONICLE calls (acct STRING, minutes INT);
		CREATE VIEW usage AS
			SELECT acct, COUNT(*) AS calls, SUM(minutes) AS minutes
			FROM calls GROUP BY acct;
	`)

	// History recorded before anyone is watching: the snapshot covers it.
	must(db, `APPEND INTO calls VALUES ('alice', 12)`)
	must(db, `APPEND INTO calls VALUES ('bob', 7)`)

	// First leg: watch from the beginning. The callback returns false to
	// stop; here we stop after the snapshot plus two live deltas. The
	// ready channel sequences the demo: the snapshot is delivered first,
	// so appends made after it are guaranteed to arrive as deltas.
	fmt.Println("-- watch (fresh): snapshot, then live deltas --")
	deltas := 0
	var cursor uint64
	watch := func(stopAfter int, ready chan<- struct{}) {
		err := db.Watch(context.Background(), "usage", cursor, cursor != 0,
			func(ev chronicledb.WatchEvent) bool {
				cursor = ev.LSN
				switch ev.Kind {
				case chronicledb.WatchSnapshot:
					fmt.Printf("snapshot @ LSN %d:\n", ev.LSN)
					for _, r := range ev.Rows {
						fmt.Printf("  %-5s calls=%d minutes=%d\n",
							r[0].AsString(), r[1].AsInt(), r[2].AsInt())
					}
					if ready != nil {
						close(ready)
					}
				case chronicledb.WatchDelta:
					// An aggregate view's delta rows are the projected
					// source rows — one per appended call, the rows the
					// maintenance step folded into the groups.
					for _, d := range ev.Deltas {
						fmt.Printf("delta    @ LSN %d: %s +%d minutes\n",
							ev.LSN, d.Vals[0].AsString(), d.Vals[1].AsInt())
					}
					deltas++
				}
				return deltas < stopAfter
			})
		if err != nil {
			log.Fatal(err)
		}
	}

	ready := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); watch(2, ready) }()
	<-ready
	must(db, `APPEND INTO calls VALUES ('alice', 3)`)
	must(db, `APPEND INTO calls VALUES ('bob', 9)`)
	<-done

	// More calls land while nobody is connected…
	must(db, `APPEND INTO calls VALUES ('alice', 5)`)
	must(db, `APPEND INTO calls VALUES ('bob', 1)`)

	// Second leg: resume FROM the cursor. No snapshot replay — the hub
	// replays its retained tail strictly above the last LSN the first leg
	// delivered, then continues live.
	fmt.Printf("-- watch FROM LSN %d (resume): only what we missed --\n", cursor)
	watch(4, nil)

	// The view itself agrees with everything the stream delivered.
	fmt.Println("-- the view, queried --")
	res, err := db.Exec(`SELECT * FROM usage`)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Rows {
		fmt.Printf("  %-5s calls=%v minutes=%v\n", r[0], r[1], r[2])
	}
}

func must(db *chronicledb.DB, stmts string) {
	if _, err := db.Exec(stmts); err != nil {
		log.Fatal(err)
	}
}
