// Quickstart: define a chronicle and a persistent view, append transaction
// records, and answer summary queries from the view — without the chronicle
// being stored at all.
package main

import (
	"fmt"
	"log"

	chronicledb "chronicledb"
)

func main() {
	// The default retention is RetainNone: the pure chronicle model. No
	// transaction record is ever stored; only the persistent views are.
	db, err := chronicledb.Open(chronicledb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db, `CREATE CHRONICLE calls (acct STRING, minutes INT, cost FLOAT)`)
	must(db, `CREATE VIEW usage AS
		SELECT acct, SUM(minutes) AS total_minutes, SUM(cost) AS total_cost, COUNT(*) AS calls
		FROM calls GROUP BY acct`)

	// Record some transactions. Each append maintains every affected view
	// before returning.
	must(db, `APPEND INTO calls VALUES ('alice', 12, 1.50)`)
	must(db, `APPEND INTO calls VALUES ('bob', 3, 0.40)`)
	must(db, `APPEND INTO calls VALUES ('alice', 8, 0.95)`)

	// A summary query is a view lookup — O(1), independent of how many
	// calls were ever made.
	res, err := db.Exec(`SELECT * FROM usage WHERE acct = 'alice'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("columns:", res.Columns)
	for _, row := range res.Rows {
		fmt.Println("row:   ", row)
	}

	// The same query through the typed API.
	row, ok, err := db.Lookup("usage", chronicledb.Str("bob"))
	if err != nil || !ok {
		log.Fatalf("lookup: %v %v", ok, err)
	}
	fmt.Printf("bob: %d minutes, $%.2f over %d call(s)\n",
		row[1].AsInt(), row[2].AsFloat(), row[3].AsInt())

	// EXPLAIN shows the view's algebra and maintenance class.
	res, err = db.Exec(`EXPLAIN VIEW usage`)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Rows {
		fmt.Printf("%-18s %s\n", r[0], r[1])
	}
}

func must(db *chronicledb.DB, stmt string) {
	if _, err := db.Exec(stmt); err != nil {
		log.Fatalf("%s: %v", stmt, err)
	}
}
