// Event monitor: the paper's Section 6 observation that active-database
// event recognition "is done on a chronicle of events", with history-less
// evaluation being exactly incremental maintenance of persistent views.
//
// A payment system emits two event chronicles in one group: authorizations
// and captures. A transaction that is authorized and captured in the same
// recording step is a settled composite event — recognized by the natural
// equijoin on the sequencing attribute (the only chronicle-chronicle join
// inside the algebra). Views over the composite stream answer monitoring
// questions without any event log being retained.
package main

import (
	"fmt"
	"log"

	chronicledb "chronicledb"
)

func main() {
	db, err := chronicledb.Open(chronicledb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db, `
		CREATE GROUP payments;
		CREATE CHRONICLE authorized (merchant STRING, amount FLOAT) IN GROUP payments;
		CREATE CHRONICLE captured (merchant STRING, amount FLOAT) IN GROUP payments;

		-- The composite event: authorize+capture in one step, per merchant.
		CREATE VIEW settled AS
			SELECT authorized.merchant, COUNT(*) AS events, SUM(authorized.amount) AS volume
			FROM authorized JOIN captured ON SN
			GROUP BY authorized.merchant WITH STORE BTREE;

		-- Authorizations that were NOT captured in the same step show up
		-- here but not in settled: the monitoring delta.
		CREATE VIEW auth_volume AS
			SELECT merchant, COUNT(*) AS events, SUM(amount) AS volume
			FROM authorized GROUP BY merchant;
	`)

	// Settled events: both chronicles receive a tuple with one shared
	// sequence number (the paper's simultaneous insert).
	settle := func(merchant string, amount float64) {
		must(db, fmt.Sprintf(
			`APPEND INTO authorized VALUES ('%s', %g) ALSO INTO captured VALUES ('%s', %g)`,
			merchant, amount, merchant, amount))
	}
	// A lone authorization: no capture, no composite event.
	authorize := func(merchant string, amount float64) {
		must(db, fmt.Sprintf(`APPEND INTO authorized VALUES ('%s', %g)`, merchant, amount))
	}

	settle("acme", 120.00)
	settle("acme", 80.50)
	authorize("acme", 999.99) // pending — must not count as settled
	settle("globex", 42.00)
	settle("initech", 10.00)
	authorize("globex", 7.77)

	fmt.Println("settled composite events per merchant:")
	res, err := db.Exec(`SELECT * FROM settled ORDER BY volume DESC`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("  %-8s %d events, $%.2f\n", row[0], row[1].AsInt(), row[2].AsFloat())
	}

	// Monitoring check: acme has 3 authorizations but only 2 settlements.
	auth, _, _ := db.Lookup("auth_volume", chronicledb.Str("acme"))
	set, _, _ := db.Lookup("settled", chronicledb.Str("acme"))
	pending := auth[1].AsInt() - set[1].AsInt()
	fmt.Printf("\nacme: %d authorized, %d settled, %d pending capture\n",
		auth[1].AsInt(), set[1].AsInt(), pending)
	if pending != 1 {
		log.Fatalf("composite detection broken: %d pending", pending)
	}

	// Range query over the ordered view: merchants a…h.
	rows, err := db.LookupRange("settled",
		chronicledb.Tuple{chronicledb.Str("a")}, chronicledb.Tuple{chronicledb.Str("h")})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmerchants a–g with settlements:")
	for _, r := range rows {
		fmt.Printf("  %s\n", r[0])
	}
}

func must(db *chronicledb.DB, stmt string) {
	if _, err := db.Exec(stmt); err != nil {
		log.Fatalf("%v", err)
	}
}
