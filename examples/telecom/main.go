// Telecom: per-billing-month periodic views (Section 5.1) and the
// incremental discount plan of Section 5.3.
//
// The cellular scenario from the paper's introduction: when a phone powers
// on, the handset displays the minutes used this billing month — a summary
// query that must be answered in subseconds without touching the call
// record sequence. Billing months are a periodic view; the popular
// "10% off over $10, 20% off over $25" plan is maintained incrementally so
// the discount is current after every call, not just at month end.
package main

import (
	"fmt"
	"log"

	chronicledb "chronicledb"
	"chronicledb/internal/tiers"
)

// The example uses an abstract clock: one chronon = one second, 30-day
// months of 2_592_000 seconds.
const month = 30 * 24 * 3600

func main() {
	now := int64(0)
	db, err := chronicledb.Open(chronicledb.Options{Clock: func() int64 { return now }})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db, `CREATE CHRONICLE calls (number STRING, minutes INT, charge FLOAT)`)

	// Minutes-this-month, per number: the power-on display. One view
	// instance per billing month; old months expire a month after closing.
	must(db, fmt.Sprintf(`CREATE PERIODIC VIEW monthly_minutes AS
		SELECT number, SUM(minutes) AS minutes, SUM(charge) AS charged, COUNT(*) AS calls
		FROM calls GROUP BY number
		EVERY %d EXPIRE %d`, month, month))

	// Lifetime usage for customer care ("total minutes since the number
	// was assigned").
	must(db, `CREATE VIEW lifetime AS
		SELECT number, SUM(minutes) AS minutes, COUNT(*) AS calls
		FROM calls GROUP BY number`)

	// The Section 5.3 discount plan, maintained incrementally alongside.
	plan, err := tiers.NewSchedule(tiers.AllUnits,
		tiers.Tier{Threshold: 10, Rate: 0.10},
		tiers.Tier{Threshold: 25, Rate: 0.20},
	)
	if err != nil {
		log.Fatal(err)
	}
	discounts := tiers.NewTracker(plan)

	type call struct {
		day     int64
		number  string
		minutes int64
		charge  float64
	}
	callsMade := []call{
		{2, "555-0100", 12, 4.80},
		{3, "555-0100", 30, 9.00},
		{3, "555-0199", 5, 1.25},
		{10, "555-0100", 44, 13.20}, // crosses the $10 tier mid-month
		{17, "555-0100", 9, 2.70},
		{31, "555-0100", 20, 8.00}, // next billing month
		{33, "555-0199", 61, 18.30},
	}
	for _, c := range callsMade {
		now = c.day * 24 * 3600
		must(db, fmt.Sprintf(`APPEND INTO calls VALUES ('%s', %d, %g)`, c.number, c.minutes, c.charge))
		s := discounts.Add(c.number, c.charge)
		fmt.Printf("day %2d  %s  %2d min  $%5.2f  → month-to-date $%6.2f, discount $%5.2f (tier %d)\n",
			c.day, c.number, c.minutes, c.charge, s.Total, s.Discount, s.Tier+1)
	}

	// Power-on display for 555-0100 in month 2 (days 30-59).
	pv, ok := db.Engine().PeriodicView("monthly_minutes")
	if !ok {
		log.Fatal("monthly_minutes missing")
	}
	fmt.Println()
	for _, inst := range pv.Instances() {
		fmt.Printf("billing period starting day %d:\n", inst.Interval.Start/(24*3600))
		for _, row := range inst.View.Rows() {
			fmt.Printf("  %s: %d min, $%.2f over %d calls\n",
				row[0].AsString(), row[1].AsInt(), row[2].AsFloat(), row[3].AsInt())
		}
	}

	// Customer care: lifetime minutes, answered from the persistent view.
	row, ok, err := db.Lookup("lifetime", chronicledb.Str("555-0100"))
	if err != nil || !ok {
		log.Fatal("lifetime lookup failed")
	}
	fmt.Printf("\nlifetime 555-0100: %d minutes over %d calls\n", row[1].AsInt(), row[2].AsInt())

	// Tier crossings were observable the moment they happened — the thing
	// an end-of-month batch job cannot provide.
	for _, cr := range discounts.Crossings {
		fmt.Printf("tier change: %s entered tier %d at $%.2f\n", cr.Key, cr.ToTier+1, cr.AtTotal)
	}
}

func must(db *chronicledb.DB, stmt string) {
	if _, err := db.Exec(stmt); err != nil {
		log.Fatalf("%s: %v", stmt, err)
	}
}
