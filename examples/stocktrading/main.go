// Stock trading: the paper's Section 5.1 moving-window example — "a
// periodic view for every day that computes the total number of shares of
// a stock sold during the 30 days preceding that day".
//
// The example runs the same trade stream through three implementations and
// shows they agree while costing very different amounts:
//
//  1. an overlapping periodic view family (EVERY day WIDTH 30 days), the
//     declarative form;
//  2. the cyclic buffer of 30 per-day partials the paper proposes as the
//     optimized evaluation, with O(1) maintenance for invertible SUM;
//  3. a naive re-aggregation over the raw trades in the window.
package main

import (
	"fmt"
	"log"
	"math/rand"

	chronicledb "chronicledb"
	"chronicledb/internal/aggregate"
	"chronicledb/internal/calendar"
)

const day = int64(24 * 3600)

func main() {
	now := int64(0)
	db, err := chronicledb.Open(chronicledb.Options{Clock: func() int64 { return now }})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db, `CREATE CHRONICLE trades (symbol STRING, shares INT, price FLOAT)`)
	// One view instance per day, each covering the preceding 30 days;
	// instances expire a day after their window closes.
	must(db, fmt.Sprintf(`CREATE PERIODIC VIEW monthly_volume AS
		SELECT symbol, SUM(shares) AS shares, COUNT(*) AS trades
		FROM trades GROUP BY symbol
		EVERY %d WIDTH %d EXPIRE %d`, day, 30*day, day))

	ring, err := calendar.NewMovingSum(day, 30)
	if err != nil {
		log.Fatal(err)
	}
	naive, err := calendar.NewNaiveWindow(aggregate.Sum, 30*day)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	symbols := []string{"T", "ATT", "NCR"}
	for d := int64(0); d < 90; d++ {
		for trade := 0; trade < 20; trade++ {
			now = d*day + int64(trade)*60
			sym := symbols[rng.Intn(len(symbols))]
			shares := int64(100 + rng.Intn(900))
			must(db, fmt.Sprintf(`APPEND INTO trades VALUES ('%s', %d, %g)`,
				sym, shares, 20+float64(rng.Intn(4000))/100))
			ring.Add(sym, now, float64(shares))
			naive.Add(sym, now, chronicledb.Int(shares))
		}
	}

	// Compare the three answers for the window ending "today" (day 89).
	pv, ok := db.Engine().PeriodicView("monthly_volume")
	if !ok {
		log.Fatal("periodic view missing")
	}
	window := calendar.Interval{Start: 60 * day, End: 90 * day} // the last full window
	inst, ok := pv.At(window)
	if !ok {
		log.Fatalf("window %v has no live instance", window)
	}
	fmt.Printf("30-day share volume ending day 90 (window %v):\n", window)
	for _, sym := range symbols {
		declRow, ok := inst.Lookup(chronicledb.Tuple{chronicledb.Str(sym)})
		if !ok {
			log.Fatalf("no volume for %s", sym)
		}
		declarative := declRow[1].AsInt()
		cyclic := int64(ring.Value(sym, now))
		reagg := naive.Value(sym, now).AsInt()
		fmt.Printf("  %-4s declarative=%-8d cyclic-buffer=%-8d naive=%-8d\n",
			sym, declarative, cyclic, reagg)
		if declarative != cyclic || cyclic != reagg {
			log.Fatalf("implementations disagree for %s", sym)
		}
	}

	fmt.Printf("\nlive window instances: %d (expiration keeps the infinite calendar finite)\n", pv.Live())
	fmt.Printf("windows created: %d, expired: %d\n", pv.Created(), pv.Expired())
}

func must(db *chronicledb.DB, stmt string) {
	if _, err := db.Exec(stmt); err != nil {
		log.Fatalf("%s: %v", stmt, err)
	}
}
