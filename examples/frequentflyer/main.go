// Frequent flyer: the paper's running example (Examples 2.1 and 2.2).
//
// One chronicle records mileage transactions. A customer relation holds the
// account's current address. Three persistent views hold the mileage
// balance, the miles actually flown, and the data for premier status — and
// a fourth implements the New-Jersey bonus: 500 bonus miles per flight, but
// only for flights taken while the customer lived in New Jersey. Address
// changes are proactive updates: they affect only later flights, exactly as
// Section 2.3 prescribes.
package main

import (
	"fmt"
	"log"

	chronicledb "chronicledb"
)

func main() {
	db, err := chronicledb.Open(chronicledb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db, `CREATE CHRONICLE mileage (acct STRING, kind STRING, miles INT, bonus INT)`)
	must(db, `CREATE RELATION customers (acct STRING, name STRING, state STRING, KEY(acct))`)

	// V1: total mileage balance per account (flown + bonus + promotions).
	must(db, `CREATE VIEW balance AS
		SELECT acct, SUM(miles) AS miles, SUM(bonus) AS bonus_miles, COUNT(*) AS activity
		FROM mileage GROUP BY acct`)

	// V2: miles actually flown (kind = 'flight') — premier status derives
	// from this, not from bonus promotions.
	must(db, `CREATE VIEW flown AS
		SELECT acct, SUM(miles) AS flown_miles, COUNT(*) AS flights
		FROM mileage WHERE kind = 'flight' GROUP BY acct`)

	// V3: the NJ bonus (Example 2.2). The join with customers is an
	// implicit temporal join: each mileage tuple sees the address version
	// in effect when it was appended.
	must(db, `CREATE VIEW nj_bonus AS
		SELECT mileage.acct, COUNT(*) AS qualifying_flights
		FROM mileage
		JOIN customers ON mileage.acct = customers.acct
		WHERE kind = 'flight' AND state = 'NJ'
		GROUP BY mileage.acct`)

	// Enroll a customer in New Jersey.
	must(db, `UPSERT INTO customers VALUES ('ff42', 'Pat Traveler', 'NJ')`)

	// Two flights while living in NJ.
	must(db, `APPEND INTO mileage VALUES ('ff42', 'flight', 2800, 500)`)
	must(db, `APPEND INTO mileage VALUES ('ff42', 'flight', 1200, 500)`)

	// Pat moves to California — a proactive update.
	must(db, `UPSERT INTO customers VALUES ('ff42', 'Pat Traveler', 'CA')`)

	// A flight after the move: no NJ bonus. A shopping promotion: miles,
	// but not flown-miles.
	must(db, `APPEND INTO mileage VALUES ('ff42', 'flight', 5100, 0)`)
	must(db, `APPEND INTO mileage VALUES ('ff42', 'promo', 1000, 0)`)

	balance := lookup(db, "balance", "ff42")
	flown := lookup(db, "flown", "ff42")
	nj := lookup(db, "nj_bonus", "ff42")

	fmt.Printf("account ff42\n")
	fmt.Printf("  balance:        %d miles (+%d bonus) across %d activities\n",
		balance[1].AsInt(), balance[2].AsInt(), balance[3].AsInt())
	fmt.Printf("  actually flown: %d miles in %d flights\n", flown[1].AsInt(), flown[2].AsInt())
	fmt.Printf("  NJ-bonus:       %d qualifying flights\n", nj[1].AsInt())

	status := premierStatus(flown[1].AsInt())
	fmt.Printf("  premier status: %s\n", status)

	if nj[1].AsInt() != 2 {
		log.Fatalf("temporal join broken: %d qualifying flights, want 2", nj[1].AsInt())
	}
}

// premierStatus is the query-side computation the paper leaves to the
// application: it reads only the persistent view.
func premierStatus(flownMiles int64) string {
	switch {
	case flownMiles >= 100000:
		return "gold"
	case flownMiles >= 50000:
		return "silver"
	case flownMiles >= 25000:
		return "bronze"
	default:
		return "member"
	}
}

func lookup(db *chronicledb.DB, view, acct string) chronicledb.Row {
	row, ok, err := db.Lookup(view, chronicledb.Str(acct))
	if err != nil || !ok {
		log.Fatalf("lookup %s(%s): %v %v", view, acct, ok, err)
	}
	return row
}

func must(db *chronicledb.DB, stmt string) {
	if _, err := db.Exec(stmt); err != nil {
		log.Fatalf("%s: %v", stmt, err)
	}
}
