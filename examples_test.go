package chronicledb_test

import (
	"os/exec"
	"testing"
)

// TestExamplesRun compiles and runs every example end to end; an example
// that errors exits non-zero (each validates its own expected numbers).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples compile subprocesses")
	}
	examples := []string{
		"quickstart", "frequentflyer", "telecom", "banking", "stocktrading", "eventmonitor",
	}
	for _, name := range examples {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+name).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", name)
			}
		})
	}
}
