package chronicledb

import (
	"testing"

	"chronicledb/internal/value"
	"chronicledb/internal/wal"
)

// TestReplAllocGuards pins the follower apply path's steady-state
// allocation count: applying one replicated append record through
// applyReplRecord (the recovery-shaped at-coordinates kernel path) must
// stay within the append hot path's own budget — a follower that
// allocates more per record than its primary does per append can never
// keep up. `make bench-allocs` runs this alongside the append guards.
func TestReplAllocGuards(t *testing.T) {
	if raceEnabledInternal {
		t.Skip("allocation counts are not meaningful under -race")
	}
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total
		FROM calls GROUP BY acct`); err != nil {
		t.Fatal(err)
	}

	rec := wal.Record{
		Kind: wal.RecAppend,
		Parts: []wal.Part{{
			Chronicle: "calls",
			Tuples:    []value.Tuple{{value.Str("acct-0007"), value.Int(3)}},
		}},
	}
	next := func() wal.Record {
		rec.SN++
		rec.Chronon++
		rec.LSN++
		return rec
	}
	for i := 0; i < 200; i++ {
		if err := db.applyReplRecord(next()); err != nil {
			t.Fatal(err)
		}
	}
	// db.Append's end-to-end budget is 2 (alloc_guard_test.go); the apply
	// path adds one parts-slice build, so 3 is the ceiling — measured
	// steady state is below it.
	got := testing.AllocsPerRun(1000, func() {
		if err := db.applyReplRecord(next()); err != nil {
			t.Fatal(err)
		}
	})
	if got > 3 {
		t.Errorf("applyReplRecord: %.1f allocs/op, budget 3 — the follower apply path regressed past the append budget", got)
	} else {
		t.Logf("applyReplRecord: %.1f allocs/op (budget 3, append path budget 2)", got)
	}
}
