//go:build !race

package chronicledb

// raceEnabledInternal mirrors raceEnabled (norace_test.go) for the
// internal test package: AllocsPerRun guards skip under -race because
// instrumentation adds allocations the production build does not have.
const raceEnabledInternal = false
