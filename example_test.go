package chronicledb_test

import (
	"fmt"
	"log"

	chronicledb "chronicledb"
)

// Example shows the minimal chronicle-model loop: declare a chronicle and a
// persistent view, append transaction records, and answer summary queries
// from the view — with no transaction record ever stored.
func Example() {
	db, err := chronicledb.Open(chronicledb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT)`)
	db.Exec(`CREATE VIEW usage AS
		SELECT acct, SUM(minutes) AS total, COUNT(*) AS n
		FROM calls GROUP BY acct`)
	db.Exec(`APPEND INTO calls VALUES ('alice', 12)`)
	db.Exec(`APPEND INTO calls VALUES ('alice', 8)`)

	row, _, _ := db.Lookup("usage", chronicledb.Str("alice"))
	fmt.Printf("alice: %d minutes over %d calls\n", row[1].AsInt(), row[2].AsInt())
	// Output: alice: 20 minutes over 2 calls
}

// ExampleDB_Exec demonstrates the declarative language end to end,
// including the maintenance-class report for a key-join view.
func ExampleDB_Exec() {
	db, err := chronicledb.Open(chronicledb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT)`)
	db.Exec(`CREATE RELATION customers (acct STRING, state STRING, KEY(acct))`)
	res, err := db.Exec(`CREATE VIEW by_state AS
		SELECT state, SUM(minutes) AS total FROM calls
		JOIN customers ON calls.acct = customers.acct
		GROUP BY state`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Message)
	// Output: view by_state created (CA⋈, IM-log(R))
}

// ExampleDB_Exec_rejected shows Theorem 4.3 enforced by the planner: a
// chronicle-to-chronicle attribute join cannot define a persistent view.
func ExampleDB_Exec_rejected() {
	db, err := chronicledb.Open(chronicledb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.Exec(`CREATE GROUP g;
		CREATE CHRONICLE a (k STRING, x INT) IN GROUP g;
		CREATE CHRONICLE b (k STRING, y INT) IN GROUP g`)
	_, err = db.Exec(`CREATE VIEW bad AS
		SELECT a.k, COUNT(*) AS n FROM a JOIN b ON a.k = b.k GROUP BY a.k`)
	fmt.Println(err != nil)
	// Output: true
}
