package chronicledb_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	chronicledb "chronicledb"
	"chronicledb/internal/fault"
	"chronicledb/internal/server"
)

const (
	watchChaosSubs      = 5  // concurrent SSE subscribers
	watchChaosAppenders = 3  // concurrent idempotent appenders
	watchChaosRequests  = 40 // appends per appender, one row each
)

// TestWatchNetworkChaos is the changefeed half of the network-torture
// harness: SSE subscribers watch a view through a chaos TCP proxy that
// resets and drops their streams mid-body, while idempotent appenders push
// rows through the same proxy and the server suffers a checkpoint, a power
// cut, and a reopen behind the same address. The delivery contract under
// all of it: every subscriber's spliced stream (snapshot counts plus one
// delta row per appended source row, across every reconnect) conserves
// the append total exactly — a gap undercounts and the watch never
// finishes; a duplicate overcounts — and LSNs only ever move forward.
func TestWatchNetworkChaos(t *testing.T) {
	disk := fault.NewDisk()
	open := func() *chronicledb.DB {
		db, err := chronicledb.Open(chronicledb.Options{
			Dir: "/data", SyncWAL: true, FS: disk, Shards: 4, Feed: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	db := open()
	if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT) RETAIN ALL`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE VIEW usage AS SELECT acct, COUNT(*) AS n FROM calls GROUP BY acct`); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.NewWith(db, server.Config{}))

	chaos := fault.NewNetChaos(99)
	chaos.DropRequest = 0.03
	chaos.DropResponse = 0.05
	chaos.Duplicate = 0.03
	chaos.DropConn = 0.05
	chaos.ResetProb = 0.20 // streams die mid-body; subscribers must resume
	chaos.ResetAfter = 256

	proxy, err := fault.NewProxy(strings.TrimPrefix(ts.URL, "http://"), chaos)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	const total = int64(watchChaosAppenders * watchChaosRequests)

	// Mid-run checkpoint, power cut, and failover: subscribers whose
	// cursors predate the checkpoint must re-splice via snapshot; newer
	// cursors tail-resume from the frames WAL replay republished.
	var acked atomic.Int64
	var db2 *chronicledb.DB
	var ts2 *httptest.Server
	failoverDone := make(chan struct{})
	go func() {
		defer close(failoverDone)
		for acked.Load() < total/3 {
			time.Sleep(time.Millisecond)
		}
		if err := db.Checkpoint(); err != nil {
			t.Errorf("mid-run checkpoint: %v", err)
		}
		disk.PowerCut()
		ts.CloseClientConnections()
		ts.Close()
		db.Close()
		disk.Heal()
		db2 = open()
		ts2 = httptest.NewServer(server.NewWith(db2, server.Config{}))
		proxy.SetTarget(strings.TrimPrefix(ts2.URL, "http://"))
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	newClient := func(id string) *server.Client {
		return server.NewClientWith("http://"+proxy.Addr(), server.ClientConfig{
			ClientID:         id,
			Timeout:          2 * time.Second,
			MaxAttempts:      200, // ride out the whole failover window
			BaseBackoff:      2 * time.Millisecond,
			MaxBackoff:       50 * time.Millisecond,
			RetryBudget:      10 * time.Second,
			BreakerThreshold: -1,
			Transport: &fault.ChaosTransport{
				Chaos: chaos,
				Base:  &http.Transport{DisableKeepAlives: true},
			},
		})
	}

	var wg sync.WaitGroup
	errs := make(chan error, watchChaosSubs+watchChaosAppenders)
	for s := 0; s < watchChaosSubs; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c := newClient(fmt.Sprintf("watcher-%d", s))
			// A reconnect may legally re-splice via snapshot (cursor below
			// the post-recovery horizon): the snapshot replaces all
			// accumulated state, then deltas continue past its LSN.
			acctN := map[string]int64{}
			var seen int64
			var lastLSN uint64
			err := c.Watch(ctx, "usage", 0, false, func(ev server.WatchEvent) bool {
				switch ev.Kind {
				case server.WatchSnapshot:
					if ev.LSN < lastLSN {
						errs <- fmt.Errorf("subscriber %d: snapshot LSN %d below cursor %d", s, ev.LSN, lastLSN)
						return false
					}
					lastLSN = ev.LSN
					clear(acctN)
					seen = 0
					for _, r := range ev.Rows {
						n := int64(r[1].(float64))
						acctN[r[0].(string)] = n
						seen += n
					}
				case server.WatchDelta:
					if ev.LSN <= lastLSN {
						errs <- fmt.Errorf("subscriber %d: delta LSN %d after %d (duplicate)", s, ev.LSN, lastLSN)
						return false
					}
					lastLSN = ev.LSN
					for _, d := range ev.Deltas {
						acctN[d.Vals[0].(string)]++
						seen++
					}
				case server.WatchBye:
					errs <- fmt.Errorf("subscriber %d: terminal bye (%s)", s, ev.Reason)
					return false
				}
				return seen < total
			})
			if err != nil && ctx.Err() == nil {
				errs <- fmt.Errorf("subscriber %d: %v", s, err)
				return
			}
			if ctx.Err() != nil {
				errs <- fmt.Errorf("subscriber %d: timed out at %d/%d rows (gap)", s, seen, total)
				return
			}
			if seen != total {
				errs <- fmt.Errorf("subscriber %d: saw %d rows, want %d (duplicate delivery)", s, seen, total)
			}
			for a := 0; a < watchChaosAppenders; a++ {
				acct := fmt.Sprintf("chaos-%d", a)
				if acctN[acct] != watchChaosRequests {
					errs <- fmt.Errorf("subscriber %d: %s total %d, want %d", s, acct, acctN[acct], watchChaosRequests)
				}
			}
		}(s)
	}
	for a := 0; a < watchChaosAppenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			c := newClient(fmt.Sprintf("chaos-%d", a))
			rows := [][]any{{fmt.Sprintf("chaos-%d", a), 1}}
			for m := 0; m < watchChaosRequests; m++ {
				rid := fmt.Sprintf("m%d", m)
				deadline := time.Now().Add(60 * time.Second)
				for {
					// Request-id reuse: however many times chaos or the
					// failover re-delivers this append, it applies once,
					// so watchers see exactly one delta for it.
					if _, err := c.AppendRowsIdem("calls", rows, rid); err == nil {
						acked.Add(1)
						break
					} else if time.Now().After(deadline) {
						errs <- fmt.Errorf("appender %d req %s: %v", a, rid, err)
						return
					}
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(a)
	}
	wg.Wait()
	<-failoverDone
	defer db2.Close()
	defer ts2.Close()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	counts := chaos.Counts()
	t.Logf("chaos: %+v", counts)
	if counts.Resets == 0 && counts.DroppedConns == 0 {
		t.Fatal("chaos never killed a stream; raise probabilities")
	}

	// The durable view agrees with what every subscriber converged on.
	for a := 0; a < watchChaosAppenders; a++ {
		row, ok, err := db2.Lookup("usage", chronicledb.Str(fmt.Sprintf("chaos-%d", a)))
		if err != nil || !ok || row[1].AsInt() != watchChaosRequests {
			t.Errorf("usage(chaos-%d) = %v %v %v, want %d", a, row, ok, err, watchChaosRequests)
		}
	}
}
