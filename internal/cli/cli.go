// Package cli holds the testable parts of the interactive shell: text
// table rendering and the line-based statement splitter.
package cli

import (
	"fmt"
	"io"
	"strings"
)

// RenderTable writes an aligned text table followed by a row count.
func RenderTable(w io.Writer, columns []string, rows [][]string) {
	if len(columns) == 0 {
		return
	}
	widths := make([]int, len(columns))
	for i, c := range columns {
		widths[i] = len(c)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", pad, c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	writeRow(columns)
	sep := make([]string, len(columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	fmt.Fprintf(w, "(%d row(s))\n", len(rows))
}

// Splitter accumulates input lines into statements terminated by ';'.
// Semicolons inside single-quoted string literals do not terminate.
type Splitter struct {
	pending  strings.Builder
	inString bool
}

// Feed adds one input line and returns any completed statements.
func (s *Splitter) Feed(line string) []string {
	var out []string
	for i := 0; i < len(line); i++ {
		c := line[i]
		s.pending.WriteByte(c)
		switch {
		case c == '\'':
			// A doubled quote inside a string is an escape, not a close.
			if s.inString && i+1 < len(line) && line[i+1] == '\'' {
				s.pending.WriteByte('\'')
				i++
				continue
			}
			s.inString = !s.inString
		case c == ';' && !s.inString:
			stmt := strings.TrimSpace(s.pending.String())
			s.pending.Reset()
			if stmt != ";" && stmt != "" {
				out = append(out, stmt)
			}
		}
	}
	s.pending.WriteByte('\n')
	return out
}

// Pending reports whether a partial statement is buffered.
func (s *Splitter) Pending() bool {
	return strings.TrimSpace(s.pending.String()) != ""
}

// Reset discards any buffered partial statement.
func (s *Splitter) Reset() {
	s.pending.Reset()
	s.inString = false
}
