package cli

import (
	"strings"
	"testing"
)

func TestRenderTable(t *testing.T) {
	var b strings.Builder
	RenderTable(&b, []string{"acct", "total"}, [][]string{
		{"alice", "20"},
		{"b", "3"},
	})
	got := b.String()
	want := "acct   total\n-----  -----\nalice  20\nb      3\n(2 row(s))\n"
	if got != want {
		t.Errorf("RenderTable:\n%q\nwant\n%q", got, want)
	}
}

func TestRenderTableWideCell(t *testing.T) {
	var b strings.Builder
	RenderTable(&b, []string{"c"}, [][]string{{"wider-than-header"}})
	if !strings.Contains(b.String(), "wider-than-header") {
		t.Errorf("output = %q", b.String())
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines[1]) != len("wider-than-header") {
		t.Errorf("separator not widened: %q", lines[1])
	}
}

func TestRenderTableNoColumns(t *testing.T) {
	var b strings.Builder
	RenderTable(&b, nil, nil)
	if b.Len() != 0 {
		t.Errorf("empty table rendered %q", b.String())
	}
}

func TestSplitterBasics(t *testing.T) {
	var s Splitter
	if got := s.Feed("SELECT * FROM v"); got != nil {
		t.Errorf("incomplete statement emitted: %v", got)
	}
	if !s.Pending() {
		t.Error("Pending should be true")
	}
	got := s.Feed("WHERE a = 1;")
	if len(got) != 1 || !strings.Contains(got[0], "WHERE a = 1;") {
		t.Errorf("Feed = %v", got)
	}
	if s.Pending() {
		t.Error("Pending should be false after completion")
	}
}

func TestSplitterMultipleStatementsOneLine(t *testing.T) {
	var s Splitter
	got := s.Feed("A; B; C")
	if len(got) != 2 || got[0] != "A;" || got[1] != "B;" {
		t.Errorf("Feed = %v", got)
	}
	if !s.Pending() {
		t.Error("trailing C should be pending")
	}
	got = s.Feed(";")
	if len(got) != 1 || got[0] != "C\n;" {
		t.Errorf("completion = %q", got)
	}
}

func TestSplitterSemicolonInString(t *testing.T) {
	var s Splitter
	got := s.Feed("APPEND INTO c VALUES ('a;b');")
	if len(got) != 1 {
		t.Fatalf("Feed = %v", got)
	}
	if !strings.Contains(got[0], "'a;b'") {
		t.Errorf("string mangled: %q", got[0])
	}
	// Escaped quote inside a string does not close it.
	s.Reset()
	got = s.Feed("APPEND INTO c VALUES ('it''s; fine');")
	if len(got) != 1 || !strings.Contains(got[0], "it''s; fine") {
		t.Errorf("escaped quote: %v", got)
	}
}

func TestSplitterReset(t *testing.T) {
	var s Splitter
	s.Feed("partial 'unclosed")
	s.Reset()
	if s.Pending() {
		t.Error("Reset left pending input")
	}
	got := s.Feed("A;")
	if len(got) != 1 || got[0] != "A;" {
		t.Errorf("after reset = %v", got)
	}
}

func TestSplitterBlankAndEmptyStatements(t *testing.T) {
	var s Splitter
	if got := s.Feed(";;  ;"); got != nil {
		t.Errorf("empty statements emitted: %v", got)
	}
}
