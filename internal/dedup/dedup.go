// Package dedup implements the persisted idempotency table that gives the
// ingestion path exactly-once semantics: every idempotent append carries a
// (client_id, request_id) pair, and the table remembers the acknowledgment
// (the assigned sequence-number range) of every request already applied.
// A retry — whether caused by a lost response, a duplicated delivery, or a
// crash-and-reopen on either side — finds the stored ack and returns it
// instead of re-applying the rows, which is exactly the paper's
// append-once sequence-number discipline extended across the network.
//
// Durability is owned by the layers above: the engine inserts an entry in
// the same critical section that writes the append's WAL record (the
// record itself carries the ids, so replay rebuilds the entry), and the
// checkpoint serializes the table alongside the views it protects.
//
// The table is bounded: beyond the configured capacity the oldest entries
// are evicted FIFO, so a server that lives forever cannot leak memory one
// request id at a time. A client must retry a request before Cap newer
// requests land — far beyond any sane retry budget — or the retry will
// re-apply; the eviction counter makes that pressure observable.
package dedup

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// DefaultCap is the entry bound used when a Table is created with no
// explicit capacity. At ~100 bytes an entry this bounds the table to a few
// megabytes.
const DefaultCap = 1 << 16

// Ack is the stored acknowledgment of an applied request.
type Ack struct {
	Chronicle string // target chronicle (routes restore in sharded mode)
	FirstSN   int64  // first sequence number assigned to the request
	LastSN    int64  // last sequence number assigned
	Rows      int    // rows applied
}

// Entry is one table entry with its identifying pair, as exposed to
// checkpointing.
type Entry struct {
	ClientID  string
	RequestID string
	Ack
}

// key identifies a request. A struct key keeps lookups allocation-free.
type key struct{ cid, rid string }

// Table is the bounded idempotency table. It carries its own mutex: the
// write path mutates it under the engine lock, but stats and checkpoint
// readers arrive from other goroutines.
type Table struct {
	mu        sync.Mutex
	cap       int
	m         map[key]Ack
	order     []key // insertion order; order[head:] are live
	head      int
	evictions int64
}

// NewTable returns an empty table bounded to capacity entries (<= 0 means
// DefaultCap).
func NewTable(capacity int) *Table {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Table{cap: capacity, m: make(map[key]Ack)}
}

// Cap returns the entry bound.
func (t *Table) Cap() int { return t.cap }

// Len returns the live entry count.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// Evictions returns how many entries the capacity bound has pushed out.
func (t *Table) Evictions() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evictions
}

// Lookup returns the stored ack for (clientID, requestID), if present.
func (t *Table) Lookup(clientID, requestID string) (Ack, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	a, ok := t.m[key{clientID, requestID}]
	return a, ok
}

// Put stores the ack for (clientID, requestID), evicting the oldest
// entries if the table is at capacity. Re-putting an existing pair
// refreshes the ack without growing the order log.
func (t *Table) Put(clientID, requestID string, a Ack) {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := key{clientID, requestID}
	if _, ok := t.m[k]; ok {
		t.m[k] = a
		return
	}
	for len(t.m) >= t.cap {
		oldest := t.order[t.head]
		t.order[t.head] = key{} // release the strings
		t.head++
		if _, ok := t.m[oldest]; ok {
			delete(t.m, oldest)
			t.evictions++
		}
	}
	t.m[k] = a
	// Compact the order log once the dead prefix dominates, so the slice
	// is bounded by O(cap) rather than growing with total request count.
	if t.head > len(t.order)/2 && t.head > t.cap {
		t.order = append(t.order[:0], t.order[t.head:]...)
		t.head = 0
	}
	t.order = append(t.order, k)
}

// Range calls fn for every live entry in insertion order until fn returns
// false. The table is locked for the duration; callers must not call back
// into the table.
func (t *Table) Range(fn func(Entry) bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, k := range t.order[t.head:] {
		a, ok := t.m[k]
		if !ok {
			continue
		}
		if !fn(Entry{ClientID: k.cid, RequestID: k.rid, Ack: a}) {
			return
		}
	}
}

// AppendEntries serializes entries onto dst and returns the extended
// slice — the checkpoint's dedup section. The image is bounded by the
// table capacity (entries come from bounded tables), which is what keeps
// checkpoints from growing with total request count.
func AppendEntries(dst []byte, ents []Entry) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ents)))
	for _, e := range ents {
		dst = appendString(dst, e.ClientID)
		dst = appendString(dst, e.RequestID)
		dst = appendString(dst, e.Chronicle)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(e.FirstSN))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(e.LastSN))
		dst = binary.AppendUvarint(dst, uint64(e.Rows))
	}
	return dst
}

// DecodeSnapshot parses a snapshot produced by AppendEntries, calling fn
// for each entry in stored order. It returns the bytes consumed.
func DecodeSnapshot(data []byte, fn func(Entry) error) (int, error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return 0, fmt.Errorf("dedup: bad snapshot count")
	}
	off := sz
	for i := uint64(0); i < n; i++ {
		var e Entry
		var used int
		var err error
		if e.ClientID, used, err = readString(data[off:]); err != nil {
			return 0, fmt.Errorf("dedup: entry %d client id: %w", i, err)
		}
		off += used
		if e.RequestID, used, err = readString(data[off:]); err != nil {
			return 0, fmt.Errorf("dedup: entry %d request id: %w", i, err)
		}
		off += used
		if e.Chronicle, used, err = readString(data[off:]); err != nil {
			return 0, fmt.Errorf("dedup: entry %d chronicle: %w", i, err)
		}
		off += used
		if len(data)-off < 16 {
			return 0, fmt.Errorf("dedup: entry %d truncated", i)
		}
		e.FirstSN = int64(binary.LittleEndian.Uint64(data[off:]))
		e.LastSN = int64(binary.LittleEndian.Uint64(data[off+8:]))
		off += 16
		rows, sz := binary.Uvarint(data[off:])
		if sz <= 0 {
			return 0, fmt.Errorf("dedup: entry %d rows", i)
		}
		e.Rows = int(rows)
		off += sz
		if err := fn(e); err != nil {
			return 0, err
		}
	}
	return off, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readString(b []byte) (string, int, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return "", 0, fmt.Errorf("bad string")
	}
	return string(b[sz : sz+int(n)]), sz + int(n), nil
}
