package dedup

import (
	"fmt"
	"testing"
)

func TestTableLookupPut(t *testing.T) {
	tb := NewTable(4)
	if _, ok := tb.Lookup("c", "r"); ok {
		t.Fatal("empty table hit")
	}
	ack := Ack{Chronicle: "calls", FirstSN: 10, LastSN: 12, Rows: 3}
	tb.Put("c", "r", ack)
	got, ok := tb.Lookup("c", "r")
	if !ok || got != ack {
		t.Fatalf("Lookup = %+v, %v", got, ok)
	}
	// Same request id under a different client is a distinct key.
	if _, ok := tb.Lookup("other", "r"); ok {
		t.Fatal("cross-client hit")
	}
}

func TestTableFIFOEviction(t *testing.T) {
	tb := NewTable(3)
	for i := 0; i < 5; i++ {
		tb.Put("c", fmt.Sprintf("r%d", i), Ack{FirstSN: int64(i)})
	}
	if tb.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tb.Len())
	}
	if tb.Evictions() != 2 {
		t.Fatalf("Evictions = %d, want 2", tb.Evictions())
	}
	// Oldest two are gone, newest three remain.
	for i := 0; i < 2; i++ {
		if _, ok := tb.Lookup("c", fmt.Sprintf("r%d", i)); ok {
			t.Errorf("r%d survived eviction", i)
		}
	}
	for i := 2; i < 5; i++ {
		if _, ok := tb.Lookup("c", fmt.Sprintf("r%d", i)); !ok {
			t.Errorf("r%d evicted early", i)
		}
	}
}

// The order slice must not grow without bound as old entries are evicted:
// head-index compaction keeps its length proportional to the cap, not to
// the total number of requests ever seen.
func TestTableMemoryBound(t *testing.T) {
	const cap = 64
	tb := NewTable(cap)
	for i := 0; i < 100*cap; i++ {
		tb.Put("c", fmt.Sprintf("r%d", i), Ack{FirstSN: int64(i)})
	}
	if tb.Len() != cap {
		t.Fatalf("Len = %d, want %d", tb.Len(), cap)
	}
	if n := len(tb.order) - tb.head; n != cap {
		t.Errorf("live order window = %d, want %d", n, cap)
	}
	// Compaction keeps the backing slice within a small multiple of cap.
	if len(tb.order) > 4*cap {
		t.Errorf("order slice length = %d after %d puts, want ≤ %d", len(tb.order), 100*cap, 4*cap)
	}
	if len(tb.m) != cap {
		t.Errorf("map size = %d, want %d", len(tb.m), cap)
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	tb := NewTable(8)
	want := []Entry{
		{ClientID: "a", RequestID: "r1", Ack: Ack{Chronicle: "calls", FirstSN: 1, LastSN: 3, Rows: 3}},
		{ClientID: "a", RequestID: "r2", Ack: Ack{Chronicle: "calls", FirstSN: 4, LastSN: 4, Rows: 1}},
		{ClientID: "b", RequestID: "r1", Ack: Ack{Chronicle: "taps", FirstSN: 0, LastSN: 9, Rows: 10}},
	}
	for _, e := range want {
		tb.Put(e.ClientID, e.RequestID, e.Ack)
	}

	var ents []Entry
	tb.Range(func(e Entry) bool { ents = append(ents, e); return true })
	buf := AppendEntries(nil, ents)
	var got []Entry
	n, err := DecodeSnapshot(buf, func(e Entry) error { got = append(got, e); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(want))
	}
	// Entries come back in insertion order (the FIFO order).
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// Truncated snapshots fail loudly rather than restoring a partial table.
	if _, err := DecodeSnapshot(buf[:len(buf)-3], func(Entry) error { return nil }); err == nil {
		t.Error("truncated snapshot decoded")
	}
	// Empty table roundtrips.
	empty := AppendEntries(nil, nil)
	if n, err := DecodeSnapshot(empty, func(Entry) error { t.Error("entry from empty snapshot"); return nil }); err != nil || n != len(empty) {
		t.Errorf("empty snapshot: n=%d err=%v", n, err)
	}
}

func TestDefaultCap(t *testing.T) {
	tb := NewTable(0)
	if tb.Cap() != DefaultCap {
		t.Errorf("Cap = %d, want %d", tb.Cap(), DefaultCap)
	}
	tb = NewTable(-5)
	if tb.Cap() != DefaultCap {
		t.Errorf("Cap(-5) = %d, want %d", tb.Cap(), DefaultCap)
	}
}
