// Package feed implements changefeeds: per-view delta publication to live
// subscribers with LSN cursors.
//
// The paper's central claim is that view deltas are cheap to compute
// incrementally; until now the engine computed every delta, folded it into
// the materialization, and threw it away. The feed hub makes the delta
// stream itself a product: the engine captures each persistent view's
// expression delta at maintenance time, stamps it with the mutation's LSN,
// and — strictly after the WAL commit that covers it — publishes it to
// every subscriber of that view.
//
// Correctness invariants:
//
//   - Publish-after-commit. A captured batch is published only after the
//     group-commit fsync covering its mutations succeeds. A crash can never
//     un-happen a delivered delta; on commit failure the batch is abandoned
//     (and the database latches read-only anyway).
//
//   - Per-view LSN order. Door tickets are drawn under the engine mutex in
//     the same order LSNs are allocated, and Publish retires tickets in
//     order, so a view's frames are published in strictly increasing LSN
//     order even when concurrent commits return out of order.
//
//   - Atomic resume. Subscribe registers the subscription and preloads the
//     tail backlog under the per-view mutex in one critical section, so a
//     frame published concurrently with Subscribe lands in exactly one of
//     backlog or live ring — never both, never neither.
//
// Memory model: frames are pooled and reference-counted. The tail ring
// holds one reference; each subscriber enqueue adds one. Row tuples are
// copied into a per-frame arena sized up-front, so the steady-state publish
// path allocates nothing per delta per subscriber.
package feed

import (
	"sync"
	"sync/atomic"

	"chronicledb/internal/chronicle"
	"chronicledb/internal/value"
)

// Config sizes the hub's bounded buffers.
type Config struct {
	// TailFrames is the per-view in-memory resume window, in frames. A
	// reconnecting subscriber whose cursor is at or past the tail horizon
	// catches up from the tail; older cursors fall back to a snapshot read.
	// Zero means DefaultTailFrames.
	TailFrames int
	// Ring is the per-subscriber live buffer, in frames. A subscriber whose
	// ring overflows is shed (ReasonSlow) rather than allowed to apply
	// backpressure to the append path. Zero means DefaultRing.
	Ring int
}

// Defaults for Config's zero values.
const (
	DefaultTailFrames = 1024
	DefaultRing       = 256
)

// Stats is a point-in-time snapshot of the hub counters.
type Stats struct {
	Subscribers      int64  // currently registered subscriptions
	SubscribedTotal  uint64 // subscriptions ever registered
	Published        uint64 // frames published
	RowsPublished    uint64 // delta rows across all published frames
	DroppedSlow      uint64 // subscriptions shed for ring overflow
	CatchupsTail     uint64 // resumes served from the in-memory tail
	CatchupsSnapshot uint64 // resumes that needed a snapshot read
	Evicted          uint64 // tail frames evicted (horizon advances)
}

// ResumeKind reports how a subscription's catch-up is served.
type ResumeKind uint8

const (
	// ResumeTail means the cursor is inside the in-memory tail window: the
	// missed frames were preloaded into the subscription's backlog and the
	// stream is gapless from fromLSN without any snapshot read.
	ResumeTail ResumeKind = iota
	// ResumeSnapshot means the cursor predates the tail horizon (or there
	// is no cursor): the caller must load a view snapshot, deliver it, and
	// then filter live frames with LSN ≤ the snapshot's applied LSN.
	ResumeSnapshot
)

// String names the resume kind for wire protocols.
func (k ResumeKind) String() string {
	if k == ResumeTail {
		return "tail"
	}
	return "snapshot"
}

// CloseReason says why a subscription stopped.
type CloseReason uint8

const (
	ReasonNone    CloseReason = iota
	ReasonSlow                // ring overflow: subscriber too slow for the feed
	ReasonDropped             // the view was dropped
	ReasonClosed              // subscriber-initiated close
)

// String names the close reason for wire protocols.
func (r CloseReason) String() string {
	switch r {
	case ReasonSlow:
		return "slow"
	case ReasonDropped:
		return "dropped"
	case ReasonClosed:
		return "closed"
	}
	return "none"
}

// Frame is one view's delta from one mutation: the expression delta rows
// that maintenance folded into the view, stamped with the mutation's LSN.
// Frames are immutable after capture, pooled, and reference-counted; every
// consumer that receives a frame from Drain must Release it.
type Frame struct {
	View string
	LSN  uint64
	Rows []chronicle.Row

	refs    atomic.Int32
	arena   []value.Value   // backing storage for all row tuples
	rowsBuf []chronicle.Row // backing storage for Rows
}

var framePool = sync.Pool{New: func() any { return new(Frame) }}

// newFrame copies rows into pooled storage. The arena is sized before any
// row slice is cut from it — growing it mid-fill would invalidate earlier
// slices.
func newFrame(view string, lsn uint64, rows []chronicle.Row) *Frame {
	f := framePool.Get().(*Frame)
	f.View, f.LSN = view, lsn
	f.refs.Store(1)
	total := 0
	for _, r := range rows {
		total += len(r.Vals)
	}
	if cap(f.arena) < total {
		f.arena = make([]value.Value, total)
	}
	f.arena = f.arena[:total]
	if cap(f.rowsBuf) < len(rows) {
		f.rowsBuf = make([]chronicle.Row, len(rows))
	}
	f.rowsBuf = f.rowsBuf[:len(rows)]
	off := 0
	for i, r := range rows {
		n := copy(f.arena[off:off+len(r.Vals)], r.Vals)
		f.rowsBuf[i] = chronicle.Row{SN: r.SN, Chronon: r.Chronon, LSN: r.LSN, Vals: value.Tuple(f.arena[off : off+n])}
		off += n
	}
	f.Rows = f.rowsBuf
	return f
}

func (f *Frame) retain() { f.refs.Add(1) }

// Release returns the caller's reference; the last release recycles the
// frame (arena and row buffer keep their capacity for the pool).
func (f *Frame) Release() {
	if f.refs.Add(-1) != 0 {
		return
	}
	f.View, f.LSN, f.Rows = "", 0, nil
	framePool.Put(f)
}

// Door orders publishes from one engine. Tickets are drawn under the
// engine mutex — the same critical section that allocates LSNs — and
// Publish/Abandon retire them in ticket order, so frames reach the hub in
// LSN order even though commits complete concurrently.
type Door struct {
	mu   sync.Mutex
	cond *sync.Cond
	next uint64 // last ticket issued
	done uint64 // last ticket retired
}

// NewDoor creates a publish door. One per engine.
func NewDoor() *Door {
	d := &Door{}
	d.cond = sync.NewCond(&d.mu)
	return d
}

func (d *Door) ticket() uint64 {
	d.mu.Lock()
	d.next++
	t := d.next
	d.mu.Unlock()
	return t
}

func (d *Door) await(t uint64) {
	d.mu.Lock()
	for d.done != t-1 {
		d.cond.Wait()
	}
	d.mu.Unlock()
}

func (d *Door) retire(t uint64) {
	d.mu.Lock()
	d.done = t
	d.cond.Broadcast()
	d.mu.Unlock()
}

// Batch accumulates the frames captured during one commit unit (one engine
// mutation, or one coalesced writer pass in the sharded kernel). Publish
// and Abandon are nil-safe so callers can thread a maybe-nil batch without
// branching.
type Batch struct {
	hub    *Hub
	door   *Door
	ticket uint64
	frames []*Frame
}

var batchPool = sync.Pool{New: func() any { return new(Batch) }}

// Begin opens a batch and draws its publish ticket. Call under the engine
// mutex at the first capture of the commit unit, so ticket order matches
// LSN order.
func (h *Hub) Begin(d *Door) *Batch {
	b := batchPool.Get().(*Batch)
	b.hub, b.door, b.ticket = h, d, d.ticket()
	return b
}

// Capture copies one view's delta rows into the batch. Rows are copied
// immediately: the caller's slices are engine scratch reused by the next
// mutation.
func (b *Batch) Capture(view string, lsn uint64, rows []chronicle.Row) {
	if len(rows) == 0 {
		return
	}
	b.frames = append(b.frames, newFrame(view, lsn, rows))
}

// Empty reports whether the batch captured no frames.
func (b *Batch) Empty() bool { return b == nil || len(b.frames) == 0 }

// Publish hands every captured frame to the hub, in capture order, after
// waiting for all earlier tickets from the same door. Call only after the
// WAL commit covering the batch succeeded.
func (b *Batch) Publish() {
	if b == nil {
		return
	}
	b.door.await(b.ticket)
	for _, f := range b.frames {
		b.hub.publish(f)
	}
	b.door.retire(b.ticket)
	b.free()
}

// Abandon retires the batch's ticket without publishing (commit failure).
// It still waits its turn: door tickets must retire in order.
func (b *Batch) Abandon() {
	if b == nil {
		return
	}
	b.door.await(b.ticket)
	b.door.retire(b.ticket)
	for _, f := range b.frames {
		f.Release()
	}
	b.free()
}

func (b *Batch) free() {
	for i := range b.frames {
		b.frames[i] = nil
	}
	b.frames = b.frames[:0]
	b.hub, b.door, b.ticket = nil, nil, 0
	batchPool.Put(b)
}

// Hub is the process-wide changefeed fan-out: per-view tail rings for
// resume, per-subscriber bounded rings for live delivery, and the counters
// behind the feed_* stats.
type Hub struct {
	cfg Config

	mu    sync.RWMutex
	views map[string]*feedView

	// base is the checkpoint horizon: deltas with LSN ≤ base predate the
	// restored checkpoint and are not individually available, so resumes
	// from before it must go through a snapshot.
	base atomic.Uint64

	subscribers     atomic.Int64
	subscribedTotal atomic.Uint64
	published       atomic.Uint64
	rowsPublished   atomic.Uint64
	droppedSlow     atomic.Uint64
	catchupTail     atomic.Uint64
	catchupSnap     atomic.Uint64
	evicted         atomic.Uint64
}

// NewHub creates a hub.
func NewHub(cfg Config) *Hub {
	if cfg.TailFrames <= 0 {
		cfg.TailFrames = DefaultTailFrames
	}
	if cfg.Ring <= 0 {
		cfg.Ring = DefaultRing
	}
	return &Hub{cfg: cfg, views: make(map[string]*feedView)}
}

// feedView is one view's feed state. mu guards the tail ring, the head
// cursor, and every registered subscription's queue (publish already holds
// it, so subscriber queues share it rather than adding a second lock to
// the publish path).
type feedView struct {
	hub  *Hub
	name string

	mu         sync.Mutex
	tail       []*Frame // circular buffer, cap == Config.TailFrames
	tailHead   int
	tailN      int
	evictedLSN uint64 // highest LSN evicted from the tail
	headLSN    uint64 // highest LSN published
	subs       map[*Subscription]struct{}
}

func (h *Hub) viewFeed(name string) *feedView {
	h.mu.RLock()
	fv := h.views[name]
	h.mu.RUnlock()
	if fv != nil {
		return fv
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if fv = h.views[name]; fv != nil {
		return fv
	}
	fv = &feedView{
		hub:  h,
		name: name,
		tail: make([]*Frame, h.cfg.TailFrames),
		subs: make(map[*Subscription]struct{}),
	}
	h.views[name] = fv
	return fv
}

// publish appends the frame (which arrives holding the tail's reference)
// to the view's tail ring and enqueues it to every live subscriber. A
// subscriber whose ring is full is shed on the spot.
func (h *Hub) publish(f *Frame) {
	fv := h.viewFeed(f.View)
	rows := len(f.Rows)
	fv.mu.Lock()
	if fv.tailN == len(fv.tail) {
		old := fv.tail[fv.tailHead]
		fv.evictedLSN = old.LSN
		fv.tail[fv.tailHead] = f
		fv.tailHead = (fv.tailHead + 1) % len(fv.tail)
		old.Release()
		h.evicted.Add(1)
	} else {
		fv.tail[(fv.tailHead+fv.tailN)%len(fv.tail)] = f
		fv.tailN++
	}
	for sub := range fv.subs {
		if !sub.enqueueLocked(f) {
			sub.closeLocked(ReasonSlow)
			delete(fv.subs, sub)
			h.subscribers.Add(-1)
			h.droppedSlow.Add(1)
		}
	}
	fv.headLSN = f.LSN
	fv.mu.Unlock()
	h.published.Add(1)
	h.rowsPublished.Add(uint64(rows))
}

// HeadLSN returns the highest LSN published for a view (0 if none). The
// server's heartbeats advertise it so an idle subscriber's cursor still
// advances.
func (h *Hub) HeadLSN(view string) uint64 {
	h.mu.RLock()
	fv := h.views[view]
	h.mu.RUnlock()
	if fv == nil {
		return 0
	}
	fv.mu.Lock()
	defer fv.mu.Unlock()
	return fv.headLSN
}

// SetBase raises the checkpoint horizon: resumes from at or before base
// can no longer be served from the tail. Recovery calls it with the
// restored checkpoint's LSN before the WAL suffix replays.
func (h *Hub) SetBase(lsn uint64) {
	for {
		cur := h.base.Load()
		if lsn <= cur || h.base.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// Subscribe registers a live subscription on a view.
//
// With hasFrom, fromLSN is the subscriber's cursor: the LSN of the last
// delta it has already applied. If the cursor is at or past the tail
// horizon the missed frames are preloaded into the subscription's backlog
// (ResumeTail) — registration and preload happen atomically under the view
// lock, so the stream is gapless and duplicate-free from fromLSN+1 on.
// Otherwise (no cursor, or one older than the horizon) the caller must
// deliver a view snapshot and filter live frames with LSN ≤ the snapshot's
// applied LSN (ResumeSnapshot); registering before the snapshot read makes
// the splice gapless.
func (h *Hub) Subscribe(view string, fromLSN uint64, hasFrom bool) (*Subscription, ResumeKind) {
	fv := h.viewFeed(view)
	sub := &Subscription{
		fv:     fv,
		notify: make(chan struct{}, 1),
		ring:   make([]*Frame, h.cfg.Ring),
	}
	fv.mu.Lock()
	horizon := fv.evictedLSN
	if b := h.base.Load(); b > horizon {
		horizon = b
	}
	kind := ResumeSnapshot
	if hasFrom && fromLSN >= horizon {
		kind = ResumeTail
		for i := 0; i < fv.tailN; i++ {
			f := fv.tail[(fv.tailHead+i)%len(fv.tail)]
			if f.LSN > fromLSN {
				f.retain()
				sub.backlog = append(sub.backlog, f)
			}
		}
	}
	fv.subs[sub] = struct{}{}
	fv.mu.Unlock()
	if len(sub.backlog) > 0 {
		// Wake the subscriber for the preloaded backlog: without this, a
		// tail resume with no further publishes would wait forever.
		select {
		case sub.notify <- struct{}{}:
		default:
		}
	}
	h.subscribers.Add(1)
	h.subscribedTotal.Add(1)
	if kind == ResumeTail {
		h.catchupTail.Add(1)
	} else {
		h.catchupSnap.Add(1)
	}
	return sub, kind
}

// DropView closes every subscription on a view and frees its tail. The
// engine calls it from DROP VIEW.
func (h *Hub) DropView(view string) {
	h.mu.Lock()
	fv := h.views[view]
	delete(h.views, view)
	h.mu.Unlock()
	if fv == nil {
		return
	}
	fv.mu.Lock()
	for sub := range fv.subs {
		sub.closeLocked(ReasonDropped)
		h.subscribers.Add(-1)
	}
	clear(fv.subs)
	for i := 0; i < fv.tailN; i++ {
		fv.tail[(fv.tailHead+i)%len(fv.tail)].Release()
	}
	fv.tailN, fv.tailHead = 0, 0
	fv.mu.Unlock()
}

// Stats snapshots the hub counters.
func (h *Hub) Stats() Stats {
	return Stats{
		Subscribers:      h.subscribers.Load(),
		SubscribedTotal:  h.subscribedTotal.Load(),
		Published:        h.published.Load(),
		RowsPublished:    h.rowsPublished.Load(),
		DroppedSlow:      h.droppedSlow.Load(),
		CatchupsTail:     h.catchupTail.Load(),
		CatchupsSnapshot: h.catchupSnap.Load(),
		Evicted:          h.evicted.Load(),
	}
}

// Subscription is one subscriber's bounded view of a feed: a backlog
// (catch-up frames preloaded at subscribe) plus a live ring. All state is
// guarded by the owning feedView's mutex.
type Subscription struct {
	fv     *feedView
	notify chan struct{}

	backlog []*Frame
	ring    []*Frame // circular buffer, cap == Config.Ring
	head, n int

	closed bool
	reason CloseReason
}

// C signals that frames (or a close) are ready; receive then Drain.
func (s *Subscription) C() <-chan struct{} { return s.notify }

// View names the view this subscription watches.
func (s *Subscription) View() string { return s.fv.name }

// enqueueLocked adds one live frame; false means the ring is full and the
// subscriber must be shed. Caller holds fv.mu.
func (s *Subscription) enqueueLocked(f *Frame) bool {
	if s.n == len(s.ring) {
		return false
	}
	f.retain()
	s.ring[(s.head+s.n)%len(s.ring)] = f
	s.n++
	select {
	case s.notify <- struct{}{}:
	default:
	}
	return true
}

// Drain appends every pending frame (backlog first, then live ring, both
// in LSN order) to dst and returns it. Ownership of one reference per
// frame transfers to the caller, which must Release each frame after use.
func (s *Subscription) Drain(dst []*Frame) []*Frame {
	s.fv.mu.Lock()
	dst = append(dst, s.backlog...)
	for i := range s.backlog {
		s.backlog[i] = nil
	}
	s.backlog = s.backlog[:0]
	for s.n > 0 {
		dst = append(dst, s.ring[s.head])
		s.ring[s.head] = nil
		s.head = (s.head + 1) % len(s.ring)
		s.n--
	}
	s.fv.mu.Unlock()
	return dst
}

// Pending reports how many frames Drain would return.
func (s *Subscription) Pending() int {
	s.fv.mu.Lock()
	defer s.fv.mu.Unlock()
	return len(s.backlog) + s.n
}

// Closed reports whether the subscription has stopped and why.
func (s *Subscription) Closed() (bool, CloseReason) {
	s.fv.mu.Lock()
	defer s.fv.mu.Unlock()
	return s.closed, s.reason
}

// closeLocked releases queued frames and marks the subscription closed.
// Caller holds fv.mu and removes the subscription from fv.subs itself.
func (s *Subscription) closeLocked(reason CloseReason) {
	if s.closed {
		return
	}
	s.closed, s.reason = true, reason
	for _, f := range s.backlog {
		f.Release()
	}
	s.backlog = nil
	for s.n > 0 {
		s.ring[s.head].Release()
		s.ring[s.head] = nil
		s.head = (s.head + 1) % len(s.ring)
		s.n--
	}
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Close unregisters the subscription (subscriber went away). Safe to call
// more than once and after a shed or DropView.
func (s *Subscription) Close() {
	fv := s.fv
	fv.mu.Lock()
	if s.closed {
		fv.mu.Unlock()
		return
	}
	s.closeLocked(ReasonClosed)
	delete(fv.subs, s)
	fv.mu.Unlock()
	fv.hub.subscribers.Add(-1)
}
