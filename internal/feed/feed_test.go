package feed

import (
	"sync"
	"testing"

	"chronicledb/internal/chronicle"
	"chronicledb/internal/value"
)

// rowsFor builds n one-column delta rows carrying val, stamped with lsn.
func rowsFor(lsn uint64, n int, val int64) []chronicle.Row {
	out := make([]chronicle.Row, n)
	for i := range out {
		out[i] = chronicle.Row{SN: int64(lsn), Chronon: int64(lsn), LSN: lsn, Vals: value.Tuple{value.Int(val)}}
	}
	return out
}

// publishOne pushes one frame for view at lsn through a full batch cycle.
func publishOne(h *Hub, d *Door, view string, lsn uint64, val int64) {
	b := h.Begin(d)
	b.Capture(view, lsn, rowsFor(lsn, 1, val))
	b.Publish()
}

// drainLSNs empties a subscription, releasing frames and returning LSNs.
func drainLSNs(sub *Subscription, frames []*Frame) ([]uint64, []*Frame) {
	frames = sub.Drain(frames[:0])
	var lsns []uint64
	for _, f := range frames {
		lsns = append(lsns, f.LSN)
		f.Release()
	}
	return lsns, frames
}

func TestSubscribeNoCursorIsSnapshot(t *testing.T) {
	h := NewHub(Config{})
	sub, kind := h.Subscribe("v", 0, false)
	defer sub.Close()
	if kind != ResumeSnapshot {
		t.Fatalf("no-cursor resume = %v, want snapshot", kind)
	}
	st := h.Stats()
	if st.Subscribers != 1 || st.CatchupsSnapshot != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPublishDeliversInLSNOrder(t *testing.T) {
	h := NewHub(Config{})
	d := NewDoor()
	sub, _ := h.Subscribe("v", 0, false)
	defer sub.Close()

	for lsn := uint64(1); lsn <= 5; lsn++ {
		publishOne(h, d, "v", lsn, int64(lsn))
	}
	<-sub.C()
	lsns, _ := drainLSNs(sub, nil)
	if len(lsns) != 5 {
		t.Fatalf("got %d frames, want 5", len(lsns))
	}
	for i, lsn := range lsns {
		if lsn != uint64(i+1) {
			t.Fatalf("lsns = %v, want 1..5", lsns)
		}
	}
	if st := h.Stats(); st.Published != 5 || st.RowsPublished != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDoorOrdersOutOfOrderCommits draws two tickets in order but publishes
// the second batch first from another goroutine: the door must hold it
// until the first ticket retires, so the subscriber still sees LSN order.
func TestDoorOrdersOutOfOrderCommits(t *testing.T) {
	h := NewHub(Config{})
	d := NewDoor()
	sub, _ := h.Subscribe("v", 0, false)
	defer sub.Close()

	b1 := h.Begin(d)
	b1.Capture("v", 1, rowsFor(1, 1, 1))
	b2 := h.Begin(d)
	b2.Capture("v", 2, rowsFor(2, 1, 2))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		b2.Publish() // must block until b1 retires
	}()
	b1.Publish()
	wg.Wait()

	lsns, _ := drainLSNs(sub, nil)
	if len(lsns) != 2 || lsns[0] != 1 || lsns[1] != 2 {
		t.Fatalf("lsns = %v, want [1 2]", lsns)
	}
}

// TestAbandonRetiresTicket proves a failed commit's batch does not wedge
// the door: the next ticket still publishes.
func TestAbandonRetiresTicket(t *testing.T) {
	h := NewHub(Config{})
	d := NewDoor()
	sub, _ := h.Subscribe("v", 0, false)
	defer sub.Close()

	b1 := h.Begin(d)
	b1.Capture("v", 1, rowsFor(1, 1, 1))
	b1.Abandon()
	publishOne(h, d, "v", 2, 2)

	lsns, _ := drainLSNs(sub, nil)
	if len(lsns) != 1 || lsns[0] != 2 {
		t.Fatalf("lsns = %v, want [2] (abandoned frame must not publish)", lsns)
	}
}

func TestTailResume(t *testing.T) {
	h := NewHub(Config{})
	d := NewDoor()
	for lsn := uint64(1); lsn <= 10; lsn++ {
		publishOne(h, d, "v", lsn, int64(lsn))
	}
	sub, kind := h.Subscribe("v", 5, true)
	defer sub.Close()
	if kind != ResumeTail {
		t.Fatalf("resume = %v, want tail", kind)
	}
	lsns, _ := drainLSNs(sub, nil)
	want := []uint64{6, 7, 8, 9, 10}
	if len(lsns) != len(want) {
		t.Fatalf("backlog lsns = %v, want %v", lsns, want)
	}
	for i := range want {
		if lsns[i] != want[i] {
			t.Fatalf("backlog lsns = %v, want %v", lsns, want)
		}
	}
	if st := h.Stats(); st.CatchupsTail != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestEvictionForcesSnapshot shrinks the tail so old cursors fall off the
// resume window and must take the snapshot path.
func TestEvictionForcesSnapshot(t *testing.T) {
	h := NewHub(Config{TailFrames: 4})
	d := NewDoor()
	for lsn := uint64(1); lsn <= 10; lsn++ {
		publishOne(h, d, "v", lsn, int64(lsn))
	}
	// Tail holds 7..10; a cursor at 2 predates the horizon.
	sub, kind := h.Subscribe("v", 2, true)
	defer sub.Close()
	if kind != ResumeSnapshot {
		t.Fatalf("resume = %v, want snapshot (cursor evicted)", kind)
	}
	// A cursor inside the window still tail-resumes.
	sub2, kind2 := h.Subscribe("v", 8, true)
	defer sub2.Close()
	if kind2 != ResumeTail {
		t.Fatalf("resume = %v, want tail", kind2)
	}
	lsns, _ := drainLSNs(sub2, nil)
	if len(lsns) != 2 || lsns[0] != 9 || lsns[1] != 10 {
		t.Fatalf("backlog = %v, want [9 10]", lsns)
	}
	if st := h.Stats(); st.Evicted != 6 {
		t.Fatalf("evicted = %d, want 6", st.Evicted)
	}
}

// TestSetBaseRaisesHorizon mirrors recovery: after a checkpoint restore
// the tail is empty and base is the checkpoint LSN, so any older cursor
// must fall back to a snapshot.
func TestSetBaseRaisesHorizon(t *testing.T) {
	h := NewHub(Config{})
	h.SetBase(100)
	if sub, kind := h.Subscribe("v", 50, true); kind != ResumeSnapshot {
		t.Fatalf("resume below base = %v, want snapshot", kind)
	} else {
		sub.Close()
	}
	if sub, kind := h.Subscribe("v", 100, true); kind != ResumeTail {
		t.Fatalf("resume at base = %v, want tail", kind)
	} else {
		sub.Close()
	}
}

// TestSlowConsumerShed overflows a tiny subscriber ring: the hub must shed
// the subscriber (ReasonSlow), release its frames, and keep publishing to
// healthy subscribers.
func TestSlowConsumerShed(t *testing.T) {
	h := NewHub(Config{Ring: 2})
	d := NewDoor()
	slow, _ := h.Subscribe("v", 0, false)
	for lsn := uint64(1); lsn <= 4; lsn++ {
		publishOne(h, d, "v", lsn, int64(lsn))
	}
	closed, reason := slow.Closed()
	if !closed || reason != ReasonSlow {
		t.Fatalf("closed=%v reason=%v, want slow shed", closed, reason)
	}
	st := h.Stats()
	if st.DroppedSlow != 1 || st.Subscribers != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The shed subscriber's queue was released; Drain returns nothing.
	if frames := slow.Drain(nil); len(frames) != 0 {
		t.Fatalf("drained %d frames from shed subscriber", len(frames))
	}
}

func TestDropViewClosesSubscribers(t *testing.T) {
	h := NewHub(Config{})
	d := NewDoor()
	publishOne(h, d, "v", 1, 1)
	sub, _ := h.Subscribe("v", 0, false)
	h.DropView("v")
	closed, reason := sub.Closed()
	if !closed || reason != ReasonDropped {
		t.Fatalf("closed=%v reason=%v, want dropped", closed, reason)
	}
	// The view's tail is gone: a fresh subscription starts from scratch.
	sub2, kind := h.Subscribe("v", 1, true)
	defer sub2.Close()
	if kind != ResumeTail {
		// Horizon fell back to base 0... cursor 1 >= 0 is still tail-able
		// against an empty tail; both kinds are defensible, but the backlog
		// must be empty either way.
		t.Logf("post-drop resume = %v", kind)
	}
	if lsns, _ := drainLSNs(sub2, nil); len(lsns) != 0 {
		t.Fatalf("backlog after drop = %v, want empty", lsns)
	}
}

// TestSubscribeDuringPublish races subscriptions against publishes: every
// subscriber must see a strictly increasing LSN sequence with no
// duplicates, whether a frame arrived via backlog or live enqueue.
func TestSubscribeDuringPublish(t *testing.T) {
	// Ring must hold the whole run: this test checks ordering, not
	// shedding, and a shed subscriber would block forever on C().
	h := NewHub(Config{Ring: 1024})
	d := NewDoor()
	const total = 500
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for lsn := uint64(1); lsn <= total; lsn++ {
			publishOne(h, d, "v", lsn, int64(lsn))
		}
	}()

	results := make([][]uint64, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Join mid-stream at an arbitrary point with a cursor of 0: the
			// horizon may have moved past it, in which case the snapshot
			// kind tells the caller to read the view; here we only check
			// the live stream's ordering.
			sub, _ := h.Subscribe("v", 0, true)
			defer sub.Close()
			var got []uint64
			var frames []*Frame
			for {
				var lsns []uint64
				lsns, frames = drainLSNs(sub, frames)
				got = append(got, lsns...)
				if len(got) > 0 && got[len(got)-1] == total {
					break
				}
				if closed, reason := sub.Closed(); closed {
					t.Errorf("subscriber %d shed (%v) before seeing LSN %d", i, reason, total)
					break
				}
				<-sub.C()
			}
			results[i] = got
		}(i)
	}
	wg.Wait()
	for i, got := range results {
		for j := 1; j < len(got); j++ {
			if got[j] <= got[j-1] {
				t.Fatalf("subscriber %d: LSNs not strictly increasing at %d: %d then %d",
					i, j, got[j-1], got[j])
			}
		}
		if got[len(got)-1] != total {
			t.Fatalf("subscriber %d: last LSN %d, want %d", i, got[len(got)-1], total)
		}
	}
}

// TestEmptyBatchSkipsCapture proves empty delta slices produce no frames.
func TestEmptyBatchSkipsCapture(t *testing.T) {
	h := NewHub(Config{})
	d := NewDoor()
	b := h.Begin(d)
	b.Capture("v", 1, nil)
	if !b.Empty() {
		t.Fatal("empty capture must leave the batch empty")
	}
	b.Publish()
	if st := h.Stats(); st.Published != 0 {
		t.Fatalf("published = %d, want 0", st.Published)
	}
}
