package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	chronicledb "chronicledb"
)

func newTestServer(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	db, err := chronicledb.Open(chronicledb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(db))
	t.Cleanup(ts.Close)
	return ts, NewClient(ts.URL)
}

func TestExecOverHTTP(t *testing.T) {
	_, c := newTestServer(t)
	if _, err := c.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total FROM calls GROUP BY acct`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`APPEND INTO calls VALUES ('alice', 12)`); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec(`SELECT * FROM usage WHERE acct = 'alice'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// JSON numbers decode as float64.
	if res.Rows[0][0] != "alice" || res.Rows[0][1].(float64) != 12 {
		t.Errorf("row = %v", res.Rows[0])
	}
	if res.Columns[1] != "total" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestExecErrorsOverHTTP(t *testing.T) {
	_, c := newTestServer(t)
	_, err := c.Exec(`APPEND INTO ghost VALUES (1)`)
	if err == nil || !strings.Contains(err.Error(), "unknown chronicle") {
		t.Errorf("err = %v", err)
	}
	_, err = c.Exec(``)
	if err == nil {
		t.Error("empty statement accepted")
	}
}

func TestStatsAndHealth(t *testing.T) {
	_, c := newTestServer(t)
	if !c.Healthy() {
		t.Error("health check failed")
	}
	c.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT)`)
	c.Exec(`APPEND INTO calls VALUES ('alice', 12)`)
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// JSON numbers decode as float64.
	if st["appends"] != float64(1) || st["tuples_appended"] != float64(1) {
		t.Errorf("stats = %v", st)
	}
	if st["read_only"] != false {
		t.Errorf("read_only = %v", st["read_only"])
	}
}

func TestLatestEndpoint(t *testing.T) {
	ts, c := newTestServer(t)
	c.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT)`)
	c.Exec(`CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total FROM calls GROUP BY acct WITH STORE BTREE`)
	for _, acct := range []string{"alice", "bob", "carol", "dave"} {
		if _, err := c.Exec(`APPEND INTO calls VALUES ('` + acct + `', 5)`); err != nil {
			t.Fatal(err)
		}
	}
	var body struct {
		Columns []string `json:"columns"`
		Rows    [][]any  `json:"rows"`
	}
	resp, err := http.Get(ts.URL + "/latest?view=usage&n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	// Highest group keys first, capped at n.
	if len(body.Rows) != 2 || body.Rows[0][0] != "dave" || body.Rows[1][0] != "carol" {
		t.Errorf("latest rows = %v", body.Rows)
	}
	if body.Columns[0] != "acct" {
		t.Errorf("columns = %v", body.Columns)
	}
	for _, bad := range []string{"/latest", "/latest?view=ghost", "/latest?view=usage&n=0", "/latest?view=usage&n=x"} {
		resp, err := http.Get(ts.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("GET %s succeeded", bad)
		}
	}

	// The reads above show up in the stats read counters.
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st["read_scans"].(float64) == 0 {
		t.Errorf("read_scans = %v", st["read_scans"])
	}
	if _, ok := st["snapshot_age_ns"]; !ok {
		t.Error("snapshot_age_ns missing from stats")
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/exec", "application/json", strings.NewReader(`{not json`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/exec", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing stmt status = %d", resp.StatusCode)
	}
	// Unknown route.
	resp, err = http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown route status = %d", resp.StatusCode)
	}
}

func TestClientAgainstDeadServer(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // nothing listens here
	if c.Healthy() {
		t.Error("dead server reported healthy")
	}
	if _, err := c.Exec("SHOW VIEWS"); err == nil {
		t.Error("Exec against dead server succeeded")
	}
	if _, err := c.Stats(); err == nil {
		t.Error("Stats against dead server succeeded")
	}
}

func TestBulkAppend(t *testing.T) {
	_, c := newTestServer(t)
	c.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT, cost FLOAT)`)
	c.Exec(`CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total FROM calls GROUP BY acct`)
	resp, err := c.AppendRows("calls", [][]any{
		{"alice", 10, 1.5},
		{"alice", 5, 0.25},
		{"bob", 7, nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rows != 3 || resp.LastSN != resp.FirstSN+2 {
		t.Errorf("resp = %+v", resp)
	}
	res, err := c.Exec(`SELECT * FROM usage WHERE acct = 'alice'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][1].(float64) != 15 {
		t.Errorf("usage = %v", res.Rows)
	}
}

func TestBulkAppendErrors(t *testing.T) {
	_, c := newTestServer(t)
	c.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT)`)
	if _, err := c.AppendRows("ghost", [][]any{{"a", 1}}); err == nil {
		t.Error("unknown chronicle accepted")
	}
	if _, err := c.AppendRows("calls", nil); err == nil {
		t.Error("empty rows accepted")
	}
	if _, err := c.AppendRows("calls", [][]any{{"a"}}); err == nil {
		t.Error("arity violation accepted")
	}
	if _, err := c.AppendRows("calls", [][]any{{"a", 1.5}}); err == nil {
		t.Error("fractional value for INT column accepted")
	}
	if _, err := c.AppendRows("calls", [][]any{{"a", []any{1}}}); err == nil {
		t.Error("nested JSON accepted")
	}
}
