package server

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	chronicledb "chronicledb"
	"chronicledb/internal/fault"
)

// degradedServer builds a durable DB on a simulated disk, seeds a
// chronicle, then injects a sync failure so the next append degrades the
// database to read-only. It uses SyncPerAppend (the fsync happens inside
// the WAL append, before the mutation reaches memory) so the failed append
// is both un-acked and invisible; under the default group commit the fsync
// is deferred, so a failed batch stays visible in memory until the restart
// reconverges to the durable prefix.
func degradedServer(t *testing.T) (*httptest.Server, *Client, *fault.Disk) {
	t.Helper()
	disk := fault.NewDisk()
	db, err := chronicledb.Open(chronicledb.Options{Dir: "/data", SyncWAL: true, SyncPerAppend: true, FS: disk})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	ts := httptest.NewServer(New(db))
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)
	if _, err := c.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT) RETAIN ALL`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AppendRows("calls", [][]any{{"alice", 10}}); err != nil {
		t.Fatal(err)
	}
	disk.FailNthSync(disk.Syncs()) // poison the WAL on its next fsync
	return ts, c, disk
}

func TestReadOnlyDegradation(t *testing.T) {
	ts, c, _ := degradedServer(t)

	// The append whose WAL sync fails is not acked…
	if _, err := c.AppendRows("calls", [][]any{{"bob", 5}}); err == nil {
		t.Fatal("append with failing WAL sync acked")
	}
	// …and from here the DB is read-only: /append and /exec writes serve 503.
	resp, err := http.Post(ts.URL+"/append", "application/json",
		strings.NewReader(`{"chronicle":"calls","rows":[["carol",1]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/append while degraded: status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/exec", "application/json",
		strings.NewReader(`{"stmt":"APPEND INTO calls VALUES ('carol', 1)"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/exec write while degraded: status %d, want 503", resp.StatusCode)
	}

	// Reads still work: the acked row is served.
	res, err := c.Exec(`SELECT * FROM calls`)
	if err != nil {
		t.Fatalf("read while degraded: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("read while degraded: rows = %v", res.Rows)
	}

	// /healthz flips to 503 with the cause; /stats carries it too.
	if c.Healthy() {
		t.Error("degraded server reported healthy")
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]string
	json.NewDecoder(hresp.Body).Decode(&health)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable || health["status"] != "degraded" {
		t.Errorf("healthz = %d %v", hresp.StatusCode, health)
	}
	if !strings.Contains(health["error"], "wal") {
		t.Errorf("healthz cause = %q", health["error"])
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st["read_only"] != true || st["read_only_cause"] == nil {
		t.Errorf("stats = %v", st)
	}
}

func TestMaxBodyBytes(t *testing.T) {
	db, err := chronicledb.Open(chronicledb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewWith(db, Config{MaxBodyBytes: 128}))
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)
	if _, err := c.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT)`); err != nil {
		t.Fatal(err)
	}
	big := `{"stmt":"APPEND INTO calls VALUES ('` + strings.Repeat("x", 1024) + `', 1)"}`
	resp, err := http.Post(ts.URL+"/exec", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
	// A small request still works.
	if _, err := c.Exec(`APPEND INTO calls VALUES ('a', 1)`); err != nil {
		t.Fatal(err)
	}
}

func TestPanicRecovery(t *testing.T) {
	db, err := chronicledb.Open(chronicledb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(db)
	s.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatalf("panic killed the connection: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("panic: status %d, want 500", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
		t.Errorf("panic: body not a JSON error (%v)", err)
	}
	// The server survives for the next request.
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("server dead after panic: %v", err)
	} else {
		resp.Body.Close()
	}
}

func TestGracefulShutdown(t *testing.T) {
	disk := fault.NewDisk()
	db, err := chronicledb.Open(chronicledb.Options{Dir: "/data", FS: disk})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, ln, New(db), 5*time.Second, 5*time.Second) }()

	c := NewClient("http://" + ln.Addr().String())
	if _, err := c.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT) RETAIN ALL`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AppendRows("calls", [][]any{{"alice", 10}}); err != nil {
		t.Fatal(err)
	}

	cancel() // SIGTERM-equivalent
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not complete")
	}
	// The listener is closed.
	if c.Healthy() {
		t.Error("server still serving after shutdown")
	}
	// Shutdown flushed and fsynced the WAL: the acked append is durable —
	// it survives a power cut and is served by the next process.
	db.Close()
	disk.PowerCut()
	disk.Heal()
	db2, err := chronicledb.Open(chronicledb.Options{Dir: "/data", FS: disk})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Exec(`SELECT * FROM calls`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("acked append lost across shutdown: %v", res.Rows)
	}
}
