package server

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	chronicledb "chronicledb"
)

// fakeClock is an injectable clock for backoff/breaker tests: no test in
// this file sleeps on the wall clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func TestBackoffDelayBounds(t *testing.T) {
	cfg := ClientConfig{BaseBackoff: 25 * time.Millisecond, MaxBackoff: 2 * time.Second}
	low := cfg
	low.rnd = func() float64 { return 0 }
	high := cfg
	high.rnd = func() float64 { return 0.999999 }
	cl := NewClientWith("http://x", low)
	ch := NewClientWith("http://x", high)

	for k := 0; k < 12; k++ {
		nominal := cfg.BaseBackoff << k
		if nominal > cfg.MaxBackoff || nominal <= 0 {
			nominal = cfg.MaxBackoff
		}
		lo := cl.backoffDelay(k, 0)
		hi := ch.backoffDelay(k, 0)
		if lo != nominal/2 {
			t.Errorf("k=%d: low jitter = %v, want %v", k, lo, nominal/2)
		}
		if hi < nominal/2 || hi >= nominal {
			t.Errorf("k=%d: high jitter = %v, want in [%v, %v)", k, hi, nominal/2, nominal)
		}
	}
	// Overflow-proof: a huge retry count still caps at MaxBackoff.
	if d := ch.backoffDelay(62, 0); d >= cfg.MaxBackoff {
		t.Errorf("overflowed shift delay = %v", d)
	}
	// Retry-After larger than the exponential delay wins.
	if d := cl.backoffDelay(0, 800*time.Millisecond); d != 400*time.Millisecond {
		t.Errorf("retry-after delay = %v, want 400ms", d)
	}
	// Retry-After smaller than the exponential delay is ignored.
	if d := cl.backoffDelay(8, time.Millisecond); d != cfg.MaxBackoff/2 {
		t.Errorf("small retry-after delay = %v, want %v", d, cfg.MaxBackoff/2)
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	if d := parseRetryAfter("3", now); d != 3*time.Second {
		t.Errorf("seconds form = %v", d)
	}
	if d := parseRetryAfter(now.Add(10*time.Second).Format(http.TimeFormat), now); d != 10*time.Second {
		t.Errorf("http-date form = %v", d)
	}
	for _, bad := range []string{"", "soon", "-5", now.Add(-time.Minute).Format(http.TimeFormat)} {
		if d := parseRetryAfter(bad, now); d != 0 {
			t.Errorf("parseRetryAfter(%q) = %v, want 0", bad, d)
		}
	}
}

func TestBreakerTransitions(t *testing.T) {
	clk := newFakeClock()
	b := breaker{threshold: 3, cooldown: 2 * time.Second, now: clk.now}

	// Failures below the threshold keep the circuit closed.
	b.onFailure()
	b.onFailure()
	if err := b.allow(); err != nil {
		t.Fatalf("closed breaker denied: %v", err)
	}
	// The threshold-th consecutive failure opens it; calls fail fast.
	b.onFailure()
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker allowed: %v", err)
	}
	// After the cooldown exactly one probe is admitted.
	clk.advance(2 * time.Second)
	if err := b.allow(); err != nil {
		t.Fatalf("half-open probe denied: %v", err)
	}
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second concurrent probe allowed: %v", err)
	}
	// A failing probe re-opens for a fresh cooldown.
	b.onFailure()
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("re-opened breaker allowed")
	}
	clk.advance(2 * time.Second)
	if err := b.allow(); err != nil {
		t.Fatalf("second probe denied: %v", err)
	}
	// A succeeding probe closes the circuit and resets the failure count.
	b.onSuccess()
	if err := b.allow(); err != nil {
		t.Fatalf("closed-after-probe denied: %v", err)
	}
	b.onFailure()
	b.onFailure()
	if err := b.allow(); err != nil {
		t.Fatalf("failure count not reset: %v", err)
	}
}

func TestClientRetries429ThenSucceeds(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"overloaded"}`))
			return
		}
		w.Write([]byte(`{"columns":null,"rows":null}`))
	}))
	defer ts.Close()

	var slept []time.Duration
	c := NewClientWith(ts.URL, ClientConfig{
		MaxAttempts: 4,
		sleep:       func(d time.Duration) { slept = append(slept, d) },
		rnd:         func() float64 { return 0 },
	})
	if _, err := c.Exec("SHOW VIEWS"); err != nil {
		t.Fatalf("Exec after sheds: %v", err)
	}
	if hits.Load() != 3 {
		t.Errorf("attempts = %d, want 3", hits.Load())
	}
	// Both backoffs honor the server's 1s Retry-After (jitter floor = d/2).
	if len(slept) != 2 || slept[0] != 500*time.Millisecond || slept[1] != 500*time.Millisecond {
		t.Errorf("sleeps = %v", slept)
	}
}

func TestClientDoesNotRetryReadOnly(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"database is read-only: wal append failed"}`))
	}))
	defer ts.Close()

	c := NewClientWith(ts.URL, ClientConfig{sleep: func(time.Duration) {}})
	_, err := c.Exec("APPEND INTO calls VALUES (1)")
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("err = %v, want ErrReadOnly", err)
	}
	if hits.Load() != 1 {
		t.Errorf("attempts = %d, want 1 (503 must not be retried)", hits.Load())
	}
}

func TestClientDoesNotRetryPermanent4xx(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"parse error"}`))
	}))
	defer ts.Close()

	c := NewClientWith(ts.URL, ClientConfig{sleep: func(time.Duration) {}})
	_, err := c.Exec("BOGUS")
	if err == nil || errors.Is(err, ErrOverloaded) || errors.Is(err, ErrReadOnly) {
		t.Fatalf("err = %v", err)
	}
	if hits.Load() != 1 {
		t.Errorf("attempts = %d, want 1", hits.Load())
	}
}

func TestClient429ExhaustionIsTyped(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"overloaded"}`))
	}))
	defer ts.Close()

	c := NewClientWith(ts.URL, ClientConfig{
		MaxAttempts: 3, sleep: func(time.Duration) {}, BreakerThreshold: -1,
	})
	_, err := c.Exec("SHOW VIEWS")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
}

// countingDialErrTransport fails every round trip with a dial-shaped error
// and counts how many attempts actually reached the transport.
type countingDialErrTransport struct{ calls atomic.Int64 }

func (tr *countingDialErrTransport) RoundTrip(*http.Request) (*http.Response, error) {
	tr.calls.Add(1)
	return nil, &net.OpError{Op: "dial", Net: "tcp", Err: errors.New("connection refused")}
}

func TestClientCircuitBreakerFailsFast(t *testing.T) {
	tr := &countingDialErrTransport{}
	clk := newFakeClock()
	c := NewClientWith("http://127.0.0.1:1", ClientConfig{
		MaxAttempts:      1, // isolate the breaker from the retry loop
		BreakerThreshold: 2,
		BreakerCooldown:  time.Second,
		Transport:        tr,
		now:              clk.now,
		sleep:            func(time.Duration) {},
	})
	if _, err := c.Stats(); err == nil {
		t.Fatal("first call succeeded")
	}
	if _, err := c.Stats(); err == nil {
		t.Fatal("second call succeeded")
	}
	// Two consecutive failures opened the circuit: no network attempt now.
	before := tr.calls.Load()
	_, err := c.Stats()
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if tr.calls.Load() != before {
		t.Error("open circuit still hit the transport")
	}
	// After the cooldown the probe goes through (and fails, re-opening).
	clk.advance(time.Second)
	_, err = c.Stats()
	if errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("half-open probe denied: %v", err)
	}
	if tr.calls.Load() != before+1 {
		t.Errorf("transport calls = %d, want %d", tr.calls.Load(), before+1)
	}
}

// midFlightErrTransport fails with a non-dial transport error: the request
// may have reached the server.
type midFlightErrTransport struct{ calls atomic.Int64 }

func (tr *midFlightErrTransport) RoundTrip(*http.Request) (*http.Response, error) {
	tr.calls.Add(1)
	return nil, io.ErrUnexpectedEOF
}

func TestMidFlightRetryOnlyWhenIdempotent(t *testing.T) {
	// Exec is not idempotent: a mid-flight failure must not be resent.
	tr := &midFlightErrTransport{}
	c := NewClientWith("http://x", ClientConfig{
		Transport: tr, sleep: func(time.Duration) {}, BreakerThreshold: -1,
	})
	if _, err := c.Exec("APPEND INTO calls VALUES (1)"); err == nil {
		t.Fatal("Exec succeeded")
	}
	if tr.calls.Load() != 1 {
		t.Errorf("Exec attempts = %d, want 1", tr.calls.Load())
	}
	// AppendRows carries a request id, so the same failure is retried.
	tr2 := &midFlightErrTransport{}
	c2 := NewClientWith("http://x", ClientConfig{
		MaxAttempts: 3, Transport: tr2, sleep: func(time.Duration) {}, BreakerThreshold: -1,
	})
	if _, err := c2.AppendRows("calls", [][]any{{1}}); err == nil {
		t.Fatal("AppendRows succeeded")
	}
	if tr2.calls.Load() != 3 {
		t.Errorf("AppendRows attempts = %d, want 3", tr2.calls.Load())
	}
}

func TestRetryBudgetStopsRetries(t *testing.T) {
	tr := &midFlightErrTransport{}
	clk := newFakeClock()
	c := NewClientWith("http://x", ClientConfig{
		MaxAttempts: 10,
		RetryBudget: 100 * time.Millisecond,
		BaseBackoff: 80 * time.Millisecond,
		Transport:   tr,
		now:         clk.now,
		// Sleeping advances the fake clock, so the budget check sees time pass.
		sleep:            func(d time.Duration) { clk.advance(d) },
		rnd:              func() float64 { return 1 },
		BreakerThreshold: -1,
	})
	if _, err := c.Stats(); err == nil {
		t.Fatal("Stats succeeded")
	}
	// Attempt 1 fails, one backoff (~80ms) fits the 100ms budget, attempt 2
	// fails, the next backoff (~160ms) would blow it: exactly 2 attempts.
	if tr.calls.Load() != 2 {
		t.Errorf("attempts = %d, want 2", tr.calls.Load())
	}
}

func TestAdmissionControlSheds(t *testing.T) {
	db, err := chronicledb.Open(chronicledb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT)`); err != nil {
		t.Fatal(err)
	}
	srv := NewWith(db, Config{MaxInFlight: 1, MaxQueue: -1, RetryAfter: 2 * time.Second})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Occupy the only write slot so the next write is shed immediately.
	srv.inflight <- struct{}{}
	defer func() { <-srv.inflight }()

	resp, err := http.Post(ts.URL+"/append", "application/json",
		strings.NewReader(`{"chronicle":"calls","rows":[["alice",1]]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	if srv.ShedTotal() != 1 {
		t.Errorf("ShedTotal = %d", srv.ShedTotal())
	}

	// Health reflects the overload distinctly from read-only degradation.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusTooManyRequests {
		t.Errorf("healthz status = %d, want 429", hr.StatusCode)
	}

	// Reads stay open while writes shed.
	sr, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if sr.StatusCode != http.StatusOK {
		t.Errorf("stats status = %d, want 200", sr.StatusCode)
	}
}

func TestServerAppendIdempotent(t *testing.T) {
	_, c := newTestServer(t)
	if _, err := c.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`CREATE VIEW spent AS SELECT acct, SUM(minutes) AS total FROM calls GROUP BY acct`); err != nil {
		t.Fatal(err)
	}
	first, err := c.AppendRowsIdem("calls", [][]any{{"alice", 10}, {"bob", 5}}, "req-1")
	if err != nil {
		t.Fatal(err)
	}
	if first.Deduped {
		t.Error("first delivery marked deduped")
	}
	// Same request id: the original ack comes back, nothing re-applies.
	again, err := c.AppendRowsIdem("calls", [][]any{{"alice", 10}, {"bob", 5}}, "req-1")
	if err != nil {
		t.Fatal(err)
	}
	if !again.Deduped || again.FirstSN != first.FirstSN || again.LastSN != first.LastSN || again.Rows != 2 {
		t.Errorf("replay ack = %+v, first = %+v", again, first)
	}
	res, err := c.Exec(`SELECT * FROM spent WHERE acct = 'alice'`)
	if err != nil {
		t.Fatal(err)
	}
	// A double-applied replay would read 20 here.
	if res.Rows[0][1].(float64) != 10 {
		t.Errorf("alice total = %v, want 10", res.Rows[0][1])
	}
	// A fresh request id applies normally.
	next, err := c.AppendRowsIdem("calls", [][]any{{"carol", 1}}, "req-2")
	if err != nil {
		t.Fatal(err)
	}
	if next.Deduped || next.FirstSN <= first.LastSN {
		t.Errorf("next ack = %+v", next)
	}
}
