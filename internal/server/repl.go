// Replication endpoints: the primary side of log shipping.
//
//	GET  /repl/stream?from=L&follower=ID&ddl=N — long-lived frame stream:
//	     the catalog tail past the follower's N applied statements, then
//	     committed WAL records from LSN L+1 on (disk backlog out of the
//	     segment set, then live fan-out), with heartbeats carrying the
//	     primary's durable cursor. 410 Gone when L was compacted below the
//	     checkpoint chain — the follower resyncs from /repl/snapshot.
//	GET  /repl/snapshot — catalog text + full checkpoint image + LSN, for
//	     bootstrapping an empty follower.
//	POST /repl/ack — follower's applied-LSN acknowledgement (sync ack mode).
//	POST /promote — seal the replica's WAL at its last applied LSN and start
//	     accepting writes: explicit failover.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"chronicledb/internal/repl"
)

// replAck is the body of POST /repl/ack.
type replAck struct {
	Follower string `json:"follower"`
	LSN      uint64 `json:"lsn"`
}

// PromoteResponse is the body of a successful POST /promote.
type PromoteResponse struct {
	Role string `json:"role"`
	LSN  uint64 `json:"lsn"`
}

func (s *Server) handleReplStream(w http.ResponseWriter, r *http.Request) {
	src := s.db.ReplSource()
	if src == nil {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("replication requires the durable segmented layout"))
		return
	}
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad from parameter"))
		return
	}
	follower := q.Get("follower")
	if follower == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing follower parameter"))
		return
	}
	ddlHave, err := strconv.ParseUint(q.Get("ddl"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad ddl parameter"))
		return
	}
	// The Gone check runs before any byte of a 200 is committed; a segment
	// compacted away *during* the stream surfaces as a backlog gap error
	// that closes the connection, and the follower's re-dial lands here.
	if s.db.ReplGone(from) {
		writeErrorCode(w, http.StatusGone, "gone",
			fmt.Errorf("lsn %d compacted below the checkpoint chain; resync from /repl/snapshot", from))
		return
	}
	tail, err := s.db.ReplCatalogTail(ddlHave)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}

	src.Attach(follower)
	defer src.Detach(follower)

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	var buf []byte
	// Every write gets its own deadline: the stream as a whole is unbounded
	// (it bypasses the request timeout, like /watch), so a stalled follower
	// is detected per frame, not never.
	send := func(frame []byte) error {
		rc.SetWriteDeadline(time.Now().Add(s.writeWindow))
		if _, err := w.Write(frame); err != nil {
			return err
		}
		return rc.Flush()
	}

	// Catalog tail first: the follower applies statement i only when its
	// own count is i, so resending an overlap after reconnect is harmless.
	for i, stmt := range tail {
		buf = repl.AppendDDLFrame(buf[:0], ddlHave+uint64(i), 0, stmt)
		if send(buf) != nil {
			return
		}
	}

	ctx := r.Context()
	hb := time.NewTicker(s.replHeartbeat)
	defer hb.Stop()
	lastSent := from
	for {
		// Subscribe, then fill (lastSent, StartLSN] from the segment set:
		// every record released after the subscribe arrives on the channel
		// with LSN > StartLSN, so the two sources tile exactly.
		sub := src.Subscribe(s.db.ReplBufferFrames())
		err := s.db.ReplBacklog(lastSent, sub.StartLSN, func(payload []byte, lsn, span uint64) error {
			buf = repl.AppendBodyFrame(buf[:0], repl.FrameRecord, payload)
			if err := send(buf); err != nil {
				return err
			}
			lastSent = lsn + span - 1
			return nil
		})
		if err != nil {
			// Backlog gap (compaction mid-read) or a dead follower: close;
			// the follower re-dials into the Gone check above.
			src.Unsubscribe(sub)
			return
		}
		// Prime the follower's staleness accounting with the cursor now —
		// an idle primary would otherwise leave it unknown until the first
		// heartbeat tick.
		buf = repl.AppendHeartbeatFrame(buf[:0], src.Cursor())
		if send(buf) != nil {
			src.Unsubscribe(sub)
			return
		}
	live:
		for {
			select {
			case <-ctx.Done():
				src.Unsubscribe(sub)
				return
			case <-hb.C:
				buf = repl.AppendHeartbeatFrame(buf[:0], src.Cursor())
				if send(buf) != nil {
					src.Unsubscribe(sub)
					return
				}
			case f, ok := <-sub.C:
				if !ok {
					// Shed as a slow subscriber: the buffer overflowed while
					// this handler was blocked writing. Re-subscribe and
					// catch the gap up from disk.
					break live
				}
				switch f.Type {
				case repl.FrameRecord:
					if f.LSN+f.Span-1 <= lastSent {
						continue // already sent via the disk backlog
					}
					buf = repl.AppendBodyFrame(buf[:0], repl.FrameRecord, f.Payload)
					if send(buf) != nil {
						src.Unsubscribe(sub)
						return
					}
					lastSent = f.LSN + f.Span - 1
				case repl.FrameDDL:
					buf = repl.AppendBodyFrame(buf[:0], repl.FrameDDL, f.Payload)
					if send(buf) != nil {
						src.Unsubscribe(sub)
						return
					}
				}
			}
		}
		src.Unsubscribe(sub)
	}
}

func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	catalog, image, lsn, err := s.db.ReplSnapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Repl-Lsn", strconv.FormatUint(lsn, 10))
	w.Header().Set("X-Repl-Catalog-Bytes", strconv.Itoa(len(catalog)))
	w.Header().Set("Content-Length", strconv.Itoa(len(catalog)+len(image)))
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(catalog); err != nil {
		return
	}
	w.Write(image)
}

func (s *Server) handleReplAck(w http.ResponseWriter, r *http.Request) {
	src := s.db.ReplSource()
	if src == nil {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("not a replication source"))
		return
	}
	var ack replAck
	if err := json.NewDecoder(r.Body).Decode(&ack); err != nil {
		writeError(w, decodeStatus(err), fmt.Errorf("bad request body: %w", err))
		return
	}
	if ack.Follower == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing follower"))
		return
	}
	src.Ack(ack.Follower, ack.LSN)
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handlePromote turns a replica into a writable primary: the apply loop
// stops, the WAL seals at the last applied LSN, and the write gate opens.
// Idempotent — promoting a primary answers 200 with its current state.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if err := s.db.Promote(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	var lsn uint64
	if src := s.db.ReplSource(); src != nil {
		lsn = src.Cursor()
	}
	writeJSON(w, http.StatusOK, PromoteResponse{Role: s.db.Role(), LSN: lsn})
}
