// Package server exposes a chronicle database over HTTP/JSON — the
// transaction-recording service shape the paper's applications (billing,
// banking, cellular) take in practice. One endpoint executes statements;
// appends return only after every affected persistent view is maintained,
// so a subsequent summary query is guaranteed current (the ATM-balance
// requirement from the paper's introduction).
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"time"

	chronicledb "chronicledb"
	"chronicledb/internal/value"
)

// Request is the body of POST /exec.
type Request struct {
	Stmt string `json:"stmt"`
}

// AppendRequest is the body of POST /append: a bulk, JSON-native append
// path that skips SQL parsing — the shape a high-rate transaction recorder
// actually feeds the server. Each row's cells must match the chronicle
// schema (JSON numbers land as int or float per the column kind).
type AppendRequest struct {
	Chronicle string  `json:"chronicle"`
	Rows      [][]any `json:"rows"`
}

// AppendResponse acknowledges a bulk append.
type AppendResponse struct {
	FirstSN int64 `json:"first_sn"`
	LastSN  int64 `json:"last_sn"`
	Rows    int   `json:"rows"`
}

// Response is the body of every successful /exec reply.
type Response struct {
	Columns []string `json:"columns,omitempty"`
	Rows    [][]any  `json:"rows,omitempty"`
	Message string   `json:"message,omitempty"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// Config tunes the HTTP surface.
type Config struct {
	// MaxBodyBytes bounds every request body; 0 means the 8 MiB default.
	MaxBodyBytes int64
	// RequestTimeout bounds one request's handling (write path included);
	// 0 means the 30 s default. Applied by Serve, not by the bare handler.
	RequestTimeout time.Duration
}

const (
	defaultMaxBody        = 8 << 20
	defaultRequestTimeout = 30 * time.Second
)

// Server serves a DB over HTTP.
type Server struct {
	db      *chronicledb.DB
	mux     *http.ServeMux
	maxBody int64
}

// New wraps db in an HTTP handler with default limits.
func New(db *chronicledb.DB) *Server { return NewWith(db, Config{}) }

// NewWith wraps db in an HTTP handler.
func NewWith(db *chronicledb.DB, cfg Config) *Server {
	s := &Server{db: db, mux: http.NewServeMux(), maxBody: cfg.MaxBodyBytes}
	if s.maxBody <= 0 {
		s.maxBody = defaultMaxBody
	}
	s.mux.HandleFunc("POST /exec", s.handleExec)
	s.mux.HandleFunc("POST /append", s.handleAppend)
	s.mux.HandleFunc("GET /latest", s.handleLatest)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	// Live profiling of the serving process: allocation and CPU profiles of
	// the append hot path without stopping the server.
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// ServeHTTP implements http.Handler: request bodies are bounded and a
// handler panic becomes a 500 instead of killing the connection.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			log.Printf("server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
		}
	}()
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	s.mux.ServeHTTP(w, r)
}

// Serve runs s on ln with per-request timeouts until ctx is canceled,
// then shuts down gracefully: stop accepting, drain in-flight requests
// (bounded by drainTimeout), and flush+sync the database's WAL so
// everything acked is durable on SIGTERM, not just on crash-free exit.
func Serve(ctx context.Context, ln net.Listener, s *Server, requestTimeout, drainTimeout time.Duration) error {
	if requestTimeout <= 0 {
		requestTimeout = defaultRequestTimeout
	}
	srv := &http.Server{
		Handler:           http.TimeoutHandler(s, requestTimeout, `{"error":"request timed out"}`),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       requestTimeout,
		WriteTimeout:      requestTimeout + 5*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	shutdownErr := srv.Shutdown(shutdownCtx)
	if err := s.db.Flush(); err != nil && shutdownErr == nil {
		shutdownErr = fmt.Errorf("server: flushing WAL on shutdown: %w", err)
	}
	return shutdownErr
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, decodeStatus(err), fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Stmt == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing stmt"))
		return
	}
	res, err := s.db.Exec(req.Stmt)
	if err != nil {
		writeError(w, execStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, toResponse(res))
}

// decodeStatus maps a body-decode failure to its status: an oversized
// body (http.MaxBytesReader tripped) is 413, anything else 400.
func decodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// execStatus maps an execution failure to its status: a degraded
// (read-only) database serves 503 so clients and load balancers back off;
// everything else is the statement's fault, 422.
func execStatus(err error) int {
	if errors.Is(err, chronicledb.ErrReadOnly) {
		return http.StatusServiceUnavailable
	}
	return http.StatusUnprocessableEntity
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	var req AppendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, decodeStatus(err), fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Chronicle == "" || len(req.Rows) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("chronicle and rows required"))
		return
	}
	c, ok := s.db.Chronicle(req.Chronicle)
	if !ok {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("unknown chronicle %q", req.Chronicle))
		return
	}
	schema := c.Schema()
	tuples := make([]value.Tuple, len(req.Rows))
	for i, raw := range req.Rows {
		tuple, err := tupleFromJSON(schema, raw)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("row %d: %w", i, err))
			return
		}
		tuples[i] = tuple
	}
	// One bulk call: each row is still its own transaction (own SN and
	// maintenance round), but the whole run crosses the kernel — and, when
	// sharded, the shard queue — once.
	firstSN, lastSN, err := s.db.AppendRows(req.Chronicle, tuples)
	if err != nil {
		writeError(w, execStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, AppendResponse{FirstSN: firstSN, LastSN: lastSN, Rows: len(req.Rows)})
}

// tupleFromJSON converts one JSON row to a typed tuple per the schema.
func tupleFromJSON(schema *value.Schema, raw []any) (value.Tuple, error) {
	if len(raw) != schema.Len() {
		return nil, fmt.Errorf("arity %d, schema needs %d", len(raw), schema.Len())
	}
	out := make(value.Tuple, len(raw))
	for i, cell := range raw {
		col := schema.Col(i)
		switch cell := cell.(type) {
		case nil:
			out[i] = value.Null()
		case bool:
			out[i] = value.Bool(cell)
		case string:
			out[i] = value.Str(cell)
		case float64: // every JSON number
			switch col.Kind {
			case value.KindInt:
				n := int64(cell)
				if float64(n) != cell {
					return nil, fmt.Errorf("column %q expects int, got %v", col.Name, cell)
				}
				out[i] = value.Int(n)
			case value.KindTime:
				out[i] = value.Chronon(int64(cell))
			default:
				out[i] = value.Float(cell)
			}
		default:
			return nil, fmt.Errorf("column %q: unsupported JSON value %T", col.Name, cell)
		}
	}
	return out, nil
}

// handleLatest answers GET /latest?view=NAME&n=N: the view's last n rows
// by group key, highest first — a descending walk over the view's
// lock-free snapshot that stops after n rows. Dashboards poll it for
// "most recent groups" without paying for a full materialization.
func (s *Server) handleLatest(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("view")
	if name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing view parameter"))
		return
	}
	n := 10
	if raw := r.URL.Query().Get("n"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("n must be a positive integer"))
			return
		}
		n = parsed
	}
	v, ok := s.db.View(name)
	if !ok {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("unknown view %q", name))
		return
	}
	rows, err := s.db.LatestViewRows(name, n)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, toResponse(&chronicledb.Result{Columns: v.Schema().Names(), Rows: rows}))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.db.Stats()
	lat := s.db.MaintenanceLatency()
	ws := s.db.WALStats()
	rs := s.db.ReadStats()
	body := map[string]any{
		"shards":             s.db.Shards(),
		"appends":            st.Appends,
		"tuples_appended":    st.TuplesAppended,
		"relation_updates":   st.RelationUpdates,
		"views_maintained":   st.ViewsMaintained,
		"maintenance_ns":     st.MaintenanceNs,
		"maintenance_p50_ns": int64(lat.P50),
		"maintenance_p99_ns": int64(lat.P99),
		"maintenance_max_ns": int64(lat.Max),
		// Read-path traffic: lookups and scans served off view snapshots,
		// their latency distribution, and the worst-case snapshot staleness.
		"read_lookups":    rs.Lookups,
		"read_scans":      rs.Scans,
		"read_p50_ns":     int64(rs.Latency.P50),
		"read_p99_ns":     int64(rs.Latency.P99),
		"read_max_ns":     int64(rs.Latency.Max),
		"snapshot_age_ns": int64(s.db.SnapshotAge()),
		"read_only":       false,
		// Hot-path durability gauges: the commit_batch_* fields count
		// records acked per fsync (group commit), not durations.
		"allocs_per_append":  ws.AllocsPerOp,
		"wal_records":        ws.Records,
		"wal_fsyncs":         ws.Fsyncs,
		"fsyncs_per_sec":     ws.FsyncsPerSec,
		"commit_batch_count": ws.Batches.Count,
		"commit_batch_mean":  float64(ws.Batches.Mean),
		"commit_batch_p95":   int64(ws.Batches.P95),
		"commit_batch_max":   int64(ws.Batches.Max),
	}
	if ro, cause := s.db.ReadOnly(); ro {
		body["read_only"] = true
		if cause != nil {
			body["read_only_cause"] = cause.Error()
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// handleHealth answers 200 while the database accepts writes and 503 once
// it has degraded to read-only, with the cause — the shape load balancers
// and operators poll.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if ro, cause := s.db.ReadOnly(); ro {
		body := map[string]string{"status": "degraded"}
		if cause != nil {
			body["error"] = cause.Error()
		}
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func toResponse(res *chronicledb.Result) Response {
	out := Response{Columns: res.Columns, Message: res.Message}
	for _, row := range res.Rows {
		jr := make([]any, len(row))
		for i, v := range row {
			jr[i] = jsonValue(v)
		}
		out.Rows = append(out.Rows, jr)
	}
	return out
}

// jsonValue maps a typed value onto its natural JSON shape.
func jsonValue(v value.Value) any {
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindInt:
		return v.AsInt()
	case value.KindFloat:
		return v.AsFloat()
	case value.KindString:
		return v.AsString()
	case value.KindBool:
		return v.AsBool()
	case value.KindTime:
		return v.AsTime().UTC().Format(time.RFC3339Nano)
	default:
		return v.String()
	}
}

// writeJSON encodes into a buffer first: an encode failure is logged and
// becomes a 500 before any byte of the response has been committed,
// instead of being silently dropped after a 200 status line.
func writeJSON(w http.ResponseWriter, code int, body any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		log.Printf("server: encoding response: %v", err)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintln(w, `{"error":"internal error encoding response"}`)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if _, err := w.Write(buf.Bytes()); err != nil {
		// Headers are gone; all we can do is record the broken connection.
		log.Printf("server: writing response: %v", err)
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}
