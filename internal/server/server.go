// Package server exposes a chronicle database over HTTP/JSON — the
// transaction-recording service shape the paper's applications (billing,
// banking, cellular) take in practice. One endpoint executes statements;
// appends return only after every affected persistent view is maintained,
// so a subsequent summary query is guaranteed current (the ATM-balance
// requirement from the paper's introduction).
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	chronicledb "chronicledb"
	"chronicledb/internal/value"
)

// Request is the body of POST /exec.
type Request struct {
	Stmt string `json:"stmt"`
}

// AppendRequest is the body of POST /append: a bulk, JSON-native append
// path that skips SQL parsing — the shape a high-rate transaction recorder
// actually feeds the server. Each row's cells must match the chronicle
// schema (JSON numbers land as int or float per the column kind).
//
// A request carrying a (client_id, request_id) pair is idempotent: the
// server remembers its ack in the WAL-logged, checkpointed dedup table, so
// retrying the same pair — across timeouts, duplicated deliveries, even a
// server crash-and-reopen — returns the original sequence-number range
// instead of re-applying the rows.
type AppendRequest struct {
	Chronicle string  `json:"chronicle"`
	Rows      [][]any `json:"rows"`
	ClientID  string  `json:"client_id,omitempty"`
	RequestID string  `json:"request_id,omitempty"`
}

// AppendResponse acknowledges a bulk append. Deduped reports that this
// request was already applied and the ack is the remembered original.
type AppendResponse struct {
	FirstSN int64 `json:"first_sn"`
	LastSN  int64 `json:"last_sn"`
	Rows    int   `json:"rows"`
	Deduped bool  `json:"deduped,omitempty"`
}

// Response is the body of every successful /exec reply.
type Response struct {
	Columns []string `json:"columns,omitempty"`
	Rows    [][]any  `json:"rows,omitempty"`
	Message string   `json:"message,omitempty"`
}

// errorBody is the JSON error envelope. Code distinguishes 503 flavors so
// clients can pick the right recovery: "read-only" is permanent until
// operator action, "not-primary" and "stale-replica" mean this endpoint is
// the wrong (or lagging) member of a replicated deployment — retry against
// another endpoint.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// 503 error codes.
const (
	codeReadOnly     = "read-only"
	codeNotPrimary   = "not-primary"
	codeStaleReplica = "stale-replica"
)

// Config tunes the HTTP surface.
type Config struct {
	// MaxBodyBytes bounds every request body; 0 means the 8 MiB default.
	MaxBodyBytes int64
	// RequestTimeout bounds one request's handling (write path included);
	// 0 means the 30 s default. Applied by Serve, not by the bare handler.
	RequestTimeout time.Duration
	// MaxInFlight bounds concurrently executing write requests (/exec and
	// /append); 0 means the default (64). Reads are never gated.
	MaxInFlight int
	// MaxQueue bounds write requests waiting for an in-flight slot; beyond
	// it the server sheds load with 429 + Retry-After instead of letting
	// queues (and client timeouts) grow without bound. 0 means the default
	// (128); negative means no queue at all (shed the moment every
	// in-flight slot is taken).
	MaxQueue int
	// RetryAfter is the backoff hint sent with 429 responses; 0 means 1s.
	RetryAfter time.Duration
	// MaxSubscribers bounds concurrently connected /watch subscribers; 0
	// means the default (4096). This is a separate gate from MaxInFlight:
	// a watcher flood sheds watchers with 429, it never consumes the write
	// path's in-flight slots — and a write burst never sheds watchers.
	MaxSubscribers int
	// Heartbeat is the keep-alive cadence on idle /watch streams; 0 means
	// the 10 s default. Each heartbeat carries the subscriber's cursor so a
	// reconnect after silence still resumes at the right LSN.
	Heartbeat time.Duration
	// ReplHeartbeat is the cadence of /repl/stream heartbeats carrying the
	// primary's durable cursor — the clock followers measure staleness
	// against; 0 means the 500 ms default.
	ReplHeartbeat time.Duration
}

const (
	defaultMaxBody        = 8 << 20
	defaultRequestTimeout = 30 * time.Second
	defaultMaxInFlight    = 64
	defaultMaxQueue       = 128
	defaultRetryAfter     = time.Second
	defaultMaxSubs        = 4096
	defaultHeartbeat      = 10 * time.Second
	defaultReplHeartbeat  = 500 * time.Millisecond
	maxPollWait           = 30 * time.Second
)

// Server serves a DB over HTTP.
type Server struct {
	db      *chronicledb.DB
	mux     *http.ServeMux
	maxBody int64

	// Admission control for the write endpoints: inflight is a semaphore
	// of executing requests, queued counts requests waiting for a slot,
	// and shed counts requests turned away with 429. Distinct from the
	// read-only 503 path: 429 is transient pressure (retry after backoff),
	// 503 is a durability failure (retrying is pointless until an operator
	// intervenes).
	inflight   chan struct{}
	maxQueue   int64
	queued     atomic.Int64
	shed       atomic.Int64
	retryAfter time.Duration

	// Subscriber admission for /watch: its own semaphore, deliberately not
	// the write path's inflight channel, so watchers and appenders cannot
	// starve each other. watchShed counts subscriptions turned away.
	watchers  chan struct{}
	watchShed atomic.Int64
	heartbeat time.Duration
	// writeWindow bounds each individual write on a /watch stream — the
	// stream as a whole is unbounded (it is exempt from the request
	// timeout), so a stalled client is detected per event, not per request.
	writeWindow time.Duration
	// drainCh closes when Serve begins a graceful shutdown: every live
	// /watch stream ends with a terminal bye{reason:drain} event carrying
	// its cursor instead of hanging until a timeout kills the connection.
	drainCh   chan struct{}
	drainOnce sync.Once
	// replHeartbeat is the /repl/stream cursor-advertisement cadence.
	replHeartbeat time.Duration
}

// New wraps db in an HTTP handler with default limits.
func New(db *chronicledb.DB) *Server { return NewWith(db, Config{}) }

// NewWith wraps db in an HTTP handler.
func NewWith(db *chronicledb.DB, cfg Config) *Server {
	s := &Server{db: db, mux: http.NewServeMux(), maxBody: cfg.MaxBodyBytes}
	if s.maxBody <= 0 {
		s.maxBody = defaultMaxBody
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = defaultMaxInFlight
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = defaultMaxQueue
	} else if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = defaultRetryAfter
	}
	if cfg.MaxSubscribers <= 0 {
		cfg.MaxSubscribers = defaultMaxSubs
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = defaultHeartbeat
	}
	if cfg.ReplHeartbeat <= 0 {
		cfg.ReplHeartbeat = defaultReplHeartbeat
	}
	s.replHeartbeat = cfg.ReplHeartbeat
	s.inflight = make(chan struct{}, cfg.MaxInFlight)
	s.maxQueue = int64(cfg.MaxQueue)
	s.retryAfter = cfg.RetryAfter
	s.watchers = make(chan struct{}, cfg.MaxSubscribers)
	s.heartbeat = cfg.Heartbeat
	s.writeWindow = cfg.RequestTimeout
	if s.writeWindow <= 0 {
		s.writeWindow = defaultRequestTimeout
	}
	s.drainCh = make(chan struct{})
	s.mux.HandleFunc("POST /exec", s.admit(s.handleExec))
	s.mux.HandleFunc("POST /append", s.admit(s.handleAppend))
	s.mux.HandleFunc("GET /watch", s.handleWatch)
	s.mux.HandleFunc("GET /latest", s.handleLatest)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	// Replication: the stream/snapshot/ack surface exists whenever this
	// database can serve as a log-shipping source (durable segmented
	// layout) — a follower registers it too, so a promoted follower serves
	// its surviving peers without a restart. /promote always exists; on a
	// primary it is an idempotent no-op.
	if db.ReplSource() != nil {
		s.mux.HandleFunc("GET /repl/stream", s.handleReplStream)
		s.mux.HandleFunc("GET /repl/snapshot", s.handleReplSnapshot)
		s.mux.HandleFunc("POST /repl/ack", s.handleReplAck)
	}
	s.mux.HandleFunc("POST /promote", s.handlePromote)
	// Live profiling of the serving process: allocation and CPU profiles of
	// the append hot path without stopping the server.
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// admit wraps a write handler with admission control. Up to MaxInFlight
// requests execute at once; up to MaxQueue more wait for a slot; beyond
// that the server sheds the request immediately with 429 and a Retry-After
// hint, so overload produces fast, honest backpressure instead of a queue
// whose wait time exceeds every client's deadline. Read endpoints
// (/stats, /healthz, /latest) stay open — an overloaded server must remain
// observable.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inflight <- struct{}{}:
		default:
			if s.queued.Add(1) > s.maxQueue {
				s.queued.Add(-1)
				s.shed.Add(1)
				s.writeOverloaded(w)
				return
			}
			select {
			case s.inflight <- struct{}{}:
				s.queued.Add(-1)
			case <-r.Context().Done():
				// The client gave up (or the request timed out) while
				// queued; count it as shed — the work was never admitted.
				s.queued.Add(-1)
				s.shed.Add(1)
				s.writeOverloaded(w)
				return
			}
		}
		defer func() { <-s.inflight }()
		h(w, r)
	}
}

// writeOverloaded emits the 429 shed response with its Retry-After hint.
func (s *Server) writeOverloaded(w http.ResponseWriter) {
	secs := int(s.retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusTooManyRequests, fmt.Errorf("server overloaded; retry after %ds", secs))
}

// Overloaded reports whether a write request arriving now would be shed:
// every in-flight slot is taken and the wait queue is full.
func (s *Server) Overloaded() bool {
	return len(s.inflight) == cap(s.inflight) && s.queued.Load() >= s.maxQueue
}

// ShedTotal returns how many write requests admission control has turned
// away with 429.
func (s *Server) ShedTotal() int64 { return s.shed.Load() }

// WatchShedTotal returns how many /watch subscriptions were turned away
// with 429 because every MaxSubscribers slot was taken.
func (s *Server) WatchShedTotal() int64 { return s.watchShed.Load() }

// ActiveSubscribers returns how many /watch streams are connected now.
func (s *Server) ActiveSubscribers() int { return len(s.watchers) }

// beginDrain tells every live /watch stream to end with a terminal bye
// event. Idempotent; called by Serve before shutting the listener down.
func (s *Server) beginDrain() { s.drainOnce.Do(func() { close(s.drainCh) }) }

// ServeHTTP implements http.Handler: request bodies are bounded and a
// handler panic becomes a 500 instead of killing the connection.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			log.Printf("server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
		}
	}()
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	s.mux.ServeHTTP(w, r)
}

// Serve runs s on ln with per-request timeouts until ctx is canceled,
// then shuts down gracefully: stop accepting, drain in-flight requests
// (bounded by drainTimeout), and flush+sync the database's WAL so
// everything acked is durable on SIGTERM, not just on crash-free exit.
func Serve(ctx context.Context, ln net.Listener, s *Server, requestTimeout, drainTimeout time.Duration) error {
	if requestTimeout <= 0 {
		requestTimeout = defaultRequestTimeout
	}
	// /watch streams for as long as the subscriber stays connected, so it
	// must bypass the per-request timeout wrapper and the server-wide
	// read/write timeouts (either would sever every stream at the deadline).
	// Request-shaped endpoints keep their bound via http.TimeoutHandler plus
	// explicit per-request connection deadlines; the watch handler guards
	// itself with a per-event write deadline instead.
	timed := http.TimeoutHandler(s, requestTimeout, `{"error":"request timed out"}`)
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// /repl/stream is a long-lived frame stream and /repl/snapshot can
		// exceed any per-request bound on a big database; both guard
		// themselves (per-write deadlines; snapshot sends Content-Length)
		// instead of using the timeout wrapper.
		if r.URL.Path == "/watch" || r.URL.Path == "/repl/stream" || r.URL.Path == "/repl/snapshot" {
			s.ServeHTTP(w, r)
			return
		}
		rc := http.NewResponseController(w)
		rc.SetReadDeadline(time.Now().Add(requestTimeout))
		rc.SetWriteDeadline(time.Now().Add(requestTimeout + 5*time.Second))
		timed.ServeHTTP(w, r)
	})
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Tell live streams to say goodbye before Shutdown starts waiting on
	// them: each emits bye{reason:drain,lsn:cursor} and returns, so the
	// graceful drain completes instead of timing out under open streams.
	s.beginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	shutdownErr := srv.Shutdown(shutdownCtx)
	if err := s.db.Flush(); err != nil && shutdownErr == nil {
		shutdownErr = fmt.Errorf("server: flushing WAL on shutdown: %w", err)
	}
	return shutdownErr
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, decodeStatus(err), fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Stmt == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing stmt"))
		return
	}
	if !s.staleGate(w) {
		return // follower past its staleness bound: no reads either
	}
	res, err := s.db.Exec(req.Stmt)
	if err != nil {
		writeError(w, execStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, toResponse(res))
}

// decodeStatus maps a body-decode failure to its status: an oversized
// body (http.MaxBytesReader tripped) is 413, anything else 400.
func decodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// execStatus maps an execution failure to its status: a degraded
// (read-only) database and a replica rejecting writes both serve 503 so
// clients and load balancers redirect; everything else is the statement's
// fault, 422. The 503 flavors stay distinguishable via errorBody.Code.
func execStatus(err error) int {
	if errors.Is(err, chronicledb.ErrReadOnly) || errors.Is(err, chronicledb.ErrNotPrimary) {
		return http.StatusServiceUnavailable
	}
	return http.StatusUnprocessableEntity
}

// staleGate fails a follower read with 503 "stale-replica" when the
// replica has exceeded its configured staleness bound — clients retry
// another endpoint instead of reading arbitrarily old state. Returns true
// when the read may proceed.
func (s *Server) staleGate(w http.ResponseWriter) bool {
	if !s.db.Stale() {
		return true
	}
	lagLSN, lagAge := s.db.ReplLag()
	writeErrorCode(w, http.StatusServiceUnavailable, codeStaleReplica,
		fmt.Errorf("replica lag (%d lsn, %s) exceeds the staleness bound", lagLSN, lagAge.Round(time.Millisecond)))
	return false
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	var req AppendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, decodeStatus(err), fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Chronicle == "" || len(req.Rows) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("chronicle and rows required"))
		return
	}
	c, ok := s.db.Chronicle(req.Chronicle)
	if !ok {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("unknown chronicle %q", req.Chronicle))
		return
	}
	schema := c.Schema()
	tuples := make([]value.Tuple, len(req.Rows))
	for i, raw := range req.Rows {
		tuple, err := tupleFromJSON(schema, raw)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("row %d: %w", i, err))
			return
		}
		tuples[i] = tuple
	}
	// One bulk call: each row is still its own transaction (own SN and
	// maintenance round), but the whole run crosses the kernel — and, when
	// sharded, the shard queue — once. With an idempotency pair the run is
	// atomic and remembered, so retries return the original ack.
	if req.ClientID != "" || req.RequestID != "" {
		if req.ClientID == "" || req.RequestID == "" {
			writeError(w, http.StatusBadRequest, fmt.Errorf("client_id and request_id must be set together"))
			return
		}
		firstSN, lastSN, deduped, err := s.db.AppendRowsIdem(req.Chronicle, tuples, req.ClientID, req.RequestID)
		if err != nil {
			writeError(w, execStatus(err), err)
			return
		}
		// Row count derives from the ack, so a deduped reply reports what
		// was originally applied.
		writeJSON(w, http.StatusOK, AppendResponse{FirstSN: firstSN, LastSN: lastSN, Rows: int(lastSN-firstSN) + 1, Deduped: deduped})
		return
	}
	firstSN, lastSN, err := s.db.AppendRows(req.Chronicle, tuples)
	if err != nil {
		writeError(w, execStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, AppendResponse{FirstSN: firstSN, LastSN: lastSN, Rows: len(req.Rows)})
}

// tupleFromJSON converts one JSON row to a typed tuple per the schema.
func tupleFromJSON(schema *value.Schema, raw []any) (value.Tuple, error) {
	if len(raw) != schema.Len() {
		return nil, fmt.Errorf("arity %d, schema needs %d", len(raw), schema.Len())
	}
	out := make(value.Tuple, len(raw))
	for i, cell := range raw {
		col := schema.Col(i)
		switch cell := cell.(type) {
		case nil:
			out[i] = value.Null()
		case bool:
			out[i] = value.Bool(cell)
		case string:
			out[i] = value.Str(cell)
		case float64: // every JSON number
			switch col.Kind {
			case value.KindInt:
				n := int64(cell)
				if float64(n) != cell {
					return nil, fmt.Errorf("column %q expects int, got %v", col.Name, cell)
				}
				out[i] = value.Int(n)
			case value.KindTime:
				out[i] = value.Chronon(int64(cell))
			default:
				out[i] = value.Float(cell)
			}
		default:
			return nil, fmt.Errorf("column %q: unsupported JSON value %T", col.Name, cell)
		}
	}
	return out, nil
}

// handleLatest answers GET /latest?view=NAME&n=N: the view's last n rows
// by group key, highest first — a descending walk over the view's
// lock-free snapshot that stops after n rows. Dashboards poll it for
// "most recent groups" without paying for a full materialization.
func (s *Server) handleLatest(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("view")
	if name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing view parameter"))
		return
	}
	n := 10
	if raw := r.URL.Query().Get("n"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("n must be a positive integer"))
			return
		}
		n = parsed
	}
	if !s.staleGate(w) {
		return
	}
	v, ok := s.db.View(name)
	if !ok {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("unknown view %q", name))
		return
	}
	rows, err := s.db.LatestViewRows(name, n)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, toResponse(&chronicledb.Result{Columns: v.Schema().Names(), Rows: rows}))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.db.Stats()
	lat := s.db.MaintenanceLatency()
	ws := s.db.WALStats()
	rs := s.db.ReadStats()
	dedupEntries, dedupHits, dedupEvictions := s.db.DedupStats()
	fs := s.db.FeedStats()
	body := map[string]any{
		// Admission control and ingestion reliability.
		"in_flight":   len(s.inflight),
		"queue_depth": s.queued.Load(),
		"shed_total":  s.shed.Load(),
		// Changefeed delivery: live subscriber count, cumulative frames and
		// rows pushed, slow consumers shed, and how reconnects resumed
		// (tail replay vs full-snapshot catch-up).
		"feed_subscribers":       fs.Subscribers,
		"feed_subscribed_total":  fs.SubscribedTotal,
		"feed_published":         fs.Published,
		"feed_rows_published":    fs.RowsPublished,
		"feed_dropped_slow":      fs.DroppedSlow,
		"feed_catchups_tail":     fs.CatchupsTail,
		"feed_catchups_snapshot": fs.CatchupsSnapshot,
		"feed_evicted":           fs.Evicted,
		"watch_active":           len(s.watchers),
		"watch_shed_total":       s.watchShed.Load(),
		"dedup_entries":          dedupEntries,
		"dedup_hits":             dedupHits,
		"dedup_evictions":        dedupEvictions,
		"shards":                 s.db.Shards(),
		"appends":                st.Appends,
		"tuples_appended":        st.TuplesAppended,
		"relation_updates":       st.RelationUpdates,
		"views_maintained":       st.ViewsMaintained,
		"maintenance_ns":         st.MaintenanceNs,
		"maintenance_p50_ns":     int64(lat.P50),
		"maintenance_p99_ns":     int64(lat.P99),
		"maintenance_max_ns":     int64(lat.Max),
		// Shared-delta maintenance pipeline: cache hits in the cross-view
		// CSE plan, the fold parallelism bound, and the top-5 slowest views
		// by accumulated apply time (per-view attribution).
		"maint_shared_hits": st.SharedHits,
		"maint_workers":     s.db.MaintWorkers(),
		"maint_top_views":   maintTop(s.db),
		// Read-path traffic: lookups and scans served off view snapshots,
		// their latency distribution, and the worst-case snapshot staleness.
		"read_lookups":    rs.Lookups,
		"read_scans":      rs.Scans,
		"read_p50_ns":     int64(rs.Latency.P50),
		"read_p99_ns":     int64(rs.Latency.P99),
		"read_max_ns":     int64(rs.Latency.Max),
		"snapshot_age_ns": int64(s.db.SnapshotAge()),
		"read_only":       false,
		// Hot-path durability gauges: the commit_batch_* fields count
		// records acked per fsync (group commit), not durations.
		"allocs_per_append":  ws.AllocsPerOp,
		"wal_records":        ws.Records,
		"wal_fsyncs":         ws.Fsyncs,
		"fsyncs_per_sec":     ws.FsyncsPerSec,
		"commit_batch_count": ws.Batches.Count,
		"commit_batch_mean":  float64(ws.Batches.Mean),
		"commit_batch_p95":   int64(ws.Batches.P95),
		"commit_batch_max":   int64(ws.Batches.Max),
		// Segmented-WAL storage gauges: live segment chain, bytes the
		// compactor has reclaimed, and the incremental checkpoint chain.
		// Recovery work is bounded by wal_live_bytes, not uptime.
		"wal_segmented":                ws.Segmented,
		"wal_segments":                 ws.Segments,
		"wal_sealed_segments":          ws.SealedSegments,
		"wal_segment_cap":              ws.SegmentCap,
		"wal_live_bytes":               ws.LiveBytes,
		"wal_rotations":                ws.Rotations,
		"wal_reclaimed_bytes":          ws.ReclaimedBytes,
		"wal_segments_reclaimed":       ws.SegmentsReclaimed,
		"checkpoint_chain_len":         ws.Checkpoints,
		"checkpoint_full_total":        ws.CheckpointsFull,
		"checkpoint_incremental_total": ws.CheckpointsIncremental,
		"checkpoints_folded":           ws.CheckpointsFolded,
		"last_checkpoint_lsn":          ws.LastCheckpointLSN,
		// Blocked view stores: block-cache traffic and how much of the last
		// checkpoint was actually re-serialized (dirty blocks vs total).
		"view_cache_enabled":   ws.ViewCacheEnabled,
		"view_cache_hits":      ws.ViewCacheHits,
		"view_cache_misses":    ws.ViewCacheMisses,
		"view_cache_evictions": ws.ViewCacheEvictions,
		"view_cache_bytes":     ws.ViewCacheBytes,
		"view_cache_budget":    ws.ViewCacheBudget,
		"ckpt_dirty_blocks":    ws.CkptDirtyBlocks,
		"ckpt_total_blocks":    ws.CkptTotalBlocks,
	}
	if ro, cause := s.db.ReadOnly(); ro {
		body["read_only"] = true
		if cause != nil {
			body["read_only_cause"] = cause.Error()
		}
	}
	// Replication: the role, the follower's advertised staleness bound
	// inputs (replica_lag_*), and the primary-side stream source gauges.
	body["role"] = s.db.Role()
	body["degraded_acks"] = s.db.DegradedAcks()
	if st, ok := s.db.ReplState(); ok {
		lagLSN, lagAge := s.db.ReplLag()
		body["replica_lag_lsn"] = lagLSN
		body["replica_lag_ns"] = int64(lagAge)
		body["replica_applied_lsn"] = st.AppliedLSN
		body["replica_primary_lsn"] = st.PrimaryLSN
		body["replica_connected"] = st.Connected
		body["replica_resyncs"] = st.Resyncs
		body["replica_frames_applied"] = st.FramesApplied
		body["replica_stale"] = s.db.Stale()
	}
	if src := s.db.ReplSource(); src != nil {
		rs := src.Stats()
		body["repl_cursor"] = rs.Cursor
		body["repl_frames_staged"] = rs.Staged
		body["repl_frames_emitted"] = rs.Emitted
		body["repl_overflows"] = rs.Overflows
		body["repl_followers"] = rs.Followers
		body["repl_follower_acks"] = src.Followers()
	}
	writeJSON(w, http.StatusOK, body)
}

// maintTop renders the per-view maintenance attribution for /stats.
func maintTop(db *chronicledb.DB) []map[string]any {
	att := db.MaintAttribution(5)
	out := make([]map[string]any, len(att))
	for i, vs := range att {
		out[i] = map[string]any{
			"view":       vs.Name,
			"apply_ns":   vs.ApplyNs,
			"delta_rows": vs.DeltaRows,
			"applies":    vs.Applies,
		}
	}
	return out
}

// handleHealth answers 200 while the database accepts writes, 429 while
// admission control is shedding (transient — retry after backoff), and 503
// once it has degraded to read-only (permanent until operator action), with
// the cause — the shape load balancers and operators poll. All values are
// strings so pollers can decode into a flat map.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	shed := strconv.FormatInt(s.shed.Load(), 10)
	subs := strconv.FormatInt(s.db.FeedStats().Subscribers, 10)
	watchShed := strconv.FormatInt(s.watchShed.Load(), 10)
	ws := s.db.WALStats()
	// Storage gauges operators alarm on: a growing wal_live_bytes with a
	// stale last_checkpoint_lsn means the checkpointer/compactor stalled
	// and recovery time is climbing.
	liveBytes := strconv.FormatInt(ws.LiveBytes, 10)
	ckptLSN := strconv.FormatUint(ws.LastCheckpointLSN, 10)
	// Blocked-view gauges: resident block-cache bytes (alarm if it tracks
	// toward the budget with a rising miss rate) and the dirty/total block
	// split of the last checkpoint cut.
	cacheBytes := strconv.FormatInt(ws.ViewCacheBytes, 10)
	dirtyBlocks := strconv.FormatInt(ws.CkptDirtyBlocks, 10) + "/" + strconv.FormatInt(ws.CkptTotalBlocks, 10)
	role := s.db.Role()
	// A follower past its staleness bound reports 503 so load balancers
	// route reads to a healthier member; the lag figures say how far gone.
	if s.db.Stale() {
		lagLSN, lagAge := s.db.ReplLag()
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "stale", "role": role,
			"replica_lag_lsn": strconv.FormatUint(lagLSN, 10),
			"replica_lag_ns":  strconv.FormatInt(int64(lagAge), 10),
			"error":           "replica lag exceeds the staleness bound",
		})
		return
	}
	if ro, cause := s.db.ReadOnly(); ro {
		body := map[string]string{
			"status": "degraded", "shed_total": shed,
			"feed_subscribers": subs, "watch_shed_total": watchShed,
			"wal_live_bytes": liveBytes, "last_checkpoint_lsn": ckptLSN,
			"view_cache_bytes": cacheBytes, "ckpt_dirty_blocks": dirtyBlocks,
		}
		if cause != nil {
			body["error"] = cause.Error()
		}
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	if s.Overloaded() {
		writeJSON(w, http.StatusTooManyRequests, map[string]string{
			"status":           "overloaded",
			"error":            "admission queue full",
			"shed_total":       shed,
			"feed_subscribers": subs,
			"watch_shed_total": watchShed,
			"wal_live_bytes":   liveBytes,
		})
		return
	}
	body := map[string]string{
		"status": "ok", "role": role, "shed_total": shed,
		"feed_subscribers": subs, "watch_shed_total": watchShed,
		"wal_live_bytes": liveBytes, "last_checkpoint_lsn": ckptLSN,
		"view_cache_bytes": cacheBytes, "ckpt_dirty_blocks": dirtyBlocks,
	}
	if st, ok := s.db.ReplState(); ok {
		lagLSN, lagAge := s.db.ReplLag()
		body["replica_lag_lsn"] = strconv.FormatUint(lagLSN, 10)
		body["replica_lag_ns"] = strconv.FormatInt(int64(lagAge), 10)
		body["replica_applied_lsn"] = strconv.FormatUint(st.AppliedLSN, 10)
		body["replica_connected"] = strconv.FormatBool(st.Connected)
	}
	writeJSON(w, http.StatusOK, body)
}

func toResponse(res *chronicledb.Result) Response {
	out := Response{Columns: res.Columns, Message: res.Message}
	for _, row := range res.Rows {
		jr := make([]any, len(row))
		for i, v := range row {
			jr[i] = jsonValue(v)
		}
		out.Rows = append(out.Rows, jr)
	}
	return out
}

// jsonValue maps a typed value onto its natural JSON shape.
func jsonValue(v value.Value) any {
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindInt:
		return v.AsInt()
	case value.KindFloat:
		return v.AsFloat()
	case value.KindString:
		return v.AsString()
	case value.KindBool:
		return v.AsBool()
	case value.KindTime:
		return v.AsTime().UTC().Format(time.RFC3339Nano)
	default:
		return v.String()
	}
}

// writeJSON encodes into a buffer first: an encode failure is logged and
// becomes a 500 before any byte of the response has been committed,
// instead of being silently dropped after a 200 status line.
func writeJSON(w http.ResponseWriter, code int, body any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		log.Printf("server: encoding response: %v", err)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintln(w, `{"error":"internal error encoding response"}`)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if _, err := w.Write(buf.Bytes()); err != nil {
		// Headers are gone; all we can do is record the broken connection.
		log.Printf("server: writing response: %v", err)
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	eb := errorBody{Error: err.Error()}
	if code == http.StatusServiceUnavailable {
		switch {
		case errors.Is(err, chronicledb.ErrNotPrimary):
			eb.Code = codeNotPrimary
		case errors.Is(err, chronicledb.ErrReadOnly):
			eb.Code = codeReadOnly
		}
	}
	writeJSON(w, code, eb)
}

// writeErrorCode emits an error envelope with an explicit code.
func writeErrorCode(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorBody{Error: err.Error(), Code: code})
}
