// The /watch endpoint: changefeed delivery over HTTP. The primary shape is
// Server-Sent Events — one long-lived GET whose body is a stream of
// `event:`/`data:` records — because SSE survives proxies, needs no
// special client library, and reconnects carry a cursor in plain query
// parameters. A `poll=1` long-poll fallback serves clients that cannot
// hold a streaming body.
//
// Wire protocol (every data payload is JSON):
//
//	event: info      {"view","columns":[...],"from_lsn",resume:"tail|snapshot"}
//	event: snapshot  {"view","lsn","rows":[[...],...]}           (snapshot resume only)
//	event: delta     {"view","lsn","rows":[{"sn","chronon","vals":[...]},...]}
//	event: hb        {"lsn"}                                     (idle keep-alive)
//	event: bye       {"reason":"drain|slow|dropped|closed","lsn"} (terminal)
//
// The LSN sequence a subscriber observes across snapshot and delta events
// is gapless and duplicate-free, including across reconnects that pass the
// last delivered LSN back as from_lsn. A bye event's lsn is the cursor to
// resume from.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"chronicledb/internal/feed"
	"chronicledb/internal/value"
)

// watchInfo opens every stream: the view's columns, the resolved starting
// cursor, and which resume path was taken.
type watchInfo struct {
	View    string   `json:"view"`
	Columns []string `json:"columns"`
	FromLSN uint64   `json:"from_lsn"`
	Resume  string   `json:"resume"`
}

// watchRows is a snapshot payload: the view's full contents as of LSN.
type watchRows struct {
	View string  `json:"view"`
	LSN  uint64  `json:"lsn"`
	Rows [][]any `json:"rows"`
}

// watchDelta is one committed mutation's expression delta.
type watchDelta struct {
	View string          `json:"view"`
	LSN  uint64          `json:"lsn"`
	Rows []watchDeltaRow `json:"rows"`
}

type watchDeltaRow struct {
	SN      int64 `json:"sn"`
	Chronon int64 `json:"chronon"`
	Vals    []any `json:"vals"`
}

// watchHB is the idle keep-alive; lsn is the subscriber's current cursor.
type watchHB struct {
	LSN uint64 `json:"lsn"`
}

// watchBye terminates a stream; lsn is the cursor to resume from.
type watchBye struct {
	Reason string `json:"reason"`
	LSN    uint64 `json:"lsn"`
}

// watchPollResponse is the long-poll (`poll=1`) reply: at most one
// snapshot, any deltas that arrived, and the cursor for the next poll.
type watchPollResponse struct {
	View     string       `json:"view"`
	Columns  []string     `json:"columns"`
	Resume   string       `json:"resume"`
	Snapshot *watchRows   `json:"snapshot,omitempty"`
	Deltas   []watchDelta `json:"deltas,omitempty"`
	NextLSN  uint64       `json:"next_lsn"`
	End      string       `json:"end,omitempty"`
}

// handleWatch answers GET /watch?view=NAME[&from_lsn=N][&poll=1&wait=D].
// Subscribers are admitted under their own MaxSubscribers gate — a watcher
// flood sheds watchers with 429, never append capacity, and vice versa.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	hub := s.db.Feed()
	if hub == nil {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("changefeeds are disabled on this server"))
		return
	}
	q := r.URL.Query()
	name := q.Get("view")
	if name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing view parameter"))
		return
	}
	v, ok := s.db.View(name)
	if !ok {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("unknown view %q", name))
		return
	}
	if !s.staleGate(w) {
		return // follower past its staleness bound; subscribe elsewhere
	}
	var fromLSN uint64
	hasFrom := false
	if raw := q.Get("from_lsn"); raw != "" {
		parsed, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("from_lsn must be a non-negative integer"))
			return
		}
		fromLSN, hasFrom = parsed, true
	}
	select {
	case s.watchers <- struct{}{}:
	default:
		s.watchShed.Add(1)
		s.writeOverloaded(w)
		return
	}
	defer func() { <-s.watchers }()

	cols := v.Schema().Names()
	if q.Get("poll") == "1" {
		s.watchPoll(w, r, hub, name, cols, fromLSN, hasFrom)
		return
	}
	s.watchStream(w, r, hub, name, cols, fromLSN, hasFrom)
}

// sseSend writes one SSE event under a fresh per-write deadline and
// flushes it to the wire. The deadline is what bounds a stalled client:
// the stream has no overall timeout, but no single event may take longer
// than the server's write window to drain.
func (s *Server) sseSend(w http.ResponseWriter, rc *http.ResponseController, event string, body any) error {
	rc.SetWriteDeadline(time.Now().Add(s.writeWindow))
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
		return err
	}
	return rc.Flush()
}

// watchStream serves the SSE path: info, optional snapshot, then live
// deltas with heartbeats, ending in a terminal bye.
func (s *Server) watchStream(w http.ResponseWriter, r *http.Request, hub *feed.Hub, name string, cols []string, fromLSN uint64, hasFrom bool) {
	// Register before reading any snapshot: every delta committed after
	// this point is already being enqueued, so filtering frames at or below
	// the snapshot LSN splices catch-up into live with no gap or duplicate.
	sub, kind := hub.Subscribe(name, fromLSN, hasFrom)
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)

	cursor := uint64(0)
	if hasFrom {
		cursor = fromLSN
	}
	if err := s.sseSend(w, rc, "info", watchInfo{View: name, Columns: cols, FromLSN: cursor, Resume: kind.String()}); err != nil {
		return
	}
	var filter uint64
	if kind == feed.ResumeSnapshot {
		snap := watchRows{View: name}
		lsn, err := s.db.ScanViewAt(name, func(t value.Tuple) bool {
			row := make([]any, len(t))
			for i, cv := range t {
				row[i] = jsonValue(cv)
			}
			snap.Rows = append(snap.Rows, row)
			return true
		})
		if err != nil {
			s.sseSend(w, rc, "bye", watchBye{Reason: "error: " + err.Error(), LSN: cursor})
			return
		}
		snap.LSN = lsn
		if err := s.sseSend(w, rc, "snapshot", snap); err != nil {
			return
		}
		cursor, filter = lsn, lsn
	}

	hb := time.NewTicker(s.heartbeat)
	defer hb.Stop()
	var frames []*feed.Frame
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			s.sseSend(w, rc, "bye", watchBye{Reason: "drain", LSN: cursor})
			return
		case <-hb.C:
			if err := s.sseSend(w, rc, "hb", watchHB{LSN: cursor}); err != nil {
				return
			}
		case <-sub.C():
			frames = sub.Drain(frames[:0])
			failed := false
			for i, f := range frames {
				if failed || f.LSN <= filter {
					f.Release()
					frames[i] = nil
					continue
				}
				d := deltaPayload(name, f)
				f.Release()
				frames[i] = nil
				if err := s.sseSend(w, rc, "delta", d); err != nil {
					failed = true
					continue
				}
				cursor = d.LSN
			}
			if failed {
				return
			}
			if closed, reason := sub.Closed(); closed {
				s.sseSend(w, rc, "bye", watchBye{Reason: reason.String(), LSN: cursor})
				return
			}
		}
	}
}

// watchPoll serves the long-poll fallback: one bounded request that
// returns the catch-up (snapshot or backlog) immediately, or waits up to
// `wait` for the first live delta, then replies with the next cursor.
func (s *Server) watchPoll(w http.ResponseWriter, r *http.Request, hub *feed.Hub, name string, cols []string, fromLSN uint64, hasFrom bool) {
	wait := time.Duration(0)
	if raw := r.URL.Query().Get("wait"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("wait must be a duration like 5s"))
			return
		}
		if d > maxPollWait {
			d = maxPollWait
		}
		wait = d
	}
	sub, kind := hub.Subscribe(name, fromLSN, hasFrom)
	defer sub.Close()

	resp := watchPollResponse{View: name, Columns: cols, Resume: kind.String()}
	cursor := uint64(0)
	if hasFrom {
		cursor = fromLSN
	}
	var filter uint64
	if kind == feed.ResumeSnapshot {
		snap := watchRows{View: name}
		lsn, err := s.db.ScanViewAt(name, func(t value.Tuple) bool {
			row := make([]any, len(t))
			for i, cv := range t {
				row[i] = jsonValue(cv)
			}
			snap.Rows = append(snap.Rows, row)
			return true
		})
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		snap.LSN = lsn
		resp.Snapshot = &snap
		cursor, filter = lsn, lsn
	}

	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	var frames []*feed.Frame
	for {
		frames = sub.Drain(frames[:0])
		for i, f := range frames {
			if f.LSN <= filter {
				f.Release()
				frames[i] = nil
				continue
			}
			d := deltaPayload(name, f)
			f.Release()
			frames[i] = nil
			resp.Deltas = append(resp.Deltas, d)
			cursor = d.LSN
		}
		closed, reason := sub.Closed()
		if closed {
			resp.End = reason.String()
		}
		if len(resp.Deltas) > 0 || resp.Snapshot != nil || closed || wait == 0 {
			break
		}
		select {
		case <-sub.C():
			continue
		case <-deadline.C:
		case <-r.Context().Done():
		case <-s.drainCh:
		}
		wait = 0 // one final drain, then answer with whatever arrived
	}
	resp.NextLSN = cursor
	writeJSON(w, http.StatusOK, resp)
}

// deltaPayload converts one feed frame into its wire shape. Values are
// copied out before the caller releases the frame back to its pool.
func deltaPayload(name string, f *feed.Frame) watchDelta {
	d := watchDelta{View: name, LSN: f.LSN, Rows: make([]watchDeltaRow, len(f.Rows))}
	for j, row := range f.Rows {
		vals := make([]any, len(row.Vals))
		for k, cv := range row.Vals {
			vals[k] = jsonValue(cv)
		}
		d.Rows[j] = watchDeltaRow{SN: row.SN, Chronon: row.Chronon, Vals: vals}
	}
	return d
}
