// Client side of /watch: a resilient SSE subscriber. The client holds one
// streaming GET open, tracks the last delivered LSN as its cursor, and on
// any interruption — connection reset, server drain, shed as a slow
// consumer, 429 admission — reconnects with from_lsn=<cursor> after the
// configured backoff, so the caller observes one gapless, duplicate-free
// logical stream across every reconnect.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"strconv"
	"strings"
	"time"
)

// WatchKind tags a client-side watch event.
type WatchKind string

// The event kinds a Watch callback receives. Heartbeats are consumed
// internally (they only prove liveness); transient byes (drain, slow) are
// hidden behind an automatic reconnect.
const (
	// WatchInfo opens every (re)connect: the view's columns, the resolved
	// starting cursor, and whether this leg resumes from the in-memory tail
	// or replays a snapshot.
	WatchInfo WatchKind = "info"
	// WatchSnapshot carries the view's full contents as of LSN; deltas then
	// follow from LSN+1.
	WatchSnapshot WatchKind = "snapshot"
	// WatchDelta carries one committed mutation's delta rows at LSN.
	WatchDelta WatchKind = "delta"
	// WatchBye is terminal: the view was dropped server-side. LSN is the
	// last position delivered.
	WatchBye WatchKind = "bye"
)

// WatchDeltaRow is one delta row as delivered to a watch callback.
type WatchDeltaRow struct {
	SN      int64
	Chronon int64
	Vals    []any
}

// WatchEvent is one delivery to a Watch callback.
type WatchEvent struct {
	Kind    WatchKind
	View    string
	LSN     uint64
	Columns []string        // WatchInfo
	Resume  string          // WatchInfo: "tail" or "snapshot"
	Rows    [][]any         // WatchSnapshot
	Deltas  []WatchDeltaRow // WatchDelta
	Reason  string          // WatchBye
}

// watchOutcome is one stream leg's disposition.
type watchOutcome int

const (
	watchReconnect watchOutcome = iota // transient: resume from the cursor
	watchDone                          // terminal: stop watching
)

// Watch subscribes to a view's changefeed and streams events to fn until
// fn returns false, ctx is done, the view is dropped (fn receives a
// terminal WatchBye), or MaxAttempts consecutive connection failures burn
// through without a single event arriving.
//
// With hasFrom, fromLSN is the resume cursor — the last delta LSN the
// caller already holds. The cursor then advances with every snapshot and
// delta delivered, and every automatic reconnect passes it back, so the
// LSN sequence fn observes is gapless and duplicate-free across server
// drains, slow-consumer sheds, and network faults. After a deep
// disconnect (cursor older than the server's resume window) fn receives a
// fresh WatchSnapshot instead of the missed deltas; WatchInfo announces
// which way each leg resumed.
func (c *Client) Watch(ctx context.Context, view string, fromLSN uint64, hasFrom bool, fn func(WatchEvent) bool) error {
	cursor, haveCursor := fromLSN, hasFrom
	fails := 0
	var lastErr error
	var retryAfter time.Duration
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if fails > 0 {
			if fails >= c.cfg.MaxAttempts {
				return lastErr
			}
			c.cfg.sleep(c.backoffDelay(fails-1, retryAfter))
			retryAfter = 0
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		url := c.baseURL() + "/watch?view=" + neturl.QueryEscape(view)
		if haveCursor {
			url += "&from_lsn=" + strconv.FormatUint(cursor, 10)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return fmt.Errorf("server: %w", err)
		}
		resp, err := c.stream.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// Unreachable endpoint: rotate so the reconnect tries the next
			// member — a watch survives a failover by resuming its cursor
			// against the promoted follower's replicated feed.
			c.rotate()
			fails++
			lastErr = fmt.Errorf("server: %w", err)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			var eb errorBody
			json.NewDecoder(resp.Body).Decode(&eb)
			resp.Body.Close()
			serr := statusError(resp.StatusCode, eb.Code, eb.Error)
			if resp.StatusCode == http.StatusTooManyRequests {
				// Admission shed (watcher slots full): transient, back off
				// honoring the server's hint and try again.
				retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), c.cfg.now())
				fails++
				lastErr = serr
				continue
			}
			if resp.StatusCode == http.StatusServiceUnavailable && retryableElsewhere(eb.Code) && len(c.endpoints) > 1 {
				// Wrong member (stale follower): resubscribe elsewhere with
				// the same cursor.
				c.rotate()
				fails++
				lastErr = serr
				continue
			}
			// Anything else (unknown view, feeds disabled, bad cursor) is
			// permanent: resending the same subscription cannot help.
			return serr
		}
		outcome, legErr := c.consumeWatch(resp.Body, fn, &cursor, &haveCursor, &fails)
		resp.Body.Close()
		if outcome == watchDone {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if legErr != nil {
			fails++
			lastErr = legErr
		}
	}
}

// consumeWatch reads one stream leg, dispatching events to fn and
// advancing the cursor. It returns watchDone when fn stops the watch or a
// terminal bye arrives; otherwise watchReconnect, with a non-nil error
// when the leg ended in a failure (counts toward MaxAttempts) rather than
// a clean transient bye.
func (c *Client) consumeWatch(body io.Reader, fn func(WatchEvent) bool, cursor *uint64, haveCursor *bool, fails *int) (watchOutcome, error) {
	rd := bufio.NewReader(body)
	var event string
	var data []byte
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			return watchReconnect, fmt.Errorf("server: watch stream: %w", err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line != "" {
			if rest, ok := strings.CutPrefix(line, "event: "); ok {
				event = rest
			} else if rest, ok := strings.CutPrefix(line, "data: "); ok {
				data = []byte(rest)
			}
			continue
		}
		if event == "" && data == nil {
			continue // stray blank line between events
		}
		ev, terminal, deliver, err := decodeWatchEvent(event, data)
		event, data = "", nil
		if err != nil {
			return watchReconnect, err
		}
		// Any successfully decoded event proves the stream works; the
		// failure streak resets so a long-lived watch never exhausts its
		// attempts across unrelated interruptions.
		*fails = 0
		switch ev.Kind {
		case WatchSnapshot, WatchDelta:
			*cursor, *haveCursor = ev.LSN, true
		case WatchBye:
			if ev.LSN > *cursor {
				*cursor, *haveCursor = ev.LSN, true
			}
		}
		if deliver && !fn(ev) {
			return watchDone, nil
		}
		if terminal {
			return watchDone, nil
		}
		if ev.Kind == WatchBye {
			// Transient bye (drain, slow): the server is about to close the
			// connection; reconnect cleanly with the cursor it handed back.
			return watchReconnect, nil
		}
	}
}

// decodeWatchEvent maps one wire event to its client shape. deliver is
// false for events the client consumes itself (heartbeats, transient
// byes); terminal marks the stream's true end (view dropped).
func decodeWatchEvent(event string, data []byte) (ev WatchEvent, terminal, deliver bool, err error) {
	switch event {
	case "info":
		var wi watchInfo
		if err = json.Unmarshal(data, &wi); err != nil {
			break
		}
		ev = WatchEvent{Kind: WatchInfo, View: wi.View, LSN: wi.FromLSN, Columns: wi.Columns, Resume: wi.Resume}
		deliver = true
	case "snapshot":
		var ws watchRows
		if err = json.Unmarshal(data, &ws); err != nil {
			break
		}
		ev = WatchEvent{Kind: WatchSnapshot, View: ws.View, LSN: ws.LSN, Rows: ws.Rows}
		deliver = true
	case "delta":
		var wd watchDelta
		if err = json.Unmarshal(data, &wd); err != nil {
			break
		}
		ev = WatchEvent{Kind: WatchDelta, View: wd.View, LSN: wd.LSN}
		ev.Deltas = make([]WatchDeltaRow, len(wd.Rows))
		for i, r := range wd.Rows {
			ev.Deltas[i] = WatchDeltaRow{SN: r.SN, Chronon: r.Chronon, Vals: r.Vals}
		}
		deliver = true
	case "hb":
		var h watchHB
		if err = json.Unmarshal(data, &h); err != nil {
			break
		}
		ev = WatchEvent{Kind: "hb", LSN: h.LSN}
	case "bye":
		var b watchBye
		if err = json.Unmarshal(data, &b); err != nil {
			break
		}
		ev = WatchEvent{Kind: WatchBye, LSN: b.LSN, Reason: b.Reason}
		// Dropped means the view no longer exists: deliver and end. Drain
		// and slow are transient server-side states: reconnect silently
		// with the cursor.
		if b.Reason == "dropped" {
			terminal, deliver = true, true
		}
	default:
		// Unknown event type: a newer server speaking a richer protocol.
		// Skip it rather than failing the stream.
	}
	if err != nil {
		err = fmt.Errorf("server: decoding watch %s event: %w", event, err)
	}
	return ev, terminal, deliver, err
}
