// End-to-end tests for the /watch changefeed surface: SSE streaming with
// snapshot catch-up, cursor resume across reconnects, the long-poll
// fallback, the MaxSubscribers admission gate, and graceful drain.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	chronicledb "chronicledb"
)

// newFeedServer starts an httptest server over a feed-enabled database.
func newFeedServer(t *testing.T, cfg Config) (*httptest.Server, *Client) {
	t.Helper()
	db, err := chronicledb.Open(chronicledb.Options{Feed: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	ts := httptest.NewServer(NewWith(db, cfg))
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)
	if _, err := c.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`CREATE VIEW usage AS SELECT acct, COUNT(*) AS n FROM calls GROUP BY acct`); err != nil {
		t.Fatal(err)
	}
	return ts, c
}

// TestWatchSSE streams snapshot catch-up plus live deltas over HTTP: the
// snapshot count plus the delta rows received (one source row per append)
// must conserve the append total.
func TestWatchSSE(t *testing.T) {
	_, c := newFeedServer(t, Config{})
	for i := 0; i < 5; i++ {
		if _, err := c.Exec(`APPEND INTO calls VALUES ('a', 1)`); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	var (
		snapshotN int64
		sum       int64
		lastLSN   uint64
		resume    string
	)
	done := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		done <- c.Watch(ctx, "usage", 0, false, func(ev WatchEvent) bool {
			switch ev.Kind {
			case WatchInfo:
				resume = ev.Resume
				close(started)
			case WatchSnapshot:
				lastLSN = ev.LSN
				for _, r := range ev.Rows {
					snapshotN = int64(r[1].(float64))
				}
			case WatchDelta:
				if ev.LSN <= lastLSN {
					t.Errorf("delta LSN %d after %d", ev.LSN, lastLSN)
					return false
				}
				lastLSN = ev.LSN
				sum += int64(len(ev.Deltas))
			}
			return snapshotN+sum < 10
		})
	}()
	<-started
	if resume != "snapshot" {
		t.Errorf("resume = %q, want snapshot", resume)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Exec(`APPEND INTO calls VALUES ('a', 1)`); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if snapshotN != 5 || sum != 5 {
		t.Fatalf("snapshot %d + delta rows %d, want 5 + 5", snapshotN, sum)
	}
}

// TestWatchSSEResume stops a stream, then reconnects with the cursor: the
// continuation replays nothing and delivers exactly the new deltas.
func TestWatchSSEResume(t *testing.T) {
	_, c := newFeedServer(t, Config{})
	for i := 0; i < 10; i++ {
		if _, err := c.Exec(`APPEND INTO calls VALUES ('a', 1)`); err != nil {
			t.Fatal(err)
		}
	}
	var cursor uint64
	err := c.Watch(context.Background(), "usage", 0, false, func(ev WatchEvent) bool {
		cursor = ev.LSN
		return ev.Kind != WatchSnapshot // stop once the snapshot lands
	})
	if err != nil {
		t.Fatal(err)
	}
	if cursor == 0 {
		t.Fatal("snapshot carried no LSN")
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Exec(`APPEND INTO calls VALUES ('a', 1)`); err != nil {
			t.Fatal(err)
		}
	}
	var sum int64
	last := cursor
	err = c.Watch(context.Background(), "usage", cursor, true, func(ev WatchEvent) bool {
		switch ev.Kind {
		case WatchSnapshot:
			t.Error("cursor resume replayed a snapshot")
		case WatchDelta:
			if ev.LSN <= last {
				t.Errorf("resumed LSN %d after %d", ev.LSN, last)
			}
			last = ev.LSN
			sum += int64(len(ev.Deltas))
		}
		return sum < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 5 {
		t.Fatalf("resumed delta rows = %d, want 5 (gap or duplicate)", sum)
	}
}

// TestWatchLongPoll exercises the poll=1 fallback: the first request
// returns the snapshot, the next request waits for and returns a delta,
// carrying the cursor forward in next_lsn.
func TestWatchLongPoll(t *testing.T) {
	ts, c := newFeedServer(t, Config{})
	for i := 0; i < 3; i++ {
		if _, err := c.Exec(`APPEND INTO calls VALUES ('a', 1)`); err != nil {
			t.Fatal(err)
		}
	}
	poll := func(url string) watchPollResponse {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status = %d", resp.StatusCode)
		}
		var out watchPollResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	first := poll(ts.URL + "/watch?view=usage&poll=1")
	if first.Snapshot == nil || len(first.Snapshot.Rows) != 1 {
		t.Fatalf("first poll snapshot = %+v", first.Snapshot)
	}
	if n := first.Snapshot.Rows[0][1].(float64); n != 3 {
		t.Fatalf("snapshot count = %v, want 3", n)
	}
	if first.NextLSN == 0 {
		t.Fatal("first poll carried no cursor")
	}

	// Appends racing the next poll: issue the append first so wait=5s
	// returns as soon as the delta lands.
	if _, err := c.Exec(`APPEND INTO calls VALUES ('a', 1)`); err != nil {
		t.Fatal(err)
	}
	second := poll(fmt.Sprintf("%s/watch?view=usage&poll=1&wait=5s&from_lsn=%d", ts.URL, first.NextLSN))
	if second.Snapshot != nil {
		t.Fatal("cursor poll replayed a snapshot")
	}
	var sum int64
	for _, d := range second.Deltas {
		if d.LSN <= first.NextLSN {
			t.Fatalf("poll delta LSN %d not above cursor %d", d.LSN, first.NextLSN)
		}
		sum += int64(len(d.Rows))
	}
	if sum != 1 {
		t.Fatalf("poll delta rows = %d, want 1", sum)
	}
	if second.NextLSN <= first.NextLSN {
		t.Fatalf("next_lsn did not advance: %d -> %d", first.NextLSN, second.NextLSN)
	}

	// An empty wait=0 poll at the head returns no deltas and holds the cursor.
	third := poll(fmt.Sprintf("%s/watch?view=usage&poll=1&from_lsn=%d", ts.URL, second.NextLSN))
	if len(third.Deltas) != 0 || third.NextLSN != second.NextLSN {
		t.Fatalf("idle poll = %+v, want empty at cursor %d", third, second.NextLSN)
	}
}

// TestWatchAdmissionGate caps subscribers at 1: the second watcher sheds
// with 429 + Retry-After without touching the append admission slots.
func TestWatchAdmissionGate(t *testing.T) {
	ts, c := newFeedServer(t, Config{MaxSubscribers: 1})

	resp, err := http.Get(ts.URL + "/watch?view=usage")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first watcher status = %d", resp.StatusCode)
	}
	// Wait for the info event so the slot is definitely held.
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "event: info") {
		t.Fatalf("first SSE line = %q, %v", line, err)
	}

	second, err := http.Get(ts.URL + "/watch?view=usage")
	if err != nil {
		t.Fatal(err)
	}
	defer second.Body.Close()
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second watcher status = %d, want 429", second.StatusCode)
	}
	if second.Header.Get("Retry-After") == "" {
		t.Error("shed watcher got no Retry-After")
	}

	// Appends still flow: watcher admission is a separate gate.
	if _, err := c.Exec(`APPEND INTO calls VALUES ('a', 1)`); err != nil {
		t.Fatalf("append starved by watcher flood: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st["watch_shed_total"] != float64(1) {
		t.Errorf("watch_shed_total = %v, want 1", st["watch_shed_total"])
	}
	if st["watch_active"] != float64(1) {
		t.Errorf("watch_active = %v, want 1", st["watch_active"])
	}
}

// TestWatchErrors covers the request-validation surface.
func TestWatchErrors(t *testing.T) {
	ts, _ := newFeedServer(t, Config{})
	for path, want := range map[string]int{
		"/watch":                             http.StatusBadRequest,          // missing view
		"/watch?view=ghost":                  http.StatusUnprocessableEntity, // unknown view
		"/watch?view=usage&from_lsn=abc":     http.StatusBadRequest,          // bad cursor
		"/watch?view=usage&poll=1&wait=nope": http.StatusBadRequest,          // bad wait
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: status = %d, want %d", path, resp.StatusCode, want)
		}
	}

	// A feed-disabled database refuses watches outright.
	db, err := chronicledb.Open(chronicledb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	off := httptest.NewServer(New(db))
	defer off.Close()
	resp, err := http.Get(off.URL + "/watch?view=usage")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("feed-off status = %d, want 422", resp.StatusCode)
	}
}

// TestWatchDrain runs the real Serve loop and cancels it while an SSE
// stream is open: the subscriber must receive a terminal bye{drain} event
// before the connection closes, and Serve must return promptly rather than
// waiting out the stream.
func TestWatchDrain(t *testing.T) {
	db, err := chronicledb.Open(chronicledb.Options{Feed: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE VIEW usage AS SELECT acct, COUNT(*) AS n FROM calls GROUP BY acct`); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() {
		served <- Serve(ctx, ln, NewWith(db, Config{}), 2*time.Second, 5*time.Second)
	}()

	resp, err := http.Get("http://" + ln.Addr().String() + "/watch?view=usage")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	// Consume the info event, then trigger the drain.
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading info event: %v", err)
		}
		if line == "\n" {
			break
		}
	}
	cancel()

	sawBye := false
	deadline := time.After(10 * time.Second)
	lines := make(chan string)
	go func() {
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				close(lines)
				return
			}
			lines <- line
		}
	}()
read:
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				break read // EOF: stream closed
			}
			if strings.HasPrefix(line, "event: bye") {
				sawBye = true
			}
			if sawBye && strings.HasPrefix(line, "data: ") {
				var bye watchBye
				if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(line), "data: ")), &bye); err != nil {
					t.Fatal(err)
				}
				if bye.Reason != "drain" {
					t.Errorf("bye reason = %q, want drain", bye.Reason)
				}
				break read
			}
		case <-deadline:
			t.Fatal("no bye event after drain began")
		}
	}
	if !sawBye {
		t.Error("stream closed without a bye{drain} event")
	}
	select {
	case err := <-served:
		if err != nil && err != http.ErrServerClosed {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
}
