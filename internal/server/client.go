package server

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Typed client errors callers can branch on with errors.Is instead of
// string-matching the server's message.
var (
	// ErrOverloaded wraps every 429: admission control shed the request.
	// Transient — the client retries it (honoring Retry-After) until the
	// attempt or time budget runs out.
	ErrOverloaded = errors.New("server overloaded")
	// ErrReadOnly wraps a 503 whose code is "read-only" (or carries no
	// code): the database degraded to read-only after a WAL failure.
	// Permanent until an operator intervenes, so the client never retries
	// it — not even against another endpoint, since the degradation is a
	// durability failure, not a routing mistake.
	ErrReadOnly = errors.New("server is read-only or unavailable")
	// ErrNotPrimary wraps a 503 whose code is "not-primary": the endpoint
	// is a replica rejecting a write. The request is fine — it reached the
	// wrong member — so the client rotates to the next endpoint and
	// retries.
	ErrNotPrimary = errors.New("endpoint is a replica, not the primary")
	// ErrStaleReplica wraps a 503 whose code is "stale-replica": a
	// follower past its staleness bound declining reads. Retried against
	// the next endpoint.
	ErrStaleReplica = errors.New("replica is stale beyond its staleness bound")
	// ErrCircuitOpen means the client's circuit breaker is open after too
	// many consecutive failures; calls fail fast without touching the
	// network until the cooldown elapses.
	ErrCircuitOpen = errors.New("circuit breaker open")
)

// ClientConfig tunes the resilient client. The zero value gives sane
// defaults throughout.
type ClientConfig struct {
	// Timeout bounds each individual attempt (dial + request + response).
	// Default 10s. The old client used http.DefaultClient, which has no
	// timeout at all — a hung server hung the caller forever.
	Timeout time.Duration
	// MaxAttempts bounds attempts per call (first try + retries).
	// Default 4; 1 disables retries.
	MaxAttempts int
	// RetryBudget bounds the total time one call may spend across all
	// attempts and backoff sleeps. Default 30s.
	RetryBudget time.Duration
	// BaseBackoff is the first retry delay; attempt k waits
	// min(MaxBackoff, BaseBackoff<<k) with jitter. Default 25ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential delay. Default 2s.
	MaxBackoff time.Duration
	// BreakerThreshold is how many consecutive failures open the circuit.
	// Default 5; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long the circuit stays open before one probe
	// is allowed through (half-open). Default 2s.
	BreakerCooldown time.Duration
	// ClientID identifies this client in idempotent appends; empty means a
	// random id per Client (fresh process = fresh id, which is correct: a
	// new process cannot be retrying the old one's requests).
	ClientID string
	// Endpoints lists additional base URLs behind the same logical
	// database (the other members of a replicated deployment). The client
	// sticks to its current endpoint until a dial-shaped error, a
	// mid-flight transport failure on an idempotent request, or a 503
	// whose code says "wrong member" (not-primary, stale-replica) rotates
	// it to the next — the failover path after a primary dies and a
	// follower is promoted. Idempotency ids make the cross-endpoint retry
	// exactly-once: the promoted follower inherited the dedup table.
	Endpoints []string
	// Transport overrides the HTTP transport (fault injection, pooling).
	Transport http.RoundTripper

	// Test seams; nil means the real clock, sleep, and PRNG.
	now   func() time.Time
	sleep func(time.Duration)
	rnd   func() float64
}

func (cfg *ClientConfig) fill() {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 30 * time.Second
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 25 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	if cfg.ClientID == "" {
		var b [8]byte
		rand.Read(b[:])
		cfg.ClientID = hex.EncodeToString(b[:])
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.sleep == nil {
		cfg.sleep = time.Sleep
	}
	if cfg.rnd == nil {
		// Cheap deterministic-free jitter: spread on the clock's low bits
		// is unnecessary — crypto/rand one byte per call is fine off the
		// hot path.
		cfg.rnd = func() float64 {
			var b [1]byte
			rand.Read(b[:])
			return float64(b[0]) / 256
		}
	}
}

// breakerState is the circuit-breaker state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker trips open after N consecutive failures; while open, calls fail
// fast. After the cooldown one probe is let through (half-open): success
// closes the circuit, failure re-opens it for another cooldown.
type breaker struct {
	mu        sync.Mutex
	state     breakerState
	fails     int
	openedAt  time.Time
	threshold int
	cooldown  time.Duration
	now       func() time.Time
}

// allow reports whether a call may proceed, transitioning open→half-open
// when the cooldown has elapsed.
func (b *breaker) allow() error {
	if b.threshold < 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return ErrCircuitOpen
		}
		b.state = breakerHalfOpen // this caller is the probe
		return nil
	case breakerHalfOpen:
		return ErrCircuitOpen // probe already in flight
	}
	return nil
}

func (b *breaker) onSuccess() {
	if b.threshold < 0 {
		return
	}
	b.mu.Lock()
	b.state = breakerClosed
	b.fails = 0
	b.mu.Unlock()
}

func (b *breaker) onFailure() {
	if b.threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
		b.openedAt = b.now()
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.state = breakerOpen
		b.openedAt = b.now()
	}
}

// Client speaks the server's HTTP protocol with per-attempt deadlines,
// exponential backoff with jitter, a retry time budget, Retry-After
// honoring, and a circuit breaker. Appends are idempotent by default:
// every AppendRows call carries a (client_id, request_id) pair, so a retry
// that crosses a timeout, a duplicated delivery, or a server restart can
// never double-apply.
type Client struct {
	// endpoints are the candidate base URLs; cur indexes the one in use.
	// Rotation advances cur so every request (including reconnecting
	// watches) follows the client to the member that answers.
	endpoints []string
	cur       atomic.Int64
	http      *http.Client
	// stream shares http's transport but carries no overall timeout: a
	// /watch subscription is supposed to stay open indefinitely, and the
	// request-shaped client's Timeout would sever it at the deadline.
	stream  *http.Client
	cfg     ClientConfig
	brk     breaker
	nextReq atomic.Uint64
}

// NewClient returns a client for the server at base (e.g.
// "http://localhost:7457") with default resilience settings.
func NewClient(base string) *Client { return NewClientWith(base, ClientConfig{}) }

// NewClientWith returns a client with explicit resilience settings.
func NewClientWith(base string, cfg ClientConfig) *Client {
	cfg.fill()
	transport := cfg.Transport
	if transport == nil {
		// A dedicated transport with its own connect/TLS/header deadlines:
		// even with retries disabled, no call can hang past its budget on
		// a dead TCP peer or a stalled handshake.
		transport = &http.Transport{
			DialContext:           (&net.Dialer{Timeout: 5 * time.Second, KeepAlive: 30 * time.Second}).DialContext,
			TLSHandshakeTimeout:   5 * time.Second,
			ResponseHeaderTimeout: cfg.Timeout,
			MaxIdleConnsPerHost:   16,
			IdleConnTimeout:       60 * time.Second,
		}
	}
	endpoints := make([]string, 0, 1+len(cfg.Endpoints))
	if base != "" {
		endpoints = append(endpoints, base)
	}
	endpoints = append(endpoints, cfg.Endpoints...)
	if len(endpoints) == 0 {
		endpoints = []string{""}
	}
	c := &Client{
		endpoints: endpoints,
		http:      &http.Client{Transport: transport, Timeout: cfg.Timeout},
		stream:    &http.Client{Transport: transport},
		cfg:       cfg,
	}
	c.brk = breaker{
		threshold: cfg.BreakerThreshold,
		cooldown:  cfg.BreakerCooldown,
		now:       cfg.now,
	}
	return c
}

// ClientID returns the idempotency client id requests are tagged with.
func (c *Client) ClientID() string { return c.cfg.ClientID }

// baseURL returns the endpoint currently in use.
func (c *Client) baseURL() string {
	return c.endpoints[int(c.cur.Load())%len(c.endpoints)]
}

// Endpoint reports the endpoint currently in use (observability/tests).
func (c *Client) Endpoint() string { return c.baseURL() }

// rotate advances to the next endpoint; a no-op with a single endpoint.
func (c *Client) rotate() {
	if len(c.endpoints) > 1 {
		c.cur.Add(1)
	}
}

// statusError converts a non-200 response to an error, wrapping the typed
// sentinel for the statuses callers branch on. errCode is the response
// body's code field, which splits the 503 space: a replica rejecting
// writes (not-primary) and a follower past its staleness bound
// (stale-replica) are routing outcomes worth retrying elsewhere; read-only
// (or an old server sending no code) is a durability failure and final.
func statusError(code int, errCode, msg string) error {
	if msg == "" {
		msg = fmt.Sprintf("HTTP %d", code)
	}
	switch code {
	case http.StatusTooManyRequests:
		return fmt.Errorf("server: %w: %s", ErrOverloaded, msg)
	case http.StatusServiceUnavailable:
		switch errCode {
		case codeNotPrimary:
			return fmt.Errorf("server: %w: %s", ErrNotPrimary, msg)
		case codeStaleReplica:
			return fmt.Errorf("server: %w: %s", ErrStaleReplica, msg)
		default:
			return fmt.Errorf("server: %w: %s", ErrReadOnly, msg)
		}
	default:
		return fmt.Errorf("server: %s", msg)
	}
}

// retryableElsewhere reports whether a 503 names a wrong-member condition
// that a different endpoint may not share.
func retryableElsewhere(errCode string) bool {
	return errCode == codeNotPrimary || errCode == codeStaleReplica
}

// attemptResult carries one attempt's outcome through the retry loop.
type attemptResult struct {
	status     int           // HTTP status (0 on transport error)
	code       string        // error body's code field (503 flavors)
	body       []byte        // response body (200s only)
	err        error         // final-form error, nil on success
	retryAfter time.Duration // server's Retry-After hint (429)
	transport  bool          // transport-level failure
	dialErr    bool          // failed before the request was sent
}

// attempt performs one HTTP exchange.
func (c *Client) attempt(method, path string, body []byte) attemptResult {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.Timeout)
	defer cancel()
	var rdr *bytes.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	} else {
		rdr = bytes.NewReader(nil)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL()+path, rdr)
	if err != nil {
		return attemptResult{err: fmt.Errorf("server: %w", err), transport: true, dialErr: true}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return attemptResult{
			err:       fmt.Errorf("server: %w", err),
			transport: true,
			dialErr:   isDialError(err),
		}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		res := attemptResult{status: resp.StatusCode, code: eb.Code, err: statusError(resp.StatusCode, eb.Code, eb.Error)}
		if resp.StatusCode == http.StatusTooManyRequests {
			res.retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), c.cfg.now())
		}
		return res
	}
	data, err := readAll(resp.Body)
	if err != nil {
		// The status line arrived but the body was cut — a mid-response
		// connection loss; the server has already applied the request.
		return attemptResult{err: fmt.Errorf("server: reading response: %w", err), transport: true}
	}
	return attemptResult{status: http.StatusOK, body: data}
}

func readAll(r interface{ Read([]byte) (int, error) }) ([]byte, error) {
	var buf bytes.Buffer
	_, err := buf.ReadFrom(r)
	return buf.Bytes(), err
}

// isDialError reports whether a transport error happened before the
// request left the client (connect/refused/DNS): the server cannot have
// seen the request, so even non-idempotent calls may retry it.
func isDialError(err error) bool {
	var oe *net.OpError
	return errors.As(err, &oe) && oe.Op == "dial"
}

// parseRetryAfter decodes a Retry-After header: delta-seconds or HTTP-date.
func parseRetryAfter(h string, now time.Time) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(h); err == nil {
		if d := at.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// backoffDelay computes the jittered exponential delay before retry k
// (0-based), floored at half the nominal delay so it never degenerates to
// a tight loop.
func (c *Client) backoffDelay(k int, retryAfter time.Duration) time.Duration {
	d := c.cfg.BaseBackoff << k
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	if retryAfter > d {
		d = retryAfter
	}
	return d/2 + time.Duration(c.cfg.rnd()*float64(d/2))
}

// do runs the retry loop for one logical call. idempotent marks calls that
// are safe to resend after a mid-flight transport failure (reads, and
// appends carrying a request id); non-idempotent calls are retried only
// when the failure provably happened before the request was sent.
func (c *Client) do(method, path string, body []byte, idempotent bool, out any) error {
	start := c.cfg.now()
	var last attemptResult
	for k := 0; k < c.cfg.MaxAttempts; k++ {
		if k > 0 {
			d := c.backoffDelay(k-1, last.retryAfter)
			if c.cfg.now().Sub(start)+d > c.cfg.RetryBudget {
				break // budget exhausted: report the last real failure
			}
			c.cfg.sleep(d)
		}
		if err := c.brk.allow(); err != nil {
			if last.err != nil {
				return fmt.Errorf("%w (last failure: %v)", err, last.err)
			}
			return err
		}
		last = c.attempt(method, path, body)
		switch {
		case last.err == nil:
			c.brk.onSuccess()
			if out == nil {
				return nil
			}
			if err := json.Unmarshal(last.body, out); err != nil {
				return fmt.Errorf("server: decoding response: %w", err)
			}
			return nil
		case last.status == http.StatusTooManyRequests:
			c.brk.onFailure()
			continue // transient shed: back off (honoring Retry-After) and retry
		case last.status == http.StatusServiceUnavailable:
			// 503 is never retryable against the answering endpoint. Two of
			// its codes are wrong-member conditions — a replica rejecting a
			// write, a follower too stale to read — that another endpoint
			// may not share: rotate and retry there. Read-only (or no code)
			// is a durability failure every retry would just re-observe.
			if retryableElsewhere(last.code) && len(c.endpoints) > 1 {
				c.brk.onFailure()
				c.rotate()
				continue
			}
			c.brk.onFailure()
			return last.err
		case last.status != 0:
			// Any other HTTP status is the request's own fault (4xx) or a
			// server bug (5xx); retrying the same bytes cannot help. The
			// server answered, so the breaker counts it as contact.
			c.brk.onSuccess()
			return last.err
		case last.transport && (last.dialErr || idempotent):
			// The endpoint is unreachable (or died mid-flight on an
			// idempotent call): rotate so the retry — and every later call —
			// tries the next member. This is the failover path after a
			// primary power cut: the retry lands on the promoted follower,
			// whose replicated dedup table turns it into the original ack.
			c.brk.onFailure()
			c.rotate()
			continue
		default:
			// Mid-flight transport failure on a non-idempotent call: the
			// server may have applied it; resending could double-apply.
			c.brk.onFailure()
			return last.err
		}
	}
	if last.err == nil {
		return fmt.Errorf("server: retry budget exhausted before first attempt")
	}
	return last.err
}

// Exec executes one or more statements remotely. Statements are not
// idempotent (an INSERT resent after a mid-flight failure would
// double-apply), so Exec retries only failures that provably happened
// before the request was sent, plus 429 sheds.
func (c *Client) Exec(stmt string) (*Response, error) {
	body, err := json.Marshal(Request{Stmt: stmt})
	if err != nil {
		return nil, err
	}
	var out Response
	if err := c.do(http.MethodPost, "/exec", body, false, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches engine counters. Numeric stats arrive as float64 (JSON
// numbers); read_only is a bool and read_only_cause, when present, the
// degradation cause.
func (c *Client) Stats() (map[string]any, error) {
	var out map[string]any
	if err := c.do(http.MethodGet, "/stats", nil, true, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Healthy reports whether the server answers its health check. One
// attempt, no retries, no breaker: health polls must report the server as
// it is right now.
func (c *Client) Healthy() bool {
	res := c.attempt(http.MethodGet, "/healthz", nil)
	return res.err == nil
}

// AppendRows bulk-appends rows to a chronicle through POST /append. Every
// call carries the client's id and a fresh request id, making it safe to
// retry across timeouts, duplicated deliveries, and server restarts: the
// server's persisted dedup table returns the original ack instead of
// re-applying.
func (c *Client) AppendRows(chronicle string, rows [][]any) (*AppendResponse, error) {
	return c.AppendRowsIdem(chronicle, rows, c.newRequestID())
}

// AppendRowsIdem is AppendRows with a caller-chosen request id, for
// callers that manage their own retry loops (reusing the id across calls
// keeps the request exactly-once even when the caller retries above this
// client, e.g. across failovers).
func (c *Client) AppendRowsIdem(chronicle string, rows [][]any, requestID string) (*AppendResponse, error) {
	body, err := json.Marshal(AppendRequest{
		Chronicle: chronicle, Rows: rows,
		ClientID: c.cfg.ClientID, RequestID: requestID,
	})
	if err != nil {
		return nil, err
	}
	var out AppendResponse
	if err := c.do(http.MethodPost, "/append", body, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// newRequestID mints a per-client unique request id.
func (c *Client) newRequestID() string {
	return "r" + strconv.FormatUint(c.nextReq.Add(1), 10)
}
