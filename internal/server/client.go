package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
)

// Client speaks the /exec protocol.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the server at base (e.g.
// "http://localhost:7457").
func NewClient(base string) *Client {
	return &Client{base: base, http: http.DefaultClient}
}

// Exec executes one or more statements remotely.
func (c *Client) Exec(stmt string) (*Response, error) {
	body, err := json.Marshal(Request{Stmt: stmt})
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Post(c.base+"/exec", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
			return nil, fmt.Errorf("server: HTTP %d", resp.StatusCode)
		}
		return nil, fmt.Errorf("server: %s", eb.Error)
	}
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("server: decoding response: %w", err)
	}
	return &out, nil
}

// Stats fetches engine counters. Numeric stats arrive as float64 (JSON
// numbers); read_only is a bool and read_only_cause, when present, the
// degradation cause.
func (c *Client) Stats() (map[string]any, error) {
	resp, err := c.http.Get(c.base + "/stats")
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("server: HTTP %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("server: decoding stats: %w", err)
	}
	return out, nil
}

// Healthy reports whether the server answers its health check.
func (c *Client) Healthy() bool {
	resp, err := c.http.Get(c.base + "/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// AppendRows bulk-appends rows to a chronicle through POST /append.
func (c *Client) AppendRows(chronicle string, rows [][]any) (*AppendResponse, error) {
	body, err := json.Marshal(AppendRequest{Chronicle: chronicle, Rows: rows})
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Post(c.base+"/append", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
			return nil, fmt.Errorf("server: HTTP %d", resp.StatusCode)
		}
		return nil, fmt.Errorf("server: %s", eb.Error)
	}
	var out AppendResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("server: decoding response: %w", err)
	}
	return &out, nil
}
