// Package stats provides a compact log-bucketed latency histogram used by
// the engine to track per-append maintenance latency percentiles — the
// operational face of the paper's IM complexity classes: an SCA₁ view
// keeps the tail flat no matter how long the system has been recording.
package stats

import (
	"fmt"
	"math/bits"
	"strings"
	"time"
)

// bucketCount covers 1ns to ~9.2s in power-of-two buckets (2^63 ns).
const bucketCount = 64

// Histogram is a fixed-size, allocation-free latency histogram with
// power-of-two buckets. The zero value is ready to use. It is not
// synchronized; the engine updates it under its own mutex.
type Histogram struct {
	buckets [bucketCount]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// Observe records one duration (negative durations count as zero).
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.buckets[bucketOf(ns)]++
	h.count++
	h.sum += ns
	if h.count == 1 || ns < h.min {
		h.min = ns
	}
	if ns > h.max {
		h.max = ns
	}
}

// bucketOf maps a nanosecond value to its power-of-two bucket index:
// bucket i holds values in [2^(i-1)+1 … 2^i], with bucket 0 holding 0..1.
func bucketOf(ns uint64) int {
	if ns <= 1 {
		return 0
	}
	return bits.Len64(ns - 1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the mean observation.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Min returns the smallest observation.
func (h *Histogram) Min() time.Duration { return time.Duration(h.min) }

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the top
// of the bucket containing it. Power-of-two buckets bound the error by 2×.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based.
	rank := uint64(q*float64(h.count-1)) + 1
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			if i == 0 {
				return time.Duration(1)
			}
			return time.Duration(uint64(1) << uint(i))
		}
	}
	return time.Duration(h.max)
}

// Merge folds another histogram into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// Snapshot is a rendered summary.
type Snapshot struct {
	Count          uint64
	Mean, Min, Max time.Duration
	P50, P95, P99  time.Duration
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.count,
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// String renders the snapshot compactly.
func (s Snapshot) String() string {
	if s.Count == 0 {
		return "no observations"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%s min=%s p50≤%s p95≤%s p99≤%s max=%s",
		s.Count, s.Mean, s.Min, s.P50, s.P95, s.P99, s.Max)
	return b.String()
}
