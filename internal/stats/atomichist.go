package stats

import (
	"sync/atomic"
	"time"
)

// AtomicHistogram is a Histogram variant safe for concurrent Observe
// without any lock: the lock-free read path records its latency here from
// many goroutines at once. Counters are independent atomics, so a
// concurrent Snapshot is an approximation (bucket sums and count may be
// skewed by in-flight observations), which is fine for monitoring.
//
// Min is not tracked — maintaining a racing min would need a CAS loop on
// the hot path for a statistic the read metrics never surface.
type AtomicHistogram struct {
	buckets [bucketCount]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// Observe records one duration (negative durations count as zero).
func (h *AtomicHistogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *AtomicHistogram) Count() uint64 { return h.count.Load() }

// Histogram copies the atomic counters into a plain Histogram for
// summarizing or merging. Min is reported as 0 (untracked).
func (h *AtomicHistogram) Histogram() Histogram {
	var out Histogram
	for i := range h.buckets {
		out.buckets[i] = h.buckets[i].Load()
	}
	out.count = h.count.Load()
	out.sum = h.sum.Load()
	out.max = h.max.Load()
	return out
}

// Snapshot summarizes the histogram.
func (h *AtomicHistogram) Snapshot() Snapshot {
	hist := h.Histogram()
	return hist.Snapshot()
}
