package stats

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report zeros")
	}
	if h.Snapshot().String() != "no observations" {
		t.Errorf("String = %q", h.Snapshot().String())
	}
}

func TestBucketOf(t *testing.T) {
	for _, tc := range []struct {
		ns   uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}, {1025, 11},
	} {
		if got := bucketOf(tc.ns); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.ns, got, tc.want)
		}
	}
}

func TestObserveBasics(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{10, 20, 30, 40, 50} {
		h.Observe(d)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 30 {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Min() != 10 || h.Max() != 50 {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	h.Observe(-5) // clamps to zero
	if h.Min() != 0 {
		t.Errorf("negative observation: Min = %v", h.Min())
	}
}

// TestQuantileUpperBound: the reported quantile is an upper bound within 2×
// of the exact empirical quantile.
func TestQuantileUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var h Histogram
	var all []uint64
	for i := 0; i < 10000; i++ {
		ns := uint64(rng.Intn(1_000_000)) + 1
		all = append(all, ns)
		h.Observe(time.Duration(ns))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for _, q := range []float64{0, 0.5, 0.9, 0.95, 0.99, 1} {
		exact := all[int(q*float64(len(all)-1))]
		got := uint64(h.Quantile(q))
		if got < exact {
			t.Errorf("q=%v: bound %d below exact %d", q, got, exact)
		}
		if got > 2*exact {
			t.Errorf("q=%v: bound %d more than 2x exact %d", q, got, exact)
		}
	}
	// Out-of-range q clamps.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Error("quantile clamping")
	}
}

func TestMergeEqualsCombined(t *testing.T) {
	f := func(a, b []uint16) bool {
		var ha, hb, combined Histogram
		for _, v := range a {
			ha.Observe(time.Duration(v))
			combined.Observe(time.Duration(v))
		}
		for _, v := range b {
			hb.Observe(time.Duration(v))
			combined.Observe(time.Duration(v))
		}
		ha.Merge(&hb)
		if ha.Count() != combined.Count() || ha.Mean() != combined.Mean() ||
			ha.Min() != combined.Min() || ha.Max() != combined.Max() {
			return false
		}
		for _, q := range []float64{0.5, 0.95} {
			if ha.Quantile(q) != combined.Quantile(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReset(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestSnapshotString(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.P50 == 0 || s.P99 < s.P50 {
		t.Errorf("snapshot = %+v", s)
	}
	if !strings.Contains(s.String(), "n=100") {
		t.Errorf("String = %q", s.String())
	}
}
