package bench

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	chronicledb "chronicledb"
	"chronicledb/internal/chronicle"
	"chronicledb/internal/tiers"
	"chronicledb/internal/value"
	"chronicledb/internal/view"
)

// RunE9 — Section 5.3: the telephone discount plan computed incrementally
// per record vs in batch at period end. The incremental tracker's result is
// current after every record; the batch result exists only once per period.
func RunE9(cfg Config) (*Table, error) {
	periods := []int{1_000, 10_000, 100_000}
	if cfg.Quick {
		periods = []int{1_000, 10_000}
	}
	sched, err := tiers.NewSchedule(tiers.AllUnits,
		tiers.Tier{Threshold: 10, Rate: 0.10},
		tiers.Tier{Threshold: 25, Rate: 0.20},
	)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E9",
		Title:  "tiered discount plan: incremental per record vs batch at period end",
		Claim:  "batch results are out-of-date or inaccurate before period end; the incremental mapping is O(1)/record (Sec. 5.3)",
		Header: []string{"records/period", "incremental/record", "batch at period end", "divergence"},
	}
	for _, n := range periods {
		rng := rand.New(rand.NewSource(3))
		amounts := make([]float64, n)
		for i := range amounts {
			amounts[i] = float64(rng.Intn(500)) / 100
		}
		tr := tiers.NewTracker(sched)
		start := time.Now()
		for _, a := range amounts {
			tr.Add("k", a)
		}
		incrNs := float64(time.Since(start).Nanoseconds()) / float64(n)

		start = time.Now()
		batch := tiers.BatchCompute(sched, amounts)
		batchNs := float64(time.Since(start).Nanoseconds())

		diff := batch.Discount - tr.Current("k").Discount
		if diff < 0 {
			diff = -diff
		}
		t.AddRow(fmtCount(n), fmtNs(incrNs), fmtNs(batchNs), fmt.Sprintf("%.2g", diff))
	}
	t.Notes = append(t.Notes,
		"divergence is 0: the incremental mapping is exact at every prefix, so summary fields are never stale")
	return t, nil
}

// RunE10 — Theorem 4.4's O(t·log|V|) bound and the "modulo index look ups"
// caveat of Section 3: the B-tree store realizes the log|V| bound (and
// ordered scans); the hash store is the expected-O(1) fast path.
func RunE10(cfg Config) (*Table, error) {
	sizes := []int{1_000, 10_000, 100_000, 1_000_000}
	if cfg.Quick {
		sizes = []int{1_000, 10_000}
	}
	t := &Table{
		ID:     "E10",
		Title:  "view store ablation: per-append maintenance vs view size |V|",
		Claim:  "maintenance is O(t·log|V|) with an ordered index and O(t) expected with hashing; both independent of |C| (Thm 4.4)",
		Header: []string{"|V| groups", "hash store/append", "btree store/append"},
	}
	for _, size := range sizes {
		row := make([]string, 0, 3)
		row = append(row, fmtCount(size))
		for _, kind := range []view.StoreKind{view.StoreHash, view.StoreBTree} {
			w, err := NewTelecom(size, chronicle.RetainNone, false)
			if err != nil {
				return nil, err
			}
			v := MustView(w.UsageDef("usage"), kind)
			// Populate |V| groups directly: one synthesized row per account.
			for i := 0; i < size; i++ {
				v.ApplyRows([]chronicle.Row{{SN: int64(i), Vals: value.Tuple{
					value.Str(Acct(i)), value.Int(1), value.Float(0.1)}}})
			}
			probes := 5000
			start := time.Now()
			for i := 0; i < probes; i++ {
				d, _, err := w.NextCall()
				if err != nil {
					return nil, err
				}
				v.Apply(d)
			}
			row = append(row, fmtNs(float64(time.Since(start).Nanoseconds())/float64(probes)))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"the B-tree column grows ~log|V|; the hash column stays flat; neither depends on |C|")
	return t, nil
}

// RunE11 — Section 2.3 / Example 2.2: proactive updates and the implicit
// temporal join. Incremental maintenance under interleaved relation updates
// must agree exactly with the AsOf reference evaluation, and relation
// update cost must not depend on |C|.
func RunE11(cfg Config) (*Table, error) {
	sizes := []int{1_000, 10_000, 100_000}
	if cfg.Quick {
		sizes = []int{1_000, 10_000}
	}
	t := &Table{
		ID:     "E11",
		Title:  "proactive relation updates under a temporal-join view",
		Claim:  "proactive updates affect only later appends; views never need reprocessing (Sec. 2.3, Ex. 2.2)",
		Header: []string{"|C|", "update/op", "append/op", "divergent rows"},
	}
	for _, size := range sizes {
		w, err := NewTelecom(256, chronicle.RetainAll, true)
		if err != nil {
			return nil, err
		}
		if err := w.FillCustomers(256); err != nil {
			return nil, err
		}
		kd, err := w.KeyJoinDef("by_state")
		if err != nil {
			return nil, err
		}
		v := MustView(kd, view.StoreBTree)
		rng := rand.New(rand.NewSource(9))
		states := []string{"nj", "ny", "ca", "tx", "wa"}

		var updNs, appNs time.Duration
		updates, appends := 0, 0
		for i := 0; i < size; i++ {
			if rng.Intn(10) == 0 {
				acct := Acct(rng.Intn(256))
				tup := value.Tuple{value.Str(acct), value.Str(states[rng.Intn(len(states))]), value.Int(0)}
				start := time.Now()
				w.lsn++
				if err := w.Cust.Upsert(w.lsn, tup); err != nil {
					return nil, err
				}
				updNs += time.Since(start)
				updates++
				continue
			}
			start := time.Now()
			d, _, err := w.NextCall()
			if err != nil {
				return nil, err
			}
			v.Apply(d)
			appNs += time.Since(start)
			appends++
		}

		// Cross-check against the AsOf reference.
		want, err := v.Recompute()
		if err != nil {
			return nil, err
		}
		got := v.Rows()
		divergent := diffCount(got, want)
		t.AddRow(fmtCount(size),
			fmtNs(float64(updNs.Nanoseconds())/float64(updates)),
			fmtNs(float64(appNs.Nanoseconds())/float64(appends)),
			fmt.Sprint(divergent))
	}
	t.Notes = append(t.Notes,
		"divergent rows must be 0 at every size; update cost is flat (no chronicle reprocessing)")
	return t, nil
}

func diffCount(a, b []value.Tuple) int {
	counts := map[string]int{}
	for _, t := range a {
		counts[t.FullKey()]++
	}
	for _, t := range b {
		counts[t.FullKey()]--
	}
	n := 0
	for _, c := range counts {
		if c != 0 {
			n++
		}
	}
	return n
}

// RunE12 — recovery: a transaction-recording system must come back without
// reprocessing its history. Checkpoint + WAL-tail recovery is compared with
// full-log replay at increasing log lengths.
func RunE12(cfg Config) (*Table, error) {
	sizes := []int{1_000, 10_000, 50_000}
	if cfg.Quick {
		sizes = []int{500, 2_000}
	}
	t := &Table{
		ID:     "E12",
		Title:  "recovery time: checkpoint + WAL tail vs full WAL replay",
		Claim:  "the view is the durable summary; recovery cost is the log tail, not the history",
		Header: []string{"appends", "full replay", "checkpoint@90% + tail", "speedup"},
	}
	for _, n := range sizes {
		fullNs, err := recoveryRun(n, false)
		if err != nil {
			return nil, err
		}
		ckptNs, err := recoveryRun(n, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtCount(n), fmtNs(fullNs), fmtNs(ckptNs), fmt.Sprintf("%.1fx", fullNs/ckptNs))
	}
	return t, nil
}

// recoveryRun writes n appends (optionally checkpointing at 90%) and
// measures the reopen time.
func recoveryRun(n int, checkpoint bool) (float64, error) {
	dir, err := os.MkdirTemp("", "chronbench-e12-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)

	db, err := chronicledb.Open(chronicledb.Options{Dir: dir})
	if err != nil {
		return 0, err
	}
	if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT);
		CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total FROM calls GROUP BY acct`); err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		if _, err := db.Append("calls", chronicledb.Tuple{
			chronicledb.Str(Acct(i % 512)), chronicledb.Int(int64(i % 90)),
		}); err != nil {
			return 0, err
		}
		if checkpoint && i == n*9/10 {
			if err := db.Checkpoint(); err != nil {
				return 0, err
			}
		}
	}
	if err := db.Close(); err != nil {
		return 0, err
	}

	start := time.Now()
	db2, err := chronicledb.Open(chronicledb.Options{Dir: dir})
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	// Sanity: the recovered view must hold all n appends.
	res, err := db2.Exec(`SHOW STATS`)
	if err != nil {
		return 0, err
	}
	_ = res
	row, ok, err := db2.Lookup("usage", chronicledb.Str(Acct(1)))
	if err != nil || !ok || row[1].AsInt() <= 0 {
		db2.Close()
		return 0, fmt.Errorf("E12: recovered view wrong: %v %v %v", row, ok, err)
	}
	db2.Close()
	return float64(elapsed.Nanoseconds()), nil
}
