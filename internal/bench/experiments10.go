package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	chronicledb "chronicledb"
	"chronicledb/internal/fault"
	"chronicledb/internal/server"
)

// RunE19 — changefeed fan-out: delta delivery to live subscribers. The
// open-loop cells append at a fixed arrival rate regardless of delivery
// progress (so queueing shows up as latency, not as a slowed producer)
// while N subscribers watch the same view through the hub; each append
// stamps its own wall-clock time into the row, and since an aggregate
// view's delta rows are the projected source rows (maintenance folds them
// into the groups), every delivered delta carries its own append stamp —
// delivery wall clock minus stamp is the end-to-end commit→delivery
// latency. The chaos cell pushes SSE subscribers through a resetting TCP
// proxy: streams die mid-body and the client resumes with its LSN cursor,
// and the conservation invariant (snapshot count + delta-row count =
// append total, LSNs strictly increasing) proves every resume was gapless
// and duplicate-free.
func RunE19(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E19",
		Title:  "changefeed fan-out: delta delivery to live subscribers",
		Claim:  "delta delivery latency stays in the milliseconds and per-subscriber memory stays fixed as fan-out grows into the thousands; slow or severed subscribers shed and resume without gaps or duplicates",
		Header: []string{"mode", "subs", "rate/s", "appends", "delivered", "p50", "p99", "KB/sub", "shed", "result"},
	}
	fanouts := []struct {
		subs, rate int
		dur        time.Duration
	}{
		{500, 500, 3 * time.Second},
		{2000, 500, 3 * time.Second},
		{4000, 500, 3 * time.Second},
	}
	chaosSubs, chaosAppends, chaosRate := 16, 300, 300
	if cfg.Quick {
		fanouts = fanouts[:1]
		fanouts[0] = struct {
			subs, rate int
			dur        time.Duration
		}{50, 200, time.Second}
		chaosSubs, chaosAppends, chaosRate = 8, 100, 200
	}
	for _, f := range fanouts {
		row, err := e19Fanout(f.subs, f.rate, f.dur)
		if err != nil {
			return nil, err
		}
		t.AddRow(row...)
	}
	row, err := e19Chaos(chaosSubs, chaosAppends, chaosRate)
	if err != nil {
		return nil, err
	}
	t.AddRow(row...)
	t.Notes = append(t.Notes,
		"open-loop: one appender at the fixed arrival rate, every row stamped with its append-time micros; an aggregate view's delta rows are the projected source rows, so each delivered delta carries the stamp of exactly the append that produced it — latency = delivery wall clock - append wall clock",
		"KB/sub = heap growth across subscribing the whole fleet / fleet size (ring of frame pointers + subscription bookkeeping); '-' where the cell measures chaos, not memory",
		"sse-chaos: subscribers stream over HTTP SSE through a resetting chaos proxy and reconnect with their LSN cursors; result is 'gapless' only if every subscriber's snapshot count + delta-row count lands exactly on the append total with strictly increasing LSNs (TestWatchNetworkChaos is the adversarial version with a mid-run power cut)",
		"shed counts subscribers dropped for falling behind their ring (feed_dropped_slow)")
	return t, nil
}

// e19Fanout measures one open-loop fan-out cell over the embedded API.
func e19Fanout(subs, rate int, dur time.Duration) ([]string, error) {
	db, err := chronicledb.Open(chronicledb.Options{Feed: true, Shards: 4})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, ts INT)`); err != nil {
		return nil, err
	}
	if _, err := db.Exec(`CREATE VIEW feedv AS SELECT acct, COUNT(*) AS n, MAX(ts) AS mts FROM calls GROUP BY acct`); err != nil {
		return nil, err
	}

	appends := int(dur / (time.Second / time.Duration(rate)))
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)

	ctx, cancel := context.WithTimeout(context.Background(), dur+30*time.Second)
	defer cancel()
	var (
		wg        sync.WaitGroup
		ready     sync.WaitGroup
		delivered atomic.Int64
		shedCount atomic.Int64
		failures  atomic.Int64
		mu        sync.Mutex
		lats      []int64
	)
	ready.Add(subs)
	for s := 0; s < subs; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			first := true
			seen := 0
			mine := make([]int64, 0, appends)
			err := db.Watch(ctx, "feedv", 0, false, func(ev chronicledb.WatchEvent) bool {
				if first {
					ready.Done()
					first = false
				}
				switch ev.Kind {
				case chronicledb.WatchDelta:
					// Delta rows are the projected source rows: Vals[1] is
					// the appended row's own timestamp, one row per append.
					now := time.Now().UnixNano()
					for _, d := range ev.Deltas {
						mine = append(mine, now-d.Vals[1].AsInt()*1000)
						seen++
					}
				case chronicledb.WatchEnd:
					shedCount.Add(1)
					return false
				}
				return seen < appends
			})
			if err != nil && ctx.Err() == nil {
				failures.Add(1)
			}
			delivered.Add(int64(seen))
			mu.Lock()
			lats = append(lats, mine...)
			mu.Unlock()
		}()
	}
	ready.Wait()

	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	kbPerSub := float64(m1.HeapAlloc-m0.HeapAlloc) / float64(subs) / 1024

	interval := time.Second / time.Duration(rate)
	start := time.Now()
	for i := 0; i < appends; i++ {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		if _, err := db.Append("calls", chronicledb.Tuple{
			chronicledb.Str("a"), chronicledb.Int(time.Now().UnixMicro())}); err != nil {
			return nil, err
		}
	}
	wg.Wait()

	result := "ok"
	if n := failures.Load(); n > 0 {
		result = fmt.Sprintf("FAILED(%d watch errors)", n)
	} else if want := int64(subs) * int64(appends); delivered.Load() != want && shedCount.Load() == 0 {
		result = fmt.Sprintf("FAILED(delivered %d, want %d)", delivered.Load(), want)
	}
	p50, p99 := latQuantiles(lats)
	return []string{
		"fan-out", fmtCount(subs), fmt.Sprintf("%d", rate), fmtCount(appends),
		fmtCount(int(delivered.Load())), fmtNs(p50), fmtNs(p99),
		fmt.Sprintf("%.1f", kbPerSub),
		fmt.Sprintf("%d", shedCount.Load()), result,
	}, nil
}

// e19Chaos measures SSE delivery through a resetting proxy: latency of
// what arrives, and the gapless/duplicate-free contract across resumes.
func e19Chaos(subs, appends, rate int) ([]string, error) {
	db, err := chronicledb.Open(chronicledb.Options{Feed: true, Shards: 4})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, ts INT)`); err != nil {
		return nil, err
	}
	if _, err := db.Exec(`CREATE VIEW feedv AS SELECT acct, COUNT(*) AS n, MAX(ts) AS mts FROM calls GROUP BY acct`); err != nil {
		return nil, err
	}
	ts := httptest.NewServer(server.NewWith(db, server.Config{}))
	defer ts.Close()

	chaos := fault.NewNetChaos(19)
	chaos.ResetProb = 0.25
	chaos.ResetAfter = 512
	chaos.DropConn = 0.05
	proxy, err := fault.NewProxy(strings.TrimPrefix(ts.URL, "http://"), chaos)
	if err != nil {
		return nil, err
	}
	defer proxy.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		lats     []int64
		gapless  atomic.Int64
		failures atomic.Int64
	)
	for s := 0; s < subs; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c := server.NewClientWith("http://"+proxy.Addr(), server.ClientConfig{
				ClientID:    fmt.Sprintf("e19-%d", s),
				Timeout:     2 * time.Second,
				MaxAttempts: 100,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  20 * time.Millisecond,
			})
			var (
				seen    int64
				lastLSN uint64
				mine    []int64
				broken  bool
			)
			err := c.Watch(ctx, "feedv", 0, false, func(ev server.WatchEvent) bool {
				switch ev.Kind {
				case server.WatchSnapshot:
					if ev.LSN < lastLSN {
						broken = true
						return false
					}
					lastLSN = ev.LSN
					seen = 0
					for _, r := range ev.Rows {
						seen += int64(r[1].(float64))
					}
				case server.WatchDelta:
					if ev.LSN <= lastLSN {
						broken = true
						return false
					}
					lastLSN = ev.LSN
					// Delta rows are projected source rows: one row per
					// append, Vals[1] the append's own microsecond stamp.
					now := time.Now().UnixNano()
					for _, d := range ev.Deltas {
						seen++
						mine = append(mine, now-int64(d.Vals[1].(float64))*1000)
					}
				case server.WatchBye:
					broken = true
					return false
				}
				return seen < int64(appends)
			})
			if broken || (err != nil && ctx.Err() == nil) || seen != int64(appends) {
				failures.Add(1)
				return
			}
			gapless.Add(1)
			mu.Lock()
			lats = append(lats, mine...)
			mu.Unlock()
		}(s)
	}

	interval := time.Second / time.Duration(rate)
	start := time.Now()
	for i := 0; i < appends; i++ {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		if _, err := db.Append("calls", chronicledb.Tuple{
			chronicledb.Str("a"), chronicledb.Int(time.Now().UnixMicro())}); err != nil {
			return nil, err
		}
	}
	wg.Wait()

	counts := chaos.Counts()
	result := fmt.Sprintf("gapless (%d resets)", counts.Resets)
	if n := failures.Load(); n > 0 {
		result = fmt.Sprintf("FAILED(%d of %d subscribers)", n, subs)
	} else if counts.Resets == 0 && counts.DroppedConns == 0 {
		result = "gapless (no chaos fired)"
	}
	p50, p99 := latQuantiles(lats)
	return []string{
		"sse-chaos", fmtCount(subs), fmt.Sprintf("%d", rate), fmtCount(appends),
		fmtCount(int(gapless.Load()) * appends), fmtNs(p50), fmtNs(p99), "-",
		"0", result,
	}, nil
}

// latQuantiles returns the p50 and p99 of a latency sample in nanoseconds.
func latQuantiles(lats []int64) (p50, p99 float64) {
	if len(lats) == 0 {
		return 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return float64(lats[len(lats)/2]), float64(lats[len(lats)*99/100])
}
