package bench

import (
	"fmt"
	"net/http/httptest"
	"time"

	chronicledb "chronicledb"
	"chronicledb/internal/fault"
	"chronicledb/internal/server"
)

// RunE18 — exactly-once ingestion under network chaos. Each cell pushes a
// fixed number of logical append requests through a fault-injecting
// transport that loses responses after the server has applied them and
// duplicates deliveries, with the client retrying under the same request
// id. With the dedup table on, retries and duplicates are absorbed and the
// applied row count equals the logical request count exactly; the
// at-least-once ablation (Options.DedupDisabled) re-applies every ambiguous
// delivery, and the overshoot is the measured cost of not having the dedup
// table. Chronicle ingestion feeds materialized views, so every
// over-applied row is a permanently wrong SUM/COUNT downstream (Section 2's
// correctness requirement for view maintenance).
func RunE18(cfg Config) (*Table, error) {
	requests := 400
	if cfg.Quick {
		requests = 100
	}
	t := &Table{
		ID:     "E18",
		Title:  "exactly-once ingestion under network chaos",
		Claim:  "with responses lost after apply and deliveries duplicated, idempotent retries against the persisted dedup table apply each logical request exactly once; the dedup-disabled ablation over-applies in proportion to the ambiguous-fault rate",
		Header: []string{"mode", "drop_resp", "duplicate", "requests", "applied", "over-applied", "dedup hits", "req/sec"},
	}
	for _, faults := range []struct{ dropResp, dup float64 }{
		{0.05, 0.02},
		{0.15, 0.08},
	} {
		for _, disabled := range []bool{false, true} {
			row, err := e18Cell(requests, faults.dropResp, faults.dup, disabled)
			if err != nil {
				return nil, err
			}
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes,
		"each cell: in-memory DB behind a real HTTP server; one client issues logical requests through a fault-injecting transport (seeded), retrying each request under the same (client_id, request_id) until acked",
		"drop_resp loses the response after the server fully applied the request — the failure a client cannot distinguish from a lost request; duplicate delivers the request twice",
		"over-applied = applied rows − logical requests; exactly-once rows must show 0, the ablation's overshoot tracks the injected ambiguous faults",
		fmt.Sprintf("%d logical requests of 1 row per cell; TestNetworkChaos is the adversarial version: concurrent clients, a chaos TCP proxy, and a mid-run power cut", requests))
	return t, nil
}

// e18Cell measures one (fault rates, dedup mode) combination.
func e18Cell(requests int, dropResp, dup float64, disabled bool) ([]string, error) {
	db, err := chronicledb.Open(chronicledb.Options{DedupDisabled: disabled})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT) RETAIN ALL`); err != nil {
		return nil, err
	}
	ts := httptest.NewServer(server.New(db))
	defer ts.Close()

	chaos := fault.NewNetChaos(18)
	chaos.DropResponse = dropResp
	chaos.Duplicate = dup

	c := server.NewClientWith(ts.URL, server.ClientConfig{
		ClientID:         "e18",
		MaxAttempts:      8,
		BaseBackoff:      200 * time.Microsecond,
		MaxBackoff:       2 * time.Millisecond,
		BreakerThreshold: -1,
		Transport:        &fault.ChaosTransport{Chaos: chaos},
	})

	start := time.Now()
	for m := 0; m < requests; m++ {
		rid := fmt.Sprintf("m%d", m)
		for {
			if _, err := c.AppendRowsIdem("calls", [][]any{{"a", 1}}, rid); err == nil {
				break
			}
		}
	}
	elapsed := time.Since(start)

	res, err := db.Exec(`SELECT * FROM calls`)
	if err != nil {
		return nil, err
	}
	applied := len(res.Rows)
	_, hits, _ := db.DedupStats()
	mode := "exactly-once"
	if disabled {
		mode = "at-least-once"
	}
	return []string{
		mode,
		fmt.Sprintf("%.0f%%", dropResp*100),
		fmt.Sprintf("%.0f%%", dup*100),
		fmt.Sprintf("%d", requests),
		fmt.Sprintf("%d", applied),
		fmt.Sprintf("%d", applied-requests),
		fmt.Sprintf("%d", hits),
		fmt.Sprintf("%.0f", float64(requests)/elapsed.Seconds()),
	}, nil
}
