package bench

import (
	"fmt"
	"time"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/algebra"
	"chronicledb/internal/calendar"
	"chronicledb/internal/chronicle"
	"chronicledb/internal/dispatch"
	"chronicledb/internal/pred"
	"chronicledb/internal/value"
	"chronicledb/internal/view"
)

// RunE5 — Theorem 4.2: the change to a CA view costs
// Time = O((u·|R|)^j·log|R|) and Space = O((u·|R|)^j); for CA⋈ the |R|
// factor disappears. The experiment varies u (unions) and j (relation
// products) and reports measured delta size and time per append.
func RunE5(cfg Config) (*Table, error) {
	relSizes := []int{16, 64}
	uMax, jMax := 3, 2
	if cfg.Quick {
		relSizes = []int{16}
		uMax, jMax = 2, 2
	}
	t := &Table{
		ID:     "E5",
		Title:  "delta size and time vs expression shape (u unions, j joins)",
		Claim:  "delta grows by |R| per cross product and stays O(u^j) under key joins (Thm 4.2)",
		Header: []string{"u", "j", "|R|", "kind", "delta rows/append", "time/append"},
	}

	run := func(u, j, relSize int, key bool) error {
		// Accounts ⊆ customers so key joins always match.
		w, err := NewTelecom(relSize, chronicle.RetainNone, false)
		if err != nil {
			return err
		}
		if err := w.FillCustomers(relSize); err != nil {
			return err
		}
		// Base: u-fold union of overlapping selections of the chronicle.
		var expr algebra.Node = algebra.NewScan(w.Calls)
		for i := 0; i < u; i++ {
			lo, err := algebra.NewSelect(algebra.NewScan(w.Calls),
				pred.Or(pred.ColConst(1, pred.Ge, value.Int(0))))
			if err != nil {
				return err
			}
			un, err := algebra.NewUnion(expr, lo)
			if err != nil {
				return err
			}
			expr = un
		}
		// j relation products on top.
		for i := 0; i < j; i++ {
			if key {
				je, err := algebra.NewJoinRel(expr, w.Cust, []int{0}, []int{0})
				if err != nil {
					return err
				}
				expr = je
			} else {
				ce, err := algebra.NewCrossRel(expr, w.Cust)
				if err != nil {
					return err
				}
				expr = ce
			}
		}
		probes := 50
		if !key && relSize*relSize > 10_000 && j >= 2 {
			probes = 5 // delta is |R|^2 rows per append
		}
		var rows int
		start := time.Now()
		for i := 0; i < probes; i++ {
			d, _, err := w.NextCall()
			if err != nil {
				return err
			}
			rows += len(algebra.Delta(expr, d))
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(probes)
		kind := "cross"
		if key {
			kind = "key-join"
		}
		t.AddRow(fmt.Sprint(u), fmt.Sprint(j), fmt.Sprint(relSize), kind,
			fmt.Sprintf("%.1f", float64(rows)/float64(probes)), fmtNs(ns))
		return nil
	}

	for _, relSize := range relSizes {
		for u := 0; u <= uMax; u++ {
			for j := 0; j <= jMax; j++ {
				if err := run(u, j, relSize, false); err != nil {
					return nil, err
				}
			}
		}
		// The CA⋈ contrast at the largest shape.
		if err := run(uMax, jMax, relSize, true); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"cross rows ≈ |R|^j per append (unions dedup identical tuples); key-join rows stay O(1)")
	return t, nil
}

// RunE6 — Section 5.1's moving-window optimization: a cyclic buffer of
// per-bucket partials vs re-aggregating the raw records in the window.
func RunE6(cfg Config) (*Table, error) {
	widths := []int{8, 64, 512, 4096}
	if cfg.Quick {
		widths = []int{8, 64}
	}
	const eventsPerBucket = 16
	t := &Table{
		ID:     "E6",
		Title:  "moving-window aggregation: cyclic buffer vs naive re-aggregation",
		Claim:  "the 30-day share-count example: keep per-day partials and shift a cyclic buffer (Sec. 5.1)",
		Header: []string{"window buckets", "ring/event", "O(1) sum/event", "naive/event"},
	}
	for _, wBuckets := range widths {
		ring, err := calendar.NewMovingWindow(aggregate.Sum, 1, wBuckets)
		if err != nil {
			return nil, err
		}
		fast, err := calendar.NewMovingSum(1, wBuckets)
		if err != nil {
			return nil, err
		}
		naive, err := calendar.NewNaiveWindow(aggregate.Sum, int64(wBuckets))
		if err != nil {
			return nil, err
		}
		events := wBuckets * eventsPerBucket * 4
		if events > 200_000 {
			events = 200_000
		}
		// Refresh (Value) once per bucket, like the paper's daily view
		// advance; refreshing on every event would make the naive column
		// quadratic in the window and tell us nothing new.
		chronon := func(i int) int64 { return int64(i / eventsPerBucket) }
		v := value.Int(3)
		refresh := func(i int) bool { return i%eventsPerBucket == 0 }

		start := time.Now()
		for i := 0; i < events; i++ {
			ring.Add("k", chronon(i), v)
			if refresh(i) {
				ring.Value("k", chronon(i))
			}
		}
		ringNs := float64(time.Since(start).Nanoseconds()) / float64(events)

		start = time.Now()
		for i := 0; i < events; i++ {
			fast.Add("k", chronon(i), 3)
			if refresh(i) {
				fast.Value("k", chronon(i))
			}
		}
		fastNs := float64(time.Since(start).Nanoseconds()) / float64(events)

		start = time.Now()
		for i := 0; i < events; i++ {
			naive.Add("k", chronon(i), v)
			if refresh(i) {
				naive.Value("k", chronon(i))
			}
		}
		naiveNs := float64(time.Since(start).Nanoseconds()) / float64(events)

		t.AddRow(fmt.Sprint(wBuckets), fmtNs(ringNs), fmtNs(fastNs), fmtNs(naiveNs))
	}
	t.Notes = append(t.Notes,
		"ring refresh is O(buckets); naive refresh is O(records in window) = buckets × events/bucket; the invertible-SUM path is O(1)")
	return t, nil
}

// RunE7 — Section 5.2: identify affected views early. The predicate index
// makes dispatch cost O(rows + hits) instead of O(#views).
func RunE7(cfg Config) (*Table, error) {
	counts := []int{16, 256, 4096, 16384}
	if cfg.Quick {
		counts = []int{16, 256}
	}
	t := &Table{
		ID:     "E7",
		Title:  "affected-view identification vs number of registered views",
		Claim:  "with a predicate index, dispatch is independent of #views; a linear check is O(#views) (Sec. 5.2)",
		Header: []string{"#views", "indexed dispatch", "linear dispatch", "ratio"},
	}
	for _, n := range counts {
		g := chronicle.NewGroup("g")
		c, err := g.NewChronicle("calls", value.NewSchema(
			value.Column{Name: "acct", Kind: value.KindString},
			value.Column{Name: "minutes", Kind: value.KindInt},
		), chronicle.RetainNone)
		if err != nil {
			return nil, err
		}
		indexed, linear := dispatch.New(true), dispatch.New(false)
		for i := 0; i < n; i++ {
			mk := func() *dispatch.Target {
				return &dispatch.Target{
					ID:              fmt.Sprintf("balance_%d", i),
					Chronicles:      []*chronicle.Chronicle{c},
					Filter:          pred.Or(pred.ColConst(0, pred.Eq, value.Str(Acct(i)))),
					FilterChronicle: c,
				}
			}
			if err := indexed.Register(mk()); err != nil {
				return nil, err
			}
			if err := linear.Register(mk()); err != nil {
				return nil, err
			}
		}
		rows := []chronicle.Row{{SN: 1, Vals: value.Tuple{value.Str(Acct(3)), value.Int(7)}}}

		const probes = 5_000
		start := time.Now()
		for i := 0; i < probes; i++ {
			indexed.Affected(c, rows, 0)
		}
		idxNs := float64(time.Since(start).Nanoseconds()) / probes

		linProbes := probes
		if n >= 4096 {
			linProbes = 500
		}
		start = time.Now()
		for i := 0; i < linProbes; i++ {
			linear.Affected(c, rows, 0)
		}
		linNs := float64(time.Since(start).Nanoseconds()) / float64(linProbes)

		t.AddRow(fmtCount(n), fmtNs(idxNs), fmtNs(linNs), fmt.Sprintf("%.0fx", linNs/idxNs))
	}
	return t, nil
}

// RunE8 — Section 5.1: periodic views over non-overlapping intervals are
// maintained only while current; expiration keeps the live-instance count
// (and therefore per-append work and memory) bounded regardless of how many
// periods have passed.
func RunE8(cfg Config) (*Table, error) {
	periods := []int{12, 120, 480}
	if cfg.Quick {
		periods = []int{12, 60}
	}
	const perPeriod = 200
	t := &Table{
		ID:     "E8",
		Title:  "periodic-view lifecycle across billing periods",
		Claim:  "with expiration only finitely many instances are live at once; without it, instances accumulate (Sec. 5.1)",
		Header: []string{"periods", "policy", "time/append", "live instances", "created", "expired"},
	}
	for _, nPeriods := range periods {
		for _, expire := range []bool{true, false} {
			w, err := NewTelecom(64, chronicle.RetainNone, false)
			if err != nil {
				return nil, err
			}
			cal, err := calendar.NewPeriodic(0, 1000, 1000)
			if err != nil {
				return nil, err
			}
			expireAfter := int64(-1)
			policy := "keep-forever"
			if expire {
				expireAfter = 1000 // one period of grace
				policy = "expire+1"
			}
			pv, err := calendar.NewPeriodicView("monthly", w.UsageDef("monthly"), cal, expireAfter, view.StoreHash)
			if err != nil {
				return nil, err
			}
			total := nPeriods * perPeriod
			start := time.Now()
			for i := 0; i < total; i++ {
				d, _, err := w.NextCall()
				if err != nil {
					return nil, err
				}
				ch := int64(i / perPeriod * 1000)
				if err := pv.Apply(d, ch); err != nil {
					return nil, err
				}
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(total)
			t.AddRow(fmt.Sprint(nPeriods), policy, fmtNs(ns),
				fmt.Sprint(pv.Live()), fmt.Sprint(pv.Created()), fmt.Sprint(pv.Expired()))
		}
	}
	t.Notes = append(t.Notes,
		"per-append time is flat in both policies (only active intervals are maintained); expiration bounds live instances at 2")
	return t, nil
}
