package bench

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	chronicledb "chronicledb"
)

// RunE16 — the zero-allocation append hot path. Two sweeps share the
// table. The batch sweep drives the in-memory append→dispatch→delta→
// maintain path at increasing batch sizes and reports process allocations
// per appended row: steady state should sit near zero because every
// hot-path buffer (WAL frame, key encode, delta slices, view apply) is
// reused, and what remains amortizes with the batch. The durability sweep
// compares fsync-per-append against group commit under concurrent
// appenders: group commit's door lets one fsync acknowledge a batch, so
// durable throughput rises and the fsync count collapses while the ack
// guarantee (no append returns before its record is durable) is unchanged.
func RunE16(cfg Config) (*Table, error) {
	n := 200_000
	durableN := 2_000
	if cfg.Quick {
		n = 20_000
		durableN = 400
	}
	t := &Table{
		ID:     "E16",
		Title:  "append hot path: allocations, batch size, and group commit",
		Claim:  "per-append maintenance cost is constant and small (Theorem 4.2); the reproduction's hot path must therefore be allocation-free in steady state, and durable throughput must amortize fsyncs over concurrent appends",
		Header: []string{"mode", "batch", "appends", "appends/sec", "allocs/append", "fsyncs"},
	}

	for _, batch := range []int{1, 8, 64, 512} {
		row, err := e16MemRun(n, batch)
		if err != nil {
			return nil, err
		}
		t.AddRow(row...)
	}

	for _, workers := range []int{1, 4, 16} {
		for _, mode := range []string{"fsync-each", "group-commit"} {
			row, err := e16DurableRun(durableN, workers, mode)
			if err != nil {
				return nil, err
			}
			t.AddRow(row...)
		}
	}

	t.Notes = append(t.Notes,
		"mem rows: in-memory DB, one indexed SUM view maintained per append; allocs/append is runtime.MemStats mallocs over the run",
		"durable rows: SyncWAL on a real disk, batch column is the number of concurrent appenders; fsync-each syncs inside every append, group-commit defers to the commit door so one fsync can acknowledge every append recorded while the previous fsync was in flight")
	return t, nil
}

// e16MemRun appends n rows in batches of the given size against an
// in-memory database with one maintained view, and reports throughput and
// allocations per appended row.
func e16MemRun(n, batch int) ([]string, error) {
	db, err := chronicledb.Open(chronicledb.Options{})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT);
		CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total FROM calls GROUP BY acct`); err != nil {
		return nil, err
	}
	tuples := make([]chronicledb.Tuple, batch)
	for i := range tuples {
		tuples[i] = chronicledb.Tuple{chronicledb.Str(Acct(i % 512)), chronicledb.Int(int64(i % 90))}
	}
	// Warm up so pools and view stores reach steady state before measuring.
	for i := 0; i < 4; i++ {
		if _, _, err := db.AppendRows("calls", tuples); err != nil {
			return nil, err
		}
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	appended := 0
	for appended < n {
		if _, _, err := db.AppendRows("calls", tuples); err != nil {
			return nil, err
		}
		appended += batch
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	allocs := float64(after.Mallocs-before.Mallocs) / float64(appended)
	rate := float64(appended) / elapsed.Seconds()
	return []string{
		"mem", fmtCount(batch), fmtCount(appended),
		fmt.Sprintf("%.0f", rate), fmt.Sprintf("%.2f", allocs), "0",
	}, nil
}

// e16DurableRun appends n rows from the given number of concurrent
// goroutines against a durable database and reports sustained durable
// throughput and how many fsyncs it took. mode selects fsync-per-append
// vs group commit.
func e16DurableRun(n, workers int, mode string) ([]string, error) {
	dir, err := os.MkdirTemp("", "chronbench-e16-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	db, err := chronicledb.Open(chronicledb.Options{
		Dir:           dir,
		SyncWAL:       true,
		SyncPerAppend: mode == "fsync-each",
	})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT);
		CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total FROM calls GROUP BY acct`); err != nil {
		return nil, err
	}
	fsyncs0 := db.WALStats().Fsyncs

	var wg sync.WaitGroup
	errs := make([]error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if _, err := db.Append("calls", chronicledb.Tuple{
					chronicledb.Str(Acct(i % 512)), chronicledb.Int(int64(i % 90)),
				}); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	fsyncs := db.WALStats().Fsyncs - fsyncs0
	rate := float64(n) / elapsed.Seconds()
	return []string{
		mode, fmtCount(workers), fmtCount(n),
		fmt.Sprintf("%.0f", rate), "-", fmt.Sprintf("%d", fsyncs),
	}, nil
}
