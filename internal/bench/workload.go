package bench

import (
	"fmt"
	"math/rand"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/algebra"
	"chronicledb/internal/chronicle"
	"chronicledb/internal/relation"
	"chronicledb/internal/value"
	"chronicledb/internal/view"
)

// Telecom is the shared workload: a call-record chronicle, a keyed customer
// relation, and helpers to drive them deterministically.
type Telecom struct {
	Group *chronicle.Group
	Calls *chronicle.Chronicle
	Cust  *relation.Relation

	rng   *rand.Rand
	lsn   uint64
	nAcct int
}

// NewTelecom builds the workload. nAccts controls key cardinality; retain
// the chronicle retention; history whether the relation keeps versions.
func NewTelecom(nAccts int, retain chronicle.Retention, history bool) (*Telecom, error) {
	g := chronicle.NewGroup("telecom")
	calls, err := g.NewChronicle("calls", value.NewSchema(
		value.Column{Name: "acct", Kind: value.KindString},
		value.Column{Name: "minutes", Kind: value.KindInt},
		value.Column{Name: "cost", Kind: value.KindFloat},
	), retain)
	if err != nil {
		return nil, err
	}
	cust, err := relation.New("customers", value.NewSchema(
		value.Column{Name: "acct", Kind: value.KindString},
		value.Column{Name: "state", Kind: value.KindString},
		value.Column{Name: "bonus", Kind: value.KindInt},
	), []int{0}, history)
	if err != nil {
		return nil, err
	}
	return &Telecom{
		Group: g, Calls: calls, Cust: cust,
		rng: rand.New(rand.NewSource(1)), nAcct: nAccts,
	}, nil
}

// Acct returns the i-th account id.
func Acct(i int) string { return fmt.Sprintf("acct%07d", i) }

// FillCustomers upserts n customers.
func (w *Telecom) FillCustomers(n int) error {
	states := []string{"nj", "ny", "ca", "tx"}
	for i := 0; i < n; i++ {
		w.lsn++
		t := value.Tuple{
			value.Str(Acct(i)),
			value.Str(states[i%len(states)]),
			value.Int(int64(i % 1000)),
		}
		if err := w.Cust.Upsert(w.lsn, t); err != nil {
			return err
		}
	}
	return nil
}

// NextCall appends one pseudo-random call and returns its batch delta.
func (w *Telecom) NextCall() (algebra.BatchDelta, int64, error) {
	acct := Acct(w.rng.Intn(w.nAcct))
	minutes := int64(w.rng.Intn(120))
	w.lsn++
	chronon := int64(w.Group.NextSN()) // 1 chronon per sequence number
	rows, err := w.Calls.Append(w.Group.NextSN(), chronon, w.lsn,
		[]value.Tuple{{value.Str(acct), value.Int(minutes), value.Float(float64(minutes) * 0.25)}})
	if err != nil {
		return nil, 0, err
	}
	return algebra.BatchDelta{w.Calls: rows}, chronon, nil
}

// UsageDef is the canonical SCA₁ view: totals per account.
func (w *Telecom) UsageDef(name string) view.Def {
	return view.Def{
		Name:      name,
		Expr:      algebra.NewScan(w.Calls),
		Mode:      view.SummarizeGroupBy,
		GroupCols: []int{0},
		Aggs: []aggregate.Spec{
			{Func: aggregate.Sum, Col: 1, Name: "total_minutes"},
			{Func: aggregate.Count, Col: -1, Name: "n"},
		},
	}
}

// KeyJoinDef is the canonical SCA⋈ view: per-state totals via a key join.
func (w *Telecom) KeyJoinDef(name string) (view.Def, error) {
	jr, err := algebra.NewJoinRel(algebra.NewScan(w.Calls), w.Cust, []int{0}, []int{0})
	if err != nil {
		return view.Def{}, err
	}
	return view.Def{
		Name:      name,
		Expr:      jr,
		Mode:      view.SummarizeGroupBy,
		GroupCols: []int{4}, // state
		Aggs:      []aggregate.Spec{{Func: aggregate.Sum, Col: 1, Name: "total_minutes"}},
	}, nil
}

// CrossDef is the canonical plain-SCA view: a cross product with the
// relation (per-append cost O(|R|)).
func (w *Telecom) CrossDef(name string) (view.Def, error) {
	cr, err := algebra.NewCrossRel(algebra.NewScan(w.Calls), w.Cust)
	if err != nil {
		return view.Def{}, err
	}
	return view.Def{
		Name:      name,
		Expr:      cr,
		Mode:      view.SummarizeGroupBy,
		GroupCols: []int{4}, // state
		Aggs:      []aggregate.Spec{{Func: aggregate.Count, Col: -1, Name: "n"}},
	}, nil
}

// MustView materializes a definition or panics (harness-internal).
func MustView(def view.Def, kind view.StoreKind) *view.View {
	v, err := view.New(def, kind)
	if err != nil {
		panic(err)
	}
	return v
}
