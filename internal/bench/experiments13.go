package bench

import (
	"fmt"
	"runtime"
	"time"

	chronicledb "chronicledb"
)

// RunE22 — shared-delta maintenance: CSE across view expressions plus the
// parallel per-view apply. With V views registered over one chronicle, the
// classic pipeline evaluates V expression trees per append; when the views
// share structure (the common case: dashboards define many summaries over
// the same filtered stream), that work is duplicated. The shared plan
// hash-conses σ/Π/join prefixes at DDL time into a DAG, computes each
// distinct node's delta once per maintenance batch, and fans the rows out —
// so delta computation scales with *distinct* subexpressions while only the
// unavoidable per-view fold stays linear in V.
//
// Part one sweeps V for two shapes with identical fold work (every probe
// row passes every filter): "shared" gives all V views one σ prefix (one
// plan node serves everyone), "duplicated" gives each view its own constant
// (V σ nodes, nothing shared above the scan leaf). The gap between the
// shapes is exactly the σ evaluation the DAG deduplicates; the hit ratio
// column checks the accounting identity hits = (V-1)·appends — every batch
// evaluates the shared prefix once and serves the other V-1 views from the
// batch cache.
//
// Part two re-runs the widest sweep point with MaintWorkers 1 (serial
// ablation) vs 4: the precomputed per-view deltas are folded by a bounded
// worker pool. On a multi-core host the parallel fold wins; on a single
// core the pool degenerates to the coordinator draining its own queue and
// the result is flat — the readout documents which host ran.
func RunE22(cfg Config) (*Table, error) {
	views := []int{1, 4, 16, 64, 256}
	warm, appends := 200, 2000
	if cfg.Quick {
		views = []int{1, 4, 16, 64}
		warm, appends = 50, 500
	}
	t := &Table{
		ID:    "E22",
		Title: "shared-delta maintenance: CSE fan-out + parallel apply",
		Claim: "hash-consing common view subexpressions makes per-batch delta computation scale with distinct plan nodes, not view count; per-view folds then run on a bounded worker pool",
		Header: []string{"shape", "views", "maint/append", "hits/append", "hits/(V-1)·appends"},
	}
	for _, shape := range []string{"shared", "duplicated"} {
		for _, V := range views {
			// Best of 3 trials: single-µs per-append cells on a busy host carry
			// scheduler and GC noise that would swamp the shape gap.
			r, err := e22Best(shape, V, 0, warm, appends, 3)
			if err != nil {
				return nil, err
			}
			ratio := "—"
			if V > 1 {
				ratio = fmt.Sprintf("%.2f", float64(r.hits)/float64((V-1)*appends))
			}
			t.AddRow(shape, fmt.Sprintf("%d", V), fmtNs(r.maintNs/float64(appends)),
				fmt.Sprintf("%.1f", float64(r.hits)/float64(appends)), ratio)
		}
	}
	t.Notes = append(t.Notes,
		"both shapes fold identical rows into identical view states (the probe row passes every filter); the shapes differ only in how much σ evaluation the shared plan can deduplicate",
		"the duplicated shape still shares the scan leaf, so its hit counter also reads V-1 per append — the ns column, not the hit count, is where the shapes separate",
		"the per-view fold (one hash-store upsert per view per append) is inherently linear in V; the sharing claim is about the delta-computation term above it")

	// Parallel apply: serial ablation vs a 4-worker pool at the widest sweep
	// point. Wall time per append is the readout — appends are synchronous
	// through maintenance, so the fold pool's effect lands on the caller.
	V := views[len(views)-1]
	serial, err := e22Best("duplicated", V, 1, warm, appends, 3)
	if err != nil {
		return nil, err
	}
	par, err := e22Best("duplicated", V, 4, warm, appends, 3)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"parallel apply at %d views on GOMAXPROCS=%d: MaintWorkers=1 %s/append vs MaintWorkers=4 %s/append — with one core the pool degenerates to the coordinator draining its own queue (flat is the expected single-core result; the stress gate still exercises the pool's ordering invariants)",
		V, runtime.GOMAXPROCS(0), fmtNs(serial.wallNs/float64(appends)), fmtNs(par.wallNs/float64(appends))))
	return t, nil
}

// e22Best runs e22Fanout `trials` times and keeps the fastest run (hits are
// deterministic and identical across trials).
func e22Best(shape string, V, workers, warm, appends, trials int) (e22Result, error) {
	var best e22Result
	for i := 0; i < trials; i++ {
		r, err := e22Fanout(shape, V, workers, warm, appends)
		if err != nil {
			return e22Result{}, err
		}
		if i == 0 {
			best = r
			continue
		}
		best.maintNs = min(best.maintNs, r.maintNs)
		best.wallNs = min(best.wallNs, r.wallNs)
	}
	return best, nil
}

type e22Result struct {
	maintNs float64 // engine-attributed maintenance time over the measured appends
	wallNs  float64 // caller-observed wall time over the measured appends
	hits    int64   // shared-plan cache hits over the measured appends
}

// e22Fanout builds an in-memory DB with V summary views over one chronicle
// and measures per-append maintenance over a steady-state run. The σ prefix
// is a 6-atom conjunction so predicate evaluation is a visible fraction of
// maintenance; "shared" interns it into one plan node, "duplicated" varies
// the last constant per view so each view owns its σ.
func e22Fanout(shape string, V, workers, warm, appends int) (e22Result, error) {
	db, err := chronicledb.Open(chronicledb.Options{MaintWorkers: workers})
	if err != nil {
		return e22Result{}, err
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT)`); err != nil {
		return e22Result{}, err
	}
	for i := 0; i < V; i++ {
		last := 0
		if shape == "duplicated" {
			last = i // distinct constant → distinct σ fingerprint per view
		}
		stmt := fmt.Sprintf(`CREATE VIEW v%d AS SELECT acct, SUM(minutes) AS m FROM calls
			WHERE minutes >= 0 AND minutes <= 1000000 AND minutes >= 1 AND minutes <= 999999
			AND minutes >= 2 AND minutes >= %d GROUP BY acct`, i, last)
		if _, err := db.Exec(stmt); err != nil {
			return e22Result{}, err
		}
	}
	// minutes = 1000 passes every atom of every view in both shapes (the
	// duplicated constants top out at V-1 ≤ 255), so fold work is identical.
	tuple := chronicledb.Tuple{chronicledb.Str("acct-fan"), chronicledb.Int(1000)}
	for i := 0; i < warm; i++ {
		if _, err := db.Append("calls", tuple); err != nil {
			return e22Result{}, err
		}
	}
	st0 := db.Stats()
	start := time.Now()
	for i := 0; i < appends; i++ {
		if _, err := db.Append("calls", tuple); err != nil {
			return e22Result{}, err
		}
	}
	wall := time.Since(start)
	st1 := db.Stats()
	return e22Result{
		maintNs: float64(st1.MaintenanceNs - st0.MaintenanceNs),
		wallNs:  float64(wall.Nanoseconds()),
		hits:    st1.SharedHits - st0.SharedHits,
	}, nil
}
