package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	chronicledb "chronicledb"
)

// RunE14 — the sharded execution layer. The chronicle model's structure
// (Definition 2.1: groups share a sequence-number domain but are mutually
// independent) makes per-group parallelism safe, so the router partitions
// groups across single-writer shards and concurrent clients on disjoint
// groups should scale with the shard count — until the host runs out of
// cores. Each configuration drives the same total append volume from
// concurrent clients (one per group) through bulk AppendRows and reports
// the sustained append rate and its speedup over one shard.
func RunE14(cfg Config) (*Table, error) {
	const (
		clients   = 8
		batchSize = 64
	)
	perClient := 40_000
	if cfg.Quick {
		perClient = 4_000
	}
	t := &Table{
		ID:     "E14",
		Title:  "shard scaling: concurrent appends vs shard count",
		Claim:  "independent chronicle groups parallelize across single-writer shards; appends/sec grows with shards up to the core count (Def. 2.1, Sec. 2.3)",
		Header: []string{"shards", "appends/sec", "speedup"},
	}

	var base float64
	for _, shards := range []int{1, 2, 4, 8} {
		rate, err := runShardLoad(shards, clients, perClient, batchSize)
		if err != nil {
			return nil, err
		}
		if shards == 1 {
			base = rate
		}
		t.AddRow(fmt.Sprint(shards), fmtCount(int(rate)), fmt.Sprintf("%.2f×", rate/base))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("GOMAXPROCS=%d on this host; speedup is bounded by min(shards, cores) — on a single-core host the curve stays flat by design", runtime.GOMAXPROCS(0)),
		"each client appends to its own group, so shard queues never contend on engine state")
	return t, nil
}

// runShardLoad drives clients concurrent appenders over disjoint groups
// against a router with the given shard count and returns appends/sec.
func runShardLoad(shards, clients, perClient, batchSize int) (float64, error) {
	db, err := chronicledb.Open(chronicledb.Options{Shards: shards})
	if err != nil {
		return 0, err
	}
	defer db.Close()
	for c := 0; c < clients; c++ {
		stmts := fmt.Sprintf(`CREATE CHRONICLE calls%[1]d (acct STRING, minutes INT) IN GROUP g%[1]d;
			CREATE VIEW usage%[1]d AS SELECT acct, SUM(minutes) AS total FROM calls%[1]d GROUP BY acct`, c)
		if _, err := db.Exec(stmts); err != nil {
			return 0, err
		}
	}
	batch := make([]chronicledb.Tuple, batchSize)
	for i := range batch {
		batch[i] = chronicledb.Tuple{chronicledb.Str(Acct(i % 64)), chronicledb.Int(int64(i % 90))}
	}

	var wg sync.WaitGroup
	errs := make([]error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := fmt.Sprintf("calls%d", c)
			for done := 0; done < perClient; done += batchSize {
				n := batchSize
				if perClient-done < n {
					n = perClient - done
				}
				if _, _, err := db.AppendRows(name, batch[:n]); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	total := float64(clients * perClient)
	return total / elapsed.Seconds(), nil
}
