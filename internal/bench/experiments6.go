package bench

import (
	"fmt"
	"os"
	"time"

	chronicledb "chronicledb"
)

// RunE15 — the durability and failure model: recovery work is
// proportional to the WAL tail past the last checkpoint, not to the
// transactional history. The total append count is held fixed while the
// checkpoint position moves, so only the tail length varies; reopen time
// should track the tail and stay flat in the history.
func RunE15(cfg Config) (*Table, error) {
	n := 40_000
	if cfg.Quick {
		n = 4_000
	}
	t := &Table{
		ID:     "E15",
		Title:  "recovery time vs WAL tail length (fixed history)",
		Claim:  "reopen replays only the log tail past the checkpoint; with the history held fixed, recovery time scales with the tail, approaching zero at tail=0",
		Header: []string{"appends", "tail records", "reopen"},
	}
	for _, tailFrac := range []float64{0, 0.10, 0.25, 0.50, 1.00} {
		tail := int(float64(n) * tailFrac)
		elapsed, err := recoveryTailRun(n, tail)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtCount(n), fmtCount(tail), fmtNs(elapsed))
	}
	t.Notes = append(t.Notes,
		"tail=100% is E12's full-replay case; tail=0 is a checkpoint cut at shutdown, the chronicled graceful-exit path")
	return t, nil
}

// recoveryTailRun writes n appends, checkpointing so that exactly tail
// records remain in the WAL, and measures the reopen time.
func recoveryTailRun(n, tail int) (float64, error) {
	dir, err := os.MkdirTemp("", "chronbench-e15-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)

	db, err := chronicledb.Open(chronicledb.Options{Dir: dir})
	if err != nil {
		return 0, err
	}
	if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT);
		CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total FROM calls GROUP BY acct`); err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		if _, err := db.Append("calls", chronicledb.Tuple{
			chronicledb.Str(Acct(i % 512)), chronicledb.Int(int64(i % 90)),
		}); err != nil {
			return 0, err
		}
		if i == n-tail-1 {
			if err := db.Checkpoint(); err != nil {
				return 0, err
			}
		}
	}
	if err := db.Close(); err != nil {
		return 0, err
	}

	start := time.Now()
	db2, err := chronicledb.Open(chronicledb.Options{Dir: dir})
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	row, ok, err := db2.Lookup("usage", chronicledb.Str(Acct(1)))
	if err != nil || !ok || row[1].AsInt() <= 0 {
		db2.Close()
		return 0, fmt.Errorf("E15: recovered view wrong: %v %v %v", row, ok, err)
	}
	db2.Close()
	return float64(elapsed.Nanoseconds()), nil
}
