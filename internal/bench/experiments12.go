package bench

import (
	"fmt"
	"os"
	"sort"
	"time"

	chronicledb "chronicledb"
)

// RunE21 — blocked view stores: checkpoint cost vs view cardinality, and
// reads under a bounded block cache. PR 7's incremental checkpoints skip
// *clean stores*, but a store with any dirty group still serialized its
// whole image, so checkpoint cost scaled with view cardinality even when
// the dirty set was a few hundred groups. The blocked layout (checkpoint
// format v4) splits a B-tree view into fixed-size blocks with per-block
// dirty tracking: an incremental cut re-serializes only the dirty blocks
// and writes byte-cheap refs to the prior chain file for the clean ones.
//
// Part one measures that asymptotic: a B-tree view of n groups takes a
// full baseline checkpoint, then a fixed-size *clustered* dirty set (the
// same key range at every n) is re-appended and an incremental cut is
// timed — blocked (default) against the whole-image ablation
// (ViewBlockBytes = -1). The claim: blocked incremental cost is flat in n
// (within 2x from the smallest to the largest sweep point), the ablation
// is linear.
//
// Part two bounds memory: a view several times larger than ViewCacheBytes
// is checkpointed (blocks become clean and evictable), then served — one
// cold uniform pass over every key (faulting blocks from the chain through
// CLOCK evictions) and one hot pass over a small working set. Resident
// block bytes must stay within the budget the whole way and every read
// must be correct; the hot pass shows the hit ratio and per-read cost the
// cache preserves for in-cache keys.
func RunE21(cfg Config) (*Table, error) {
	sizes := []int{10_000, 100_000, 1_000_000}
	dirtyN, cuts := 512, 3
	cacheGroups, cacheBudget, hotKeys, hotReads := 100_000, int64(512<<10), 256, 50_000
	if cfg.Quick {
		sizes = []int{2_000, 10_000}
		dirtyN, cuts = 128, 2
		cacheGroups, cacheBudget, hotKeys, hotReads = 10_000, 64<<10, 64, 5_000
	}
	t := &Table{
		ID:     "E21",
		Title:  "blocked view checkpoints: incremental cost vs view cardinality",
		Claim:  "with per-block dirty tracking, incremental checkpoint time is proportional to the dirty block set, flat in view cardinality; the whole-image baseline re-serializes every group and scales linearly",
		Header: []string{"mode", "view rows", "blocks", "dirty", "incr ckpt (med)", "full ckpt"},
	}
	for _, mode := range []string{"whole-image", "blocked"} {
		for _, n := range sizes {
			r, err := e21Checkpoint(mode, n, dirtyN, cuts)
			if err != nil {
				return nil, err
			}
			t.AddRow(mode, fmtCount(n), fmt.Sprintf("%d", r.totalBlocks),
				fmt.Sprintf("%d", r.dirtyBlocks), fmtNs(r.incrNs), fmtNs(r.fullNs))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("dirty set: the same %d-group contiguous key range re-appended before every incremental cut; median of %d cuts; chronicle retention none, so the view dominates the image", dirtyN, cuts),
		"whole-image cells run the ViewBlockBytes=-1 ablation: v4 still gates on the view's dirty marker, but one dirty group re-serializes every row",
		"blocked incremental cuts are delta images: only the dirty block runs are serialized, clean blocks contribute nothing — the image is O(dirty set) regardless of cardinality")

	c, err := e21Cache(cacheGroups, cacheBudget, hotKeys, hotReads)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("bounded cache: %s-group view (%s of blocks) under a %s budget: cold uniform pass over every key faulted %s blocks with %s evictions, resident peak %s (within budget: %v), every read correct",
			fmtCount(c.groups), fmtBytes(c.blockBytes), fmtBytes(c.budget), fmtCount(int(c.coldMisses)), fmtCount(int(c.evictions)), fmtBytes(c.peakResident), c.withinBudget),
		fmt.Sprintf("hot pass: %s reads over %d keys at %.1f%% hit ratio, %s/read — in-cache reads keep the lock-free path",
			fmtCount(c.hotReads), c.hotKeys, 100*c.hotHitRatio, fmtNs(c.hotNsPerRead)))
	return t, nil
}

type e21CkptResult struct {
	totalBlocks, dirtyBlocks int64
	incrNs, fullNs           float64
}

func e21Checkpoint(mode string, n, dirtyN, cuts int) (e21CkptResult, error) {
	dir, err := os.MkdirTemp("", "chronbench-e21-")
	if err != nil {
		return e21CkptResult{}, err
	}
	defer os.RemoveAll(dir)

	opts := chronicledb.Options{Dir: dir}
	if mode == "whole-image" {
		opts.ViewBlockBytes = -1
	}
	db, err := chronicledb.Open(opts)
	if err != nil {
		return e21CkptResult{}, err
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT);
		CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total, COUNT(*) AS n FROM calls GROUP BY acct WITH STORE BTREE;`); err != nil {
		return e21CkptResult{}, err
	}
	if err := e21Load(db, 0, n); err != nil {
		return e21CkptResult{}, err
	}

	var res e21CkptResult
	start := time.Now()
	if err := db.Checkpoint(); err != nil { // full baseline: everything dirty
		return e21CkptResult{}, err
	}
	res.fullNs = float64(time.Since(start).Nanoseconds())

	samples := make([]float64, cuts)
	for c := 0; c < cuts; c++ {
		// Re-dirty the same clustered key range: the fixed-size dirty set
		// covers the same handful of blocks at every cardinality.
		if err := e21Load(db, 0, dirtyN); err != nil {
			return e21CkptResult{}, err
		}
		start = time.Now()
		if err := db.Checkpoint(); err != nil {
			return e21CkptResult{}, err
		}
		samples[c] = float64(time.Since(start).Nanoseconds())
	}
	// Median cut: a single fsync stall would dominate a mean of this few
	// samples and misread as cardinality-dependent cost.
	sort.Float64s(samples)
	res.incrNs = samples[len(samples)/2]
	w := db.WALStats()
	res.dirtyBlocks, res.totalBlocks = w.CkptDirtyBlocks, w.CkptTotalBlocks

	// Spot-check: the dirtied range accumulated cuts+1 appends per group.
	row, ok, err := db.Lookup("usage", chronicledb.Str(Acct(0)))
	if err != nil || !ok || row[2].AsInt() != int64(cuts+1) {
		return e21CkptResult{}, fmt.Errorf("E21 %s: group 0 count = %v %v %v, want %d", mode, row, ok, err, cuts+1)
	}
	return res, nil
}

// e21Load appends one row per group in [lo, lo+n), in bulk batches.
func e21Load(db *chronicledb.DB, lo, n int) error {
	const batch = 4096
	tuples := make([]chronicledb.Tuple, 0, batch)
	for i := 0; i < n; i++ {
		tuples = append(tuples, chronicledb.Tuple{
			chronicledb.Str(Acct(lo + i)), chronicledb.Int(int64(i%90 + 1))})
		if len(tuples) == batch || i == n-1 {
			if _, _, err := db.AppendRows("calls", tuples); err != nil {
				return err
			}
			tuples = tuples[:0]
		}
	}
	return nil
}

type e21CacheResult struct {
	groups       int
	blockBytes   int64 // total block bytes in the view (what "fits in RAM" would cost)
	budget       int64
	coldMisses   int64
	evictions    int64
	peakResident int64
	withinBudget bool
	hotKeys      int
	hotReads     int
	hotHitRatio  float64
	hotNsPerRead float64
}

func e21Cache(groups int, budget int64, hotKeys, hotReads int) (e21CacheResult, error) {
	dir, err := os.MkdirTemp("", "chronbench-e21c-")
	if err != nil {
		return e21CacheResult{}, err
	}
	defer os.RemoveAll(dir)

	db, err := chronicledb.Open(chronicledb.Options{Dir: dir, ViewCacheBytes: budget})
	if err != nil {
		return e21CacheResult{}, err
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT);
		CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total, COUNT(*) AS n FROM calls GROUP BY acct WITH STORE BTREE;`); err != nil {
		return e21CacheResult{}, err
	}
	if err := e21Load(db, 0, groups); err != nil {
		return e21CacheResult{}, err
	}
	// The cut makes every block clean, hence evictable: from here on the
	// resident set is the cache's problem, not correctness's.
	if err := db.Checkpoint(); err != nil {
		return e21CacheResult{}, err
	}

	res := e21CacheResult{groups: groups, budget: budget, hotKeys: hotKeys, hotReads: hotReads, withinBudget: true}
	w0 := db.WALStats()
	res.blockBytes = w0.CkptTotalBlocks * (8 << 10) // upper bound at the default block size
	track := func() error {
		w := db.WALStats()
		if w.ViewCacheBytes > res.peakResident {
			res.peakResident = w.ViewCacheBytes
		}
		if w.ViewCacheBytes > budget {
			res.withinBudget = false
			return fmt.Errorf("E21 cache: resident %d exceeds budget %d", w.ViewCacheBytes, budget)
		}
		return nil
	}

	// Cold pass: every key once, uniformly — each block faults in and is
	// evicted again long before the pass returns to its neighborhood.
	for i := 0; i < groups; i++ {
		row, ok, err := db.Lookup("usage", chronicledb.Str(Acct(i)))
		if err != nil || !ok || row[2].AsInt() != 1 {
			return res, fmt.Errorf("E21 cache: cold read %d = %v %v %v", i, row, ok, err)
		}
		if i%512 == 0 {
			if err := track(); err != nil {
				return res, err
			}
		}
	}
	if err := track(); err != nil {
		return res, err
	}
	w1 := db.WALStats()
	res.coldMisses = w1.ViewCacheMisses - w0.ViewCacheMisses
	res.evictions = w1.ViewCacheEvictions - w0.ViewCacheEvictions

	// Hot pass: a working set far under the budget — after the first lap
	// faults it in, reads are cache hits on the lock-free snapshot path.
	start := time.Now()
	for i := 0; i < hotReads; i++ {
		k := i % hotKeys
		row, ok, err := db.Lookup("usage", chronicledb.Str(Acct(k)))
		if err != nil || !ok || row[2].AsInt() != 1 {
			return res, fmt.Errorf("E21 cache: hot read %d = %v %v %v", k, row, ok, err)
		}
	}
	res.hotNsPerRead = float64(time.Since(start).Nanoseconds()) / float64(hotReads)
	if err := track(); err != nil {
		return res, err
	}
	w2 := db.WALStats()
	hits := w2.ViewCacheHits - w1.ViewCacheHits
	misses := w2.ViewCacheMisses - w1.ViewCacheMisses
	if hits+misses > 0 {
		res.hotHitRatio = float64(hits) / float64(hits+misses)
	} else {
		res.hotHitRatio = 1 // every read resident: no cache traffic at all
	}
	return res, nil
}
