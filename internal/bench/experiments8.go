package bench

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	chronicledb "chronicledb"
)

// RunE17 — lock-free snapshot reads under concurrent maintenance. Each
// cell runs a fixed wall-clock window with the given number of appenders
// (driving append→delta→maintain→publish) and readers (point lookups
// against the summary view), and reports aggregate read throughput and
// sampled p99 read latency. The "locked" mode is the ablation baseline:
// Options.LockedReads routes every read through the engine mutex, which
// is what the read path looked like before snapshot publication. The
// "snapshot" mode traverses the atomically-published immutable B-tree
// clone and never touches the engine lock, so appenders cannot block
// readers and vice versa — the claim is that read latency stays flat as
// appenders are added, while the locked baseline's tail grows with
// writer contention.
func RunE17(cfg Config) (*Table, error) {
	window := 300 * time.Millisecond
	appenders := []int{0, 1, 4, 16}
	readers := []int{1, 4, 16}
	if cfg.Quick {
		window = 60 * time.Millisecond
		appenders = []int{0, 4}
		readers = []int{1, 4}
	}
	t := &Table{
		ID:     "E17",
		Title:  "read path: snapshot traversal vs engine-locked reads",
		Claim:  "summary queries are cheap lookups against the materialized view (Section 5); lookups against an immutable published snapshot must not serialize behind maintenance, so read p99 stays flat as appenders are added while the locked baseline degrades",
		Header: []string{"mode", "appenders", "readers", "reads/sec", "read p99", "appends/sec"},
	}
	for _, locked := range []bool{false, true} {
		for _, ap := range appenders {
			for _, rd := range readers {
				row, err := e17Cell(locked, ap, rd, window)
				if err != nil {
					return nil, err
				}
				t.AddRow(row...)
			}
		}
	}
	t.Notes = append(t.Notes,
		"each cell: in-memory DB, one indexed SUM/COUNT view over 512 groups; readers loop point lookups over rotating keys, appenders loop single-row appends; p99 from per-reader latency samples (every 8th op)",
		"locked rows set Options.LockedReads, the pre-snapshot ablation: reads acquire the same mutex the maintenance path holds",
		fmt.Sprintf("window %s per cell; single-host numbers — on few-core machines readers and appenders time-share, so throughput splits rather than scales", window))
	return t, nil
}

// e17Cell measures one (mode, appenders, readers) combination.
func e17Cell(locked bool, appenders, readers int, window time.Duration) ([]string, error) {
	db, err := chronicledb.Open(chronicledb.Options{LockedReads: locked})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT);
		CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total, COUNT(*) AS n
		FROM calls GROUP BY acct WITH STORE BTREE`); err != nil {
		return nil, err
	}
	const groups = 512
	seed := make([]chronicledb.Tuple, groups)
	for i := range seed {
		seed[i] = chronicledb.Tuple{chronicledb.Str(Acct(i)), chronicledb.Int(int64(i % 90))}
	}
	if _, _, err := db.AppendRows("calls", seed); err != nil {
		return nil, err
	}

	var stop atomic.Bool
	var readOps, appendOps atomic.Int64
	errs := make([]error, appenders+readers)
	var wg sync.WaitGroup
	samples := make([][]int64, readers)

	for w := 0; w < appenders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := w
			for !stop.Load() {
				if _, err := db.Append("calls", chronicledb.Tuple{
					chronicledb.Str(Acct(i % groups)), chronicledb.Int(int64(i % 90)),
				}); err != nil {
					errs[w] = err
					return
				}
				i++
				appendOps.Add(1)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lat := make([]int64, 0, 1<<15)
			i := r
			for !stop.Load() {
				sample := i%8 == 0 && len(lat) < cap(lat)
				var t0 time.Time
				if sample {
					t0 = time.Now()
				}
				_, ok, err := db.Lookup("usage", chronicledb.Str(Acct(i%groups)))
				if err != nil || !ok {
					errs[appenders+r] = fmt.Errorf("lookup %d: ok=%v err=%v", i, ok, err)
					return
				}
				if sample {
					lat = append(lat, time.Since(t0).Nanoseconds())
				}
				i++
				readOps.Add(1)
			}
			samples[r] = lat
		}(r)
	}

	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var all []int64
	for _, s := range samples {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p99 := "-"
	if len(all) > 0 {
		idx := len(all) * 99 / 100
		if idx >= len(all) {
			idx = len(all) - 1
		}
		p99 = fmtNs(float64(all[idx]))
	}
	mode := "snapshot"
	if locked {
		mode = "locked"
	}
	sec := window.Seconds()
	return []string{
		mode, fmtCount(appenders), fmtCount(readers),
		fmt.Sprintf("%.0f", float64(readOps.Load())/sec),
		p99,
		fmt.Sprintf("%.0f", float64(appendOps.Load())/sec),
	}, nil
}
