package bench

import (
	"fmt"
	"os"
	"time"

	chronicledb "chronicledb"
)

// RunE20 — recovery time and disk footprint vs uptime. The grow-forever
// single-file WAL couples both to the age of the database: everything
// since the last full checkpoint replays on reopen, and the checkpoint
// itself serializes the entire engine state, so running it often enough
// to bound recovery costs state-size work per interval. The rotated,
// size-capped segment layout with incremental checkpoints breaks the
// coupling twice over: checkpoints write only the stores dirtied since
// the previous one (plus a chain entry), and the compactor deletes
// sealed segments wholly below the checkpoint LSN — so both the reopen
// replay and the on-disk footprint are bounded by the write rate within
// one checkpoint interval, flat in total uptime.
//
// Three modes, total appends n standing in for uptime:
//
//   - legacy-rare:     single-file WAL, one checkpoint early on — the
//     grow-forever baseline; recovery and disk scale with n.
//   - legacy-periodic: single-file WAL, a full checkpoint every interval —
//     recovery flattens, but each checkpoint rewrites the whole state, so
//     cumulative checkpoint time scales with n x state size.
//   - segmented:       rotated segments, an incremental checkpoint every
//     interval, compaction on — recovery, disk, and per-interval
//     checkpoint cost all flat in n.
//
// The schema has one hot chronicle/view pair taking every measured append
// and four cold pairs written only during setup: the incremental
// checkpoints skip the cold stores entirely, which is where their
// per-interval cost advantage over the full dumps comes from.
func RunE20(cfg Config) (*Table, error) {
	sizes := []int{8_000, 16_000, 32_000}
	interval, coldRows := 2_000, 8_000
	// The segment cap sits well under one interval's WAL bytes so sealed
	// segments actually fall below the checkpoint LSN and compact; a cap
	// above the interval would leave every record in the active segment.
	segCap := int64(16 << 10)
	if cfg.Quick {
		sizes = []int{1_000, 2_000}
		interval, coldRows, segCap = 500, 1_000, 4<<10
	}
	t := &Table{
		ID:     "E20",
		Title:  "recovery and disk vs uptime: segmented WAL + incremental checkpoints vs single-file",
		Claim:  "with rotated segments and incremental checkpoints, reopen time, disk footprint, and per-interval checkpoint cost are bounded by the write rate since the last checkpoint, not by uptime; the single-file WAL ties at least one of them to total history",
		Header: []string{"mode", "appends", "ckpts", "ckpt total", "disk at close", "reopen"},
	}
	for _, mode := range []string{"legacy-rare", "legacy-periodic", "segmented"} {
		for _, n := range sizes {
			r, err := e20Run(mode, n, interval, coldRows, segCap)
			if err != nil {
				return nil, err
			}
			t.AddRow(mode, fmtCount(n), fmt.Sprintf("%d", r.ckpts),
				fmtNs(r.ckptNs), fmtBytes(r.diskBytes), fmtNs(r.reopenNs))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("checkpoint interval %s appends; segmented cells: %s segment cap, full fold every 8 checkpoints, compaction on", fmtCount(interval), fmtBytes(segCap)),
		"disk at close sums every file in the data directory; legacy-rare carries the whole post-checkpoint history in one WAL file",
		"cold stores (4 of 5 view/chronicle pairs) are untouched after setup, so incremental checkpoints skip them; full checkpoints rewrite them every interval")
	return t, nil
}

type e20Result struct {
	ckpts     int
	ckptNs    float64
	diskBytes int64
	reopenNs  float64
}

func e20Run(mode string, n, interval, coldRows int, segCap int64) (e20Result, error) {
	dir, err := os.MkdirTemp("", "chronbench-e20-")
	if err != nil {
		return e20Result{}, err
	}
	defer os.RemoveAll(dir)

	opts := chronicledb.Options{Dir: dir}
	if mode == "segmented" {
		opts.WALSegmentBytes = segCap
		opts.CheckpointFullEvery = 8
	} else {
		opts.WALSegmentBytes = -1 // legacy single-file WAL
	}
	db, err := chronicledb.Open(opts)
	if err != nil {
		return e20Result{}, err
	}
	ddl := `CREATE CHRONICLE hot (acct STRING, minutes INT);
		CREATE VIEW hot_usage AS SELECT acct, SUM(minutes) AS total, COUNT(*) AS n FROM hot GROUP BY acct;`
	for c := 0; c < 4; c++ {
		ddl += fmt.Sprintf(`CREATE CHRONICLE cold%d (acct STRING, minutes INT);
			CREATE VIEW cold%d_usage AS SELECT acct, SUM(minutes) AS total FROM cold%d GROUP BY acct;`, c, c, c)
	}
	if _, err := db.Exec(ddl); err != nil {
		return e20Result{}, err
	}
	// Cold state: written once, never touched again — the part a full
	// checkpoint keeps re-serializing and an incremental one skips.
	for c := 0; c < 4; c++ {
		for i := 0; i < coldRows; i++ {
			if _, err := db.Append(fmt.Sprintf("cold%d", c), chronicledb.Tuple{
				chronicledb.Str(Acct(i)), chronicledb.Int(int64(i % 90)),
			}); err != nil {
				return e20Result{}, err
			}
		}
	}
	var res e20Result
	checkpoint := func() error {
		start := time.Now()
		if err := db.Checkpoint(); err != nil {
			return err
		}
		res.ckptNs += float64(time.Since(start).Nanoseconds())
		res.ckpts++
		return nil
	}
	if err := checkpoint(); err != nil { // baseline: cold state durable
		return e20Result{}, err
	}
	for i := 1; i <= n; i++ {
		if _, err := db.Append("hot", chronicledb.Tuple{
			chronicledb.Str(Acct(i % 512)), chronicledb.Int(int64(i % 90)),
		}); err != nil {
			return e20Result{}, err
		}
		if mode != "legacy-rare" && i%interval == 0 {
			if err := checkpoint(); err != nil {
				return e20Result{}, err
			}
		}
	}
	if err := db.Close(); err != nil {
		return e20Result{}, err
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return e20Result{}, err
	}
	for _, e := range entries {
		info, err := e.Info()
		if err == nil {
			res.diskBytes += info.Size()
		}
	}

	start := time.Now()
	db2, err := chronicledb.Open(opts)
	if err != nil {
		return e20Result{}, err
	}
	res.reopenNs = float64(time.Since(start).Nanoseconds())
	defer db2.Close()
	row, ok, err := db2.Lookup("hot_usage", chronicledb.Str(Acct(1)))
	if err != nil || !ok || row[2].AsInt() <= 0 {
		return e20Result{}, fmt.Errorf("E20 %s: recovered view wrong: %v %v %v", mode, row, ok, err)
	}
	row, ok, err = db2.Lookup("cold0_usage", chronicledb.Str(Acct(1)))
	if err != nil || !ok {
		return e20Result{}, fmt.Errorf("E20 %s: cold view lost: %v %v %v", mode, row, ok, err)
	}
	return res, nil
}

// fmtBytes renders a byte count with a friendly unit.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
