package bench

import (
	"fmt"
	"time"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/baseline"
	"chronicledb/internal/chronicle"
	"chronicledb/internal/value"
	"chronicledb/internal/view"
)

// RunE1 — Theorems 4.4/4.5 vs Proposition 3.1: SCA maintenance per append
// is independent of |C|; recomputing the view from the stored chronicle
// (full relational algebra) costs time that grows with |C|.
func RunE1(cfg Config) (*Table, error) {
	sizes := []int{1_000, 10_000, 100_000, 500_000}
	if cfg.Quick {
		sizes = []int{1_000, 10_000}
	}
	t := &Table{
		ID:     "E1",
		Title:  "per-append maintenance time vs chronicle size |C|",
		Claim:  "SCA views maintain in time independent of |C| (Thm 4.4/4.5); relational-algebra recompute is IM-C^k (Prop 3.1)",
		Header: []string{"|C|", "SCA1 incr/append", "recompute/append", "ratio"},
	}
	for _, size := range sizes {
		w, err := NewTelecom(1024, chronicle.RetainAll, false)
		if err != nil {
			return nil, err
		}
		v := MustView(w.UsageDef("usage"), view.StoreHash)
		for i := 0; i < size; i++ {
			d, _, err := w.NextCall()
			if err != nil {
				return nil, err
			}
			v.Apply(d)
		}

		// Incremental cost at this |C|.
		const probes = 2000
		start := time.Now()
		for i := 0; i < probes; i++ {
			d, _, err := w.NextCall()
			if err != nil {
				return nil, err
			}
			v.Apply(d)
		}
		incrNs := float64(time.Since(start).Nanoseconds()) / probes

		// Recompute cost at this |C|.
		rc, err := baseline.NewRecompute(w.UsageDef("usage_rc"))
		if err != nil {
			return nil, err
		}
		refreshes := 3
		start = time.Now()
		for i := 0; i < refreshes; i++ {
			if _, err := rc.Refresh(); err != nil {
				return nil, err
			}
		}
		rcNs := float64(time.Since(start).Nanoseconds()) / float64(refreshes)

		t.AddRow(fmtCount(size), fmtNs(incrNs), fmtNs(rcNs), fmt.Sprintf("%.0fx", rcNs/incrNs))
	}
	t.Notes = append(t.Notes,
		"SCA column stays flat as |C| grows; recompute grows ~linearly — the IM-C^k separation")
	return t, nil
}

// RunE2 — Theorem 4.5: SCA1 ⊆ IM-Constant, SCA⋈ ⊆ IM-log(R), SCA ⊆ IM-R^k.
func RunE2(cfg Config) (*Table, error) {
	sizes := []int{1_000, 8_000, 64_000, 256_000}
	if cfg.Quick {
		sizes = []int{1_000, 8_000}
	}
	t := &Table{
		ID:     "E2",
		Title:  "per-append maintenance time vs relation size |R|",
		Claim:  "SCA1 constant, SCA⋈ O(log|R|), SCA (cross product) O(|R|) per append (Thm 4.5)",
		Header: []string{"|R|", "SCA1/append", "SCA⋈/append", "SCA-cross/append"},
	}
	for _, size := range sizes {
		// Account cardinality is fixed at 1024 (all present in the
		// relation) so the measured effect is |R|, not group creation.
		w, err := NewTelecom(1024, chronicle.RetainNone, false)
		if err != nil {
			return nil, err
		}
		if err := w.FillCustomers(size); err != nil {
			return nil, err
		}
		v1 := MustView(w.UsageDef("sca1"), view.StoreHash)
		kd, err := w.KeyJoinDef("scakey")
		if err != nil {
			return nil, err
		}
		vk := MustView(kd, view.StoreHash)
		cd, err := w.CrossDef("scacross")
		if err != nil {
			return nil, err
		}
		vc := MustView(cd, view.StoreHash)

		measure := func(v *view.View, probes int) (float64, error) {
			start := time.Now()
			for i := 0; i < probes; i++ {
				d, _, err := w.NextCall()
				if err != nil {
					return 0, err
				}
				v.Apply(d)
			}
			return float64(time.Since(start).Nanoseconds()) / float64(probes), nil
		}
		n1, err := measure(v1, 3000)
		if err != nil {
			return nil, err
		}
		nk, err := measure(vk, 3000)
		if err != nil {
			return nil, err
		}
		crossProbes := 20
		if cfg.Quick {
			crossProbes = 5
		}
		nc, err := measure(vc, crossProbes)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtCount(size), fmtNs(n1), fmtNs(nk), fmtNs(nc))
	}
	t.Notes = append(t.Notes,
		"SCA1 and SCA⋈ stay (near) flat; the cross-product column grows linearly in |R|")
	return t, nil
}

// RunE3 — Section 3: the transaction rate a chronicle system supports is
// set by the incremental-maintenance complexity of its view language.
func RunE3(cfg Config) (*Table, error) {
	appends := 30_000
	if cfg.Quick {
		appends = 3_000
	}
	t := &Table{
		ID:     "E3",
		Title:  "sustained append throughput by view-language class",
		Claim:  "throughput ordering SCA1 > SCA⋈ >> recompute; graceful degradation with more views (Sec. 3)",
		Header: []string{"configuration", "appends/sec"},
	}

	run := func(label string, nViews int, class string) error {
		w, err := NewTelecom(1024, chronicle.RetainNone, false)
		if err != nil {
			return err
		}
		if class != "sca1" {
			if err := w.FillCustomers(10_000); err != nil {
				return err
			}
		}
		var views []*view.View
		for i := 0; i < nViews; i++ {
			switch class {
			case "sca1":
				views = append(views, MustView(w.UsageDef(fmt.Sprintf("v%d", i)), view.StoreHash))
			case "scakey":
				kd, err := w.KeyJoinDef(fmt.Sprintf("v%d", i))
				if err != nil {
					return err
				}
				views = append(views, MustView(kd, view.StoreHash))
			}
		}
		start := time.Now()
		for i := 0; i < appends; i++ {
			d, _, err := w.NextCall()
			if err != nil {
				return err
			}
			for _, v := range views {
				v.Apply(d)
			}
		}
		perSec := float64(appends) / time.Since(start).Seconds()
		t.AddRow(label, fmt.Sprintf("%.0f", perSec))
		return nil
	}
	for _, k := range []int{1, 4, 16, 64} {
		if err := run(fmt.Sprintf("SCA1 × %d views", k), k, "sca1"); err != nil {
			return nil, err
		}
	}
	if err := run("SCA⋈ × 1 view (|R|=10k)", 1, "scakey"); err != nil {
		return nil, err
	}

	// Recompute-per-append on a growing stored chronicle.
	{
		w, err := NewTelecom(1024, chronicle.RetainAll, false)
		if err != nil {
			return nil, err
		}
		rc, err := baseline.NewRecompute(w.UsageDef("rc"))
		if err != nil {
			return nil, err
		}
		n := 300
		if cfg.Quick {
			n = 60
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, _, err := w.NextCall(); err != nil {
				return nil, err
			}
			if _, err := rc.Refresh(); err != nil {
				return nil, err
			}
		}
		perSec := float64(n) / time.Since(start).Seconds()
		t.AddRow(fmt.Sprintf("recompute × 1 view (|C| grows to %d)", n), fmt.Sprintf("%.0f", perSec))
	}
	return t, nil
}

// RunE4 — the introduction's motivating requirement: summary queries
// answered from the persistent view in constant time, not by scanning the
// recorded sequence.
func RunE4(cfg Config) (*Table, error) {
	sizes := []int{1_000, 10_000, 100_000, 1_000_000}
	if cfg.Quick {
		sizes = []int{1_000, 10_000}
	}
	t := &Table{
		ID:     "E4",
		Title:  "summary-query latency: persistent view lookup vs chronicle scan",
		Claim:  "view answers in O(1)/O(log|V|) independent of |C|; a scan grows linearly (Sec. 1)",
		Header: []string{"|C|", "view lookup", "chronicle scan", "ratio"},
	}
	for _, size := range sizes {
		w, err := NewTelecom(1024, chronicle.RetainAll, false)
		if err != nil {
			return nil, err
		}
		v := MustView(w.UsageDef("usage"), view.StoreHash)
		for i := 0; i < size; i++ {
			d, _, err := w.NextCall()
			if err != nil {
				return nil, err
			}
			v.Apply(d)
		}
		key := value.Tuple{value.Str(Acct(7))}

		const lookups = 20_000
		start := time.Now()
		for i := 0; i < lookups; i++ {
			if _, ok := v.Lookup(key); !ok {
				return nil, fmt.Errorf("E4: lookup missed")
			}
		}
		lookupNs := float64(time.Since(start).Nanoseconds()) / lookups

		scans := 5
		start = time.Now()
		for i := 0; i < scans; i++ {
			if _, err := baseline.ScanQuery(w.Calls, 0, value.Str(Acct(7)), aggregate.Sum, 1); err != nil {
				return nil, err
			}
		}
		scanNs := float64(time.Since(start).Nanoseconds()) / float64(scans)

		t.AddRow(fmtCount(size), fmtNs(lookupNs), fmtNs(scanNs), fmt.Sprintf("%.0fx", scanNs/lookupNs))
	}
	t.Notes = append(t.Notes,
		"the view column is flat — this is the 'display the total when the phone powers on' requirement")
	return t, nil
}
