package bench

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick executes every experiment in quick mode and
// sanity-checks its table shape. This keeps the harness itself honest: a
// broken experiment fails CI instead of printing garbage.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are not short")
	}
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			tbl, err := exp.Run(Config{Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			if tbl.ID != exp.ID {
				t.Errorf("table ID %q != %q", tbl.ID, exp.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("empty table")
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Errorf("row %d has %d cells, header has %d", i, len(row), len(tbl.Header))
				}
			}
			text := tbl.Format()
			if !strings.Contains(text, exp.ID) || !strings.Contains(text, "claim:") {
				t.Errorf("Format output malformed:\n%s", text)
			}
		})
	}
}

// TestE11ZeroDivergence pins the correctness column of E11: incremental
// maintenance under proactive updates must match the reference exactly.
func TestE11ZeroDivergence(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are not short")
	}
	tbl, err := RunE11(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "0" {
			t.Errorf("divergence at |C|=%s: %s rows", row[0], row[len(row)-1])
		}
	}
}

// TestE9ZeroDivergence pins E9's exactness column.
func TestE9ZeroDivergence(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are not short")
	}
	tbl, err := RunE9(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if d, err := strconv.ParseFloat(row[len(row)-1], 64); err != nil || d != 0 {
			t.Errorf("divergence at n=%s: %q", row[0], row[len(row)-1])
		}
	}
}

// TestE8ExpirationBoundsInstances pins E8's structural claim.
func TestE8ExpirationBoundsInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are not short")
	}
	tbl, err := RunE8(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		live, err := strconv.Atoi(row[3])
		if err != nil {
			t.Fatalf("live column %q", row[3])
		}
		periods, _ := strconv.Atoi(row[0])
		switch row[1] {
		case "expire+1":
			if live > 2 {
				t.Errorf("%s periods with expiration: %d live instances", row[0], live)
			}
		case "keep-forever":
			if live != periods {
				t.Errorf("%s periods without expiration: %d live instances", row[0], live)
			}
		}
	}
}

func TestFmtHelpers(t *testing.T) {
	if got := fmtNs(500); got != "500ns" {
		t.Errorf("fmtNs(500) = %q", got)
	}
	if got := fmtNs(2500); got != "2.50µs" {
		t.Errorf("fmtNs(2500) = %q", got)
	}
	if got := fmtNs(3.2e6); got != "3.20ms" {
		t.Errorf("fmtNs(3.2e6) = %q", got)
	}
	if got := fmtNs(1.5e9); got != "1.50s" {
		t.Errorf("fmtNs(1.5e9) = %q", got)
	}
	if got := fmtCount(2_000_000); got != "2M" {
		t.Errorf("fmtCount = %q", got)
	}
	if got := fmtCount(5_000); got != "5k" {
		t.Errorf("fmtCount = %q", got)
	}
	if got := fmtCount(123); got != "123" {
		t.Errorf("fmtCount = %q", got)
	}
}
