package bench

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	chronicledb "chronicledb"
	"chronicledb/internal/fault"
	"chronicledb/internal/server"
)

// RunE23 — log-shipping replication. Three cells:
//
//   - reads: aggregate Lookup throughput as converged followers join the
//     fleet. Followers serve the same lock-free snapshot path as the
//     primary, so each replica adds a full read head (on this 1-core
//     container the cells time-share one CPU, so the table shows per-
//     member parity rather than aggregate scaling — same caveat as E22).
//   - failover: wall time from primary death to the first acknowledged
//     write on the promoted follower through a multi-endpoint client
//     (endpoint rotation + POST /promote inside the measured window).
//   - lag: follower staleness (LSN distance behind the primary's released
//     cursor) while the primary appends at a paced rate, plus the
//     catch-up time after the burst ends. The WAL tap stages frames on
//     the append path and releases them post-fsync, so lag stays bounded
//     by fan-out latency, not by batch accumulation.
func RunE23(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E23",
		Title:  "log-shipping replication: follower reads, failover, lag",
		Claim:  "followers serve reads at primary parity from replicated state, failover to a promoted follower completes in tens of milliseconds, and replication lag stays within a heartbeat of zero at paced append rates",
		Header: []string{"cell", "setup", "metric", "value", "detail"},
	}

	// -- reads: throughput vs replica count ------------------------------
	preload, readDur := 5000, 300*time.Millisecond
	followerCounts := []int{0, 1, 2}
	if cfg.Quick {
		preload, readDur = 1000, 120*time.Millisecond
		followerCounts = []int{0, 1}
	}
	for _, nf := range followerCounts {
		rps, err := e23ReadCell(nf, preload, readDur)
		if err != nil {
			return nil, fmt.Errorf("reads(%d followers): %w", nf, err)
		}
		t.AddRow("reads", fmt.Sprintf("%d follower(s)", nf), "lookups/s",
			fmt.Sprintf("%.0f", rps),
			fmt.Sprintf("4 readers round-robin over %d member(s), %d rows preloaded", nf+1, preload))
	}

	// -- failover: primary death -> first promoted ack -------------------
	trials := 3
	if cfg.Quick {
		trials = 1
	}
	var times []time.Duration
	for i := 0; i < trials; i++ {
		d, err := e23FailoverCell()
		if err != nil {
			return nil, fmt.Errorf("failover trial %d: %w", i, err)
		}
		times = append(times, d)
	}
	t.AddRow("failover", fmt.Sprintf("median of %d", trials), "ms to first ack",
		fmt.Sprintf("%.1f", float64(medianDur(times))/1e6),
		"kill primary server -> POST /promote -> client rotates endpoints and retries")

	// -- lag: staleness vs append rate -----------------------------------
	burst := 2000
	rates := []int{1000, 5000, 0} // rows/s; 0 = unpaced
	if cfg.Quick {
		burst = 400
		rates = []int{2000, 0}
	}
	for _, rate := range rates {
		maxLag, catchup, err := e23LagCell(rate, burst)
		if err != nil {
			return nil, fmt.Errorf("lag(rate=%d): %w", rate, err)
		}
		setup := "unpaced burst"
		if rate > 0 {
			setup = fmt.Sprintf("%d rows/s paced", rate)
		}
		t.AddRow("lag", setup, "max lag (LSN) / catch-up",
			fmt.Sprintf("%d / %.1fms", maxLag, float64(catchup)/1e6),
			fmt.Sprintf("%d appends, follower sampled every 200µs against released cursor", burst))
	}

	t.Notes = append(t.Notes,
		"single-core container: the reads cells time-share one CPU, so aggregate lookups/s shows per-member parity, not linear scaling; each follower is an independent read head on multi-core hosts",
		"failover time includes the promote round-trip and the client's endpoint rotation backoff; the replicated dedup table makes the post-failover retry exactly-once (repl_chaos_test.go asserts the tiling)",
	)
	return t, nil
}

// e23Primary opens a primary on its own simulated disk with the standard
// calls/usage schema and an HTTP server with a fast heartbeat.
func e23Primary(ackMode string) (*chronicledb.DB, *httptest.Server, error) {
	db, err := chronicledb.Open(chronicledb.Options{
		Dir: "/data", SyncWAL: true, FS: fault.NewDisk(), Shards: 2,
		AckMode: ackMode,
	})
	if err != nil {
		return nil, nil, err
	}
	for _, ddl := range []string{
		`CREATE CHRONICLE calls (acct STRING, minutes INT) RETAIN ALL`,
		`CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total FROM calls GROUP BY acct`,
	} {
		if _, err := db.Exec(ddl); err != nil {
			db.Close()
			return nil, nil, err
		}
	}
	ts := httptest.NewServer(server.NewWith(db, server.Config{ReplHeartbeat: 20 * time.Millisecond}))
	return db, ts, nil
}

// e23Follower opens a follower of primaryURL on its own simulated disk.
func e23Follower(primaryURL, id string) (*chronicledb.DB, error) {
	return chronicledb.Open(chronicledb.Options{
		Dir: "/data", SyncWAL: true, FS: fault.NewDisk(), Shards: 2,
		ReplicaOf: primaryURL, FollowerID: id,
	})
}

// e23WaitCaughtUp blocks until the follower has applied the primary's
// released cursor.
func e23WaitCaughtUp(primary, follower *chronicledb.DB, deadline time.Duration) error {
	cursor := primary.ReplSource().Cursor()
	end := time.Now().Add(deadline)
	for {
		if st, ok := follower.ReplState(); ok && st.AppliedLSN >= cursor {
			return nil
		}
		if time.Now().After(end) {
			st, _ := follower.ReplState()
			return fmt.Errorf("follower stuck at LSN %d, want %d", st.AppliedLSN, cursor)
		}
		time.Sleep(time.Millisecond)
	}
}

func e23ReadCell(nFollowers, preload int, dur time.Duration) (float64, error) {
	db, ts, err := e23Primary("async")
	if err != nil {
		return 0, err
	}
	defer db.Close()
	defer ts.Close()
	const accts = 64
	for i := 0; i < preload; i++ {
		if _, err := db.Append("calls", chronicledb.Tuple{
			chronicledb.Str(fmt.Sprintf("acct-%03d", i%accts)), chronicledb.Int(1)}); err != nil {
			return 0, err
		}
	}
	members := []*chronicledb.DB{db}
	for i := 0; i < nFollowers; i++ {
		f, err := e23Follower(ts.URL, fmt.Sprintf("e23-read-%d", i))
		if err != nil {
			return 0, err
		}
		defer f.Close()
		if err := e23WaitCaughtUp(db, f, 10*time.Second); err != nil {
			return 0, err
		}
		members = append(members, f)
	}

	var (
		count atomic.Int64
		fails atomic.Int64
		stop  atomic.Bool
		wg    sync.WaitGroup
	)
	const readers = 4
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := r; !stop.Load(); i++ {
				m := members[i%len(members)]
				key := chronicledb.Str(fmt.Sprintf("acct-%03d", i%accts))
				if _, ok, err := m.Lookup("usage", key); err != nil || !ok {
					fails.Add(1)
					return
				}
				count.Add(1)
			}
		}(r)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	if fails.Load() > 0 {
		return 0, fmt.Errorf("%d lookups failed", fails.Load())
	}
	return float64(count.Load()) / dur.Seconds(), nil
}

func e23FailoverCell() (time.Duration, error) {
	db, ts, err := e23Primary("sync")
	if err != nil {
		return 0, err
	}
	defer db.Close()
	f, err := e23Follower(ts.URL, "e23-standby")
	if err != nil {
		ts.Close()
		return 0, err
	}
	defer f.Close()
	ts2 := httptest.NewServer(server.NewWith(f, server.Config{}))
	defer ts2.Close()

	c := server.NewClientWith(ts.URL, server.ClientConfig{
		Endpoints:   []string{ts2.URL},
		ClientID:    "e23-failover",
		Timeout:     500 * time.Millisecond,
		MaxAttempts: 2,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
	})
	// Warm: 200 sync-acked writes, so the standby is attached and current.
	rows := [][]any{{"acct-e23", 1}}
	for i := 0; i < 200; i++ {
		if _, err := c.AppendRowsIdem("calls", rows, fmt.Sprintf("w%d", i)); err != nil {
			return 0, fmt.Errorf("warm append: %w", err)
		}
	}
	if err := e23WaitCaughtUp(db, f, 10*time.Second); err != nil {
		return 0, err
	}

	// Primary dies (CloseClientConnections severs the standby's stream so
	// Close cannot block on it); the measured window covers the operator
	// promote plus the client noticing, rotating, and getting an ack.
	start := time.Now()
	ts.CloseClientConnections()
	ts.Close()
	resp, err := http.Post(ts2.URL+"/promote", "application/json", nil)
	if err != nil {
		return 0, fmt.Errorf("promote: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("promote: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := c.AppendRowsIdem("calls", rows, "post-failover"); err == nil {
			break
		} else if time.Now().After(deadline) {
			return 0, fmt.Errorf("no ack after failover: %w", err)
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)

	// Sanity: the promoted member holds every acked row (200 warm + 1).
	row, ok, err := f.Lookup("usage", chronicledb.Str("acct-e23"))
	if err != nil || !ok || row[1].AsInt() != 201 {
		return 0, fmt.Errorf("promoted usage = %v %v %v, want 201", row, ok, err)
	}
	return elapsed, nil
}

func e23LagCell(rate, burst int) (maxLag uint64, catchup time.Duration, err error) {
	db, ts, err := e23Primary("async")
	if err != nil {
		return 0, 0, err
	}
	defer db.Close()
	defer ts.Close()
	f, err := e23Follower(ts.URL, "e23-lag")
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	if err := e23WaitCaughtUp(db, f, 10*time.Second); err != nil {
		return 0, 0, err
	}

	var (
		stop atomic.Bool
		max  atomic.Uint64
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			cursor := db.ReplSource().Cursor()
			if st, ok := f.ReplState(); ok && cursor > st.AppliedLSN {
				if lag := cursor - st.AppliedLSN; lag > max.Load() {
					max.Store(lag)
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	start := time.Now()
	for i := 0; i < burst; i++ {
		if rate > 0 {
			if d := time.Until(start.Add(time.Duration(i) * (time.Second / time.Duration(rate)))); d > 0 {
				time.Sleep(d)
			}
		}
		if _, err := db.Append("calls", chronicledb.Tuple{
			chronicledb.Str(fmt.Sprintf("acct-%03d", i%64)), chronicledb.Int(1)}); err != nil {
			return 0, 0, err
		}
	}
	burstEnd := time.Now()
	if err := e23WaitCaughtUp(db, f, 10*time.Second); err != nil {
		return 0, 0, err
	}
	catchup = time.Since(burstEnd)
	stop.Store(true)
	wg.Wait()
	return max.Load(), catchup, nil
}

func medianDur(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}
