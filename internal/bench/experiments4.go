package bench

import (
	"fmt"

	chronicledb "chronicledb"
)

// RunE13 — the paper's operational thesis, end to end: "the transaction
// rate that can be supported by a chronicle system is determined by the
// complexity of incremental maintenance of its persistent views"
// (Section 3). The full engine path (append → WAL-less record → dispatch →
// delta → maintain) is driven under sustained load and the per-append
// maintenance latency distribution is reported: IM-Constant view sets keep
// the tail flat; the dispatch index keeps fan-out cost off the append path.
func RunE13(cfg Config) (*Table, error) {
	appends := 50_000
	if cfg.Quick {
		appends = 5_000
	}
	t := &Table{
		ID:     "E13",
		Title:  "end-to-end maintenance latency distribution (full engine path)",
		Claim:  "SCA1 maintenance keeps a flat tail regardless of history; dispatch indexing removes per-view overhead (Secs. 3, 5.2)",
		Header: []string{"configuration", "p50", "p95", "p99", "max"},
	}

	run := func(label string, views int, filtered, indexed bool) error {
		db, err := chronicledb.Open(chronicledb.Options{NoDispatchIndex: !indexed})
		if err != nil {
			return err
		}
		defer db.Close()
		if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT)`); err != nil {
			return err
		}
		for i := 0; i < views; i++ {
			var stmt string
			if filtered {
				// Per-account views: each append affects exactly one.
				stmt = fmt.Sprintf(`CREATE VIEW v%d AS SELECT acct, SUM(minutes) AS m
					FROM calls WHERE acct = '%s' GROUP BY acct`, i, Acct(i))
			} else {
				// Unfiltered views: each append maintains all of them.
				stmt = fmt.Sprintf(`CREATE VIEW v%d AS SELECT acct, SUM(minutes) AS m
					FROM calls GROUP BY acct`, i)
			}
			if _, err := db.Exec(stmt); err != nil {
				return err
			}
		}
		for i := 0; i < appends; i++ {
			if _, err := db.Append("calls", chronicledb.Tuple{
				chronicledb.Str(Acct(i % 64)), chronicledb.Int(int64(i % 90)),
			}); err != nil {
				return err
			}
		}
		lat := db.MaintenanceLatency()
		t.AddRow(label, fmt.Sprint(lat.P50), fmt.Sprint(lat.P95), fmt.Sprint(lat.P99), fmt.Sprint(lat.Max))
		return nil
	}

	if err := run("1 unfiltered SCA1 view", 1, false, true); err != nil {
		return nil, err
	}
	if err := run("16 unfiltered SCA1 views", 16, false, true); err != nil {
		return nil, err
	}
	if err := run("64 per-account views, indexed dispatch", 64, true, true); err != nil {
		return nil, err
	}
	if err := run("64 per-account views, linear dispatch", 64, true, false); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"per-account views with the predicate index cost like a single view; without it, dispatch scans all 64 registrations per append")
	return t, nil
}
