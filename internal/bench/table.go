// Package bench is the experiment harness: it regenerates, as measured
// tables, every claim of the chronicle paper with quantitative content.
// The paper (a theory extended abstract) has no tables or figures of its
// own, so the experiment list in DESIGN.md — E1..E17 — plays that role:
// each experiment's expected *shape* (who wins, what the scaling exponent
// is, where the crossover falls) comes straight from a theorem or a
// Section-5 design argument, and EXPERIMENTS.md records claim vs measured.
//
// The same kernels back the root-level testing.B benchmarks and the
// cmd/chronbench driver.
package bench

import (
	"fmt"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper claim being reproduced
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i]
			}
			fmt.Fprintf(&b, "  %-*s", pad, c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Config scales the experiments.
type Config struct {
	// Quick shrinks sweeps for CI and unit tests; the full sweep is the
	// chronbench default.
	Quick bool
}

// Experiment is one runnable experiment.
type Experiment struct {
	ID   string
	Name string
	Run  func(cfg Config) (*Table, error)
}

// All returns every experiment in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "maintenance vs chronicle size", RunE1},
		{"E2", "maintenance vs relation size", RunE2},
		{"E3", "append throughput by language class", RunE3},
		{"E4", "summary-query latency: view vs scan", RunE4},
		{"E5", "delta cost vs expression shape (u, j)", RunE5},
		{"E6", "moving windows: cyclic buffer vs re-aggregation", RunE6},
		{"E7", "affected-view dispatch vs view count", RunE7},
		{"E8", "periodic view lifecycle and expiration", RunE8},
		{"E9", "tiered discounts: incremental vs batch", RunE9},
		{"E10", "view store ablation: hash vs B-tree vs |V|", RunE10},
		{"E11", "proactive updates and temporal joins", RunE11},
		{"E12", "recovery: checkpoint + WAL tail vs full replay", RunE12},
		{"E13", "end-to-end maintenance latency distribution", RunE13},
		{"E14", "shard scaling: concurrent appends vs shard count", RunE14},
		{"E15", "recovery time vs WAL tail length", RunE15},
		{"E16", "append hot path: allocations and group commit", RunE16},
		{"E17", "read path: snapshot reads vs locked reads", RunE17},
		{"E18", "exactly-once ingestion under network chaos", RunE18},
		{"E19", "changefeed fan-out: delta delivery to live subscribers", RunE19},
		{"E20", "recovery and disk vs uptime: segmented vs single-file WAL", RunE20},
		{"E21", "blocked view checkpoints: dirty-block cost + bounded cache", RunE21},
		{"E22", "shared-delta maintenance: CSE fan-out + parallel apply", RunE22},
		{"E23", "log-shipping replication: follower reads, failover, lag", RunE23},
	}
}

// fmtNs renders nanoseconds with a friendly unit.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// fmtCount renders large counts compactly.
func fmtCount(n int) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return fmt.Sprintf("%dM", n/1_000_000)
	case n >= 1_000 && n%1_000 == 0:
		return fmt.Sprintf("%dk", n/1_000)
	default:
		return fmt.Sprintf("%d", n)
	}
}
