package value

import "strings"

// Tuple is an ordered list of values interpreted against a Schema.
type Tuple []Value

// Clone returns a copy of the tuple. Values themselves are immutable, so a
// shallow copy of the slice suffices.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// CompareTuples orders two tuples lexicographically column by column.
// Shorter tuples sort before longer ones with an equal prefix.
func CompareTuples(a, b Tuple) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return cmpInt(int64(len(a)), int64(len(b)))
}

// TuplesEqual reports whether two tuples compare equal column by column.
func TuplesEqual(a, b Tuple) bool { return CompareTuples(a, b) == 0 }

// Hash returns a 64-bit hash of the whole tuple.
func (t Tuple) Hash() uint64 {
	h := HashSeed
	for _, v := range t {
		h = v.Hash(h)
	}
	return h
}

// HashCols hashes only the values at the given column indexes, in order.
// It is the grouping key used by view group stores and hash joins.
func (t Tuple) HashCols(cols []int) uint64 {
	h := HashSeed
	for _, c := range cols {
		h = t[c].Hash(h)
	}
	return h
}

// Project returns a new tuple containing the values at the given indexes.
func (t Tuple) Project(idx []int) Tuple {
	out := make(Tuple, len(idx))
	for i, j := range idx {
		out[i] = t[j]
	}
	return out
}

// Key renders the tuple's values at the given columns into a canonical
// string usable as a Go map key. Encodings are prefixed with the value kind
// and length-delimited so distinct tuples cannot collide.
func (t Tuple) Key(cols []int) string {
	var dst []byte
	for _, c := range cols {
		dst = AppendKey(dst, t[c])
	}
	return string(dst)
}

// FullKey is Key over every column.
func (t Tuple) FullKey() string {
	var dst []byte
	for _, v := range t {
		dst = AppendKey(dst, v)
	}
	return string(dst)
}

// AppendKey appends v's canonical map-key encoding — the byte sequence
// Key and FullKey are built from — to dst. Callers holding a reusable
// buffer get a probe key without allocating (m[string(dst)] lookups do not
// copy the bytes).
func AppendKey(dst []byte, v Value) []byte {
	// Numeric values are canonicalized through their binary encoding so that
	// Int(2) and Float(2.0) — which Compare equal — also key equal.
	mark := len(dst)
	dst = append(dst, 0)
	dst = AppendValue(dst, canonicalize(v))
	dst[mark] = byte(len(dst) - mark - 1)
	return dst
}

// canonicalize folds float values holding exact integers into KindInt.
func canonicalize(v Value) Value {
	if v.kind == KindFloat {
		i := int64(v.f)
		if float64(i) == v.f {
			return Int(i)
		}
	}
	return v
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}
