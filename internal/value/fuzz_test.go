package value

import "testing"

// FuzzDecodeValue: arbitrary bytes must never panic the decoder, and every
// successfully decoded value must re-encode to the bytes it consumed.
func FuzzDecodeValue(f *testing.F) {
	for _, v := range sampleValues() {
		f.Add(AppendValue(nil, v))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, n, err := DecodeValue(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		// The decoder tolerates non-minimal varint lengths, so require a
		// canonical fixed point rather than byte equality with the input:
		// re-encoding and re-decoding must be stable and value-preserving.
		re := AppendValue(nil, v)
		v2, n2, err := DecodeValue(re)
		if err != nil || n2 != len(re) || v2.Kind() != v.Kind() || !Equal(v2, v) {
			t.Fatalf("canonical round trip failed: %v -> %x -> %v (%v)", v, re, v2, err)
		}
	})
}

// FuzzDecodeTuple mirrors FuzzDecodeValue at the tuple level.
func FuzzDecodeTuple(f *testing.F) {
	f.Add(AppendTuple(nil, Tuple{Int(1), Str("x"), Null()}))
	f.Add([]byte{0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		tup, n, err := DecodeTuple(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		re := AppendTuple(nil, tup)
		tup2, n2, err := DecodeTuple(re)
		if err != nil || n2 != len(re) || !TuplesEqual(tup2, tup) {
			t.Fatalf("canonical round trip failed: %v -> %v (%v)", tup, tup2, err)
		}
	})
}
