// Package value provides the typed value, tuple, and schema substrate shared
// by chronicles, relations, and persistent views.
//
// Values are small immutable tagged unions. A tuple is a slice of values
// interpreted against a Schema. The package also provides total ordering,
// hashing, and a compact binary encoding used by the write-ahead log and by
// view checkpoints.
package value

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"time"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds. KindTime values carry a chronon: an absolute
// instant stored as nanoseconds since the Unix epoch, matching the paper's
// "temporal instant (or chronon) associated with each sequence number".
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindTime
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindTime:
		return "time"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// KindOf parses a kind name as written in the view-definition language.
func KindOf(name string) (Kind, bool) {
	switch name {
	case "int", "INT", "INTEGER", "integer", "bigint", "BIGINT":
		return KindInt, true
	case "float", "FLOAT", "double", "DOUBLE", "real", "REAL":
		return KindFloat, true
	case "string", "STRING", "text", "TEXT", "varchar", "VARCHAR":
		return KindString, true
	case "bool", "BOOL", "boolean", "BOOLEAN":
		return KindBool, true
	case "time", "TIME", "timestamp", "TIMESTAMP":
		return KindTime, true
	default:
		return KindNull, false
	}
}

// Value is an immutable typed scalar. The zero Value is the SQL-style null.
type Value struct {
	kind Kind
	i    int64 // payload for KindInt, KindBool (0/1), KindTime (unix nanos)
	f    float64
	s    string
}

// Null returns the null value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Str returns a string value. (Named Str rather than String to avoid
// clashing with the fmt.Stringer method on Value.)
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Time returns a chronon value for the given instant.
func Time(t time.Time) Value { return Value{kind: KindTime, i: t.UnixNano()} }

// Chronon returns a chronon value from raw nanoseconds since the epoch.
func Chronon(ns int64) Value { return Value{kind: KindTime, i: ns} }

// Kind reports the value's dynamic kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. It is valid only for KindInt.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the float payload. For KindInt values it converts.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string payload. It is valid only for KindString.
func (v Value) AsString() string { return v.s }

// AsBool returns the boolean payload. It is valid only for KindBool.
func (v Value) AsBool() bool { return v.i != 0 }

// AsTime returns the instant for a KindTime value.
func (v Value) AsTime() time.Time { return time.Unix(0, v.i) }

// AsChronon returns the raw nanosecond payload for a KindTime value.
func (v Value) AsChronon() int64 { return v.i }

// IsNumeric reports whether the value is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value for display and for the CLI.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindTime:
		return time.Unix(0, v.i).UTC().Format(time.RFC3339Nano)
	default:
		return "?"
	}
}

// Compare totally orders two values. Nulls sort first; mismatched,
// non-numeric kinds order by kind tag so that the ordering stays total.
// Int and float values compare numerically against each other.
func Compare(a, b Value) int {
	if a.kind == KindNull || b.kind == KindNull {
		return int(boolToInt(b.kind == KindNull)) - int(boolToInt(a.kind == KindNull))
	}
	if a.IsNumeric() && b.IsNumeric() {
		if a.kind == KindInt && b.kind == KindInt {
			return cmpInt(a.i, b.i)
		}
		return cmpFloat(a.AsFloat(), b.AsFloat())
	}
	if a.kind != b.kind {
		return cmpInt(int64(a.kind), int64(b.kind))
	}
	switch a.kind {
	case KindString:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		}
		return 0
	case KindBool, KindTime:
		return cmpInt(a.i, b.i)
	default:
		return 0
	}
}

// Equal reports whether two values compare equal under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Hash mixes the value into a 64-bit FNV-1a hash seeded by h.
func (v Value) Hash(h uint64) uint64 {
	h = fnvByte(h, byte(normalizedKind(v.kind)))
	switch v.kind {
	case KindInt, KindBool, KindTime:
		h = fnvUint64(h, uint64(v.i))
	case KindFloat:
		// Hash floats by their numeric value so Int(2) and Float(2.0),
		// which compare equal, also hash equal.
		if v.f == math.Trunc(v.f) && v.f >= math.MinInt64 && v.f <= math.MaxInt64 {
			h = fnvUint64(h, uint64(int64(v.f)))
		} else {
			h = fnvUint64(h, math.Float64bits(v.f))
		}
	case KindString:
		for i := 0; i < len(v.s); i++ {
			h = fnvByte(h, v.s[i])
		}
	}
	return h
}

// normalizedKind folds int and float into one tag so that numerically equal
// values hash identically.
func normalizedKind(k Kind) Kind {
	if k == KindFloat {
		return KindInt
	}
	return k
}

// HashSeed is the canonical starting seed for value and tuple hashing.
const HashSeed uint64 = 14695981039346656037 // FNV-1a offset basis

func fnvByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= 1099511628211
	return h
}

func fnvUint64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v))
		v >>= 8
	}
	return h
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// fnvString is a helper for package-internal string hashing.
func fnvString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
