package value

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindInt: "int", KindFloat: "float",
		KindString: "string", KindBool: "bool", KindTime: "time",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Errorf("unknown kind rendered as %q", got)
	}
}

func TestKindOf(t *testing.T) {
	for _, tc := range []struct {
		name string
		want Kind
		ok   bool
	}{
		{"int", KindInt, true},
		{"INTEGER", KindInt, true},
		{"double", KindFloat, true},
		{"VARCHAR", KindString, true},
		{"boolean", KindBool, true},
		{"timestamp", KindTime, true},
		{"blob", KindNull, false},
	} {
		got, ok := KindOf(tc.name)
		if got != tc.want || ok != tc.ok {
			t.Errorf("KindOf(%q) = (%v, %v), want (%v, %v)", tc.name, got, ok, tc.want, tc.ok)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := Int(42); v.Kind() != KindInt || v.AsInt() != 42 {
		t.Errorf("Int round trip failed: %v", v)
	}
	if v := Float(2.5); v.Kind() != KindFloat || v.AsFloat() != 2.5 {
		t.Errorf("Float round trip failed: %v", v)
	}
	if v := Str("hi"); v.Kind() != KindString || v.AsString() != "hi" {
		t.Errorf("Str round trip failed: %v", v)
	}
	if v := Bool(true); v.Kind() != KindBool || !v.AsBool() {
		t.Errorf("Bool round trip failed: %v", v)
	}
	now := time.Unix(1234, 5678)
	if v := Time(now); v.Kind() != KindTime || !v.AsTime().Equal(now) {
		t.Errorf("Time round trip failed: %v", v)
	}
	if v := Chronon(99); v.AsChronon() != 99 {
		t.Errorf("Chronon round trip failed: %v", v)
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull misclassified")
	}
	if v := Int(3); v.AsFloat() != 3.0 {
		t.Errorf("Int.AsFloat = %v, want 3", v.AsFloat())
	}
	if !Int(1).IsNumeric() || !Float(1).IsNumeric() || Str("x").IsNumeric() {
		t.Error("IsNumeric misclassified")
	}
}

func TestCompare(t *testing.T) {
	for _, tc := range []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Float(2.5), -1},
		{Int(2), Float(2.0), 0},
		{Float(2.5), Int(2), 1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Bool(false), Bool(true), -1},
		{Chronon(1), Chronon(2), -1},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Null(), Null(), 0},
	} {
		if got := Compare(tc.a, tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
	// Mismatched non-numeric kinds order by kind tag, keeping order total.
	if Compare(Str("z"), Bool(true)) == 0 {
		t.Error("cross-kind comparison must not report equality")
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	vals := sampleValues()
	for _, a := range vals {
		for _, b := range vals {
			if Compare(a, b) != -Compare(b, a) {
				t.Errorf("Compare(%v,%v) not antisymmetric", a, b)
			}
		}
	}
}

func TestCompareTransitivityQuick(t *testing.T) {
	f := func(x, y, z int64) bool {
		a, b, c := Int(x), Float(float64(y)), Int(z)
		vs := []Value{a, b, c}
		// sort the three and check pairwise consistency
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				for k := 0; k < 3; k++ {
					if Compare(vs[i], vs[j]) <= 0 && Compare(vs[j], vs[k]) <= 0 && Compare(vs[i], vs[k]) > 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualValuesHashEqual(t *testing.T) {
	pairs := [][2]Value{
		{Int(2), Float(2.0)},
		{Int(-7), Float(-7.0)},
		{Str("abc"), Str("abc")},
		{Bool(true), Bool(true)},
	}
	for _, p := range pairs {
		if !Equal(p[0], p[1]) {
			t.Fatalf("expected %v == %v", p[0], p[1])
		}
		if p[0].Hash(HashSeed) != p[1].Hash(HashSeed) {
			t.Errorf("equal values %v and %v hash differently", p[0], p[1])
		}
	}
}

func TestHashDistinguishes(t *testing.T) {
	vals := sampleValues()
	for i, a := range vals {
		for j, b := range vals {
			if i == j {
				continue
			}
			if !Equal(a, b) && a.Hash(HashSeed) == b.Hash(HashSeed) {
				t.Errorf("distinct values %v and %v collide (ok rarely, not for this fixed set)", a, b)
			}
		}
	}
}

func TestValueString(t *testing.T) {
	for _, tc := range []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(-5), "-5"},
		{Float(1.5), "1.5"},
		{Str("hey"), "hey"},
		{Bool(false), "false"},
	} {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("%#v.String() = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestEncodeDecodeValueRoundTrip(t *testing.T) {
	for _, v := range sampleValues() {
		enc := AppendValue(nil, v)
		got, n, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("DecodeValue(%v): %v", v, err)
		}
		if n != len(enc) {
			t.Errorf("DecodeValue(%v) consumed %d of %d bytes", v, n, len(enc))
		}
		if !Equal(got, v) || got.Kind() != v.Kind() {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestEncodeDecodeValueQuick(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool) bool {
		for _, v := range []Value{Int(i), Float(fl), Str(s), Bool(b), Chronon(i), Null()} {
			if math.IsNaN(fl) && v.Kind() == KindFloat {
				continue // NaN never compares equal; encoding still round-trips bits
			}
			enc := AppendValue(nil, v)
			got, n, err := DecodeValue(enc)
			if err != nil || n != len(enc) || got.Kind() != v.Kind() || !Equal(got, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeValueErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{byte(KindInt), 1, 2},      // truncated int
		{byte(KindFloat), 1},       // truncated float
		{byte(KindBool)},           // truncated bool
		{byte(KindString), 5, 'a'}, // truncated string
		{200},                      // unknown kind
		{byte(KindString), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, // huge length
	}
	for i, b := range cases {
		if _, _, err := DecodeValue(b); err == nil {
			t.Errorf("case %d: expected error decoding %v", i, b)
		}
	}
}

func TestEncodeDecodeTupleRoundTrip(t *testing.T) {
	tup := Tuple{Int(1), Str("x"), Float(2.5), Bool(true), Null(), Chronon(77)}
	enc := AppendTuple(nil, tup)
	got, n, err := DecodeTuple(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Errorf("consumed %d of %d", n, len(enc))
	}
	if !TuplesEqual(got, tup) {
		t.Errorf("round trip %v -> %v", tup, got)
	}
	// Concatenated tuples decode one at a time.
	enc2 := AppendTuple(enc, Tuple{Int(9)})
	first, n1, err := DecodeTuple(enc2)
	if err != nil || !TuplesEqual(first, tup) {
		t.Fatalf("first decode: %v %v", first, err)
	}
	second, _, err := DecodeTuple(enc2[n1:])
	if err != nil || !TuplesEqual(second, Tuple{Int(9)}) {
		t.Fatalf("second decode: %v %v", second, err)
	}
}

func TestDecodeTupleErrors(t *testing.T) {
	if _, _, err := DecodeTuple(nil); err == nil {
		t.Error("expected error on empty buffer")
	}
	if _, _, err := DecodeTuple([]byte{10, byte(KindInt)}); err == nil {
		t.Error("expected error on arity exceeding buffer")
	}
	if _, _, err := DecodeTuple([]byte{2, byte(KindInt), 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("expected error on truncated second column")
	}
}

func sampleValues() []Value {
	return []Value{
		Null(), Int(0), Int(1), Int(-1), Int(math.MaxInt64), Int(math.MinInt64),
		Float(0.5), Float(-3.25), Float(1e300),
		Str(""), Str("a"), Str("hello world"), Str("\x00binary\xff"),
		Bool(true), Bool(false),
		Chronon(0), Chronon(1700000000000000000),
	}
}

func TestTupleProjectCloneString(t *testing.T) {
	tup := Tuple{Int(1), Str("b"), Float(3)}
	p := tup.Project([]int{2, 0})
	if !TuplesEqual(p, Tuple{Float(3), Int(1)}) {
		t.Errorf("Project = %v", p)
	}
	c := tup.Clone()
	c[0] = Int(99)
	if tup[0].AsInt() != 1 {
		t.Error("Clone aliases original")
	}
	if got := tup.String(); got != "(1, b, 3)" {
		t.Errorf("String = %q", got)
	}
}

func TestTupleKeyInjective(t *testing.T) {
	// Keys of distinct tuples must differ even when string contents could be
	// confused with separators.
	a := Tuple{Str("ab"), Str("c")}
	b := Tuple{Str("a"), Str("bc")}
	if a.FullKey() == b.FullKey() {
		t.Error("FullKey collides for (ab,c) vs (a,bc)")
	}
	c := Tuple{Int(2)}
	d := Tuple{Float(2.0)}
	if c.FullKey() != d.FullKey() {
		t.Error("numerically equal tuples should key equal")
	}
}

func TestTupleKeyQuick(t *testing.T) {
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(7))}
	f := func(a1, b1 int64, a2, b2 string) bool {
		ta := Tuple{Int(a1), Str(a2)}
		tb := Tuple{Int(b1), Str(b2)}
		keysEqual := ta.FullKey() == tb.FullKey()
		tuplesEqual := TuplesEqual(ta, tb)
		return keysEqual == tuplesEqual
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCompareTuples(t *testing.T) {
	for _, tc := range []struct {
		a, b Tuple
		want int
	}{
		{Tuple{Int(1)}, Tuple{Int(2)}, -1},
		{Tuple{Int(1), Str("a")}, Tuple{Int(1), Str("a")}, 0},
		{Tuple{Int(1), Str("b")}, Tuple{Int(1), Str("a")}, 1},
		{Tuple{Int(1)}, Tuple{Int(1), Int(0)}, -1},
	} {
		if got := CompareTuples(tc.a, tc.b); got != tc.want {
			t.Errorf("CompareTuples(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestHashCols(t *testing.T) {
	a := Tuple{Int(1), Str("x"), Int(5)}
	b := Tuple{Int(2), Str("x"), Int(5)}
	if a.HashCols([]int{1, 2}) != b.HashCols([]int{1, 2}) {
		t.Error("HashCols should ignore excluded columns")
	}
	if a.HashCols([]int{0}) == b.HashCols([]int{0}) {
		t.Error("HashCols should reflect included columns")
	}
}
