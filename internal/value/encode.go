package value

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary encoding of values and tuples, used by the write-ahead log and by
// view checkpoints. The format is:
//
//	value:  kind byte, then a kind-specific payload
//	        int/time: 8-byte little-endian two's complement
//	        float:    8-byte little-endian IEEE-754 bits
//	        bool:     1 byte
//	        string:   uvarint length + bytes
//	        null:     no payload
//	tuple:  uvarint column count, then each value
//
// The encoding is self-delimiting, so records can be concatenated.

// AppendValue appends the encoding of v to dst and returns the extended slice.
func AppendValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindInt, KindTime:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.i))
	case KindFloat:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.f))
	case KindBool:
		dst = append(dst, byte(v.i))
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	}
	return dst
}

// DecodeValue decodes one value from the front of b, returning the value and
// the number of bytes consumed.
func DecodeValue(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Value{}, 0, fmt.Errorf("value: empty buffer")
	}
	k := Kind(b[0])
	rest := b[1:]
	switch k {
	case KindNull:
		return Null(), 1, nil
	case KindInt, KindTime:
		if len(rest) < 8 {
			return Value{}, 0, fmt.Errorf("value: truncated %s payload", k)
		}
		i := int64(binary.LittleEndian.Uint64(rest))
		return Value{kind: k, i: i}, 9, nil
	case KindFloat:
		if len(rest) < 8 {
			return Value{}, 0, fmt.Errorf("value: truncated float payload")
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(rest))
		return Float(f), 9, nil
	case KindBool:
		if len(rest) < 1 {
			return Value{}, 0, fmt.Errorf("value: truncated bool payload")
		}
		return Bool(rest[0] != 0), 2, nil
	case KindString:
		n, sz := binary.Uvarint(rest)
		if sz <= 0 {
			return Value{}, 0, fmt.Errorf("value: bad string length")
		}
		if uint64(len(rest)-sz) < n {
			return Value{}, 0, fmt.Errorf("value: truncated string payload")
		}
		s := string(rest[sz : sz+int(n)])
		return Str(s), 1 + sz + int(n), nil
	default:
		return Value{}, 0, fmt.Errorf("value: unknown kind tag %d", b[0])
	}
}

// AppendTuple appends the encoding of t to dst and returns the extended slice.
func AppendTuple(dst []byte, t Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	for _, v := range t {
		dst = AppendValue(dst, v)
	}
	return dst
}

// DecodeTuple decodes one tuple from the front of b, returning the tuple and
// the number of bytes consumed.
func DecodeTuple(b []byte) (Tuple, int, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("value: bad tuple arity")
	}
	if n > uint64(len(b)) {
		// Each value takes at least one byte, so arity can never exceed the
		// remaining buffer; this rejects corrupt headers early.
		return nil, 0, fmt.Errorf("value: tuple arity %d exceeds buffer", n)
	}
	off := sz
	t := make(Tuple, n)
	for i := range t {
		v, used, err := DecodeValue(b[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("value: column %d: %w", i, err)
		}
		t[i] = v
		off += used
	}
	return t, off, nil
}
