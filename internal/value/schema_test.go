package value

import "testing"

func testSchema() *Schema {
	return NewSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "name", Kind: KindString},
		Column{Name: "score", Kind: KindFloat},
	)
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema()
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Col(1).Name != "name" || s.Col(1).Kind != KindString {
		t.Errorf("Col(1) = %v", s.Col(1))
	}
	if i, ok := s.Index("score"); !ok || i != 2 {
		t.Errorf("Index(score) = %d, %v", i, ok)
	}
	if _, ok := s.Index("missing"); ok {
		t.Error("Index(missing) should fail")
	}
	if s.MustIndex("id") != 0 {
		t.Error("MustIndex(id) != 0")
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "id" || names[2] != "score" {
		t.Errorf("Names = %v", names)
	}
	if got := s.String(); got != "(id int, name string, score float)" {
		t.Errorf("String = %q", got)
	}
}

func TestSchemaMustIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustIndex should panic on unknown column")
		}
	}()
	testSchema().MustIndex("nope")
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSchema should panic on duplicate names")
		}
	}()
	NewSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "a", Kind: KindInt})
}

func TestSchemaEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSchema should panic on empty name")
		}
	}()
	NewSchema(Column{Name: "", Kind: KindInt})
}

func TestSchemaEqual(t *testing.T) {
	a := testSchema()
	b := testSchema()
	if !a.Equal(b) {
		t.Error("identical schemas should be equal")
	}
	c := NewSchema(Column{Name: "id", Kind: KindInt})
	if a.Equal(c) {
		t.Error("different arity schemas should differ")
	}
	d := NewSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "name", Kind: KindString},
		Column{Name: "score", Kind: KindInt}, // kind differs
	)
	if a.Equal(d) {
		t.Error("different kinds should differ")
	}
	var nilSchema *Schema
	if nilSchema.Equal(a) || a.Equal(nilSchema) {
		t.Error("nil schema equals only nil")
	}
	if !nilSchema.Equal(nil) {
		t.Error("nil.Equal(nil) should hold")
	}
}

func TestSchemaProjectConcat(t *testing.T) {
	s := testSchema()
	p := s.Project([]int{2, 0})
	if p.Len() != 2 || p.Col(0).Name != "score" || p.Col(1).Name != "id" {
		t.Errorf("Project = %v", p)
	}
	o := NewSchema(Column{Name: "id", Kind: KindInt}, Column{Name: "extra", Kind: KindBool})
	c := s.Concat(o, "r.")
	if c.Len() != 5 {
		t.Fatalf("Concat len = %d", c.Len())
	}
	if _, ok := c.Index("r.id"); !ok {
		t.Error("clashing column should be prefixed")
	}
	if _, ok := c.Index("extra"); !ok {
		t.Error("non-clashing column keeps its name")
	}
}

func TestSchemaValidate(t *testing.T) {
	s := testSchema()
	if err := s.Validate(Tuple{Int(1), Str("x"), Float(0.5)}); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	if err := s.Validate(Tuple{Int(1), Null(), Float(0.5)}); err != nil {
		t.Errorf("null should be allowed: %v", err)
	}
	if err := s.Validate(Tuple{Int(1), Str("x")}); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := s.Validate(Tuple{Str("no"), Str("x"), Float(0.5)}); err == nil {
		t.Error("wrong kind accepted")
	}
}

func TestSchemaFingerprint(t *testing.T) {
	a := testSchema()
	b := testSchema()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical schemas should fingerprint equal")
	}
	c := NewSchema(Column{Name: "id", Kind: KindFloat},
		Column{Name: "name", Kind: KindString},
		Column{Name: "score", Kind: KindFloat})
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("kind change should alter fingerprint")
	}
}
