package value

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a chronicle, relation, or view.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of named, typed columns. Schemas are immutable
// after construction.
type Schema struct {
	cols   []Column
	byName map[string]int
}

// NewSchema builds a schema from the given columns. Column names must be
// unique; NewSchema panics otherwise, since schemas are always constructed
// from validated DDL or from other schemas.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{cols: append([]Column(nil), cols...), byName: make(map[string]int, len(cols))}
	for i, c := range s.cols {
		if c.Name == "" {
			panic("value: empty column name")
		}
		if _, dup := s.byName[c.Name]; dup {
			panic(fmt.Sprintf("value: duplicate column %q", c.Name))
		}
		s.byName[c.Name] = i
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Col returns the i-th column.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Index returns the position of the named column.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// MustIndex is Index for callers that have already validated the name.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.byName[name]
	if !ok {
		panic(fmt.Sprintf("value: unknown column %q", name))
	}
	return i
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.cols))
	for i, c := range s.cols {
		names[i] = c.Name
	}
	return names
}

// Equal reports whether two schemas have identical column names and kinds
// in the same order. The paper's union and difference operators require
// operands "of the same type"; this is that check.
func (s *Schema) Equal(o *Schema) bool {
	if s == nil || o == nil {
		return s == o
	}
	if len(s.cols) != len(o.cols) {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}

// Project returns a new schema containing the columns at the given indexes,
// in the given order.
func (s *Schema) Project(idx []int) *Schema {
	cols := make([]Column, len(idx))
	for i, j := range idx {
		cols[i] = s.cols[j]
	}
	return NewSchema(cols...)
}

// Concat returns a schema with o's columns appended to s's. Name collisions
// on o's side are disambiguated with the given prefix (e.g. "r."); if the
// prefixed name still clashes (the same relation joined twice), a numeric
// suffix keeps names unique.
func (s *Schema) Concat(o *Schema, prefix string) *Schema {
	cols := s.Columns()
	taken := make(map[string]bool, len(cols)+o.Len())
	for _, c := range cols {
		taken[c.Name] = true
	}
	for _, c := range o.cols {
		name := c.Name
		if taken[name] {
			name = prefix + name
		}
		for i := 2; taken[name]; i++ {
			name = fmt.Sprintf("%s%s#%d", prefix, c.Name, i)
		}
		taken[name] = true
		cols = append(cols, Column{Name: name, Kind: c.Kind})
	}
	return NewSchema(cols...)
}

// Validate checks that the tuple matches the schema arity and kinds.
// Null values are allowed in any column.
func (s *Schema) Validate(t Tuple) error {
	if len(t) != len(s.cols) {
		return fmt.Errorf("value: tuple arity %d does not match schema arity %d", len(t), len(s.cols))
	}
	for i, v := range t {
		if v.IsNull() {
			continue
		}
		if v.Kind() != s.cols[i].Kind {
			return fmt.Errorf("value: column %q expects %s, got %s", s.cols[i].Name, s.cols[i].Kind, v.Kind())
		}
	}
	return nil
}

// Coerce returns the tuple with standard numeric widening applied: an
// integer value in a float column becomes a float. Any other kind mismatch
// is reported. The input tuple is not modified; when no coercion is needed
// the original slice is returned unchanged.
func (s *Schema) Coerce(t Tuple) (Tuple, error) {
	if len(t) != len(s.cols) {
		return nil, fmt.Errorf("value: tuple arity %d does not match schema arity %d", len(t), len(s.cols))
	}
	out := t
	for i, v := range t {
		if v.IsNull() || v.Kind() == s.cols[i].Kind {
			continue
		}
		if v.Kind() == KindInt && s.cols[i].Kind == KindFloat {
			if &out[0] == &t[0] {
				out = t.Clone()
			}
			out[i] = Float(float64(v.AsInt()))
			continue
		}
		return nil, fmt.Errorf("value: column %q expects %s, got %s", s.cols[i].Name, s.cols[i].Kind, v.Kind())
	}
	return out, nil
}

// String renders the schema as "(name kind, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Fingerprint returns a stable hash of the schema layout, used by the WAL
// to detect schema drift between a checkpoint and the log.
func (s *Schema) Fingerprint() uint64 {
	h := HashSeed
	for _, c := range s.cols {
		h = fnvUint64(h, fnvString(c.Name))
		h = fnvByte(h, byte(c.Kind))
	}
	return h
}
