package view

import (
	"encoding/binary"
	"fmt"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/keyenc"
	"chronicledb/internal/value"
)

// View checkpoints. Because the chronicle itself is not retained, a view's
// materialization (including aggregation states) is the only durable record
// of past transactional activity; recovery restores the checkpoint and
// replays the WAL suffix. The format is:
//
//	magic "CDBV", version byte
//	schema fingerprint of the expression output (8 bytes LE)
//	mode byte, aggregation count (uvarint)
//	entry count (uvarint), then per entry:
//	  vals tuple, count (uvarint), one state per aggregation spec

const (
	checkpointMagic   = "CDBV"
	checkpointVersion = 1
)

// Checkpoint serializes the view's materialized state. It holds the view
// read lock, so it sees batch boundaries only, never a half-applied
// maintenance batch. A paged view serializes from a fully-faulted COW
// snapshot instead, so the image covers evicted blocks too and stays
// complete even if eviction runs mid-encode.
func (v *View) Checkpoint() []byte {
	var b []byte
	b = append(b, checkpointMagic...)
	b = append(b, checkpointVersion)
	b = binary.LittleEndian.AppendUint64(b, v.def.Expr.Schema().Fingerprint())
	b = append(b, byte(v.def.Mode))
	b = binary.AppendUvarint(b, uint64(len(v.def.Aggs)))
	appendEntry := func(_ []byte, e *entry) bool {
		b = value.AppendTuple(b, e.vals)
		b = binary.AppendUvarint(b, uint64(e.count))
		for i, st := range e.states {
			b = aggregate.AppendState(b, v.def.Aggs[i].Func, st)
		}
		return true
	}
	if v.pg.Load() != nil {
		s := v.scanSnap(nil, nil)
		b = binary.AppendUvarint(b, uint64(s.tree.Len()))
		s.tree.Ascend(appendEntry)
		return b
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	b = binary.AppendUvarint(b, uint64(v.store.len()))
	v.store.ascend(appendEntry)
	return b
}

// RestoreCheckpoint replaces the view's state with a checkpoint previously
// produced by a view with the same definition.
func (v *View) RestoreCheckpoint(data []byte) error {
	if len(data) < len(checkpointMagic)+1+8+1 {
		return fmt.Errorf("view %s: checkpoint truncated", v.def.Name)
	}
	if string(data[:4]) != checkpointMagic {
		return fmt.Errorf("view %s: bad checkpoint magic", v.def.Name)
	}
	if data[4] != checkpointVersion {
		return fmt.Errorf("view %s: unsupported checkpoint version %d", v.def.Name, data[4])
	}
	off := 5
	fp := binary.LittleEndian.Uint64(data[off:])
	off += 8
	if fp != v.def.Expr.Schema().Fingerprint() {
		return fmt.Errorf("view %s: checkpoint schema drift (expression changed since checkpoint)", v.def.Name)
	}
	if Summarize(data[off]) != v.def.Mode {
		return fmt.Errorf("view %s: checkpoint mode mismatch", v.def.Name)
	}
	off++
	nAggs, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return fmt.Errorf("view %s: bad aggregation count", v.def.Name)
	}
	off += n
	if int(nAggs) != len(v.def.Aggs) {
		return fmt.Errorf("view %s: checkpoint has %d aggregations, definition has %d",
			v.def.Name, nAggs, len(v.def.Aggs))
	}
	count, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return fmt.Errorf("view %s: bad entry count", v.def.Name)
	}
	off += n

	fresh := newStore(storeKindOf(v.store))
	var keyBuf []byte
	for i := uint64(0); i < count; i++ {
		vals, used, err := value.DecodeTuple(data[off:])
		if err != nil {
			return fmt.Errorf("view %s: entry %d: %w", v.def.Name, i, err)
		}
		off += used
		c, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return fmt.Errorf("view %s: entry %d: bad count", v.def.Name, i)
		}
		off += n
		e := &entry{vals: vals, count: int64(c)}
		if v.def.Mode == SummarizeGroupBy {
			e.states = make([]aggregate.State, len(v.def.Aggs))
			for j, spec := range v.def.Aggs {
				st, used, err := aggregate.DecodeState(spec.Func, data[off:])
				if err != nil {
					return fmt.Errorf("view %s: entry %d state %d: %w", v.def.Name, i, j, err)
				}
				e.states[j] = st
				off += used
			}
		}
		keyBuf = keyenc.AppendTuple(keyBuf[:0], e.vals)
		fresh.set(keyBuf, e)
	}
	if off != len(data) {
		return fmt.Errorf("view %s: %d trailing checkpoint bytes", v.def.Name, len(data)-off)
	}
	v.mu.Lock()
	if cur, ok := v.store.(*hashStore); ok {
		// Hash readers reach the table through v.store without any lock,
		// so the store pointer must never change once published: install
		// the fresh entries and adopt the new table in place.
		f := fresh.(*hashStore)
		f.publish()
		cur.adopt(f)
	} else {
		v.store = fresh
	}
	if p := v.pg.Load(); p != nil {
		// A whole-image restore (legacy checkpoint during conversion)
		// collapses the pager to one resident dirty block spanning the
		// key space; the next blocked checkpoint re-cuts it.
		p.cache.dropView(v)
		b := &blockMeta{resident: true}
		v.store.ascend(func(k []byte, e *entry) bool {
			b.n++
			b.bytes += estEntryBytes(k, e)
			return true
		})
		p.mark++
		b.dirtyMark = p.mark
		b.hot.Store(true)
		p.blocks = []*blockMeta{b}
		p.nonResident.Store(0)
		p.total.Store(int64(b.n))
		p.cache.addResident(v, b)
	}
	v.publishLocked()
	v.mu.Unlock()
	return nil
}

// Restored entries are re-keyed by e.vals.FullKey(): projection views key
// by the whole projected tuple and group-by views by the group columns,
// which are exactly e.vals in both cases (matching Apply's keying).

func storeKindOf(s store) StoreKind {
	if _, ok := s.(*treeStore); ok {
		return StoreBTree
	}
	return StoreHash
}
