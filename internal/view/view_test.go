package view

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/algebra"
	"chronicledb/internal/chronicle"
	"chronicledb/internal/pred"
	"chronicledb/internal/relation"
	"chronicledb/internal/value"
)

// fixture mirrors the algebra test scenario.
type fixture struct {
	group *chronicle.Group
	calls *chronicle.Chronicle
	cust  *relation.Relation
	lsn   uint64
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	g := chronicle.NewGroup("telecom")
	calls, err := g.NewChronicle("calls", value.NewSchema(
		value.Column{Name: "acct", Kind: value.KindString},
		value.Column{Name: "minutes", Kind: value.KindInt},
	), chronicle.RetainAll)
	if err != nil {
		t.Fatal(err)
	}
	cust, err := relation.New("customers", value.NewSchema(
		value.Column{Name: "acct", Kind: value.KindString},
		value.Column{Name: "state", Kind: value.KindString},
	), []int{0}, true)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{group: g, calls: calls, cust: cust}
}

func (f *fixture) nextLSN() uint64 { f.lsn++; return f.lsn }

func (f *fixture) appendCall(t testing.TB, acct string, minutes int64) algebra.BatchDelta {
	t.Helper()
	rows, err := f.calls.Append(f.group.NextSN(), 0, f.nextLSN(),
		[]value.Tuple{{value.Str(acct), value.Int(minutes)}})
	if err != nil {
		t.Fatal(err)
	}
	return algebra.BatchDelta{f.calls: rows}
}

// minutesPerAcct is the canonical example view: total minutes per account.
func minutesPerAcct(t testing.TB, f *fixture, kind StoreKind) *View {
	t.Helper()
	v, err := New(Def{
		Name:      "minutes_per_acct",
		Expr:      algebra.NewScan(f.calls),
		Mode:      SummarizeGroupBy,
		GroupCols: []int{0},
		Aggs: []aggregate.Spec{
			{Func: aggregate.Sum, Col: 1, Name: "total"},
			{Func: aggregate.Count, Col: -1, Name: "n"},
		},
	}, kind)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestNewValidation(t *testing.T) {
	f := newFixture(t)
	scan := algebra.NewScan(f.calls)
	cases := []Def{
		{},          // no name
		{Name: "v"}, // no expr
		{Name: "v", Expr: scan, Mode: SummarizeProject},                 // no cols
		{Name: "v", Expr: scan, Mode: SummarizeProject, Cols: []int{7}}, // bad col
		{Name: "v", Expr: scan, Mode: SummarizeGroupBy},                 // no aggs
		{Name: "v", Expr: scan, Mode: SummarizeGroupBy, GroupCols: []int{7}, // bad group col
			Aggs: []aggregate.Spec{{Func: aggregate.Count, Col: -1, Name: "n"}}},
		{Name: "v", Expr: scan, Mode: SummarizeGroupBy, // bad agg col
			Aggs: []aggregate.Spec{{Func: aggregate.Sum, Col: 7, Name: "s"}}},
		{Name: "v", Expr: scan, Mode: SummarizeGroupBy, // unnamed agg
			Aggs: []aggregate.Spec{{Func: aggregate.Sum, Col: 1}}},
		{Name: "v", Expr: scan, Mode: Summarize(9), Cols: []int{0}}, // bad mode
	}
	for i, def := range cases {
		if _, err := New(def, StoreHash); err == nil {
			t.Errorf("case %d: invalid definition accepted: %+v", i, def)
		}
	}
}

func TestGroupByViewBasics(t *testing.T) {
	f := newFixture(t)
	v := minutesPerAcct(t, f, StoreHash)
	if v.Name() != "minutes_per_acct" || v.Len() != 0 {
		t.Fatal("fresh view state")
	}
	if got := v.Schema().Names(); got[0] != "acct" || got[1] != "total" || got[2] != "n" {
		t.Errorf("schema = %v", got)
	}
	v.Apply(f.appendCall(t, "a", 10))
	v.Apply(f.appendCall(t, "b", 5))
	v.Apply(f.appendCall(t, "a", 20))
	if v.Len() != 2 {
		t.Errorf("Len = %d", v.Len())
	}
	got, ok := v.Lookup(value.Tuple{value.Str("a")})
	if !ok || got[1].AsInt() != 30 || got[2].AsInt() != 2 {
		t.Errorf("Lookup(a) = %v, %v", got, ok)
	}
	if _, ok := v.Lookup(value.Tuple{value.Str("zz")}); ok {
		t.Error("Lookup of absent group succeeded")
	}
	st := v.Stats()
	if st.Applies != 3 || st.DeltaRows != 3 || st.Touched != 3 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestProjectViewRefcounts(t *testing.T) {
	f := newFixture(t)
	// Distinct accounts that ever placed a call.
	v, err := New(Def{
		Name: "active_accts",
		Expr: algebra.NewScan(f.calls),
		Mode: SummarizeProject,
		Cols: []int{0},
	}, StoreBTree)
	if err != nil {
		t.Fatal(err)
	}
	v.Apply(f.appendCall(t, "b", 1))
	v.Apply(f.appendCall(t, "a", 2))
	v.Apply(f.appendCall(t, "a", 3))
	rows := v.Rows()
	if len(rows) != 2 {
		t.Fatalf("Rows = %v (duplicates must be eliminated)", rows)
	}
	// BTree store scans in key order.
	if rows[0][0].AsString() != "a" || rows[1][0].AsString() != "b" {
		t.Errorf("Rows order = %v", rows)
	}
	if _, ok := v.Lookup(value.Tuple{value.Str("a")}); !ok {
		t.Error("Lookup(a) failed")
	}
}

func TestViewOverSelection(t *testing.T) {
	f := newFixture(t)
	sel, err := algebra.NewSelect(algebra.NewScan(f.calls), pred.Or(pred.ColConst(1, pred.Ge, value.Int(10))))
	if err != nil {
		t.Fatal(err)
	}
	v, err := New(Def{
		Name:      "long_calls",
		Expr:      sel,
		Mode:      SummarizeGroupBy,
		GroupCols: []int{0},
		Aggs:      []aggregate.Spec{{Func: aggregate.Count, Col: -1, Name: "n"}},
	}, StoreHash)
	if err != nil {
		t.Fatal(err)
	}
	v.Apply(f.appendCall(t, "a", 5)) // filtered out
	v.Apply(f.appendCall(t, "a", 50))
	got, ok := v.Lookup(value.Tuple{value.Str("a")})
	if !ok || got[1].AsInt() != 1 {
		t.Errorf("Lookup = %v, %v", got, ok)
	}
}

func TestViewClassification(t *testing.T) {
	f := newFixture(t)
	v := minutesPerAcct(t, f, StoreHash)
	if v.Lang() != algebra.LangCA1 || v.IMClass() != algebra.IMConstant {
		t.Errorf("SCA1 view classified %s/%s", v.Lang(), v.IMClass())
	}
	jr, err := algebra.NewJoinRel(algebra.NewScan(f.calls), f.cust, []int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := New(Def{
		Name: "with_state", Expr: jr, Mode: SummarizeGroupBy,
		GroupCols: []int{3},
		Aggs:      []aggregate.Spec{{Func: aggregate.Sum, Col: 1, Name: "total"}},
	}, StoreHash)
	if err != nil {
		t.Fatal(err)
	}
	if v2.IMClass() != algebra.IMLogR {
		t.Errorf("SCA⋈ view classified %s", v2.IMClass())
	}
}

func TestSummarizeString(t *testing.T) {
	if SummarizeProject.String() != "project" || SummarizeGroupBy.String() != "groupby" {
		t.Error("Summarize strings")
	}
	if StoreHash.String() != "hash" || StoreBTree.String() != "btree" {
		t.Error("StoreKind strings")
	}
}

// TestIncrementalMatchesRecompute is the golden invariant at the view level
// for both store kinds and both summarization modes, on a random stream.
func TestIncrementalMatchesRecompute(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		f := newFixture(t)
		f.cust.Upsert(f.nextLSN(), value.Tuple{value.Str("a"), value.Str("nj")})
		f.cust.Upsert(f.nextLSN(), value.Tuple{value.Str("b"), value.Str("ny")})

		jr, err := algebra.NewJoinRel(algebra.NewScan(f.calls), f.cust, []int{0}, []int{0})
		if err != nil {
			t.Fatal(err)
		}
		views := []*View{
			minutesPerAcct(t, f, StoreHash),
			minutesPerAcct(t, f, StoreBTree),
			mustNew(t, Def{
				Name: "accts", Expr: algebra.NewScan(f.calls),
				Mode: SummarizeProject, Cols: []int{0},
			}, StoreHash),
			mustNew(t, Def{
				Name: "state_minutes", Expr: jr, Mode: SummarizeGroupBy,
				GroupCols: []int{3},
				Aggs: []aggregate.Spec{
					{Func: aggregate.Sum, Col: 1, Name: "total"},
					{Func: aggregate.Min, Col: 1, Name: "shortest"},
					{Func: aggregate.Max, Col: 1, Name: "longest"},
					{Func: aggregate.Avg, Col: 1, Name: "mean"},
				},
			}, StoreBTree),
		}

		rng := rand.New(rand.NewSource(seed))
		states := []string{"nj", "ny", "ca"}
		for step := 0; step < 150; step++ {
			if rng.Intn(5) == 0 { // proactive relation update
				acct := string(rune('a' + rng.Intn(3)))
				f.cust.Upsert(f.nextLSN(), value.Tuple{value.Str(acct), value.Str(states[rng.Intn(3)])})
				continue
			}
			d := f.appendCall(t, string(rune('a'+rng.Intn(3))), int64(rng.Intn(60)))
			for _, v := range views {
				v.Apply(d)
			}
		}

		for _, v := range views {
			want, err := v.Recompute()
			if err != nil {
				t.Fatalf("%s: %v", v.Name(), err)
			}
			got := v.Rows()
			if !sameTuples(got, want) {
				t.Errorf("seed %d view %s: incremental %v != recompute %v", seed, v.Name(), got, want)
			}
		}
	}
}

func mustNew(t testing.TB, def Def, kind StoreKind) *View {
	t.Helper()
	v, err := New(def, kind)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func sameTuples(a, b []value.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i := range a {
		ka[i] = a[i].FullKey()
		kb[i] = b[i].FullKey()
	}
	sort.Strings(ka)
	sort.Strings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

func TestCheckpointRoundTrip(t *testing.T) {
	f := newFixture(t)
	for _, kind := range []StoreKind{StoreHash, StoreBTree} {
		for _, mode := range []Summarize{SummarizeGroupBy, SummarizeProject} {
			def := Def{Name: fmt.Sprintf("v_%s_%s", kind, mode), Expr: algebra.NewScan(f.calls)}
			if mode == SummarizeGroupBy {
				def.Mode = SummarizeGroupBy
				def.GroupCols = []int{0}
				def.Aggs = []aggregate.Spec{
					{Func: aggregate.Sum, Col: 1, Name: "total"},
					{Func: aggregate.Avg, Col: 1, Name: "mean"},
				}
			} else {
				def.Mode = SummarizeProject
				def.Cols = []int{0}
			}
			v := mustNew(t, def, kind)
			for i := 0; i < 20; i++ {
				v.Apply(f.appendCall(t, string(rune('a'+i%4)), int64(i)))
			}
			snap := v.Checkpoint()

			v2 := mustNew(t, def, kind)
			if err := v2.RestoreCheckpoint(snap); err != nil {
				t.Fatalf("%s: restore: %v", def.Name, err)
			}
			if !sameTuples(v.Rows(), v2.Rows()) {
				t.Fatalf("%s: restore mismatch:\n%v\nvs\n%v", def.Name, v.Rows(), v2.Rows())
			}
			// The restored view must keep maintaining correctly.
			d := f.appendCall(t, "a", 100)
			v.Apply(d)
			v2.Apply(d)
			if !sameTuples(v.Rows(), v2.Rows()) {
				t.Fatalf("%s: diverged after post-restore append", def.Name)
			}
		}
	}
}

func TestCheckpointErrors(t *testing.T) {
	f := newFixture(t)
	v := minutesPerAcct(t, f, StoreHash)
	v.Apply(f.appendCall(t, "a", 1))
	snap := v.Checkpoint()

	if err := v.RestoreCheckpoint(nil); err == nil {
		t.Error("empty checkpoint accepted")
	}
	bad := append([]byte("XXXX"), snap[4:]...)
	if err := v.RestoreCheckpoint(bad); err == nil {
		t.Error("bad magic accepted")
	}
	badVer := append([]byte(nil), snap...)
	badVer[4] = 99
	if err := v.RestoreCheckpoint(badVer); err == nil {
		t.Error("bad version accepted")
	}
	truncated := snap[:len(snap)-3]
	if err := v.RestoreCheckpoint(truncated); err == nil {
		t.Error("truncated checkpoint accepted")
	}
	trailing := append(append([]byte(nil), snap...), 0xAB)
	if err := v.RestoreCheckpoint(trailing); err == nil {
		t.Error("trailing garbage accepted")
	}
	// Schema drift: a view over a different schema rejects the checkpoint.
	g2 := chronicle.NewGroup("g2")
	other, _ := g2.NewChronicle("other", value.NewSchema(
		value.Column{Name: "x", Kind: value.KindInt},
	), chronicle.RetainAll)
	v2 := mustNew(t, Def{
		Name: "v2", Expr: algebra.NewScan(other), Mode: SummarizeGroupBy,
		GroupCols: []int{0},
		Aggs:      []aggregate.Spec{{Func: aggregate.Count, Col: -1, Name: "n"}},
	}, StoreHash)
	if err := v2.RestoreCheckpoint(snap); err == nil {
		t.Error("schema drift accepted")
	}
	// Aggregation count mismatch.
	v3 := mustNew(t, Def{
		Name: "v3", Expr: algebra.NewScan(f.calls), Mode: SummarizeGroupBy,
		GroupCols: []int{0},
		Aggs:      []aggregate.Spec{{Func: aggregate.Count, Col: -1, Name: "n"}},
	}, StoreHash)
	if err := v3.RestoreCheckpoint(snap); err == nil {
		t.Error("agg count mismatch accepted")
	}
	// A failed restore must leave the original state intact.
	if got, ok := v.Lookup(value.Tuple{value.Str("a")}); !ok || got[1].AsInt() != 1 {
		t.Errorf("view state damaged by failed restores: %v, %v", got, ok)
	}
}

func TestRecomputeFailsOnLossyChronicle(t *testing.T) {
	g := chronicle.NewGroup("g")
	c, _ := g.NewChronicle("c", value.NewSchema(
		value.Column{Name: "k", Kind: value.KindString},
		value.Column{Name: "x", Kind: value.KindInt},
	), chronicle.RetainNone)
	v := mustNew(t, Def{
		Name: "v", Expr: algebra.NewScan(c), Mode: SummarizeGroupBy,
		GroupCols: []int{0},
		Aggs:      []aggregate.Spec{{Func: aggregate.Sum, Col: 1, Name: "s"}},
	}, StoreHash)
	rows, err := c.Append(0, 0, 1, []value.Tuple{{value.Str("a"), value.Int(5)}})
	if err != nil {
		t.Fatal(err)
	}
	v.Apply(algebra.BatchDelta{c: rows})
	// The view is correct even though the chronicle stored nothing …
	if got, ok := v.Lookup(value.Tuple{value.Str("a")}); !ok || got[1].AsInt() != 5 {
		t.Errorf("view over RetainNone chronicle = %v, %v", got, ok)
	}
	// … and recomputation is impossible, which is the whole point.
	if _, err := v.Recompute(); err == nil {
		t.Error("Recompute over a RetainNone chronicle must fail")
	}
}

func TestScanRange(t *testing.T) {
	f := newFixture(t)
	for _, kind := range []StoreKind{StoreBTree, StoreHash} {
		v := mustNew(t, Def{
			Name: fmt.Sprintf("ranged_%s", kind), Expr: algebra.NewScan(f.calls),
			Mode: SummarizeGroupBy, GroupCols: []int{0},
			Aggs: []aggregate.Spec{{Func: aggregate.Sum, Col: 1, Name: "total"}},
		}, kind)
		for _, acct := range []string{"delta", "alpha", "echo", "bravo", "charlie"} {
			v.Apply(f.appendCall(t, acct, 1))
		}
		var got []string
		v.ScanRange(value.Tuple{value.Str("b")}, value.Tuple{value.Str("d")}, func(t value.Tuple) bool {
			got = append(got, t[0].AsString())
			return true
		})
		if len(got) != 2 || got[0] != "bravo" || got[1] != "charlie" {
			t.Errorf("%s: ScanRange = %v", kind, got)
		}
		// Early stop.
		count := 0
		v.ScanRange(value.Tuple{value.Str("a")}, value.Tuple{value.Str("z")}, func(value.Tuple) bool {
			count++
			return false
		})
		if count != 1 {
			t.Errorf("%s: early stop visited %d", kind, count)
		}
		// Empty range.
		got = got[:0]
		v.ScanRange(value.Tuple{value.Str("x")}, value.Tuple{value.Str("y")}, func(t value.Tuple) bool {
			got = append(got, t[0].AsString())
			return true
		})
		if len(got) != 0 {
			t.Errorf("%s: empty range = %v", kind, got)
		}
	}
}

func TestScanOrderIsTupleOrder(t *testing.T) {
	// With the order-preserving key encoding, both stores scan in group-key
	// order — including numerically across int groups.
	g := chronicle.NewGroup("g")
	c, _ := g.NewChronicle("nums", value.NewSchema(
		value.Column{Name: "n", Kind: value.KindInt},
	), chronicle.RetainNone)
	for _, kind := range []StoreKind{StoreBTree, StoreHash} {
		v := mustNew(t, Def{
			Name: fmt.Sprintf("byn_%s", kind), Expr: algebra.NewScan(c),
			Mode: SummarizeGroupBy, GroupCols: []int{0},
			Aggs: []aggregate.Spec{{Func: aggregate.Count, Col: -1, Name: "cnt"}},
		}, kind)
		for _, n := range []int64{10, -3, 200, 0, -40} {
			v.ApplyRows([]chronicle.Row{{SN: n, Vals: value.Tuple{value.Int(n)}}})
		}
		var got []int64
		v.Scan(func(t value.Tuple) bool { got = append(got, t[0].AsInt()); return true })
		want := []int64{-40, -3, 0, 10, 200}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: scan order = %v, want %v", kind, got, want)
			}
		}
	}
}
