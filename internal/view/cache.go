package view

import (
	"sync"
	"sync/atomic"
)

// Cache is the process-wide bounded block cache shared by every paged
// view (across shard engines — the shards share one budget). It tracks
// which blocks are resident and approximately how many bytes they pin,
// and evicts cold clean blocks with a CLOCK sweep once the budget is
// exceeded, so total view state can exceed RAM while the resident set
// stays bounded.
//
// Lock ordering: a view's mu may be held when taking c.mu (page-in
// registers residency), never the reverse — maintain picks a victim under
// c.mu, releases it, and only then calls the owning view's evictBlock,
// which re-verifies the block is still resident, clean, and evictable
// under that view's mu.
type Cache struct {
	budget int64 // resident-byte budget; <= 0 means unbounded

	mu    sync.Mutex
	slots []cslot
	idx   map[*blockMeta]int
	hand  int

	used      atomic.Int64 // Σ bytes of resident blocks
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cslot struct {
	v *View
	b *blockMeta
}

// NewCache returns a block cache with the given resident-byte budget;
// budget <= 0 disables eviction (track-only).
func NewCache(budget int64) *Cache {
	return &Cache{budget: budget, idx: make(map[*blockMeta]int)}
}

// Budget returns the configured resident-byte budget (0 = unbounded).
func (c *Cache) Budget() int64 {
	if c.budget < 0 {
		return 0
	}
	return c.budget
}

// UsedBytes returns the bytes currently pinned by resident blocks.
func (c *Cache) UsedBytes() int64 { return c.used.Load() }

// Hits returns block-cache hits (paged reads served from memory).
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses returns block-cache misses (block faults from the chain).
func (c *Cache) Misses() int64 { return c.misses.Load() }

// Evictions returns how many blocks the CLOCK sweep has evicted.
func (c *Cache) Evictions() int64 { return c.evictions.Load() }

// addResident registers a block that just became resident, charging its
// current byte estimate. Callers hold the owning view's mu.
func (c *Cache) addResident(v *View, b *blockMeta) {
	c.mu.Lock()
	if _, ok := c.idx[b]; !ok {
		c.idx[b] = len(c.slots)
		c.slots = append(c.slots, cslot{v: v, b: b})
		c.used.Add(b.bytes)
	}
	c.mu.Unlock()
}

// grow charges delta bytes against the budget (an insert into an
// already-resident block).
func (c *Cache) grow(delta int64) { c.used.Add(delta) }

// updateBytes re-points a resident block's charge at its exact re-encoded
// size (checkpoint encode recomputes it). Callers hold the view's mu.
func (c *Cache) updateBytes(b *blockMeta, bytes int64) {
	c.used.Add(bytes - b.bytes)
	b.bytes = bytes
}

// removeLocked drops slot i, fixing up the swapped-in index.
func (c *Cache) removeLocked(i int) {
	delete(c.idx, c.slots[i].b)
	last := len(c.slots) - 1
	if i != last {
		c.slots[i] = c.slots[last]
		c.idx[c.slots[i].b] = i
	}
	c.slots = c.slots[:last]
	if c.hand > last {
		c.hand = 0
	}
}

// dropResident unregisters a block that is no longer resident (eviction,
// or replacement during restore/split). Callers hold the view's mu.
func (c *Cache) dropResident(b *blockMeta) {
	c.mu.Lock()
	if i, ok := c.idx[b]; ok {
		c.used.Add(-b.bytes)
		c.removeLocked(i)
	}
	c.mu.Unlock()
}

// replaceBlock swaps a resident block for the sub-blocks a checkpoint
// re-cut split it into. Callers hold the view's mu; subs are resident.
func (c *Cache) replaceBlock(v *View, old *blockMeta, subs []*blockMeta) {
	c.mu.Lock()
	if i, ok := c.idx[old]; ok {
		c.used.Add(-old.bytes)
		c.removeLocked(i)
	}
	for _, b := range subs {
		if _, ok := c.idx[b]; !ok {
			c.idx[b] = len(c.slots)
			c.slots = append(c.slots, cslot{v: v, b: b})
			c.used.Add(b.bytes)
		}
	}
	c.mu.Unlock()
}

// dropView unregisters every block of a view (DropView, restore).
// Callers hold the view's mu.
func (c *Cache) dropView(v *View) {
	c.mu.Lock()
	for i := 0; i < len(c.slots); {
		if c.slots[i].v == v {
			c.used.Add(-c.slots[i].b.bytes)
			c.removeLocked(i)
			continue // a new slot was swapped into i
		}
		i++
	}
	c.mu.Unlock()
}

// Maintain runs the eviction sweep on demand. Checkpoint commit calls it:
// blocks that piled up during a write burst are dirty and unevictable
// until the cut makes them clean, so without this the resident set would
// stay over budget until the next read fault happened to trigger a sweep.
func (c *Cache) Maintain() { c.maintain() }

// maintain runs the CLOCK sweep until residency fits the budget or no
// block is evictable (dirty blocks are pinned until the next checkpoint).
// Callers must NOT hold any view's mu: maintain takes the victim view's
// mu itself during eviction.
func (c *Cache) maintain() {
	if c == nil || c.budget <= 0 {
		return
	}
	attempts := 0
	for c.used.Load() > c.budget {
		c.mu.Lock()
		n := len(c.slots)
		if n == 0 {
			c.mu.Unlock()
			return
		}
		if attempts >= 2*n+8 {
			c.mu.Unlock()
			return // everything left is hot or dirty; give up this round
		}
		var victim cslot
		for ; attempts < 2*n+8; attempts++ {
			s := c.slots[c.hand%n]
			c.hand = (c.hand + 1) % n
			if s.b.hot.CompareAndSwap(true, false) {
				continue // referenced since last sweep: spare it one lap
			}
			victim = s
			attempts++ // a failed eviction must consume budget too
			break
		}
		c.mu.Unlock()
		if victim.b == nil {
			return
		}
		// Evict outside c.mu; the view re-verifies under its own mu,
		// unregisters the block itself (so a concurrent re-fault can't
		// interleave with the bookkeeping), and reports 0 if the block is
		// stale, dirty, or already gone. Progress renews the attempt
		// budget — the bound only guards against laps that free nothing.
		if freed := victim.v.evictBlock(victim.b); freed > 0 {
			c.evictions.Add(1)
			attempts = 0
		}
	}
}
