package view

import (
	"bytes"
	"testing"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/value"
)

// fuzzAggs matches the minutes_per_acct fixture: SUM + COUNT over int col 1.
var fuzzAggs = []aggregate.Spec{
	{Func: aggregate.Sum, Col: 1, Name: "total"},
	{Func: aggregate.Count, Col: -1, Name: "n"},
}

// sealTestBlock encodes entries the way encodeBlockRun does.
func sealTestBlock(entries []*entry) []byte {
	var body []byte
	for _, e := range entries {
		body = appendBlockEntry(body, e, fuzzAggs)
	}
	return sealBlock(nil, body, len(entries))
}

func fuzzEntry(acct string, total, n int64) *entry {
	sum := aggregate.NewState(aggregate.Sum)
	cnt := aggregate.NewState(aggregate.Count)
	for i := int64(0); i < n; i++ {
		share := total / n
		if i == 0 {
			share += total % n
		}
		sum.Step(value.Int(share))
		cnt.Step(value.Int(share))
	}
	return &entry{
		vals:   value.Tuple{value.Str(acct)},
		count:  n,
		states: []aggregate.State{sum, cnt},
	}
}

// FuzzBlock: decodeBlock must never panic on arbitrary bytes; payloads it
// accepts must re-encode to the identical payload (lossless round-trip);
// and any torn or bit-flipped variant of a valid payload must be rejected
// by the CRC trailer, never half-applied.
func FuzzBlock(f *testing.F) {
	f.Add(sealTestBlock(nil))
	f.Add(sealTestBlock([]*entry{fuzzEntry("acct0001", 30, 2)}))
	f.Add(sealTestBlock([]*entry{
		fuzzEntry("a", 1, 1),
		fuzzEntry("acct0042", 9000, 7),
		fuzzEntry("zzz", -5, 3),
	}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := decodeBlock(data, SummarizeGroupBy, fuzzAggs)
		if err != nil {
			return
		}
		// Accepted: the payload must round-trip byte-for-byte.
		re := sealTestBlock(entries)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted block does not round-trip:\n in  %x\n out %x", data, re)
		}
		// Torn writes (any truncation) must be rejected.
		for _, cut := range []int{1, 4, len(data) / 2} {
			if cut < len(data) {
				if _, err := decodeBlock(data[:len(data)-cut], SummarizeGroupBy, fuzzAggs); err == nil {
					t.Fatalf("torn block (%d bytes cut) decoded without error", cut)
				}
			}
		}
		// Any single bit flip must fail the CRC.
		if len(data) > 0 {
			flipped := bytes.Clone(data)
			flipped[len(flipped)/2] ^= 0x10
			if _, err := decodeBlock(flipped, SummarizeGroupBy, fuzzAggs); err == nil {
				t.Fatal("bit-flipped block decoded without error")
			}
		}
	})
}
