package view

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"chronicledb/internal/keyenc"
	"chronicledb/internal/value"
)

// The pager turns a B-tree view store into a blocked persistent store:
// the key space is partitioned into fixed-target-size blocks bounded by
// memcomparable separator keys, each block independently dirty-tracked,
// checkpointed, evicted, and faulted back in. The live tree only holds
// resident blocks' entries; the published COW snapshot therefore covers
// the resident set, and readers that miss it fall to a slow path that
// faults the covering block from the checkpoint chain.
//
// Invariants (all block state transitions happen under the view's mu):
//
//   - dirty ⇒ resident: a write faults the covering block first, so a
//     dirty block's entries are always in the live tree and a checkpoint
//     can re-encode it from memory.
//   - evictable ⇒ clean with a durable ref: eviction only drops entries
//     that the checkpoint chain can reproduce byte-for-byte.
//   - blocks[0].lo == nil (-∞); blocks ascend strictly by lo, so every
//     key maps to exactly one block (the greatest lo ≤ key).

// blockMeta is the in-memory descriptor of one block.
type blockMeta struct {
	lo        []byte // inclusive lower bound; nil on the first block = -∞
	n         int    // logical entries attributed to the block
	bytes     int64  // encoded size: exact after a checkpoint, estimated between
	resident  bool   // entries present in the live tree
	dirtyMark uint64 // pager clock at last write into the block
	ckptMark  uint64 // pager clock at last durably committed encode
	ref       *BlockRef
	hot       atomic.Bool // CLOCK reference bit: set on fault and write
}

// dirty reports whether the block changed since its last committed
// checkpoint image (a block with no durable image at all is dirty).
func (b *blockMeta) dirty() bool { return b.ref == nil || b.dirtyMark > b.ckptMark }

// pager is the per-view paging state. blocks and every blockMeta field
// except hot are guarded by the owning view's mu; nonResident and total
// are atomics so the hot read path can skip the slow path without locks.
type pager struct {
	blockBytes  int64
	fetch       FetchFunc
	cache       *Cache
	blocks      []*blockMeta
	mark        uint64 // monotonic write clock feeding dirtyMark/ckptMark
	nonResident atomic.Int64
	total       atomic.Int64 // logical entries across all blocks
}

// blockFor returns the index of the block covering key: the greatest
// blocks[i].lo ≤ key. Hand-written binary search — the write hot path
// calls this per row and must not allocate a closure.
func (p *pager) blockFor(key []byte) int {
	i, j := 1, len(p.blocks)
	for i < j {
		m := int(uint(i+j) >> 1)
		if bytes.Compare(p.blocks[m].lo, key) <= 0 {
			i = m + 1
		} else {
			j = m
		}
	}
	return i - 1
}

// estEntryBytes is the insert-time estimate of an entry's encoded size;
// each checkpoint replaces estimates with exact encoded sizes.
func estEntryBytes(key []byte, e *entry) int64 {
	return int64(len(key) + 8 + 10*len(e.states))
}

// EnablePaging converts a B-tree view into a blocked persistent store
// with the given target block size (≤0 selects DefaultBlockBytes), block
// fetcher, and shared cache. Must be called before the view is visible to
// concurrent readers (the engine calls it at CreateView, before
// backfill); no-op for hash views and views already paged.
func (v *View) EnablePaging(blockBytes int64, fetch FetchFunc, cache *Cache) {
	ts, ok := v.store.(*treeStore)
	if !ok || fetch == nil || cache == nil {
		return
	}
	if blockBytes <= 0 {
		blockBytes = DefaultBlockBytes
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.pg.Load() != nil {
		return
	}
	p := &pager{blockBytes: blockBytes, fetch: fetch, cache: cache}
	b := &blockMeta{resident: true}
	ts.t.Ascend(func(k []byte, e *entry) bool {
		b.n++
		b.bytes += estEntryBytes(k, e)
		return true
	})
	p.mark++
	b.dirtyMark = p.mark
	b.hot.Store(true)
	p.blocks = []*blockMeta{b}
	p.total.Store(int64(b.n))
	cache.addResident(v, b)
	v.pg.Store(p)
}

// Paged reports whether the view runs on a blocked persistent store.
func (v *View) Paged() bool { return v.pg.Load() != nil }

// ReleasePaging detaches the view from its cache (DropView).
func (v *View) ReleasePaging() {
	v.mu.Lock()
	if p := v.pg.Load(); p != nil {
		p.cache.dropView(v)
		v.pg.Store(nil)
	}
	v.mu.Unlock()
}

// ensureWrite faults in the block covering key (writes require residency
// so checkpoint can re-encode from memory) and stamps it dirty and hot.
// Caller holds v.mu.
func (v *View) ensureWrite(p *pager, key []byte) *blockMeta {
	b := p.blocks[p.blockFor(key)]
	if !b.resident {
		v.pageIn(p, b)
	}
	p.mark++
	b.dirtyMark = p.mark
	b.hot.Store(true)
	return b
}

// noteInsert attributes a fresh entry to its covering block. Caller holds
// v.mu.
func (v *View) noteInsert(p *pager, b *blockMeta, key []byte, e *entry) {
	est := estEntryBytes(key, e)
	b.n++
	b.bytes += est
	p.total.Add(1)
	p.cache.grow(est)
}

// pageIn faults one block from the checkpoint chain into the live tree.
// Caller holds v.mu. A failure here panics: the manifest invariant keeps
// every referenced chain file on disk until a newer image replaces it, so
// a failed fetch means the store is gone or corrupted underneath us — and
// on the write path the WAL record was already durable before ApplyRows,
// so there is no caller that could meaningfully continue.
func (v *View) pageIn(p *pager, b *blockMeta) {
	data, err := p.fetch(*b.ref)
	if err != nil {
		panic(fmt.Sprintf("view %s: block fault %s@%d+%d: %v",
			v.def.Name, b.ref.File, b.ref.Off, b.ref.Len, err))
	}
	entries, err := decodeBlock(data, v.def.Mode, v.def.Aggs)
	if err != nil {
		panic(fmt.Sprintf("view %s: block %s@%d+%d corrupt: %v",
			v.def.Name, b.ref.File, b.ref.Off, b.ref.Len, err))
	}
	ts := v.store.(*treeStore)
	var keyBuf []byte
	for _, e := range entries {
		e.epoch = v.epoch
		keyBuf = keyenc.AppendTuple(keyBuf[:0], e.vals)
		ts.set(keyBuf, e)
	}
	b.resident = true
	b.hot.Store(true)
	p.nonResident.Add(-1)
	p.cache.misses.Add(1)
	p.cache.addResident(v, b)
}

// evictBlock drops a clean block's entries from the live tree and
// publishes the shrunken snapshot, returning the bytes freed (0 when the
// block turns out to be stale, dirty, or already evicted — the cache's
// CLOCK sweep calls this without holding any lock and re-verifies here).
func (v *View) evictBlock(b *blockMeta) int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	p := v.pg.Load()
	if p == nil || !b.resident || b.dirty() {
		return 0
	}
	probe := b.lo
	if probe == nil {
		probe = []byte{}
	}
	idx := p.blockFor(probe)
	if idx < 0 || idx >= len(p.blocks) || p.blocks[idx] != b {
		return 0 // replaced by a split or a restore since it was picked
	}
	var hi []byte
	hasHi := idx+1 < len(p.blocks)
	if hasHi {
		hi = p.blocks[idx+1].lo
	}
	ts := v.store.(*treeStore)
	ts.t.DeleteRange(b.lo, hi, b.lo != nil, hasHi)
	b.resident = false
	p.nonResident.Add(1)
	p.cache.dropResident(b)
	v.publishLocked()
	return b.bytes
}

// pagedLookup is the read slow path: the key missed the published
// snapshot while some blocks are cold, so fault the covering block and
// probe the live tree.
func (v *View) pagedLookup(key []byte) (value.Tuple, bool) {
	p := v.pg.Load()
	v.mu.Lock()
	b := p.blocks[p.blockFor(key)]
	if !b.resident {
		v.pageIn(p, b)
		v.publishLocked()
	} else {
		// Another reader faulted it between our snapshot load and here,
		// or the key is genuinely absent from a warm block.
		p.cache.hits.Add(1)
	}
	b.hot.Store(true)
	var row value.Tuple
	e, ok := v.store.(*treeStore).t.Get(key)
	if ok && e.count != 0 {
		row = v.rowOf(e)
	} else {
		ok = false
	}
	v.mu.Unlock()
	p.cache.maintain()
	return row, ok
}

// scanSnap returns the snapshot a scan over [lo, hi) (nil = unbounded)
// should walk. For unpaged B-tree views it is the published snapshot; for
// paged views it first faults in every cold block overlapping the window
// and republishes, then returns that snapshot — which, being COW, stays
// complete even if the cache evicts blocks from the live tree while the
// scan is still running. Returns nil for hash views.
func (v *View) scanSnap(lo, hi []byte) *snapshot {
	p := v.pg.Load()
	if p == nil || p.nonResident.Load() == 0 {
		return v.snap.Load()
	}
	v.mu.Lock()
	faulted := false
	start := 0
	if lo != nil {
		start = p.blockFor(lo)
	}
	for i := start; i < len(p.blocks); i++ {
		b := p.blocks[i]
		if hi != nil && b.lo != nil && bytes.Compare(b.lo, hi) >= 0 {
			break
		}
		if !b.resident {
			v.pageIn(p, b)
			faulted = true
		}
		b.hot.Store(true)
	}
	if faulted {
		v.publishLocked()
	}
	s := v.snap.Load()
	v.mu.Unlock()
	p.cache.maintain()
	return s
}

// PendingBlock records where one inline block payload sits inside a
// blocked checkpoint image. Once the image's file is durable and the
// manifest flip has made it authoritative, the storage layer calls
// CommitBlockRefs to turn these into the blocks' durable refs; until
// then the blocks stay dirty, so a failed checkpoint simply retries.
type PendingBlock struct {
	b      *blockMeta
	Off    int64 // payload offset relative to the image start
	Len    int64
	CRC    uint32
	markAt uint64 // block's dirtyMark when encoded; becomes ckptMark at commit
}

const (
	blockedVersion = 2 // "CDBV" version byte for blocked view images
)

// CheckpointBlocked serializes the view's blocked image. Dirty blocks are
// re-encoded from the live tree (splitting any that outgrew the target
// size); clean blocks are written as refs to their existing chain
// location — unless full is set, in which case every block is inlined
// (resident blocks re-encoded, cold clean blocks copied forward raw,
// without decoding) so the image is self-contained and older chain files
// can be folded away. Returns the image, the pending ref commits, and the
// dirty/total block counts for observability.
func (v *View) CheckpointBlocked(full bool) (img []byte, pend []PendingBlock, dirtyBlocks, totalBlocks int, err error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	p := v.pg.Load()
	if p == nil {
		return nil, nil, 0, 0, fmt.Errorf("view %s: not paged", v.def.Name)
	}
	ts := v.store.(*treeStore)

	// Pass 1: decide each block's fate and re-encode the dirty ones,
	// installing any splits into a fresh block list as we go.
	type seg struct {
		b       *blockMeta
		payload []byte // inline payload; nil ⇒ emit the existing ref
	}
	var segs []seg
	newBlocks := make([]*blockMeta, 0, len(p.blocks))
	for i, b := range p.blocks {
		var hi []byte
		hasHi := i+1 < len(p.blocks)
		if hasHi {
			hi = p.blocks[i+1].lo
		}
		switch {
		case b.dirty() || (full && b.resident):
			if b.dirty() {
				dirtyBlocks++
			}
			subs, payloads := v.encodeBlockRun(ts, p, b, hi, hasHi)
			if len(subs) == 1 && subs[0] == b {
				p.cache.updateBytes(b, int64(len(payloads[0])))
			} else {
				p.cache.replaceBlock(v, b, subs)
			}
			for j, sb := range subs {
				segs = append(segs, seg{b: sb, payload: payloads[j]})
				newBlocks = append(newBlocks, sb)
			}
		case full:
			// Clean and cold: copy the durable payload forward unparsed.
			data, ferr := p.fetch(*b.ref)
			if ferr != nil {
				return nil, nil, 0, 0, fmt.Errorf("view %s: copy-forward %s@%d: %w",
					v.def.Name, b.ref.File, b.ref.Off, ferr)
			}
			if len(data) < 4 || binary.LittleEndian.Uint32(data[len(data)-4:]) != b.ref.CRC {
				return nil, nil, 0, 0, fmt.Errorf("view %s: copy-forward %s@%d: CRC mismatch",
					v.def.Name, b.ref.File, b.ref.Off)
			}
			segs = append(segs, seg{b: b, payload: data})
			newBlocks = append(newBlocks, b)
		default:
			segs = append(segs, seg{b: b})
			newBlocks = append(newBlocks, b)
		}
	}
	p.blocks = newBlocks
	totalBlocks = len(newBlocks)

	// Pass 2: assemble the image.
	img = append(img, checkpointMagic...)
	img = append(img, blockedVersion)
	img = binary.LittleEndian.AppendUint64(img, v.def.Expr.Schema().Fingerprint())
	img = append(img, byte(v.def.Mode))
	img = binary.AppendUvarint(img, uint64(len(v.def.Aggs)))
	img = binary.AppendUvarint(img, uint64(len(segs)))
	for _, s := range segs {
		img = binary.AppendUvarint(img, uint64(len(s.b.lo)))
		img = append(img, s.b.lo...)
		img = binary.AppendUvarint(img, uint64(s.b.n))
		if s.payload == nil {
			img = append(img, 0) // ref
			img = binary.AppendUvarint(img, uint64(len(s.b.ref.File)))
			img = append(img, s.b.ref.File...)
			img = binary.AppendUvarint(img, uint64(s.b.ref.Off))
			img = binary.AppendUvarint(img, uint64(s.b.ref.Len))
			img = binary.LittleEndian.AppendUint32(img, s.b.ref.CRC)
			continue
		}
		img = append(img, 1) // inline
		img = binary.AppendUvarint(img, uint64(len(s.payload)))
		off := int64(len(img))
		img = append(img, s.payload...)
		pend = append(pend, PendingBlock{
			b:      s.b,
			Off:    off,
			Len:    int64(len(s.payload)),
			CRC:    binary.LittleEndian.Uint32(s.payload[len(s.payload)-4:]),
			markAt: s.b.dirtyMark,
		})
	}
	return img, pend, dirtyBlocks, totalBlocks, nil
}

// CheckpointBlockedDelta serializes an incremental blocked image carrying
// only the dirty blocks, grouped into maximal runs of adjacent dirty
// blocks together with the exclusive upper bound of the key range each
// run covers (the next clean block's lo, or +∞). Restore merges each run
// into the block index accumulated from earlier chain images, so the cost
// of an incremental cut is proportional to the dirty set alone — clean
// blocks contribute nothing to the image, not even ref records. A view
// whose blocks were never committed (created since the last cut) is all
// dirty, so its first delta is a single run covering -∞..+∞ and merges
// cleanly into an empty index.
//
// Run bounds are always boundaries the restorer already knows: block
// boundaries only ever split (encodeBlockRun never merges adjacent
// blocks), an uncommitted split stays dirty and is swallowed by its run,
// and a clean neighbor's lo was committed with the image that made it
// clean.
func (v *View) CheckpointBlockedDelta() (img []byte, pend []PendingBlock, dirtyBlocks, totalBlocks int, err error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	p := v.pg.Load()
	if p == nil {
		return nil, nil, 0, 0, fmt.Errorf("view %s: not paged", v.def.Name)
	}
	ts := v.store.(*treeStore)

	// Pass 1: gather maximal dirty runs, re-encoding each block (splits
	// land inside the run, whose covering range is unaffected).
	type seg struct {
		b       *blockMeta
		payload []byte
	}
	type drun struct {
		hi    []byte // exclusive upper bound; nil + !hasHi = +∞
		hasHi bool
		segs  []seg
	}
	var runs []drun
	newBlocks := make([]*blockMeta, 0, len(p.blocks))
	for i := 0; i < len(p.blocks); {
		if !p.blocks[i].dirty() {
			newBlocks = append(newBlocks, p.blocks[i])
			i++
			continue
		}
		j := i
		for j < len(p.blocks) && p.blocks[j].dirty() {
			j++
		}
		r := drun{hasHi: j < len(p.blocks)}
		if r.hasHi {
			r.hi = p.blocks[j].lo
		}
		for k := i; k < j; k++ {
			b := p.blocks[k]
			dirtyBlocks++
			var hi []byte
			hasHi := k+1 < len(p.blocks)
			if hasHi {
				hi = p.blocks[k+1].lo
			}
			subs, payloads := v.encodeBlockRun(ts, p, b, hi, hasHi)
			if len(subs) == 1 && subs[0] == b {
				p.cache.updateBytes(b, int64(len(payloads[0])))
			} else {
				p.cache.replaceBlock(v, b, subs)
			}
			for s, sb := range subs {
				r.segs = append(r.segs, seg{b: sb, payload: payloads[s]})
				newBlocks = append(newBlocks, sb)
			}
		}
		runs = append(runs, r)
		i = j
	}
	p.blocks = newBlocks
	totalBlocks = len(newBlocks)

	// Pass 2: assemble the image — shared header, then the runs.
	img = append(img, checkpointMagic...)
	img = append(img, blockedVersion)
	img = binary.LittleEndian.AppendUint64(img, v.def.Expr.Schema().Fingerprint())
	img = append(img, byte(v.def.Mode))
	img = binary.AppendUvarint(img, uint64(len(v.def.Aggs)))
	img = binary.AppendUvarint(img, uint64(len(runs)))
	for _, r := range runs {
		if r.hasHi {
			img = binary.AppendUvarint(img, uint64(len(r.hi))+1)
			img = append(img, r.hi...)
		} else {
			img = binary.AppendUvarint(img, 0) // +∞
		}
		img = binary.AppendUvarint(img, uint64(len(r.segs)))
		for _, s := range r.segs {
			img = binary.AppendUvarint(img, uint64(len(s.b.lo)))
			img = append(img, s.b.lo...)
			img = binary.AppendUvarint(img, uint64(s.b.n))
			img = binary.AppendUvarint(img, uint64(len(s.payload)))
			off := int64(len(img))
			img = append(img, s.payload...)
			pend = append(pend, PendingBlock{
				b:      s.b,
				Off:    off,
				Len:    int64(len(s.payload)),
				CRC:    binary.LittleEndian.Uint32(s.payload[len(s.payload)-4:]),
				markAt: s.b.dirtyMark,
			})
		}
	}
	return img, pend, dirtyBlocks, totalBlocks, nil
}

// encodeBlockRun re-encodes one dirty (hence resident) block's entries
// from the live tree, cutting the run into ≤blockBytes payloads. A run
// that still fits reuses the block's own meta; an overgrown run splits
// into fresh metas whose boundaries are short keyenc separators. Caller
// holds v.mu.
func (v *View) encodeBlockRun(ts *treeStore, p *pager, b *blockMeta, hi []byte, hasHi bool) ([]*blockMeta, [][]byte) {
	type cut struct {
		first, last []byte
		ents        []byte
		n           int
	}
	var cuts []cut
	cur := cut{}
	var entBuf []byte
	visit := func(k []byte, e *entry) bool {
		entBuf = appendBlockEntry(entBuf[:0], e, v.def.Aggs)
		if cur.n > 0 && int64(len(cur.ents)+len(entBuf)) > p.blockBytes {
			cuts = append(cuts, cur)
			cur = cut{}
		}
		if cur.n == 0 {
			cur.first = append([]byte(nil), k...)
		}
		cur.last = append(cur.last[:0], k...)
		cur.ents = append(cur.ents, entBuf...)
		cur.n++
		return true
	}
	switch {
	case b.lo == nil && !hasHi:
		ts.t.Ascend(visit)
	case b.lo == nil:
		ts.t.AscendLessThan(hi, visit)
	case !hasHi:
		ts.t.AscendGreaterOrEqual(b.lo, visit)
	default:
		ts.t.AscendRange(b.lo, hi, visit)
	}
	cuts = append(cuts, cur) // possibly empty: an empty block still encodes

	payloads := make([][]byte, len(cuts))
	for i, c := range cuts {
		payloads[i] = sealBlock(nil, c.ents, c.n)
	}
	if len(cuts) == 1 {
		b.n = cuts[0].n
		return []*blockMeta{b}, payloads
	}
	subs := make([]*blockMeta, len(cuts))
	for i, c := range cuts {
		m := &blockMeta{n: c.n, bytes: int64(len(payloads[i])), resident: true, dirtyMark: b.dirtyMark}
		if i == 0 {
			m.lo = b.lo
		} else {
			m.lo = keyenc.Separator(nil, cuts[i-1].last, c.first)
		}
		m.hot.Store(true)
		subs[i] = m
	}
	return subs, payloads
}

// CommitBlockRefs installs the durable refs of a just-flipped checkpoint:
// file is the chain file the image was written to and base the image's
// offset within it. Marks committed this way are monotonic, so a block
// re-dirtied between build and flip stays dirty.
func (v *View) CommitBlockRefs(file string, base int64, pend []PendingBlock) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, pb := range pend {
		pb.b.ref = &BlockRef{File: file, Off: base + pb.Off, Len: pb.Len, CRC: pb.CRC}
		if pb.markAt > pb.b.ckptMark {
			pb.b.ckptMark = pb.markAt
		}
	}
}

// RestoreBlocked replaces the view's state from a blocked image that
// lives at base within file. Paged views restore lazily: only the block
// index is materialized — every block starts cold and faults in on first
// touch, so recovery cost is flat in view cardinality. Unpaged views
// (reopened with paging disabled) restore eagerly through fetch.
func (v *View) RestoreBlocked(data []byte, file string, base int64, fetch FetchFunc) error {
	rest, err := v.checkBlockedHeader(data)
	if err != nil {
		return err
	}
	blockCount, n := binary.Uvarint(rest)
	if n <= 0 {
		return fmt.Errorf("view %s: bad block count", v.def.Name)
	}
	off := len(data) - len(rest) + n

	type rec struct {
		lo      []byte
		n       int
		ref     BlockRef
		payload []byte // inline payload slice into data (eager decode)
	}
	maxRecs := int(blockCount)
	if maxRecs > len(data) {
		maxRecs = len(data)
	}
	recs := make([]rec, 0, maxRecs)
	for i := uint64(0); i < blockCount; i++ {
		loLen, n := binary.Uvarint(data[off:])
		if n <= 0 || off+n+int(loLen) > len(data) {
			return fmt.Errorf("view %s: block %d: bad lo", v.def.Name, i)
		}
		off += n
		var lo []byte
		if loLen > 0 {
			lo = append([]byte(nil), data[off:off+int(loLen)]...)
		}
		off += int(loLen)
		cnt, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return fmt.Errorf("view %s: block %d: bad entry count", v.def.Name, i)
		}
		off += n
		if off >= len(data) {
			return fmt.Errorf("view %s: block %d: truncated", v.def.Name, i)
		}
		flag := data[off]
		off++
		r := rec{lo: lo, n: int(cnt)}
		switch flag {
		case 0: // ref
			fl, n := binary.Uvarint(data[off:])
			if n <= 0 || off+n+int(fl) > len(data) {
				return fmt.Errorf("view %s: block %d: bad ref file", v.def.Name, i)
			}
			off += n
			r.ref.File = string(data[off : off+int(fl)])
			off += int(fl)
			o, n := binary.Uvarint(data[off:])
			if n <= 0 {
				return fmt.Errorf("view %s: block %d: bad ref off", v.def.Name, i)
			}
			off += n
			l, n := binary.Uvarint(data[off:])
			if n <= 0 {
				return fmt.Errorf("view %s: block %d: bad ref len", v.def.Name, i)
			}
			off += n
			if off+4 > len(data) {
				return fmt.Errorf("view %s: block %d: truncated ref", v.def.Name, i)
			}
			r.ref.Off, r.ref.Len = int64(o), int64(l)
			r.ref.CRC = binary.LittleEndian.Uint32(data[off:])
			off += 4
		case 1: // inline
			pl, n := binary.Uvarint(data[off:])
			if n <= 0 || off+n+int(pl) > len(data) {
				return fmt.Errorf("view %s: block %d: bad inline payload", v.def.Name, i)
			}
			off += n
			if pl < 4 {
				return fmt.Errorf("view %s: block %d: inline payload too short", v.def.Name, i)
			}
			r.payload = data[off : off+int(pl)]
			r.ref = BlockRef{
				File: file,
				Off:  base + int64(off),
				Len:  int64(pl),
				CRC:  binary.LittleEndian.Uint32(r.payload[pl-4:]),
			}
			off += int(pl)
		default:
			return fmt.Errorf("view %s: block %d: unknown flag %d", v.def.Name, i, flag)
		}
		recs = append(recs, r)
	}
	if off != len(data) {
		return fmt.Errorf("view %s: %d trailing blocked-checkpoint bytes", v.def.Name, len(data)-off)
	}
	if len(recs) == 0 || recs[0].lo != nil {
		return fmt.Errorf("view %s: blocked image missing -∞ block", v.def.Name)
	}

	if p := v.pg.Load(); p != nil {
		// Lazy: install the block index only; every block starts cold.
		v.mu.Lock()
		p.cache.dropView(v)
		v.store = newStore(StoreBTree)
		blocks := make([]*blockMeta, len(recs))
		var total int64
		for i, r := range recs {
			blocks[i] = &blockMeta{lo: r.lo, n: r.n, bytes: r.ref.Len, ref: &BlockRef{}}
			*blocks[i].ref = r.ref
			total += int64(r.n)
		}
		p.blocks = blocks
		p.nonResident.Store(int64(len(blocks)))
		p.total.Store(total)
		v.publishLocked()
		v.mu.Unlock()
		return nil
	}

	// Eager: materialize everything (the view runs unpaged).
	fresh := newStore(storeKindOf(v.store))
	var keyBuf []byte
	for i, r := range recs {
		payload := r.payload
		if payload == nil {
			if fetch == nil {
				return fmt.Errorf("view %s: block %d needs a fetcher to restore eagerly", v.def.Name, i)
			}
			var err error
			payload, err = fetch(r.ref)
			if err != nil {
				return fmt.Errorf("view %s: block %d: %w", v.def.Name, i, err)
			}
		}
		entries, err := decodeBlock(payload, v.def.Mode, v.def.Aggs)
		if err != nil {
			return fmt.Errorf("view %s: block %d: %w", v.def.Name, i, err)
		}
		for _, e := range entries {
			keyBuf = keyenc.AppendTuple(keyBuf[:0], e.vals)
			fresh.set(keyBuf, e)
		}
	}
	v.mu.Lock()
	if cur, ok := v.store.(*hashStore); ok {
		f := fresh.(*hashStore)
		f.publish()
		cur.adopt(f)
	} else {
		v.store = fresh
	}
	v.publishLocked()
	v.mu.Unlock()
	return nil
}

// cmpBound compares two block lower bounds, where nil means -∞.
func cmpBound(a, b []byte) int {
	switch {
	case a == nil && b == nil:
		return 0
	case a == nil:
		return -1
	case b == nil:
		return 1
	}
	return bytes.Compare(a, b)
}

// RestoreBlockedDelta merges a delta image (CheckpointBlockedDelta) that
// lives at base within file into the state restored from earlier chain
// images: each run replaces exactly the key range it covers. Paged views
// splice the runs' blocks into the block index cold; unpaged views
// materialize the runs' entries into the live store after deleting the
// covered ranges.
func (v *View) RestoreBlockedDelta(data []byte, file string, base int64) error {
	rest, err := v.checkBlockedHeader(data)
	if err != nil {
		return err
	}
	off := len(data) - len(rest)
	runCount, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return fmt.Errorf("view %s: bad delta run count", v.def.Name)
	}
	off += n

	type rec struct {
		lo      []byte
		n       int
		ref     BlockRef
		payload []byte // slice into data
	}
	type drun struct {
		hi    []byte
		hasHi bool
		recs  []rec
	}
	maxRuns := int(runCount)
	if maxRuns > len(data) {
		maxRuns = len(data)
	}
	runs := make([]drun, 0, maxRuns)
	for i := uint64(0); i < runCount; i++ {
		hiLen, n := binary.Uvarint(data[off:])
		if n <= 0 || hiLen > 0 && off+n+int(hiLen-1) > len(data) {
			return fmt.Errorf("view %s: run %d: bad hi", v.def.Name, i)
		}
		off += n
		var r drun
		if hiLen > 0 {
			hl := int(hiLen - 1)
			r.hasHi = true
			r.hi = append([]byte(nil), data[off:off+hl]...)
			off += hl
		}
		blockCount, n := binary.Uvarint(data[off:])
		if n <= 0 || blockCount == 0 || blockCount > uint64(len(data)) {
			return fmt.Errorf("view %s: run %d: bad block count", v.def.Name, i)
		}
		off += n
		r.recs = make([]rec, 0, blockCount)
		for b := uint64(0); b < blockCount; b++ {
			loLen, n := binary.Uvarint(data[off:])
			if n <= 0 || off+n+int(loLen) > len(data) {
				return fmt.Errorf("view %s: run %d block %d: bad lo", v.def.Name, i, b)
			}
			off += n
			var lo []byte
			if loLen > 0 {
				lo = append([]byte(nil), data[off:off+int(loLen)]...)
			}
			off += int(loLen)
			cnt, n := binary.Uvarint(data[off:])
			if n <= 0 {
				return fmt.Errorf("view %s: run %d block %d: bad entry count", v.def.Name, i, b)
			}
			off += n
			pl, n := binary.Uvarint(data[off:])
			if n <= 0 || off+n+int(pl) > len(data) || pl < 4 {
				return fmt.Errorf("view %s: run %d block %d: bad payload", v.def.Name, i, b)
			}
			off += n
			payload := data[off : off+int(pl)]
			r.recs = append(r.recs, rec{
				lo: lo, n: int(cnt), payload: payload,
				ref: BlockRef{
					File: file,
					Off:  base + int64(off),
					Len:  int64(pl),
					CRC:  binary.LittleEndian.Uint32(payload[pl-4:]),
				},
			})
			off += int(pl)
		}
		// Blocks within a run must ascend strictly and stay below hi, or
		// the merged index would lose its ordering invariant.
		for b := 1; b < len(r.recs); b++ {
			if cmpBound(r.recs[b-1].lo, r.recs[b].lo) >= 0 {
				return fmt.Errorf("view %s: run %d: blocks out of order", v.def.Name, i)
			}
		}
		if r.hasHi && cmpBound(r.recs[len(r.recs)-1].lo, r.hi) >= 0 {
			return fmt.Errorf("view %s: run %d: block at or past run bound", v.def.Name, i)
		}
		runs = append(runs, r)
	}
	if off != len(data) {
		return fmt.Errorf("view %s: %d trailing delta bytes", v.def.Name, len(data)-off)
	}

	v.mu.Lock()
	defer v.mu.Unlock()
	ts, ok := v.store.(*treeStore)
	if !ok {
		return fmt.Errorf("view %s: blocked delta into non-tree store", v.def.Name)
	}
	p := v.pg.Load()
	for _, r := range runs {
		lo := r.recs[0].lo
		// Drop the covered range from the live tree (resident entries of
		// replaced blocks; a no-op when everything is cold).
		ts.t.DeleteRange(lo, r.hi, lo != nil, r.hasHi)
		if p == nil {
			// Eager: the view runs unpaged, materialize the run's entries.
			var keyBuf []byte
			for i, rc := range r.recs {
				entries, derr := decodeBlock(rc.payload, v.def.Mode, v.def.Aggs)
				if derr != nil {
					return fmt.Errorf("view %s: delta block %d: %w", v.def.Name, i, derr)
				}
				for _, e := range entries {
					keyBuf = keyenc.AppendTuple(keyBuf[:0], e.vals)
					ts.set(keyBuf, e)
				}
			}
			continue
		}
		// Lazy: splice the run's cold blocks over the index span [lo, hi).
		s := 0
		for s < len(p.blocks) && cmpBound(p.blocks[s].lo, lo) < 0 {
			s++
		}
		e := s
		for e < len(p.blocks) && (!r.hasHi || cmpBound(p.blocks[e].lo, r.hi) < 0) {
			b := p.blocks[e]
			if b.resident {
				p.cache.dropResident(b)
			} else {
				p.nonResident.Add(-1)
			}
			p.total.Add(-int64(b.n))
			e++
		}
		ins := make([]*blockMeta, len(r.recs))
		for i, rc := range r.recs {
			m := &blockMeta{lo: rc.lo, n: rc.n, bytes: rc.ref.Len, ref: &BlockRef{}}
			*m.ref = rc.ref
			p.total.Add(int64(rc.n))
			ins[i] = m
		}
		p.nonResident.Add(int64(len(ins)))
		nb := make([]*blockMeta, 0, len(p.blocks)-(e-s)+len(ins))
		nb = append(nb, p.blocks[:s]...)
		nb = append(nb, ins...)
		nb = append(nb, p.blocks[e:]...)
		p.blocks = nb
	}
	if p != nil && (len(p.blocks) == 0 || p.blocks[0].lo != nil) {
		return fmt.Errorf("view %s: blocked delta left index without -∞ block", v.def.Name)
	}
	v.publishLocked()
	return nil
}

// checkBlockedHeader validates the blocked image's fixed header and
// returns the remainder starting at the block count.
func (v *View) checkBlockedHeader(data []byte) ([]byte, error) {
	if len(data) < len(checkpointMagic)+1+8+1+1 {
		return nil, fmt.Errorf("view %s: blocked checkpoint truncated", v.def.Name)
	}
	if string(data[:4]) != checkpointMagic {
		return nil, fmt.Errorf("view %s: bad blocked checkpoint magic", v.def.Name)
	}
	if data[4] != blockedVersion {
		return nil, fmt.Errorf("view %s: unsupported blocked checkpoint version %d", v.def.Name, data[4])
	}
	off := 5
	if fp := binary.LittleEndian.Uint64(data[off:]); fp != v.def.Expr.Schema().Fingerprint() {
		return nil, fmt.Errorf("view %s: blocked checkpoint schema drift", v.def.Name)
	}
	off += 8
	if Summarize(data[off]) != v.def.Mode {
		return nil, fmt.Errorf("view %s: blocked checkpoint mode mismatch", v.def.Name)
	}
	off++
	nAggs, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return nil, fmt.Errorf("view %s: bad aggregation count", v.def.Name)
	}
	off += n
	if int(nAggs) != len(v.def.Aggs) {
		return nil, fmt.Errorf("view %s: blocked checkpoint has %d aggregations, definition has %d",
			v.def.Name, nAggs, len(v.def.Aggs))
	}
	return data[off:], nil
}

// BlockStats reports the pager's block counts for observability: total
// blocks, dirty blocks, and resident blocks.
func (v *View) BlockStats() (total, dirty, resident int) {
	p := v.pg.Load()
	if p == nil {
		return 0, 0, 0
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, b := range p.blocks {
		total++
		if b.dirty() {
			dirty++
		}
		if b.resident {
			resident++
		}
	}
	return total, dirty, resident
}

