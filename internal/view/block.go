package view

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/value"
)

// Blocked view persistence: view entries are laid out in fixed-size blocks
// keyed by memcomparable keyenc boundaries. A block is the unit of dirty
// tracking (checkpoints re-serialize only blocks touched since the last
// one), of paging (the block cache evicts and faults whole blocks against
// the checkpoint chain), and of torn-write detection (each payload carries
// its own CRC, so a half-written block never decodes).
//
// Block payload layout, self-contained and order-independent:
//
//	entry count (uvarint), then per entry:
//	  vals tuple, count (uvarint), one state per aggregation spec
//	CRC-32C of all preceding payload bytes (4 bytes LE)
//
// Entry keys are not stored: they re-derive from the entry values exactly
// as Apply keys them (keyenc.AppendTuple over vals), the same invariant
// the v1 whole-image checkpoint relies on.

// DefaultBlockBytes is the target encoded size of one view block. 8 KiB
// keeps a faulted block to a handful of tree inserts while amortizing the
// per-block header and CRC across dozens-to-hundreds of entries.
const DefaultBlockBytes = 8 << 10

// BlockRef locates one durable block payload inside a checkpoint chain
// file: Len bytes at Off, guarded by the payload's own trailing CRC (also
// recorded here so torn files are rejected before decoding).
type BlockRef struct {
	File string
	Off  int64
	Len  int64
	CRC  uint32
}

// FetchFunc reads the Len payload bytes a BlockRef points at. The storage
// layer binds it to the database directory; the view layer never touches
// the filesystem directly.
type FetchFunc func(BlockRef) ([]byte, error)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// blockCRC is the checksum stored in a payload trailer and in BlockRefs.
func blockCRC(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// appendBlockEntry appends one entry in block-payload encoding.
func appendBlockEntry(b []byte, e *entry, aggs []aggregate.Spec) []byte {
	b = value.AppendTuple(b, e.vals)
	b = binary.AppendUvarint(b, uint64(e.count))
	for i, st := range e.states {
		b = aggregate.AppendState(b, aggs[i].Func, st)
	}
	return b
}

// sealBlock prefixes the encoded entries with their count and appends the
// CRC trailer, yielding a complete block payload.
func sealBlock(dst []byte, entries []byte, n int) []byte {
	dst = binary.AppendUvarint(dst, uint64(n))
	dst = append(dst, entries...)
	return binary.LittleEndian.AppendUint32(dst, blockCRC(dst))
}

// decodeBlock decodes a block payload produced by sealBlock, verifying the
// CRC trailer first so a torn or corrupted block is rejected, never
// half-applied. mode and aggs come from the owning view's definition.
func decodeBlock(data []byte, mode Summarize, aggs []aggregate.Spec) ([]*entry, error) {
	if len(data) < 5 {
		return nil, fmt.Errorf("block truncated: %d bytes", len(data))
	}
	body := data[:len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := blockCRC(body); got != want {
		return nil, fmt.Errorf("block CRC mismatch: got %08x want %08x", got, want)
	}
	count, n := binary.Uvarint(body)
	if n <= 0 {
		return nil, fmt.Errorf("block: bad entry count")
	}
	off := n
	cap := int(count)
	if cap > len(body) { // a valid entry takes ≥1 byte; don't trust the count
		cap = len(body)
	}
	entries := make([]*entry, 0, cap)
	for i := uint64(0); i < count; i++ {
		vals, used, err := value.DecodeTuple(body[off:])
		if err != nil {
			return nil, fmt.Errorf("block entry %d: %w", i, err)
		}
		off += used
		c, n := binary.Uvarint(body[off:])
		if n <= 0 {
			return nil, fmt.Errorf("block entry %d: bad count", i)
		}
		off += n
		e := &entry{vals: vals, count: int64(c)}
		if mode == SummarizeGroupBy {
			e.states = make([]aggregate.State, len(aggs))
			for j, spec := range aggs {
				st, used, err := aggregate.DecodeState(spec.Func, body[off:])
				if err != nil {
					return nil, fmt.Errorf("block entry %d state %d: %w", i, j, err)
				}
				e.states[j] = st
				off += used
			}
		}
		entries = append(entries, e)
	}
	if off != len(body) {
		return nil, fmt.Errorf("block: %d trailing bytes", len(body)-off)
	}
	return entries, nil
}
