package view

import (
	"bytes"
	"sort"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/btree"
	"chronicledb/internal/value"
)

// entry is one materialized view row: the group values (or projected
// tuple), the per-group aggregation states, and a contribution count used
// for refcounted duplicate elimination in projection views.
type entry struct {
	vals   value.Tuple
	states []aggregate.State
	count  int64
}

// StoreKind selects the view's group store. The paper's Theorem 4.4 bound,
// O(t·log|V|), corresponds to the ordered B-tree store; the hash store is
// the "modulo index look ups" fast path with O(t) expected time. E10
// measures the difference.
type StoreKind uint8

const (
	// StoreHash is an unordered hash store: O(1) expected per touch.
	StoreHash StoreKind = iota
	// StoreBTree is an ordered B-tree store: O(log|V|) per touch, ordered
	// scans, range queries.
	StoreBTree
)

// String names the store kind.
func (k StoreKind) String() string {
	if k == StoreHash {
		return "hash"
	}
	return "btree"
}

// store is the minimal interface view maintenance needs. Keys are encoded
// key bytes owned by the caller: get probes without copying (the hot path
// reuses one buffer per view), set copies the key before retaining it.
type store interface {
	get(key []byte) (*entry, bool)
	set(key []byte, e *entry)
	len() int
	// ascend visits entries; the B-tree store visits in key order, the hash
	// store sorts keys on demand (acceptable: scans are query-side).
	ascend(fn func(key []byte, e *entry) bool)
}

func newStore(kind StoreKind) store {
	if kind == StoreBTree {
		return &treeStore{t: btree.New[[]byte, *entry](func(a, b []byte) bool { return bytes.Compare(a, b) < 0 })}
	}
	return &hashStore{m: make(map[string]*entry)}
}

type hashStore struct {
	m map[string]*entry
}

// get probes with m[string(key)], which the compiler lowers to a lookup
// without materializing the string — the zero-allocation hot path.
func (h *hashStore) get(key []byte) (*entry, bool) { e, ok := h.m[string(key)]; return e, ok }
func (h *hashStore) set(key []byte, e *entry)      { h.m[string(key)] = e }
func (h *hashStore) len() int                      { return len(h.m) }

func (h *hashStore) ascend(fn func([]byte, *entry) bool) {
	keys := make([]string, 0, len(h.m))
	for k := range h.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !fn([]byte(k), h.m[k]) {
			return
		}
	}
}

type treeStore struct {
	t *btree.Tree[[]byte, *entry]
}

func (t *treeStore) get(key []byte) (*entry, bool) { return t.t.Get(key) }

func (t *treeStore) set(key []byte, e *entry) {
	t.t.Set(append([]byte(nil), key...), e)
}

func (t *treeStore) len() int { return t.t.Len() }

func (t *treeStore) ascend(fn func([]byte, *entry) bool) {
	t.t.Ascend(fn)
}
