package view

import (
	"bytes"
	"hash/maphash"
	"sort"
	"sync/atomic"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/btree"
	"chronicledb/internal/value"
)

// entry is one materialized view row: the group values (or projected
// tuple), the per-group aggregation states, and a contribution count used
// for refcounted duplicate elimination in projection views.
//
// epoch stamps the publication epoch the entry was created (or last
// copied) in. B-tree stores publish an immutable snapshot after every
// maintenance batch; an entry whose epoch predates the view's current
// write epoch is reachable from a published snapshot and must be cloned
// before mutation so lock-free readers never observe a partial update.
//
// key holds the encoded group key for hash-store entries, which double as
// the table slots of the lock-free hash index (the B-tree store keys its
// nodes instead and leaves key empty). A published hash entry is frozen
// exactly like a snapshot-reachable tree entry: maintenance mutates a
// pending clone and re-installs it atomically at publish.
type entry struct {
	vals   value.Tuple
	states []aggregate.State
	count  int64
	epoch  uint64
	key    string
}

// clone returns a mutable copy of the entry stamped with the given epoch.
// vals is shared: it is assigned once at entry creation and never mutated
// in place, so snapshot readers and the live store can alias it safely.
func (e *entry) clone(epoch uint64) *entry {
	c := &entry{vals: e.vals, count: e.count, epoch: epoch, key: e.key}
	if e.states != nil {
		c.states = aggregate.CloneStates(e.states)
	}
	return c
}

// StoreKind selects the view's group store. The paper's Theorem 4.4 bound,
// O(t·log|V|), corresponds to the ordered B-tree store; the hash store is
// the "modulo index look ups" fast path with O(t) expected time. E10
// measures the difference.
type StoreKind uint8

const (
	// StoreHash is an unordered hash store: O(1) expected per touch.
	StoreHash StoreKind = iota
	// StoreBTree is an ordered B-tree store: O(log|V|) per touch, ordered
	// scans, range queries.
	StoreBTree
)

// String names the store kind.
func (k StoreKind) String() string {
	if k == StoreHash {
		return "hash"
	}
	return "btree"
}

// store is the minimal interface view maintenance needs. Keys are encoded
// key bytes owned by the caller: get probes without copying (the hot path
// reuses one buffer per view), set copies the key before retaining it.
//
// get/set/replace are maintenance-side and run under the view's exclusive
// lock; the hash store's get returns a batch-private mutable clone so
// published entries stay frozen for its lock-free readers.
type store interface {
	get(key []byte) (*entry, bool)
	set(key []byte, e *entry)
	// replace re-points an existing key at a new entry without copying the
	// key (the COW path swaps entries on every first touch per epoch). The
	// key must already be present.
	replace(key []byte, e *entry)
	len() int
	// ascend visits entries; the B-tree store visits in key order, the hash
	// store sorts keys on demand (acceptable: scans are query-side).
	ascend(fn func(key []byte, e *entry) bool)
}

func newStore(kind StoreKind) store {
	if kind == StoreBTree {
		return &treeStore{t: btree.New[[]byte, *entry](func(a, b []byte) bool { return bytes.Compare(a, b) < 0 })}
	}
	return newHashStore()
}

// hashSeed is the process-wide seed of the hash view index. maphash.Bytes
// and maphash.String agree on identical content, so byte-slice probes and
// string installs land in the same slot run.
var hashSeed = maphash.MakeSeed()

// htab is one immutable-size open-addressing table: a power-of-two slot
// array probed linearly. Slots hold published entries directly (the entry
// carries its own key), are written only under the view's exclusive lock,
// and are read by lock-free readers through atomic loads. The table never
// deletes (views are insert-only), so a nil slot terminates every probe.
type htab struct {
	slots []atomic.Pointer[entry]
	mask  uint64
}

func newHtab(n uint64) *htab {
	return &htab{slots: make([]atomic.Pointer[entry], n), mask: n - 1}
}

// probe finds the published entry for key, or nil. Safe for concurrent
// lock-free readers: slots only transition nil→entry or entry→newer entry
// for the same key, so a probe observes either the entry or a consistent
// absence.
func (t *htab) probe(key []byte) *entry {
	h := maphash.Bytes(hashSeed, key)
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		e := t.slots[i].Load()
		if e == nil {
			return nil
		}
		if e.key == string(key) { // compiler-optimized: no string alloc
			return e
		}
	}
}

// install publishes e under its key: into an empty slot (insert) or over
// the previous version of the same key (replace, returning the retired
// entry). Callers must hold the view's exclusive lock and must have sized
// the table below full (see hashStore.publish).
func (t *htab) install(e *entry) (old *entry, inserted bool) {
	h := maphash.String(hashSeed, e.key)
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		cur := t.slots[i].Load()
		if cur == nil {
			t.slots[i].Store(e)
			return nil, true
		}
		if cur.key == e.key {
			t.slots[i].Store(e)
			return cur, false
		}
	}
}

// hashStore is the unordered group store with lock-free readers. Published
// state lives in an atomically swapped open-addressing table of frozen
// entries; maintenance accumulates batch mutations as clones in pending
// (guarded by the view's exclusive lock) and installs them slot-by-slot at
// publish. Readers announce themselves through the readers counter so the
// store only recycles a retired entry version into the freelist when no
// reader could still hold it — which keeps the warm maintenance path
// allocation-free without ever mutating a reachable entry in place.
type hashStore struct {
	tab     atomic.Pointer[htab]
	count   atomic.Int64 // published entries, for lock-free len
	readers atomic.Int64 // in-flight lock-free readers

	// Maintenance state, guarded by the owning view's mu.
	pending map[string]*entry // batch-local mutable clones and inserts
	free    []*entry          // recycled entry shells for mutableClone
	retired []*entry          // versions replaced this batch, pending recycle
	used    int               // published slots, for the growth check
}

func newHashStore() *hashStore {
	h := &hashStore{pending: make(map[string]*entry)}
	h.tab.Store(newHtab(16))
	return h
}

// mutableClone returns a batch-private copy of a published entry, reusing
// a freelist shell when one fits (an in-place struct copy of every state —
// the allocation-free warm path).
func (h *hashStore) mutableClone(src *entry) *entry {
	if n := len(h.free); n > 0 {
		c := h.free[n-1]
		h.free[n-1] = nil
		h.free = h.free[:n-1]
		if len(c.states) == len(src.states) && aggregate.CopyStates(c.states, src.states) {
			c.vals, c.count, c.key, c.epoch = src.vals, src.count, src.key, 0
			return c
		}
	}
	c := &entry{vals: src.vals, count: src.count, key: src.key}
	if src.states != nil {
		c.states = aggregate.CloneStates(src.states)
	}
	return c
}

// get returns the batch-mutable entry for key. A published entry is cloned
// into pending on first touch so readers of the current table never see a
// half-applied state; repeat touches within the batch hit the clone.
func (h *hashStore) get(key []byte) (*entry, bool) {
	if e, ok := h.pending[string(key)]; ok {
		return e, true
	}
	e := h.tab.Load().probe(key)
	if e == nil {
		return nil, false
	}
	c := h.mutableClone(e)
	h.pending[c.key] = c
	return c, true
}

func (h *hashStore) set(key []byte, e *entry) {
	k := string(key)
	e.key = k
	h.pending[k] = e
}

func (h *hashStore) replace(key []byte, e *entry) { h.set(key, e) }

func (h *hashStore) len() int { return int(h.count.Load()) }

// publish installs the batch's pending entries into the table (growing it
// first if the insert load would cross 3/4 full), then recycles retired
// entry versions when no lock-free reader is in flight. Runs under the
// view's exclusive lock.
func (h *hashStore) publish() {
	if len(h.pending) > 0 {
		t := h.tab.Load()
		if (h.used+len(h.pending))*4 > len(t.slots)*3 {
			n := uint64(len(t.slots))
			for int(n)*3 <= (h.used+len(h.pending))*4 {
				n <<= 1
			}
			nt := newHtab(n)
			for i := range t.slots {
				if e := t.slots[i].Load(); e != nil {
					nt.install(e)
				}
			}
			h.tab.Store(nt)
			t = nt
		}
		for _, e := range h.pending {
			old, inserted := t.install(e)
			if inserted {
				h.used++
				h.count.Add(1)
			} else if old != nil {
				h.retired = append(h.retired, old)
			}
		}
		clear(h.pending)
	}
	if len(h.retired) > 0 {
		// A reader counted here may hold pointers into the previous table
		// or the retired versions; dropping them to the GC is always safe,
		// recycling is only safe when nobody is reading.
		if h.readers.Load() == 0 {
			h.free = append(h.free, h.retired...)
		}
		for i := range h.retired {
			h.retired[i] = nil
		}
		h.retired = h.retired[:0]
	}
}

// rget is the lock-free reader probe: published entries only, never the
// batch-local pending set. Callers bracket the call (through any derived
// entry use) with readers.Add(1) / Add(-1).
func (h *hashStore) rget(key []byte) (*entry, bool) {
	e := h.tab.Load().probe(key)
	return e, e != nil
}

// adopt replaces the published state with another hash store's, in place,
// so concurrent lock-free readers never observe a dangling store pointer.
// Runs under the view's exclusive lock; o must be fully published.
func (h *hashStore) adopt(o *hashStore) {
	h.tab.Store(o.tab.Load())
	h.count.Store(o.count.Load())
	h.used = o.used
	clear(h.pending)
	h.free = h.free[:0]
	h.retired = h.retired[:0]
}

// ascend visits published entries in key order. Lock-free safe: it reads
// the table once and only through atomic loads; read-path callers bracket
// it with the readers counter.
func (h *hashStore) ascend(fn func([]byte, *entry) bool) {
	t := h.tab.Load()
	entries := make([]*entry, 0, h.count.Load())
	for i := range t.slots {
		if e := t.slots[i].Load(); e != nil {
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	for _, e := range entries {
		if !fn([]byte(e.key), e) {
			return
		}
	}
}

type treeStore struct {
	t *btree.Tree[[]byte, *entry]
}

func (t *treeStore) get(key []byte) (*entry, bool) { return t.t.Get(key) }

func (t *treeStore) set(key []byte, e *entry) {
	t.t.Set(append([]byte(nil), key...), e)
}

// replace overwrites the value under an existing key. The tree keeps the
// key bytes it stored at insert time (Set does not retain the probe key
// when the key is already present), so the caller's scratch buffer is
// safe to pass without copying.
func (t *treeStore) replace(key []byte, e *entry) {
	t.t.Set(key, e)
}

func (t *treeStore) len() int { return t.t.Len() }

func (t *treeStore) ascend(fn func([]byte, *entry) bool) {
	t.t.Ascend(fn)
}
