package view

import (
	"sort"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/btree"
	"chronicledb/internal/value"
)

// entry is one materialized view row: the group values (or projected
// tuple), the per-group aggregation states, and a contribution count used
// for refcounted duplicate elimination in projection views.
type entry struct {
	vals   value.Tuple
	states []aggregate.State
	count  int64
}

// StoreKind selects the view's group store. The paper's Theorem 4.4 bound,
// O(t·log|V|), corresponds to the ordered B-tree store; the hash store is
// the "modulo index look ups" fast path with O(t) expected time. E10
// measures the difference.
type StoreKind uint8

const (
	// StoreHash is an unordered hash store: O(1) expected per touch.
	StoreHash StoreKind = iota
	// StoreBTree is an ordered B-tree store: O(log|V|) per touch, ordered
	// scans, range queries.
	StoreBTree
)

// String names the store kind.
func (k StoreKind) String() string {
	if k == StoreHash {
		return "hash"
	}
	return "btree"
}

// store is the minimal interface view maintenance needs.
type store interface {
	get(key string) (*entry, bool)
	set(key string, e *entry)
	len() int
	// ascend visits entries; the B-tree store visits in key order, the hash
	// store sorts keys on demand (acceptable: scans are query-side).
	ascend(fn func(key string, e *entry) bool)
}

func newStore(kind StoreKind) store {
	if kind == StoreBTree {
		return &treeStore{t: btree.New[string, *entry](func(a, b string) bool { return a < b })}
	}
	return &hashStore{m: make(map[string]*entry)}
}

type hashStore struct {
	m map[string]*entry
}

func (h *hashStore) get(key string) (*entry, bool) { e, ok := h.m[key]; return e, ok }
func (h *hashStore) set(key string, e *entry)      { h.m[key] = e }
func (h *hashStore) len() int                      { return len(h.m) }

func (h *hashStore) ascend(fn func(string, *entry) bool) {
	keys := make([]string, 0, len(h.m))
	for k := range h.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !fn(k, h.m[k]) {
			return
		}
	}
}

type treeStore struct {
	t *btree.Tree[string, *entry]
}

func (t *treeStore) get(key string) (*entry, bool) { return t.t.Get(key) }
func (t *treeStore) set(key string, e *entry)      { t.t.Set(key, e) }
func (t *treeStore) len() int                      { return t.t.Len() }

func (t *treeStore) ascend(fn func(string, *entry) bool) {
	t.t.Ascend(fn)
}
