package view

import (
	"bytes"
	"sort"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/btree"
	"chronicledb/internal/value"
)

// entry is one materialized view row: the group values (or projected
// tuple), the per-group aggregation states, and a contribution count used
// for refcounted duplicate elimination in projection views.
//
// epoch stamps the publication epoch the entry was created (or last
// copied) in. B-tree stores publish an immutable snapshot after every
// maintenance batch; an entry whose epoch predates the view's current
// write epoch is reachable from a published snapshot and must be cloned
// before mutation so lock-free readers never observe a partial update.
// Hash stores never publish snapshots and leave epoch at zero.
type entry struct {
	vals   value.Tuple
	states []aggregate.State
	count  int64
	epoch  uint64
}

// clone returns a mutable copy of the entry stamped with the given epoch.
// vals is shared: it is assigned once at entry creation and never mutated
// in place, so snapshot readers and the live store can alias it safely.
func (e *entry) clone(epoch uint64) *entry {
	c := &entry{vals: e.vals, count: e.count, epoch: epoch}
	if e.states != nil {
		c.states = aggregate.CloneStates(e.states)
	}
	return c
}

// StoreKind selects the view's group store. The paper's Theorem 4.4 bound,
// O(t·log|V|), corresponds to the ordered B-tree store; the hash store is
// the "modulo index look ups" fast path with O(t) expected time. E10
// measures the difference.
type StoreKind uint8

const (
	// StoreHash is an unordered hash store: O(1) expected per touch.
	StoreHash StoreKind = iota
	// StoreBTree is an ordered B-tree store: O(log|V|) per touch, ordered
	// scans, range queries.
	StoreBTree
)

// String names the store kind.
func (k StoreKind) String() string {
	if k == StoreHash {
		return "hash"
	}
	return "btree"
}

// store is the minimal interface view maintenance needs. Keys are encoded
// key bytes owned by the caller: get probes without copying (the hot path
// reuses one buffer per view), set copies the key before retaining it.
type store interface {
	get(key []byte) (*entry, bool)
	set(key []byte, e *entry)
	// replace re-points an existing key at a new entry without copying the
	// key (the COW path swaps entries on every first touch per epoch). The
	// key must already be present.
	replace(key []byte, e *entry)
	len() int
	// ascend visits entries; the B-tree store visits in key order, the hash
	// store sorts keys on demand (acceptable: scans are query-side).
	ascend(fn func(key []byte, e *entry) bool)
}

func newStore(kind StoreKind) store {
	if kind == StoreBTree {
		return &treeStore{t: btree.New[[]byte, *entry](func(a, b []byte) bool { return bytes.Compare(a, b) < 0 })}
	}
	return &hashStore{m: make(map[string]*entry)}
}

type hashStore struct {
	m map[string]*entry
}

// get probes with m[string(key)], which the compiler lowers to a lookup
// without materializing the string — the zero-allocation hot path.
func (h *hashStore) get(key []byte) (*entry, bool) { e, ok := h.m[string(key)]; return e, ok }
func (h *hashStore) set(key []byte, e *entry)      { h.m[string(key)] = e }
func (h *hashStore) replace(key []byte, e *entry)  { h.m[string(key)] = e }
func (h *hashStore) len() int                      { return len(h.m) }

func (h *hashStore) ascend(fn func([]byte, *entry) bool) {
	keys := make([]string, 0, len(h.m))
	for k := range h.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !fn([]byte(k), h.m[k]) {
			return
		}
	}
}

type treeStore struct {
	t *btree.Tree[[]byte, *entry]
}

func (t *treeStore) get(key []byte) (*entry, bool) { return t.t.Get(key) }

func (t *treeStore) set(key []byte, e *entry) {
	t.t.Set(append([]byte(nil), key...), e)
}

// replace overwrites the value under an existing key. The tree keeps the
// key bytes it stored at insert time (Set does not retain the probe key
// when the key is already present), so the caller's scratch buffer is
// safe to pass without copying.
func (t *treeStore) replace(key []byte, e *entry) {
	t.t.Set(key, e)
}

func (t *treeStore) len() int { return t.t.Len() }

func (t *treeStore) ascend(fn func([]byte, *entry) bool) {
	t.t.Ascend(fn)
}
