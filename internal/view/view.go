// Package view implements persistent views: the summarized chronicle
// algebra (SCA) of Definition 4.3 and its incremental maintenance
// (Theorem 4.4).
//
// A persistent view applies one summarization step to a chronicle algebra
// expression χ, eliminating the sequencing attribute:
//
//   - projection with SN projected out (duplicate elimination by refcount), or
//   - grouping whose grouping list excludes SN, with incrementally
//     computable aggregation functions.
//
// The view is materialized and kept current after every append. Maintenance
// consumes only the algebra's batch delta — never the chronicles, never the
// intermediate expressions — in Space = |V| and Time = O(t·log|V|) per
// Theorem 4.4 (O(t) expected with the hash store).
package view

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/algebra"
	"chronicledb/internal/btree"
	"chronicledb/internal/chronicle"
	"chronicledb/internal/keyenc"
	"chronicledb/internal/value"
)

// Summarize selects the summarization step of Definition 4.3.
type Summarize uint8

const (
	// SummarizeProject is Π with the sequencing attribute projected out.
	SummarizeProject Summarize = iota
	// SummarizeGroupBy is GROUPBY with SN absent from the grouping list.
	SummarizeGroupBy
)

// String names the summarization mode.
func (s Summarize) String() string {
	if s == SummarizeProject {
		return "project"
	}
	return "groupby"
}

// Def is a persistent view definition in SCA: an expression χ in chronicle
// algebra plus the summarization step.
type Def struct {
	Name string
	Expr algebra.Node
	Mode Summarize

	// Cols are the projected columns for SummarizeProject.
	Cols []int
	// GroupCols and Aggs define the SummarizeGroupBy step.
	GroupCols []int
	Aggs      []aggregate.Spec
}

// Stats counts maintenance work, the raw material of the experiment
// harness.
type Stats struct {
	Applies   int64 // maintenance invocations (appends seen)
	DeltaRows int64 // expression delta rows folded in
	Touched   int64 // view entries created or updated
	ApplyNs   int64 // wall time spent inside ApplyRows (fold + publish)
}

// snapshot is an immutable, atomically published image of a B-tree view
// store. The tree shares nodes with the live store via copy-on-write and
// is never mutated after publication, so readers traverse it without any
// locks while maintenance keeps writing to the live tree.
type snapshot struct {
	tree *btree.Tree[[]byte, *entry]
	at   int64  // publication time, UnixNano
	lsn  uint64 // highest LSN folded in when this snapshot was published
}

// View is a materialized persistent view with incremental maintenance.
//
// Concurrency model: maintenance (Apply/ApplyRows/RestoreCheckpoint) is
// serialized by the engine and takes mu exclusively. B-tree views publish
// an immutable copy-on-write snapshot after every maintenance batch;
// Lookup/Scan/ScanRange read the latest snapshot with zero locks. Hash
// views (the zero-allocation maintenance fast path) publish through an
// atomically installed open-addressing table of frozen entries, so their
// readers are lock-free too — maintenance mutates batch-local clones and
// installs them at publish (see hashStore). The one deliberate exception
// is ScanAt on hash views, which takes mu.RLock to pair the scanned image
// with an exact applied LSN for the changefeed splice.
type View struct {
	def    Def
	schema *value.Schema
	store  store
	info   algebra.Info
	stats  Stats

	// mu guards the live store's maintenance state, stats, and scratch.
	// Writers (maintenance, restore) hold it exclusively; readers are
	// lock-free except ScanAt on hash views (exact-LSN splice).
	mu sync.RWMutex
	// snap is the latest published snapshot; nil for hash stores. Entries
	// reachable from it are frozen: the maintenance path clones an entry
	// before its first mutation in each epoch (see entry.epoch).
	snap atomic.Pointer[snapshot]
	// epoch is the current write epoch, bumped at each publication. Only
	// meaningful when cow is true.
	epoch uint64
	// cow reports whether the store is a B-tree that publishes snapshots
	// and therefore needs entry-level copy-on-write.
	cow bool
	// pg is the blocked-store pager, set by EnablePaging before the view
	// is visible to concurrent readers; nil for unpaged views. Stored
	// atomically so hot read paths can consult it without locks.
	pg atomic.Pointer[pager]

	// Hot-path scratch, reused across maintenance batches. keyBuf holds the
	// encoded group key being probed (the store copies it only on insert);
	// deltaBuf backs the expression delta for batch-local operators. Both
	// belong to the maintenance path, which the engine serializes; the
	// concurrent read paths (Lookup, ScanRange) use pooled buffers instead.
	keyBuf   []byte
	deltaBuf []chronicle.Row

	// appliedLSN is the highest LSN among delta rows folded into the view,
	// the cursor position of the materialized state. The changefeed's
	// snapshot catch-up path splices on it: deliver the snapshot, then
	// filter live frames with LSN ≤ the snapshot's lsn.
	appliedLSN uint64
}

// New validates a definition and materializes an empty view. The result is
// current for the (necessarily empty-so-far) suffix of appends; callers who
// create views over chronicles with existing retained rows should feed the
// retained rows through Apply (the engine does this at DDL time).
func New(def Def, kind StoreKind) (*View, error) {
	if def.Name == "" {
		return nil, fmt.Errorf("view: name required")
	}
	if def.Expr == nil {
		return nil, fmt.Errorf("view %s: expression required", def.Name)
	}
	inSchema := def.Expr.Schema()
	var schema *value.Schema
	switch def.Mode {
	case SummarizeProject:
		if len(def.Cols) == 0 {
			return nil, fmt.Errorf("view %s: projection needs at least one column", def.Name)
		}
		for _, c := range def.Cols {
			if c < 0 || c >= inSchema.Len() {
				return nil, fmt.Errorf("view %s: projection column %d out of range", def.Name, c)
			}
		}
		schema = inSchema.Project(def.Cols)
	case SummarizeGroupBy:
		if len(def.Aggs) == 0 {
			return nil, fmt.Errorf("view %s: grouping needs at least one aggregation", def.Name)
		}
		cols := make([]value.Column, 0, len(def.GroupCols)+len(def.Aggs))
		for _, c := range def.GroupCols {
			if c < 0 || c >= inSchema.Len() {
				return nil, fmt.Errorf("view %s: grouping column %d out of range", def.Name, c)
			}
			cols = append(cols, inSchema.Col(c))
		}
		for _, a := range def.Aggs {
			if a.Col >= inSchema.Len() || (a.Col < 0 && a.Func != aggregate.Count) {
				return nil, fmt.Errorf("view %s: aggregation %s column %d out of range", def.Name, a.Func, a.Col)
			}
			if a.Name == "" {
				return nil, fmt.Errorf("view %s: aggregation %s needs an output name", def.Name, a.Func)
			}
			in := value.KindInt
			if a.Col >= 0 {
				in = inSchema.Col(a.Col).Kind
			}
			cols = append(cols, value.Column{Name: a.Name, Kind: a.ResultKind(in)})
		}
		schema = value.NewSchema(cols...)
	default:
		return nil, fmt.Errorf("view %s: unknown summarization mode %d", def.Name, def.Mode)
	}
	v := &View{
		def:    def,
		schema: schema,
		store:  newStore(kind),
		info:   algebra.Analyze(def.Expr),
		cow:    kind == StoreBTree,
	}
	v.publishLocked()
	return v, nil
}

// publishLocked makes the maintenance batch visible to lock-free readers.
// B-tree stores publish an immutable copy-on-write snapshot and open a new
// write epoch so the next mutation of any published entry copies it first;
// hash stores install their batch-local clones into the atomic table.
// Callers must hold mu exclusively (or have sole ownership, as in New).
func (v *View) publishLocked() {
	switch s := v.store.(type) {
	case *treeStore:
		v.snap.Store(&snapshot{tree: s.t.Clone(), at: time.Now().UnixNano(), lsn: v.appliedLSN})
		v.epoch++
	case *hashStore:
		s.publish()
	}
}

// SnapshotUnixNano returns the publication time of the current snapshot,
// or 0 when the view has none (hash store).
func (v *View) SnapshotUnixNano() int64 {
	if s := v.snap.Load(); s != nil {
		return s.at
	}
	return 0
}

// Name returns the view's name.
func (v *View) Name() string { return v.def.Name }

// Def returns the view's definition.
func (v *View) Def() Def { return v.def }

// Schema returns the view's relation schema (no sequencing attribute —
// "every persistent view expressed in SCA produces a relation").
func (v *View) Schema() *value.Schema { return v.schema }

// Info returns the static analysis of the underlying expression.
func (v *View) Info() algebra.Info { return v.info }

// Lang returns the SCA fragment the view is written in.
func (v *View) Lang() algebra.Lang { return v.info.Lang }

// IMClass returns the view's incremental-maintenance complexity class
// (Theorem 4.5).
func (v *View) IMClass() algebra.IMClass { return v.info.IMClass() }

// Stats returns maintenance counters.
func (v *View) Stats() Stats {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.stats
}

// Len returns the number of rows currently in the view. B-tree views
// answer from the published snapshot, hash views from the published entry
// count — neither takes a lock.
func (v *View) Len() int {
	if p := v.pg.Load(); p != nil {
		// The live tree and snapshot only hold resident blocks' entries;
		// the pager tracks the logical count across all blocks.
		return int(p.total.Load())
	}
	if s := v.snap.Load(); s != nil {
		return s.tree.Len()
	}
	if h, ok := v.store.(*hashStore); ok {
		return int(h.count.Load())
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.store.len()
}

// Apply folds one append batch into the view: it computes the expression
// delta and maintains the materialization. This is the per-transaction
// operation whose complexity defines the chronicle system's complexity
// (Section 3).
func (v *View) Apply(d algebra.BatchDelta) {
	v.ApplyRows(v.Delta(d))
}

// Delta computes the expression delta for one append batch without
// applying it. The rows alias the view's maintenance scratch and are valid
// until the next Delta call; the engine uses the split form to capture the
// delta for the changefeed between computing and folding it.
func (v *View) Delta(d algebra.BatchDelta) []chronicle.Row {
	rows, keep := algebra.DeltaInto(v.def.Expr, d, v.deltaBuf[:0])
	v.deltaBuf = keep
	return rows
}

// ApplyRows folds precomputed expression delta rows into the view. The
// engine uses it when several views share one expression delta. On B-tree
// views the batch ends by publishing a fresh immutable snapshot, making
// the whole batch visible to lock-free readers atomically: a reader holds
// either the pre-batch snapshot or the post-batch one, never a partially
// applied state.
//
// Concurrency contract for the parallel maintenance pipeline: ApplyRows on
// DISTINCT views is safe to call concurrently — each view's state is
// guarded by its own mu, and the shared block cache's CLOCK sweep runs
// outside it. Calls on one view must be serialized by the caller (the
// engine holds its mutation lock across the whole batch), because rows may
// alias caller-owned scratch that is reused after the call returns, and
// because appliedLSN ordering assumes batches arrive in LSN order. The
// rows themselves are read-only here: they may be shared with other views
// consuming the same precomputed delta.
func (v *View) ApplyRows(rows []chronicle.Row) {
	start := time.Now()
	v.mu.Lock()
	p := v.pg.Load()
	v.applyRowsLocked(p, rows)
	v.stats.ApplyNs += time.Since(start).Nanoseconds()
	v.mu.Unlock()
	if p != nil {
		// Outside mu: the CLOCK sweep takes victims' view locks itself.
		p.cache.maintain()
	}
}

func (v *View) applyRowsLocked(p *pager, rows []chronicle.Row) {
	v.stats.Applies++
	v.stats.DeltaRows += int64(len(rows))
	for _, r := range rows {
		if r.LSN > v.appliedLSN {
			v.appliedLSN = r.LSN
		}
	}
	switch v.def.Mode {
	case SummarizeProject:
		for _, r := range rows {
			// Encode the key straight from the source columns; the projected
			// tuple is only materialized when the entry does not exist yet.
			v.keyBuf = keyenc.AppendCols(v.keyBuf[:0], r.Vals, v.def.Cols)
			var blk *blockMeta
			if p != nil {
				// Writes require residency: fault the covering block so the
				// next checkpoint can re-encode it from the live tree.
				blk = v.ensureWrite(p, v.keyBuf)
			}
			e, ok := v.store.get(v.keyBuf)
			if !ok {
				e = &entry{vals: r.Vals.Project(v.def.Cols), epoch: v.epoch}
				v.store.set(v.keyBuf, e)
				if p != nil {
					v.noteInsert(p, blk, v.keyBuf, e)
				}
			} else if v.cow && e.epoch != v.epoch {
				// First touch this epoch: the entry is frozen in the
				// published snapshot; mutate a copy instead.
				e = e.clone(v.epoch)
				v.store.replace(v.keyBuf, e)
			}
			e.count++
			v.stats.Touched++
		}
	case SummarizeGroupBy:
		for _, r := range rows {
			v.keyBuf = keyenc.AppendCols(v.keyBuf[:0], r.Vals, v.def.GroupCols)
			var blk *blockMeta
			if p != nil {
				blk = v.ensureWrite(p, v.keyBuf)
			}
			e, ok := v.store.get(v.keyBuf)
			if !ok {
				e = &entry{
					vals:   r.Vals.Project(v.def.GroupCols),
					states: aggregate.NewStates(v.def.Aggs),
					epoch:  v.epoch,
				}
				v.store.set(v.keyBuf, e)
				if p != nil {
					v.noteInsert(p, blk, v.keyBuf, e)
				}
			} else if v.cow && e.epoch != v.epoch {
				e = e.clone(v.epoch)
				v.store.replace(v.keyBuf, e)
			}
			aggregate.Apply(e.states, v.def.Aggs, r.Vals)
			e.count++
			v.stats.Touched++
		}
	}
	v.publishLocked()
}

// Lookup returns the view row whose group (or projected tuple) equals key.
// For group-by views key lists the grouping values in GroupCols order; for
// projection views it is the full projected tuple. This is the paper's
// summary query: answered from the view, never from the chronicle.
func (v *View) Lookup(key value.Tuple) (value.Tuple, bool) {
	// Lookups run concurrently with maintenance, so the probe key is built
	// in a pooled buffer, not the view's maintenance scratch.
	buf := keyenc.GetBuf()
	defer keyenc.PutBuf(buf)
	*buf = keyenc.AppendTuple(*buf, key)
	if s := v.snap.Load(); s != nil {
		// Lock-free: the snapshot tree and every entry in it are frozen.
		e, ok := s.tree.Get(*buf)
		if ok && e.count != 0 {
			if p := v.pg.Load(); p != nil {
				p.cache.hits.Add(1)
			}
			return v.rowOf(e), true
		}
		if p := v.pg.Load(); p != nil && p.nonResident.Load() > 0 {
			// The key may live in an evicted block: fault it in and probe
			// the live tree. Fully-resident paged views never get here.
			return v.pagedLookup(*buf)
		}
		return nil, false
	}
	if h, ok := v.store.(*hashStore); ok {
		// Lock-free: published hash entries are frozen (maintenance mutates
		// clones and re-installs atomically); the readers count keeps the
		// entry out of the freelist while we materialize the row.
		h.readers.Add(1)
		defer h.readers.Add(-1)
		e, ok := h.rget(*buf)
		if !ok || e.count == 0 {
			return nil, false
		}
		return v.rowOf(e), true
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	e, ok := v.store.get(*buf)
	if !ok || e.count == 0 {
		return nil, false
	}
	return v.rowOf(e), true
}

// ScanRange visits, in ascending group-key order, every view row whose
// group key (or projected tuple) is ≥ lo and < hi under tuple comparison;
// lo and hi may be prefixes of the full key. With the B-tree store this is
// an index range scan (the ordered store keys on an order-preserving
// encoding); the hash store degrades to a filtered full scan.
func (v *View) ScanRange(lo, hi value.Tuple, fn func(value.Tuple) bool) {
	loBuf, hiBuf := keyenc.GetBuf(), keyenc.GetBuf()
	defer keyenc.PutBuf(loBuf)
	defer keyenc.PutBuf(hiBuf)
	loKey := keyenc.AppendTuple(*loBuf, lo)
	hiKey := keyenc.AppendTuple(*hiBuf, hi)
	*loBuf, *hiBuf = loKey, hiKey
	if s := v.scanSnap(loKey, hiKey); s != nil {
		// Lock-free ordered range scan over the frozen snapshot; for paged
		// views scanSnap faulted the window resident first, and the COW
		// snapshot stays complete even if eviction runs mid-scan.
		s.tree.AscendRange(loKey, hiKey, func(_ []byte, e *entry) bool {
			if e.count == 0 {
				return true
			}
			return fn(v.rowOf(e))
		})
		return
	}
	if h, ok := v.store.(*hashStore); ok {
		h.readers.Add(1)
		defer h.readers.Add(-1)
		h.ascend(func(k []byte, e *entry) bool {
			if e.count == 0 || bytes.Compare(k, loKey) < 0 || bytes.Compare(k, hiKey) >= 0 {
				return true
			}
			return fn(v.rowOf(e))
		})
		return
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	v.store.ascend(func(k []byte, e *entry) bool {
		if e.count == 0 || bytes.Compare(k, loKey) < 0 || bytes.Compare(k, hiKey) >= 0 {
			return true
		}
		return fn(v.rowOf(e))
	})
}

// ScanRangeDesc visits the same half-open window as ScanRange in
// descending group-key order — "latest N" style queries walk it and stop
// early. The hash store has no order and falls back to a sorted, filtered
// full scan.
func (v *View) ScanRangeDesc(lo, hi value.Tuple, fn func(value.Tuple) bool) {
	loBuf, hiBuf := keyenc.GetBuf(), keyenc.GetBuf()
	defer keyenc.PutBuf(loBuf)
	defer keyenc.PutBuf(hiBuf)
	loKey := keyenc.AppendTuple(*loBuf, lo)
	hiKey := keyenc.AppendTuple(*hiBuf, hi)
	*loBuf, *hiBuf = loKey, hiKey
	if s := v.scanSnap(loKey, hiKey); s != nil {
		s.tree.DescendRange(loKey, hiKey, func(_ []byte, e *entry) bool {
			if e.count == 0 {
				return true
			}
			return fn(v.rowOf(e))
		})
		return
	}
	v.descendFallback(loKey, hiKey, true, fn)
}

// ScanDesc visits every view row in descending group-key order until fn
// returns false.
func (v *View) ScanDesc(fn func(value.Tuple) bool) {
	if s := v.scanSnap(nil, nil); s != nil {
		s.tree.Descend(func(_ []byte, e *entry) bool {
			if e.count == 0 {
				return true
			}
			return fn(v.rowOf(e))
		})
		return
	}
	v.descendFallback(nil, nil, false, fn)
}

// descendFallback emulates a descending scan on a store without ordered
// iteration by materializing the keys in order and walking them backwards.
// Hash stores run it lock-free against the published table; unknown stores
// fall back to the read lock.
func (v *View) descendFallback(loKey, hiKey []byte, bounded bool, fn func(value.Tuple) bool) {
	if h, ok := v.store.(*hashStore); ok {
		h.readers.Add(1)
		defer h.readers.Add(-1)
	} else {
		v.mu.RLock()
		defer v.mu.RUnlock()
	}
	var rows []*entry
	v.store.ascend(func(k []byte, e *entry) bool {
		if e.count == 0 {
			return true
		}
		if bounded && (bytes.Compare(k, loKey) < 0 || bytes.Compare(k, hiKey) >= 0) {
			return true
		}
		rows = append(rows, e)
		return true
	})
	for i := len(rows) - 1; i >= 0; i-- {
		if !fn(v.rowOf(rows[i])) {
			return
		}
	}
}

// Scan visits every view row until fn returns false. Both store kinds
// yield key order and both run lock-free: the B-tree from its frozen
// snapshot, the hash store from its published atomic table.
func (v *View) Scan(fn func(value.Tuple) bool) {
	if s := v.scanSnap(nil, nil); s != nil {
		s.tree.Ascend(func(_ []byte, e *entry) bool {
			if e.count == 0 {
				return true
			}
			return fn(v.rowOf(e))
		})
		return
	}
	if h, ok := v.store.(*hashStore); ok {
		h.readers.Add(1)
		defer h.readers.Add(-1)
	} else {
		v.mu.RLock()
		defer v.mu.RUnlock()
	}
	v.store.ascend(func(_ []byte, e *entry) bool {
		if e.count == 0 {
			return true
		}
		return fn(v.rowOf(e))
	})
}

// ScanAt visits every view row like Scan and returns the applied LSN of
// the state it scanned: the exact cursor position of the image fn saw. The
// changefeed's snapshot catch-up uses it to splice into the live stream —
// deltas with LSN ≤ the returned value are already reflected in the rows
// delivered, deltas above it are not. B-tree views read the stamped LSN of
// the frozen snapshot; hash views scan under the read lock, which excludes
// maintenance, so the live appliedLSN is exact for the scanned state.
func (v *View) ScanAt(fn func(value.Tuple) bool) uint64 {
	if s := v.scanSnap(nil, nil); s != nil {
		s.tree.Ascend(func(_ []byte, e *entry) bool {
			if e.count == 0 {
				return true
			}
			return fn(v.rowOf(e))
		})
		return s.lsn
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	v.store.ascend(func(_ []byte, e *entry) bool {
		if e.count == 0 {
			return true
		}
		return fn(v.rowOf(e))
	})
	return v.appliedLSN
}

// AppliedLSN returns the highest LSN folded into the view.
func (v *View) AppliedLSN() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.appliedLSN
}

// SetAppliedLSN restores the cursor position of the materialized state
// after a checkpoint restore, before the WAL suffix replays.
func (v *View) SetAppliedLSN(lsn uint64) {
	v.mu.Lock()
	if lsn > v.appliedLSN {
		v.appliedLSN = lsn
		v.publishLocked()
	}
	v.mu.Unlock()
}

// Rows materializes the view contents as a slice (tests and small queries).
func (v *View) Rows() []value.Tuple {
	out := make([]value.Tuple, 0, v.Len())
	v.Scan(func(t value.Tuple) bool {
		out = append(out, t)
		return true
	})
	return out
}

func (v *View) rowOf(e *entry) value.Tuple {
	if v.def.Mode == SummarizeProject {
		return e.vals
	}
	out := make(value.Tuple, 0, len(e.vals)+len(e.states))
	out = append(out, e.vals...)
	out = append(out, aggregate.Results(e.states)...)
	return out
}

// Recompute answers what the view *should* contain by reference-evaluating
// the expression over fully retained chronicles and summarizing from
// scratch. It exists for tests and the IM-Cᵏ baseline; it fails when any
// chronicle has dropped rows.
func (v *View) Recompute() ([]value.Tuple, error) {
	rows, err := algebra.Evaluate(v.def.Expr)
	if err != nil {
		return nil, err
	}
	fresh, err := New(v.def, StoreBTree)
	if err != nil {
		return nil, err
	}
	fresh.ApplyRows(rows)
	return fresh.Rows(), nil
}
