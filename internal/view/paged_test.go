package view

import (
	"fmt"
	"testing"

	"chronicledb/internal/algebra"
	"chronicledb/internal/value"
)

// acctName spreads test groups across the key space with stable width.
func acctName(i int) string { return fmt.Sprintf("acct%04d", i) }

// chainSim is an in-memory stand-in for the checkpoint chain: checkpoint
// images keyed by file name, served back through a FetchFunc.
type chainSim struct {
	files   map[string][]byte
	fetches int
}

func newChainSim() *chainSim { return &chainSim{files: map[string][]byte{}} }

func (c *chainSim) fetch(ref BlockRef) ([]byte, error) {
	data, ok := c.files[ref.File]
	if !ok {
		return nil, fmt.Errorf("no such chain file %q", ref.File)
	}
	if ref.Off < 0 || ref.Off+ref.Len > int64(len(data)) {
		return nil, fmt.Errorf("ref %s@%d+%d out of range (%d)", ref.File, ref.Off, ref.Len, len(data))
	}
	c.fetches++
	return data[ref.Off : ref.Off+ref.Len], nil
}

// checkpointTo runs a blocked checkpoint, stores the image as a chain
// file, and commits the refs — the storage layer's write/flip/commit
// sequence in miniature.
func (c *chainSim) checkpointTo(t *testing.T, v *View, file string, full bool) (dirty, total int) {
	t.Helper()
	img, pend, dirty, total, err := v.CheckpointBlocked(full)
	if err != nil {
		t.Fatal(err)
	}
	c.files[file] = img
	v.CommitBlockRefs(file, 0, pend)
	return dirty, total
}

// pagedView builds a paged minutes-per-account view with a tiny block
// size so a few hundred rows span many blocks.
func pagedView(t *testing.T, f *fixture, sim *chainSim, blockBytes int64, cache *Cache) *View {
	t.Helper()
	v := minutesPerAcct(t, f, StoreBTree)
	v.EnablePaging(blockBytes, sim.fetch, cache)
	if !v.Paged() {
		t.Fatal("EnablePaging did not take")
	}
	return v
}

func TestPagedCheckpointDirtyTracking(t *testing.T) {
	f := newFixture(t)
	sim := newChainSim()
	v := pagedView(t, f, sim, 256, NewCache(0))
	for i := 0; i < 200; i++ {
		v.Apply(f.appendCall(t, acctName(i), 5))
	}
	dirty, total := sim.checkpointTo(t, v, "ck1", true)
	if total < 4 {
		t.Fatalf("expected the 200-group view to split into several 256B blocks, got %d", total)
	}
	if dirty == 0 {
		t.Fatal("first checkpoint saw no dirty blocks")
	}
	if gotTotal, gotDirty, _ := v.BlockStats(); gotDirty != 0 || gotTotal != total {
		t.Fatalf("after commit: total=%d dirty=%d, want %d/0", gotTotal, gotDirty, total)
	}

	// Touch one group: exactly one block goes dirty.
	v.Apply(f.appendCall(t, acctName(7), 5))
	if _, gotDirty, _ := v.BlockStats(); gotDirty != 1 {
		t.Fatalf("one-group write dirtied %d blocks, want 1", gotDirty)
	}
	dirty, _ = sim.checkpointTo(t, v, "ck2", false)
	if dirty != 1 {
		t.Fatalf("incremental checkpoint re-encoded %d blocks, want 1", dirty)
	}

	// All state intact.
	for i := 0; i < 200; i++ {
		want := int64(5)
		if i == 7 {
			want = 10
		}
		row, ok := v.Lookup(value.Tuple{value.Str(acctName(i))})
		if !ok || row[1].AsInt() != want {
			t.Fatalf("acct %d: %v %v, want total %d", i, row, ok, want)
		}
	}
}

func TestPagedEvictAndFault(t *testing.T) {
	f := newFixture(t)
	sim := newChainSim()
	cache := NewCache(2 << 10) // far smaller than the view's ~200 groups
	v := pagedView(t, f, sim, 256, cache)
	const groups = 300
	for i := 0; i < groups; i++ {
		v.Apply(f.appendCall(t, acctName(i), int64(i%9+1)))
	}
	sim.checkpointTo(t, v, "ck1", true)
	cache.maintain()

	if cache.UsedBytes() > cache.Budget() {
		t.Fatalf("resident bytes %d exceed budget %d after maintain", cache.UsedBytes(), cache.Budget())
	}
	if cache.Evictions() == 0 {
		t.Fatal("no evictions despite budget pressure")
	}
	total, _, resident := v.BlockStats()
	if resident >= total {
		t.Fatalf("no block went cold: %d/%d resident", resident, total)
	}
	if v.Len() != groups {
		t.Fatalf("Len = %d after eviction, want %d (logical count must include cold blocks)", v.Len(), groups)
	}

	// Every key still readable — cold blocks fault back in.
	misses0 := cache.Misses()
	for i := 0; i < groups; i++ {
		row, ok := v.Lookup(value.Tuple{value.Str(acctName(i))})
		if !ok || row[1].AsInt() != int64(i%9+1) {
			t.Fatalf("acct %d after eviction: %v %v", i, row, ok)
		}
	}
	if cache.Misses() == misses0 {
		t.Fatal("no block faults while reading evicted keys")
	}
	if cache.UsedBytes() > cache.Budget() {
		t.Fatalf("resident bytes %d exceed budget %d after fault storm", cache.UsedBytes(), cache.Budget())
	}

	// A full scan sees every row exactly once (transient materialization
	// through the COW snapshot).
	seen := 0
	v.Scan(func(value.Tuple) bool { seen++; return true })
	if seen != groups {
		t.Fatalf("Scan visited %d rows, want %d", seen, groups)
	}

	// Writes to evicted keys fault the block in and stay correct.
	v.Apply(f.appendCall(t, acctName(0), 100))
	row, ok := v.Lookup(value.Tuple{value.Str(acctName(0))})
	if !ok || row[1].AsInt() != int64(0%9+1)+100 {
		t.Fatalf("write-after-evict: %v %v", row, ok)
	}
}

func TestPagedRestoreLazy(t *testing.T) {
	f := newFixture(t)
	sim := newChainSim()
	v := pagedView(t, f, sim, 256, NewCache(0))
	const groups = 120
	for i := 0; i < groups; i++ {
		v.Apply(f.appendCall(t, acctName(i), 3))
	}
	img, pend, _, total, err := v.CheckpointBlocked(true)
	if err != nil {
		t.Fatal(err)
	}
	sim.files["ck1"] = img
	v.CommitBlockRefs("ck1", 0, pend)

	// Fresh view restores lazily: index only, zero block decodes.
	f2 := newFixture(t)
	v2 := pagedView(t, f2, sim, 256, NewCache(0))
	sim.fetches = 0
	if err := v2.RestoreBlocked(img, "ck1", 0, sim.fetch); err != nil {
		t.Fatal(err)
	}
	if sim.fetches != 0 {
		t.Fatalf("lazy restore fetched %d blocks, want 0", sim.fetches)
	}
	if v2.Len() != groups {
		t.Fatalf("restored Len = %d, want %d", v2.Len(), groups)
	}
	gotTotal, gotDirty, gotResident := v2.BlockStats()
	if gotTotal != total || gotDirty != 0 || gotResident != 0 {
		t.Fatalf("restored stats total=%d dirty=%d resident=%d, want %d/0/0", gotTotal, gotDirty, gotResident, total)
	}
	// First lookup faults exactly the covering block.
	row, ok := v2.Lookup(value.Tuple{value.Str(acctName(55))})
	if !ok || row[1].AsInt() != 3 {
		t.Fatalf("lazy lookup: %v %v", row, ok)
	}
	if sim.fetches != 1 {
		t.Fatalf("lookup faulted %d blocks, want 1", sim.fetches)
	}
	// Full scan faults the rest and matches the source view.
	if got, want := fmt.Sprint(v2.Rows()), fmt.Sprint(v.Rows()); got != want {
		t.Fatalf("restored rows diverge:\n got %s\nwant %s", got, want)
	}
}

func TestPagedRestoreEagerUnpaged(t *testing.T) {
	f := newFixture(t)
	sim := newChainSim()
	v := pagedView(t, f, sim, 256, NewCache(0))
	for i := 0; i < 80; i++ {
		v.Apply(f.appendCall(t, acctName(i), 3))
	}
	img, pend, _, _, err := v.CheckpointBlocked(true)
	if err != nil {
		t.Fatal(err)
	}
	sim.files["ck1"] = img
	v.CommitBlockRefs("ck1", 0, pend)

	// Unpaged view (paging disabled on reopen) restores eagerly.
	f2 := newFixture(t)
	v2 := minutesPerAcct(t, f2, StoreBTree)
	if err := v2.RestoreBlocked(img, "ck1", 0, sim.fetch); err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(v2.Rows()), fmt.Sprint(v.Rows()); got != want {
		t.Fatalf("eager restore diverges:\n got %s\nwant %s", got, want)
	}
}

func TestPagedIncrementalRestoreMixedRefs(t *testing.T) {
	// Incremental images hold refs into older chain files; a restore from
	// the newest image must resolve blocks across files.
	f := newFixture(t)
	sim := newChainSim()
	v := pagedView(t, f, sim, 256, NewCache(0))
	for i := 0; i < 150; i++ {
		v.Apply(f.appendCall(t, acctName(i), 2))
	}
	sim.checkpointTo(t, v, "ck1", true)
	v.Apply(f.appendCall(t, acctName(3), 2))
	img, pend, dirty, _, err := v.CheckpointBlocked(false)
	if err != nil {
		t.Fatal(err)
	}
	if dirty != 1 {
		t.Fatalf("dirty = %d, want 1", dirty)
	}
	sim.files["ck2"] = img
	v.CommitBlockRefs("ck2", 0, pend)

	f2 := newFixture(t)
	v2 := pagedView(t, f2, sim, 256, NewCache(0))
	if err := v2.RestoreBlocked(img, "ck2", 0, sim.fetch); err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(v2.Rows()), fmt.Sprint(v.Rows()); got != want {
		t.Fatalf("mixed-ref restore diverges:\n got %s\nwant %s", got, want)
	}
}

func TestBlockSplitBoundaries(t *testing.T) {
	f := newFixture(t)
	sim := newChainSim()
	v := pagedView(t, f, sim, 128, NewCache(0)) // tiny blocks force splits
	for i := 0; i < 100; i++ {
		v.Apply(f.appendCall(t, acctName(i), 1))
	}
	_, total := sim.checkpointTo(t, v, "ck1", true)
	if total < 10 {
		t.Fatalf("128B blocks over 100 groups should split heavily, got %d blocks", total)
	}
	// Grow one key range until its block splits again on checkpoint.
	for i := 0; i < 100; i++ {
		v.Apply(f.appendCall(t, fmt.Sprintf("%s-sub%03d", acctName(42), i), 1))
	}
	_, total2 := sim.checkpointTo(t, v, "ck2", false)
	if total2 <= total {
		t.Fatalf("dense inserts did not split: %d → %d blocks", total, total2)
	}
	for i := 0; i < 100; i++ {
		if _, ok := v.Lookup(value.Tuple{value.Str(acctName(i))}); !ok {
			t.Fatalf("acct %d lost after split", i)
		}
		if _, ok := v.Lookup(value.Tuple{value.Str(fmt.Sprintf("%s-sub%03d", acctName(42), i))}); !ok {
			t.Fatalf("sub key %d lost after split", i)
		}
	}
}

func TestPagedProjectionView(t *testing.T) {
	f := newFixture(t)
	sim := newChainSim()
	v, err := New(Def{
		Name: "accts",
		Expr: algebra.NewScan(f.calls),
		Mode: SummarizeProject,
		Cols: []int{0},
	}, StoreBTree)
	if err != nil {
		t.Fatal(err)
	}
	v.EnablePaging(128, sim.fetch, NewCache(0))
	for i := 0; i < 60; i++ {
		v.Apply(f.appendCall(t, acctName(i%20), 1))
	}
	sim.checkpointTo(t, v, "ck1", true)
	f2 := newFixture(t)
	v2, err := New(Def{Name: "accts", Expr: algebra.NewScan(f2.calls), Mode: SummarizeProject, Cols: []int{0}}, StoreBTree)
	if err != nil {
		t.Fatal(err)
	}
	v2.EnablePaging(128, sim.fetch, NewCache(0))
	img, pend, _, _, err := v.CheckpointBlocked(true)
	if err != nil {
		t.Fatal(err)
	}
	sim.files["ck2"] = img
	v.CommitBlockRefs("ck2", 0, pend)
	if err := v2.RestoreBlocked(img, "ck2", 0, sim.fetch); err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(v2.Rows()), fmt.Sprint(v.Rows()); got != want {
		t.Fatalf("projection restore diverges:\n got %s\nwant %s", got, want)
	}
}

func TestBlockedDeltaMergeLazy(t *testing.T) {
	f := newFixture(t)
	sim := newChainSim()
	v := pagedView(t, f, sim, 256, NewCache(0))
	const groups = 150
	for i := 0; i < groups; i++ {
		v.Apply(f.appendCall(t, acctName(i), 2))
	}
	full, pend, _, fullTotal, err := v.CheckpointBlocked(true)
	if err != nil {
		t.Fatal(err)
	}
	sim.files["ck1"] = full
	v.CommitBlockRefs("ck1", 0, pend)

	// Dirty two separated ranges: a single-group touch, and a burst of new
	// groups clustered after acct0100 so their block splits at the cut.
	v.Apply(f.appendCall(t, acctName(3), 2))
	for j := 0; j < 30; j++ {
		v.Apply(f.appendCall(t, fmt.Sprintf("acct0100x%02d", j), 1))
	}
	delta, dpend, dirty, total, err := v.CheckpointBlockedDelta()
	if err != nil {
		t.Fatal(err)
	}
	if dirty < 2 {
		t.Fatalf("delta saw %d dirty blocks, want >= 2", dirty)
	}
	if total <= fullTotal {
		t.Fatalf("split burst did not grow the block list: %d vs %d", total, fullTotal)
	}
	// The whole point: a delta carries no records for clean blocks.
	if len(delta) >= len(full)/2 {
		t.Fatalf("delta image %dB not much smaller than full %dB", len(delta), len(full))
	}
	sim.files["ck2"] = delta
	v.CommitBlockRefs("ck2", 0, dpend)
	if _, gotDirty, _ := v.BlockStats(); gotDirty != 0 {
		t.Fatalf("%d blocks still dirty after delta commit", gotDirty)
	}

	// Lazy restore: base image, then the delta merges in with no fetches.
	f2 := newFixture(t)
	v2 := pagedView(t, f2, sim, 256, NewCache(0))
	if err := v2.RestoreBlocked(full, "ck1", 0, sim.fetch); err != nil {
		t.Fatal(err)
	}
	sim.fetches = 0
	if err := v2.RestoreBlockedDelta(delta, "ck2", 0); err != nil {
		t.Fatal(err)
	}
	if sim.fetches != 0 {
		t.Fatalf("delta merge fetched %d blocks, want 0", sim.fetches)
	}
	gotTotal, gotDirty, gotResident := v2.BlockStats()
	if gotTotal != total || gotDirty != 0 || gotResident != 0 {
		t.Fatalf("merged stats total=%d dirty=%d resident=%d, want %d/0/0", gotTotal, gotDirty, gotResident, total)
	}
	if got, want := fmt.Sprint(v2.Rows()), fmt.Sprint(v.Rows()); got != want {
		t.Fatalf("delta merge diverges:\n got %s\nwant %s", got, want)
	}
}

func TestBlockedDeltaMergeEager(t *testing.T) {
	f := newFixture(t)
	sim := newChainSim()
	v := pagedView(t, f, sim, 256, NewCache(0))
	for i := 0; i < 80; i++ {
		v.Apply(f.appendCall(t, acctName(i), 3))
	}
	full, pend, _, _, err := v.CheckpointBlocked(true)
	if err != nil {
		t.Fatal(err)
	}
	sim.files["ck1"] = full
	v.CommitBlockRefs("ck1", 0, pend)
	v.Apply(f.appendCall(t, acctName(42), 3))
	delta, dpend, _, _, err := v.CheckpointBlockedDelta()
	if err != nil {
		t.Fatal(err)
	}
	sim.files["ck2"] = delta
	v.CommitBlockRefs("ck2", 0, dpend)

	// Unpaged reopen: eager base restore, then the delta replaces the
	// covered range in the live store.
	f2 := newFixture(t)
	v2 := minutesPerAcct(t, f2, StoreBTree)
	if err := v2.RestoreBlocked(full, "ck1", 0, sim.fetch); err != nil {
		t.Fatal(err)
	}
	if err := v2.RestoreBlockedDelta(delta, "ck2", 0); err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(v2.Rows()), fmt.Sprint(v.Rows()); got != want {
		t.Fatalf("eager delta merge diverges:\n got %s\nwant %s", got, want)
	}
}

func TestBlockedDeltaFirstImage(t *testing.T) {
	// A view created after the last full cut has never committed a block:
	// its first delta is a single -∞..+∞ run and must merge into a fresh
	// (or empty) index on restore.
	f := newFixture(t)
	sim := newChainSim()
	v := pagedView(t, f, sim, 256, NewCache(0))
	for i := 0; i < 40; i++ {
		v.Apply(f.appendCall(t, acctName(i), 4))
	}
	delta, dpend, dirty, _, err := v.CheckpointBlockedDelta()
	if err != nil {
		t.Fatal(err)
	}
	if dirty == 0 {
		t.Fatal("first delta saw no dirty blocks")
	}
	sim.files["ck1"] = delta
	v.CommitBlockRefs("ck1", 0, dpend)

	f2 := newFixture(t)
	v2 := pagedView(t, f2, sim, 256, NewCache(0))
	if err := v2.RestoreBlockedDelta(delta, "ck1", 0); err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(v2.Rows()), fmt.Sprint(v.Rows()); got != want {
		t.Fatalf("first-image delta diverges:\n got %s\nwant %s", got, want)
	}
}
