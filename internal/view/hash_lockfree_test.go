package view

import (
	"sync"
	"testing"
	"time"

	"chronicledb/internal/value"
)

// TestHashReadsDoNotAcquireViewLock is the lock-freedom guard for hash
// view readers: it holds v.mu exclusively — as maintenance does — and
// requires Lookup, Len, Scan, ScanDesc, ScanRange, and ScanRangeDesc to
// complete anyway. Before PR 8 these took v.mu.RLock and would deadlock
// here; now they read the atomically published table.
func TestHashReadsDoNotAcquireViewLock(t *testing.T) {
	f := newFixture(t)
	v := minutesPerAcct(t, f, StoreHash)
	v.Apply(f.appendCall(t, "acct1", 10))
	v.Apply(f.appendCall(t, "acct2", 20))

	v.mu.Lock()
	defer v.mu.Unlock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if row, ok := v.Lookup(value.Tuple{value.Str("acct1")}); !ok || row[1].AsInt() != 10 {
			t.Errorf("Lookup = %v, %v", row, ok)
		}
		if n := v.Len(); n != 2 {
			t.Errorf("Len = %d, want 2", n)
		}
		rows := 0
		v.Scan(func(value.Tuple) bool { rows++; return true })
		if rows != 2 {
			t.Errorf("Scan visited %d rows, want 2", rows)
		}
		rows = 0
		v.ScanDesc(func(value.Tuple) bool { rows++; return true })
		if rows != 2 {
			t.Errorf("ScanDesc visited %d rows, want 2", rows)
		}
		rows = 0
		v.ScanRange(nil, value.Tuple{value.Str("zzz")}, func(value.Tuple) bool { rows++; return true })
		if rows != 2 {
			t.Errorf("ScanRange visited %d rows, want 2", rows)
		}
		rows = 0
		v.ScanRangeDesc(nil, value.Tuple{value.Str("zzz")}, func(value.Tuple) bool { rows++; return true })
		if rows != 2 {
			t.Errorf("ScanRangeDesc visited %d rows, want 2", rows)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("a hash view read blocked on v.mu — the lock-free hash read path regressed")
	}
}

// TestHashConcurrentReadersSeeConsistentEntries hammers a hash view with
// concurrent lock-free readers while maintenance keeps publishing. Every
// entry a reader observes must be internally consistent: SUM(minutes) and
// COUNT(*) move in lockstep (each append adds exactly 7 minutes), so a
// torn read — possible if maintenance mutated a published entry in place
// or recycled one under a live reader — shows up as total != 7*n. Run
// under -race this also checks the publication ordering itself.
func TestHashConcurrentReadersSeeConsistentEntries(t *testing.T) {
	f := newFixture(t)
	v := minutesPerAcct(t, f, StoreHash)
	accts := []string{"a", "b", "c", "d"}
	for _, a := range accts {
		v.Apply(f.appendCall(t, a, 7))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				acct := accts[(i+r)%len(accts)]
				if row, ok := v.Lookup(value.Tuple{value.Str(acct)}); ok {
					if total, n := row[1].AsInt(), row[2].AsInt(); total != 7*n {
						t.Errorf("torn read: acct %s total=%d n=%d", acct, total, n)
						return
					}
				}
				v.Scan(func(row value.Tuple) bool {
					if total, n := row[1].AsInt(), row[2].AsInt(); total != 7*n {
						t.Errorf("torn scan row: %v", row)
						return false
					}
					return true
				})
			}
		}(r)
	}
	for i := 0; i < 2000; i++ {
		v.Apply(f.appendCall(t, accts[i%len(accts)], 7))
	}
	close(stop)
	wg.Wait()

	for _, a := range accts {
		row, ok := v.Lookup(value.Tuple{value.Str(a)})
		if !ok || row[1].AsInt() != 7*row[2].AsInt() {
			t.Fatalf("final state inconsistent for %s: %v %v", a, row, ok)
		}
	}
}
