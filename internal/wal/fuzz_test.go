package wal

import "testing"

// FuzzDecodeRecord: arbitrary payloads must never panic the decoder.
func FuzzDecodeRecord(f *testing.F) {
	for _, r := range sampleRecords() {
		f.Add(encodeRecord(nil, r))
	}
	f.Add([]byte{})
	f.Add([]byte{byte(RecAppend), 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeRecord(data)
		if err != nil {
			return
		}
		// Accepted records must re-encode without panicking.
		_ = encodeRecord(nil, rec)
	})
}
