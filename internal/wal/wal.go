// Package wal implements the write-ahead log of a chronicle database.
//
// Transaction *recording* systems must not lose records: every durable
// mutation (chronicle append, proactive relation update) is framed,
// checksummed, and written to the log before it is applied. Because the
// chronicle itself is not retained, the log plus the view checkpoints are
// the only durable record of past activity; recovery replays the log tail
// over the last checkpoint instead of reprocessing the full history (E12).
//
// Frame format: u32 little-endian payload length, u32 CRC-32 (IEEE) of the
// payload, payload. Replay stops cleanly at the first torn or corrupt
// frame, which is the expected crash shape for an append-only file.
//
// All file access goes through fault.FS so the crash-torture harness can
// substitute a simulated disk; production code uses fault.OS. A Log that
// sees any write, flush, or sync failure latches a sticky error and fails
// every subsequent operation fast — after a failed fsync the kernel may
// have dropped the dirty pages (the "fsyncgate" lesson), so nothing later
// appended to that file may be trusted as durable.
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"chronicledb/internal/fault"
	"chronicledb/internal/value"
)

// maxFrame caps a frame payload during replay; a length prefix beyond it
// is treated as log-tail corruption rather than an allocation request.
const maxFrame = 64 << 20

// RecordKind tags a log record.
type RecordKind uint8

// The record kinds.
const (
	// RecDDL is a schema statement (stored as its source text and replayed
	// through the statement executor).
	RecDDL RecordKind = iota
	// RecAppend is a chronicle append (possibly multi-chronicle).
	RecAppend
	// RecUpsert is a proactive relation upsert.
	RecUpsert
	// RecDelete is a proactive relation delete (Tuple holds key values).
	RecDelete
)

// Part is one chronicle's share of an append record.
type Part struct {
	Chronicle string
	Tuples    []value.Tuple
}

// Record is one durable mutation.
type Record struct {
	Kind     RecordKind
	LSN      uint64 // global logical sequence number (orders records across segments)
	Stmt     string // RecDDL
	SN       int64  // RecAppend
	Chronon  int64  // RecAppend
	Parts    []Part // RecAppend
	Relation string // RecUpsert / RecDelete
	Tuple    value.Tuple
}

// Log is an append-only record log. It is safe for concurrent use: each
// shard has a single writer goroutine, but checkpointing (Reset) and
// flushing may come from other goroutines.
type Log struct {
	mu       sync.Mutex
	path     string
	f        fault.File
	w        *bufio.Writer
	syncEach bool
	err      error // sticky: first write/flush/sync failure; fails everything after
	buf      []byte
}

// Open opens (creating if needed) the log at path for appending. When
// syncEach is true every record is fsynced — the durable configuration; off,
// records are buffered and flushed on Flush/Close (faster, test-friendly).
func Open(path string, syncEach bool) (*Log, error) {
	return OpenFS(fault.OS, path, syncEach)
}

// OpenFS is Open against an explicit filesystem.
func OpenFS(fsys fault.FS, path string, syncEach bool) (*Log, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	return &Log{path: path, f: f, w: bufio.NewWriterSize(f, 1<<16), syncEach: syncEach}, nil
}

// Path returns the log file path.
func (l *Log) Path() string { return l.path }

// Err returns the sticky error, if any write, flush, or sync has failed.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Append frames and writes one record. The frame is encoded completely
// before any byte reaches the writer, so a failure never leaves a partial
// frame mid-file; any failure latches the sticky error.
func (l *Log) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return fmt.Errorf("wal: log failed: %w", l.err)
	}
	l.buf = append(l.buf[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	l.buf = encodeRecord(l.buf, r)
	payload := l.buf[8:]
	binary.LittleEndian.PutUint32(l.buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(l.buf[4:], crc32.ChecksumIEEE(payload))
	if _, err := l.w.Write(l.buf); err != nil {
		l.err = err
		return fmt.Errorf("wal: write: %w", err)
	}
	if l.syncEach {
		return l.syncLocked()
	}
	return nil
}

// Flush pushes buffered records to the OS.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

func (l *Log) flushLocked() error {
	if l.err != nil {
		return fmt.Errorf("wal: log failed: %w", l.err)
	}
	if err := l.w.Flush(); err != nil {
		l.err = err
		return fmt.Errorf("wal: flush: %w", err)
	}
	return nil
}

// Sync flushes and fsyncs.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.err = err
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.flushLocked(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Reset truncates the log to empty (after a successful checkpoint) and
// syncs the truncation, so a later crash cannot resurrect pre-checkpoint
// records with un-checkpointed bytes appended after them.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.f.Truncate(0); err != nil {
		l.err = err
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		l.err = err
		return fmt.Errorf("wal: seek: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.err = err
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.w.Reset(l.f)
	return nil
}

// Replay reads records from path in order, calling fn for each. It stops
// cleanly at the first torn or corrupt frame (the crash tail), reporting
// how many records were applied and how many trailing bytes were ignored.
// A missing file replays zero records.
func Replay(path string, fn func(Record) error) (n int, ignored int64, err error) {
	return ReplayFS(fault.OS, path, fn)
}

// ReplayFS is Replay against an explicit filesystem. The log is streamed
// through a buffered reader rather than loaded whole, so replaying a long
// tail does not double resident memory.
func ReplayFS(fsys fault.FS, path string, fn func(Record) error) (n int, ignored int64, err error) {
	f, err := fsys.Open(path)
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("wal: open: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var hdr [8]byte
	var payload []byte
	for {
		hn, herr := io.ReadFull(br, hdr[:])
		if herr == io.EOF {
			return n, 0, nil
		}
		if herr == io.ErrUnexpectedEOF {
			return n, int64(hn), nil
		}
		if herr != nil {
			return n, 0, fmt.Errorf("wal: read: %w", herr)
		}
		plen := int(binary.LittleEndian.Uint32(hdr[0:]))
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if plen <= 0 || plen > maxFrame {
			return n, 8 + drain(br), nil
		}
		if cap(payload) < plen {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		pn, perr := io.ReadFull(br, payload)
		if perr == io.EOF || perr == io.ErrUnexpectedEOF {
			return n, 8 + int64(pn), nil
		}
		if perr != nil {
			return n, 0, fmt.Errorf("wal: read: %w", perr)
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return n, 8 + int64(plen) + drain(br), nil
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return n, 8 + int64(plen) + drain(br), nil
		}
		if err := fn(rec); err != nil {
			return n, 0, fmt.Errorf("wal: applying record %d: %w", n, err)
		}
		n++
	}
}

// drain counts the unread remainder of a corrupt log tail.
func drain(br *bufio.Reader) int64 {
	c, _ := io.Copy(io.Discard, br)
	return c
}

func encodeRecord(dst []byte, r Record) []byte {
	dst = append(dst, byte(r.Kind))
	dst = binary.AppendUvarint(dst, r.LSN)
	switch r.Kind {
	case RecDDL:
		dst = appendString(dst, r.Stmt)
	case RecAppend:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(r.SN))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Chronon))
		dst = binary.AppendUvarint(dst, uint64(len(r.Parts)))
		for _, p := range r.Parts {
			dst = appendString(dst, p.Chronicle)
			dst = binary.AppendUvarint(dst, uint64(len(p.Tuples)))
			for _, t := range p.Tuples {
				dst = value.AppendTuple(dst, t)
			}
		}
	case RecUpsert, RecDelete:
		dst = appendString(dst, r.Relation)
		dst = value.AppendTuple(dst, r.Tuple)
	}
	return dst
}

func decodeRecord(b []byte) (Record, error) {
	if len(b) == 0 {
		return Record{}, fmt.Errorf("wal: empty payload")
	}
	r := Record{Kind: RecordKind(b[0])}
	b = b[1:]
	lsn, sz := binary.Uvarint(b)
	if sz <= 0 {
		return Record{}, fmt.Errorf("wal: bad record lsn")
	}
	r.LSN = lsn
	b = b[sz:]
	switch r.Kind {
	case RecDDL:
		stmt, _, err := readString(b)
		if err != nil {
			return Record{}, err
		}
		r.Stmt = stmt
	case RecAppend:
		if len(b) < 16 {
			return Record{}, fmt.Errorf("wal: truncated append header")
		}
		r.SN = int64(binary.LittleEndian.Uint64(b))
		r.Chronon = int64(binary.LittleEndian.Uint64(b[8:]))
		b = b[16:]
		nParts, sz := binary.Uvarint(b)
		if sz <= 0 {
			return Record{}, fmt.Errorf("wal: bad part count")
		}
		b = b[sz:]
		for i := uint64(0); i < nParts; i++ {
			name, used, err := readString(b)
			if err != nil {
				return Record{}, err
			}
			b = b[used:]
			nTuples, sz := binary.Uvarint(b)
			if sz <= 0 {
				return Record{}, fmt.Errorf("wal: bad tuple count")
			}
			b = b[sz:]
			p := Part{Chronicle: name}
			for j := uint64(0); j < nTuples; j++ {
				t, used, err := value.DecodeTuple(b)
				if err != nil {
					return Record{}, err
				}
				p.Tuples = append(p.Tuples, t)
				b = b[used:]
			}
			r.Parts = append(r.Parts, p)
		}
	case RecUpsert, RecDelete:
		name, used, err := readString(b)
		if err != nil {
			return Record{}, err
		}
		b = b[used:]
		t, _, err := value.DecodeTuple(b)
		if err != nil {
			return Record{}, err
		}
		r.Relation = name
		r.Tuple = t
	default:
		return Record{}, fmt.Errorf("wal: unknown record kind %d", r.Kind)
	}
	return r, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readString(b []byte) (string, int, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return "", 0, fmt.Errorf("wal: bad string")
	}
	return string(b[sz : sz+int(n)]), sz + int(n), nil
}
