// Package wal implements the write-ahead log of a chronicle database.
//
// Transaction *recording* systems must not lose records: every durable
// mutation (chronicle append, proactive relation update) is framed,
// checksummed, and written to the log before it is applied. Because the
// chronicle itself is not retained, the log plus the view checkpoints are
// the only durable record of past activity; recovery replays the log tail
// over the last checkpoint instead of reprocessing the full history (E12).
//
// Frame format: u32 little-endian payload length, u32 CRC-32 (IEEE) of the
// payload, payload. Replay stops cleanly at the first torn or corrupt
// frame, which is the expected crash shape for an append-only file.
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"chronicledb/internal/value"
)

// RecordKind tags a log record.
type RecordKind uint8

// The record kinds.
const (
	// RecDDL is a schema statement (stored as its source text and replayed
	// through the statement executor).
	RecDDL RecordKind = iota
	// RecAppend is a chronicle append (possibly multi-chronicle).
	RecAppend
	// RecUpsert is a proactive relation upsert.
	RecUpsert
	// RecDelete is a proactive relation delete (Tuple holds key values).
	RecDelete
)

// Part is one chronicle's share of an append record.
type Part struct {
	Chronicle string
	Tuples    []value.Tuple
}

// Record is one durable mutation.
type Record struct {
	Kind     RecordKind
	LSN      uint64 // global logical sequence number (orders records across segments)
	Stmt     string // RecDDL
	SN       int64  // RecAppend
	Chronon  int64  // RecAppend
	Parts    []Part // RecAppend
	Relation string // RecUpsert / RecDelete
	Tuple    value.Tuple
}

// Log is an append-only record log. It is safe for concurrent use: each
// shard has a single writer goroutine, but checkpointing (Reset) and
// flushing may come from other goroutines.
type Log struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	w        *bufio.Writer
	syncEach bool
}

// Open opens (creating if needed) the log at path for appending. When
// syncEach is true every record is fsynced — the durable configuration; off,
// records are buffered and flushed on Flush/Close (faster, test-friendly).
func Open(path string, syncEach bool) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	return &Log{path: path, f: f, w: bufio.NewWriterSize(f, 1<<16), syncEach: syncEach}, nil
}

// Path returns the log file path.
func (l *Log) Path() string { return l.path }

// Append frames and writes one record.
func (l *Log) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	payload := encodeRecord(nil, r)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: write: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return fmt.Errorf("wal: write: %w", err)
	}
	if l.syncEach {
		return l.syncLocked()
	}
	return nil
}

// Flush pushes buffered records to the OS.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

func (l *Log) flushLocked() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	return nil
}

// Sync flushes and fsyncs.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.flushLocked(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Reset truncates the log to empty (after a successful checkpoint).
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek: %w", err)
	}
	l.w.Reset(l.f)
	return nil
}

// Replay reads records from path in order, calling fn for each. It stops
// cleanly at the first torn or corrupt frame (the crash tail), reporting
// how many records were applied and how many trailing bytes were ignored.
// A missing file replays zero records.
func Replay(path string, fn func(Record) error) (n int, ignored int64, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("wal: read: %w", err)
	}
	off := 0
	for {
		if len(data)-off < 8 {
			return n, int64(len(data) - off), nil
		}
		plen := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if plen <= 0 || len(data)-off-8 < plen {
			return n, int64(len(data) - off), nil
		}
		payload := data[off+8 : off+8+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			return n, int64(len(data) - off), nil
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return n, int64(len(data) - off), nil
		}
		if err := fn(rec); err != nil {
			return n, 0, fmt.Errorf("wal: applying record %d: %w", n, err)
		}
		n++
		off += 8 + plen
	}
}

func encodeRecord(dst []byte, r Record) []byte {
	dst = append(dst, byte(r.Kind))
	dst = binary.AppendUvarint(dst, r.LSN)
	switch r.Kind {
	case RecDDL:
		dst = appendString(dst, r.Stmt)
	case RecAppend:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(r.SN))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Chronon))
		dst = binary.AppendUvarint(dst, uint64(len(r.Parts)))
		for _, p := range r.Parts {
			dst = appendString(dst, p.Chronicle)
			dst = binary.AppendUvarint(dst, uint64(len(p.Tuples)))
			for _, t := range p.Tuples {
				dst = value.AppendTuple(dst, t)
			}
		}
	case RecUpsert, RecDelete:
		dst = appendString(dst, r.Relation)
		dst = value.AppendTuple(dst, r.Tuple)
	}
	return dst
}

func decodeRecord(b []byte) (Record, error) {
	if len(b) == 0 {
		return Record{}, fmt.Errorf("wal: empty payload")
	}
	r := Record{Kind: RecordKind(b[0])}
	b = b[1:]
	lsn, sz := binary.Uvarint(b)
	if sz <= 0 {
		return Record{}, fmt.Errorf("wal: bad record lsn")
	}
	r.LSN = lsn
	b = b[sz:]
	switch r.Kind {
	case RecDDL:
		stmt, _, err := readString(b)
		if err != nil {
			return Record{}, err
		}
		r.Stmt = stmt
	case RecAppend:
		if len(b) < 16 {
			return Record{}, fmt.Errorf("wal: truncated append header")
		}
		r.SN = int64(binary.LittleEndian.Uint64(b))
		r.Chronon = int64(binary.LittleEndian.Uint64(b[8:]))
		b = b[16:]
		nParts, sz := binary.Uvarint(b)
		if sz <= 0 {
			return Record{}, fmt.Errorf("wal: bad part count")
		}
		b = b[sz:]
		for i := uint64(0); i < nParts; i++ {
			name, used, err := readString(b)
			if err != nil {
				return Record{}, err
			}
			b = b[used:]
			nTuples, sz := binary.Uvarint(b)
			if sz <= 0 {
				return Record{}, fmt.Errorf("wal: bad tuple count")
			}
			b = b[sz:]
			p := Part{Chronicle: name}
			for j := uint64(0); j < nTuples; j++ {
				t, used, err := value.DecodeTuple(b)
				if err != nil {
					return Record{}, err
				}
				p.Tuples = append(p.Tuples, t)
				b = b[used:]
			}
			r.Parts = append(r.Parts, p)
		}
	case RecUpsert, RecDelete:
		name, used, err := readString(b)
		if err != nil {
			return Record{}, err
		}
		b = b[used:]
		t, _, err := value.DecodeTuple(b)
		if err != nil {
			return Record{}, err
		}
		r.Relation = name
		r.Tuple = t
	default:
		return Record{}, fmt.Errorf("wal: unknown record kind %d", r.Kind)
	}
	return r, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readString(b []byte) (string, int, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return "", 0, fmt.Errorf("wal: bad string")
	}
	return string(b[sz : sz+int(n)]), sz + int(n), nil
}
