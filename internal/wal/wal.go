// Package wal implements the write-ahead log of a chronicle database.
//
// Transaction *recording* systems must not lose records: every durable
// mutation (chronicle append, proactive relation update) is framed,
// checksummed, and written to the log before it is applied. Because the
// chronicle itself is not retained, the log plus the view checkpoints are
// the only durable record of past activity; recovery replays the log tail
// over the last checkpoint instead of reprocessing the full history (E12).
//
// Frame format: u32 little-endian payload length, u32 CRC-32 (IEEE) of the
// payload, payload. Replay stops cleanly at the first torn or corrupt
// frame, which is the expected crash shape for an append-only file.
//
// All file access goes through fault.FS so the crash-torture harness can
// substitute a simulated disk; production code uses fault.OS. A Log that
// sees any write, flush, or sync failure latches a sticky error and fails
// every subsequent operation fast — after a failed fsync the kernel may
// have dropped the dirty pages (the "fsyncgate" lesson), so nothing later
// appended to that file may be trusted as durable.
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"chronicledb/internal/fault"
	"chronicledb/internal/stats"
	"chronicledb/internal/value"
)

// maxFrame caps a frame payload during replay; a length prefix beyond it
// is treated as log-tail corruption rather than an allocation request.
const maxFrame = 64 << 20

// RecordKind tags a log record.
type RecordKind uint8

// The record kinds.
const (
	// RecDDL is a schema statement (stored as its source text and replayed
	// through the statement executor).
	RecDDL RecordKind = iota
	// RecAppend is a chronicle append (possibly multi-chronicle).
	RecAppend
	// RecUpsert is a proactive relation upsert.
	RecUpsert
	// RecDelete is a proactive relation delete (Tuple holds key values).
	RecDelete
	// RecAppendEach is an idempotent bulk append: one chronicle, one tuple
	// run with consecutive sequence numbers starting at SN, tagged with the
	// (ClientID, RequestID) pair that identifies the request. The whole
	// request is one frame so the rows and the dedup-table entry that
	// suppresses retries become durable atomically — a crash either
	// persists both or neither, which is what makes crash-retry
	// exactly-once.
	RecAppendEach
)

// Part is one chronicle's share of an append record.
type Part struct {
	Chronicle string
	Tuples    []value.Tuple
}

// Record is one durable mutation.
type Record struct {
	Kind      RecordKind
	LSN       uint64 // global logical sequence number (orders records across segments)
	Stmt      string // RecDDL
	SN        int64  // RecAppend / RecAppendEach (first SN of the run)
	Chronon   int64  // RecAppend / RecAppendEach
	Parts     []Part // RecAppend / RecAppendEach (exactly one part)
	Relation  string // RecUpsert / RecDelete
	Tuple     value.Tuple
	ClientID  string // RecAppendEach
	RequestID string // RecAppendEach
}

// SyncPolicy selects when a Log makes appended records durable.
type SyncPolicy uint8

// The sync policies.
const (
	// SyncNone buffers records and flushes on Flush/Close; the caller has
	// opted out of per-record durability (tests, bulk loads).
	SyncNone SyncPolicy = iota
	// SyncEach fsyncs inside every Append — one fsync per record, the
	// legacy durable configuration (E16's baseline curve).
	SyncEach
	// SyncGroup writes each record through to the OS inside Append (so a
	// write failure still aborts the mutation before it is applied) but
	// defers the fsync to Commit, the group-commit door: one fsync acks
	// every record appended since the previous fsync.
	SyncGroup
)

// Log is an append-only record log. It is safe for concurrent use: each
// shard has a single writer goroutine, but checkpointing (Reset), flushing,
// and group commits may come from other goroutines.
type Log struct {
	mu     sync.Mutex
	path   string
	f      fault.File
	w      *bufio.Writer
	policy SyncPolicy
	err    error // sticky: first write/flush/sync failure; fails everything after
	buf    []byte
	seq    uint64 // records appended since open (under mu)

	// Segment rotation (version-2 layout). capBytes == 0 means the log is
	// a plain single file that never rotates (the legacy layout). All are
	// guarded by mu; rotation happens inside Append, before the frame that
	// would overflow the cap is written, so the hot path adds only a size
	// comparison.
	fsys     fault.FS
	dir      string
	stream   string
	segSeq   uint64 // active segment sequence number
	segBytes int64  // bytes appended to the active segment
	capBytes int64
	lastLSN  uint64 // highest record LSN appended (segments are LSN-ascending)
	onRotate func(sealed, next Segment) error
	rotates  atomic.Int64

	// Group-commit door. synced is the record count covered by a completed
	// fsync; it only grows, so a committer whose target is already covered
	// returns without touching the file. syncMu serializes fsyncs in
	// SyncGroup mode: callers queue on it, and each queued caller re-checks
	// synced after the door opens — the previous holder's fsync usually
	// covered its records too, and the whole batch was acked by one fsync.
	syncMu sync.Mutex
	synced atomic.Uint64

	// Durability counters for SHOW STATS / E16. batchHist counts records
	// acked per fsync; it is guarded by syncMu in SyncGroup mode and by mu
	// otherwise (a Log never mixes policies), and Metrics takes both.
	fsyncs    atomic.Int64
	batchHist stats.Histogram

	// Replication tap (SetTap). tapAppend observes every record's encoded
	// payload under mu; tapDurable reports the record-seq high-water mark
	// covered by a completed fsync. Both are installed once, before
	// concurrent appends begin, and must never call back into the Log.
	tapAppend  func(payload []byte, lsn, span, seq uint64)
	tapDurable func(seq uint64)
}

// Metrics is a snapshot of a Log's durability counters. Batches is a value
// copy of the group-commit batch-size histogram so callers can Merge
// metrics across segments before rendering a Snapshot.
type Metrics struct {
	Records int64           // records appended since open
	Fsyncs  int64           // fsync calls since open
	Batches stats.Histogram // records acked per fsync (group-commit batch size)

	Rotations   int64  // segment rotations since open (0 for plain logs)
	ActiveBytes int64  // bytes in the active segment (whole file for plain logs)
	ActiveSeq   uint64 // active segment sequence (0 for plain logs)
}

// Open opens (creating if needed) the log at path for appending. When
// syncEach is true every record is fsynced — the durable configuration; off,
// records are buffered and flushed on Flush/Close (faster, test-friendly).
func Open(path string, syncEach bool) (*Log, error) {
	return OpenFS(fault.OS, path, syncEach)
}

// OpenFS is Open against an explicit filesystem.
func OpenFS(fsys fault.FS, path string, syncEach bool) (*Log, error) {
	policy := SyncNone
	if syncEach {
		policy = SyncEach
	}
	return OpenPolicyFS(fsys, path, policy)
}

// OpenPolicyFS opens the log with an explicit sync policy.
func OpenPolicyFS(fsys fault.FS, path string, policy SyncPolicy) (*Log, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	return &Log{path: path, f: f, w: bufio.NewWriterSize(f, 1<<16), policy: policy}, nil
}

// OpenSegmentFS opens a rotated log: the stream's active segment seq in
// dir, already holding startBytes bytes, rotating once an append would push
// the segment past capBytes. onRotate is called inside the rotation, after
// the old segment's content is durable and the new segment file exists and
// is fsynced, and must durably register the flip (seal the old entry, add
// the new one) before the swap is committed — its error aborts both the
// rotation and the triggering append, latching the sticky error.
func OpenSegmentFS(fsys fault.FS, dir, stream string, seq uint64, startBytes, capBytes int64, policy SyncPolicy, onRotate func(sealed, next Segment) error) (*Log, error) {
	path := filepath.Join(dir, SegmentFileName(stream, seq))
	l, err := OpenPolicyFS(fsys, path, policy)
	if err != nil {
		return nil, err
	}
	l.fsys = fsys
	l.dir = dir
	l.stream = stream
	l.segSeq = seq
	l.segBytes = startBytes
	l.capBytes = capBytes
	l.onRotate = onRotate
	return l, nil
}

// SetTap installs the replication tap. onAppend is called inside Append,
// under the log mutex, with the record's encoded payload (valid only for
// the duration of the call — the tap must copy what it keeps), its LSN,
// its LSN span, and its append sequence number. onDurable is called with
// the highest append sequence covered by a completed fsync; in SyncNone
// mode (the caller opted out of durability) every append reports durable
// immediately. SetTap must be called before concurrent appends begin.
func (l *Log) SetTap(onAppend func(payload []byte, lsn, span, seq uint64), onDurable func(seq uint64)) {
	l.mu.Lock()
	l.tapAppend = onAppend
	l.tapDurable = onDurable
	l.mu.Unlock()
}

// Path returns the log file path.
func (l *Log) Path() string { return l.path }

// Err returns the sticky error, if any write, flush, or sync has failed.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Append frames and writes one record. The frame is encoded completely —
// into the Log's grown-once scratch buffer — before any byte reaches the
// writer, so a failure never leaves a partial frame mid-file; any failure
// latches the sticky error. In SyncGroup mode the frame is written through
// to the OS here (a full disk or write error must abort the mutation before
// it is applied to memory) and only the fsync waits for Commit.
func (l *Log) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return fmt.Errorf("wal: log failed: %w", l.err)
	}
	l.buf = append(l.buf[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	l.buf = encodeRecord(l.buf, r)
	payload := l.buf[8:]
	binary.LittleEndian.PutUint32(l.buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(l.buf[4:], crc32.ChecksumIEEE(payload))
	if l.capBytes > 0 && l.segBytes > 0 && l.segBytes+int64(len(l.buf)) > l.capBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := l.w.Write(l.buf); err != nil {
		l.err = err
		return fmt.Errorf("wal: write: %w", err)
	}
	l.seq++
	l.segBytes += int64(len(l.buf))
	if r.LSN > l.lastLSN {
		l.lastLSN = r.LSN
	}
	if l.tapAppend != nil {
		l.tapAppend(payload, r.LSN, RecordSpan(r), l.seq)
		if l.policy == SyncNone && l.tapDurable != nil {
			l.tapDurable(l.seq)
		}
	}
	switch l.policy {
	case SyncEach:
		return l.syncLocked()
	case SyncGroup:
		return l.flushLocked()
	}
	return nil
}

// Commit makes every record appended so far durable — the group-commit
// door. The caller's records are already in the OS (Append writes through
// in SyncGroup mode), so all Commit adds is the fsync, and concurrent
// committers share one: whoever holds the door fsyncs on behalf of every
// record appended up to that moment, and queued committers whose records
// that fsync covered return without syncing again. In SyncEach mode records
// are durable the moment Append returns and Commit only reports the sticky
// error; in SyncNone mode it degrades to Flush (the caller opted out of
// durability).
func (l *Log) Commit() error {
	if l.policy != SyncGroup {
		if l.policy == SyncNone {
			return l.Flush()
		}
		return l.Err()
	}
	l.mu.Lock()
	target := l.seq
	err := l.err
	l.mu.Unlock()
	if err != nil {
		return fmt.Errorf("wal: log failed: %w", err)
	}
	if l.synced.Load() >= target {
		return nil
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.synced.Load() >= target {
		return nil // the previous door holder's fsync covered our records
	}
	// covered and f are captured under one mu acquisition: every record
	// numbered at or below covered is either in a sealed segment (rotation
	// fsyncs the old file and advances synced before swapping) or in f, so
	// fsyncing this f covers all of them even if a rotation swaps the
	// active file right after the capture.
	l.mu.Lock()
	covered := l.seq
	f := l.f
	td := l.tapDurable
	err = l.err
	l.mu.Unlock()
	if err != nil {
		return fmt.Errorf("wal: log failed: %w", err)
	}
	if serr := f.Sync(); serr != nil {
		l.mu.Lock()
		if l.err == nil {
			l.err = serr
		}
		l.mu.Unlock()
		return fmt.Errorf("wal: sync: %w", serr)
	}
	// synced only moves forward: covered was read before the fsync, so a
	// concurrent Reset (which syncs the truncation and stores the current
	// seq itself) can at worst leave synced understated, costing one extra
	// fsync — never overstated.
	prev := l.synced.Load()
	if covered > prev {
		l.synced.Store(covered)
		l.batchHist.Observe(time.Duration(covered - prev))
		if td != nil {
			td(covered)
		}
	}
	l.fsyncs.Add(1)
	return nil
}

// Flush pushes buffered records to the OS.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

func (l *Log) flushLocked() error {
	if l.err != nil {
		return fmt.Errorf("wal: log failed: %w", l.err)
	}
	if err := l.w.Flush(); err != nil {
		l.err = err
		return fmt.Errorf("wal: flush: %w", err)
	}
	return nil
}

// Sync flushes and fsyncs. In SyncGroup mode it goes through the commit
// door so its fsync coalesces with (and is accounted like) group commits.
func (l *Log) Sync() error {
	if l.policy == SyncGroup {
		return l.Commit()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.err = err
		return fmt.Errorf("wal: sync: %w", err)
	}
	if prev := l.synced.Load(); l.seq > prev {
		l.synced.Store(l.seq)
		l.batchHist.Observe(time.Duration(l.seq - prev))
		if l.tapDurable != nil {
			l.tapDurable(l.seq)
		}
	}
	l.fsyncs.Add(1)
	return nil
}

// rotateLocked seals the active segment and swaps in a fresh one. Order
// matters for crash atomicity:
//
//  1. flush + fsync the old segment — the sealed entry's MaxLSN/Bytes
//     describe durable content (this also advances the group-commit
//     watermark: one rotation fsync acks every pending record);
//  2. create and fsync the next segment file (truncating any orphan left
//     by a previously crashed rotation — the manifest never referenced it);
//  3. onRotate durably flips the manifest (atomic replace + dirsync, which
//     also makes the new file's directory entry durable);
//  4. only then swap the writer.
//
// A crash before 3 leaves the old manifest pointing at the old still-active
// segment (the new file is an unreferenced orphan, swept at next open); a
// crash after 3 leaves the new manifest with the old segment sealed and the
// new one empty. Any failure latches the sticky error without swapping, so
// the triggering append aborts before it is applied and the DB degrades
// read-only — a half-registered segment is impossible.
func (l *Log) rotateLocked() error {
	if err := l.w.Flush(); err != nil {
		l.err = err
		return fmt.Errorf("wal: rotate: flush: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.err = err
		return fmt.Errorf("wal: rotate: sync: %w", err)
	}
	l.fsyncs.Add(1)
	if prev := l.synced.Load(); l.seq > prev {
		l.synced.Store(l.seq)
		l.batchHist.Observe(time.Duration(l.seq - prev))
		if l.tapDurable != nil {
			l.tapDurable(l.seq)
		}
	}
	sealed := Segment{
		Name:   SegmentFileName(l.stream, l.segSeq),
		Stream: l.stream,
		Seq:    l.segSeq,
		Sealed: true,
		Bytes:  l.segBytes,
		MaxLSN: l.lastLSN,
	}
	next := Segment{
		Name:   SegmentFileName(l.stream, l.segSeq+1),
		Stream: l.stream,
		Seq:    l.segSeq + 1,
	}
	nf, err := l.fsys.OpenFile(filepath.Join(l.dir, next.Name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		l.err = err
		return fmt.Errorf("wal: rotate: create segment: %w", err)
	}
	if err := nf.Truncate(0); err != nil {
		nf.Close()
		l.err = err
		return fmt.Errorf("wal: rotate: truncate segment: %w", err)
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		l.err = err
		return fmt.Errorf("wal: rotate: sync segment: %w", err)
	}
	if l.onRotate != nil {
		if err := l.onRotate(sealed, next); err != nil {
			nf.Close()
			l.err = err
			return fmt.Errorf("wal: rotate: manifest flip: %w", err)
		}
	}
	old := l.f
	l.f = nf
	l.w.Reset(nf)
	l.path = filepath.Join(l.dir, next.Name)
	l.segSeq = next.Seq
	l.segBytes = 0
	l.rotates.Add(1)
	old.Close() // content already durable; a close error changes nothing
	return nil
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.flushLocked(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Reset truncates the log to empty (after a successful checkpoint) and
// syncs the truncation, so a later crash cannot resurrect pre-checkpoint
// records with un-checkpointed bytes appended after them.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.f.Truncate(0); err != nil {
		l.err = err
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		l.err = err
		return fmt.Errorf("wal: seek: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.err = err
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.fsyncs.Add(1)
	if l.seq > l.synced.Load() {
		l.synced.Store(l.seq) // the truncation sync covers everything appended
		if l.tapDurable != nil {
			l.tapDurable(l.seq)
		}
	}
	l.w.Reset(l.f)
	return nil
}

// LogMetrics returns the Log's durability counters.
func (l *Log) LogMetrics() Metrics {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	return Metrics{
		Records:     int64(l.seq),
		Fsyncs:      l.fsyncs.Load(),
		Batches:     l.batchHist,
		Rotations:   l.rotates.Load(),
		ActiveBytes: l.segBytes,
		ActiveSeq:   l.segSeq,
	}
}

// Replay reads records from path in order, calling fn for each. It stops
// cleanly at the first torn or corrupt frame (the crash tail), reporting
// how many records were applied and how many trailing bytes were ignored.
// A missing file replays zero records.
func Replay(path string, fn func(Record) error) (n int, ignored int64, err error) {
	return ReplayFS(fault.OS, path, fn)
}

// ReplayFS is Replay against an explicit filesystem. The log is streamed
// through a buffered reader rather than loaded whole, so replaying a long
// tail does not double resident memory.
func ReplayFS(fsys fault.FS, path string, fn func(Record) error) (n int, ignored int64, err error) {
	f, err := fsys.Open(path)
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("wal: open: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var hdr [8]byte
	var payload []byte
	for {
		hn, herr := io.ReadFull(br, hdr[:])
		if herr == io.EOF {
			return n, 0, nil
		}
		if herr == io.ErrUnexpectedEOF {
			return n, int64(hn), nil
		}
		if herr != nil {
			return n, 0, fmt.Errorf("wal: read: %w", herr)
		}
		plen := int(binary.LittleEndian.Uint32(hdr[0:]))
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if plen <= 0 || plen > maxFrame {
			return n, 8 + drain(br), nil
		}
		if cap(payload) < plen {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		pn, perr := io.ReadFull(br, payload)
		if perr == io.EOF || perr == io.ErrUnexpectedEOF {
			return n, 8 + int64(pn), nil
		}
		if perr != nil {
			return n, 0, fmt.Errorf("wal: read: %w", perr)
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return n, 8 + int64(plen) + drain(br), nil
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return n, 8 + int64(plen) + drain(br), nil
		}
		if err := fn(rec); err != nil {
			return n, 0, fmt.Errorf("wal: applying record %d: %w", n, err)
		}
		n++
	}
}

// drain counts the unread remainder of a corrupt log tail.
func drain(br *bufio.Reader) int64 {
	c, _ := io.Copy(io.Discard, br)
	return c
}

func encodeRecord(dst []byte, r Record) []byte {
	dst = append(dst, byte(r.Kind))
	dst = binary.AppendUvarint(dst, r.LSN)
	switch r.Kind {
	case RecDDL:
		dst = appendString(dst, r.Stmt)
	case RecAppend, RecAppendEach:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(r.SN))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Chronon))
		dst = binary.AppendUvarint(dst, uint64(len(r.Parts)))
		for _, p := range r.Parts {
			dst = appendString(dst, p.Chronicle)
			dst = binary.AppendUvarint(dst, uint64(len(p.Tuples)))
			for _, t := range p.Tuples {
				dst = value.AppendTuple(dst, t)
			}
		}
		if r.Kind == RecAppendEach {
			dst = appendString(dst, r.ClientID)
			dst = appendString(dst, r.RequestID)
		}
	case RecUpsert, RecDelete:
		dst = appendString(dst, r.Relation)
		dst = value.AppendTuple(dst, r.Tuple)
	}
	return dst
}

func decodeRecord(b []byte) (Record, error) {
	if len(b) == 0 {
		return Record{}, fmt.Errorf("wal: empty payload")
	}
	r := Record{Kind: RecordKind(b[0])}
	b = b[1:]
	lsn, sz := binary.Uvarint(b)
	if sz <= 0 {
		return Record{}, fmt.Errorf("wal: bad record lsn")
	}
	r.LSN = lsn
	b = b[sz:]
	switch r.Kind {
	case RecDDL:
		stmt, _, err := readString(b)
		if err != nil {
			return Record{}, err
		}
		r.Stmt = stmt
	case RecAppend, RecAppendEach:
		if len(b) < 16 {
			return Record{}, fmt.Errorf("wal: truncated append header")
		}
		r.SN = int64(binary.LittleEndian.Uint64(b))
		r.Chronon = int64(binary.LittleEndian.Uint64(b[8:]))
		b = b[16:]
		nParts, sz := binary.Uvarint(b)
		if sz <= 0 {
			return Record{}, fmt.Errorf("wal: bad part count")
		}
		b = b[sz:]
		for i := uint64(0); i < nParts; i++ {
			name, used, err := readString(b)
			if err != nil {
				return Record{}, err
			}
			b = b[used:]
			nTuples, sz := binary.Uvarint(b)
			if sz <= 0 {
				return Record{}, fmt.Errorf("wal: bad tuple count")
			}
			b = b[sz:]
			p := Part{Chronicle: name}
			for j := uint64(0); j < nTuples; j++ {
				t, used, err := value.DecodeTuple(b)
				if err != nil {
					return Record{}, err
				}
				p.Tuples = append(p.Tuples, t)
				b = b[used:]
			}
			r.Parts = append(r.Parts, p)
		}
		if r.Kind == RecAppendEach {
			cid, used, err := readString(b)
			if err != nil {
				return Record{}, err
			}
			b = b[used:]
			rid, used, err := readString(b)
			if err != nil {
				return Record{}, err
			}
			b = b[used:]
			r.ClientID = cid
			r.RequestID = rid
		}
	case RecUpsert, RecDelete:
		name, used, err := readString(b)
		if err != nil {
			return Record{}, err
		}
		b = b[used:]
		t, _, err := value.DecodeTuple(b)
		if err != nil {
			return Record{}, err
		}
		r.Relation = name
		r.Tuple = t
	default:
		return Record{}, fmt.Errorf("wal: unknown record kind %d", r.Kind)
	}
	return r, nil
}

// EncodeRecord appends r's wire encoding — the frame payload, without the
// length/CRC header — to dst and returns the extended slice. It is the
// exact bytes a Log writes for r, so a replication stream can ship tapped
// payloads and re-encoded backlog records interchangeably.
func EncodeRecord(dst []byte, r Record) []byte { return encodeRecord(dst, r) }

// DecodeRecord parses a record payload produced by EncodeRecord (or tapped
// from a Log's append path).
func DecodeRecord(b []byte) (Record, error) { return decodeRecord(b) }

// RecordSpan returns how many LSNs r occupies in the global order: an
// idempotent bulk append assigns one LSN per tuple (the record's LSN is the
// first), a DDL record is an ordering annotation that consumes none, and
// every other record exactly one.
func RecordSpan(r Record) uint64 {
	switch r.Kind {
	case RecAppendEach:
		var n uint64
		for _, p := range r.Parts {
			n += uint64(len(p.Tuples))
		}
		if n == 0 {
			return 1
		}
		return n
	case RecDDL:
		return 0
	}
	return 1
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readString(b []byte) (string, int, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return "", 0, fmt.Errorf("wal: bad string")
	}
	return string(b[sz : sz+int(n)]), sz + int(n), nil
}
