package wal

import (
	"reflect"
	"testing"

	"chronicledb/internal/fault"
)

func sampleManifests() []Manifest {
	v2 := Manifest{Version: 2, Shards: 2}
	v2.Live = []Segment{
		{Name: SegmentFileName(StreamName(0), 3), Stream: StreamName(0), Seq: 3, Sealed: true, Bytes: 4096, MaxLSN: 120},
		{Name: SegmentFileName(StreamName(0), 4), Stream: StreamName(0), Seq: 4},
		{Name: SegmentFileName(StreamName(1), 1), Stream: StreamName(1), Seq: 1},
		{Name: SegmentFileName(RelationStream, 2), Stream: RelationStream, Seq: 2},
	}
	v2.Checkpoints = []CheckpointRef{
		{Name: CheckpointFileName(5), Seq: 5, LSN: 90, Full: true},
		{Name: CheckpointFileName(6), Seq: 6, LSN: 118},
	}
	return []Manifest{
		NewManifest(1),
		NewManifest(4),
		{Version: 2, Shards: 0, Live: []Segment{{Name: SegmentFileName(ChronicleStream, 1), Stream: ChronicleStream, Seq: 1}}},
		v2,
	}
}

func TestManifestRoundTrip(t *testing.T) {
	for _, m := range sampleManifests() {
		data, err := EncodeManifest(m)
		if err != nil {
			t.Fatalf("encode %+v: %v", m, err)
		}
		got, err := DecodeManifest(data)
		if err != nil {
			t.Fatalf("decode %+v: %v", m, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("round trip: %+v != %+v", got, m)
		}
	}
}

func TestDecodeManifestRejects(t *testing.T) {
	bad := []string{
		``,
		`{`,
		`{"version":0}`,
		`{"version":3}`,
		`{"version":1,"shards":0}`,
		`{"version":2,"shards":-1}`,
		`{"version":2,"live":[{"name":"","stream":"chronicle","seq":1}]}`,
		`{"version":2,"live":[{"name":"a.wal","stream":"","seq":1}]}`,
		`{"version":2,"live":[{"name":"a.wal","stream":"chronicle","seq":0}]}`,
		`{"version":2,"live":[{"name":"a.wal","stream":"chronicle","seq":1},{"name":"a.wal","stream":"chronicle","seq":2}]}`,
		`{"version":2,"checkpoints":[{"name":"","seq":1}]}`,
		`{"version":2,"checkpoints":[{"name":"c.bin","seq":0}]}`,
	}
	for _, s := range bad {
		if _, err := DecodeManifest([]byte(s)); err == nil {
			t.Errorf("DecodeManifest(%q) accepted", s)
		}
	}
}

// normalizeManifest maps empty slices to nil so that the JSON-level
// distinction between a missing list and `[]` (erased by omitempty on
// re-encode) doesn't count as a lossy round trip — recovery treats the
// two identically.
func normalizeManifest(m Manifest) Manifest {
	if len(m.Segments) == 0 {
		m.Segments = nil
	}
	if len(m.Live) == 0 {
		m.Live = nil
	}
	if len(m.Checkpoints) == 0 {
		m.Checkpoints = nil
	}
	return m
}

// FuzzManifest: arbitrary bytes must never panic the decoder, and any
// manifest the decoder accepts must survive an encode/decode round trip
// unchanged — the manifest is the single source of truth for recovery, so
// a lossy round trip would silently change which files replay.
func FuzzManifest(f *testing.F) {
	for _, m := range sampleManifests() {
		data, err := EncodeManifest(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte(`{"version":2,"shards":1,"live":[{"name":"x.wal","stream":"s","seq":1}]}`))
	f.Add([]byte(`{"version":1,"shards":-3}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		enc, err := EncodeManifest(m)
		if err != nil {
			t.Fatalf("accepted manifest fails to encode: %+v: %v", m, err)
		}
		m2, err := DecodeManifest(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted manifest fails: %q: %v", enc, err)
		}
		if !reflect.DeepEqual(normalizeManifest(m), normalizeManifest(m2)) {
			t.Fatalf("lossy round trip: %+v != %+v", m, m2)
		}
	})
}

// TestTornManifestFlipRecovers enumerates a power cut (with torn final
// write on odd points) at every mutating disk operation inside a manifest
// flip: after healing, the directory must read back as either the old or
// the new complete manifest — never a decode error, and never the new one
// when the flip didn't ack.
func TestTornManifestFlipRecovers(t *testing.T) {
	oldM := Manifest{Version: 2, Shards: 0, Live: []Segment{
		{Name: SegmentFileName(ChronicleStream, 1), Stream: ChronicleStream, Seq: 1},
	}}
	newM := oldM.Clone()
	newM.Live[0].Sealed = true
	newM.Live[0].Bytes = 2048
	newM.Live[0].MaxLSN = 77
	newM.Live = append(newM.Live, Segment{
		Name: SegmentFileName(ChronicleStream, 2), Stream: ChronicleStream, Seq: 2,
	})
	newM.Checkpoints = []CheckpointRef{{Name: CheckpointFileName(1), Seq: 1, LSN: 40, Full: true}}

	prep := func() *fault.Disk {
		t.Helper()
		d := fault.NewDisk()
		d.MkdirAll("/data", 0o755)
		if err := WriteManifestFS(d, "/data", oldM); err != nil {
			t.Fatal(err)
		}
		return d
	}

	clean := prep()
	base := clean.Ops()
	if err := WriteManifestFS(clean, "/data", newM); err != nil {
		t.Fatal(err)
	}
	total := clean.Ops() - base
	if total == 0 {
		t.Fatal("manifest flip performed no disk operations")
	}

	for i := 0; i < total; i++ {
		d := prep()
		d.SetTorn(i%2 == 1)
		d.SetCrashAt(d.Ops() + i)
		werr := WriteManifestFS(d, "/data", newM)
		d.Heal()
		got, ok, err := ReadManifestFS(d, "/data")
		if err != nil || !ok {
			t.Fatalf("crash at +%d (torn=%v): manifest unreadable: ok=%v err=%v", i, i%2 == 1, ok, err)
		}
		oldEq := reflect.DeepEqual(got, oldM)
		newEq := reflect.DeepEqual(got, newM)
		if !oldEq && !newEq {
			t.Fatalf("crash at +%d: manifest is neither old nor new: %+v", i, got)
		}
		if werr == nil && !newEq {
			t.Fatalf("crash at +%d: flip acked but old manifest survived", i)
		}
		// Leftover temp files from the aborted flip must not confuse a
		// subsequent flip on the healed disk.
		if err := WriteManifestFS(d, "/data", newM); err != nil {
			t.Fatalf("crash at +%d: post-heal flip: %v", i, err)
		}
		if got, ok, err := ReadManifestFS(d, "/data"); err != nil || !ok || !reflect.DeepEqual(got, newM) {
			t.Fatalf("crash at +%d: post-heal manifest wrong: %+v %v %v", i, got, ok, err)
		}
	}
}
