// Sharded WAL layout. In sharded mode the database keeps one log segment
// per single-writer shard plus one segment for router-level relation
// updates, described by a manifest file. Every record carries the global
// LSN the router stamped on its mutation, so recovery can merge the
// segments back into the one total order the paper's proactive-update
// semantics (§2.3) requires: a relation update replays before exactly the
// appends it originally preceded, on every shard.
package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"chronicledb/internal/fault"
)

// manifestBufs pools the JSON encode buffer for manifest writes, so the
// rewrite-on-checkpoint path reuses its scratch like the WAL frame buffer.
var manifestBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// ManifestName is the manifest file name inside the data directory.
const ManifestName = "wal.manifest"

// RelationSegment is the segment holding router-level relation updates.
const RelationSegment = "relations.wal"

// Stream names for the rotated (version-2) layout. A stream is one
// logical append-only log — the unsharded engine's, one per shard, or the
// router's relation log — realized on disk as a chain of size-capped
// segment files.
const (
	// ChronicleStream is the unsharded engine's stream.
	ChronicleStream = "chronicle"
	// RelationStream is the router-level relation-update stream.
	RelationStream = "relations"
)

// StreamName returns shard i's stream name.
func StreamName(i int) string { return fmt.Sprintf("shard-%04d", i) }

// SegmentFileName returns the file name of segment seq of a stream.
// Segment sequence numbers are per-stream and strictly increasing; the
// names never collide with the legacy single-file names (chronicle.wal,
// shard-NNNN.wal, relations.wal), so both layouts can coexist in a
// directory during a conversion.
func SegmentFileName(stream string, seq uint64) string {
	return fmt.Sprintf("%s-%08d.wal", stream, seq)
}

// CheckpointFileName returns the file name of chain checkpoint seq.
func CheckpointFileName(seq uint64) string {
	return fmt.Sprintf("checkpoint-%08d.bin", seq)
}

// Segment describes one segment file of a stream in a version-2 manifest.
// An unsealed segment is the stream's active tail: the writer appends to
// it and its Bytes/MaxLSN are not yet final. Sealing happens at rotation,
// after the file's content is fsynced, so a sealed entry's MaxLSN is a
// durable upper bound on every record in the file.
type Segment struct {
	Name   string `json:"name"`
	Stream string `json:"stream"`
	Seq    uint64 `json:"seq"`
	Sealed bool   `json:"sealed,omitempty"`
	Bytes  int64  `json:"bytes,omitempty"`   // size at seal (sealed only)
	MaxLSN uint64 `json:"max_lsn,omitempty"` // highest LSN at seal (sealed only)
}

// CheckpointRef is one entry of the checkpoint chain in a version-2
// manifest: recovery restores the chain in ascending Seq order (each file
// replaces the state of the objects it contains) and then replays only
// WAL records above the last entry's LSN. A Full entry supersedes every
// earlier entry; the compactor drops the superseded files.
type CheckpointRef struct {
	Name string `json:"name"`
	Seq  uint64 `json:"seq"`
	LSN  uint64 `json:"lsn"`
	Full bool   `json:"full,omitempty"`
}

// Manifest describes the WAL layout of a data directory.
//
// Version 1 (legacy sharded): Segments lists one grow-until-checkpoint
// file per shard plus the relation segment; checkpoints live in the
// fixed-name checkpoint.bin.
//
// Version 2 (rotated): Live lists every live segment of every stream and
// Checkpoints lists the checkpoint chain. The manifest is the single
// source of truth for which files recovery reads; it is only ever
// replaced atomically (WriteFileAtomicFS), so a crash during any flip
// leaves either the old or the new complete manifest. Files are created
// and fsynced before the flip that references them and deleted only
// after the flip that drops them, so a referenced file always exists;
// unreferenced leftovers are swept at the next open.
type Manifest struct {
	Version     int             `json:"version"`
	Shards      int             `json:"shards"`
	Segments    []string        `json:"segments,omitempty"`    // v1: file names relative to the directory
	Live        []Segment       `json:"live,omitempty"`        // v2: live segments, all streams
	Checkpoints []CheckpointRef `json:"checkpoints,omitempty"` // v2: checkpoint chain, ascending Seq
}

// SegmentName returns the legacy (v1) log file name for shard i.
func SegmentName(i int) string { return fmt.Sprintf("shard-%04d.wal", i) }

// Active returns the index in m.Live of stream's unsealed segment, or -1.
func (m *Manifest) Active(stream string) int {
	for i := range m.Live {
		if m.Live[i].Stream == stream && !m.Live[i].Sealed {
			return i
		}
	}
	return -1
}

// MaxSeq returns the highest segment sequence number of stream (0 if the
// stream has no live segments).
func (m *Manifest) MaxSeq(stream string) uint64 {
	var max uint64
	for i := range m.Live {
		if m.Live[i].Stream == stream && m.Live[i].Seq > max {
			max = m.Live[i].Seq
		}
	}
	return max
}

// NextCheckpointSeq returns the sequence number for the next chain entry.
func (m *Manifest) NextCheckpointSeq() uint64 {
	var max uint64
	for i := range m.Checkpoints {
		if m.Checkpoints[i].Seq > max {
			max = m.Checkpoints[i].Seq
		}
	}
	return max + 1
}

// Clone deep-copies the manifest so flips can be prepared without
// mutating the last-durable image (which must survive a failed write).
func (m Manifest) Clone() Manifest {
	c := m
	c.Segments = append([]string(nil), m.Segments...)
	c.Live = append([]Segment(nil), m.Live...)
	c.Checkpoints = append([]CheckpointRef(nil), m.Checkpoints...)
	return c
}

// NewManifest builds the manifest for n shards (n shard segments plus the
// relation segment).
func NewManifest(n int) Manifest {
	m := Manifest{Version: 1, Shards: n}
	for i := 0; i < n; i++ {
		m.Segments = append(m.Segments, SegmentName(i))
	}
	m.Segments = append(m.Segments, RelationSegment)
	return m
}

// WriteManifest atomically persists the manifest into dir.
func WriteManifest(dir string, m Manifest) error {
	return WriteManifestFS(fault.OS, dir, m)
}

// WriteManifestFS is WriteManifest against an explicit filesystem.
func WriteManifestFS(fsys fault.FS, dir string, m Manifest) error {
	buf := manifestBufs.Get().(*bytes.Buffer)
	defer func() { buf.Reset(); manifestBufs.Put(buf) }()
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(m); err != nil {
		return fmt.Errorf("wal: manifest: %w", err)
	}
	return WriteFileAtomicFS(fsys, filepath.Join(dir, ManifestName), buf.Bytes())
}

// EncodeManifest renders the manifest to its on-disk JSON form.
func EncodeManifest(m Manifest) ([]byte, error) {
	data, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("wal: manifest: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeManifest parses and validates on-disk manifest bytes.
func DecodeManifest(data []byte) (Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("wal: corrupt manifest: %w", err)
	}
	switch m.Version {
	case 1:
		if m.Shards <= 0 {
			return Manifest{}, fmt.Errorf("wal: corrupt manifest: %d shards", m.Shards)
		}
	case 2:
		if m.Shards < 0 {
			return Manifest{}, fmt.Errorf("wal: corrupt manifest: %d shards", m.Shards)
		}
		seen := make(map[string]bool, len(m.Live)+len(m.Checkpoints))
		for _, s := range m.Live {
			if s.Name == "" || s.Stream == "" || s.Seq == 0 {
				return Manifest{}, fmt.Errorf("wal: corrupt manifest: bad segment %+v", s)
			}
			if seen[s.Name] {
				return Manifest{}, fmt.Errorf("wal: corrupt manifest: duplicate entry %s", s.Name)
			}
			seen[s.Name] = true
		}
		for _, c := range m.Checkpoints {
			if c.Name == "" || c.Seq == 0 {
				return Manifest{}, fmt.Errorf("wal: corrupt manifest: bad checkpoint %+v", c)
			}
			if seen[c.Name] {
				return Manifest{}, fmt.Errorf("wal: corrupt manifest: duplicate entry %s", c.Name)
			}
			seen[c.Name] = true
		}
	default:
		return Manifest{}, fmt.Errorf("wal: unsupported manifest version %d", m.Version)
	}
	return m, nil
}

// ReadManifest loads the manifest from dir. A missing manifest reports
// ok=false without error (the directory predates sharding or is fresh).
func ReadManifest(dir string) (Manifest, bool, error) {
	return ReadManifestFS(fault.OS, dir)
}

// ReadManifestFS is ReadManifest against an explicit filesystem.
func ReadManifestFS(fsys fault.FS, dir string) (Manifest, bool, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, ManifestName))
	if os.IsNotExist(err) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, fmt.Errorf("wal: manifest: %w", err)
	}
	m, err := DecodeManifest(data)
	if err != nil {
		return Manifest{}, false, err
	}
	return m, true, nil
}

// WriteFileAtomic writes data to path with crash-safe replacement: the
// bytes land in a temp file in the same directory, are fsynced, renamed
// over the target, and the directory is fsynced so the rename itself is
// durable. A crash at any point leaves either the old complete file or the
// new complete file — never a truncated mix.
func WriteFileAtomic(path string, data []byte) error {
	return WriteFileAtomicFS(fault.OS, path, data)
}

// WriteFileAtomicFS is WriteFileAtomic against an explicit filesystem.
func WriteFileAtomicFS(fsys fault.FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); fsys.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	return fsys.SyncDir(dir)
}

// SyncDir fsyncs a directory so renames and unlinks inside it are durable.
func SyncDir(dir string) error {
	return fault.OS.SyncDir(dir)
}

// ReplayMerged replays the records of every listed segment in global LSN
// order, calling fn for each. Each segment is individually LSN-ascending
// (it had a single writer), so this is a merge; torn tails are tolerated
// per segment exactly as in Replay. It reports the total records applied.
func ReplayMerged(dir string, segments []string, fn func(Record) error) (int, error) {
	return ReplayMergedFS(fault.OS, dir, segments, fn)
}

// ReplayMergedFS is ReplayMerged against an explicit filesystem.
func ReplayMergedFS(fsys fault.FS, dir string, segments []string, fn func(Record) error) (int, error) {
	var all []Record
	for _, seg := range segments {
		_, _, err := ReplayFS(fsys, filepath.Join(dir, seg), func(r Record) error {
			all = append(all, r)
			return nil
		})
		if err != nil {
			return 0, fmt.Errorf("wal: segment %s: %w", seg, err)
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].LSN < all[j].LSN })
	for i, r := range all {
		if err := fn(r); err != nil {
			return i, fmt.Errorf("wal: applying merged record %d (lsn %d): %w", i, r.LSN, err)
		}
	}
	return len(all), nil
}
