// Sharded WAL layout. In sharded mode the database keeps one log segment
// per single-writer shard plus one segment for router-level relation
// updates, described by a manifest file. Every record carries the global
// LSN the router stamped on its mutation, so recovery can merge the
// segments back into the one total order the paper's proactive-update
// semantics (§2.3) requires: a relation update replays before exactly the
// appends it originally preceded, on every shard.
package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"chronicledb/internal/fault"
)

// manifestBufs pools the JSON encode buffer for manifest writes, so the
// rewrite-on-checkpoint path reuses its scratch like the WAL frame buffer.
var manifestBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// ManifestName is the manifest file name inside the data directory.
const ManifestName = "wal.manifest"

// RelationSegment is the segment holding router-level relation updates.
const RelationSegment = "relations.wal"

// Manifest describes the sharded WAL layout of a data directory.
type Manifest struct {
	Version  int      `json:"version"`
	Shards   int      `json:"shards"`
	Segments []string `json:"segments"` // file names relative to the directory
}

// SegmentName returns the log file name for shard i.
func SegmentName(i int) string { return fmt.Sprintf("shard-%04d.wal", i) }

// NewManifest builds the manifest for n shards (n shard segments plus the
// relation segment).
func NewManifest(n int) Manifest {
	m := Manifest{Version: 1, Shards: n}
	for i := 0; i < n; i++ {
		m.Segments = append(m.Segments, SegmentName(i))
	}
	m.Segments = append(m.Segments, RelationSegment)
	return m
}

// WriteManifest atomically persists the manifest into dir.
func WriteManifest(dir string, m Manifest) error {
	return WriteManifestFS(fault.OS, dir, m)
}

// WriteManifestFS is WriteManifest against an explicit filesystem.
func WriteManifestFS(fsys fault.FS, dir string, m Manifest) error {
	buf := manifestBufs.Get().(*bytes.Buffer)
	defer func() { buf.Reset(); manifestBufs.Put(buf) }()
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(m); err != nil {
		return fmt.Errorf("wal: manifest: %w", err)
	}
	return WriteFileAtomicFS(fsys, filepath.Join(dir, ManifestName), buf.Bytes())
}

// ReadManifest loads the manifest from dir. A missing manifest reports
// ok=false without error (the directory predates sharding or is fresh).
func ReadManifest(dir string) (Manifest, bool, error) {
	return ReadManifestFS(fault.OS, dir)
}

// ReadManifestFS is ReadManifest against an explicit filesystem.
func ReadManifestFS(fsys fault.FS, dir string) (Manifest, bool, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, ManifestName))
	if os.IsNotExist(err) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, fmt.Errorf("wal: manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("wal: corrupt manifest: %w", err)
	}
	if m.Shards <= 0 {
		return Manifest{}, false, fmt.Errorf("wal: corrupt manifest: %d shards", m.Shards)
	}
	return m, true, nil
}

// WriteFileAtomic writes data to path with crash-safe replacement: the
// bytes land in a temp file in the same directory, are fsynced, renamed
// over the target, and the directory is fsynced so the rename itself is
// durable. A crash at any point leaves either the old complete file or the
// new complete file — never a truncated mix.
func WriteFileAtomic(path string, data []byte) error {
	return WriteFileAtomicFS(fault.OS, path, data)
}

// WriteFileAtomicFS is WriteFileAtomic against an explicit filesystem.
func WriteFileAtomicFS(fsys fault.FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); fsys.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	return fsys.SyncDir(dir)
}

// SyncDir fsyncs a directory so renames and unlinks inside it are durable.
func SyncDir(dir string) error {
	return fault.OS.SyncDir(dir)
}

// ReplayMerged replays the records of every listed segment in global LSN
// order, calling fn for each. Each segment is individually LSN-ascending
// (it had a single writer), so this is a merge; torn tails are tolerated
// per segment exactly as in Replay. It reports the total records applied.
func ReplayMerged(dir string, segments []string, fn func(Record) error) (int, error) {
	return ReplayMergedFS(fault.OS, dir, segments, fn)
}

// ReplayMergedFS is ReplayMerged against an explicit filesystem.
func ReplayMergedFS(fsys fault.FS, dir string, segments []string, fn func(Record) error) (int, error) {
	var all []Record
	for _, seg := range segments {
		_, _, err := ReplayFS(fsys, filepath.Join(dir, seg), func(r Record) error {
			all = append(all, r)
			return nil
		})
		if err != nil {
			return 0, fmt.Errorf("wal: segment %s: %w", seg, err)
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].LSN < all[j].LSN })
	for i, r := range all {
		if err := fn(r); err != nil {
			return i, fmt.Errorf("wal: applying merged record %d (lsn %d): %w", i, r.LSN, err)
		}
	}
	return len(all), nil
}
