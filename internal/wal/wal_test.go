package wal

import (
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"chronicledb/internal/value"
)

func sampleRecords() []Record {
	return []Record{
		{Kind: RecDDL, Stmt: "CREATE CHRONICLE calls (acct STRING, minutes INT)"},
		{Kind: RecAppend, SN: 7, Chronon: 1234, Parts: []Part{
			{Chronicle: "calls", Tuples: []value.Tuple{
				{value.Str("a"), value.Int(10)},
				{value.Str("b"), value.Int(20)},
			}},
		}},
		{Kind: RecAppend, SN: 8, Chronon: 2345, Parts: []Part{
			{Chronicle: "calls", Tuples: []value.Tuple{{value.Str("c"), value.Int(1)}}},
			{Chronicle: "payments", Tuples: []value.Tuple{{value.Str("c"), value.Int(9)}}},
		}},
		{Kind: RecUpsert, Relation: "customers", Tuple: value.Tuple{value.Str("a"), value.Str("nj")}},
		{Kind: RecDelete, Relation: "customers", Tuple: value.Tuple{value.Str("a")}},
	}
}

func writeLog(t *testing.T, dir string, recs []Record) string {
	t.Helper()
	path := filepath.Join(dir, "test.wal")
	l, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func recordsEqual(a, b Record) bool {
	if a.Kind != b.Kind || a.Stmt != b.Stmt || a.SN != b.SN || a.Chronon != b.Chronon ||
		a.Relation != b.Relation || len(a.Parts) != len(b.Parts) {
		return false
	}
	if !value.TuplesEqual(a.Tuple, b.Tuple) {
		return false
	}
	for i := range a.Parts {
		if a.Parts[i].Chronicle != b.Parts[i].Chronicle || len(a.Parts[i].Tuples) != len(b.Parts[i].Tuples) {
			return false
		}
		for j := range a.Parts[i].Tuples {
			if !value.TuplesEqual(a.Parts[i].Tuples[j], b.Parts[i].Tuples[j]) {
				return false
			}
		}
	}
	return true
}

func TestAppendReplayRoundTrip(t *testing.T) {
	recs := sampleRecords()
	path := writeLog(t, t.TempDir(), recs)
	var got []Record
	n, ignored, err := Replay(path, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(recs) || ignored != 0 {
		t.Fatalf("Replay = %d records, %d ignored", n, ignored)
	}
	for i := range recs {
		if !recordsEqual(recs[i], got[i]) {
			t.Errorf("record %d: %+v != %+v", i, recs[i], got[i])
		}
	}
}

func TestReplayMissingFile(t *testing.T) {
	n, ignored, err := Replay(filepath.Join(t.TempDir(), "absent.wal"), func(Record) error { return nil })
	if err != nil || n != 0 || ignored != 0 {
		t.Errorf("missing file: n=%d ignored=%d err=%v", n, ignored, err)
	}
}

func TestReplayTornTail(t *testing.T) {
	recs := sampleRecords()
	path := writeLog(t, t.TempDir(), recs)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-record: drop the last 3 bytes.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	var got int
	n, ignored, err := Replay(path, func(Record) error { got++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != len(recs)-1 || got != len(recs)-1 {
		t.Errorf("torn tail: replayed %d, want %d", n, len(recs)-1)
	}
	if ignored == 0 {
		t.Error("torn bytes not reported")
	}
}

func TestReplayCorruptMiddleStops(t *testing.T) {
	recs := sampleRecords()
	path := writeLog(t, t.TempDir(), recs)
	data, _ := os.ReadFile(path)
	// Flip one byte inside the second record's payload.
	data[20] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	n, ignored, err := Replay(path, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n >= len(recs) {
		t.Errorf("corrupt record replayed: n=%d", n)
	}
	if ignored == 0 {
		t.Error("corruption not reported as ignored bytes")
	}
}

func TestReplayCallbackError(t *testing.T) {
	path := writeLog(t, t.TempDir(), sampleRecords())
	_, _, err := Replay(path, func(r Record) error {
		if r.Kind == RecUpsert {
			return os.ErrInvalid
		}
		return nil
	})
	if err == nil {
		t.Error("callback error not surfaced")
	}
}

func TestReset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "reset.wal")
	l, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(sampleRecords()[0])
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	l.Append(sampleRecords()[3])
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	n, _, err := Replay(path, func(r Record) error { got = append(got, r); return nil })
	if err != nil || n != 1 {
		t.Fatalf("after reset: n=%d err=%v", n, err)
	}
	if got[0].Kind != RecUpsert {
		t.Errorf("after reset: %+v", got[0])
	}
}

func TestSyncEach(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sync.wal")
	l, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(sampleRecords()[0]); err != nil {
		t.Fatal(err)
	}
	// With syncEach, the record is durable before Close.
	n, _, err := Replay(path, func(Record) error { return nil })
	if err != nil || n != 1 {
		t.Errorf("pre-close replay: n=%d err=%v", n, err)
	}
	l.Close()
}

func TestReopenAppends(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "re.wal")
	l, _ := Open(path, false)
	l.Append(sampleRecords()[0])
	l.Close()
	l2, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	l2.Append(sampleRecords()[1])
	l2.Close()
	n, _, err := Replay(path, func(Record) error { return nil })
	if err != nil || n != 2 {
		t.Errorf("reopen: n=%d err=%v", n, err)
	}
	if l2.Path() != path {
		t.Error("Path mismatch")
	}
}

func TestFlushMakesDurableWithoutClose(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flush.wal")
	l, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Append(sampleRecords()[0])
	// Unflushed, the record may still sit in the buffer.
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	n, _, err := Replay(path, func(Record) error { return nil })
	if err != nil || n != 1 {
		t.Errorf("after Flush: n=%d err=%v", n, err)
	}
}

func TestReplayUnknownKindStops(t *testing.T) {
	// A frame with a valid CRC but an unknown kind byte stops replay cleanly.
	payload := []byte{99}
	var frame []byte
	frame = append(frame, 1, 0, 0, 0) // length 1
	crc := crc32.ChecksumIEEE(payload)
	frame = append(frame, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
	frame = append(frame, payload...)
	path := filepath.Join(t.TempDir(), "bad.wal")
	if err := os.WriteFile(path, frame, 0o644); err != nil {
		t.Fatal(err)
	}
	n, ignored, err := Replay(path, func(Record) error { return nil })
	if err != nil || n != 0 || ignored == 0 {
		t.Errorf("unknown kind: n=%d ignored=%d err=%v", n, ignored, err)
	}
}

func TestDecodeRecordErrors(t *testing.T) {
	cases := [][]byte{
		{},                         // empty
		{byte(RecAppend), 1, 2, 3}, // truncated append header
		{byte(RecUpsert)},          // missing name
		{byte(RecDDL), 200},        // bad string length
	}
	for i, b := range cases {
		if _, err := decodeRecord(b); err == nil {
			t.Errorf("case %d: decode accepted %v", i, b)
		}
	}
}
