package wal

import (
	"errors"
	"path/filepath"
	"testing"

	"chronicledb/internal/fault"
)

// TestAppendWriteErrorNoMidFileCorruption is the satellite regression: a
// mid-frame write failure must not leave a partial frame that later
// appends extend, corrupting the middle of the file. With whole-frame
// writes plus the sticky error, the log refuses further appends and
// everything before the failure replays intact.
func TestAppendWriteErrorNoMidFileCorruption(t *testing.T) {
	d := fault.NewDisk()
	d.MkdirAll("/data", 0o755)
	path := filepath.Join("/data", "log.wal")
	l, err := OpenFS(d, path, true)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	if err := l.Append(recs[0]); err != nil {
		t.Fatal(err)
	}
	d.FailNthWrite(1) // the next frame fails halfway through
	if err := l.Append(recs[1]); err == nil {
		t.Fatal("append with failing write succeeded")
	}
	if l.Err() == nil {
		t.Fatal("sticky error not latched")
	}
	// Every later operation fails fast on the latched error.
	if err := l.Append(recs[2]); err == nil {
		t.Fatal("append after failure succeeded")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("sync after failure succeeded")
	}
	l.Close()

	// The first record survives; the half-written frame is a torn tail,
	// not mid-file corruption hiding behind later garbage.
	var got []Record
	n, _, err := ReplayFS(d, path, func(r Record) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || !recordsEqual(got[0], recs[0]) {
		t.Fatalf("replay after failed append: n=%d", n)
	}
}

func TestSyncErrorPoisonsLog(t *testing.T) {
	d := fault.NewDisk()
	d.MkdirAll("/data", 0o755)
	l, err := OpenFS(d, filepath.Join("/data", "log.wal"), true)
	if err != nil {
		t.Fatal(err)
	}
	d.FailNthSync(0)
	if err := l.Append(sampleRecords()[0]); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("want injected sync failure, got %v", err)
	}
	if err := l.Append(sampleRecords()[1]); err == nil {
		t.Fatal("append after sync failure succeeded")
	}
}

func TestResetDurableTruncation(t *testing.T) {
	// After Reset the truncation is synced: a crash right after must not
	// resurrect pre-checkpoint records.
	d := fault.NewDisk()
	d.MkdirAll("/data", 0o755)
	path := filepath.Join("/data", "log.wal")
	l, err := OpenFS(d, path, true)
	if err != nil {
		t.Fatal(err)
	}
	d.SyncDir("/data")
	recs := sampleRecords()
	l.Append(recs[0])
	l.Append(recs[1])
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	d.SetCrashAt(d.Ops())
	l.Append(recs[2]) // crashes mid-append
	d.Heal()
	n, _, err := ReplayFS(d, path, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("pre-checkpoint records resurrected: n=%d", n)
	}
}

func TestWriteFileAtomicCrashKeepsOldFile(t *testing.T) {
	d := fault.NewDisk()
	d.MkdirAll("/data", 0o755)
	path := filepath.Join("/data", "checkpoint.bin")
	if err := WriteFileAtomicFS(d, path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Enumerate every crash point inside the second atomic write: after
	// healing, the file must read back as exactly "v1" or "v2".
	base := d.Ops()
	if err := WriteFileAtomicFS(d, path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	total := d.Ops() - base

	for i := 0; i < total; i++ {
		di := fault.NewDisk()
		di.MkdirAll("/data", 0o755)
		if err := WriteFileAtomicFS(di, path, []byte("v1")); err != nil {
			t.Fatal(err)
		}
		di.SetCrashAt(di.Ops() + i)
		werr := WriteFileAtomicFS(di, path, []byte("v2"))
		di.Heal()
		got, err := di.ReadFile(path)
		if err != nil {
			t.Fatalf("crash at +%d: %v", i, err)
		}
		if s := string(got); s != "v1" && s != "v2" {
			t.Fatalf("crash at +%d: content %q", i, s)
		}
		if werr == nil && string(got) != "v2" {
			t.Fatalf("crash at +%d: write acked but content %q", i, got)
		}
	}
}
