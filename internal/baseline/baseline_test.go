package baseline

import (
	"testing"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/algebra"
	"chronicledb/internal/chronicle"
	"chronicledb/internal/value"
	"chronicledb/internal/view"
)

func newCalls(t *testing.T, retain chronicle.Retention) (*chronicle.Group, *chronicle.Chronicle) {
	t.Helper()
	g := chronicle.NewGroup("g")
	c, err := g.NewChronicle("calls", value.NewSchema(
		value.Column{Name: "acct", Kind: value.KindString},
		value.Column{Name: "minutes", Kind: value.KindInt},
	), retain)
	if err != nil {
		t.Fatal(err)
	}
	return g, c
}

func usageDef(c *chronicle.Chronicle) view.Def {
	return view.Def{
		Name: "usage", Expr: algebra.NewScan(c), Mode: view.SummarizeGroupBy,
		GroupCols: []int{0},
		Aggs:      []aggregate.Spec{{Func: aggregate.Sum, Col: 1, Name: "total"}},
	}
}

func TestRecomputeMatchesIncremental(t *testing.T) {
	g, c := newCalls(t, chronicle.RetainAll)
	def := usageDef(c)
	incr, err := view.New(def, view.StoreHash)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewRecompute(def)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		rows, err := c.Append(g.NextSN(), 0, uint64(i+1),
			[]value.Tuple{{value.Str(string(rune('a' + i%3))), value.Int(int64(i))}})
		if err != nil {
			t.Fatal(err)
		}
		incr.Apply(algebra.BatchDelta{c: rows})
	}
	got, err := base.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	want := incr.Rows()
	if len(got) != len(want) {
		t.Fatalf("recompute %v != incremental %v", got, want)
	}
	row, ok, err := base.Lookup(value.Tuple{value.Str("a")})
	if err != nil || !ok {
		t.Fatalf("Lookup: %v %v", ok, err)
	}
	wantRow, _ := incr.Lookup(value.Tuple{value.Str("a")})
	if !value.TuplesEqual(row, wantRow) {
		t.Errorf("Lookup %v != %v", row, wantRow)
	}
	if base.Refreshes() != 1 {
		t.Errorf("Refreshes = %d", base.Refreshes())
	}
}

func TestRecomputeFailsOnWindowedChronicle(t *testing.T) {
	g, c := newCalls(t, chronicle.Retention(1))
	base, err := NewRecompute(usageDef(c))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		c.Append(g.NextSN(), 0, uint64(i+1), []value.Tuple{{value.Str("a"), value.Int(1)}})
	}
	if _, err := base.Refresh(); err == nil {
		t.Error("recompute over a windowed chronicle succeeded")
	}
	if _, _, err := base.Lookup(value.Tuple{value.Str("a")}); err == nil {
		t.Error("lookup over a windowed chronicle succeeded")
	}
}

func TestNewRecomputeValidates(t *testing.T) {
	if _, err := NewRecompute(view.Def{}); err == nil {
		t.Error("invalid definition accepted")
	}
}

func TestScanQuery(t *testing.T) {
	g, c := newCalls(t, chronicle.RetainAll)
	for i := 0; i < 10; i++ {
		c.Append(g.NextSN(), 0, uint64(i+1),
			[]value.Tuple{{value.Str(string(rune('a' + i%2))), value.Int(int64(i))}})
	}
	got, err := ScanQuery(c, 0, value.Str("a"), aggregate.Sum, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.AsInt() != 0+2+4+6+8 {
		t.Errorf("scan SUM = %v", got)
	}
	got, err = ScanQuery(c, 0, value.Str("b"), aggregate.Count, -1)
	if err != nil || got.AsInt() != 5 {
		t.Errorf("scan COUNT = %v, %v", got, err)
	}
}

func TestScanQueryFailsOnWindowedChronicle(t *testing.T) {
	g, c := newCalls(t, chronicle.RetainNone)
	c.Append(g.NextSN(), 0, 1, []value.Tuple{{value.Str("a"), value.Int(1)}})
	if _, err := ScanQuery(c, 0, value.Str("a"), aggregate.Sum, 1); err == nil {
		t.Error("scan over RetainNone chronicle succeeded")
	}
}
