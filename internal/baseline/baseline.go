// Package baseline implements the comparison points the chronicle model is
// measured against.
//
//   - Recompute is Proposition 3.1 made concrete: full relational algebra
//     with grouping/aggregation over a stored chronicle is in IM-Cᵏ — after
//     every append, deriving the current view costs time polynomial in the
//     chronicle size, because the whole stored sequence is re-evaluated.
//
//   - ScanQuery is the world the introduction motivates against: no summary
//     fields at all, every summary query answered by scanning the stored
//     sequence of transaction records.
//
// Both require the chronicle to be retained in full; they fail loudly on
// windowed chronicles — which is itself the paper's argument.
package baseline

import (
	"fmt"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/algebra"
	"chronicledb/internal/chronicle"
	"chronicledb/internal/value"
	"chronicledb/internal/view"
)

// Recompute re-derives a view definition from scratch on demand.
type Recompute struct {
	def       view.Def
	refreshes int64
}

// NewRecompute validates the definition eagerly (by instantiating a
// throwaway view) and returns the baseline.
func NewRecompute(def view.Def) (*Recompute, error) {
	if _, err := view.New(def, view.StoreHash); err != nil {
		return nil, err
	}
	return &Recompute{def: def}, nil
}

// Refresh evaluates the expression over the fully retained chronicles and
// summarizes from scratch — the per-append cost of the IM-Cᵏ strategy.
func (r *Recompute) Refresh() ([]value.Tuple, error) {
	r.refreshes++
	rows, err := algebra.Evaluate(r.def.Expr)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	v, err := view.New(r.def, view.StoreHash)
	if err != nil {
		return nil, err
	}
	v.ApplyRows(rows)
	return v.Rows(), nil
}

// Lookup answers a single summary query by recomputing and probing.
func (r *Recompute) Lookup(key value.Tuple) (value.Tuple, bool, error) {
	rows, err := algebra.Evaluate(r.def.Expr)
	if err != nil {
		return nil, false, fmt.Errorf("baseline: %w", err)
	}
	v, err := view.New(r.def, view.StoreHash)
	if err != nil {
		return nil, false, err
	}
	v.ApplyRows(rows)
	t, ok := v.Lookup(key)
	return t, ok, nil
}

// Refreshes returns how many times the baseline recomputed.
func (r *Recompute) Refreshes() int64 { return r.refreshes }

// ScanQuery aggregates column col of the rows in c whose keyCol equals key,
// by scanning the retained sequence — the no-persistent-view summary query.
// It returns an error when the chronicle has discarded rows, since the
// answer would silently be wrong.
func ScanQuery(c *chronicle.Chronicle, keyCol int, key value.Value, fn aggregate.Func, col int) (value.Value, error) {
	if c.Dropped() > 0 {
		return value.Null(), fmt.Errorf("baseline: chronicle %s dropped %d rows; scan answer would be wrong", c.Name(), c.Dropped())
	}
	st := aggregate.NewState(fn)
	c.Scan(func(r chronicle.Row) bool {
		if value.Equal(r.Vals[keyCol], key) {
			if col < 0 {
				st.Step(value.Int(1))
			} else {
				st.Step(r.Vals[col])
			}
		}
		return true
	})
	return st.Result(), nil
}
