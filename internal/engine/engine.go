// Package engine implements the chronicle database system of Definition
// 2.1: the quadruple (C, R, L, V) of chronicles, relations, a view
// definition language, and persistent views — plus the periodic views of
// Section 5.1 and the affected-view dispatch of Section 5.2.
//
// The engine is the in-memory kernel. It serializes all updates under one
// mutex, which realizes the paper's update semantics directly: a relation
// update is proactive precisely because it is ordered before every later
// chronicle append (Section 2.3). Durability (WAL, checkpoints) is layered
// on top by the public chronicle package.
package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"chronicledb/internal/algebra"
	"chronicledb/internal/calendar"
	"chronicledb/internal/chronicle"
	"chronicledb/internal/dedup"
	"chronicledb/internal/dispatch"
	"chronicledb/internal/feed"
	"chronicledb/internal/pred"
	"chronicledb/internal/relation"
	"chronicledb/internal/stats"
	"chronicledb/internal/value"
	"chronicledb/internal/view"
)

// Config controls engine-wide defaults.
type Config struct {
	// DefaultRetention applies to chronicles created without an explicit
	// retention. The zero value (RetainNone) is the pure chronicle model.
	DefaultRetention chronicle.Retention
	// RelationHistory retains superseded relation versions for AsOf reads
	// (needed only by reference evaluation and recompute baselines).
	RelationHistory bool
	// DefaultStore is the view store used when a view does not choose.
	DefaultStore view.StoreKind
	// DispatchIndexed enables the Section 5.2 predicate index.
	DispatchIndexed bool
	// Clock supplies chronons for appends. Nil uses wall-clock nanoseconds.
	Clock func() int64
	// LockedReads restores the pre-snapshot read path: every read method
	// acquires the engine-wide mutex, serializing queries against appends.
	// It exists as the ablation baseline for the E17 experiment and has no
	// production use.
	LockedReads bool
	// DedupCap bounds the idempotency table (entries). Zero means
	// dedup.DefaultCap.
	DedupCap int
	// DedupDisabled turns off request deduplication: idempotent appends
	// apply unconditionally. It exists as the ablation baseline for the E18
	// experiment (at-least-once delivery) and has no production use.
	DedupDisabled bool
	// ViewCache, together with BlockFetch, enables blocked persistent view
	// stores: every B-tree view created on this engine pages its state in
	// fixed-size blocks against the shared cache (shards share one budget).
	// Nil leaves views fully resident.
	ViewCache *view.Cache
	// BlockFetch reads a durable view block from the checkpoint chain. The
	// storage layer binds it to the database directory.
	BlockFetch view.FetchFunc
	// ViewBlockBytes is the target encoded size of one view block; ≤0
	// selects view.DefaultBlockBytes. Only meaningful with ViewCache.
	ViewBlockBytes int64
	// MaintWorkers bounds the per-batch view-maintenance parallelism: after
	// the shared plan has computed every affected view's delta, the folds
	// into the view stores run across up to MaintWorkers goroutines
	// (including the appending one). 1 serializes maintenance (the classic
	// path); 0 selects GOMAXPROCS.
	MaintWorkers int
}

// Stats aggregates engine-level counters.
type Stats struct {
	Appends         int64
	TuplesAppended  int64
	RelationUpdates int64
	MaintenanceNs   int64 // total time spent maintaining persistent views
	ViewsMaintained int64 // view-maintenance invocations
	DedupHits       int64 // idempotent appends answered from the dedup table
	SharedHits      int64 // node deltas served from the shared plan's batch cache
}

// Engine is the chronicle database system kernel.
type Engine struct {
	mu  sync.RWMutex
	cfg Config

	lsn        atomic.Uint64 // internal allocator; atomic so LSN() needs no lock
	lsnSrc     func() uint64 // shared LSN domain (sharded mode); nil = internal counter
	groups     map[string]*chronicle.Group
	chronicles map[string]*chronicle.Chronicle
	relations  map[string]*relation.Relation
	views      map[string]*view.View
	periodics  map[string]*calendar.PeriodicView
	disp       *dispatch.Dispatcher
	names      map[string]string // object name -> kind, for cross-kind uniqueness

	// onRecord, when set, observes every durable mutation before it is
	// applied; the WAL layer hooks in here. Returning an error aborts the
	// mutation.
	onRecord func(Mutation) error
	// onCommit, when set, runs after every successful top-level mutation —
	// the WAL group-commit hook. A commit error means the mutation was
	// applied in memory but is not durably acknowledged; the caller latches
	// read-only on it.
	onCommit func() error

	stats    Stats
	maintLat stats.Histogram // per-append view-maintenance latency

	// cat is the atomically published catalog snapshot: immutable
	// name→object maps rebuilt under e.mu on every DDL change. Read
	// methods resolve names through it without touching e.mu, so queries
	// never serialize against the append path. The objects themselves are
	// individually synchronized (views publish COW snapshots; chronicles
	// and relations carry their own read locks).
	cat atomic.Pointer[catalog]

	// Read-path metrics, updated with atomics so the lock-free read
	// methods stay lock-free while still being observable.
	readLookups atomic.Int64
	readScans   atomic.Int64
	readLat     stats.AtomicHistogram

	// scratch is hot-path memory reused across mutations under e.mu. It
	// never escapes a mutation: recorders encode synchronously, the
	// chronicle copies retained rows, and views copy what they keep.
	scratch appendScratch

	// dedup is the bounded idempotency table for AppendEachIdem; nil when
	// Config.DedupDisabled (the E18 at-least-once ablation). It is mutated
	// only under e.mu but carries its own lock for stats/checkpoint readers.
	dedup *dedup.Table

	// Changefeed state. feed, when set, makes maintain capture every
	// persistent view's expression delta into pendingFeed, stamped with the
	// mutation's LSN and ordered by a ticket drawn from feedDoor under
	// e.mu. With feedDefer false (unsharded kernel) each mutation method
	// detaches the batch before unlocking and publishes it after its own
	// commit; with feedDefer true (sharded kernel) batches accumulate until
	// the shard writer's TakeFeed, so one group commit publishes the whole
	// coalesced pass.
	feed        *feed.Hub
	feedDoor    *feed.Door
	feedDefer   bool
	pendingFeed *feed.Batch

	// Maintenance pipeline. maintWorkers is the resolved parallelism bound;
	// pool (nil when maintWorkers == 1) holds the persistent fold workers.
	// batchSeq numbers maintenance batches for the dispatch-target stamp
	// dedup; it only advances under e.mu.
	maintWorkers int
	pool         *maintPool
	batchSeq     uint64
}

// catalog is one immutable generation of the engine's name tables. A new
// generation is built and published on every DDL statement; maps inside a
// published catalog are never written again.
type catalog struct {
	groups     map[string]*chronicle.Group
	chronicles map[string]*chronicle.Chronicle
	relations  map[string]*relation.Relation
	views      map[string]*view.View
	periodics  map[string]*calendar.PeriodicView
	// plan is the shared-delta plan over every persistent view in this
	// generation: structurally, it belongs to the catalog (rebuilt on DDL,
	// immutable thereafter), while its per-batch caches are owned by the
	// maintenance path under e.mu — a published generation is only ever
	// evaluated by the engine that built it.
	plan *algebra.SharedPlan
}

// publishCatalogLocked snapshots the mutable catalog maps into a fresh
// immutable generation for lock-free name resolution. Callers hold e.mu
// exclusively (or have sole ownership, as in New).
func (e *Engine) publishCatalogLocked() {
	c := &catalog{
		groups:     make(map[string]*chronicle.Group, len(e.groups)),
		chronicles: make(map[string]*chronicle.Chronicle, len(e.chronicles)),
		relations:  make(map[string]*relation.Relation, len(e.relations)),
		views:      make(map[string]*view.View, len(e.views)),
		periodics:  make(map[string]*calendar.PeriodicView, len(e.periodics)),
	}
	for n, g := range e.groups {
		c.groups[n] = g
	}
	for n, ch := range e.chronicles {
		c.chronicles[n] = ch
	}
	for n, r := range e.relations {
		c.relations[n] = r
	}
	for n, v := range e.views {
		c.views[n] = v
	}
	for n, pv := range e.periodics {
		c.periodics[n] = pv
	}
	// Rebuild the shared-delta plan: hash-cons every view expression so
	// common subexpressions compute their delta once per batch. Sorted view
	// order keeps plan-node IDs deterministic across restarts (EXPLAIN shows
	// them).
	c.plan = algebra.NewSharedPlan()
	names := make([]string, 0, len(e.views))
	for n := range e.views {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c.plan.AddView(n, e.views[n].Def().Expr)
	}
	e.cat.Store(c)
}

// appendScratch backs the allocation-free append path.
type appendScratch struct {
	tuple  []value.Tuple                            // AppendEach's one-tuple batch
	parts  []MutationPart                           // single-chronicle recorder parts
	rows   []chronicle.Row                          // stored-row accumulator
	batch  []chronicle.BatchPart                    // resolved batch parts
	deltas map[*chronicle.Chronicle][]chronicle.Row // maintain input
	tasks  []maintTask                              // per-batch fold work list
}

// Mutation describes one durable engine mutation, in replayable form.
type Mutation struct {
	Kind      MutationKind
	LSN       uint64 // logical sequence number assigned to this mutation
	SN        int64  // sequence number (MutAppendEach: first SN of the run)
	Chronon   int64
	Parts     []MutationPart // appends
	Relation  string         // relation updates
	Tuple     value.Tuple    // upsert tuple or delete key values
	ClientID  string         // MutAppendEach: idempotency pair
	RequestID string         // MutAppendEach: idempotency pair
}

// MutationPart is one chronicle's share of an append.
type MutationPart struct {
	Chronicle string
	Tuples    []value.Tuple
}

// MutationKind tags a Mutation.
type MutationKind uint8

// The mutation kinds.
const (
	MutAppend MutationKind = iota
	MutUpsert
	MutDelete
	// MutAppendEach is an idempotent bulk append: one chronicle, one run of
	// per-tuple append transactions with consecutive sequence numbers, all
	// recorded as a single WAL frame together with the (ClientID, RequestID)
	// pair — the rows and the dedup entry become durable atomically.
	MutAppendEach
)

// New creates an empty engine.
func New(cfg Config) *Engine {
	if cfg.Clock == nil {
		cfg.Clock = func() int64 { return time.Now().UnixNano() }
	}
	e := &Engine{
		cfg:        cfg,
		groups:     make(map[string]*chronicle.Group),
		chronicles: make(map[string]*chronicle.Chronicle),
		relations:  make(map[string]*relation.Relation),
		views:      make(map[string]*view.View),
		periodics:  make(map[string]*calendar.PeriodicView),
		disp:       dispatch.New(cfg.DispatchIndexed),
		names:      make(map[string]string),
		scratch: appendScratch{
			deltas: make(map[*chronicle.Chronicle][]chronicle.Row),
		},
	}
	e.maintWorkers = cfg.MaintWorkers
	if e.maintWorkers <= 0 {
		e.maintWorkers = runtime.GOMAXPROCS(0)
	}
	if e.maintWorkers > 1 {
		e.pool = newMaintPool(e.maintWorkers - 1)
	}
	if !cfg.DedupDisabled {
		e.dedup = dedup.NewTable(cfg.DedupCap)
	}
	e.publishCatalogLocked()
	return e
}

// MaintWorkers reports the resolved maintenance parallelism bound.
func (e *Engine) MaintWorkers() int { return e.maintWorkers }

// StopMaintenance terminates the maintenance worker pool (no-op for serial
// engines). Call after the last mutation; idempotent.
func (e *Engine) StopMaintenance() {
	if e.pool != nil {
		e.pool.stop()
	}
}

// ViewSharedPlan lists the shared-plan nodes of one view's expression in
// post-order (root last), with each node's cross-view consumer count — the
// EXPLAIN readout of delta sharing. ok is false for unknown views.
func (e *Engine) ViewSharedPlan(name string) (nodes []algebra.PlanNodeInfo, ok bool) {
	cat := e.cat.Load()
	if _, exists := cat.views[name]; !exists {
		return nil, false
	}
	return cat.plan.ViewNodes(name), true
}

// SetRecorder installs the durable-mutation observer (the WAL hook).
func (e *Engine) SetRecorder(fn func(Mutation) error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.onRecord = fn
}

// SetCommitter installs the post-mutation durability hook (the WAL
// group-commit door). It runs once per top-level mutation — so AppendEach's
// whole bulk run is acknowledged by a single commit.
func (e *Engine) SetCommitter(fn func() error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.onCommit = fn
}

// commitWith invokes a durability hook captured under e.mu. It MUST be
// called after releasing the lock: the whole point of the group-commit
// door is that the fsync happens while the next mutation is already
// recording, so concurrent callers queue on the door and one fsync
// acknowledges all of them. Holding e.mu across the fsync would serialize
// commits back to one fsync per mutation.
func (e *Engine) commitWith(fn func() error) error {
	if fn == nil {
		return nil
	}
	if err := fn(); err != nil {
		return fmt.Errorf("engine: committing: %w", err)
	}
	return nil
}

// SetFeed hooks the changefeed hub into the maintenance path. deferred
// selects who publishes: false means each mutation method publishes its
// own batch right after its commit succeeds; true means the caller (the
// shard writer) detaches batches with TakeFeed and publishes them after
// the group commit. Install the hub before any appends replay so the tail
// rings repopulate during recovery.
func (e *Engine) SetFeed(h *feed.Hub, deferred bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.feed = h
	e.feedDoor = feed.NewDoor()
	e.feedDefer = deferred
}

// Feed returns the installed changefeed hub, or nil.
func (e *Engine) Feed() *feed.Hub {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.feed
}

// takeFeedLocked detaches the pending feed batch in immediate mode.
// Deferred mode leaves it for TakeFeed so one group commit covers a whole
// coalesced writer pass.
func (e *Engine) takeFeedLocked() *feed.Batch {
	if e.feedDefer {
		return nil
	}
	fb := e.pendingFeed
	e.pendingFeed = nil
	return fb
}

// TakeFeed detaches the pending changefeed batch (nil when nothing was
// captured). The caller owns it: Publish after the covering commit
// succeeds, Abandon if it fails.
func (e *Engine) TakeFeed() *feed.Batch {
	e.mu.Lock()
	fb := e.pendingFeed
	e.pendingFeed = nil
	e.mu.Unlock()
	return fb
}

// SetLSNSource makes the engine draw LSNs from an external allocator
// instead of its internal counter. The shard router installs one shared
// allocator into every shard engine so that chronicle rows and relation
// versions live in a single, totally ordered LSN domain — which is what
// makes cross-shard proactive-update semantics (and AsOf reference
// evaluation) exact.
func (e *Engine) SetLSNSource(next func() uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lsnSrc = next
}

// Quiesce runs fn while holding the engine's mutation lock exclusively, so
// no append, upsert, or DDL interleaves with it. Checkpoints use it to cut
// a consistent snapshot at an exact LSN: without it a concurrent mutation
// could land in some captured objects but not others, and a segmented
// recovery — which replays records above the checkpoint LSN without
// truncating the log — would double-apply or lose the stragglers. fn must
// only use the engine's lock-free accessors (the published catalog, the
// atomic LSN, per-object locks), never methods that take the engine lock.
func (e *Engine) Quiesce(fn func() error) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return fn()
}

// Stats returns a copy of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.stats
}

// claimName enforces one namespace across object kinds.
func (e *Engine) claimName(name, kind string) error {
	if name == "" {
		return fmt.Errorf("engine: empty %s name", kind)
	}
	if existing, ok := e.names[name]; ok {
		return fmt.Errorf("engine: name %q already used by a %s", name, existing)
	}
	e.names[name] = kind
	return nil
}

// CreateGroup creates a chronicle group.
func (e *Engine) CreateGroup(name string) (*chronicle.Group, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.groups[name]; ok {
		return nil, fmt.Errorf("engine: group %q already exists", name)
	}
	g := chronicle.NewGroup(name)
	e.groups[name] = g
	e.publishCatalogLocked()
	return g, nil
}

// CreateChronicle creates a chronicle inside a (possibly new) group.
// groupName may be empty, in which case the chronicle gets a private group
// of the same name.
func (e *Engine) CreateChronicle(name, groupName string, schema *value.Schema, retain *chronicle.Retention) (*chronicle.Chronicle, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if groupName == "" {
		groupName = name
	}
	g, ok := e.groups[groupName]
	if !ok {
		g = chronicle.NewGroup(groupName)
	}
	r := e.cfg.DefaultRetention
	if retain != nil {
		r = *retain
	}
	if err := e.claimName(name, "chronicle"); err != nil {
		return nil, err
	}
	c, err := g.NewChronicle(name, schema, r)
	if err != nil {
		delete(e.names, name)
		return nil, err
	}
	e.groups[groupName] = g
	e.chronicles[name] = c
	e.publishCatalogLocked()
	return c, nil
}

// CreateRelation creates a relation.
func (e *Engine) CreateRelation(name string, schema *value.Schema, keyCols []int) (*relation.Relation, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.claimName(name, "relation"); err != nil {
		return nil, err
	}
	r, err := relation.New(name, schema, keyCols, e.cfg.RelationHistory)
	if err != nil {
		delete(e.names, name)
		return nil, err
	}
	e.relations[name] = r
	e.publishCatalogLocked()
	return r, nil
}

// AdoptRelation registers an externally created relation in this engine's
// catalog. The shard router uses it to share one relation instance across
// every shard: relations cut across chronicle groups, so all shards must
// resolve a relation name to the same versioned state.
func (e *Engine) AdoptRelation(r *relation.Relation) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.claimName(r.Name(), "relation"); err != nil {
		return err
	}
	e.relations[r.Name()] = r
	e.publishCatalogLocked()
	return nil
}

// CreateView materializes a persistent view and registers it for dispatch.
// filter/filterChronicle optionally narrow dispatch (Section 5.2); pass the
// zero predicate to dispatch on dependency alone.
func (e *Engine) CreateView(def view.Def, kind view.StoreKind, filter pred.Predicate, filterChronicle *chronicle.Chronicle) (*view.View, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.claimName(def.Name, "view"); err != nil {
		return nil, err
	}
	v, err := view.New(def, kind)
	if err != nil {
		delete(e.names, def.Name)
		return nil, err
	}
	info := v.Info()
	if err := e.disp.Register(&dispatch.Target{
		ID:              def.Name,
		Chronicles:      info.Chronicles,
		Filter:          filter,
		FilterChronicle: filterChronicle,
	}); err != nil {
		delete(e.names, def.Name)
		return nil, err
	}
	// Page B-tree views against the shared block cache before backfill or
	// publication, so every entry the view ever holds is block-attributed.
	if e.cfg.ViewCache != nil && e.cfg.BlockFetch != nil {
		v.EnablePaging(e.cfg.ViewBlockBytes, e.cfg.BlockFetch, e.cfg.ViewCache)
	}
	// Fold in any retained history so the view is current from creation.
	e.backfill(v)
	e.views[def.Name] = v
	e.publishCatalogLocked()
	return v, nil
}

// backfill replays retained chronicle rows into a fresh view. Chronicles
// with dropped rows cannot be backfilled; the view is then current only for
// the append suffix (which is all the pure model can promise).
func (e *Engine) backfill(v *view.View) {
	if rows, err := algebra.Evaluate(v.Def().Expr); err == nil {
		v.ApplyRows(rows)
	}
}

// CreatePeriodicView creates a periodic view family (Section 5.1).
func (e *Engine) CreatePeriodicView(name string, def view.Def, cal calendar.Calendar, expireAfter int64, kind view.StoreKind) (*calendar.PeriodicView, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.claimName(name, "periodic view"); err != nil {
		return nil, err
	}
	pv, err := calendar.NewPeriodicView(name, def, cal, expireAfter, kind)
	if err != nil {
		delete(e.names, name)
		return nil, err
	}
	info := algebra.Analyze(def.Expr)
	if err := e.disp.Register(&dispatch.Target{
		ID:         name,
		Chronicles: info.Chronicles,
		ActiveAt: func(ch int64) bool {
			return len(cal.IntervalsAt(ch)) > 0
		},
	}); err != nil {
		delete(e.names, name)
		return nil, err
	}
	e.periodics[name] = pv
	e.publishCatalogLocked()
	return pv, nil
}

// DropView removes a persistent or periodic view from the database. The
// paper's model has "a fixed number of persistent views"; dropping is the
// administrative escape hatch (a dropped view's summarized history is gone
// for good — the chronicle it summarized was never stored).
func (e *Engine) DropView(name string) error {
	e.mu.Lock()
	switch e.names[name] {
	case "view":
		if v := e.views[name]; v != nil {
			v.ReleasePaging()
		}
		delete(e.views, name)
	case "periodic view":
		delete(e.periodics, name)
	default:
		e.mu.Unlock()
		return fmt.Errorf("engine: no view named %q", name)
	}
	delete(e.names, name)
	e.disp.Unregister(name)
	e.publishCatalogLocked()
	h := e.feed
	e.mu.Unlock()
	if h != nil {
		// Terminate the view's subscriptions (ReasonDropped) and free its
		// resume tail; done outside e.mu so feed locks never nest inside it.
		h.DropView(name)
	}
	return nil
}

// Append inserts tuples into one chronicle as a single transaction: the
// record is appended with the next group sequence number, affected views
// are identified, and each is maintained incrementally — the complete
// per-transaction pipeline whose cost Section 3 is about.
func (e *Engine) Append(chronicleName string, tuples []value.Tuple) (sn int64, err error) {
	e.mu.Lock()
	sn, err = e.appendLocked(chronicleName, tuples, nil, nil)
	commit := e.onCommit
	fb := e.takeFeedLocked()
	e.mu.Unlock()
	if err != nil {
		fb.Abandon()
		return 0, err
	}
	if err := e.commitWith(commit); err != nil {
		fb.Abandon()
		return 0, err
	}
	fb.Publish()
	return sn, nil
}

// AppendAt is Append with caller-supplied sequence number and chronon; the
// WAL layer uses it for replay, tests for deterministic time.
func (e *Engine) AppendAt(chronicleName string, sn, chronon int64, tuples []value.Tuple) (int64, error) {
	e.mu.Lock()
	out, err := e.appendLocked(chronicleName, tuples, &sn, &chronon)
	commit := e.onCommit
	fb := e.takeFeedLocked()
	e.mu.Unlock()
	if err != nil {
		fb.Abandon()
		return 0, err
	}
	if err := e.commitWith(commit); err != nil {
		fb.Abandon()
		return 0, err
	}
	fb.Publish()
	return out, nil
}

func (e *Engine) appendLocked(chronicleName string, tuples []value.Tuple, snOverride, chOverride *int64) (int64, error) {
	c, ok := e.chronicles[chronicleName]
	if !ok {
		return 0, fmt.Errorf("engine: unknown chronicle %q", chronicleName)
	}
	for i, t := range tuples {
		coerced, err := c.Schema().Coerce(t)
		if err != nil {
			return 0, fmt.Errorf("engine: chronicle %s: tuple %d: %w", chronicleName, i, err)
		}
		tuples[i] = coerced
	}
	sn := c.Group().NextSN()
	if snOverride != nil {
		sn = *snOverride
	}
	chronon := e.cfg.Clock()
	if chOverride != nil {
		chronon = *chOverride
	}
	lsn := e.nextLSN()
	if e.onRecord != nil {
		e.scratch.parts = append(e.scratch.parts[:0], MutationPart{Chronicle: chronicleName, Tuples: tuples})
		m := Mutation{Kind: MutAppend, LSN: lsn, SN: sn, Chronon: chronon, Parts: e.scratch.parts}
		if err := e.onRecord(m); err != nil {
			return 0, fmt.Errorf("engine: recording append: %w", err)
		}
	}
	rows, err := c.AppendInto(sn, chronon, lsn, tuples, e.scratch.rows[:0])
	if err != nil {
		return 0, err
	}
	e.scratch.rows = rows
	clear(e.scratch.deltas)
	e.scratch.deltas[c] = rows
	e.maintain(e.scratch.deltas, chronon, lsn)
	e.stats.Appends++
	e.stats.TuplesAppended += int64(len(tuples))
	return sn, nil
}

// AppendBatch inserts tuples into several chronicles of one group
// simultaneously, sharing a single sequence number.
func (e *Engine) AppendBatch(parts []MutationPart) (int64, error) {
	e.mu.Lock()
	sn, err := e.appendBatchLocked(parts, nil, nil)
	commit := e.onCommit
	fb := e.takeFeedLocked()
	e.mu.Unlock()
	if err != nil {
		fb.Abandon()
		return 0, err
	}
	if err := e.commitWith(commit); err != nil {
		fb.Abandon()
		return 0, err
	}
	fb.Publish()
	return sn, nil
}

// AppendBatchAt is AppendBatch with caller-supplied SN and chronon.
func (e *Engine) AppendBatchAt(parts []MutationPart, sn, chronon int64) (int64, error) {
	e.mu.Lock()
	out, err := e.appendBatchLocked(parts, &sn, &chronon)
	commit := e.onCommit
	fb := e.takeFeedLocked()
	e.mu.Unlock()
	if err != nil {
		fb.Abandon()
		return 0, err
	}
	if err := e.commitWith(commit); err != nil {
		fb.Abandon()
		return 0, err
	}
	fb.Publish()
	return out, nil
}

func (e *Engine) appendBatchLocked(parts []MutationPart, snOverride, chOverride *int64) (int64, error) {
	if len(parts) == 0 {
		return 0, fmt.Errorf("engine: empty batch")
	}
	resolved := e.scratch.batch[:0]
	var g *chronicle.Group
	for _, p := range parts {
		c, ok := e.chronicles[p.Chronicle]
		if !ok {
			return 0, fmt.Errorf("engine: unknown chronicle %q", p.Chronicle)
		}
		if g == nil {
			g = c.Group()
		}
		for j, t := range p.Tuples {
			coerced, err := c.Schema().Coerce(t)
			if err != nil {
				return 0, fmt.Errorf("engine: chronicle %s: tuple %d: %w", p.Chronicle, j, err)
			}
			p.Tuples[j] = coerced
		}
		resolved = append(resolved, chronicle.BatchPart{C: c, Tuples: p.Tuples})
	}
	e.scratch.batch = resolved
	sn := g.NextSN()
	if snOverride != nil {
		sn = *snOverride
	}
	chronon := e.cfg.Clock()
	if chOverride != nil {
		chronon = *chOverride
	}
	lsn := e.nextLSN()
	if e.onRecord != nil {
		if err := e.onRecord(Mutation{Kind: MutAppend, LSN: lsn, SN: sn, Chronon: chronon, Parts: parts}); err != nil {
			return 0, fmt.Errorf("engine: recording append: %w", err)
		}
	}
	clear(e.scratch.deltas)
	if err := g.AppendBatchInto(sn, chronon, lsn, resolved, e.scratch.deltas); err != nil {
		return 0, err
	}
	e.maintain(e.scratch.deltas, chronon, lsn)
	e.stats.Appends++
	for _, p := range parts {
		e.stats.TuplesAppended += int64(len(p.Tuples))
	}
	return sn, nil
}

// AppendEach inserts each tuple as its own append transaction (its own
// sequence number and view-maintenance round) but acquires the engine
// lock once for the whole run — the bulk ingest path. It returns the first
// and last sequence numbers assigned. On error, tuples before the failing
// one remain applied, matching a loop of Append calls.
func (e *Engine) AppendEach(chronicleName string, tuples []value.Tuple) (first, last int64, err error) {
	if len(tuples) == 0 {
		return 0, 0, fmt.Errorf("engine: empty append")
	}
	e.mu.Lock()
	var applyErr error
	for i, t := range tuples {
		e.scratch.tuple = append(e.scratch.tuple[:0], t)
		sn, err := e.appendLocked(chronicleName, e.scratch.tuple, nil, nil)
		if err != nil {
			// Earlier tuples remain applied (matching a loop of Append
			// calls); still commit below so their records are durably
			// acknowledged too.
			applyErr = fmt.Errorf("engine: tuple %d: %w", i, err)
			break
		}
		if i == 0 {
			first = sn
		}
		last = sn
	}
	commit := e.onCommit
	fb := e.takeFeedLocked()
	e.mu.Unlock()
	cerr := e.commitWith(commit)
	if cerr != nil {
		fb.Abandon()
	} else {
		// Publish even on a partial run: the applied prefix committed, so
		// its deltas are durable and must reach subscribers.
		fb.Publish()
	}
	if applyErr != nil {
		return first, last, applyErr
	}
	if cerr != nil {
		return first, last, cerr
	}
	return first, last, nil
}

// AppendEachIdem is AppendEach with exactly-once semantics: the request is
// identified by (clientID, requestID), and a request already applied — even
// in a previous process life, via WAL replay or checkpoint restore —
// returns its original sequence-number range with deduped=true instead of
// re-applying. Unlike AppendEach, the run is atomic: every tuple is coerced
// before the single WAL record is written, so a request is either applied
// whole (and remembered) or not at all — there is no durable prefix that a
// retry could double-apply.
func (e *Engine) AppendEachIdem(chronicleName string, tuples []value.Tuple, clientID, requestID string) (first, last int64, deduped bool, err error) {
	if len(tuples) == 0 {
		return 0, 0, false, fmt.Errorf("engine: empty append")
	}
	e.mu.Lock()
	if e.dedup != nil {
		if ack, ok := e.dedup.Lookup(clientID, requestID); ok {
			e.stats.DedupHits++
			e.mu.Unlock()
			return ack.FirstSN, ack.LastSN, true, nil
		}
	}
	first, last, err = e.appendEachAtomicLocked(chronicleName, tuples, clientID, requestID, nil, nil)
	commit := e.onCommit
	fb := e.takeFeedLocked()
	e.mu.Unlock()
	if err != nil {
		fb.Abandon()
		return 0, 0, false, err
	}
	if err := e.commitWith(commit); err != nil {
		fb.Abandon()
		// The run is applied in memory but not durably acknowledged. The
		// caller (the DB facade) latches read-only on this error, which is
		// what keeps the dedup entry from turning a failed commit into a
		// false positive ack on retry.
		return first, last, false, err
	}
	fb.Publish()
	return first, last, false, nil
}

// AppendEachAt replays a MutAppendEach record: caller-supplied first SN and
// chronon, re-inserting the dedup entry so post-recovery retries still hit.
func (e *Engine) AppendEachAt(chronicleName string, firstSN, chronon int64, tuples []value.Tuple, clientID, requestID string) error {
	e.mu.Lock()
	_, _, err := e.appendEachAtomicLocked(chronicleName, tuples, clientID, requestID, &firstSN, &chronon)
	commit := e.onCommit
	fb := e.takeFeedLocked()
	e.mu.Unlock()
	if err != nil {
		fb.Abandon()
		return err
	}
	if err := e.commitWith(commit); err != nil {
		fb.Abandon()
		return err
	}
	fb.Publish()
	return nil
}

// appendEachAtomicLocked applies one idempotent run: coerce everything,
// write ONE WAL record carrying the ids, then apply each tuple as its own
// append transaction (own SN, own view-maintenance round — identical
// semantics to AppendEach) with sn = firstSN+i, and finally remember the
// ack. Per-tuple LSN consumption matches replay: the record's LSN is the
// first tuple's, and each later tuple draws a fresh one.
func (e *Engine) appendEachAtomicLocked(chronicleName string, tuples []value.Tuple, clientID, requestID string, snOverride, chOverride *int64) (first, last int64, err error) {
	c, ok := e.chronicles[chronicleName]
	if !ok {
		return 0, 0, fmt.Errorf("engine: unknown chronicle %q", chronicleName)
	}
	for i, t := range tuples {
		coerced, cerr := c.Schema().Coerce(t)
		if cerr != nil {
			return 0, 0, fmt.Errorf("engine: chronicle %s: tuple %d: %w", chronicleName, i, cerr)
		}
		tuples[i] = coerced
	}
	firstSN := c.Group().NextSN()
	if snOverride != nil {
		firstSN = *snOverride
	}
	chronon := e.cfg.Clock()
	if chOverride != nil {
		chronon = *chOverride
	}
	lsn := e.nextLSN()
	if e.onRecord != nil {
		e.scratch.parts = append(e.scratch.parts[:0], MutationPart{Chronicle: chronicleName, Tuples: tuples})
		m := Mutation{
			Kind: MutAppendEach, LSN: lsn, SN: firstSN, Chronon: chronon,
			Parts: e.scratch.parts, ClientID: clientID, RequestID: requestID,
		}
		if err := e.onRecord(m); err != nil {
			return 0, 0, fmt.Errorf("engine: recording append: %w", err)
		}
	}
	for i := range tuples {
		sn := firstSN + int64(i)
		tupleLSN := lsn
		if i > 0 {
			tupleLSN = e.nextLSN()
		}
		e.scratch.tuple = append(e.scratch.tuple[:0], tuples[i])
		rows, aerr := c.AppendInto(sn, chronon, tupleLSN, e.scratch.tuple, e.scratch.rows[:0])
		if aerr != nil {
			// Unreachable in practice: the SNs are consecutive under e.mu
			// and every tuple was coerced above. Reported for safety.
			return 0, 0, fmt.Errorf("engine: tuple %d: %w", i, aerr)
		}
		e.scratch.rows = rows
		clear(e.scratch.deltas)
		e.scratch.deltas[c] = rows
		e.maintain(e.scratch.deltas, chronon, tupleLSN)
		e.stats.Appends++
		e.stats.TuplesAppended++
	}
	last = firstSN + int64(len(tuples)) - 1
	if e.dedup != nil && clientID != "" {
		e.dedup.Put(clientID, requestID, dedup.Ack{
			Chronicle: chronicleName, FirstSN: firstSN, LastSN: last, Rows: len(tuples),
		})
	}
	return firstSN, last, nil
}

// Dedup exposes the idempotency table for checkpointing and stats; nil when
// dedup is disabled.
func (e *Engine) Dedup() *dedup.Table { return e.dedup }

// RestoreDedupEntry reinstates one checkpointed idempotency entry.
func (e *Engine) RestoreDedupEntry(ent dedup.Entry) {
	if e.dedup != nil {
		e.dedup.Put(ent.ClientID, ent.RequestID, ent.Ack)
	}
}

// DedupEntries snapshots the live idempotency entries in insertion order
// (checkpoint building). Nil when dedup is disabled.
func (e *Engine) DedupEntries() []dedup.Entry {
	if e.dedup == nil {
		return nil
	}
	out := make([]dedup.Entry, 0, e.dedup.Len())
	e.dedup.Range(func(ent dedup.Entry) bool {
		out = append(out, ent)
		return true
	})
	return out
}

// DedupStats reports the idempotency table's observability counters.
func (e *Engine) DedupStats() (entries int, hits int64, evictions int64) {
	e.mu.RLock()
	hits = e.stats.DedupHits
	e.mu.RUnlock()
	if e.dedup != nil {
		entries = e.dedup.Len()
		evictions = e.dedup.Evictions()
	}
	return entries, hits, evictions
}

// maintain dispatches one append's deltas to every affected persistent and
// periodic view: the shared-delta pipeline. Phase 1 (compute, serial under
// e.mu) walks the affected targets, pulls each persistent view's expression
// delta from the shared plan — so a subexpression common to several views
// is evaluated once per batch — and, with a changefeed installed, captures
// the delta under the mutation's lsn before any fold starts: capture order
// is fixed here, under e.mu, regardless of fold scheduling. Phase 2 (fold)
// applies the precomputed rows to the views, in parallel across the worker
// pool when one is configured; it completes before maintain returns, since
// the plan's buffers and the batch's stored rows are reused by the next
// mutation. Periodic views are few and stateful, so they apply inline in
// phase 1.
//
// Catalog access goes through the published snapshot (e.cat.Load()), the
// same generation the read path sees, so maintenance and DDL agree on the
// view set by construction rather than by lock-ordering subtlety.
func (e *Engine) maintain(deltas map[*chronicle.Chronicle][]chronicle.Row, chronon int64, lsn uint64) {
	start := time.Now()
	batch := algebra.BatchDelta(deltas)
	cat := e.cat.Load()
	plan := cat.plan
	plan.BeginBatch()
	e.batchSeq++
	tasks := e.scratch.tasks[:0]
	for c, rows := range deltas {
		for _, t := range e.disp.Affected(c, rows, chronon) {
			if t.Stamp(e.batchSeq) {
				continue // already claimed via another chronicle's delta
			}
			if v, ok := cat.views[t.ID]; ok {
				drows, planned := plan.DeltaFor(t.ID, batch)
				if !planned {
					// The published plan predates this view (not reachable
					// today — CreateView republishes before any append sees
					// the target — but cheap to keep correct).
					drows = v.Delta(batch)
				}
				if e.feed != nil && len(drows) > 0 {
					if e.pendingFeed == nil {
						e.pendingFeed = e.feed.Begin(e.feedDoor)
					}
					e.pendingFeed.Capture(t.ID, lsn, drows)
				}
				tasks = append(tasks, maintTask{v: v, rows: drows})
				e.stats.ViewsMaintained++
			} else if pv, ok := cat.periodics[t.ID]; ok {
				// Apply error only occurs for invalid defs, which New vetted.
				_ = pv.Apply(batch, chronon)
				e.stats.ViewsMaintained++
			}
		}
	}
	if e.pool != nil && len(tasks) > 1 {
		e.pool.run(tasks)
	} else {
		for _, t := range tasks {
			t.v.ApplyRows(t.rows)
		}
	}
	e.scratch.tasks = tasks
	e.stats.SharedHits += plan.TakeHits()
	elapsed := time.Since(start)
	e.stats.MaintenanceNs += elapsed.Nanoseconds()
	e.maintLat.Observe(elapsed)
}

// MaintenanceLatency summarizes the distribution of per-append view
// maintenance time — the operational readout of the view language's IM
// class: SCA1 views keep this flat forever.
func (e *Engine) MaintenanceLatency() stats.Snapshot {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.maintLat.Snapshot()
}

// MaintenanceHistogram returns a copy of the raw maintenance-latency
// histogram so callers (the shard router's scatter/gather stats path) can
// Merge distributions across engines before summarizing.
func (e *Engine) MaintenanceHistogram() stats.Histogram {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.maintLat
}

// Upsert applies a proactive relation update.
func (e *Engine) Upsert(relationName string, t value.Tuple) error {
	e.mu.Lock()
	err := e.upsertLocked(relationName, t)
	commit := e.onCommit
	e.mu.Unlock()
	if err != nil {
		return err
	}
	return e.commitWith(commit)
}

func (e *Engine) upsertLocked(relationName string, t value.Tuple) error {
	r, ok := e.relations[relationName]
	if !ok {
		return fmt.Errorf("engine: unknown relation %q", relationName)
	}
	coerced, err := r.Schema().Coerce(t)
	if err != nil {
		return fmt.Errorf("engine: relation %s: %w", relationName, err)
	}
	t = coerced
	lsn := e.nextLSN()
	if e.onRecord != nil {
		if err := e.onRecord(Mutation{Kind: MutUpsert, LSN: lsn, Relation: relationName, Tuple: t}); err != nil {
			return fmt.Errorf("engine: recording upsert: %w", err)
		}
	}
	if err := r.Upsert(lsn, t); err != nil {
		return err
	}
	e.stats.RelationUpdates++
	return nil
}

// DeleteKey applies a proactive relation delete by key values.
func (e *Engine) DeleteKey(relationName string, keyVals value.Tuple) (bool, error) {
	e.mu.Lock()
	deleted, err := e.deleteKeyLocked(relationName, keyVals)
	commit := e.onCommit
	e.mu.Unlock()
	if err != nil {
		return false, err
	}
	return deleted, e.commitWith(commit)
}

func (e *Engine) deleteKeyLocked(relationName string, keyVals value.Tuple) (bool, error) {
	r, ok := e.relations[relationName]
	if !ok {
		return false, fmt.Errorf("engine: unknown relation %q", relationName)
	}
	lsn := e.nextLSN()
	if e.onRecord != nil {
		if err := e.onRecord(Mutation{Kind: MutDelete, LSN: lsn, Relation: relationName, Tuple: keyVals}); err != nil {
			return false, fmt.Errorf("engine: recording delete: %w", err)
		}
	}
	deleted := r.Delete(lsn, keyVals)
	if deleted {
		e.stats.RelationUpdates++
	}
	return deleted, nil
}

func (e *Engine) nextLSN() uint64 {
	if e.lsnSrc != nil {
		return e.lsnSrc()
	}
	return e.lsn.Add(1)
}

// LSN returns the current logical sequence number. With an external LSN
// source installed the router owns the counter; this reports only the
// internal one.
func (e *Engine) LSN() uint64 {
	return e.lsn.Load()
}

// RestoreLSN advances the LSN to at least lsn. Checkpoint recovery uses it
// so post-recovery updates keep strictly increasing LSNs.
func (e *Engine) RestoreLSN(lsn uint64) {
	for {
		cur := e.lsn.Load()
		if lsn <= cur || e.lsn.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// GroupNames returns the chronicle group names, sorted.
func (e *Engine) GroupNames() []string {
	c := e.cat.Load()
	out := make([]string, 0, len(c.groups))
	for n := range c.groups {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Chronicle returns a chronicle by name.
func (e *Engine) Chronicle(name string) (*chronicle.Chronicle, bool) {
	c, ok := e.cat.Load().chronicles[name]
	return c, ok
}

// Relation returns a relation by name.
func (e *Engine) Relation(name string) (*relation.Relation, bool) {
	r, ok := e.cat.Load().relations[name]
	return r, ok
}

// View returns a persistent view by name. View read methods are
// internally synchronized (B-tree views publish immutable snapshots, hash
// views take a per-view read lock), so the handle may be used while other
// goroutines append.
func (e *Engine) View(name string) (*view.View, bool) {
	v, ok := e.cat.Load().views[name]
	return v, ok
}

// Read path. Every method below resolves names through the atomically
// published catalog and reads object state through per-object
// synchronization (view snapshots, chronicle/relation read locks) — none
// of them touches e.mu, so summary queries never serialize against the
// append hot path. The only exception is Config.LockedReads, the E17
// ablation baseline, which restores the engine-wide read lock.
//
// Ownership rule: every tuple returned (or passed to a scan callback) by
// these methods is caller-owned — the engine clones anything that would
// otherwise alias store-owned memory, so callers may retain and mutate
// results freely.

// lockedReads acquires e.mu for the ablation baseline; the returned
// function releases it. In the default configuration both are no-ops.
func (e *Engine) lockedReads() func() {
	if !e.cfg.LockedReads {
		return func() {}
	}
	e.mu.RLock()
	return e.mu.RUnlock
}

// ownedRow upholds the ownership rule: projection views hand out the
// store's interned tuple (immutable, but shared), which is cloned before
// it escapes; group-by rows are already materialized per call.
func ownedRow(v *view.View, t value.Tuple) value.Tuple {
	if v.Def().Mode == view.SummarizeProject {
		return t.Clone()
	}
	return t
}

// ViewLookup answers a summary query from a persistent view by group key.
// It runs lock-free against the view's latest published snapshot.
func (e *Engine) ViewLookup(name string, key value.Tuple) (value.Tuple, bool, error) {
	defer e.lockedReads()()
	start := time.Now()
	v, ok := e.cat.Load().views[name]
	if !ok {
		return nil, false, fmt.Errorf("engine: unknown view %q", name)
	}
	row, found := v.Lookup(key)
	if found {
		row = ownedRow(v, row)
	}
	e.readLookups.Add(1)
	e.readLat.Observe(time.Since(start))
	return row, found, nil
}

// ViewScanFunc streams a view's rows in group-key order until fn returns
// false. Tuples passed to fn are caller-owned.
func (e *Engine) ViewScanFunc(name string, fn func(value.Tuple) bool) error {
	defer e.lockedReads()()
	start := time.Now()
	v, ok := e.cat.Load().views[name]
	if !ok {
		return fmt.Errorf("engine: unknown view %q", name)
	}
	v.Scan(func(t value.Tuple) bool {
		return fn(ownedRow(v, t))
	})
	e.readScans.Add(1)
	e.readLat.Observe(time.Since(start))
	return nil
}

// ViewScanAt streams a view's rows like ViewScanFunc and returns the
// applied LSN of the scanned state — the changefeed's snapshot catch-up
// anchor: deltas with LSN ≤ the returned value are already reflected in
// the rows fn saw. Tuples passed to fn are caller-owned.
func (e *Engine) ViewScanAt(name string, fn func(value.Tuple) bool) (uint64, error) {
	defer e.lockedReads()()
	start := time.Now()
	v, ok := e.cat.Load().views[name]
	if !ok {
		return 0, fmt.Errorf("engine: unknown view %q", name)
	}
	lsn := v.ScanAt(func(t value.Tuple) bool {
		return fn(ownedRow(v, t))
	})
	e.readScans.Add(1)
	e.readLat.Observe(time.Since(start))
	return lsn, nil
}

// ViewScanRangeFunc streams the view rows with group key in [lo, hi) in
// ascending order until fn returns false. Tuples passed to fn are
// caller-owned.
func (e *Engine) ViewScanRangeFunc(name string, lo, hi value.Tuple, fn func(value.Tuple) bool) error {
	defer e.lockedReads()()
	start := time.Now()
	v, ok := e.cat.Load().views[name]
	if !ok {
		return fmt.Errorf("engine: unknown view %q", name)
	}
	v.ScanRange(lo, hi, func(t value.Tuple) bool {
		return fn(ownedRow(v, t))
	})
	e.readScans.Add(1)
	e.readLat.Observe(time.Since(start))
	return nil
}

// ViewScanDescFunc streams a view's rows in descending group-key order —
// the "latest N groups" access path: walk from the top and stop early.
// Tuples passed to fn are caller-owned.
func (e *Engine) ViewScanDescFunc(name string, fn func(value.Tuple) bool) error {
	defer e.lockedReads()()
	start := time.Now()
	v, ok := e.cat.Load().views[name]
	if !ok {
		return fmt.Errorf("engine: unknown view %q", name)
	}
	v.ScanDesc(func(t value.Tuple) bool {
		return fn(ownedRow(v, t))
	})
	e.readScans.Add(1)
	e.readLat.Observe(time.Since(start))
	return nil
}

// ViewRows materializes a view's contents. The rows are caller-owned.
func (e *Engine) ViewRows(name string) ([]value.Tuple, error) {
	var out []value.Tuple
	err := e.ViewScanFunc(name, func(t value.Tuple) bool {
		out = append(out, t)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ViewScanRange collects the view rows with group key in [lo, hi). The
// rows are caller-owned.
func (e *Engine) ViewScanRange(name string, lo, hi value.Tuple) ([]value.Tuple, error) {
	var out []value.Tuple
	err := e.ViewScanRangeFunc(name, lo, hi, func(t value.Tuple) bool {
		out = append(out, t)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RelationRows materializes a relation's live tuples in key order. The
// rows are caller-owned.
func (e *Engine) RelationRows(name string) ([]value.Tuple, error) {
	defer e.lockedReads()()
	start := time.Now()
	r, ok := e.cat.Load().relations[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown relation %q", name)
	}
	var out []value.Tuple
	r.Scan(func(t value.Tuple) bool {
		out = append(out, t.Clone())
		return true
	})
	e.readScans.Add(1)
	e.readLat.Observe(time.Since(start))
	return out, nil
}

// ChronicleRows copies a chronicle's retained window under the
// chronicle's own read lock. The rows are caller-owned.
func (e *Engine) ChronicleRows(name string) ([]chronicle.Row, error) {
	defer e.lockedReads()()
	start := time.Now()
	c, ok := e.cat.Load().chronicles[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown chronicle %q", name)
	}
	rows := c.RowsCopy()
	e.readScans.Add(1)
	e.readLat.Observe(time.Since(start))
	return rows, nil
}

// ReadStats reports the read-path counters and latency distribution.
type ReadStats struct {
	Lookups int64
	Scans   int64
	Latency stats.Snapshot
}

// ReadStats returns a copy of the read-path metrics.
func (e *Engine) ReadStats() ReadStats {
	return ReadStats{
		Lookups: e.readLookups.Load(),
		Scans:   e.readScans.Load(),
		Latency: e.readLat.Snapshot(),
	}
}

// ReadHistogram copies the raw read-latency histogram so the shard
// router can Merge distributions across engines before summarizing.
func (e *Engine) ReadHistogram() stats.Histogram {
	return e.readLat.Histogram()
}

// ReadCounts returns the raw lookup and scan counters.
func (e *Engine) ReadCounts() (lookups, scans int64) {
	return e.readLookups.Load(), e.readScans.Load()
}

// OldestSnapshotUnixNano returns the publication time of the oldest live
// view snapshot — how stale the worst-case lock-free read can be. Zero
// means no view currently publishes a snapshot (no views, or all on the
// hash store).
func (e *Engine) OldestSnapshotUnixNano() int64 {
	var oldest int64
	for _, v := range e.cat.Load().views {
		if at := v.SnapshotUnixNano(); at != 0 && (oldest == 0 || at < oldest) {
			oldest = at
		}
	}
	return oldest
}

// PeriodicView returns a periodic view family by name.
func (e *Engine) PeriodicView(name string) (*calendar.PeriodicView, bool) {
	pv, ok := e.cat.Load().periodics[name]
	return pv, ok
}

// Group returns a chronicle group by name.
func (e *Engine) Group(name string) (*chronicle.Group, bool) {
	g, ok := e.cat.Load().groups[name]
	return g, ok
}

// ViewNames returns the persistent view names, sorted.
func (e *Engine) ViewNames() []string { return e.sortedNames("view") }

// ChronicleNames returns the chronicle names, sorted.
func (e *Engine) ChronicleNames() []string { return e.sortedNames("chronicle") }

// RelationNames returns the relation names, sorted.
func (e *Engine) RelationNames() []string { return e.sortedNames("relation") }

// PeriodicViewNames returns the periodic view family names, sorted.
func (e *Engine) PeriodicViewNames() []string { return e.sortedNames("periodic view") }

func (e *Engine) sortedNames(kind string) []string {
	c := e.cat.Load()
	var out []string
	switch kind {
	case "view":
		for n := range c.views {
			out = append(out, n)
		}
	case "chronicle":
		for n := range c.chronicles {
			out = append(out, n)
		}
	case "relation":
		for n := range c.relations {
			out = append(out, n)
		}
	case "periodic view":
		for n := range c.periodics {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
