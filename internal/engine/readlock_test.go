package engine

import (
	"testing"
	"time"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/algebra"
	"chronicledb/internal/pred"
	"chronicledb/internal/value"
	"chronicledb/internal/view"
)

// populateForReads seeds an engine with a B-tree view, a hash view, a
// relation, and a few appended rows so every read method has something to
// return.
func populateForReads(t *testing.T, e *Engine) {
	t.Helper()
	c := mustCreateCalls(t, e)
	if _, err := e.CreateView(usageDef(c), view.StoreBTree, pred.True(), nil); err != nil {
		t.Fatal(err)
	}
	hdef := view.Def{
		Name:      "usage_hash",
		Expr:      algebra.NewScan(c),
		Mode:      view.SummarizeGroupBy,
		GroupCols: []int{0},
		Aggs: []aggregate.Spec{
			{Func: aggregate.Sum, Col: 1, Name: "total"},
			{Func: aggregate.Count, Col: -1, Name: "n"},
		},
	}
	if _, err := e.CreateView(hdef, view.StoreHash, pred.True(), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateRelation("customers", custSchema(), []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := e.Upsert("customers", value.Tuple{value.Str("acct1"), value.Str("nj")}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := e.Append("calls", []value.Tuple{{value.Str("acct1"), value.Int(int64(i))}}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReadsDoNotAcquireEngineLock is the lock-freedom guard for the read
// path: it holds e.mu exclusively — as the append hot path does — and
// requires every read method to complete anyway. A read that acquires
// e.mu (even the read side) deadlocks here and fails the test, so the
// "ViewLookup performs zero lock acquisitions on e.mu" invariant is
// machine-checked, not just documented.
func TestReadsDoNotAcquireEngineLock(t *testing.T) {
	e, _ := newEngine(t)
	populateForReads(t, e)

	e.mu.Lock()
	defer e.mu.Unlock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok, err := e.ViewLookup("usage", value.Tuple{value.Str("acct1")}); err != nil || !ok {
			t.Errorf("ViewLookup = %v, %v", ok, err)
		}
		if rows, err := e.ViewRows("usage"); err != nil || len(rows) != 1 {
			t.Errorf("ViewRows = %d rows, %v", len(rows), err)
		}
		if _, err := e.ViewScanRange("usage", nil, value.Tuple{value.Str("zzz")}); err != nil {
			t.Errorf("ViewScanRange: %v", err)
		}
		if err := e.ViewScanFunc("usage", func(value.Tuple) bool { return true }); err != nil {
			t.Errorf("ViewScanFunc: %v", err)
		}
		if err := e.ViewScanDescFunc("usage", func(value.Tuple) bool { return true }); err != nil {
			t.Errorf("ViewScanDescFunc: %v", err)
		}
		// Hash views have no B-tree snapshot; since PR 8 they publish
		// through an atomic table and must be as lock-free as the rest.
		if _, ok, err := e.ViewLookup("usage_hash", value.Tuple{value.Str("acct1")}); err != nil || !ok {
			t.Errorf("hash ViewLookup = %v, %v", ok, err)
		}
		if rows, err := e.ViewRows("usage_hash"); err != nil || len(rows) != 1 {
			t.Errorf("hash ViewRows = %d rows, %v", len(rows), err)
		}
		if _, err := e.ViewScanRange("usage_hash", nil, value.Tuple{value.Str("zzz")}); err != nil {
			t.Errorf("hash ViewScanRange: %v", err)
		}
		if err := e.ViewScanFunc("usage_hash", func(value.Tuple) bool { return true }); err != nil {
			t.Errorf("hash ViewScanFunc: %v", err)
		}
		if err := e.ViewScanDescFunc("usage_hash", func(value.Tuple) bool { return true }); err != nil {
			t.Errorf("hash ViewScanDescFunc: %v", err)
		}
		if rows, err := e.RelationRows("customers"); err != nil || len(rows) != 1 {
			t.Errorf("RelationRows = %d rows, %v", len(rows), err)
		}
		if _, err := e.ChronicleRows("calls"); err != nil {
			t.Errorf("ChronicleRows: %v", err)
		}
		if _, ok := e.View("usage"); !ok {
			t.Error("View lookup failed")
		}
		if _, ok := e.Chronicle("calls"); !ok {
			t.Error("Chronicle lookup failed")
		}
		if _, ok := e.Relation("customers"); !ok {
			t.Error("Relation lookup failed")
		}
		if rs := e.ReadStats(); rs.Lookups == 0 {
			t.Error("ReadStats().Lookups = 0 after reads")
		}
		if e.OldestSnapshotUnixNano() == 0 {
			t.Error("OldestSnapshotUnixNano() = 0 with a live B-tree view")
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("a read method blocked on e.mu — the lock-free read path regressed")
	}
}

// TestLockedReadsAblationSerializes proves the E17 baseline measures what
// it claims: with Config.LockedReads, the same ViewLookup DOES wait for
// e.mu, so the ablation restores the pre-snapshot serialization.
func TestLockedReadsAblationSerializes(t *testing.T) {
	now := int64(0)
	e := New(Config{
		DispatchIndexed: true,
		RelationHistory: true,
		LockedReads:     true,
		Clock:           func() int64 { return now },
	})
	populateForReads(t, e)

	e.mu.Lock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		e.ViewLookup("usage", value.Tuple{value.Str("acct1")})
	}()
	select {
	case <-done:
		e.mu.Unlock()
		t.Fatal("LockedReads lookup completed while e.mu was held")
	case <-time.After(50 * time.Millisecond):
		// Blocked, as the ablation intends.
	}
	e.mu.Unlock()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("LockedReads lookup never completed after unlock")
	}
}
