package engine

import (
	"fmt"
	"testing"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/algebra"
	"chronicledb/internal/calendar"
	"chronicledb/internal/chronicle"
	"chronicledb/internal/pred"
	"chronicledb/internal/value"
	"chronicledb/internal/view"
)

func callsSchema() *value.Schema {
	return value.NewSchema(
		value.Column{Name: "acct", Kind: value.KindString},
		value.Column{Name: "minutes", Kind: value.KindInt},
	)
}

func custSchema() *value.Schema {
	return value.NewSchema(
		value.Column{Name: "acct", Kind: value.KindString},
		value.Column{Name: "state", Kind: value.KindString},
	)
}

// newEngine returns an engine with a deterministic clock.
func newEngine(t testing.TB) (*Engine, *int64) {
	t.Helper()
	now := int64(0)
	e := New(Config{
		DispatchIndexed: true,
		RelationHistory: true,
		Clock:           func() int64 { return now },
	})
	return e, &now
}

func mustCreateCalls(t testing.TB, e *Engine) *chronicle.Chronicle {
	t.Helper()
	c, err := e.CreateChronicle("calls", "telecom", callsSchema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func usageDef(c *chronicle.Chronicle) view.Def {
	return view.Def{
		Name:      "usage",
		Expr:      algebra.NewScan(c),
		Mode:      view.SummarizeGroupBy,
		GroupCols: []int{0},
		Aggs: []aggregate.Spec{
			{Func: aggregate.Sum, Col: 1, Name: "total"},
			{Func: aggregate.Count, Col: -1, Name: "n"},
		},
	}
}

func TestCreateValidation(t *testing.T) {
	e, _ := newEngine(t)
	c := mustCreateCalls(t, e)
	if _, err := e.CreateChronicle("calls", "", callsSchema(), nil); err == nil {
		t.Error("duplicate chronicle accepted")
	}
	if _, err := e.CreateRelation("calls", custSchema(), []int{0}); err == nil {
		t.Error("cross-kind name collision accepted")
	}
	if _, err := e.CreateView(usageDef(c), view.StoreHash, pred.True(), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateView(usageDef(c), view.StoreHash, pred.True(), nil); err == nil {
		t.Error("duplicate view accepted")
	}
	if _, err := e.CreateGroup("telecom"); err == nil {
		t.Error("duplicate group accepted")
	}
	if _, err := e.CreateGroup("newgroup"); err != nil {
		t.Error(err)
	}
}

func TestAppendMaintainsViews(t *testing.T) {
	e, _ := newEngine(t)
	c := mustCreateCalls(t, e)
	v, err := e.CreateView(usageDef(c), view.StoreHash, pred.True(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Append("calls", []value.Tuple{{value.Str("a"), value.Int(10)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Append("calls", []value.Tuple{{value.Str("a"), value.Int(5)}}); err != nil {
		t.Fatal(err)
	}
	got, ok := v.Lookup(value.Tuple{value.Str("a")})
	if !ok || got[1].AsInt() != 15 || got[2].AsInt() != 2 {
		t.Errorf("usage(a) = %v, %v", got, ok)
	}
	st := e.Stats()
	if st.Appends != 2 || st.TuplesAppended != 2 || st.ViewsMaintained != 2 {
		t.Errorf("Stats = %+v", st)
	}
	if _, err := e.Append("nope", nil); err == nil {
		t.Error("append to unknown chronicle accepted")
	}
}

func TestAppendAtAssignsSNAndChronon(t *testing.T) {
	e, _ := newEngine(t)
	retain := chronicle.RetainAll
	c, err := e.CreateChronicle("calls", "telecom", callsSchema(), &retain)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := e.AppendAt("calls", 42, 999, []value.Tuple{{value.Str("a"), value.Int(1)}})
	if err != nil || sn != 42 {
		t.Fatalf("AppendAt = %d, %v", sn, err)
	}
	var got chronicle.Row
	c.Scan(func(r chronicle.Row) bool { got = r; return false })
	if got.SN != 42 || got.Chronon != 999 {
		t.Errorf("row = %+v", got)
	}
	// Next auto append continues after 42.
	sn, err = e.Append("calls", []value.Tuple{{value.Str("a"), value.Int(1)}})
	if err != nil || sn != 43 {
		t.Errorf("next SN = %d, %v", sn, err)
	}
}

func TestAppendBatchSharedSN(t *testing.T) {
	e, _ := newEngine(t)
	mustCreateCalls(t, e)
	if _, err := e.CreateChronicle("payments", "telecom", value.NewSchema(
		value.Column{Name: "acct", Kind: value.KindString},
		value.Column{Name: "amount", Kind: value.KindInt},
	), nil); err != nil {
		t.Fatal(err)
	}
	sn, err := e.AppendBatch([]MutationPart{
		{Chronicle: "calls", Tuples: []value.Tuple{{value.Str("a"), value.Int(1)}}},
		{Chronicle: "payments", Tuples: []value.Tuple{{value.Str("a"), value.Int(9)}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	calls, _ := e.Chronicle("calls")
	pays, _ := e.Chronicle("payments")
	if calls.LastSN() != sn || pays.LastSN() != sn {
		t.Errorf("SNs differ: %d vs %d vs %d", calls.LastSN(), pays.LastSN(), sn)
	}
	if _, err := e.AppendBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := e.AppendBatch([]MutationPart{{Chronicle: "ghost"}}); err == nil {
		t.Error("unknown chronicle in batch accepted")
	}
}

func TestProactiveUpdateSemantics(t *testing.T) {
	// Example 2.2 end to end: the NJ bonus applies per the address at the
	// time of each flight/call.
	e, _ := newEngine(t)
	c := mustCreateCalls(t, e)
	r, err := e.CreateRelation("customers", custSchema(), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	jr, err := algebra.NewJoinRel(algebra.NewScan(c), r, []int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := algebra.NewSelect(jr, pred.Or(pred.ColConst(3, pred.Eq, value.Str("nj"))))
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.CreateView(view.Def{
		Name: "nj_minutes", Expr: sel, Mode: view.SummarizeGroupBy,
		GroupCols: []int{0},
		Aggs:      []aggregate.Spec{{Func: aggregate.Sum, Col: 1, Name: "total"}},
	}, view.StoreHash, pred.True(), nil)
	if err != nil {
		t.Fatal(err)
	}

	e.Upsert("customers", value.Tuple{value.Str("a"), value.Str("nj")})
	e.Append("calls", []value.Tuple{{value.Str("a"), value.Int(10)}}) // counts
	e.Upsert("customers", value.Tuple{value.Str("a"), value.Str("ny")})
	e.Append("calls", []value.Tuple{{value.Str("a"), value.Int(99)}}) // does not count
	e.Upsert("customers", value.Tuple{value.Str("a"), value.Str("nj")})
	e.Append("calls", []value.Tuple{{value.Str("a"), value.Int(7)}}) // counts

	got, ok := v.Lookup(value.Tuple{value.Str("a")})
	if !ok || got[1].AsInt() != 17 {
		t.Errorf("nj_minutes(a) = %v, %v (want 17)", got, ok)
	}
}

func TestRelationOps(t *testing.T) {
	e, _ := newEngine(t)
	if _, err := e.CreateRelation("customers", custSchema(), []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := e.Upsert("customers", value.Tuple{value.Str("a"), value.Str("nj")}); err != nil {
		t.Fatal(err)
	}
	if err := e.Upsert("ghost", value.Tuple{}); err == nil {
		t.Error("upsert to unknown relation accepted")
	}
	deleted, err := e.DeleteKey("customers", value.Tuple{value.Str("a")})
	if err != nil || !deleted {
		t.Errorf("DeleteKey = %v, %v", deleted, err)
	}
	if _, err := e.DeleteKey("ghost", value.Tuple{}); err == nil {
		t.Error("delete from unknown relation accepted")
	}
	if e.Stats().RelationUpdates != 2 {
		t.Errorf("RelationUpdates = %d", e.Stats().RelationUpdates)
	}
}

func TestPeriodicViewThroughEngine(t *testing.T) {
	e, now := newEngine(t)
	c := mustCreateCalls(t, e)
	cal, err := calendar.NewPeriodic(0, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	def := usageDef(c)
	def.Name = "monthly"
	pv, err := e.CreatePeriodicView("monthly", def, cal, -1, view.StoreHash)
	if err != nil {
		t.Fatal(err)
	}
	*now = 50
	e.Append("calls", []value.Tuple{{value.Str("a"), value.Int(3)}})
	*now = 150
	e.Append("calls", []value.Tuple{{value.Str("a"), value.Int(4)}})
	if pv.Live() != 2 {
		t.Fatalf("Live = %d", pv.Live())
	}
	m0, _ := pv.At(calendar.Interval{Start: 0, End: 100})
	if got, _ := m0.Lookup(value.Tuple{value.Str("a")}); got[1].AsInt() != 3 {
		t.Errorf("month 0 = %v", got)
	}
}

func TestDispatchFilterSkipsUnaffectedViews(t *testing.T) {
	e, _ := newEngine(t)
	c := mustCreateCalls(t, e)
	var views []*view.View
	for i := 0; i < 8; i++ {
		acct := fmt.Sprintf("acct%d", i)
		sel, err := algebra.NewSelect(algebra.NewScan(c), pred.Or(pred.ColConst(0, pred.Eq, value.Str(acct))))
		if err != nil {
			t.Fatal(err)
		}
		v, err := e.CreateView(view.Def{
			Name: "bal_" + acct, Expr: sel, Mode: view.SummarizeGroupBy,
			GroupCols: []int{0},
			Aggs:      []aggregate.Spec{{Func: aggregate.Sum, Col: 1, Name: "total"}},
		}, view.StoreHash, pred.Or(pred.ColConst(0, pred.Eq, value.Str(acct))), c)
		if err != nil {
			t.Fatal(err)
		}
		views = append(views, v)
	}
	e.Append("calls", []value.Tuple{{value.Str("acct3"), value.Int(5)}})
	// Only acct3's view was maintained.
	if e.Stats().ViewsMaintained != 1 {
		t.Errorf("ViewsMaintained = %d, want 1", e.Stats().ViewsMaintained)
	}
	if got, ok := views[3].Lookup(value.Tuple{value.Str("acct3")}); !ok || got[1].AsInt() != 5 {
		t.Errorf("bal_acct3 = %v, %v", got, ok)
	}
	if views[0].Len() != 0 {
		t.Error("unrelated view touched")
	}
}

func TestBackfillFromRetainedChronicle(t *testing.T) {
	e, _ := newEngine(t)
	retain := chronicle.RetainAll
	c, err := e.CreateChronicle("history", "", callsSchema(), &retain)
	if err != nil {
		t.Fatal(err)
	}
	e.Append("history", []value.Tuple{{value.Str("a"), value.Int(10)}})
	e.Append("history", []value.Tuple{{value.Str("a"), value.Int(20)}})
	def := usageDef(c)
	def.Name = "late_view"
	v, err := e.CreateView(def, view.StoreHash, pred.True(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := v.Lookup(value.Tuple{value.Str("a")})
	if !ok || got[1].AsInt() != 30 {
		t.Errorf("backfilled view = %v, %v", got, ok)
	}
}

func TestRecorderVetoAbortsMutation(t *testing.T) {
	e, _ := newEngine(t)
	c := mustCreateCalls(t, e)
	v, _ := e.CreateView(usageDef(c), view.StoreHash, pred.True(), nil)
	e.SetRecorder(func(Mutation) error { return fmt.Errorf("disk full") })
	if _, err := e.Append("calls", []value.Tuple{{value.Str("a"), value.Int(1)}}); err == nil {
		t.Fatal("append succeeded despite recorder veto")
	}
	if v.Len() != 0 || c.LastSN() != -1 {
		t.Error("vetoed append left state behind")
	}
	if err := e.Upsert("customers", value.Tuple{}); err == nil {
		t.Error("upsert to unknown relation accepted") // still unknown
	}
	e.SetRecorder(nil)
	if _, err := e.Append("calls", []value.Tuple{{value.Str("a"), value.Int(1)}}); err != nil {
		t.Fatal(err)
	}
}

func TestNamesListing(t *testing.T) {
	e, _ := newEngine(t)
	c := mustCreateCalls(t, e)
	e.CreateRelation("customers", custSchema(), []int{0})
	e.CreateView(usageDef(c), view.StoreHash, pred.True(), nil)
	cal, _ := calendar.NewPeriodic(0, 10, 10)
	def := usageDef(c)
	def.Name = "periodic_usage"
	e.CreatePeriodicView("periodic_usage", def, cal, -1, view.StoreHash)

	if got := e.ChronicleNames(); len(got) != 1 || got[0] != "calls" {
		t.Errorf("ChronicleNames = %v", got)
	}
	if got := e.RelationNames(); len(got) != 1 || got[0] != "customers" {
		t.Errorf("RelationNames = %v", got)
	}
	if got := e.ViewNames(); len(got) != 1 || got[0] != "usage" {
		t.Errorf("ViewNames = %v", got)
	}
	if got := e.PeriodicViewNames(); len(got) != 1 || got[0] != "periodic_usage" {
		t.Errorf("PeriodicViewNames = %v", got)
	}
	if got := e.GroupNames(); len(got) != 1 || got[0] != "telecom" {
		t.Errorf("GroupNames = %v", got)
	}
	if _, ok := e.Group("telecom"); !ok {
		t.Error("Group lookup failed")
	}
	if _, ok := e.PeriodicView("periodic_usage"); !ok {
		t.Error("PeriodicView lookup failed")
	}
}

func TestDropViewEngine(t *testing.T) {
	e, _ := newEngine(t)
	c := mustCreateCalls(t, e)
	if _, err := e.CreateView(usageDef(c), view.StoreHash, pred.True(), nil); err != nil {
		t.Fatal(err)
	}
	if err := e.DropView("usage"); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.View("usage"); ok {
		t.Error("view still present")
	}
	if err := e.DropView("usage"); err == nil {
		t.Error("double drop accepted")
	}
	if err := e.DropView("calls"); err == nil {
		t.Error("dropping a chronicle as a view accepted")
	}
	// Appends no longer maintain it.
	e.Append("calls", []value.Tuple{{value.Str("a"), value.Int(1)}})
	if e.Stats().ViewsMaintained != 0 {
		t.Errorf("ViewsMaintained = %d", e.Stats().ViewsMaintained)
	}
	// Periodic views drop through the same call.
	cal, _ := calendar.NewPeriodic(0, 10, 10)
	def := usageDef(c)
	def.Name = "p"
	if _, err := e.CreatePeriodicView("p", def, cal, -1, view.StoreHash); err != nil {
		t.Fatal(err)
	}
	if err := e.DropView("p"); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.PeriodicView("p"); ok {
		t.Error("periodic view still present")
	}
}

func TestRestoreLSNMonotone(t *testing.T) {
	e, _ := newEngine(t)
	e.RestoreLSN(100)
	if e.LSN() != 100 {
		t.Errorf("LSN = %d", e.LSN())
	}
	e.RestoreLSN(50) // must not regress
	if e.LSN() != 100 {
		t.Errorf("LSN regressed to %d", e.LSN())
	}
	mustCreateCalls(t, e)
	e.Append("calls", []value.Tuple{{value.Str("a"), value.Int(1)}})
	if e.LSN() != 101 {
		t.Errorf("LSN after append = %d", e.LSN())
	}
}

func TestAppendBatchAtReplay(t *testing.T) {
	e, _ := newEngine(t)
	mustCreateCalls(t, e)
	sn, err := e.AppendBatchAt([]MutationPart{
		{Chronicle: "calls", Tuples: []value.Tuple{{value.Str("a"), value.Int(1)}}},
	}, 42, 4200)
	if err != nil || sn != 42 {
		t.Fatalf("AppendBatchAt = %d, %v", sn, err)
	}
	c, _ := e.Chronicle("calls")
	if c.LastSN() != 42 {
		t.Errorf("LastSN = %d", c.LastSN())
	}
}

func TestNumericCoercion(t *testing.T) {
	e, _ := newEngine(t)
	schema := value.NewSchema(
		value.Column{Name: "k", Kind: value.KindString},
		value.Column{Name: "amount", Kind: value.KindFloat},
	)
	retain := chronicle.RetainAll
	c, err := e.CreateChronicle("ledger", "", schema, &retain)
	if err != nil {
		t.Fatal(err)
	}
	// An int literal lands in a float column.
	if _, err := e.Append("ledger", []value.Tuple{{value.Str("a"), value.Int(9)}}); err != nil {
		t.Fatal(err)
	}
	var got chronicle.Row
	c.Scan(func(r chronicle.Row) bool { got = r; return false })
	if got.Vals[1].Kind() != value.KindFloat || got.Vals[1].AsFloat() != 9.0 {
		t.Errorf("coerced value = %v (%s)", got.Vals[1], got.Vals[1].Kind())
	}
	// Relations coerce too.
	if _, err := e.CreateRelation("rates", schema, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := e.Upsert("rates", value.Tuple{value.Str("x"), value.Int(3)}); err != nil {
		t.Fatal(err)
	}
	r, _ := e.Relation("rates")
	rt, _ := r.Get(value.Tuple{value.Str("x")})
	if rt[1].Kind() != value.KindFloat {
		t.Errorf("relation coercion: %s", rt[1].Kind())
	}
	// Incompatible kinds still fail.
	if _, err := e.Append("ledger", []value.Tuple{{value.Str("a"), value.Str("no")}}); err == nil {
		t.Error("string in float column accepted")
	}
	// Batch path coerces as well.
	if _, err := e.AppendBatch([]MutationPart{
		{Chronicle: "ledger", Tuples: []value.Tuple{{value.Str("b"), value.Int(4)}}},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderSeesBatchAndRelationMutations(t *testing.T) {
	e, _ := newEngine(t)
	mustCreateCalls(t, e)
	e.CreateRelation("customers", custSchema(), []int{0})
	var kinds []MutationKind
	e.SetRecorder(func(m Mutation) error {
		kinds = append(kinds, m.Kind)
		return nil
	})
	e.AppendBatch([]MutationPart{
		{Chronicle: "calls", Tuples: []value.Tuple{{value.Str("a"), value.Int(1)}}},
	})
	e.Upsert("customers", value.Tuple{value.Str("a"), value.Str("nj")})
	e.DeleteKey("customers", value.Tuple{value.Str("a")})
	want := []MutationKind{MutAppend, MutUpsert, MutDelete}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("kinds = %v, want %v", kinds, want)
		}
	}
	// A vetoing recorder blocks relation mutations too.
	e.SetRecorder(func(Mutation) error { return fmt.Errorf("no") })
	if err := e.Upsert("customers", value.Tuple{value.Str("b"), value.Str("ny")}); err == nil {
		t.Error("vetoed upsert succeeded")
	}
	if _, err := e.DeleteKey("customers", value.Tuple{value.Str("b")}); err == nil {
		t.Error("vetoed delete succeeded")
	}
	if _, err := e.AppendBatch([]MutationPart{
		{Chronicle: "calls", Tuples: []value.Tuple{{value.Str("a"), value.Int(1)}}},
	}); err == nil {
		t.Error("vetoed batch append succeeded")
	}
}

func TestSerializedReadAccessors(t *testing.T) {
	e, _ := newEngine(t)
	retain := chronicle.RetainAll
	e.CreateChronicle("calls", "telecom", callsSchema(), &retain)
	c, _ := e.Chronicle("calls")
	e.CreateRelation("customers", custSchema(), []int{0})
	e.CreateView(usageDef(c), view.StoreBTree, pred.True(), nil)
	e.Upsert("customers", value.Tuple{value.Str("a"), value.Str("nj")})
	e.Append("calls", []value.Tuple{{value.Str("a"), value.Int(5)}})
	e.Append("calls", []value.Tuple{{value.Str("b"), value.Int(7)}})

	row, ok, err := e.ViewLookup("usage", value.Tuple{value.Str("a")})
	if err != nil || !ok || row[1].AsInt() != 5 {
		t.Errorf("ViewLookup = %v %v %v", row, ok, err)
	}
	if _, _, err := e.ViewLookup("ghost", nil); err == nil {
		t.Error("unknown view lookup accepted")
	}
	rows, err := e.ViewRows("usage")
	if err != nil || len(rows) != 2 {
		t.Errorf("ViewRows = %v %v", rows, err)
	}
	if _, err := e.ViewRows("ghost"); err == nil {
		t.Error("unknown ViewRows accepted")
	}
	ranged, err := e.ViewScanRange("usage", value.Tuple{value.Str("a")}, value.Tuple{value.Str("b")})
	if err != nil || len(ranged) != 1 || ranged[0][0].AsString() != "a" {
		t.Errorf("ViewScanRange = %v %v", ranged, err)
	}
	if _, err := e.ViewScanRange("ghost", nil, nil); err == nil {
		t.Error("unknown ViewScanRange accepted")
	}
	rel, err := e.RelationRows("customers")
	if err != nil || len(rel) != 1 {
		t.Errorf("RelationRows = %v %v", rel, err)
	}
	if _, err := e.RelationRows("ghost"); err == nil {
		t.Error("unknown RelationRows accepted")
	}
	crows, err := e.ChronicleRows("calls")
	if err != nil || len(crows) != 2 {
		t.Errorf("ChronicleRows = %v %v", crows, err)
	}
	if _, err := e.ChronicleRows("ghost"); err == nil {
		t.Error("unknown ChronicleRows accepted")
	}
	lat := e.MaintenanceLatency()
	if lat.Count != 2 {
		t.Errorf("MaintenanceLatency count = %d", lat.Count)
	}
}
