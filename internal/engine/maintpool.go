package engine

import (
	"sync"
	"sync/atomic"

	"chronicledb/internal/chronicle"
	"chronicledb/internal/view"
)

// maintTask is one view's share of a maintenance batch: precomputed
// expression delta rows waiting to be folded into the view.
type maintTask struct {
	v    *view.View
	rows []chronicle.Row
}

// maintPool folds one batch's maintenance tasks across a fixed set of
// helper goroutines. Each task targets a distinct view (the engine dedups
// targets per batch), and ApplyRows on distinct views is independent —
// each view locks only itself — so tasks can run in any order and in
// parallel without changing the materialized result. Ordering that DOES
// matter (batch-vs-batch LSN order per view, feed capture order) is
// preserved structurally: the engine captures feed deltas before hand-off
// and run() blocks until every task of the batch has retired, so batch N+1
// cannot start while any view still folds batch N.
//
// The pool is engineered for the append hot path: workers are persistent
// (spawned once), work distribution is an atomic cursor over a caller-owned
// slice, and wake-up is a token on a pre-allocated channel — a run performs
// zero heap allocations.
type maintPool struct {
	workers int // helper goroutines (total parallelism = workers + caller)
	wake    chan struct{}
	quit    chan struct{}
	wg      sync.WaitGroup // worker lifetimes, for stop()

	// Per-run state. tasks is published to workers by the wake send and
	// reclaimed after active.Wait(), so workers never observe a stale or
	// reused slice. cursor hands out task indexes.
	tasks  []maintTask
	cursor atomic.Int64
	active sync.WaitGroup // woken workers that have not yet retired

	stopOnce sync.Once
}

// newMaintPool starts workers helper goroutines (at least 1).
func newMaintPool(workers int) *maintPool {
	p := &maintPool{
		workers: workers,
		wake:    make(chan struct{}, workers),
		quit:    make(chan struct{}),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *maintPool) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case <-p.wake:
			p.drain()
			// Retire only after drain has finished reading p.tasks: run()
			// waits on active before reclaiming the slice.
			p.active.Done()
		}
	}
}

// drain executes tasks until the shared cursor runs off the end.
func (p *maintPool) drain() {
	n := int64(len(p.tasks))
	for {
		i := p.cursor.Add(1) - 1
		if i >= n {
			return
		}
		t := p.tasks[i]
		t.v.ApplyRows(t.rows)
	}
}

// run folds every task and returns when all are done. The caller owns
// tasks again after return. Not safe for concurrent use (the engine calls
// it under its mutation lock).
func (p *maintPool) run(tasks []maintTask) {
	p.tasks = tasks
	p.cursor.Store(0)
	// Wake at most len(tasks)-1 helpers: the caller participates, so a
	// two-task batch needs exactly one helper.
	k := p.workers
	if m := len(tasks) - 1; k > m {
		k = m
	}
	p.active.Add(k)
	for i := 0; i < k; i++ {
		p.wake <- struct{}{}
	}
	p.drain()
	p.active.Wait()
	p.tasks = nil
}

// stop terminates the workers. Idempotent; must not race a run in flight.
func (p *maintPool) stop() {
	p.stopOnce.Do(func() {
		close(p.quit)
		p.wg.Wait()
	})
}
