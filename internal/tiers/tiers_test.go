package tiers

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// phonePlan is the paper's example: 10% over $10, 20% over $25.
func phonePlan(t testing.TB, mode Mode) *Schedule {
	t.Helper()
	s, err := NewSchedule(mode, Tier{Threshold: 10, Rate: 0.10}, Tier{Threshold: 25, Rate: 0.20})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewScheduleValidation(t *testing.T) {
	if _, err := NewSchedule(AllUnits); err == nil {
		t.Error("empty schedule accepted")
	}
	if _, err := NewSchedule(AllUnits, Tier{Threshold: -1, Rate: 0.1}); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := NewSchedule(AllUnits, Tier{Threshold: 5, Rate: 1.5}); err == nil {
		t.Error("rate > 1 accepted")
	}
	if _, err := NewSchedule(AllUnits, Tier{Threshold: 5, Rate: 0.1}, Tier{Threshold: 5, Rate: 0.2}); err == nil {
		t.Error("duplicate thresholds accepted")
	}
	// Unsorted input is sorted.
	s, err := NewSchedule(AllUnits, Tier{Threshold: 25, Rate: 0.2}, Tier{Threshold: 10, Rate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if s.TierFor(15) != 0 {
		t.Error("schedule not sorted by threshold")
	}
}

func TestModeString(t *testing.T) {
	if AllUnits.String() != "all-units" || Marginal.String() != "marginal" {
		t.Error("Mode strings")
	}
}

func TestTierFor(t *testing.T) {
	s := phonePlan(t, AllUnits)
	for _, tc := range []struct {
		total float64
		want  int
	}{
		{0, -1}, {10, -1}, {10.01, 0}, {25, 0}, {25.01, 1}, {1000, 1},
	} {
		if got := s.TierFor(tc.total); got != tc.want {
			t.Errorf("TierFor(%v) = %d, want %d", tc.total, got, tc.want)
		}
	}
}

func TestAllUnitsDiscount(t *testing.T) {
	s := phonePlan(t, AllUnits)
	for _, tc := range []struct {
		total, want float64
	}{
		{5, 0},
		{10, 0},
		{20, 2.0},   // 10% of all 20
		{30, 6.0},   // 20% of all 30
		{100, 20.0}, // 20% of all 100
	} {
		if got := s.Discount(tc.total); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Discount(%v) = %v, want %v", tc.total, got, tc.want)
		}
	}
}

func TestMarginalDiscount(t *testing.T) {
	s := phonePlan(t, Marginal)
	for _, tc := range []struct {
		total, want float64
	}{
		{5, 0},
		{10, 0},
		{20, 1.0},   // 10% of (20-10)
		{25, 1.5},   // 10% of (25-10)
		{30, 2.5},   // 10% of 15 + 20% of (30-25)
		{100, 16.5}, // 1.5 + 20% of 75
	} {
		if got := s.Discount(tc.total); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Discount(%v) = %v, want %v", tc.total, got, tc.want)
		}
	}
}

func TestMarginalNeverExceedsAllUnits(t *testing.T) {
	all := phonePlan(t, AllUnits)
	marg := phonePlan(t, Marginal)
	f := func(raw uint16) bool {
		total := float64(raw) / 100
		return marg.Discount(total) <= all.Discount(total)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTrackerMatchesBatchAtEveryPrefix is Section 5.3's equivalence: the
// incremental tracker agrees with the batch computation after every single
// record, not just at period end.
func TestTrackerMatchesBatchAtEveryPrefix(t *testing.T) {
	for _, mode := range []Mode{AllUnits, Marginal} {
		s := phonePlan(t, mode)
		tr := NewTracker(s)
		rng := rand.New(rand.NewSource(int64(mode)))
		var amounts []float64
		for i := 0; i < 500; i++ {
			a := float64(rng.Intn(500)) / 100
			amounts = append(amounts, a)
			got := tr.Add("k", a)
			want := BatchCompute(s, amounts)
			if math.Abs(got.Total-want.Total) > 1e-9 ||
				math.Abs(got.Discount-want.Discount) > 1e-9 ||
				math.Abs(got.Net-want.Net) > 1e-9 ||
				got.Tier != want.Tier || got.Records != want.Records {
				t.Fatalf("%s: prefix %d: incremental %+v != batch %+v", mode, i+1, got, want)
			}
		}
	}
}

func TestTrackerPerKeyIsolation(t *testing.T) {
	s := phonePlan(t, AllUnits)
	tr := NewTracker(s)
	tr.Add("a", 20)
	tr.Add("b", 5)
	if got := tr.Current("a"); got.Tier != 0 {
		t.Errorf("a tier = %d", got.Tier)
	}
	if got := tr.Current("b"); got.Tier != -1 {
		t.Errorf("b tier = %d", got.Tier)
	}
	if got := tr.Current("missing"); got.Tier != -1 || got.Records != 0 {
		t.Errorf("missing = %+v", got)
	}
	if tr.Keys() != 2 {
		t.Errorf("Keys = %d", tr.Keys())
	}
}

func TestCrossings(t *testing.T) {
	s := phonePlan(t, AllUnits)
	tr := NewTracker(s)
	tr.Add("k", 8)  // below tiers
	tr.Add("k", 8)  // total 16: crosses into tier 0
	tr.Add("k", 5)  // total 21: stays
	tr.Add("k", 10) // total 31: crosses into tier 1
	if len(tr.Crossings) != 2 {
		t.Fatalf("Crossings = %+v", tr.Crossings)
	}
	if tr.Crossings[0].FromTier != -1 || tr.Crossings[0].ToTier != 0 {
		t.Errorf("first crossing = %+v", tr.Crossings[0])
	}
	if tr.Crossings[1].FromTier != 0 || tr.Crossings[1].ToTier != 1 {
		t.Errorf("second crossing = %+v", tr.Crossings[1])
	}
}

func TestReset(t *testing.T) {
	s := phonePlan(t, AllUnits)
	tr := NewTracker(s)
	tr.Add("k", 50)
	tr.Reset()
	if tr.Keys() != 0 || len(tr.Crossings) != 0 {
		t.Error("Reset incomplete")
	}
	if got := tr.Current("k"); got.Total != 0 {
		t.Errorf("after reset: %+v", got)
	}
}
