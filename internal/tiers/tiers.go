// Package tiers implements Section 5.3 of the chronicle paper: converting
// batch, end-of-period computations — tiered discount and fee schedules —
// into equivalent incremental computations on individual records.
//
// The motivating plan: "a discount of 10% on all calls made if the monthly
// undiscounted expenses exceed $10, a discount of 20% if the expenses
// exceed $25, and so on." Computed in batch at period end, the result is
// stale all month; computed incrementally, the persistent total_expenses
// view (and the discount derived from it) is current after every call.
package tiers

import (
	"fmt"
	"sort"
)

// Mode selects how tier rates apply.
type Mode uint8

const (
	// AllUnits applies the reached tier's rate to the entire total — the
	// paper's telephone plan ("10% on all calls made if … exceed $10").
	AllUnits Mode = iota
	// Marginal applies each tier's rate only to the portion of the total
	// falling inside that tier (tax-bracket style).
	Marginal
)

// String names the mode.
func (m Mode) String() string {
	if m == AllUnits {
		return "all-units"
	}
	return "marginal"
}

// Tier is one step of a schedule: the rate applies beyond Threshold.
type Tier struct {
	Threshold float64 // exclusive lower bound on the cumulative total
	Rate      float64 // discount rate, 0..1
}

// Schedule is an ordered tier list with an application mode.
type Schedule struct {
	mode  Mode
	tiers []Tier // ascending thresholds; implicit base tier (0 rate) below
}

// NewSchedule validates and builds a schedule. Thresholds must be
// non-negative and strictly increasing; rates must lie in [0, 1].
func NewSchedule(mode Mode, tiers ...Tier) (*Schedule, error) {
	if len(tiers) == 0 {
		return nil, fmt.Errorf("tiers: schedule needs at least one tier")
	}
	sorted := append([]Tier(nil), tiers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Threshold < sorted[j].Threshold })
	prev := -1.0
	for _, tr := range sorted {
		if tr.Threshold < 0 {
			return nil, fmt.Errorf("tiers: negative threshold %v", tr.Threshold)
		}
		if tr.Threshold == prev {
			return nil, fmt.Errorf("tiers: duplicate threshold %v", tr.Threshold)
		}
		if tr.Rate < 0 || tr.Rate > 1 {
			return nil, fmt.Errorf("tiers: rate %v outside [0,1]", tr.Rate)
		}
		prev = tr.Threshold
	}
	return &Schedule{mode: mode, tiers: sorted}, nil
}

// Mode returns the schedule's application mode.
func (s *Schedule) Mode() Mode { return s.mode }

// TierFor returns the index of the tier reached by the given total
// (-1 when below every threshold).
func (s *Schedule) TierFor(total float64) int {
	idx := -1
	for i, tr := range s.tiers {
		if total > tr.Threshold {
			idx = i
		}
	}
	return idx
}

// Discount computes the discount amount owed for a cumulative total.
func (s *Schedule) Discount(total float64) float64 {
	switch s.mode {
	case AllUnits:
		if i := s.TierFor(total); i >= 0 {
			return total * s.tiers[i].Rate
		}
		return 0
	default: // Marginal
		var d float64
		for i, tr := range s.tiers {
			if total <= tr.Threshold {
				break
			}
			upper := total
			if i+1 < len(s.tiers) && s.tiers[i+1].Threshold < total {
				upper = s.tiers[i+1].Threshold
			}
			d += (upper - tr.Threshold) * tr.Rate
		}
		return d
	}
}

// Summary is the always-current answer for one key: the paper's summary
// fields, derived from the persistent total rather than from the records.
type Summary struct {
	Total    float64 // cumulative undiscounted expenses
	Discount float64 // discount owed at the current total
	Net      float64 // Total − Discount
	Tier     int     // reached tier index; -1 below all thresholds
	Records  int64   // transactions folded in
}

// Tracker maintains per-key summaries incrementally: O(#tiers) per record,
// independent of how many records the period has seen.
type Tracker struct {
	sched *Schedule
	byKey map[string]*Summary
	// Crossings records tier transitions as they happen — exactly the
	// events a batch system cannot produce until period end.
	Crossings []Crossing
}

// Crossing is one observed tier transition.
type Crossing struct {
	Key      string
	FromTier int
	ToTier   int
	AtTotal  float64
}

// NewTracker creates an empty tracker over a schedule.
func NewTracker(sched *Schedule) *Tracker {
	return &Tracker{sched: sched, byKey: make(map[string]*Summary)}
}

// Add folds one transaction amount into key's running summary and returns
// the updated summary.
func (t *Tracker) Add(key string, amount float64) Summary {
	s, ok := t.byKey[key]
	if !ok {
		s = &Summary{Tier: -1}
		t.byKey[key] = s
	}
	before := s.Tier
	s.Total += amount
	s.Records++
	s.Tier = t.sched.TierFor(s.Total)
	s.Discount = t.sched.Discount(s.Total)
	s.Net = s.Total - s.Discount
	if s.Tier != before {
		t.Crossings = append(t.Crossings, Crossing{Key: key, FromTier: before, ToTier: s.Tier, AtTotal: s.Total})
	}
	return *s
}

// Current returns key's summary (zero Summary with Tier −1 if unseen).
func (t *Tracker) Current(key string) Summary {
	if s, ok := t.byKey[key]; ok {
		return *s
	}
	return Summary{Tier: -1}
}

// Keys returns the number of tracked keys.
func (t *Tracker) Keys() int { return len(t.byKey) }

// Reset clears all summaries (a new billing period).
func (t *Tracker) Reset() {
	t.byKey = make(map[string]*Summary)
	t.Crossings = nil
}

// BatchCompute is the end-of-period batch computation the tracker replaces:
// it folds a full record slice at once. Tests assert Tracker ≡ BatchCompute
// at every prefix; benchmarks measure the staleness/latency gap.
func BatchCompute(sched *Schedule, amounts []float64) Summary {
	var total float64
	for _, a := range amounts {
		total += a
	}
	return Summary{
		Total:    total,
		Discount: sched.Discount(total),
		Net:      total - sched.Discount(total),
		Tier:     sched.TierFor(total),
		Records:  int64(len(amounts)),
	}
}
