package aggregate

import (
	"math"
	"testing"
	"testing/quick"

	"chronicledb/internal/value"
)

func stepAll(f Func, vals ...value.Value) State {
	s := NewState(f)
	for _, v := range vals {
		s.Step(v)
	}
	return s
}

func TestFuncStringAndParse(t *testing.T) {
	for _, f := range []Func{Count, Sum, Min, Max, Avg, First, Last} {
		got, ok := FuncOf(f.String())
		if !ok || got != f {
			t.Errorf("FuncOf(%s) = %v, %v", f, got, ok)
		}
	}
	if _, ok := FuncOf("MEDIAN"); ok {
		t.Error("MEDIAN should not parse")
	}
	if Func(99).String() != "func(99)" {
		t.Error("unknown func rendering")
	}
}

func TestCount(t *testing.T) {
	s := stepAll(Count, value.Int(1), value.Str("x"), value.Null())
	if got := s.Result(); got.AsInt() != 3 {
		t.Errorf("COUNT = %v, want 3 (COUNT counts nulls too when stepped)", got)
	}
}

func TestSumInt(t *testing.T) {
	s := stepAll(Sum, value.Int(2), value.Int(3), value.Null(), value.Int(-1))
	if got := s.Result(); got.Kind() != value.KindInt || got.AsInt() != 4 {
		t.Errorf("SUM = %v", got)
	}
}

func TestSumFloatPromotion(t *testing.T) {
	s := stepAll(Sum, value.Int(2), value.Float(0.5))
	if got := s.Result(); got.Kind() != value.KindFloat || got.AsFloat() != 2.5 {
		t.Errorf("SUM = %v", got)
	}
	// float first, then int
	s = stepAll(Sum, value.Float(1.5), value.Int(2))
	if got := s.Result(); got.AsFloat() != 3.5 {
		t.Errorf("SUM = %v", got)
	}
}

func TestSumEmptyIsNull(t *testing.T) {
	if !NewState(Sum).Result().IsNull() {
		t.Error("empty SUM should be null")
	}
	if !stepAll(Sum, value.Null()).Result().IsNull() {
		t.Error("all-null SUM should be null")
	}
}

func TestMinMax(t *testing.T) {
	s := stepAll(Min, value.Int(5), value.Int(2), value.Int(9), value.Null())
	if got := s.Result(); got.AsInt() != 2 {
		t.Errorf("MIN = %v", got)
	}
	s = stepAll(Max, value.Int(5), value.Int(2), value.Int(9))
	if got := s.Result(); got.AsInt() != 9 {
		t.Errorf("MAX = %v", got)
	}
	if !NewState(Min).Result().IsNull() {
		t.Error("empty MIN should be null")
	}
	s = stepAll(Min, value.Str("pear"), value.Str("apple"))
	if got := s.Result(); got.AsString() != "apple" {
		t.Errorf("string MIN = %v", got)
	}
}

func TestAvg(t *testing.T) {
	s := stepAll(Avg, value.Int(1), value.Int(2), value.Int(3), value.Null())
	if got := s.Result(); got.Kind() != value.KindFloat || got.AsFloat() != 2.0 {
		t.Errorf("AVG = %v", got)
	}
	if !NewState(Avg).Result().IsNull() {
		t.Error("empty AVG should be null")
	}
}

func TestFirstLast(t *testing.T) {
	s := stepAll(First, value.Null(), value.Int(7), value.Int(8))
	if got := s.Result(); got.AsInt() != 7 {
		t.Errorf("FIRST = %v", got)
	}
	s = stepAll(Last, value.Int(7), value.Int(8), value.Null())
	if got := s.Result(); got.AsInt() != 8 {
		t.Errorf("LAST = %v (null must not overwrite)", got)
	}
	if !NewState(First).Result().IsNull() || !NewState(Last).Result().IsNull() {
		t.Error("empty FIRST/LAST should be null")
	}
}

// TestMergeDecomposition is the paper's decomposability requirement: for
// every function, stepping a stream must equal stepping a prefix and a
// suffix separately and merging.
func TestMergeDecomposition(t *testing.T) {
	stream := []value.Value{
		value.Int(3), value.Int(-1), value.Float(2.5), value.Int(10),
		value.Null(), value.Int(7), value.Float(-0.5),
	}
	for _, f := range []Func{Count, Sum, Min, Max, Avg, First, Last} {
		for split := 0; split <= len(stream); split++ {
			whole := NewState(f)
			for _, v := range stream {
				whole.Step(v)
			}
			left, right := NewState(f), NewState(f)
			for _, v := range stream[:split] {
				left.Step(v)
			}
			for _, v := range stream[split:] {
				right.Step(v)
			}
			left.Merge(right)
			if !value.Equal(whole.Result(), left.Result()) {
				t.Errorf("%s split %d: whole %v != merged %v", f, split, whole.Result(), left.Result())
			}
		}
	}
}

func TestMergeDecompositionQuick(t *testing.T) {
	f := func(prefix, suffix []int32) bool {
		for _, fn := range []Func{Count, Sum, Min, Max, Avg} {
			whole, left, right := NewState(fn), NewState(fn), NewState(fn)
			for _, v := range prefix {
				whole.Step(value.Int(int64(v)))
				left.Step(value.Int(int64(v)))
			}
			for _, v := range suffix {
				whole.Step(value.Int(int64(v)))
				right.Step(value.Int(int64(v)))
			}
			left.Merge(right)
			if !value.Equal(whole.Result(), left.Result()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClone(t *testing.T) {
	for _, f := range []Func{Count, Sum, Min, Max, Avg, First, Last} {
		s := stepAll(f, value.Int(5), value.Int(1))
		before := s.Result()
		c := s.Clone()
		// Mutate the clone heavily; the original must be unaffected.
		c.Step(value.Int(100))
		c.Step(value.Int(-100))
		if !value.Equal(s.Result(), before) {
			t.Errorf("%s: mutating clone changed original: %v -> %v", f, before, s.Result())
		}
		// And the clone must actually have absorbed the steps (COUNT shows
		// it most directly; for the rest, compare against a fresh replay).
		replay := stepAll(f, value.Int(5), value.Int(1), value.Int(100), value.Int(-100))
		if !value.Equal(c.Result(), replay.Result()) {
			t.Errorf("%s: clone result %v, want %v", f, c.Result(), replay.Result())
		}
	}
}

func TestSpecResultKind(t *testing.T) {
	for _, tc := range []struct {
		spec Spec
		in   value.Kind
		want value.Kind
	}{
		{Spec{Func: Count}, value.KindString, value.KindInt},
		{Spec{Func: Avg}, value.KindInt, value.KindFloat},
		{Spec{Func: Sum}, value.KindInt, value.KindInt},
		{Spec{Func: Sum}, value.KindFloat, value.KindFloat},
		{Spec{Func: Min}, value.KindString, value.KindString},
		{Spec{Func: Last}, value.KindTime, value.KindTime},
	} {
		if got := tc.spec.ResultKind(tc.in); got != tc.want {
			t.Errorf("%s ResultKind(%s) = %s, want %s", tc.spec.Func, tc.in, got, tc.want)
		}
	}
}

func TestSpecString(t *testing.T) {
	schema := value.NewSchema(value.Column{Name: "amount", Kind: value.KindFloat})
	s := Spec{Func: Sum, Col: 0, Name: "total"}
	if got := s.String(schema); got != "SUM(amount) AS total" {
		t.Errorf("String = %q", got)
	}
	star := Spec{Func: Count, Col: -1, Name: "n"}
	if got := star.String(schema); got != "COUNT(*) AS n" {
		t.Errorf("String = %q", got)
	}
}

func TestApplyAndResults(t *testing.T) {
	specs := []Spec{
		{Func: Count, Col: -1, Name: "n"},
		{Func: Sum, Col: 1, Name: "total"},
		{Func: Max, Col: 1, Name: "biggest"},
	}
	states := NewStates(specs)
	rows := []value.Tuple{
		{value.Str("a"), value.Int(10)},
		{value.Str("a"), value.Int(30)},
		{value.Str("a"), value.Int(20)},
	}
	for _, r := range rows {
		Apply(states, specs, r)
	}
	got := Results(states)
	want := value.Tuple{value.Int(3), value.Int(60), value.Int(30)}
	if !value.TuplesEqual(got, want) {
		t.Errorf("Results = %v, want %v", got, want)
	}
}

func TestCloneStates(t *testing.T) {
	specs := []Spec{{Func: Sum, Col: 0, Name: "s"}}
	states := NewStates(specs)
	Apply(states, specs, value.Tuple{value.Int(5)})
	copies := CloneStates(states)
	Apply(states, specs, value.Tuple{value.Int(7)})
	if copies[0].Result().AsInt() != 5 {
		t.Errorf("CloneStates aliases original: %v", copies[0].Result())
	}
}

func TestEncodeDecodeStateRoundTrip(t *testing.T) {
	streams := [][]value.Value{
		{},
		{value.Int(5)},
		{value.Int(5), value.Float(2.5), value.Int(-3)},
		{value.Str("m"), value.Str("a")},
		{value.Null()},
	}
	for _, f := range []Func{Count, Sum, Min, Max, Avg, First, Last} {
		for _, stream := range streams {
			if (f == Sum || f == Avg) && len(stream) > 0 && stream[0].Kind() == value.KindString {
				continue // numeric aggregates over strings are rejected upstream
			}
			s := NewState(f)
			for _, v := range stream {
				s.Step(v)
			}
			enc := AppendState(nil, f, s)
			got, n, err := DecodeState(f, enc)
			if err != nil {
				t.Fatalf("%s: decode: %v", f, err)
			}
			if n != len(enc) {
				t.Errorf("%s: consumed %d of %d", f, n, len(enc))
			}
			if !value.Equal(got.Result(), s.Result()) {
				t.Errorf("%s: round trip %v -> %v", f, s.Result(), got.Result())
			}
			// Decoded state must keep working incrementally.
			got.Step(value.Int(1))
			s.Step(value.Int(1))
			if !value.Equal(got.Result(), s.Result()) {
				t.Errorf("%s: decoded state diverges after Step: %v vs %v", f, got.Result(), s.Result())
			}
		}
	}
}

func TestDecodeStateErrors(t *testing.T) {
	for _, f := range []Func{Count, Sum, Min, Max, Avg, First, Last} {
		if _, _, err := DecodeState(f, nil); err == nil {
			t.Errorf("%s: expected error on empty buffer", f)
		}
	}
	if _, _, err := DecodeState(Func(77), []byte{1, 2, 3}); err == nil {
		t.Error("unknown func should error")
	}
}

func TestSumLargeIntExact(t *testing.T) {
	// Integer sums must stay exact where float64 would lose precision.
	s := NewState(Sum)
	big := int64(1) << 60
	s.Step(value.Int(big))
	s.Step(value.Int(1))
	if got := s.Result().AsInt(); got != big+1 {
		t.Errorf("SUM = %d, want %d", got, big+1)
	}
	if float64(big)+1 != float64(big) {
		// sanity: this is exactly the precision float64 loses
		t.Skip("platform float64 unexpectedly exact")
	}
}

func TestAvgOfFloats(t *testing.T) {
	s := stepAll(Avg, value.Float(1.0), value.Float(2.0))
	if got := s.Result().AsFloat(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("AVG = %v", got)
	}
}

func TestVarAndStddev(t *testing.T) {
	vals := []value.Value{value.Int(2), value.Int(4), value.Int(4), value.Int(4), value.Int(5), value.Int(5), value.Int(7), value.Int(9)}
	v := NewState(Var)
	sd := NewState(Stddev)
	for _, x := range vals {
		v.Step(x)
		sd.Step(x)
	}
	if got := v.Result().AsFloat(); math.Abs(got-4.0) > 1e-9 {
		t.Errorf("VAR = %v, want 4", got)
	}
	if got := sd.Result().AsFloat(); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("STDDEV = %v, want 2", got)
	}
	if !NewState(Var).Result().IsNull() {
		t.Error("empty VAR should be null")
	}
	// Nulls skipped.
	s := stepAll(Var, value.Null(), value.Int(3), value.Int(3))
	if got := s.Result().AsFloat(); got != 0 {
		t.Errorf("constant VAR = %v, want 0", got)
	}
}

func TestVarDecomposition(t *testing.T) {
	stream := []value.Value{value.Int(1), value.Float(2.5), value.Int(-4), value.Int(10), value.Float(0.25)}
	for _, f := range []Func{Var, Stddev} {
		for split := 0; split <= len(stream); split++ {
			whole, left, right := NewState(f), NewState(f), NewState(f)
			for _, v := range stream {
				whole.Step(v)
			}
			for _, v := range stream[:split] {
				left.Step(v)
			}
			for _, v := range stream[split:] {
				right.Step(v)
			}
			left.Merge(right)
			if math.Abs(whole.Result().AsFloat()-left.Result().AsFloat()) > 1e-9 {
				t.Errorf("%s split %d: %v != %v", f, split, whole.Result(), left.Result())
			}
		}
	}
}

func TestVarEncodeRoundTrip(t *testing.T) {
	for _, f := range []Func{Var, Stddev} {
		s := stepAll(f, value.Int(1), value.Int(5), value.Int(9))
		enc := AppendState(nil, f, s)
		got, n, err := DecodeState(f, enc)
		if err != nil || n != len(enc) {
			t.Fatalf("%s: decode %v n=%d", f, err, n)
		}
		if !value.Equal(got.Result(), s.Result()) {
			t.Errorf("%s: %v != %v", f, got.Result(), s.Result())
		}
		got.Step(value.Int(2))
		s.Step(value.Int(2))
		if !value.Equal(got.Result(), s.Result()) {
			t.Errorf("%s: diverged after Step", f)
		}
	}
	if _, _, err := DecodeState(Var, []byte{1, 2}); err == nil {
		t.Error("truncated moment state accepted")
	}
}
