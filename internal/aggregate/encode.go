package aggregate

import (
	"encoding/binary"
	"fmt"
	"math"

	"chronicledb/internal/value"
)

// Binary serialization of aggregation states, used by view checkpoints:
// since chronicles are not retained, a view's aggregate states are the only
// durable record of past activity and must round-trip exactly.

// AppendState appends the encoding of s (which must be a state produced by
// NewState(f)) to dst.
func AppendState(dst []byte, f Func, s State) []byte {
	switch st := s.(type) {
	case *countState:
		return binary.LittleEndian.AppendUint64(dst, uint64(st.n))
	case *sumState:
		dst = append(dst, encodeBool(st.isFloat), encodeBool(st.seen))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(st.i))
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(st.f))
	case *minState:
		return appendSeenValue(dst, st.seen, st.v)
	case *maxState:
		return appendSeenValue(dst, st.seen, st.v)
	case *avgState:
		dst = append(dst, encodeBool(st.sum.isFloat), encodeBool(st.sum.seen))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(st.sum.i))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(st.sum.f))
		return binary.LittleEndian.AppendUint64(dst, uint64(st.n))
	case *firstState:
		return appendSeenValue(dst, st.seen, st.v)
	case *lastState:
		return appendSeenValue(dst, st.seen, st.v)
	case *momentState:
		dst = append(dst, encodeBool(st.sqrt))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(st.n))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(st.sum))
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(st.sumSq))
	default:
		panic(fmt.Sprintf("aggregate: cannot encode state %T for %v", s, f))
	}
}

// DecodeState decodes one state for function f from the front of b,
// returning the state and bytes consumed.
func DecodeState(f Func, b []byte) (State, int, error) {
	switch f {
	case Count:
		if len(b) < 8 {
			return nil, 0, fmt.Errorf("aggregate: truncated count state")
		}
		return &countState{n: int64(binary.LittleEndian.Uint64(b))}, 8, nil
	case Sum:
		if len(b) < 18 {
			return nil, 0, fmt.Errorf("aggregate: truncated sum state")
		}
		return &sumState{
			isFloat: b[0] != 0,
			seen:    b[1] != 0,
			i:       int64(binary.LittleEndian.Uint64(b[2:])),
			f:       math.Float64frombits(binary.LittleEndian.Uint64(b[10:])),
		}, 18, nil
	case Min:
		seen, v, n, err := decodeSeenValue(b)
		if err != nil {
			return nil, 0, err
		}
		return &minState{seen: seen, v: v}, n, nil
	case Max:
		seen, v, n, err := decodeSeenValue(b)
		if err != nil {
			return nil, 0, err
		}
		return &maxState{seen: seen, v: v}, n, nil
	case Avg:
		if len(b) < 26 {
			return nil, 0, fmt.Errorf("aggregate: truncated avg state")
		}
		return &avgState{
			sum: sumState{
				isFloat: b[0] != 0,
				seen:    b[1] != 0,
				i:       int64(binary.LittleEndian.Uint64(b[2:])),
				f:       math.Float64frombits(binary.LittleEndian.Uint64(b[10:])),
			},
			n: int64(binary.LittleEndian.Uint64(b[18:])),
		}, 26, nil
	case First:
		seen, v, n, err := decodeSeenValue(b)
		if err != nil {
			return nil, 0, err
		}
		return &firstState{seen: seen, v: v}, n, nil
	case Last:
		seen, v, n, err := decodeSeenValue(b)
		if err != nil {
			return nil, 0, err
		}
		return &lastState{seen: seen, v: v}, n, nil
	case Var, Stddev:
		if len(b) < 25 {
			return nil, 0, fmt.Errorf("aggregate: truncated moment state")
		}
		return &momentState{
			sqrt:  b[0] != 0,
			n:     int64(binary.LittleEndian.Uint64(b[1:])),
			sum:   math.Float64frombits(binary.LittleEndian.Uint64(b[9:])),
			sumSq: math.Float64frombits(binary.LittleEndian.Uint64(b[17:])),
		}, 25, nil
	default:
		return nil, 0, fmt.Errorf("aggregate: unknown function %d", f)
	}
}

func encodeBool(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func appendSeenValue(dst []byte, seen bool, v value.Value) []byte {
	dst = append(dst, encodeBool(seen))
	return value.AppendValue(dst, v)
}

func decodeSeenValue(b []byte) (bool, value.Value, int, error) {
	if len(b) < 1 {
		return false, value.Null(), 0, fmt.Errorf("aggregate: truncated state header")
	}
	seen := b[0] != 0
	v, n, err := value.DecodeValue(b[1:])
	if err != nil {
		return false, value.Null(), 0, err
	}
	return seen, v, 1 + n, nil
}
