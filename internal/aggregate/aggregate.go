// Package aggregate implements the incrementally computable aggregation
// functions of the chronicle paper.
//
// The paper (Preliminaries) considers aggregation functions that "can be
// computed in time O(n) over a group of size n, and can be computed
// incrementally in time O(1) over an increment of size 1", naming MIN, MAX,
// SUM and COUNT, and functions "decomposable into incremental computation
// functions" (AVG = SUM/COUNT). Because chronicles are insert-only, MIN and
// MAX are incrementally maintainable without keeping group members.
package aggregate

import (
	"fmt"
	"math"

	"chronicledb/internal/value"
)

// Func identifies an aggregation function.
type Func uint8

// The supported aggregation functions.
const (
	Count Func = iota
	Sum
	Min
	Max
	Avg
	First
	Last
	Var
	Stddev
)

// String returns the SQL spelling of the function.
func (f Func) String() string {
	switch f {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Avg:
		return "AVG"
	case First:
		return "FIRST"
	case Last:
		return "LAST"
	case Var:
		return "VAR"
	case Stddev:
		return "STDDEV"
	default:
		return fmt.Sprintf("func(%d)", uint8(f))
	}
}

// FuncOf parses an aggregation function name.
func FuncOf(name string) (Func, bool) {
	switch name {
	case "COUNT", "count":
		return Count, true
	case "SUM", "sum":
		return Sum, true
	case "MIN", "min":
		return Min, true
	case "MAX", "max":
		return Max, true
	case "AVG", "avg":
		return Avg, true
	case "FIRST", "first":
		return First, true
	case "LAST", "last":
		return Last, true
	case "VAR", "var", "VARIANCE", "variance":
		return Var, true
	case "STDDEV", "stddev":
		return Stddev, true
	default:
		return Count, false
	}
}

// Spec binds an aggregation function to an input column and an output name.
// COUNT ignores its column (use any index; conventionally 0, or -1 to count
// tuples regardless of arity).
type Spec struct {
	Func Func
	Col  int
	Name string
}

// ResultKind returns the value kind the aggregate produces given the kind
// of its input column.
func (s Spec) ResultKind(in value.Kind) value.Kind {
	switch s.Func {
	case Count:
		return value.KindInt
	case Avg, Var, Stddev:
		return value.KindFloat
	case Sum:
		if in == value.KindFloat {
			return value.KindFloat
		}
		return value.KindInt
	default:
		return in
	}
}

// String renders the spec as "FUNC(col) AS name" using the given schema.
func (s Spec) String(schema *value.Schema) string {
	col := fmt.Sprintf("$%d", s.Col)
	if s.Func == Count && s.Col < 0 {
		col = "*"
	} else if schema != nil && s.Col >= 0 && s.Col < schema.Len() {
		col = schema.Col(s.Col).Name
	}
	return fmt.Sprintf("%s(%s) AS %s", s.Func, col, s.Name)
}

// State is the per-group running state of one aggregation function. Step
// folds in one input value in O(1); Merge folds in another state (the
// "decomposable" requirement); Result extracts the current aggregate.
type State interface {
	Step(v value.Value)
	Merge(o State)
	Result() value.Value
	Clone() State
}

// NewState returns a fresh state for the function.
func NewState(f Func) State {
	switch f {
	case Count:
		return &countState{}
	case Sum:
		return &sumState{}
	case Min:
		return &minState{}
	case Max:
		return &maxState{}
	case Avg:
		return &avgState{}
	case First:
		return &firstState{}
	case Last:
		return &lastState{}
	case Var:
		return &momentState{}
	case Stddev:
		return &momentState{sqrt: true}
	default:
		panic(fmt.Sprintf("aggregate: unknown function %d", f))
	}
}

// NewStates returns fresh states for each spec.
func NewStates(specs []Spec) []State {
	out := make([]State, len(specs))
	for i, s := range specs {
		out[i] = NewState(s.Func)
	}
	return out
}

type countState struct{ n int64 }

func (s *countState) Step(value.Value)    { s.n++ }
func (s *countState) Merge(o State)       { s.n += o.(*countState).n }
func (s *countState) Result() value.Value { return value.Int(s.n) }
func (s *countState) Clone() State        { c := *s; return &c }

// sumState accumulates integers exactly and switches to float arithmetic
// as soon as any float input is seen.
type sumState struct {
	i       int64
	f       float64
	isFloat bool
	seen    bool
}

func (s *sumState) Step(v value.Value) {
	if v.IsNull() {
		return
	}
	s.seen = true
	if v.Kind() == value.KindFloat {
		if !s.isFloat {
			s.f = float64(s.i)
			s.isFloat = true
		}
		s.f += v.AsFloat()
		return
	}
	if s.isFloat {
		s.f += v.AsFloat()
		return
	}
	s.i += v.AsInt()
}

func (s *sumState) Merge(o State) {
	os := o.(*sumState)
	if !os.seen {
		return
	}
	s.seen = true
	if os.isFloat || s.isFloat {
		if !s.isFloat {
			s.f = float64(s.i)
			s.isFloat = true
		}
		if os.isFloat {
			s.f += os.f
		} else {
			s.f += float64(os.i)
		}
		return
	}
	s.i += os.i
}

func (s *sumState) Result() value.Value {
	if !s.seen {
		return value.Null()
	}
	if s.isFloat {
		return value.Float(s.f)
	}
	return value.Int(s.i)
}

func (s *sumState) Clone() State { c := *s; return &c }

type minState struct {
	v    value.Value
	seen bool
}

func (s *minState) Step(v value.Value) {
	if v.IsNull() {
		return
	}
	if !s.seen || value.Compare(v, s.v) < 0 {
		s.v = v
		s.seen = true
	}
}

func (s *minState) Merge(o State) {
	os := o.(*minState)
	if os.seen {
		s.Step(os.v)
	}
}

func (s *minState) Result() value.Value {
	if !s.seen {
		return value.Null()
	}
	return s.v
}

func (s *minState) Clone() State { c := *s; return &c }

type maxState struct {
	v    value.Value
	seen bool
}

func (s *maxState) Step(v value.Value) {
	if v.IsNull() {
		return
	}
	if !s.seen || value.Compare(v, s.v) > 0 {
		s.v = v
		s.seen = true
	}
}

func (s *maxState) Merge(o State) {
	os := o.(*maxState)
	if os.seen {
		s.Step(os.v)
	}
}

func (s *maxState) Result() value.Value {
	if !s.seen {
		return value.Null()
	}
	return s.v
}

func (s *maxState) Clone() State { c := *s; return &c }

// avgState demonstrates the paper's decomposition requirement: AVG is not
// itself incrementally computable from its own results, but decomposes into
// SUM and COUNT, which are.
type avgState struct {
	sum sumState
	n   int64
}

func (s *avgState) Step(v value.Value) {
	if v.IsNull() {
		return
	}
	s.sum.Step(v)
	s.n++
}

func (s *avgState) Merge(o State) {
	os := o.(*avgState)
	s.sum.Merge(&os.sum)
	s.n += os.n
}

func (s *avgState) Result() value.Value {
	if s.n == 0 {
		return value.Null()
	}
	return value.Float(s.sum.Result().AsFloat() / float64(s.n))
}

func (s *avgState) Clone() State { c := *s; return &c }

// firstState keeps the first non-null value stepped. Because chronicle
// deltas arrive in sequence order, this is the earliest value in the group.
type firstState struct {
	v    value.Value
	seen bool
}

func (s *firstState) Step(v value.Value) {
	if s.seen || v.IsNull() {
		return
	}
	s.v = v
	s.seen = true
}

func (s *firstState) Merge(o State) {
	// The receiver precedes o in sequence order, so it wins if set.
	os := o.(*firstState)
	if !s.seen && os.seen {
		s.v, s.seen = os.v, true
	}
}

func (s *firstState) Result() value.Value {
	if !s.seen {
		return value.Null()
	}
	return s.v
}

func (s *firstState) Clone() State { c := *s; return &c }

// lastState keeps the most recent non-null value stepped.
type lastState struct {
	v    value.Value
	seen bool
}

func (s *lastState) Step(v value.Value) {
	if v.IsNull() {
		return
	}
	s.v = v
	s.seen = true
}

func (s *lastState) Merge(o State) {
	os := o.(*lastState)
	if os.seen {
		s.v, s.seen = os.v, true
	}
}

func (s *lastState) Result() value.Value {
	if !s.seen {
		return value.Null()
	}
	return s.v
}

func (s *lastState) Clone() State { c := *s; return &c }

// momentState implements population variance (and its square root) through
// the decomposition the paper requires: VAR is not incrementally computable
// from its own result, but (count, Σx, Σx²) is a set of incrementally
// computable functions from which it derives.
type momentState struct {
	n     int64
	sum   float64
	sumSq float64
	sqrt  bool // report standard deviation instead of variance
}

func (s *momentState) Step(v value.Value) {
	if v.IsNull() {
		return
	}
	x := v.AsFloat()
	s.n++
	s.sum += x
	s.sumSq += x * x
}

func (s *momentState) Merge(o State) {
	os := o.(*momentState)
	s.n += os.n
	s.sum += os.sum
	s.sumSq += os.sumSq
}

func (s *momentState) Result() value.Value {
	if s.n == 0 {
		return value.Null()
	}
	mean := s.sum / float64(s.n)
	variance := s.sumSq/float64(s.n) - mean*mean
	if variance < 0 {
		variance = 0 // numeric noise near zero variance
	}
	if s.sqrt {
		return value.Float(math.Sqrt(variance))
	}
	return value.Float(variance)
}

func (s *momentState) Clone() State { c := *s; return &c }

// Apply folds the value at each spec's column of t into the matching state.
// It is the single O(1)-per-tuple step at the heart of view maintenance.
func Apply(states []State, specs []Spec, t value.Tuple) {
	for i, sp := range specs {
		if sp.Func == Count && sp.Col < 0 {
			states[i].Step(value.Int(1))
			continue
		}
		states[i].Step(t[sp.Col])
	}
}

// Results extracts the current value of each state.
func Results(states []State) value.Tuple {
	out := make(value.Tuple, len(states))
	for i, s := range states {
		out[i] = s.Result()
	}
	return out
}

// CloneStates deep-copies a state vector, used by view checkpoints.
func CloneStates(states []State) []State {
	out := make([]State, len(states))
	for i, s := range states {
		out[i] = s.Clone()
	}
	return out
}

// CopyState overwrites dst in place with src's value. Both must be states
// of the same function (same concrete type). Every state is a flat struct
// of immutable values, so a struct copy is a deep copy — this is the
// allocation-free counterpart of Clone, used by the hash view store to
// recycle retired entries.
func CopyState(dst, src State) bool {
	switch d := dst.(type) {
	case *countState:
		s, ok := src.(*countState)
		if !ok {
			return false
		}
		*d = *s
	case *sumState:
		s, ok := src.(*sumState)
		if !ok {
			return false
		}
		*d = *s
	case *minState:
		s, ok := src.(*minState)
		if !ok {
			return false
		}
		*d = *s
	case *maxState:
		s, ok := src.(*maxState)
		if !ok {
			return false
		}
		*d = *s
	case *avgState:
		s, ok := src.(*avgState)
		if !ok {
			return false
		}
		*d = *s
	case *firstState:
		s, ok := src.(*firstState)
		if !ok {
			return false
		}
		*d = *s
	case *lastState:
		s, ok := src.(*lastState)
		if !ok {
			return false
		}
		*d = *s
	case *momentState:
		s, ok := src.(*momentState)
		if !ok {
			return false
		}
		*d = *s
	default:
		return false
	}
	return true
}

// CopyStates copies each src state into the matching dst slot in place,
// allocation-free. It reports whether every pair matched; on a mismatch the
// caller should fall back to CloneStates.
func CopyStates(dst, src []State) bool {
	if len(dst) != len(src) {
		return false
	}
	for i := range src {
		if !CopyState(dst[i], src[i]) {
			return false
		}
	}
	return true
}
