package sqlparse

import (
	"fmt"
	"strings"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/algebra"
	"chronicledb/internal/calendar"
	"chronicledb/internal/chronicle"
	"chronicledb/internal/pred"
	"chronicledb/internal/relation"
	"chronicledb/internal/value"
	"chronicledb/internal/view"
)

// Catalog is what the planner needs from the engine.
type Catalog interface {
	Chronicle(name string) (*chronicle.Chronicle, bool)
	Relation(name string) (*relation.Relation, bool)
}

// ViewPlan is a lowered CREATE VIEW: an SCA definition plus dispatch and
// periodic metadata.
type ViewPlan struct {
	Def   view.Def
	Store view.StoreKind
	// Filter/FilterChronicle feed the Section 5.2 dispatcher when the view
	// carries an indexable base-chronicle predicate.
	Filter          pred.Predicate
	FilterChronicle *chronicle.Chronicle
	// Periodic is non-nil for CREATE PERIODIC VIEW.
	Periodic *PeriodicPlan
	Info     algebra.Info
}

// PeriodicPlan carries the calendar of a periodic view.
type PeriodicPlan struct {
	Calendar    *calendar.Periodic
	ExpireAfter int64 // -1 keeps instances forever
}

// resolver maps (qualifier, name) to a column index of the current
// expression schema. Concat may rename clashing columns, but positions are
// stable, so the resolver tracks provenance by position.
type resolver struct {
	cols []sourcedCol
}

type sourcedCol struct {
	source string // contributing chronicle/relation name
	name   string // original column name
}

func (r *resolver) add(source string, names []string) {
	for _, n := range names {
		r.cols = append(r.cols, sourcedCol{source: source, name: n})
	}
}

func (r *resolver) resolve(c ColRef) (int, error) {
	found := -1
	for i, sc := range r.cols {
		if sc.name != c.Name {
			continue
		}
		if c.Table != "" && sc.source != c.Table {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sql: ambiguous column %s (qualify it)", refString(c))
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("sql: unknown column %s", refString(c))
	}
	return found, nil
}

func refString(c ColRef) string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// PlanView lowers a CREATE VIEW statement into summarized chronicle
// algebra. It rejects — with the paper's justification — any construct
// outside SCA: joins between chronicles, non-equijoins with relations, and
// grouping semantics the summarization step cannot express.
func PlanView(cat Catalog, s *CreateView) (*ViewPlan, error) {
	base, ok := cat.Chronicle(s.From)
	if !ok {
		if _, isRel := cat.Relation(s.From); isRel {
			return nil, fmt.Errorf("sql: %s is a relation; persistent views are defined over chronicles", s.From)
		}
		return nil, fmt.Errorf("sql: unknown chronicle %q", s.From)
	}
	var expr algebra.Node = algebra.NewScan(base)
	res := &resolver{}
	res.add(s.From, base.Schema().Names())
	baseCols := base.Schema().Len()

	// Joins.
	for _, jc := range s.Joins {
		if jc.OnSN {
			other, ok := cat.Chronicle(jc.Relation)
			if !ok {
				return nil, fmt.Errorf("sql: ON SN joins chronicles; %q is not a chronicle", jc.Relation)
			}
			je, err := algebra.NewJoinSN(expr, algebra.NewScan(other))
			if err != nil {
				return nil, fmt.Errorf("sql: %w", err)
			}
			expr = je
			res.add(jc.Relation, other.Schema().Names())
			continue
		}
		rel, ok := cat.Relation(jc.Relation)
		if !ok {
			if _, isChr := cat.Chronicle(jc.Relation); isChr {
				return nil, fmt.Errorf("sql: cannot join chronicle %q on attributes: only the natural equijoin on the sequencing attribute (JOIN %s ON SN) stays inside the chronicle algebra (Theorem 4.3)", jc.Relation, jc.Relation)
			}
			return nil, fmt.Errorf("sql: unknown relation %q", jc.Relation)
		}
		if jc.Cross {
			ce, err := algebra.NewCrossRel(expr, rel)
			if err != nil {
				return nil, fmt.Errorf("sql: %w", err)
			}
			expr = ce
		} else {
			var inCols, relCols []int
			for _, c := range jc.On {
				if c.Op != "=" {
					return nil, fmt.Errorf("sql: join condition %s %s …: only equijoins with relations keep maintenance independent of the chronicle (Theorem 4.3)", refString(c.Left), c.Op)
				}
				if c.RightCol == nil {
					return nil, fmt.Errorf("sql: join conditions must compare columns")
				}
				li, lerr := res.resolve(c.Left)
				ri, rOK := rel.Schema().Index(c.RightCol.Name)
				switch {
				case lerr == nil && rOK && (c.RightCol.Table == "" || c.RightCol.Table == jc.Relation):
					inCols = append(inCols, li)
					relCols = append(relCols, ri)
				default:
					// Maybe the sides are swapped: relation.col = chronicle.col.
					li2, lOK2 := rel.Schema().Index(c.Left.Name)
					ri2, rerr := res.resolve(*c.RightCol)
					if (c.Left.Table == "" || c.Left.Table == jc.Relation) && lOK2 && rerr == nil {
						inCols = append(inCols, ri2)
						relCols = append(relCols, li2)
						continue
					}
					if lerr != nil {
						return nil, lerr
					}
					return nil, fmt.Errorf("sql: join condition must relate %s to relation %s", s.From, jc.Relation)
				}
			}
			je, err := algebra.NewJoinRel(expr, rel, inCols, relCols)
			if err != nil {
				return nil, fmt.Errorf("sql: %w", err)
			}
			expr = je
		}
		res.add(jc.Relation, rel.Schema().Names())
	}

	// WHERE: one stacked selection per AND-group.
	plan := &ViewPlan{Filter: pred.True()}
	if s.Where != nil {
		for _, group := range s.Where.Conj {
			p, err := lowerGroup(res, group)
			if err != nil {
				return nil, err
			}
			se, err := algebra.NewSelect(expr, p)
			if err != nil {
				return nil, fmt.Errorf("sql: %w", err)
			}
			expr = se
			// Dispatch filter: first equality-on-base-chronicle-constant group.
			if plan.FilterChronicle == nil {
				if col, k, ok := p.EqualityConstant(); ok && col < baseCols {
					plan.Filter = pred.Or(pred.ColConst(col, pred.Eq, k))
					plan.FilterChronicle = base
				}
			}
		}
	}

	// Summarization.
	def := view.Def{Name: s.Name, Expr: expr}
	var hasAgg bool
	for _, it := range s.Items {
		if it.Agg != "" {
			hasAgg = true
		}
	}
	switch {
	case hasAgg || len(s.GroupBy) > 0:
		if s.Star {
			return nil, fmt.Errorf("sql: SELECT * cannot be combined with grouping")
		}
		def.Mode = view.SummarizeGroupBy
		groupSet := map[int]bool{}
		for _, g := range s.GroupBy {
			idx, err := res.resolve(g)
			if err != nil {
				return nil, err
			}
			def.GroupCols = append(def.GroupCols, idx)
			groupSet[idx] = true
		}
		for _, it := range s.Items {
			if it.Agg == "" {
				idx, err := res.resolve(it.Col)
				if err != nil {
					return nil, err
				}
				if !groupSet[idx] {
					return nil, fmt.Errorf("sql: column %s appears in SELECT but not in GROUP BY", refString(it.Col))
				}
				continue
			}
			fn, ok := aggregate.FuncOf(it.Agg)
			if !ok {
				return nil, fmt.Errorf("sql: unknown aggregation %s (incrementally computable functions only)", it.Agg)
			}
			spec := aggregate.Spec{Func: fn, Col: -1}
			if !it.Star {
				idx, err := res.resolve(it.Col)
				if err != nil {
					return nil, err
				}
				if kind := expr.Schema().Col(idx).Kind; needsNumeric(fn) &&
					kind != value.KindInt && kind != value.KindFloat {
					return nil, fmt.Errorf("sql: %s requires a numeric column, %s is %s",
						fn, refString(it.Col), kind)
				}
				spec.Col = idx
			} else if fn != aggregate.Count {
				return nil, fmt.Errorf("sql: %s(*) is not defined; only COUNT(*)", it.Agg)
			}
			spec.Name = it.As
			if spec.Name == "" {
				if it.Star {
					spec.Name = strings.ToLower(it.Agg)
				} else {
					spec.Name = strings.ToLower(it.Agg) + "_" + it.Col.Name
				}
			}
			def.Aggs = append(def.Aggs, spec)
		}
		if len(def.Aggs) == 0 {
			return nil, fmt.Errorf("sql: GROUP BY needs at least one aggregation")
		}
	default:
		// Projection summarization (Π without SN). Set semantics make
		// DISTINCT implicit; we accept the keyword for familiarity.
		def.Mode = view.SummarizeProject
		if s.Star {
			for i := 0; i < len(res.cols); i++ {
				def.Cols = append(def.Cols, i)
			}
		} else {
			for _, it := range s.Items {
				idx, err := res.resolve(it.Col)
				if err != nil {
					return nil, err
				}
				def.Cols = append(def.Cols, idx)
			}
		}
	}

	// Store.
	switch s.Store {
	case "BTREE":
		plan.Store = view.StoreBTree
	default:
		plan.Store = view.StoreHash
	}

	// Periodic.
	if s.Periodic != nil {
		width := s.Periodic.Width
		if width == 0 {
			width = s.Periodic.Period
		}
		cal, err := calendar.NewPeriodic(s.Periodic.Offset, s.Periodic.Period, width)
		if err != nil {
			return nil, fmt.Errorf("sql: %w", err)
		}
		expire := int64(-1)
		if s.Periodic.Expire != nil {
			expire = *s.Periodic.Expire
		}
		plan.Periodic = &PeriodicPlan{Calendar: cal, ExpireAfter: expire}
	}

	plan.Def = def
	plan.Info = algebra.Analyze(expr)
	return plan, nil
}

// needsNumeric reports whether the aggregation function is defined only
// over numeric inputs.
func needsNumeric(f aggregate.Func) bool {
	switch f {
	case aggregate.Sum, aggregate.Avg, aggregate.Var, aggregate.Stddev:
		return true
	default:
		return false
	}
}

// lowerGroup lowers one OR-group into a Definition-4.1 predicate.
func lowerGroup(res *resolver, group []Cond) (pred.Predicate, error) {
	atoms := make([]pred.Atom, 0, len(group))
	for _, c := range group {
		li, err := res.resolve(c.Left)
		if err != nil {
			return pred.True(), err
		}
		op, err := opOf(c.Op)
		if err != nil {
			return pred.True(), err
		}
		if c.RightCol != nil {
			ri, err := res.resolve(*c.RightCol)
			if err != nil {
				return pred.True(), err
			}
			atoms = append(atoms, pred.ColCol(li, op, ri))
		} else {
			atoms = append(atoms, pred.ColConst(li, op, c.Right))
		}
	}
	return pred.Or(atoms...), nil
}

func opOf(s string) (pred.Op, error) {
	switch s {
	case "=":
		return pred.Eq, nil
	case "!=":
		return pred.Ne, nil
	case "<":
		return pred.Lt, nil
	case "<=":
		return pred.Le, nil
	case ">":
		return pred.Gt, nil
	case ">=":
		return pred.Ge, nil
	default:
		return pred.Eq, fmt.Errorf("sql: unknown operator %q", s)
	}
}

// LowerWhere lowers a query WHERE clause against a flat schema (view or
// relation) into a slice of predicates, one per AND-group, each to be
// applied conjunctively.
func LowerWhere(names []string, be *BoolExpr) ([]pred.Predicate, error) {
	if be == nil {
		return nil, nil
	}
	res := &resolver{}
	res.add("", names)
	var out []pred.Predicate
	for _, group := range be.Conj {
		p, err := lowerGroup(res, group)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
