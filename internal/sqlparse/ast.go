package sqlparse

import "chronicledb/internal/value"

// Statement is any parsed statement.
type Statement interface{ stmt() }

// ColumnDef is one column of a CREATE CHRONICLE / CREATE RELATION.
type ColumnDef struct {
	Name string
	Kind value.Kind
}

// CreateGroup is "CREATE GROUP name".
type CreateGroup struct {
	Name string
}

// CreateChronicle is
// "CREATE CHRONICLE name (col type, ...) [IN GROUP g]
//
//	[RETAIN ALL|NONE|n] [WINDOW chronons]".
type CreateChronicle struct {
	Name   string
	Cols   []ColumnDef
	Group  string
	Retain *int64 // nil = engine default; -1 all; 0 none; n last-n
	Window *int64 // time-based retention span in chronons
}

// CreateRelation is
// "CREATE RELATION name (col type, ..., KEY(col, ...))".
type CreateRelation struct {
	Name string
	Cols []ColumnDef
	Keys []string
}

// ColRef is a possibly-qualified column reference.
type ColRef struct {
	Table string // optional qualifier
	Name  string
}

// SelectItem is one output of a view's SELECT list.
type SelectItem struct {
	Agg  string // aggregation function name; empty for a plain column
	Col  ColRef // input column (ignored when Star)
	Star bool   // COUNT(*)
	As   string // output name; defaulted by the planner when empty
}

// Cond is one comparison in a WHERE clause.
type Cond struct {
	Left     ColRef
	Op       string // = != < <= > >=
	Right    value.Value
	RightCol *ColRef // non-nil for column-column comparisons
}

// BoolExpr is a conjunction of disjunctions of conditions — exactly the
// shape Definition 4.1 supports through stacked selections.
type BoolExpr struct {
	Conj [][]Cond // AND over OR-groups
}

// JoinClause joins the chronicle expression with a relation, or — with
// OnSN — with another chronicle of the same group on the sequencing
// attribute (the only chronicle-chronicle join inside CA, Definition 4.1).
type JoinClause struct {
	Relation string
	Cross    bool   // CROSS JOIN (no ON): the paper's C × R
	OnSN     bool   // JOIN <chronicle> ON SN
	On       []Cond // equality conditions for JOIN ... ON
}

// PeriodicClause is "EVERY p [WIDTH w] [OFFSET o] [EXPIRE e]" on a view.
type PeriodicClause struct {
	Period int64
	Width  int64 // 0 = Period (non-overlapping)
	Offset int64
	Expire *int64 // nil = keep forever
}

// CreateView is
//
//	CREATE [PERIODIC] VIEW name AS
//	  SELECT [DISTINCT] items FROM chronicle
//	  [JOIN rel ON c.col = rel.col [AND ...]] [CROSS JOIN rel] ...
//	  [WHERE boolexpr] [GROUP BY cols]
//	  [EVERY p [WIDTH w] [OFFSET o] [EXPIRE e]]
//	  [WITH STORE HASH|BTREE]
type CreateView struct {
	Name     string
	Distinct bool
	Items    []SelectItem
	Star     bool // SELECT *
	From     string
	Joins    []JoinClause
	Where    *BoolExpr
	GroupBy  []ColRef
	Periodic *PeriodicClause
	Store    string // "", "HASH", "BTREE"
}

// AppendPart is one chronicle's share of an append statement.
type AppendPart struct {
	Chronicle string
	Rows      [][]value.Value
}

// Append is "APPEND INTO chronicle VALUES (...), (...) [ALSO INTO c2
// VALUES (...)]". Multiple parts form one simultaneous insert sharing a
// single sequence number — the paper's "multiple tuples with the same
// sequence number can be inserted simultaneously".
type Append struct {
	Parts []AppendPart
}

// Upsert is "UPSERT INTO relation VALUES (...), (...)".
type Upsert struct {
	Relation string
	Rows     [][]value.Value
}

// Delete is "DELETE FROM relation KEY (...)": a proactive delete by key.
type Delete struct {
	Relation string
	Key      []value.Value
}

// Query is "SELECT * FROM view-or-relation [WHERE boolexpr]
// [ORDER BY col [DESC]] [LIMIT n]".
type Query struct {
	From      string
	Where     *BoolExpr
	OrderBy   *ColRef // nil = storage order
	OrderDesc bool
	Limit     int // 0 = unlimited
}

// DropView is "DROP VIEW name" (persistent or periodic).
type DropView struct {
	Name string
}

// Explain is "EXPLAIN VIEW name".
type Explain struct {
	View string
}

// Show is "SHOW VIEWS|CHRONICLES|RELATIONS|GROUPS|STATS".
type Show struct {
	What string
}

// Watch is "WATCH view [FROM LSN n] [LIMIT k]": subscribe to a view's
// changefeed, streaming committed deltas in LSN order. FROM LSN resumes
// after the given cursor; LIMIT stops the stream after k delta events.
// Only streaming surfaces (the CLI, DB.Watch, GET /watch) can execute it —
// a request/response Exec cannot hold a stream open.
type Watch struct {
	View    string
	FromLSN uint64
	HasFrom bool
	Limit   int // 0 = unlimited
}

func (*CreateGroup) stmt()     {}
func (*CreateChronicle) stmt() {}
func (*CreateRelation) stmt()  {}
func (*CreateView) stmt()      {}
func (*DropView) stmt()        {}
func (*Append) stmt()          {}
func (*Upsert) stmt()          {}
func (*Delete) stmt()          {}
func (*Query) stmt()           {}
func (*Explain) stmt()         {}
func (*Show) stmt()            {}
func (*Watch) stmt()           {}
