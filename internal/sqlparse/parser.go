package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"chronicledb/internal/value"
)

// Parse parses a semicolon-separated script into statements.
func Parse(src string) ([]Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Statement
	for !p.at(tokEOF) {
		if p.atPunct(";") {
			p.next()
			continue
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.atPunct(";") && !p.at(tokEOF) {
			return nil, p.errf("expected ';' after statement")
		}
	}
	return out, nil
}

// ParseOne parses exactly one statement.
func ParseOne(src string) (Statement, error) {
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sql: expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token          { return p.toks[p.i] }
func (p *parser) next() token         { t := p.toks[p.i]; p.i++; return t }
func (p *parser) at(k tokenKind) bool { return p.cur().kind == k }

func (p *parser) atPunct(s string) bool {
	return p.cur().kind == tokPunct && p.cur().text == s
}

// atKeyword matches a case-insensitive identifier.
func (p *parser) atKeyword(kw string) bool {
	return p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, kw)
}

func (p *parser) eatKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.eatKeyword(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

func (p *parser) expectPunct(s string) error {
	if !p.atPunct(s) {
		return p.errf("expected %q", s)
	}
	p.next()
	return nil
}

func (p *parser) ident() (string, error) {
	if !p.at(tokIdent) {
		return "", p.errf("expected identifier")
	}
	return p.next().text, nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (at offset %d, near %q)",
		fmt.Sprintf(format, args...), p.cur().pos, p.cur().text)
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.atKeyword("CREATE"):
		return p.create()
	case p.atKeyword("DROP"):
		p.next()
		if err := p.expectKeyword("VIEW"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropView{Name: name}, nil
	case p.atKeyword("APPEND"):
		return p.appendStmt()
	case p.atKeyword("UPSERT"):
		return p.upsert()
	case p.atKeyword("DELETE"):
		return p.deleteStmt()
	case p.atKeyword("SELECT"):
		return p.query()
	case p.atKeyword("EXPLAIN"):
		p.next()
		if err := p.expectKeyword("VIEW"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &Explain{View: name}, nil
	case p.atKeyword("WATCH"):
		return p.watch()
	case p.atKeyword("SHOW"):
		p.next()
		what, err := p.ident()
		if err != nil {
			return nil, err
		}
		switch w := strings.ToUpper(what); w {
		case "VIEWS", "CHRONICLES", "RELATIONS", "GROUPS", "STATS":
			return &Show{What: w}, nil
		default:
			return nil, p.errf("cannot SHOW %s", what)
		}
	default:
		return nil, p.errf("expected a statement")
	}
}

// watch parses "WATCH view [FROM LSN n] [LIMIT k]".
func (p *parser) watch() (Statement, error) {
	p.next() // WATCH
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	w := &Watch{View: name}
	if p.eatKeyword("FROM") {
		if err := p.expectKeyword("LSN"); err != nil {
			return nil, err
		}
		if !p.at(tokNumber) {
			return nil, p.errf("expected an LSN after FROM LSN")
		}
		n, err := strconv.ParseUint(p.next().text, 10, 64)
		if err != nil {
			return nil, p.errf("bad LSN: %v", err)
		}
		w.FromLSN, w.HasFrom = n, true
	}
	if p.eatKeyword("LIMIT") {
		if !p.at(tokNumber) {
			return nil, p.errf("expected a count after LIMIT")
		}
		n, err := strconv.ParseInt(p.next().text, 10, 64)
		if err != nil || n <= 0 {
			return nil, p.errf("LIMIT must be a positive integer")
		}
		w.Limit = int(n)
	}
	return w, nil
}

func (p *parser) create() (Statement, error) {
	p.next() // CREATE
	switch {
	case p.eatKeyword("GROUP"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &CreateGroup{Name: name}, nil
	case p.atKeyword("CHRONICLE"):
		return p.createChronicle()
	case p.atKeyword("RELATION"):
		return p.createRelation()
	case p.atKeyword("VIEW") || p.atKeyword("PERIODIC"):
		return p.createView()
	default:
		return nil, p.errf("expected GROUP, CHRONICLE, RELATION, VIEW, or PERIODIC VIEW")
	}
}

func (p *parser) columnDefs() ([]ColumnDef, []string, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, nil, err
	}
	var cols []ColumnDef
	var keys []string
	for {
		if p.eatKeyword("KEY") {
			if err := p.expectPunct("("); err != nil {
				return nil, nil, err
			}
			for {
				k, err := p.ident()
				if err != nil {
					return nil, nil, err
				}
				keys = append(keys, k)
				if !p.atPunct(",") {
					break
				}
				p.next()
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, nil, err
			}
		} else {
			name, err := p.ident()
			if err != nil {
				return nil, nil, err
			}
			typ, err := p.ident()
			if err != nil {
				return nil, nil, err
			}
			kind, ok := value.KindOf(typ)
			if !ok {
				return nil, nil, p.errf("unknown type %s", typ)
			}
			cols = append(cols, ColumnDef{Name: name, Kind: kind})
		}
		if p.atPunct(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, nil, err
	}
	return cols, keys, nil
}

func (p *parser) createChronicle() (Statement, error) {
	p.next() // CHRONICLE
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	cols, keys, err := p.columnDefs()
	if err != nil {
		return nil, err
	}
	if len(keys) != 0 {
		return nil, p.errf("chronicles have no keys (they are sequences)")
	}
	s := &CreateChronicle{Name: name, Cols: cols}
	for {
		switch {
		case p.eatKeyword("IN"):
			if err := p.expectKeyword("GROUP"); err != nil {
				return nil, err
			}
			g, err := p.ident()
			if err != nil {
				return nil, err
			}
			s.Group = g
		case p.eatKeyword("RETAIN"):
			switch {
			case p.eatKeyword("ALL"):
				n := int64(-1)
				s.Retain = &n
			case p.eatKeyword("NONE"):
				n := int64(0)
				s.Retain = &n
			case p.at(tokNumber):
				n, err := strconv.ParseInt(p.next().text, 10, 64)
				if err != nil || n < 0 {
					return nil, p.errf("RETAIN needs ALL, NONE, or a non-negative count")
				}
				s.Retain = &n
			default:
				return nil, p.errf("RETAIN needs ALL, NONE, or a count")
			}
		case p.eatKeyword("WINDOW"):
			n, err := p.int64Tok("WINDOW")
			if err != nil {
				return nil, err
			}
			if n <= 0 {
				return nil, p.errf("WINDOW needs a positive chronon span")
			}
			s.Window = &n
		default:
			return s, nil
		}
	}
}

func (p *parser) createRelation() (Statement, error) {
	p.next() // RELATION
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	cols, keys, err := p.columnDefs()
	if err != nil {
		return nil, err
	}
	if len(keys) == 0 {
		return nil, p.errf("relation %s needs a KEY(...) clause", name)
	}
	return &CreateRelation{Name: name, Cols: cols, Keys: keys}, nil
}

func (p *parser) createView() (Statement, error) {
	periodic := p.eatKeyword("PERIODIC")
	if err := p.expectKeyword("VIEW"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	v := &CreateView{Name: name}
	v.Distinct = p.eatKeyword("DISTINCT")

	// Select list.
	if p.atPunct("*") {
		p.next()
		v.Star = true
	} else {
		for {
			item, err := p.selectItem()
			if err != nil {
				return nil, err
			}
			v.Items = append(v.Items, item)
			if !p.atPunct(",") {
				break
			}
			p.next()
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	v.From, err = p.ident()
	if err != nil {
		return nil, err
	}

	// Joins.
	for {
		cross := false
		if p.atKeyword("CROSS") {
			p.next()
			cross = true
		}
		if !p.eatKeyword("JOIN") {
			if cross {
				return nil, p.errf("expected JOIN after CROSS")
			}
			break
		}
		rel, err := p.ident()
		if err != nil {
			return nil, err
		}
		jc := JoinClause{Relation: rel, Cross: cross}
		if !cross {
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			// "ON SN" is the natural equijoin on the sequencing attribute
			// — recognized when SN is not followed by a comparison.
			if p.atKeyword("SN") && p.toks[p.i+1].kind != tokOp && !punctIs(p.toks[p.i+1], ".") {
				p.next()
				jc.OnSN = true
			} else {
				for {
					c, err := p.cond()
					if err != nil {
						return nil, err
					}
					jc.On = append(jc.On, c)
					if !p.eatKeyword("AND") {
						break
					}
				}
			}
		}
		v.Joins = append(v.Joins, jc)
	}

	if p.eatKeyword("WHERE") {
		be, err := p.boolExpr()
		if err != nil {
			return nil, err
		}
		v.Where = be
	}

	if p.eatKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			cr, err := p.colRef()
			if err != nil {
				return nil, err
			}
			v.GroupBy = append(v.GroupBy, cr)
			if !p.atPunct(",") {
				break
			}
			p.next()
		}
	}

	if p.atKeyword("EVERY") {
		if !periodic {
			return nil, p.errf("EVERY requires CREATE PERIODIC VIEW")
		}
		p.next()
		pc := &PeriodicClause{}
		pc.Period, err = p.int64Tok("EVERY")
		if err != nil {
			return nil, err
		}
		if p.eatKeyword("WIDTH") {
			pc.Width, err = p.int64Tok("WIDTH")
			if err != nil {
				return nil, err
			}
		}
		if p.eatKeyword("OFFSET") {
			pc.Offset, err = p.int64Tok("OFFSET")
			if err != nil {
				return nil, err
			}
		}
		if p.eatKeyword("EXPIRE") {
			n, err := p.int64Tok("EXPIRE")
			if err != nil {
				return nil, err
			}
			pc.Expire = &n
		}
		v.Periodic = pc
	} else if periodic {
		return nil, p.errf("CREATE PERIODIC VIEW requires an EVERY clause")
	}

	if p.eatKeyword("WITH") {
		if err := p.expectKeyword("STORE"); err != nil {
			return nil, err
		}
		store, err := p.ident()
		if err != nil {
			return nil, err
		}
		switch s := strings.ToUpper(store); s {
		case "HASH", "BTREE":
			v.Store = s
		default:
			return nil, p.errf("store must be HASH or BTREE")
		}
	}
	return v, nil
}

func (p *parser) int64Tok(clause string) (int64, error) {
	if !p.at(tokNumber) {
		return 0, p.errf("%s needs a number", clause)
	}
	n, err := strconv.ParseInt(p.next().text, 10, 64)
	if err != nil {
		return 0, p.errf("%s needs an integer", clause)
	}
	return n, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	name, err := p.ident()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{}
	if p.atPunct("(") { // aggregation
		p.next()
		item.Agg = strings.ToUpper(name)
		if p.atPunct("*") {
			p.next()
			item.Star = true
		} else {
			cr, err := p.colRef()
			if err != nil {
				return SelectItem{}, err
			}
			item.Col = cr
		}
		if err := p.expectPunct(")"); err != nil {
			return SelectItem{}, err
		}
	} else if p.atPunct(".") {
		p.next()
		col, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Col = ColRef{Table: name, Name: col}
	} else {
		item.Col = ColRef{Name: name}
	}
	if p.eatKeyword("AS") {
		as, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.As = as
	}
	return item, nil
}

func (p *parser) colRef() (ColRef, error) {
	a, err := p.ident()
	if err != nil {
		return ColRef{}, err
	}
	if p.atPunct(".") {
		p.next()
		b, err := p.ident()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: a, Name: b}, nil
	}
	return ColRef{Name: a}, nil
}

// boolExpr parses AND-of-OR-groups; parentheses group OR-disjunctions.
func (p *parser) boolExpr() (*BoolExpr, error) {
	be := &BoolExpr{}
	for {
		group, err := p.orGroup()
		if err != nil {
			return nil, err
		}
		be.Conj = append(be.Conj, group)
		if !p.eatKeyword("AND") {
			break
		}
	}
	return be, nil
}

func (p *parser) orGroup() ([]Cond, error) {
	if p.atPunct("(") {
		p.next()
		var group []Cond
		for {
			c, err := p.cond()
			if err != nil {
				return nil, err
			}
			group = append(group, c)
			if p.eatKeyword("OR") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return group, nil
	}
	var group []Cond
	for {
		c, err := p.cond()
		if err != nil {
			return nil, err
		}
		group = append(group, c)
		if p.eatKeyword("OR") {
			continue
		}
		break
	}
	return group, nil
}

func (p *parser) cond() (Cond, error) {
	left, err := p.colRef()
	if err != nil {
		return Cond{}, err
	}
	if !p.at(tokOp) {
		return Cond{}, p.errf("expected comparison operator")
	}
	op := p.next().text
	c := Cond{Left: left, Op: op}
	switch {
	case p.at(tokIdent) && !p.atKeyword("TRUE") && !p.atKeyword("FALSE") && !p.atKeyword("NULL"):
		rc, err := p.colRef()
		if err != nil {
			return Cond{}, err
		}
		c.RightCol = &rc
	default:
		lit, err := p.literal()
		if err != nil {
			return Cond{}, err
		}
		c.Right = lit
	}
	return c, nil
}

func (p *parser) literal() (value.Value, error) {
	switch {
	case p.at(tokString):
		return value.Str(p.next().text), nil
	case p.at(tokNumber):
		text := p.next().text
		if strings.Contains(text, ".") {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return value.Null(), p.errf("bad float %q", text)
			}
			return value.Float(f), nil
		}
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return value.Null(), p.errf("bad integer %q", text)
		}
		return value.Int(n), nil
	case p.atKeyword("TRUE"):
		p.next()
		return value.Bool(true), nil
	case p.atKeyword("FALSE"):
		p.next()
		return value.Bool(false), nil
	case p.atKeyword("NULL"):
		p.next()
		return value.Null(), nil
	default:
		return value.Null(), p.errf("expected a literal")
	}
}

func (p *parser) valueRows() ([][]value.Value, error) {
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	var rows [][]value.Value
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []value.Value
		for {
			lit, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, lit)
			if !p.atPunct(",") {
				break
			}
			p.next()
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if !p.atPunct(",") {
			break
		}
		p.next()
	}
	return rows, nil
}

func (p *parser) appendStmt() (Statement, error) {
	p.next() // APPEND
	a := &Append{}
	for {
		if err := p.expectKeyword("INTO"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		rows, err := p.valueRows()
		if err != nil {
			return nil, err
		}
		a.Parts = append(a.Parts, AppendPart{Chronicle: name, Rows: rows})
		if !p.eatKeyword("ALSO") {
			return a, nil
		}
	}
}

func punctIs(t token, s string) bool { return t.kind == tokPunct && t.text == s }

func (p *parser) upsert() (Statement, error) {
	p.next() // UPSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	rows, err := p.valueRows()
	if err != nil {
		return nil, err
	}
	return &Upsert{Relation: name, Rows: rows}, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("KEY"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var key []value.Value
	for {
		lit, err := p.literal()
		if err != nil {
			return nil, err
		}
		key = append(key, lit)
		if !p.atPunct(",") {
			break
		}
		p.next()
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &Delete{Relation: name, Key: key}, nil
}

func (p *parser) query() (Statement, error) {
	p.next() // SELECT
	if err := p.expectPunct("*"); err != nil {
		return nil, p.errf("interactive queries support SELECT * only")
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	q := &Query{From: name}
	if p.eatKeyword("WHERE") {
		be, err := p.boolExpr()
		if err != nil {
			return nil, err
		}
		q.Where = be
	}
	if p.eatKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		cr, err := p.colRef()
		if err != nil {
			return nil, err
		}
		q.OrderBy = &cr
		if p.eatKeyword("DESC") {
			q.OrderDesc = true
		} else {
			p.eatKeyword("ASC")
		}
	}
	if p.eatKeyword("LIMIT") {
		n, err := p.int64Tok("LIMIT")
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, p.errf("LIMIT must be non-negative")
		}
		q.Limit = int(n)
	}
	return q, nil
}
